#include "xai/serve/explanation_cache.h"

#include <bit>
#include <utility>

#include "xai/core/telemetry.h"
#include "xai/core/trace.h"

namespace xai {
namespace serve {

uint64_t CacheKey::Mix() const {
  // splitmix64-style finalization over the three components; cheap and
  // disperses the FNV outputs well enough for shard selection.
  auto mix = [](uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  };
  return mix(model_fingerprint ^ mix(instance_hash ^ mix(config_hash)));
}

ExplanationCache::ExplanationCache(const Config& config) {
  int shards = config.num_shards < 1 ? 1 : config.num_shards;
  shards = static_cast<int>(std::bit_ceil(static_cast<unsigned>(shards)));
  shards_.reserve(shards);
  for (int i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
  shard_budget_ = config.max_bytes / shards;
  // Shard index = top bits of the mixed hash (the low bits feed the
  // in-shard hash table; using disjoint bits avoids correlated placement).
  shard_shift_ = 64 - std::bit_width(static_cast<unsigned>(shards)) + 1;
}

ExplanationCache::Shard& ExplanationCache::ShardFor(const CacheKey& key) {
  const size_t index =
      shards_.size() == 1
          ? 0
          : static_cast<size_t>(key.Mix() >> shard_shift_) % shards_.size();
  return *shards_[index];
}

std::shared_ptr<const ExplainResponse> ExplanationCache::Get(
    const CacheKey& key) {
  // Under the server's request context: traces show per-request lookup cost
  // (shard-lock wait included) alongside the execute span it gates.
  XAI_SPAN("serve/cache_lookup");
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    XAI_COUNTER_INC("serve/cache_misses");
    return nullptr;
  }
  // Refresh recency: move the entry to the hot end.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  XAI_COUNTER_INC("serve/cache_hits");
  return it->second->value;
}

void ExplanationCache::Put(const CacheKey& key,
                           std::shared_ptr<const ExplainResponse> value) {
  if (value == nullptr) return;
  const size_t bytes = ApproxResponseBytes(*value);
  if (bytes > shard_budget_) return;  // Would evict a whole shard for naught.

  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (auto it = shard.index.find(key); it != shard.index.end()) {
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  shard.lru.push_front(Entry{key, std::move(value), bytes});
  shard.index[key] = shard.lru.begin();
  shard.bytes += bytes;

  while (shard.bytes > shard_budget_) {
    Entry& cold = shard.lru.back();
    shard.bytes -= cold.bytes;
    XAI_COUNTER_INC("serve/cache_evictions");
    XAI_COUNTER_ADD("serve/cache_bytes_evicted",
                    static_cast<int64_t>(cold.bytes));
    ++shard.evictions;
    shard.index.erase(cold.key);
    shard.lru.pop_back();
  }
}

ExplanationCache::Stats ExplanationCache::GetStats() const {
  Stats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.evictions += shard->evictions;
    stats.entries += static_cast<int64_t>(shard->lru.size());
    stats.bytes += shard->bytes;
  }
  return stats;
}

void ExplanationCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
}

}  // namespace serve
}  // namespace xai
