#ifndef XAI_SERVE_BATCHER_H_
#define XAI_SERVE_BATCHER_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "xai/core/status.h"
#include "xai/serve/degradation.h"
#include "xai/serve/explanation_cache.h"
#include "xai/serve/model_registry.h"
#include "xai/serve/request.h"

namespace xai {
namespace serve {

/// \brief One admitted request, resolved against the registry (the snapshot
/// it runs on), priced by the degradation policy (the tier plan it will
/// execute), and keyed for the cache (intra-batch coalescing identity).
struct BatchJob {
  ExplainRequest request;
  std::shared_ptr<const ModelEntry> entry;
  TierPlan plan;
  bool degraded = false;
  CacheKey key;
  /// Whether duplicate keys inside a batch may share one execution. The
  /// server sets this from `request.use_cache`: a caller opting out of the
  /// cache also opts out of result sharing.
  bool coalescable = true;
  /// Root span of this request's trace (assigned at admission); coalesced
  /// followers parent-link their root to the leader's.
  uint64_t root_span_id = 0;
};

/// \brief Coalescing batch scheduler in front of the explainer executor.
///
/// Concurrent requests queue here instead of each grabbing the thread pool
/// for itself. A single worker drains up to `max_batch` queued jobs for one
/// model at a time, deduplicates jobs with identical cache keys (N users
/// refreshing the same explanation cost one computation), and fans the
/// unique executions out over core/parallel's ParallelFor — each job's
/// inner explainer parallelism then runs inline in its chunk, so responses
/// are bit-identical to unbatched execution at any thread count.
///
/// Backpressure: the queue is bounded at `max_queue`. `Submit` either
/// blocks until there is room (default) or fails fast with a typed
/// Overloaded status when `block_when_full` is false. Async callers must
/// never block an event loop on queue space, so `SubmitCallback` is always
/// try-enqueue: it returns Overloaded immediately and the admission layer
/// converts that into a shed (or degrade-and-retry) decision — load sheds
/// at admission, not mid-flight.
///
/// Telemetry: serve/batches, serve/batched_requests,
/// serve/coalesced_requests; histograms serve/batch_size,
/// serve/queue_depth.
class RequestBatcher {
 public:
  struct Config {
    /// Most jobs drained into one batch.
    int max_batch = 8;
    /// Queue bound; admission control beyond it.
    int max_queue = 256;
    /// Block submitters when the queue is full (false: fail fast with
    /// Overloaded).
    bool block_when_full = true;
  };

  /// Executes one unique job (the server's explainer dispatch). Called from
  /// pool workers; must be const-reentrant.
  using Executor = std::function<Result<ExplainResponse>(const BatchJob&)>;

  /// Queue/batch timing of one completed job, monotonic nanoseconds. For
  /// coalesced followers the leader fields identify whose execution
  /// produced the shared payload (equal to the job's own ids for leaders
  /// and non-coalescable jobs).
  struct CompletionInfo {
    int64_t enqueue_ns = 0;      ///< Submit() accepted the job.
    int64_t batch_start_ns = 0;  ///< Its batch began executing.
    int64_t done_ns = 0;         ///< Its batch finished.
    int batch_size = 0;
    bool coalesced = false;
    uint64_t leader_trace_id = 0;
    uint64_t leader_span_id = 0;
  };

  /// Runs on the batch worker for every job, after its result is known and
  /// before its future resolves — the server's hook for stamping
  /// per-request provenance (queue/batch breakdown, coalesced-onto
  /// linkage) and SLO accounting. May mutate the result. Must not call
  /// back into the batcher.
  using Completion = std::function<void(
      const BatchJob&, const CompletionInfo&, Result<ExplainResponse>*)>;

  RequestBatcher(const Config& config, Executor executor,
                 Completion on_complete = nullptr);
  /// Fails queued jobs and joins the worker.
  ~RequestBatcher();

  /// Enqueues a job; the future resolves with the response (or the
  /// executor's error). Overloaded if the queue is full and
  /// `block_when_full` is off.
  Result<std::future<Result<ExplainResponse>>> Submit(BatchJob job);

  /// Completion-callback delivery for one job. `done` runs on the batch
  /// worker after the completion hook, under the job's TraceContext (spans
  /// opened inside the callback parent-link to the request's trace).
  using Callback = std::function<void(Result<ExplainResponse>)>;

  /// Try-enqueue variant for asynchronous callers: never blocks, regardless
  /// of `block_when_full`. Returns Overloaded when the queue is full (the
  /// job was NOT accepted; `done` will never run) and Internal during
  /// shutdown. On OK, `done` is guaranteed to run exactly once — with the
  /// response, the executor's error, or an Internal status if the batcher
  /// stops first.
  Status SubmitCallback(BatchJob job, Callback done);

  /// Holds the worker between batches so tests can pile up concurrent
  /// submissions and observe them coalesce into one batch.
  void Pause();
  void Resume();

  /// Blocks until the queue is empty and no batch is in flight.
  void Flush();

  int queue_depth() const;

 private:
  struct Pending {
    BatchJob job;
    /// Exactly one of the two delivery channels is set: a promise for
    /// Submit(), a callback for SubmitCallback().
    std::shared_ptr<std::promise<Result<ExplainResponse>>> promise;
    Callback done;
    int64_t enqueue_ns = 0;
  };

  /// Delivers `result` through whichever channel `pending` carries.
  static void Deliver(Pending* pending, Result<ExplainResponse> result);

  void WorkerLoop();
  void ExecuteBatch(std::vector<Pending> batch);

  const Config config_;
  const Executor executor_;
  const Completion on_complete_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // Queue non-empty / stop / resume.
  std::condition_variable space_cv_;  // Queue has room again.
  std::condition_variable idle_cv_;   // Queue drained and worker idle.
  std::deque<Pending> queue_;
  bool paused_ = false;
  bool stopping_ = false;
  bool in_flight_ = false;

  std::thread worker_;
};

}  // namespace serve
}  // namespace xai

#endif  // XAI_SERVE_BATCHER_H_
