#ifndef XAI_SERVE_EXPLANATION_CACHE_H_
#define XAI_SERVE_EXPLANATION_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "xai/serve/request.h"

namespace xai {
namespace serve {

/// \brief Identity of a cached explanation: which snapshot, which instance,
/// which explainer configuration. All three components are stable content
/// hashes (model/serialization's ContentHash64), so keys survive process
/// restarts and registry reloads of identical snapshots.
struct CacheKey {
  uint64_t model_fingerprint = 0;
  uint64_t instance_hash = 0;
  /// Hash of everything else that selects the computation: explainer kind,
  /// served tier, seed, background fingerprint, desired class.
  uint64_t config_hash = 0;

  bool operator==(const CacheKey& o) const {
    return model_fingerprint == o.model_fingerprint &&
           instance_hash == o.instance_hash && config_hash == o.config_hash;
  }

  /// Mixed 64-bit hash (also selects the shard).
  uint64_t Mix() const;
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& k) const {
    return static_cast<size_t>(k.Mix());
  }
};

/// \brief Sharded LRU explanation cache with byte-budget eviction.
///
/// Requests for hot instances ("the same loan application explained on
/// every page load") should cost a hash lookup, not a Monte-Carlo run —
/// the materialization opportunity the tutorial's Section 3 maps out.
/// Shard count is rounded up to a power of two; a key's shard is a bit
/// slice of its mixed hash, so concurrent lookups contend only within a
/// shard. Each shard holds an LRU list under its own mutex with a byte
/// budget of total_bytes / num_shards; inserting past the budget evicts
/// from the cold end. Entries are shared_ptr<const ExplainResponse>, so a
/// hit never copies the payload and eviction never invalidates a response
/// a caller still holds.
///
/// Telemetry: serve/cache_hits, serve/cache_misses, serve/cache_evictions,
/// serve/cache_bytes_evicted.
class ExplanationCache {
 public:
  struct Config {
    /// Total byte budget across shards.
    size_t max_bytes = size_t{64} << 20;
    /// Rounded up to a power of two (1 is valid and makes global LRU order
    /// exact, which the eviction tests rely on).
    int num_shards = 16;
  };

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t entries = 0;
    size_t bytes = 0;
  };

  explicit ExplanationCache(const Config& config);

  /// The cached response, refreshing its recency; nullptr on miss.
  std::shared_ptr<const ExplainResponse> Get(const CacheKey& key);

  /// Inserts (or replaces) the entry and evicts cold entries until the
  /// shard fits its budget again. Responses larger than a whole shard's
  /// budget are not cached (they would evict everything and still not fit).
  void Put(const CacheKey& key, std::shared_ptr<const ExplainResponse> value);

  Stats GetStats() const;
  void Clear();

  int num_shards() const { return static_cast<int>(shards_.size()); }
  size_t shard_budget_bytes() const { return shard_budget_; }

 private:
  struct Entry {
    CacheKey key;
    std::shared_ptr<const ExplainResponse> value;
    size_t bytes = 0;
  };
  struct Shard {
    std::mutex mu;
    /// Front = hottest. Iterators stay valid across splice, so the map can
    /// point straight into the list.
    std::list<Entry> lru;
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
        index;
    size_t bytes = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
  };

  Shard& ShardFor(const CacheKey& key);

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t shard_budget_ = 0;
  int shard_shift_ = 0;
};

}  // namespace serve
}  // namespace xai

#endif  // XAI_SERVE_EXPLANATION_CACHE_H_
