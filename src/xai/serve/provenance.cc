#include "xai/serve/provenance.h"

#include "xai/core/json.h"

namespace xai {
namespace serve {

void WriteProvenanceJsonl(std::ostream& os,
                          const ExplanationProvenance& p) {
  os << "{\"trace_id\":\"" << p.trace_id << "\",\"root_span_id\":\""
     << p.root_span_id << "\",\"tenant\":";
  json::WriteString(os, p.tenant);
  os << ",\"model\":";
  json::WriteString(os, p.model);
  os << ",\"kind\":";
  json::WriteString(os, p.kind);
  os << ",\"requested_tier\":";
  json::WriteString(os, p.requested_tier);
  os << ",\"served_tier\":";
  json::WriteString(os, p.served_tier);
  os << ",\"algorithm\":";
  json::WriteString(os, p.algorithm);
  os << ",\"degraded\":" << (p.degraded ? "true" : "false")
     << ",\"cache_hit\":" << (p.cache_hit ? "true" : "false")
     << ",\"coalesced\":" << (p.coalesced ? "true" : "false")
     << ",\"coalesced_onto\":\"" << p.coalesced_onto
     << "\",\"planned_evals\":" << p.planned_evals
     << ",\"used_evals\":" << p.used_evals << ",\"simd_backend\":";
  json::WriteString(os, p.simd_backend);
  os << ",\"batch_size\":" << p.batch_size << ",\"queue_ms\":" << p.queue_ms
     << ",\"compute_ms\":" << p.compute_ms << ",\"total_ms\":" << p.total_ms
     << ",\"deadline_met\":" << (p.deadline_met ? "true" : "false")
     << ",\"shed\":" << (p.shed ? "true" : "false")
     << ",\"complete\":" << (p.complete ? "true" : "false") << "}\n";
}

}  // namespace serve
}  // namespace xai
