#ifndef XAI_SERVE_DEGRADATION_H_
#define XAI_SERVE_DEGRADATION_H_

#include <cstdint>

#include "xai/explain/counterfactual/dice.h"
#include "xai/explain/lime.h"
#include "xai/explain/shapley/kernel_shap.h"
#include "xai/rules/anchors.h"
#include "xai/serve/request.h"

namespace xai {
namespace serve {

/// \brief Deterministic price list turning a latency budget into an
/// affordable model-evaluation budget.
///
/// Degradation decisions must be reproducible — the same request has to
/// produce the bit-identical response on an idle box and an overloaded one,
/// at any thread count — so tiers are priced against this static model
/// rather than against measured wall-clock state. Calibrate `evals_per_ms`
/// per deployment (bench_e19 reports the measured rate); keep it
/// conservative so that "fits the budget" on paper means "meets the
/// deadline" on the machine.
struct CostModel {
  /// Model evaluations fundable per millisecond of deadline.
  double evals_per_ms = 300.0;
  /// Fixed per-request cost (queueing, dispatch, regression solve).
  double overhead_ms = 2.0;
  /// TreeSHAP node visits the flat kernel retires per millisecond.
  /// Conservative against bench_e24's measured rate (tens of thousands per
  /// ms) for the same reason evals_per_ms is: "fits on paper" must mean
  /// "meets the deadline" on the machine.
  double tree_shap_nodes_per_ms = 5000.0;

  /// The evaluation budget a deadline funds (0 when the overhead alone
  /// exceeds it).
  int64_t EvalBudget(double deadline_ms) const;

  /// Prices a TreeSHAP request (one pass over every node of the ensemble)
  /// in model-evaluation equivalents, so the single eval-denominated budget
  /// can gate it honestly: equivalents = nodes / tree_shap_nodes_per_ms *
  /// evals_per_ms, rounded up. Previously TreeSHAP was priced at 0 — free
  /// on paper, a deadline miss on a large ensemble.
  int64_t TreeShapEvalEquivalents(int64_t tree_nodes) const;
};

/// \brief What one rung of the ladder resolves to for a given request:
/// possibly a *different explainer* (exact Shapley degrades through
/// KernelSHAP into permutation sampling) plus the concrete budget knobs.
struct TierPlan {
  FidelityTier tier = FidelityTier::kHigh;
  /// The algorithm actually run (shapley family tiers switch kinds).
  ExplainerKind algorithm = ExplainerKind::kKernelShap;
  /// Planned model-evaluation cost of this rung (the explainers' own
  /// *PlannedEvals budget hooks).
  int64_t planned_evals = 0;
  /// Knobs for the algorithm selected above; only the matching one is
  /// meaningful.
  KernelShapConfig kernel_config;
  int sampling_permutations = 0;
  LimeConfig lime_config;
  AnchorsConfig anchors_config;
  DiceConfig dice_config;
};

/// \brief The degradation ladder: maps (request, model shape) to the
/// fidelity rung that fits the deadline.
///
/// Ladder per family (best -> cheapest):
///   shapley:        exact 2^d | kernel 2048 | kernel 512 | sampling 32
///                   | sampling 8    (coalitions/permutations x background)
///   lime:           samples 4000 | 2000 | 1000 | 400 | 100
///   anchors:        per-candidate budget 6000 | 3000 | 1500 | 600 | 300
///   counterfactual: restarts 400 | 200 | 100 | 50 | 25
///   tree_shap:      always kExact — the tree algorithm is already
///                   milliseconds-cheap and has no fidelity knob.
///
/// Everything here is pure arithmetic on the request: no clocks, no queue
/// state, no thread counts.
class DegradationPolicy {
 public:
  explicit DegradationPolicy(const CostModel& cost_model = {});

  /// The plan for a specific rung (independent of any deadline). Useful for
  /// tests and for replaying a served tier offline. `tree_nodes` (total
  /// nodes of the served ensemble) only matters for kTreeShap, where it
  /// prices the single exact rung in eval-equivalents.
  TierPlan PlanForTier(ExplainerKind kind, FidelityTier tier,
                       int num_features, int background_rows,
                       int64_t tree_nodes = 0) const;

  /// Walks the ladder from the requested tier down to the cheapest rung
  /// whose planned cost fits the deadline's evaluation budget. Returns the
  /// first affordable rung, or the cheapest rung if none is (the server
  /// then reports deadline risk rather than refusing). `deadline_ms <= 0`
  /// means no deadline: the requested tier is returned unchanged.
  /// kTreeShap has no cheaper rung, but its (now honest, node-count-based)
  /// planned_evals still feed the caller's deadline-risk accounting.
  TierPlan Choose(ExplainerKind kind, FidelityTier requested,
                  int num_features, int background_rows,
                  double deadline_ms, int64_t tree_nodes = 0) const;

  const CostModel& cost_model() const { return cost_model_; }

 private:
  CostModel cost_model_;
};

}  // namespace serve
}  // namespace xai

#endif  // XAI_SERVE_DEGRADATION_H_
