#include "xai/serve/model_registry.h"

#include <algorithm>
#include <type_traits>
#include <utility>

#include "xai/core/telemetry.h"
#include "xai/model/serialization.h"

namespace xai {
namespace serve {
namespace {

/// Holds the concrete model and, for tree models, builds the ensemble view
/// over it before the type is erased behind Model.
struct Loaded {
  std::shared_ptr<const Model> model;
  std::shared_ptr<const TreeEnsembleView> tree_view;
  std::shared_ptr<const FlatEnsemble> flat;
};

template <typename M>
Loaded Hold(M model) {
  auto owned = std::make_shared<M>(std::move(model));
  Loaded loaded;
  loaded.model = owned;
  if constexpr (std::is_same_v<M, DecisionTreeModel> ||
                std::is_same_v<M, RandomForestModel> ||
                std::is_same_v<M, GbdtModel>) {
    // The view borrows the trees; owning `owned` via the aliasing-free
    // shared_ptr in `model` keeps them alive for the view's lifetime.
    loaded.tree_view =
        std::make_shared<TreeEnsembleView>(TreeEnsembleView::Of(*owned));
    // Compile the flat kernel now, while registration already owns the
    // snapshot: Execute-time PredictBatch/AsPredictFn hit the warm cache
    // and the first explanation request never pays the flatten.
    loaded.flat = owned->shared_flat();
    // Likewise prebuild the view's own flat kernel (scales/base folded, no
    // post-ops — the one TreeSHAP walks) and its cover side-table, so the
    // first kTreeShap request constructs its kernel for two shared_ptr
    // copies and allocates nothing beyond its thread's arena.
    loaded.tree_view->flat()->EnsureTreeShapData(loaded.tree_view->trees);
  }
  return loaded;
}

Result<Loaded> Load(const std::string& kind, const std::string& serialized) {
  if (kind == "linear_regression") {
    XAI_ASSIGN_OR_RETURN(LinearRegressionModel m,
                         DeserializeLinearRegression(serialized));
    return Hold(std::move(m));
  }
  if (kind == "logistic_regression") {
    XAI_ASSIGN_OR_RETURN(LogisticRegressionModel m,
                         DeserializeLogisticRegression(serialized));
    return Hold(std::move(m));
  }
  if (kind == "decision_tree") {
    XAI_ASSIGN_OR_RETURN(DecisionTreeModel m,
                         DeserializeDecisionTree(serialized));
    return Hold(std::move(m));
  }
  if (kind == "random_forest") {
    XAI_ASSIGN_OR_RETURN(RandomForestModel m,
                         DeserializeRandomForest(serialized));
    return Hold(std::move(m));
  }
  if (kind == "gbdt") {
    XAI_ASSIGN_OR_RETURN(GbdtModel m, DeserializeGbdt(serialized));
    return Hold(std::move(m));
  }
  return Status::InvalidArgument("unsupported model kind for serving: " +
                                 kind);
}

}  // namespace

Result<uint64_t> ModelRegistry::Register(const std::string& name,
                                         const std::string& serialized,
                                         Dataset background) {
  if (name.empty())
    return Status::InvalidArgument("model name must be non-empty");
  if (background.num_rows() < 1)
    return Status::InvalidArgument(
        "serving background dataset must be non-empty");
  XAI_ASSIGN_OR_RETURN(std::string kind, PeekModelKind(serialized));
  XAI_ASSIGN_OR_RETURN(Loaded loaded, Load(kind, serialized));

  auto entry = std::make_shared<ModelEntry>();
  entry->name = name;
  entry->kind = kind;
  entry->fingerprint = Fingerprint(serialized);
  // Matrix storage is row-major contiguous; hash it in one pass.
  entry->background_fingerprint =
      ContentHash64(background.x().RowPtr(0),
                    static_cast<size_t>(background.num_rows()) *
                        background.num_features() * sizeof(double));
  entry->model = std::move(loaded.model);
  entry->tree_view = std::move(loaded.tree_view);
  entry->flat = std::move(loaded.flat);
  entry->background = std::make_shared<Dataset>(std::move(background));

  {
    std::lock_guard<std::mutex> lock(mu_);
    entries_[name] = entry;
  }
  XAI_COUNTER_INC("serve/models_registered");
  return entry->fingerprint;
}

std::shared_ptr<const ModelEntry> ModelRegistry::Find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it != entries_.end() ? it->second : nullptr;
}

Status ModelRegistry::Unregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.erase(name) > 0
             ? Status::OK()
             : Status::NotFound("no registered model named " + name);
}

std::vector<std::string> ModelRegistry::Names() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

int ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(entries_.size());
}

}  // namespace serve
}  // namespace xai
