#ifndef XAI_SERVE_REQUEST_H_
#define XAI_SERVE_REQUEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xai/core/matrix.h"
#include "xai/core/trace.h"
#include "xai/explain/counterfactual/counterfactual.h"
#include "xai/explain/explanation.h"
#include "xai/rules/anchors.h"
#include "xai/serve/provenance.h"

namespace xai {
namespace serve {

/// \brief Which explainer a request asks for (§2 of the tutorial, served as
/// an online API instead of a library call).
enum class ExplainerKind {
  kTreeShap,          ///< Exact tree-structure Shapley values (tree models).
  kKernelShap,        ///< Weighted-regression SHAP over sampled coalitions.
  kSamplingShapley,   ///< Permutation-sampling Monte-Carlo Shapley.
  kExactShapley,      ///< Full 2^d enumeration (degradable to the above).
  kLime,              ///< Local ridge surrogate.
  kAnchors,           ///< High-precision rule anchoring the prediction.
  kCounterfactual,    ///< DiCE-style diverse counterfactuals.
};

const char* ExplainerKindName(ExplainerKind kind);

/// \brief Fidelity rung on the degradation ladder, best first. What a tier
/// means per explainer family is defined by serve::DegradationPolicy (e.g.
/// for the Shapley family: exact enumeration, KernelSHAP at a large budget,
/// KernelSHAP at a small budget, permutation sampling, coarse sampling).
enum class FidelityTier {
  kExact = 0,
  kHigh = 1,
  kStandard = 2,
  kReduced = 3,
  kMinimal = 4,
};

const char* FidelityTierName(FidelityTier tier);

/// \brief One explanation request against a registered model snapshot.
struct ExplainRequest {
  /// Registry name of the model snapshot to explain.
  std::string model;
  /// The instance to explain (feature vector in the model's schema).
  Vector instance;
  ExplainerKind kind = ExplainerKind::kKernelShap;
  /// Requested fidelity; the server may serve a lower tier under deadline
  /// pressure (never a higher one).
  FidelityTier fidelity = FidelityTier::kHigh;
  /// Latency budget in milliseconds; <= 0 means "no deadline" (the
  /// requested tier is always served). Degradation decisions are priced
  /// against this budget with a deterministic cost model — they depend on
  /// the request alone, never on wall-clock state, so responses are
  /// reproducible (see serve/degradation.h).
  double deadline_ms = 0.0;
  /// Master seed of every stochastic explainer involved.
  uint64_t seed = 17;
  /// When false a request that cannot fund its tier fails instead of
  /// being downgraded.
  bool allow_degradation = true;
  /// Opt-out for the explanation cache (always miss, never store).
  bool use_cache = true;
  /// Counterfactual requests only: the class to reach.
  int desired_class = 1;
  /// Tenant this request bills against in the SLO tracker; empty maps to
  /// "default". Not part of the cache key — tenants asking the same
  /// question share the cached answer.
  std::string tenant;
  /// Request-scoped trace identity. trace_id == 0 (the default) lets the
  /// server assign one from its deterministic ContentHash64-seeded stream;
  /// a caller propagating an upstream trace sets it explicitly.
  telemetry::TraceContext trace;
};

/// \brief The served explanation plus serving metadata. Exactly one payload
/// field is populated, per `kind`.
struct ExplainResponse {
  ExplainerKind kind = ExplainerKind::kKernelShap;
  /// Payload of attribution-shaped kinds (all Shapley variants and LIME).
  AttributionExplanation attribution;
  /// Payload of kAnchors.
  AnchorRule anchor;
  /// Payload of kCounterfactual.
  std::vector<Counterfactual> counterfactuals;

  /// Fidelity rung actually served; `degraded` iff below the request.
  FidelityTier served_tier = FidelityTier::kHigh;
  bool degraded = false;
  bool cache_hit = false;
  /// Fingerprint of the model snapshot that produced the payload.
  uint64_t model_fingerprint = 0;
  /// The deterministic cost the tier decision was priced at.
  int64_t planned_evals = 0;

  /// Wall-clock serving metadata — informational only, deliberately
  /// excluded from PayloadHash() and from cached entries' identity.
  double latency_ms = 0.0;
  bool deadline_met = true;

  /// Per-request audit record (see serve/provenance.h). Like the latency
  /// fields, excluded from PayloadHash(): provenance describes *how* the
  /// answer was produced, and must not perturb the bit-identical payload
  /// contract across cache hits, coalescing, or thread counts.
  ExplanationProvenance provenance;
};

/// Stable 64-bit digest of a response's deterministic content (payload,
/// kind, tier, fingerprint — not latency or cache flags). Two responses to
/// the same request must digest identically at any thread count; tests and
/// bench_e19 assert exactly that.
uint64_t PayloadHash(const ExplainResponse& response);

/// Approximate heap footprint of a response, used for the cache's byte
/// budget accounting.
size_t ApproxResponseBytes(const ExplainResponse& response);

}  // namespace serve
}  // namespace xai

#endif  // XAI_SERVE_REQUEST_H_
