#include "xai/serve/degradation.h"

#include <algorithm>

#include "xai/explain/shapley/exact_shapley.h"
#include "xai/explain/shapley/sampling_shapley.h"

namespace xai {
namespace serve {
namespace {

constexpr int64_t kSaturatedEvals = 4000000000000000000;

bool IsShapleyFamily(ExplainerKind kind) {
  return kind == ExplainerKind::kKernelShap ||
         kind == ExplainerKind::kSamplingShapley ||
         kind == ExplainerKind::kExactShapley;
}

/// The best rung a kind can meaningfully serve: asking for "exact" LIME or
/// an exact tier on a sampling-Shapley request silently starts at the
/// kind's natural top instead of switching the caller to a different
/// algorithm *upward* (degradation only ever moves down the ladder).
FidelityTier NaturalTop(ExplainerKind kind) {
  switch (kind) {
    case ExplainerKind::kExactShapley:
      return FidelityTier::kExact;
    case ExplainerKind::kSamplingShapley:
      return FidelityTier::kReduced;
    default:
      return FidelityTier::kHigh;
  }
}

}  // namespace

int64_t CostModel::EvalBudget(double deadline_ms) const {
  if (deadline_ms <= overhead_ms) return 0;
  double evals = (deadline_ms - overhead_ms) * evals_per_ms;
  if (evals >= static_cast<double>(kSaturatedEvals)) return kSaturatedEvals;
  return static_cast<int64_t>(evals);
}

int64_t CostModel::TreeShapEvalEquivalents(int64_t tree_nodes) const {
  if (tree_nodes <= 0 || tree_shap_nodes_per_ms <= 0.0) return 0;
  const double evals = static_cast<double>(tree_nodes) /
                       tree_shap_nodes_per_ms * evals_per_ms;
  if (evals >= static_cast<double>(kSaturatedEvals)) return kSaturatedEvals;
  const int64_t rounded = static_cast<int64_t>(evals);
  return rounded < evals ? rounded + 1 : rounded;
}

DegradationPolicy::DegradationPolicy(const CostModel& cost_model)
    : cost_model_(cost_model) {}

TierPlan DegradationPolicy::PlanForTier(ExplainerKind kind, FidelityTier tier,
                                        int num_features, int background_rows,
                                        int64_t tree_nodes) const {
  TierPlan plan;
  plan.tier = tier;

  if (kind == ExplainerKind::kTreeShap) {
    // The polynomial tree algorithm is exact and has no fidelity knob: it
    // is its own best (and only) tier. It is not free, though — the flat
    // kernel visits every node of the ensemble once — so price it in
    // eval-equivalents for the deadline-risk accounting.
    plan.tier = FidelityTier::kExact;
    plan.algorithm = ExplainerKind::kTreeShap;
    plan.planned_evals = cost_model_.TreeShapEvalEquivalents(tree_nodes);
    return plan;
  }

  if (IsShapleyFamily(kind)) {
    switch (tier) {
      case FidelityTier::kExact:
        plan.algorithm = ExplainerKind::kExactShapley;
        plan.planned_evals =
            ExactShapleyPlannedEvals(num_features, background_rows);
        return plan;
      case FidelityTier::kHigh:
      case FidelityTier::kStandard:
        plan.algorithm = ExplainerKind::kKernelShap;
        plan.kernel_config.coalition_budget =
            tier == FidelityTier::kHigh ? 2048 : 512;
        plan.planned_evals = KernelShapPlannedEvals(
            plan.kernel_config, num_features, background_rows);
        return plan;
      case FidelityTier::kReduced:
      case FidelityTier::kMinimal:
        plan.algorithm = ExplainerKind::kSamplingShapley;
        plan.sampling_permutations = tier == FidelityTier::kReduced ? 32 : 8;
        plan.planned_evals = SamplingShapleyPlannedEvals(
            plan.sampling_permutations, num_features, background_rows);
        return plan;
    }
  }

  if (kind == ExplainerKind::kLime) {
    static constexpr int kSamples[] = {4000, 2000, 1000, 400, 100};
    plan.algorithm = ExplainerKind::kLime;
    LimeConfig base;
    base.num_samples = kSamples[0];
    plan.lime_config =
        LimeForBudget(base, kSamples[static_cast<int>(tier)]);
    plan.planned_evals = LimePlannedEvals(plan.lime_config);
    return plan;
  }

  if (kind == ExplainerKind::kAnchors) {
    static constexpr int64_t kEvalBudget[] = {96000, 48000, 24000, 9600,
                                              4800};
    plan.algorithm = ExplainerKind::kAnchors;
    plan.anchors_config =
        AnchorsForBudget(AnchorsConfig{}, kEvalBudget[static_cast<int>(tier)]);
    plan.planned_evals = AnchorsPlannedEvals(plan.anchors_config);
    return plan;
  }

  // kCounterfactual.
  static constexpr int64_t kCallBudget[] = {26400, 16000, 8000, 4000, 2000};
  plan.algorithm = ExplainerKind::kCounterfactual;
  plan.dice_config =
      DiceForBudget(DiceConfig{}, kCallBudget[static_cast<int>(tier)]);
  plan.planned_evals = DicePlannedModelCalls(plan.dice_config);
  return plan;
}

TierPlan DegradationPolicy::Choose(ExplainerKind kind, FidelityTier requested,
                                   int num_features, int background_rows,
                                   double deadline_ms,
                                   int64_t tree_nodes) const {
  FidelityTier start =
      std::max(requested, NaturalTop(kind),
               [](FidelityTier a, FidelityTier b) {
                 return static_cast<int>(a) < static_cast<int>(b);
               });
  if (kind == ExplainerKind::kTreeShap || deadline_ms <= 0)
    return PlanForTier(kind, start, num_features, background_rows,
                       tree_nodes);

  const int64_t budget = cost_model_.EvalBudget(deadline_ms);
  TierPlan plan;
  for (int t = static_cast<int>(start);
       t <= static_cast<int>(FidelityTier::kMinimal); ++t) {
    plan = PlanForTier(kind, static_cast<FidelityTier>(t), num_features,
                       background_rows);
    if (plan.planned_evals <= budget) return plan;
  }
  // Nothing fits: serve the cheapest rung anyway (the caller records the
  // deadline risk; refusing to answer helps nobody).
  return plan;
}

}  // namespace serve
}  // namespace xai
