#ifndef XAI_SERVE_PROVENANCE_H_
#define XAI_SERVE_PROVENANCE_H_

#include <cstdint>
#include <ostream>
#include <string>

/// \file
/// Per-request explanation provenance: the serving-side audit record that
/// answers "why was *this* request slow / degraded / a cache miss?" without
/// re-running anything. One record rides on every ExplainResponse — a
/// product feature, not telemetry: records are populated even in
/// XAI_TELEMETRY=0 builds (the fields are assignments the server makes
/// anyway; only the span *events* compile out).
///
/// The record is deliberately flat and JSONL-serializable so bench/CI can
/// schema-validate coverage (tools/validate_bench_report.py --provenance)
/// and join it against the Chrome trace by trace_id
/// (tools/analyze_trace.py --provenance).

namespace xai {
namespace serve {

struct ExplanationProvenance {
  /// Request identity — matches the args.trace_id on every span this
  /// request emitted, including spans inside ParallelFor workers.
  uint64_t trace_id = 0;
  /// The request's root span (parent of serve/execute etc.).
  uint64_t root_span_id = 0;

  std::string tenant;
  std::string model;
  /// Pointers into string literals (ExplainerKindName / FidelityTierName /
  /// simd::BackendName); always non-null once stamped.
  const char* kind = "";
  const char* requested_tier = "";
  const char* served_tier = "";
  /// The algorithm that actually produced the payload after degradation
  /// (e.g. a kExactShapley request degraded onto "kernel_shap").
  const char* algorithm = "";

  bool degraded = false;
  bool cache_hit = false;
  /// True when this request never executed: it coalesced onto an identical
  /// in-flight request (the "leader") inside the RequestBatcher.
  bool coalesced = false;
  /// trace_id of the leader whose execution produced this payload
  /// (0 unless coalesced).
  uint64_t coalesced_onto = 0;

  /// Model-row evaluations the cost model priced the tier decision at...
  int64_t planned_evals = 0;
  /// ...and what execution actually spent (0 for cache hits and for
  /// explainers whose cost the server cannot observe, e.g. TreeSHAP's
  /// structural walk).
  int64_t used_evals = 0;

  /// simd::BackendName of the dispatch tier active during execution.
  const char* simd_backend = "";
  /// Number of requests in the batch this one executed in (1 = inline).
  int batch_size = 0;

  /// Time breakdown, milliseconds: queue wait (submit -> batch start),
  /// explainer execution, and end-to-end (equals ExplainResponse::
  /// latency_ms). cache-hit and coalesced-follower records keep
  /// compute_ms = 0 — they did not run the explainer.
  double queue_ms = 0.0;
  double compute_ms = 0.0;
  double total_ms = 0.0;

  bool deadline_met = true;
  /// True when admission control refused this request (rate limit, pending
  /// bound, or a full batcher queue): nothing executed, the tenant got a
  /// typed Overloaded answer, and the shed is charged against their SLO
  /// error budget. Shed records carry complete = false by construction —
  /// there was no execution to account for.
  bool shed = false;
  /// Set last, once every field above is final: the coverage bit bench_e22
  /// and the validator count. A response with complete == false means the
  /// serving path lost provenance somewhere — a bug.
  bool complete = false;
};

/// One JSONL line (object + '\n'). 64-bit ids serialize as decimal strings
/// (JSON numbers are doubles — ids above 2^53 would round).
void WriteProvenanceJsonl(std::ostream& os, const ExplanationProvenance& p);

}  // namespace serve
}  // namespace xai

#endif  // XAI_SERVE_PROVENANCE_H_
