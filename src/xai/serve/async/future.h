#ifndef XAI_SERVE_ASYNC_FUTURE_H_
#define XAI_SERVE_ASYNC_FUTURE_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "xai/core/check.h"
#include "xai/core/status.h"
#include "xai/core/trace.h"
#include "xai/serve/request.h"

/// \file
/// Completion-callback futures for the async serving front end.
///
/// std::future has no continuation hook: a caller can only block on it,
/// which is exactly what an event loop must never do. This Future<T> adds
/// `Then(fn)` — the continuation runs immediately if the value is already
/// there, or on whichever thread fulfills the promise otherwise. That keeps
/// the whole serving path event-driven: the wire layer decodes on the loop,
/// the batcher computes on pool workers, and the response encoder runs as a
/// continuation wherever the result lands, with zero parked threads.
///
/// Trace propagation: Then() captures the caller's TraceContext at
/// registration and installs it around the continuation (the same contract
/// as telemetry::BindTraceContext), so spans opened inside a continuation
/// parent-link to the request that registered it even though the value may
/// be produced on a foreign thread.
///
/// Blocking `Wait()`/`Get()` exist for tests and the bench driver only —
/// production loop code must use Then().

namespace xai {
namespace serve {
namespace async {

/// Shared channel between one Promise<T> and any number of Futures /
/// continuations. Value set exactly once (XAI_CHECK-enforced);
/// continuations registered after completion run inline on the registering
/// thread.
template <typename T>
class SharedState {
 public:
  void Set(T value) {
    std::vector<std::function<void(const T&)>> callbacks;
    {
      std::lock_guard<std::mutex> lock(mu_);
      XAI_CHECK_MSG(!value_.has_value(), "promise fulfilled twice");
      value_.emplace(std::move(value));
      callbacks.swap(callbacks_);
    }
    cv_.notify_all();
    for (auto& callback : callbacks) callback(*value_);
  }

  /// Registers `fn`, wrapped to run under `ctx`. Runs inline when the value
  /// already arrived.
  void AddCallback(const telemetry::TraceContext& ctx,
                   std::function<void(const T&)> fn) {
    auto bound = [ctx, fn = std::move(fn)](const T& value) {
      telemetry::ScopedTraceContext scope(ctx);
      fn(value);
    };
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!value_.has_value()) {
        callbacks_.push_back(std::move(bound));
        return;
      }
    }
    // Completed: run now, outside the lock (the value is immutable once
    // set, so the unlocked read cannot tear).
    bound(*value_);
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return value_.has_value(); });
  }

  const T& Get() {
    Wait();
    return *value_;
  }

  bool Ready() {
    std::lock_guard<std::mutex> lock(mu_);
    return value_.has_value();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::optional<T> value_;
  std::vector<std::function<void(const T&)>> callbacks_;
};

template <typename T>
class Promise;

/// \brief Read side. Copyable (shares the state); continuations observe the
/// value by const reference — clone if you need to keep it.
template <typename T>
class Future {
 public:
  Future() = default;
  explicit Future(std::shared_ptr<SharedState<T>> state)
      : state_(std::move(state)) {}

  /// Makes an already-completed future (admission sheds resolve without
  /// ever touching the loop).
  static Future Ready(T value) {
    auto state = std::make_shared<SharedState<T>>();
    state->Set(std::move(value));
    return Future(std::move(state));
  }

  bool valid() const { return state_ != nullptr; }

  /// Registers a continuation bound to the *caller's* current TraceContext.
  /// Runs inline if already completed; otherwise on the fulfilling thread.
  void Then(std::function<void(const T&)> fn) {
    XAI_CHECK_MSG(state_ != nullptr, "Then() on an invalid future");
    state_->AddCallback(telemetry::CurrentTraceContext(), std::move(fn));
  }

  /// Blocking accessors — tests and the bench driver only.
  void Wait() const {
    XAI_CHECK_MSG(state_ != nullptr, "Wait() on an invalid future");
    state_->Wait();
  }
  const T& Get() const {
    XAI_CHECK_MSG(state_ != nullptr, "Get() on an invalid future");
    return state_->Get();
  }
  bool Ready() const { return state_ != nullptr && state_->Ready(); }

 private:
  std::shared_ptr<SharedState<T>> state_;
};

/// \brief Write side. Copyable — copies share the state so a promise can
/// ride inside a std::function task (which must be copyable); fulfilling
/// twice through any copy aborts.
template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<SharedState<T>>()) {}

  Future<T> GetFuture() const { return Future<T>(state_); }

  /// Const: fulfilling mutates the shared state, not this handle — so a
  /// promise captured by value in a non-mutable lambda can still deliver.
  void Set(T value) const { state_->Set(std::move(value)); }

 private:
  std::shared_ptr<SharedState<T>> state_;
};

/// The serving path's currency: a response or a typed error.
using ResponseFuture = Future<Result<ExplainResponse>>;
using ResponsePromise = Promise<Result<ExplainResponse>>;

/// Wire-level currency: an encoded response/error frame.
using FrameFuture = Future<std::string>;
using FramePromise = Promise<std::string>;

}  // namespace async
}  // namespace serve
}  // namespace xai

#endif  // XAI_SERVE_ASYNC_FUTURE_H_
