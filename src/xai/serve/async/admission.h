#ifndef XAI_SERVE_ASYNC_ADMISSION_H_
#define XAI_SERVE_ASYNC_ADMISSION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

/// \file
/// Per-tenant admission control for the async front end.
///
/// Two independent gates, checked in order at submission time:
///  1. A bounded in-flight count (`max_pending_per_tenant`): one tenant
///     flooding slow exact-Shapley requests cannot occupy the whole
///     batcher queue while others starve.
///  2. A token bucket (`tokens_per_sec` refill, `burst` capacity): smooths
///     sustained arrival rate while letting short bursts through.
///
/// A shed is a first-class outcome, not an exception: the front end
/// records it in ExplanationProvenance (shed=true, complete=false),
/// charges it to the tenant's SloTracker error budget, and answers with a
/// typed Overloaded wire frame — §7's position that an explanation service
/// must degrade and account, not silently drop.
///
/// Determinism: all state transitions are pure functions of (previous
/// state, now_ns). Time comes in as an argument — the caller reads its
/// Clock (virtual under test) — so a fixed per-tenant schedule of
/// (now_ns, op) pairs replays to bit-identical admit/shed sequences at any
/// thread count; tests assert exactly that at 1/4/8 threads.

namespace xai {
namespace serve {
namespace async {

/// \brief Classic token bucket over int64 nanosecond timestamps and
/// fractional tokens. Not thread-safe on its own; the controller
/// serializes access per tenant.
struct TokenBucket {
  double tokens = 0.0;
  int64_t last_refill_ns = 0;

  /// Refills for elapsed time at `rate_per_sec` (capped at `burst`), then
  /// takes one token if available. Monotonic `now_ns` required.
  bool TryAcquire(int64_t now_ns, double rate_per_sec, double burst);
};

class AdmissionController {
 public:
  struct Config {
    /// Steady-state per-tenant request rate. <= 0 disables the bucket gate
    /// (pending bound still applies).
    double tokens_per_sec = 200.0;
    /// Bucket capacity: how far a tenant may burst above steady state.
    double burst = 50.0;
    /// In-flight requests per tenant before queue-full sheds. <= 0
    /// disables the bound.
    int max_pending_per_tenant = 64;
  };

  enum class Outcome {
    kAdmitted,
    kShedRateLimited,  ///< Token bucket empty.
    kShedPendingFull,  ///< Tenant's in-flight bound reached.
  };

  explicit AdmissionController(const Config& config);

  /// One admission decision for `tenant` at time `now_ns` (the caller's
  /// Clock). Admitted requests occupy a pending slot until OnComplete.
  Outcome Admit(const std::string& tenant, int64_t now_ns);

  /// Releases the pending slot taken by an admitted request (call on
  /// delivery of its response or error).
  void OnComplete(const std::string& tenant);

  struct TenantStats {
    double tokens_available = 0.0;
    int pending = 0;
    int64_t admitted = 0;
    int64_t shed_rate_limited = 0;
    int64_t shed_pending_full = 0;
  };

  /// Per-tenant snapshot, tenant-sorted (std::map iteration order) so
  /// metrics renderings are stable.
  std::vector<std::pair<std::string, TenantStats>> Snapshot() const;

  /// Total sheds across tenants (both gates).
  int64_t TotalShed() const;

 private:
  struct Cell {
    TokenBucket bucket;
    bool seeded = false;  ///< Bucket starts full at first touch.
    int pending = 0;
    int64_t admitted = 0;
    int64_t shed_rate_limited = 0;
    int64_t shed_pending_full = 0;
  };

  const Config config_;
  mutable std::mutex mu_;
  std::map<std::string, Cell> cells_;
};

const char* AdmissionOutcomeName(AdmissionController::Outcome outcome);

}  // namespace async
}  // namespace serve
}  // namespace xai

#endif  // XAI_SERVE_ASYNC_ADMISSION_H_
