#include "xai/serve/async/session.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "xai/core/check.h"
#include "xai/core/rng.h"
#include "xai/core/simd.h"
#include "xai/core/telemetry.h"
#include "xai/explain/counterfactual/counterfactual.h"
#include "xai/explain/counterfactual/dice.h"
#include "xai/explain/shapley/exact_shapley.h"
#include "xai/explain/shapley/kernel_shap.h"
#include "xai/explain/shapley/sampling_shapley.h"
#include "xai/explain/shapley/value_function.h"
#include "xai/model/serialization.h"

namespace xai {
namespace serve {
namespace async {
namespace {

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::vector<std::string> FeatureNames(const Dataset& background) {
  std::vector<std::string> names;
  names.reserve(background.schema().features.size());
  for (const auto& feature : background.schema().features)
    names.push_back(feature.name);
  return names;
}

const std::string& TenantOf(const ExplainRequest& request) {
  static const std::string kDefault = "default";
  return request.tenant.empty() ? kDefault : request.tenant;
}

/// \brief Cross-instance coalition memo around any CoalitionGame.
///
/// Correctness rests on MarginalFeatureGame's structure: v_x(S) reads the
/// instance only at coordinates in S (everything else comes from the
/// background), so the key (model_fp, background_fp, S, x|S) fully
/// determines the value. Two instances that agree on S share the entry and
/// the reused value is bit-identical to recomputation — the memo changes
/// cost, never content.
class SessionMemoGame : public CoalitionGame {
 public:
  SessionMemoGame(const CoalitionGame* inner, uint64_t model_fp,
                  uint64_t background_fp, const Vector& instance,
                  std::unordered_map<uint64_t, double>* memo,
                  std::mutex* memo_mu, size_t max_entries, int64_t* hits,
                  int64_t* misses)
      : inner_(inner),
        model_fp_(model_fp),
        background_fp_(background_fp),
        instance_(instance),
        memo_(memo),
        memo_mu_(memo_mu),
        max_entries_(max_entries),
        hits_(hits),
        misses_(misses) {}

  int num_players() const override { return inner_->num_players(); }

  double Value(uint64_t coalition) const override {
    const uint64_t key = KeyFor(coalition);
    {
      std::lock_guard<std::mutex> lock(*memo_mu_);
      auto it = memo_->find(key);
      if (it != memo_->end()) {
        ++*hits_;
        XAI_COUNTER_INC("serve/session_memo_hits");
        return it->second;
      }
    }
    const double value = inner_->Value(coalition);
    {
      std::lock_guard<std::mutex> lock(*memo_mu_);
      ++*misses_;
      XAI_COUNTER_INC("serve/session_memo_misses");
      // Bounded: past the cap the memo stops growing but stays readable.
      if (memo_->size() < max_entries_) memo_->emplace(key, value);
    }
    return value;
  }

 private:
  uint64_t KeyFor(uint64_t coalition) const {
    // (model_fp, background_fp, S, x restricted to S), hashed over raw
    // little-endian words. At most 3 + 64 words on the stack.
    uint64_t words[67];
    size_t n = 0;
    words[n++] = model_fp_;
    words[n++] = background_fp_;
    words[n++] = coalition;
    for (int i = 0; i < num_players(); ++i) {
      if ((coalition >> i) & 1ull) {
        uint64_t bits;
        std::memcpy(&bits, &instance_[i], sizeof(bits));
        words[n++] = bits;
      }
    }
    return ContentHash64(words, n * sizeof(uint64_t));
  }

  const CoalitionGame* inner_;
  const uint64_t model_fp_;
  const uint64_t background_fp_;
  const Vector& instance_;
  std::unordered_map<uint64_t, double>* memo_;
  std::mutex* memo_mu_;
  const size_t max_entries_;
  int64_t* hits_;
  int64_t* misses_;
};

/// Same (key, config) identity the server's cache uses, mixed to one word
/// for the session's exact-repeat response memo.
uint64_t ResponseMemoKey(const ExplainRequest& request,
                         const ModelEntry& entry, FidelityTier tier) {
  const uint64_t fields[] = {
      entry.fingerprint,
      ContentHash64(request.instance),
      static_cast<uint64_t>(request.kind),
      static_cast<uint64_t>(tier),
      request.seed,
      entry.background_fingerprint,
      static_cast<uint64_t>(static_cast<int64_t>(request.desired_class)),
  };
  return ContentHash64(fields, sizeof(fields));
}

void StampProvenance(const ExplainRequest& request, const TierPlan& plan,
                     bool degraded, ExplainResponse* response) {
  ExplanationProvenance& prov = response->provenance;
  prov.trace_id = request.trace.trace_id;
  prov.root_span_id = request.trace.span_id;
  prov.tenant = TenantOf(request);
  prov.model = request.model;
  prov.kind = ExplainerKindName(request.kind);
  prov.requested_tier = FidelityTierName(request.fidelity);
  prov.served_tier = FidelityTierName(plan.tier);
  prov.algorithm = ExplainerKindName(plan.algorithm);
  prov.degraded = degraded;
  prov.planned_evals = plan.planned_evals;
  prov.simd_backend = simd::BackendName(simd::Active());
  prov.batch_size = 1;
}

void FinalizeTiming(const ExplainRequest& request,
                    std::chrono::steady_clock::time_point start,
                    ExplainResponse* response) {
  response->latency_ms = ElapsedMs(start);
  response->deadline_met = request.deadline_ms <= 0.0 ||
                           response->latency_ms <= request.deadline_ms;
  response->provenance.total_ms = response->latency_ms;
  response->provenance.deadline_met = response->deadline_met;
  response->provenance.complete = true;
}

}  // namespace

SessionManager::SessionManager(ExplainServer* server, const Config& config)
    : server_(server), config_(config) {
  XAI_CHECK_MSG(server_ != nullptr, "SessionManager needs a server");
}

Result<uint64_t> SessionManager::OpenSession(int64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.max_sessions > 0 &&
      static_cast<int>(sessions_.size()) >= config_.max_sessions)
    return Status::Overloaded("session table full");
  auto session = std::make_shared<Session>();
  session->id = next_id_++;
  session->last_used_ns = now_ns;
  const uint64_t id = session->id;
  sessions_.emplace(id, std::move(session));
  ++opened_;
  XAI_COUNTER_INC("serve/sessions_opened");
  return id;
}

Status SessionManager::CloseSession(uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end())
    return Status::NotFound("no session " + std::to_string(session_id));
  RetireLocked(*it->second);
  sessions_.erase(it);
  return Status::OK();
}

void SessionManager::ExpireIdle(int64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now_ns - it->second->last_used_ns > config_.session_ttl_ns) {
      RetireLocked(*it->second);
      it = sessions_.erase(it);
      ++expired_;
      XAI_COUNTER_INC("serve/sessions_expired");
    } else {
      ++it;
    }
  }
}

void SessionManager::RetireLocked(Session& session) {
  // A turn may still be running against this session — it holds its own
  // shared_ptr, and close/expire can arrive from the front end's caller
  // threads. The counters are only ever mutated under memo_mu, so lock it
  // for the fold; increments landing after the fold are dropped from the
  // lifetime totals (stats drift on a closed session, never corruption).
  std::lock_guard<std::mutex> memo_lock(session.memo_mu);
  retired_memo_hits_ += session.memo_hits;
  retired_memo_misses_ += session.memo_misses;
}

Result<ExplainResponse> SessionManager::Explain(
    uint64_t session_id, const ExplainRequest& request, int64_t now_ns) {
  std::shared_ptr<Session> session_ref;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end())
      return Status::NotFound("no session " +
                              std::to_string(session_id));
    it->second->last_used_ns = now_ns;
    // The turn owns a reference: CloseSession/ExpireIdle may erase the map
    // entry concurrently (front-end caller threads), but the session
    // outlives the turn and is freed when this reference drops.
    session_ref = it->second;
  }
  Session* session = session_ref.get();

  auto entry = server_->registry().Find(request.model);
  if (entry == nullptr)
    return Status::NotFound("no registered model named " + request.model);
  const int num_features = entry->num_features();
  if (static_cast<int>(request.instance.size()) != num_features)
    return Status::InvalidArgument(
        "instance has " + std::to_string(request.instance.size()) +
        " features; model " + request.model + " expects " +
        std::to_string(num_features));

  const DegradationPolicy& policy = server_->policy();
  const int background_rows = entry->background->num_rows();
  const int64_t tree_nodes =
      entry->flat != nullptr ? entry->flat->num_nodes() : 0;
  const TierPlan plan =
      policy.Choose(request.kind, request.fidelity, num_features,
                    background_rows, request.deadline_ms, tree_nodes);
  const FidelityTier reference =
      policy
          .Choose(request.kind, request.fidelity, num_features,
                  background_rows, /*deadline_ms=*/0.0, tree_nodes)
          .tier;
  const bool degraded = plan.tier != reference;
  if (degraded && !request.allow_degradation)
    return Status::OutOfRange(
        "deadline of " + std::to_string(request.deadline_ms) +
        " ms cannot fund tier " + FidelityTierName(reference) +
        " and the request forbids degradation");

  // Exact repeat within the dialogue: answer from the session's own
  // response memo (the global cache is deliberately not consulted).
  const uint64_t memo_key = ResponseMemoKey(request, *entry, plan.tier);
  if (request.use_cache) {
    auto it = session->responses.find(memo_key);
    if (it != session->responses.end()) {
      ExplainResponse response = *it->second;
      response.cache_hit = true;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++reuse_answers_;
      }
      XAI_COUNTER_INC("serve/session_reuse_answers");
      return response;
    }
  }

  Result<ExplainResponse> result = Status::Internal("unreachable");
  switch (plan.algorithm) {
    case ExplainerKind::kKernelShap:
    case ExplainerKind::kSamplingShapley:
    case ExplainerKind::kExactShapley:
      result = ExplainShapley(session, request, plan, degraded, *entry);
      break;
    case ExplainerKind::kCounterfactual:
      result = ExplainCounterfactual(session, request, plan, degraded,
                                     *entry);
      break;
    default:
      // TreeSHAP / LIME / Anchors have no cross-turn state worth keeping;
      // the stateless pipeline (with its global cache) serves them.
      return server_->Explain(request);
  }
  if (!result.ok()) return result.status();

  ExplainResponse response = std::move(result).ValueOrDie();
  if (request.use_cache)
    session->responses.emplace(
        memo_key, std::make_shared<const ExplainResponse>(response));
  return response;
}

Result<ExplainResponse> SessionManager::ExplainShapley(
    Session* session, const ExplainRequest& request, const TierPlan& plan,
    bool degraded, const ModelEntry& entry) {
  const auto start = std::chrono::steady_clock::now();
  ExplainResponse response;
  response.kind = request.kind;
  response.served_tier = plan.tier;
  response.degraded = degraded;
  response.model_fingerprint = entry.fingerprint;
  response.planned_evals = plan.planned_evals;
  StampProvenance(request, plan, degraded, &response);

  const PredictFn predict = AsPredictFn(*entry.model);
  const int64_t background_rows = entry.background->num_rows();
  MarginalFeatureGame inner(*entry.model, request.instance,
                            entry.background->x());
  SessionMemoGame game(&inner, entry.fingerprint,
                       entry.background_fingerprint, request.instance,
                       &session->memo, &session->memo_mu,
                       config_.max_memo_entries, &session->memo_hits,
                       &session->memo_misses);
  Rng rng(request.seed);

  switch (plan.algorithm) {
    case ExplainerKind::kExactShapley: {
      XAI_ASSIGN_OR_RETURN(Vector values, ExactShapley(game));
      response.attribution.attributions = std::move(values);
      response.attribution.base_value = game.Value(0);
      response.attribution.prediction = predict(request.instance);
      response.attribution.feature_names = FeatureNames(*entry.background);
      break;
    }
    case ExplainerKind::kKernelShap: {
      XAI_ASSIGN_OR_RETURN(response.attribution,
                           KernelShap(game, plan.kernel_config, &rng));
      break;
    }
    case ExplainerKind::kSamplingShapley: {
      SamplingShapleyResult sampled =
          SamplingShapley(game, plan.sampling_permutations, &rng);
      response.attribution.attributions = std::move(sampled.values);
      response.attribution.base_value = game.Value(0);
      response.attribution.prediction = predict(request.instance);
      response.attribution.feature_names = FeatureNames(*entry.background);
      break;
    }
    default:
      return Status::Internal("non-Shapley plan in ExplainShapley");
  }

  // Only coalitions the memo could not answer touched the model.
  response.provenance.used_evals =
      inner.num_evaluations() * background_rows;
  response.provenance.compute_ms = ElapsedMs(start);
  FinalizeTiming(request, start, &response);
  return response;
}

Result<ExplainResponse> SessionManager::ExplainCounterfactual(
    Session* session, const ExplainRequest& request, const TierPlan& plan,
    bool degraded, const ModelEntry& entry) {
  const auto start = std::chrono::steady_clock::now();
  ExplainResponse response;
  response.kind = request.kind;
  response.served_tier = plan.tier;
  response.degraded = degraded;
  response.model_fingerprint = entry.fingerprint;
  response.planned_evals = plan.planned_evals;
  StampProvenance(request, plan, degraded, &response);

  const PredictFn predict = AsPredictFn(*entry.model);
  CounterfactualEvaluator evaluator(*entry.background);
  std::vector<PooledCandidate>& pool = session->pool[entry.fingerprint];

  // Why-not / what-if fast path: re-validate the dialogue's previous
  // counterfactuals against *this* turn's instance and target class. A
  // pooled candidate costs one model call to check vs. a full random-walk
  // search to rediscover.
  std::vector<Counterfactual> valid;
  for (const PooledCandidate& candidate : pool) {
    Counterfactual cf =
        evaluator.Evaluate(predict, request.instance, candidate.x,
                           request.desired_class, plan.dice_config.threshold);
    if (cf.valid) valid.push_back(std::move(cf));
  }
  const int64_t pool_calls = static_cast<int64_t>(pool.size());

  if (static_cast<int>(valid.size()) >= plan.dice_config.k) {
    // Deterministic selection: proximity, then content hash as tiebreak.
    std::sort(valid.begin(), valid.end(),
              [](const Counterfactual& a, const Counterfactual& b) {
                if (a.proximity != b.proximity)
                  return a.proximity < b.proximity;
                return ContentHash64(a.x) < ContentHash64(b.x);
              });
    valid.resize(plan.dice_config.k);
    response.counterfactuals = std::move(valid);
    response.provenance.used_evals = pool_calls;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++reuse_answers_;
    }
    XAI_COUNTER_INC("serve/session_reuse_answers");
    response.provenance.compute_ms = ElapsedMs(start);
    FinalizeTiming(request, start, &response);
    return response;
  }

  // Pool cannot fund k candidates: fresh search, then bank every valid
  // counterfactual for the next turn (deduplicated by content).
  ActionabilitySpec spec = ActionabilitySpec::AllFree(*entry.background);
  Rng rng(request.seed);
  XAI_ASSIGN_OR_RETURN(
      DiceResult dice,
      DiceCounterfactuals(predict, request.instance, request.desired_class,
                          evaluator, spec, plan.dice_config, &rng));
  for (const Counterfactual& cf : dice.counterfactuals) {
    if (!cf.valid) continue;
    if (pool.size() >= config_.max_pool_candidates) break;
    const uint64_t hash = ContentHash64(cf.x);
    bool known = false;
    for (const PooledCandidate& candidate : pool)
      if (candidate.content_hash == hash) {
        known = true;
        break;
      }
    if (!known) pool.push_back(PooledCandidate{cf.x, hash});
  }
  response.counterfactuals = std::move(dice.counterfactuals);
  response.provenance.used_evals = pool_calls + plan.planned_evals;
  response.provenance.compute_ms = ElapsedMs(start);
  FinalizeTiming(request, start, &response);
  return response;
}

SessionManager::Stats SessionManager::GetStats() const {
  Stats stats;
  std::lock_guard<std::mutex> lock(mu_);
  stats.active_sessions = static_cast<int>(sessions_.size());
  stats.opened = opened_;
  stats.expired = expired_;
  stats.reuse_answers = reuse_answers_;
  stats.memo_hits = retired_memo_hits_;
  stats.memo_misses = retired_memo_misses_;
  for (const auto& [id, session] : sessions_) {
    std::lock_guard<std::mutex> memo_lock(session->memo_mu);
    stats.memo_hits += session->memo_hits;
    stats.memo_misses += session->memo_misses;
  }
  const int64_t total = stats.memo_hits + stats.memo_misses;
  stats.memo_hit_rate =
      total > 0 ? static_cast<double>(stats.memo_hits) /
                      static_cast<double>(total)
                : 0.0;
  return stats;
}

}  // namespace async
}  // namespace serve
}  // namespace xai
