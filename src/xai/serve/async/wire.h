#ifndef XAI_SERVE_ASYNC_WIRE_H_
#define XAI_SERVE_ASYNC_WIRE_H_

#include <cstdint>
#include <string>

#include "xai/core/status.h"
#include "xai/serve/request.h"

/// \file
/// Compact binary wire format for explanation requests and responses.
///
/// Layout principles:
///  - Explicit little-endian byte packing (endian-independent, no struct
///    casting, no padding on the wire).
///  - Every frame opens with magic "XAIW", a version byte, and a frame-type
///    byte; every variable-length field is length-prefixed. Decoding is
///    bounds-checked at each read: a truncated or corrupted frame yields
///    InvalidArgument, never an out-of-bounds read.
///  - Request frames carry the instance's ContentHash64 fingerprint *ahead*
///    of the instance payload. The front end probes the explanation cache
///    from the fixed-size header alone — on a hit the (potentially large)
///    feature vector is never deserialized; on a miss the materialized
///    instance is verified against the carried hash before it can be
///    computed on or cached, so a client with a stale or corrupt hash
///    cannot poison a cache entry.
///  - Response frames carry PayloadHash(response) computed at encode time.
///    A receiver recomputes the hash over the decoded payload; any
///    mismatch is a torn response (bench_e23 counts exactly this, and must
///    count zero).
///
/// The format is symmetric within one build of the library (enum byte
/// values are the in-memory enumerators); it is a serving-plane protocol,
/// not a long-term storage format.

namespace xai {
namespace serve {
namespace async {

inline constexpr uint8_t kWireVersion = 1;

enum class FrameType : uint8_t {
  kRequest = 1,
  kResponse = 2,
  kError = 3,
};

/// Frame-type dispatch without decoding anything else. InvalidArgument on
/// short frames, bad magic, or unknown version/type.
Result<FrameType> PeekFrameType(const std::string& frame);

/// \brief Everything the front end needs for admission and a cache probe,
/// parsed without touching the instance payload. `instance_offset/count`
/// locate the deferred feature vector for later materialization.
struct WireRequestHeader {
  ExplainerKind kind = ExplainerKind::kKernelShap;
  FidelityTier fidelity = FidelityTier::kHigh;
  bool allow_degradation = true;
  bool use_cache = true;
  int desired_class = 1;
  double deadline_ms = 0.0;
  uint64_t seed = 17;
  /// Upstream trace id (0 = let the server assign one).
  uint64_t trace_id = 0;
  /// Interactive-session id (0 = stateless request).
  uint64_t session_id = 0;
  /// ContentHash64 of the instance vector — the on-wire cache key half.
  uint64_t instance_hash = 0;
  std::string model;
  std::string tenant;
  /// Byte offset of the first f64 of the instance within the frame.
  size_t instance_offset = 0;
  /// Number of f64 features following at instance_offset.
  size_t instance_count = 0;
};

/// Encodes `request` (with its session id) into one frame. The instance
/// hash is computed here — clients cannot carry a wrong one by accident.
/// XAI_CHECK-aborts on fields that exceed their length prefix (model or
/// tenant over 64 KiB, instance over 2^32 features): those are caller
/// bugs, not wire errors.
std::string EncodeRequest(const ExplainRequest& request,
                          uint64_t session_id = 0);

/// Parses the fixed header + names, skipping the instance payload (bounds
/// are still validated so a truncated instance fails here, not at
/// materialization time).
Result<WireRequestHeader> DecodeRequestHeader(const std::string& frame);

/// Materializes the full ExplainRequest from a previously decoded header.
/// Verifies the instance against `header.instance_hash` — the cache-miss
/// integrity gate described in the file comment.
Result<ExplainRequest> DecodeRequestBody(const std::string& frame,
                                         const WireRequestHeader& header);

/// Header + body in one step (tests, synchronous tools). `session_id_out`
/// may be null.
Result<ExplainRequest> DecodeRequest(const std::string& frame,
                                     uint64_t* session_id_out = nullptr);

/// Encodes a served response, embedding PayloadHash(response).
std::string EncodeResponse(const ExplainResponse& response);

/// A decoded response plus the integrity hash the sender embedded. The
/// caller compares `payload_hash` against PayloadHash(response) — equal
/// means the payload crossed the wire un-torn.
struct WireResponse {
  ExplainResponse response;
  uint64_t payload_hash = 0;
};

Result<WireResponse> DecodeResponse(const std::string& frame);

/// Typed failure frame (shed, validation error, executor failure).
struct WireError {
  StatusCode code = StatusCode::kInternal;
  std::string message;
  uint64_t trace_id = 0;
};

std::string EncodeError(const Status& status, uint64_t trace_id);
Result<WireError> DecodeError(const std::string& frame);

}  // namespace async
}  // namespace serve
}  // namespace xai

#endif  // XAI_SERVE_ASYNC_WIRE_H_
