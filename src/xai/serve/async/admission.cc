#include "xai/serve/async/admission.h"

#include "xai/core/check.h"
#include "xai/core/telemetry.h"

namespace xai {
namespace serve {
namespace async {

bool TokenBucket::TryAcquire(int64_t now_ns, double rate_per_sec,
                             double burst) {
  if (now_ns > last_refill_ns) {
    const double elapsed_s =
        static_cast<double>(now_ns - last_refill_ns) * 1e-9;
    tokens += elapsed_s * rate_per_sec;
    if (tokens > burst) tokens = burst;
    last_refill_ns = now_ns;
  }
  if (tokens < 1.0) return false;
  tokens -= 1.0;
  return true;
}

AdmissionController::AdmissionController(const Config& config)
    : config_(config) {}

AdmissionController::Outcome AdmissionController::Admit(
    const std::string& tenant, int64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  Cell& cell = cells_[tenant];
  if (!cell.seeded) {
    // First touch: a full bucket anchored at the first request's time.
    // Deterministic because the anchor is schedule time, not wall time.
    cell.bucket.tokens = config_.burst;
    cell.bucket.last_refill_ns = now_ns;
    cell.seeded = true;
  }
  // Pending bound first: a tenant at its concurrency cap should not also
  // drain its token bucket for requests that were never going to run.
  if (config_.max_pending_per_tenant > 0 &&
      cell.pending >= config_.max_pending_per_tenant) {
    ++cell.shed_pending_full;
    XAI_COUNTER_INC("serve/admission_shed_pending");
    return Outcome::kShedPendingFull;
  }
  if (config_.tokens_per_sec > 0.0 &&
      !cell.bucket.TryAcquire(now_ns, config_.tokens_per_sec,
                              config_.burst)) {
    ++cell.shed_rate_limited;
    XAI_COUNTER_INC("serve/admission_shed_rate");
    return Outcome::kShedRateLimited;
  }
  ++cell.admitted;
  ++cell.pending;
  XAI_COUNTER_INC("serve/admission_admitted");
  return Outcome::kAdmitted;
}

void AdmissionController::OnComplete(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cells_.find(tenant);
  XAI_CHECK_MSG(it != cells_.end() && it->second.pending > 0,
                "OnComplete without a matching Admit");
  --it->second.pending;
}

std::vector<std::pair<std::string, AdmissionController::TenantStats>>
AdmissionController::Snapshot() const {
  std::vector<std::pair<std::string, TenantStats>> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(cells_.size());
  for (const auto& [tenant, cell] : cells_) {
    TenantStats stats;
    stats.tokens_available = cell.bucket.tokens;
    stats.pending = cell.pending;
    stats.admitted = cell.admitted;
    stats.shed_rate_limited = cell.shed_rate_limited;
    stats.shed_pending_full = cell.shed_pending_full;
    out.emplace_back(tenant, stats);
  }
  return out;
}

int64_t AdmissionController::TotalShed() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [tenant, cell] : cells_)
    total += cell.shed_rate_limited + cell.shed_pending_full;
  return total;
}

const char* AdmissionOutcomeName(AdmissionController::Outcome outcome) {
  switch (outcome) {
    case AdmissionController::Outcome::kAdmitted:
      return "admitted";
    case AdmissionController::Outcome::kShedRateLimited:
      return "shed_rate_limited";
    case AdmissionController::Outcome::kShedPendingFull:
      return "shed_pending_full";
  }
  return "unknown";
}

}  // namespace async
}  // namespace serve
}  // namespace xai
