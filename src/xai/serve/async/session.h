#ifndef XAI_SERVE_ASYNC_SESSION_H_
#define XAI_SERVE_ASYNC_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "xai/core/status.h"
#include "xai/serve/explain_server.h"
#include "xai/serve/request.h"

/// \file
/// Session-scoped interactive explanation dialogues.
///
/// The tutorial's database-usability reading of XAI (§4, "explanation
/// dialogues"): users rarely ask one isolated "why?" — they iterate.
/// "Why was my loan denied?" → "what if my income were higher?" →
/// "why not class 1?". Stateless serving recomputes each turn from
/// scratch; a session keeps the intermediate work so follow-ups get
/// cheaper, the same way a DBMS keeps a cursor and buffer pool warm
/// across a drill-down.
///
/// Two kinds of state are kept per session:
///
///  1. **Coalition memo** (Shapley family). MarginalFeatureGame's value
///     v_x(S) depends on the instance only through x restricted to S —
///     off-coalition coordinates come from the background. The memo key is
///     therefore hash(model_fp, background_fp, S, x[i] for i in S): a
///     what-if that changes feature j reuses *every* coalition not
///     containing j (about half of a KernelSHAP budget, more for sparse
///     perturbations) and the reused values are bit-identical, not
///     approximations.
///
///  2. **Counterfactual candidate pool** (why-not / what-if search state).
///     DiCE's expensive part is the random-walk pool construction; the
///     session keeps every valid counterfactual seen for a model.
///     Follow-up requests first re-validate pooled candidates against the
///     new instance / desired class (a handful of model calls) and only
///     fall back to a fresh search when the pool cannot fund k candidates.
///
/// Session responses bypass the global explanation cache (their payloads
/// depend on session state ordering only in *cost*, never in content — but
/// keeping them out of the shared cache keeps that cache's identity rules
/// trivial). An exact repeat within a session is answered from a
/// session-local response memo instead.
///
/// Threading: one session is one dialogue — calls for the same session are
/// expected to be sequential (the front end serializes them on its session
/// lane). The manager itself is thread-safe across sessions, and sessions
/// are held by shared_ptr: a turn keeps its session alive even if
/// CloseSession/ExpireIdle runs concurrently from another thread (the front
/// end's caller-side entry points), so close never frees a session
/// mid-turn — the turn finishes against the detached session and the
/// memory is released when the last reference drops. The memo is
/// additionally mutex-guarded because ParallelFor workers consult it
/// concurrently during one explanation.

namespace xai {
namespace serve {
namespace async {

class SessionManager {
 public:
  struct Config {
    /// Open-session bound; opening beyond it fails with Overloaded.
    int max_sessions = 256;
    /// Coalition-memo entries per session before inserts stop (reuse of
    /// already-memoized coalitions continues).
    size_t max_memo_entries = 1 << 16;
    /// Counterfactual candidates kept per model within a session.
    size_t max_pool_candidates = 256;
    /// Idle time before ExpireIdle() closes a session, nanoseconds.
    int64_t session_ttl_ns = 600LL * 1000 * 1000 * 1000;
  };

  explicit SessionManager(ExplainServer* server)
      : SessionManager(server, Config()) {}
  SessionManager(ExplainServer* server, const Config& config);

  /// Opens a dialogue; ids are sequential from 1 (deterministic across
  /// runs — they appear in wire frames and bench output).
  Result<uint64_t> OpenSession(int64_t now_ns);
  Status CloseSession(uint64_t session_id);

  /// Serves one turn of the dialogue. Shapley-family and counterfactual
  /// requests run through the session's reuse structures; everything else
  /// falls through to the server unchanged.
  Result<ExplainResponse> Explain(uint64_t session_id,
                                  const ExplainRequest& request,
                                  int64_t now_ns);

  /// Closes sessions idle past the TTL. The front end calls this from a
  /// periodic loop timer.
  void ExpireIdle(int64_t now_ns);

  struct Stats {
    int active_sessions = 0;
    int64_t opened = 0;
    int64_t expired = 0;
    /// Coalition-memo hits / misses across all sessions (lifetime).
    int64_t memo_hits = 0;
    int64_t memo_misses = 0;
    /// Requests answered fully from session state (response memo or
    /// counterfactual pool) without a fresh explainer run.
    int64_t reuse_answers = 0;
    /// memo_hits / (memo_hits + memo_misses); 0 when no traffic.
    double memo_hit_rate = 0.0;
  };
  Stats GetStats() const;

 private:
  struct PooledCandidate {
    Vector x;
    uint64_t content_hash = 0;
  };

  struct Session {
    uint64_t id = 0;
    int64_t last_used_ns = 0;
    /// Coalition memo: key -> v(S). Shared across instances (see file
    /// comment for the key construction).
    std::unordered_map<uint64_t, double> memo;
    /// Exact-repeat response memo: CacheKey-mix -> response.
    std::unordered_map<uint64_t, std::shared_ptr<const ExplainResponse>>
        responses;
    /// Counterfactual candidates per model fingerprint.
    std::unordered_map<uint64_t, std::vector<PooledCandidate>> pool;
    std::mutex memo_mu;  ///< ParallelFor workers read/write memo.
    int64_t memo_hits = 0;
    int64_t memo_misses = 0;
  };

  Result<ExplainResponse> ExplainShapley(Session* session,
                                         const ExplainRequest& request,
                                         const TierPlan& plan, bool degraded,
                                         const ModelEntry& entry);
  Result<ExplainResponse> ExplainCounterfactual(
      Session* session, const ExplainRequest& request, const TierPlan& plan,
      bool degraded, const ModelEntry& entry);
  /// Folds a dying session's memo counters into the lifetime totals.
  /// Caller holds mu_; takes session.memo_mu for the counter reads.
  void RetireLocked(Session& session);

  ExplainServer* const server_;
  const Config config_;

  mutable std::mutex mu_;
  /// shared_ptr, not unique_ptr: Explain holds a reference for the whole
  /// turn, so erasing here never destroys a session that is mid-turn.
  std::map<uint64_t, std::shared_ptr<Session>> sessions_;
  uint64_t next_id_ = 1;
  int64_t opened_ = 0;
  int64_t expired_ = 0;
  int64_t reuse_answers_ = 0;
  int64_t retired_memo_hits_ = 0;
  int64_t retired_memo_misses_ = 0;
};

}  // namespace async
}  // namespace serve
}  // namespace xai

#endif  // XAI_SERVE_ASYNC_SESSION_H_
