#include "xai/serve/async/wire.h"

#include <cstring>
#include <utility>

#include "xai/core/check.h"
#include "xai/model/serialization.h"

namespace xai {
namespace serve {
namespace async {
namespace {

constexpr char kMagic[4] = {'X', 'A', 'I', 'W'};

// ---- Writers: explicit little-endian byte packing. -----------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  PutU8(out, static_cast<uint8_t>(v));
  PutU8(out, static_cast<uint8_t>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i)
    PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i)
    PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

/// u16 length prefix + bytes. Length overflow is a caller bug (frames are
/// built by our own encoder), so it aborts rather than truncating.
void PutShortString(std::string* out, const std::string& s) {
  XAI_CHECK_MSG(s.size() <= 0xFFFF,
                "wire: string field exceeds u16 length prefix");
  PutU16(out, static_cast<uint16_t>(s.size()));
  out->append(s);
}

void PutHeader(std::string* out, FrameType type) {
  out->append(kMagic, sizeof(kMagic));
  PutU8(out, kWireVersion);
  PutU8(out, static_cast<uint8_t>(type));
}

// ---- Reader: bounds-checked cursor. --------------------------------------

class Cursor {
 public:
  explicit Cursor(const std::string& frame) : data_(frame) {}

  size_t offset() const { return offset_; }

  Status Skip(size_t n) {
    if (data_.size() - offset_ < n)
      return Status::InvalidArgument("wire: truncated frame");
    offset_ += n;
    return Status::OK();
  }

  /// Rejects a frame whose remaining bytes cannot hold `n` more — used to
  /// validate wire-carried element counts before sizing any allocation, so
  /// a crafted count can never force an allocation larger than the frame.
  Status Require(size_t n) const {
    if (data_.size() - offset_ < n)
      return Status::InvalidArgument("wire: truncated frame");
    return Status::OK();
  }

  Result<uint8_t> U8() {
    if (offset_ >= data_.size())
      return Status::InvalidArgument("wire: truncated frame");
    return static_cast<uint8_t>(data_[offset_++]);
  }

  Result<uint16_t> U16() {
    uint64_t v;
    XAI_RETURN_NOT_OK(Raw(2, &v));
    return static_cast<uint16_t>(v);
  }

  Result<uint32_t> U32() {
    uint64_t v;
    XAI_RETURN_NOT_OK(Raw(4, &v));
    return static_cast<uint32_t>(v);
  }

  Result<uint64_t> U64() {
    uint64_t v;
    XAI_RETURN_NOT_OK(Raw(8, &v));
    return v;
  }

  Result<int32_t> I32() {
    XAI_ASSIGN_OR_RETURN(uint32_t v, U32());
    return static_cast<int32_t>(v);
  }

  Result<int64_t> I64() {
    XAI_ASSIGN_OR_RETURN(uint64_t v, U64());
    return static_cast<int64_t>(v);
  }

  Result<double> F64() {
    XAI_ASSIGN_OR_RETURN(uint64_t bits, U64());
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Result<std::string> ShortString() {
    XAI_ASSIGN_OR_RETURN(uint16_t len, U16());
    if (data_.size() - offset_ < len)
      return Status::InvalidArgument("wire: truncated string field");
    std::string s = data_.substr(offset_, len);
    offset_ += len;
    return s;
  }

 private:
  Status Raw(size_t n, uint64_t* out) {
    if (data_.size() - offset_ < n)
      return Status::InvalidArgument("wire: truncated frame");
    uint64_t v = 0;
    for (size_t i = 0; i < n; ++i)
      v |= static_cast<uint64_t>(
               static_cast<uint8_t>(data_[offset_ + i]))
           << (8 * i);
    offset_ += n;
    *out = v;
    return Status::OK();
  }

  const std::string& data_;
  size_t offset_ = 0;
};

Result<Cursor> OpenFrame(const std::string& frame, FrameType want) {
  Cursor cursor(frame);
  if (frame.size() < 6)
    return Status::InvalidArgument("wire: frame shorter than header");
  if (std::memcmp(frame.data(), kMagic, sizeof(kMagic)) != 0)
    return Status::InvalidArgument("wire: bad magic");
  XAI_RETURN_NOT_OK(cursor.Skip(sizeof(kMagic)));
  XAI_ASSIGN_OR_RETURN(uint8_t version, cursor.U8());
  if (version != kWireVersion)
    return Status::InvalidArgument("wire: unsupported version");
  XAI_ASSIGN_OR_RETURN(uint8_t type, cursor.U8());
  if (type != static_cast<uint8_t>(want))
    return Status::InvalidArgument("wire: unexpected frame type");
  return cursor;
}

constexpr uint8_t kReqFlagAllowDegradation = 1u << 0;
constexpr uint8_t kReqFlagUseCache = 1u << 1;

constexpr uint8_t kRespFlagDegraded = 1u << 0;
constexpr uint8_t kRespFlagCacheHit = 1u << 1;
constexpr uint8_t kRespFlagDeadlineMet = 1u << 2;

constexpr uint8_t kMaxKind =
    static_cast<uint8_t>(ExplainerKind::kCounterfactual);
constexpr uint8_t kMaxTier = static_cast<uint8_t>(FidelityTier::kMinimal);
constexpr uint8_t kMaxStatusCode =
    static_cast<uint8_t>(StatusCode::kOverloaded);

bool AttributionShaped(ExplainerKind kind) {
  return kind != ExplainerKind::kAnchors &&
         kind != ExplainerKind::kCounterfactual;
}

}  // namespace

Result<FrameType> PeekFrameType(const std::string& frame) {
  if (frame.size() < 6)
    return Status::InvalidArgument("wire: frame shorter than header");
  if (std::memcmp(frame.data(), kMagic, sizeof(kMagic)) != 0)
    return Status::InvalidArgument("wire: bad magic");
  if (static_cast<uint8_t>(frame[4]) != kWireVersion)
    return Status::InvalidArgument("wire: unsupported version");
  const uint8_t type = static_cast<uint8_t>(frame[5]);
  if (type < static_cast<uint8_t>(FrameType::kRequest) ||
      type > static_cast<uint8_t>(FrameType::kError))
    return Status::InvalidArgument("wire: unknown frame type");
  return static_cast<FrameType>(type);
}

std::string EncodeRequest(const ExplainRequest& request,
                          uint64_t session_id) {
  XAI_CHECK_MSG(request.instance.size() <= 0xFFFFFFFFull,
                "wire: instance exceeds u32 length prefix");
  std::string out;
  out.reserve(64 + request.model.size() + request.tenant.size() +
              request.instance.size() * sizeof(double));
  PutHeader(&out, FrameType::kRequest);
  uint8_t flags = 0;
  if (request.allow_degradation) flags |= kReqFlagAllowDegradation;
  if (request.use_cache) flags |= kReqFlagUseCache;
  PutU8(&out, flags);
  PutU8(&out, static_cast<uint8_t>(request.kind));
  PutU8(&out, static_cast<uint8_t>(request.fidelity));
  PutI32(&out, request.desired_class);
  PutF64(&out, request.deadline_ms);
  PutU64(&out, request.seed);
  PutU64(&out, request.trace.trace_id);
  PutU64(&out, session_id);
  PutU64(&out, ContentHash64(request.instance));
  PutShortString(&out, request.model);
  PutShortString(&out, request.tenant);
  PutU32(&out, static_cast<uint32_t>(request.instance.size()));
  for (double v : request.instance) PutF64(&out, v);
  return out;
}

Result<WireRequestHeader> DecodeRequestHeader(const std::string& frame) {
  XAI_ASSIGN_OR_RETURN(Cursor cursor,
                       OpenFrame(frame, FrameType::kRequest));
  WireRequestHeader header;
  XAI_ASSIGN_OR_RETURN(uint8_t flags, cursor.U8());
  header.allow_degradation = (flags & kReqFlagAllowDegradation) != 0;
  header.use_cache = (flags & kReqFlagUseCache) != 0;
  XAI_ASSIGN_OR_RETURN(uint8_t kind, cursor.U8());
  if (kind > kMaxKind)
    return Status::InvalidArgument("wire: unknown explainer kind");
  header.kind = static_cast<ExplainerKind>(kind);
  XAI_ASSIGN_OR_RETURN(uint8_t tier, cursor.U8());
  if (tier > kMaxTier)
    return Status::InvalidArgument("wire: unknown fidelity tier");
  header.fidelity = static_cast<FidelityTier>(tier);
  XAI_ASSIGN_OR_RETURN(header.desired_class, cursor.I32());
  XAI_ASSIGN_OR_RETURN(header.deadline_ms, cursor.F64());
  XAI_ASSIGN_OR_RETURN(header.seed, cursor.U64());
  XAI_ASSIGN_OR_RETURN(header.trace_id, cursor.U64());
  XAI_ASSIGN_OR_RETURN(header.session_id, cursor.U64());
  XAI_ASSIGN_OR_RETURN(header.instance_hash, cursor.U64());
  XAI_ASSIGN_OR_RETURN(header.model, cursor.ShortString());
  XAI_ASSIGN_OR_RETURN(header.tenant, cursor.ShortString());
  XAI_ASSIGN_OR_RETURN(uint32_t count, cursor.U32());
  header.instance_offset = cursor.offset();
  header.instance_count = count;
  // Validate the skipped payload's bounds now: a frame that lies about its
  // instance length is rejected before it can reach the cache-probe fast
  // path.
  XAI_RETURN_NOT_OK(cursor.Skip(static_cast<size_t>(count) * 8));
  return header;
}

Result<ExplainRequest> DecodeRequestBody(const std::string& frame,
                                         const WireRequestHeader& header) {
  if (header.instance_offset + header.instance_count * 8 > frame.size())
    return Status::InvalidArgument("wire: truncated instance payload");
  ExplainRequest request;
  request.model = header.model;
  request.tenant = header.tenant;
  request.kind = header.kind;
  request.fidelity = header.fidelity;
  request.allow_degradation = header.allow_degradation;
  request.use_cache = header.use_cache;
  request.desired_class = header.desired_class;
  request.deadline_ms = header.deadline_ms;
  request.seed = header.seed;
  request.trace.trace_id = header.trace_id;
  request.instance.resize(header.instance_count);
  const char* base = frame.data() + header.instance_offset;
  for (size_t i = 0; i < header.instance_count; ++i) {
    uint64_t bits = 0;
    for (size_t b = 0; b < 8; ++b)
      bits |= static_cast<uint64_t>(
                  static_cast<uint8_t>(base[i * 8 + b]))
              << (8 * b);
    std::memcpy(&request.instance[i], &bits, sizeof(double));
  }
  // Integrity gate: the hash the cache was probed with must describe the
  // instance we are about to compute on (and cache under).
  if (ContentHash64(request.instance) != header.instance_hash)
    return Status::InvalidArgument(
        "wire: instance hash does not match instance payload");
  return request;
}

Result<ExplainRequest> DecodeRequest(const std::string& frame,
                                     uint64_t* session_id_out) {
  XAI_ASSIGN_OR_RETURN(WireRequestHeader header,
                       DecodeRequestHeader(frame));
  if (session_id_out != nullptr) *session_id_out = header.session_id;
  return DecodeRequestBody(frame, header);
}

std::string EncodeResponse(const ExplainResponse& response) {
  std::string out;
  PutHeader(&out, FrameType::kResponse);
  PutU8(&out, static_cast<uint8_t>(response.kind));
  PutU8(&out, static_cast<uint8_t>(response.served_tier));
  uint8_t flags = 0;
  if (response.degraded) flags |= kRespFlagDegraded;
  if (response.cache_hit) flags |= kRespFlagCacheHit;
  if (response.deadline_met) flags |= kRespFlagDeadlineMet;
  PutU8(&out, flags);
  PutU64(&out, response.model_fingerprint);
  PutI64(&out, response.planned_evals);
  PutF64(&out, response.latency_ms);
  PutU64(&out, PayloadHash(response));
  if (AttributionShaped(response.kind)) {
    const AttributionExplanation& a = response.attribution;
    XAI_CHECK_MSG(a.attributions.size() <= 0xFFFFFFFFull,
                  "wire: attribution vector exceeds u32 length prefix");
    PutF64(&out, a.base_value);
    PutF64(&out, a.prediction);
    PutU32(&out, static_cast<uint32_t>(a.attributions.size()));
    for (double v : a.attributions) PutF64(&out, v);
    XAI_CHECK_MSG(a.feature_names.size() <= 0xFFFF,
                  "wire: too many feature names");
    PutU16(&out, static_cast<uint16_t>(a.feature_names.size()));
    for (const std::string& name : a.feature_names)
      PutShortString(&out, name);
  } else if (response.kind == ExplainerKind::kAnchors) {
    const AnchorRule& r = response.anchor;
    PutF64(&out, r.precision);
    PutF64(&out, r.precision_lb);
    PutF64(&out, r.coverage);
    PutI32(&out, r.samples_used);
    XAI_CHECK_MSG(r.features.size() <= 0xFFFF,
                  "wire: too many anchor features");
    PutU16(&out, static_cast<uint16_t>(r.features.size()));
    for (int f : r.features) PutI32(&out, f);
    XAI_CHECK_MSG(r.description.size() <= 0xFFFF,
                  "wire: too many anchor predicates");
    PutU16(&out, static_cast<uint16_t>(r.description.size()));
    for (const std::string& predicate : r.description)
      PutShortString(&out, predicate);
  } else {
    XAI_CHECK_MSG(response.counterfactuals.size() <= 0xFFFF,
                  "wire: too many counterfactuals");
    PutU16(&out,
           static_cast<uint16_t>(response.counterfactuals.size()));
    for (const Counterfactual& cf : response.counterfactuals) {
      PutF64(&out, cf.prediction);
      PutU8(&out, cf.valid ? 1 : 0);
      PutF64(&out, cf.proximity);
      PutI32(&out, cf.sparsity);
      PutF64(&out, cf.plausibility_distance);
      XAI_CHECK_MSG(cf.x.size() <= 0xFFFFFFFFull,
                    "wire: counterfactual exceeds u32 length prefix");
      PutU32(&out, static_cast<uint32_t>(cf.x.size()));
      for (double v : cf.x) PutF64(&out, v);
    }
  }
  return out;
}

Result<WireResponse> DecodeResponse(const std::string& frame) {
  XAI_ASSIGN_OR_RETURN(Cursor cursor,
                       OpenFrame(frame, FrameType::kResponse));
  WireResponse out;
  ExplainResponse& response = out.response;
  XAI_ASSIGN_OR_RETURN(uint8_t kind, cursor.U8());
  if (kind > kMaxKind)
    return Status::InvalidArgument("wire: unknown explainer kind");
  response.kind = static_cast<ExplainerKind>(kind);
  XAI_ASSIGN_OR_RETURN(uint8_t tier, cursor.U8());
  if (tier > kMaxTier)
    return Status::InvalidArgument("wire: unknown fidelity tier");
  response.served_tier = static_cast<FidelityTier>(tier);
  XAI_ASSIGN_OR_RETURN(uint8_t flags, cursor.U8());
  response.degraded = (flags & kRespFlagDegraded) != 0;
  response.cache_hit = (flags & kRespFlagCacheHit) != 0;
  response.deadline_met = (flags & kRespFlagDeadlineMet) != 0;
  XAI_ASSIGN_OR_RETURN(response.model_fingerprint, cursor.U64());
  XAI_ASSIGN_OR_RETURN(response.planned_evals, cursor.I64());
  XAI_ASSIGN_OR_RETURN(response.latency_ms, cursor.F64());
  XAI_ASSIGN_OR_RETURN(out.payload_hash, cursor.U64());
  if (AttributionShaped(response.kind)) {
    AttributionExplanation& a = response.attribution;
    XAI_ASSIGN_OR_RETURN(a.base_value, cursor.F64());
    XAI_ASSIGN_OR_RETURN(a.prediction, cursor.F64());
    XAI_ASSIGN_OR_RETURN(uint32_t n, cursor.U32());
    XAI_RETURN_NOT_OK(cursor.Require(static_cast<size_t>(n) * 8));
    a.attributions.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      XAI_ASSIGN_OR_RETURN(a.attributions[i], cursor.F64());
    }
    XAI_ASSIGN_OR_RETURN(uint16_t names, cursor.U16());
    a.feature_names.resize(names);
    for (uint16_t i = 0; i < names; ++i) {
      XAI_ASSIGN_OR_RETURN(a.feature_names[i], cursor.ShortString());
    }
  } else if (response.kind == ExplainerKind::kAnchors) {
    AnchorRule& r = response.anchor;
    XAI_ASSIGN_OR_RETURN(r.precision, cursor.F64());
    XAI_ASSIGN_OR_RETURN(r.precision_lb, cursor.F64());
    XAI_ASSIGN_OR_RETURN(r.coverage, cursor.F64());
    XAI_ASSIGN_OR_RETURN(r.samples_used, cursor.I32());
    XAI_ASSIGN_OR_RETURN(uint16_t features, cursor.U16());
    r.features.resize(features);
    for (uint16_t i = 0; i < features; ++i) {
      XAI_ASSIGN_OR_RETURN(r.features[i], cursor.I32());
    }
    XAI_ASSIGN_OR_RETURN(uint16_t predicates, cursor.U16());
    r.description.resize(predicates);
    for (uint16_t i = 0; i < predicates; ++i) {
      XAI_ASSIGN_OR_RETURN(r.description[i], cursor.ShortString());
    }
  } else {
    XAI_ASSIGN_OR_RETURN(uint16_t count, cursor.U16());
    response.counterfactuals.resize(count);
    for (uint16_t i = 0; i < count; ++i) {
      Counterfactual& cf = response.counterfactuals[i];
      XAI_ASSIGN_OR_RETURN(cf.prediction, cursor.F64());
      XAI_ASSIGN_OR_RETURN(uint8_t valid, cursor.U8());
      cf.valid = valid != 0;
      XAI_ASSIGN_OR_RETURN(cf.proximity, cursor.F64());
      XAI_ASSIGN_OR_RETURN(cf.sparsity, cursor.I32());
      XAI_ASSIGN_OR_RETURN(cf.plausibility_distance, cursor.F64());
      XAI_ASSIGN_OR_RETURN(uint32_t n, cursor.U32());
      XAI_RETURN_NOT_OK(cursor.Require(static_cast<size_t>(n) * 8));
      cf.x.resize(n);
      for (uint32_t j = 0; j < n; ++j) {
        XAI_ASSIGN_OR_RETURN(cf.x[j], cursor.F64());
      }
    }
  }
  return out;
}

std::string EncodeError(const Status& status, uint64_t trace_id) {
  XAI_CHECK_MSG(!status.ok(), "EncodeError on an OK status");
  std::string out;
  PutHeader(&out, FrameType::kError);
  PutU8(&out, static_cast<uint8_t>(status.code()));
  PutU64(&out, trace_id);
  // Unlike the request/response fields (built from our own state, where
  // overflow is a caller bug), error text embeds client-supplied strings —
  // tenant and model names up to 64 KiB arrive legally off the wire — so
  // truncate to the u16 prefix instead of CHECK-aborting the server.
  const std::string& message = status.message();
  const size_t len = message.size() < 0xFFFF ? message.size() : 0xFFFF;
  PutU16(&out, static_cast<uint16_t>(len));
  out.append(message.data(), len);
  return out;
}

Result<WireError> DecodeError(const std::string& frame) {
  XAI_ASSIGN_OR_RETURN(Cursor cursor, OpenFrame(frame, FrameType::kError));
  WireError error;
  XAI_ASSIGN_OR_RETURN(uint8_t code, cursor.U8());
  if (code == 0 || code > kMaxStatusCode)
    return Status::InvalidArgument("wire: unknown status code");
  error.code = static_cast<StatusCode>(code);
  XAI_ASSIGN_OR_RETURN(error.trace_id, cursor.U64());
  XAI_ASSIGN_OR_RETURN(error.message, cursor.ShortString());
  return error;
}

}  // namespace async
}  // namespace serve
}  // namespace xai
