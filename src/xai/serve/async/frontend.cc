#include "xai/serve/async/frontend.h"

#include <utility>

#include "xai/core/check.h"
#include "xai/core/telemetry.h"

namespace xai {
namespace serve {
namespace async {

namespace {

/// Mirrors ExplainServer's tenant normalization: SLO and admission cells
/// must agree on the key for unlabeled traffic.
std::string TenantKey(const std::string& tenant) {
  return tenant.empty() ? "default" : tenant;
}

}  // namespace

AsyncFrontEnd::AsyncFrontEnd(ExplainServer* server, const Config& config)
    : server_(server),
      config_(config),
      clock_(config.clock != nullptr ? config.clock : &real_clock_),
      admission_(config.admission),
      sessions_(server, config.sessions),
      loop_(std::make_unique<EventLoop>(clock_)),
      session_lane_(std::make_unique<EventLoop>(clock_)) {
  XAI_CHECK_MSG(server != nullptr, "AsyncFrontEnd requires a server");
  server_->AttachAdmission(&admission_);
  server_->AttachSessions(&sessions_);
}

AsyncFrontEnd::~AsyncFrontEnd() {
  // Stop the control planes first (queued immediate tasks still run), then
  // wait out every admitted request: its completion callback may be parked
  // in the batcher, and it touches admission state on delivery.
  loop_->Shutdown();
  session_lane_->Shutdown();
  {
    std::unique_lock<std::mutex> lock(inflight_mu_);
    inflight_cv_.wait(lock, [this] { return in_flight_ == 0; });
  }
  server_->AttachAdmission(nullptr);
  server_->AttachSessions(nullptr);
}

void AsyncFrontEnd::Drain() {
  loop_->Drain();
  session_lane_->Drain();
  std::unique_lock<std::mutex> lock(inflight_mu_);
  inflight_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

Status AsyncFrontEnd::AdmitOrShed(const std::string& tenant,
                                  const std::string& model,
                                  ExplainerKind kind, FidelityTier fidelity,
                                  uint64_t trace_id) {
  AdmissionController::Outcome outcome =
      admission_.Admit(tenant, clock_->NowNanos());
  if (outcome == AdmissionController::Outcome::kAdmitted) {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    ++in_flight_;
    return Status::OK();
  }
  RecordShed(tenant, model, kind, fidelity, trace_id);
  return Status::Overloaded(std::string("shed (") +
                            AdmissionOutcomeName(outcome) + ") for tenant '" +
                            tenant + "'");
}

void AsyncFrontEnd::RecordShed(const std::string& tenant,
                               const std::string& model, ExplainerKind kind,
                               FidelityTier fidelity, uint64_t trace_id) {
  XAI_COUNTER_INC("serve/frontend_shed");
  server_->slo().RecordShed(tenant, model);
  ExplanationProvenance p;
  p.trace_id = trace_id;
  p.tenant = tenant;
  p.model = model;
  p.kind = ExplainerKindName(kind);
  p.requested_tier = FidelityTierName(fidelity);
  p.shed = true;  // complete stays false: nothing executed.
  std::lock_guard<std::mutex> lock(shed_mu_);
  while (shed_records_.size() >= config_.max_shed_records) {
    shed_records_.pop_front();
    ++shed_records_dropped_;
  }
  shed_records_.push_back(std::move(p));
}

void AsyncFrontEnd::Complete(const std::string& tenant) {
  admission_.OnComplete(tenant);
  // Notify under the lock: once a waiter observes zero and returns, no
  // thread is still inside the condition variable.
  std::lock_guard<std::mutex> lock(inflight_mu_);
  --in_flight_;
  XAI_CHECK_MSG(in_flight_ >= 0, "Complete() without a matching admit");
  inflight_cv_.notify_all();
}

std::vector<ExplanationProvenance> AsyncFrontEnd::DrainShedRecords() {
  std::lock_guard<std::mutex> lock(shed_mu_);
  std::vector<ExplanationProvenance> out(shed_records_.begin(),
                                         shed_records_.end());
  shed_records_.clear();
  return out;
}

Result<uint64_t> AsyncFrontEnd::OpenSession() {
  const int64_t now_ns = clock_->NowNanos();
  sessions_.ExpireIdle(now_ns);
  return sessions_.OpenSession(now_ns);
}

Status AsyncFrontEnd::CloseSession(uint64_t session_id) {
  return sessions_.CloseSession(session_id);
}

FrameFuture AsyncFrontEnd::SubmitWire(std::string frame) {
  // Header decode and admission on the submitting thread: a malformed or
  // shed request never costs a loop hop (and never decodes its instance).
  Result<WireRequestHeader> header_or = DecodeRequestHeader(frame);
  if (!header_or.ok()) {
    return FrameFuture::Ready(EncodeError(header_or.status(), 0));
  }
  WireRequestHeader header = std::move(header_or).ValueUnsafe();
  const std::string tenant = TenantKey(header.tenant);

  Status admitted = AdmitOrShed(tenant, header.model, header.kind,
                                header.fidelity, header.trace_id);
  if (!admitted.ok()) {
    return FrameFuture::Ready(EncodeError(admitted, header.trace_id));
  }

  FramePromise promise;
  FrameFuture future = promise.GetFuture();
  auto shared = std::make_shared<const std::string>(std::move(frame));
  EventLoop* lane = header.session_id != 0 ? session_lane_.get() : loop_.get();
  const bool session_turn = header.session_id != 0;
  Status posted = lane->Post(
      [this, shared, header, promise, session_turn]() mutable {
        if (session_turn) {
          RunSessionTurn(shared, std::move(header), std::move(promise));
        } else {
          RunStateless(shared, std::move(header), std::move(promise));
        }
      });
  if (!posted.ok()) {
    Complete(tenant);
    return FrameFuture::Ready(EncodeError(posted, header.trace_id));
  }
  return future;
}

void AsyncFrontEnd::RunStateless(std::shared_ptr<const std::string> frame,
                                 WireRequestHeader header,
                                 FramePromise promise) {
  const std::string tenant = TenantKey(header.tenant);
  const uint64_t trace_id = header.trace_id;

  // Request skeleton from the header alone — the instance stays encoded
  // until the server proves it needs the bytes (cache miss).
  ExplainRequest request;
  request.model = header.model;
  request.kind = header.kind;
  request.fidelity = header.fidelity;
  request.deadline_ms = header.deadline_ms;
  request.seed = header.seed;
  request.allow_degradation = header.allow_degradation;
  request.use_cache = header.use_cache;
  request.desired_class = header.desired_class;
  request.tenant = header.tenant;
  request.trace.trace_id = header.trace_id;

  ExplainServer::AsyncHints hints;
  hints.instance_hash = header.instance_hash;
  hints.deferred_count = static_cast<int64_t>(header.instance_count);
  hints.materialize = [frame, header](Vector* out) -> Status {
    auto decoded = DecodeRequestBody(*frame, header);
    XAI_RETURN_NOT_OK(decoded.status());
    *out = std::move(decoded.ValueUnsafe().instance);
    return Status::OK();
  };

  const ExplainerKind kind = header.kind;
  const FidelityTier fidelity = header.fidelity;
  const std::string model = header.model;
  Status submitted = server_->ExplainAsync(
      std::move(request),
      [this, promise, tenant, trace_id](Result<ExplainResponse> result) {
        std::string out = result.ok()
                              ? EncodeResponse(result.ValueUnsafe())
                              : EncodeError(result.status(), trace_id);
        Complete(tenant);
        promise.Set(std::move(out));
      },
      std::move(hints));
  if (!submitted.ok()) {
    // `done` never ran. A full batcher queue is a shed like any other —
    // record and charge it; other codes (NotFound, InvalidArgument,
    // OutOfRange) are the client's error to see.
    if (submitted.code() == StatusCode::kOverloaded) {
      RecordShed(tenant, model, kind, fidelity, trace_id);
    }
    Complete(tenant);
    promise.Set(EncodeError(submitted, trace_id));
  }
}

void AsyncFrontEnd::RunSessionTurn(std::shared_ptr<const std::string> frame,
                                   WireRequestHeader header,
                                   FramePromise promise) {
  const std::string tenant = TenantKey(header.tenant);
  // Session turns consult per-session state keyed on the instance, so the
  // payload is materialized (and integrity-checked) up front.
  Result<ExplainRequest> request_or = DecodeRequestBody(*frame, header);
  if (!request_or.ok()) {
    Complete(tenant);
    promise.Set(EncodeError(request_or.status(), header.trace_id));
    return;
  }
  const int64_t now_ns = clock_->NowNanos();
  sessions_.ExpireIdle(now_ns);
  Result<ExplainResponse> result = sessions_.Explain(
      header.session_id, request_or.ValueUnsafe(), now_ns);
  std::string out = result.ok()
                        ? EncodeResponse(result.ValueUnsafe())
                        : EncodeError(result.status(), header.trace_id);
  Complete(tenant);
  promise.Set(std::move(out));
}

ResponseFuture AsyncFrontEnd::Submit(ExplainRequest request,
                                     uint64_t session_id) {
  const std::string tenant = TenantKey(request.tenant);
  Status admitted = AdmitOrShed(tenant, request.model, request.kind,
                                request.fidelity, request.trace.trace_id);
  if (!admitted.ok()) {
    return ResponseFuture::Ready(Result<ExplainResponse>(admitted));
  }

  ResponsePromise promise;
  ResponseFuture future = promise.GetFuture();

  if (session_id != 0) {
    Status posted = session_lane_->Post([this, request, session_id, promise,
                                         tenant]() mutable {
      const int64_t now_ns = clock_->NowNanos();
      sessions_.ExpireIdle(now_ns);
      Result<ExplainResponse> result =
          sessions_.Explain(session_id, request, now_ns);
      Complete(tenant);
      promise.Set(std::move(result));
    });
    if (!posted.ok()) {
      Complete(tenant);
      return ResponseFuture::Ready(Result<ExplainResponse>(posted));
    }
    return future;
  }

  Status posted = loop_->Post([this, request, promise, tenant]() mutable {
    const ExplainerKind kind = request.kind;
    const FidelityTier fidelity = request.fidelity;
    const uint64_t trace_id = request.trace.trace_id;
    const std::string model = request.model;
    Status submitted = server_->ExplainAsync(
        std::move(request),
        [this, promise, tenant](Result<ExplainResponse> result) {
          Complete(tenant);
          promise.Set(std::move(result));
        });
    if (!submitted.ok()) {
      if (submitted.code() == StatusCode::kOverloaded) {
        RecordShed(tenant, model, kind, fidelity, trace_id);
      }
      Complete(tenant);
      promise.Set(Result<ExplainResponse>(submitted));
    }
  });
  if (!posted.ok()) {
    Complete(tenant);
    return ResponseFuture::Ready(Result<ExplainResponse>(posted));
  }
  return future;
}

}  // namespace async
}  // namespace serve
}  // namespace xai
