#include "xai/serve/async/event_loop.h"

#include <chrono>

#include "xai/core/check.h"
#include "xai/core/telemetry.h"
#include "xai/core/timer.h"
#include "xai/core/trace.h"

namespace xai {
namespace serve {
namespace async {

int64_t RealClock::NowNanos() { return MonotonicNanos(); }

int64_t VirtualClock::NowNanos() {
  std::lock_guard<std::mutex> lock(mu_);
  return now_ns_;
}

void VirtualClock::Advance(int64_t delta_ns) {
  XAI_CHECK_MSG(delta_ns >= 0, "virtual time cannot move backwards");
  std::lock_guard<std::mutex> lock(mu_);
  now_ns_ += delta_ns;
}

void VirtualClock::AdvanceTo(int64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  // Never rewind: concurrent advancers race benignly to the max.
  if (now_ns > now_ns_) now_ns_ = now_ns;
}

EventLoop::EventLoop(Clock* clock)
    : clock_(clock != nullptr ? clock : &owned_clock_),
      virtual_time_(dynamic_cast<VirtualClock*>(clock_) != nullptr) {
  thread_ = std::thread([this] { Run(); });
}

EventLoop::~EventLoop() { Shutdown(); }

Status EventLoop::Post(Task fn) {
  Task bound = telemetry::BindTraceContext(std::move(fn));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return Status::Internal("event loop is shutting down");
    ready_.push_back(std::move(bound));
    XAI_HISTOGRAM_RECORD("serve/loop_depth",
                         static_cast<int64_t>(ready_.size()));
  }
  work_cv_.notify_one();
  return Status::OK();
}

Status EventLoop::PostAt(int64_t when_ns, Task fn) {
  Task bound = telemetry::BindTraceContext(std::move(fn));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return Status::Internal("event loop is shutting down");
    timers_.push(Timer{when_ns, next_seq_++, std::move(bound)});
  }
  work_cv_.notify_one();
  return Status::OK();
}

Status EventLoop::PostAfter(int64_t delay_ns, Task fn) {
  return PostAt(clock_->NowNanos() + delay_ns, std::move(fn));
}

int64_t EventLoop::Now() { return clock_->NowNanos(); }

void EventLoop::Drain() {
  XAI_CHECK_MSG(!OnLoopThread(), "Drain() from the loop thread deadlocks");
  std::unique_lock<std::mutex> lock(mu_);
  ++drain_waiters_;
  // Wake the loop: with a VirtualClock it only auto-advances time while a
  // drain waiter is present, and it may currently be parked on work_cv_.
  work_cv_.notify_all();
  idle_cv_.wait(lock, [this] {
    return (ready_.empty() && timers_.empty() && !running_task_) ||
           stopping_;
  });
  --drain_waiters_;
}

void EventLoop::Shutdown() {
  XAI_CHECK_MSG(!OnLoopThread(),
                "Shutdown() from the loop thread deadlocks");
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  idle_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool EventLoop::OnLoopThread() const {
  return std::this_thread::get_id() == thread_.get_id();
}

void EventLoop::PromoteDueTimersLocked(int64_t now_ns) {
  while (!timers_.empty() && timers_.top().when_ns <= now_ns) {
    // priority_queue::top is const; the move is safe because pop()
    // immediately discards the slot.
    ready_.push_back(std::move(const_cast<Timer&>(timers_.top()).fn));
    timers_.pop();
  }
}

void EventLoop::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    PromoteDueTimersLocked(clock_->NowNanos());

    if (!ready_.empty()) {
      Task task = std::move(ready_.front());
      ready_.pop_front();
      running_task_ = true;
      lock.unlock();
      task();
      lock.lock();
      running_task_ = false;
      if (ready_.empty() && timers_.empty()) idle_cv_.notify_all();
      continue;
    }

    // Queue empty. Stop once asked (unexpired timers are dropped — Drain
    // first if they matter).
    if (stopping_) break;

    if (timers_.empty()) {
      idle_cv_.notify_all();
      work_cv_.wait(lock);
      continue;
    }

    if (virtual_time_) {
      // Nothing runnable but timers pending. Only jump time forward while a
      // Drain() caller is waiting: advancing the moment the loop goes idle
      // could consume a half-registered schedule between two PostAt calls
      // from another thread, breaking the one-order determinism contract.
      if (drain_waiters_ == 0) {
        work_cv_.wait(lock);
        continue;
      }
      const int64_t when = timers_.top().when_ns;
      lock.unlock();
      static_cast<VirtualClock*>(clock_)->AdvanceTo(when);
      lock.lock();
      continue;
    }

    const int64_t wait_ns = timers_.top().when_ns - clock_->NowNanos();
    if (wait_ns > 0)
      work_cv_.wait_for(lock, std::chrono::nanoseconds(wait_ns));
  }
}

}  // namespace async
}  // namespace serve
}  // namespace xai
