#ifndef XAI_SERVE_ASYNC_EVENT_LOOP_H_
#define XAI_SERVE_ASYNC_EVENT_LOOP_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "xai/core/status.h"

/// \file
/// Single-threaded event-loop executor with a swappable clock.
///
/// The async front end runs its control plane (wire decode, cache probe,
/// admission bookkeeping, response encode) on one dispatcher thread and
/// pushes all heavy compute to the batcher / ParallelFor pool. One thread
/// is deliberate: control-plane state (admission cells, session tables,
/// timer wheel) then needs no locking discipline beyond the loop's own
/// queue, and every request observes a single serialized order of
/// control-plane events — which is what makes the admit/shed sequence
/// replayable bit-for-bit in tests.
///
/// Determinism under test: the loop reads time only through the Clock
/// interface. RealClock forwards to the shared monotonic clock; VirtualClock
/// starts at zero and advances only when told — or while a Drain() caller is
/// waiting, in which case the idle loop jumps straight to the next timer
/// deadline. Gating the auto-advance on a drain waiter matters: if the loop
/// advanced whenever it went idle, it could consume a half-registered timer
/// schedule between two PostAt calls from another thread. A fixed schedule
/// of Post/PostAt calls against a VirtualClock followed by Drain() therefore
/// executes in exactly one order, independent of machine load or thread
/// count.
///
/// Trace propagation: Post/PostAt wrap tasks with
/// telemetry::BindTraceContext, so work hopping onto the loop keeps the
/// submitting request's causal identity (satellite: spans opened inside a
/// posted task parent-link to the request's trace).

namespace xai {
namespace serve {
namespace async {

/// Time source for the loop and everything scheduled on it. Nanoseconds on
/// an arbitrary epoch; only differences matter.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual int64_t NowNanos() = 0;
};

/// Forwards to core/timer's MonotonicNanos — production clock.
class RealClock : public Clock {
 public:
  int64_t NowNanos() override;
};

/// Starts at zero, moves only via Advance/AdvanceTo (thread-safe). While a
/// Drain() caller waits, the idle loop auto-advances it to the earliest
/// timer deadline, so timed schedules run to completion without wall-clock
/// waits.
class VirtualClock : public Clock {
 public:
  int64_t NowNanos() override;
  void Advance(int64_t delta_ns);
  void AdvanceTo(int64_t now_ns);

 private:
  std::mutex mu_;
  int64_t now_ns_ = 0;
};

/// \brief One dispatcher thread draining a FIFO task queue plus a timer
/// heap. Tasks must not block (shed, don't park — the batcher side is
/// always try-enqueue from loop context).
class EventLoop {
 public:
  using Task = std::function<void()>;

  /// `clock` may be null (the loop then owns a RealClock). A non-null clock
  /// must outlive the loop; passing a VirtualClock makes the loop
  /// deterministic (see file comment).
  explicit EventLoop(Clock* clock = nullptr);
  /// Drains nothing: queued tasks that never ran are dropped after the
  /// stop task. Call Drain() first if completion matters.
  ~EventLoop();

  /// Enqueues `fn` (FIFO), bound to the caller's current TraceContext.
  /// Returns Internal after Shutdown.
  Status Post(Task fn);

  /// Runs `fn` once the clock reaches `when_ns` (absolute, this loop's
  /// clock). Ties execute in Post order. Same trace binding as Post.
  Status PostAt(int64_t when_ns, Task fn);

  /// Convenience: PostAt(Now() + delay).
  Status PostAfter(int64_t delay_ns, Task fn);

  /// Current time on the loop's clock.
  int64_t Now();

  /// Blocks the caller until both queues are empty and no task is running.
  /// With a VirtualClock this drives time forward through every pending
  /// timer. Must not be called from the loop thread.
  void Drain();

  /// Stops accepting tasks, finishes the currently queued immediate tasks,
  /// drops unexpired timers, joins the thread. Idempotent.
  void Shutdown();

  bool OnLoopThread() const;

 private:
  struct Timer {
    int64_t when_ns;
    uint64_t seq;  // Post-order tiebreak: earlier registration runs first.
    Task fn;
    bool operator>(const Timer& other) const {
      if (when_ns != other.when_ns) return when_ns > other.when_ns;
      return seq > other.seq;
    }
  };

  void Run();
  /// Pops every timer due at `now_ns` into the immediate queue (in
  /// registration order). Caller holds mu_.
  void PromoteDueTimersLocked(int64_t now_ns);

  RealClock owned_clock_;
  Clock* const clock_;
  const bool virtual_time_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<Task> ready_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>>
      timers_;
  uint64_t next_seq_ = 0;
  int drain_waiters_ = 0;
  bool stopping_ = false;
  bool running_task_ = false;

  std::thread thread_;
};

}  // namespace async
}  // namespace serve
}  // namespace xai

#endif  // XAI_SERVE_ASYNC_EVENT_LOOP_H_
