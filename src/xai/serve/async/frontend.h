#ifndef XAI_SERVE_ASYNC_FRONTEND_H_
#define XAI_SERVE_ASYNC_FRONTEND_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "xai/core/status.h"
#include "xai/serve/async/admission.h"
#include "xai/serve/async/event_loop.h"
#include "xai/serve/async/future.h"
#include "xai/serve/async/session.h"
#include "xai/serve/async/wire.h"
#include "xai/serve/explain_server.h"

/// \file
/// The async multi-tenant serving front end: the piece that turns the
/// synchronous ExplainServer pipeline into an event-driven server.
///
/// Request path (one wire frame):
///
///   caller thread            control loop               batcher workers
///   ------------------       ------------------------   ----------------
///   decode header
///   admission (tokens,
///     pending bound) --shed--> [typed Overloaded frame]
///        |
///        +--Post--------->  cache probe via header
///                            hashes (hit: respond
///                            without decoding the
///                            instance payload)
///                            miss: materialize+verify
///                            instance, try-enqueue  --->  explain, encode,
///                            (full queue => shed)         fulfill future
///
/// Session turns (session_id != 0 in the frame) run on a second loop — the
/// session lane — which serializes each dialogue's turns against its
/// memo/pool state while explainer-internal ParallelFor still fans out.
///
/// Every shed is recorded three ways: a shed ExplanationProvenance record
/// (DrainShedRecords, for bench/audit JSONL), a RecordShed charge against
/// the tenant's SLO deadline budget, and a typed Overloaded error frame to
/// the caller. Nothing is silently dropped.

namespace xai {
namespace serve {
namespace async {

class AsyncFrontEnd {
 public:
  struct Config {
    AdmissionController::Config admission;
    SessionManager::Config sessions;
    /// Swappable time source for both loops and the admission buckets
    /// (VirtualClock under test). Must outlive the front end; null = real
    /// monotonic clock.
    Clock* clock = nullptr;
    /// Bound on buffered shed provenance records (oldest dropped first).
    size_t max_shed_records = 4096;
  };

  /// `server` must outlive the front end. The front end attaches its
  /// admission controller and session manager to the server's metrics
  /// surface (detached again on destruction).
  explicit AsyncFrontEnd(ExplainServer* server)
      : AsyncFrontEnd(server, Config()) {}
  AsyncFrontEnd(ExplainServer* server, const Config& config);
  ~AsyncFrontEnd();

  AsyncFrontEnd(const AsyncFrontEnd&) = delete;
  AsyncFrontEnd& operator=(const AsyncFrontEnd&) = delete;

  /// Serves one encoded request frame. The future resolves with a
  /// response frame (FrameType::kResponse) or a typed error frame
  /// (FrameType::kError — Overloaded for sheds). Malformed frames and
  /// admission sheds resolve immediately on the calling thread.
  FrameFuture SubmitWire(std::string frame);

  /// Struct-level entry (tests, in-process clients): same admission and
  /// loop hop, no wire encoding. session_id 0 = stateless.
  ResponseFuture Submit(ExplainRequest request, uint64_t session_id = 0);

  /// Opens an interactive dialogue (idle sessions past their TTL are
  /// expired opportunistically here and on each session turn — no
  /// background timer, so Drain() semantics stay trivial).
  Result<uint64_t> OpenSession();
  Status CloseSession(uint64_t session_id);

  /// Blocks until both loops are empty and every admitted request has
  /// delivered its response or error (tests/bench).
  void Drain();

  /// Swaps out the buffered shed provenance records.
  std::vector<ExplanationProvenance> DrainShedRecords();

  const AdmissionController& admission() const { return admission_; }
  const SessionManager& sessions() const { return sessions_; }
  EventLoop& loop() { return *loop_; }

 private:
  /// Admission on the submitting thread. Returns OK and occupies a
  /// pending slot (paired with exactly one later Complete()), or the
  /// Overloaded status after recording the shed three ways.
  Status AdmitOrShed(const std::string& tenant, const std::string& model,
                     ExplainerKind kind, FidelityTier fidelity,
                     uint64_t trace_id);
  /// Records a shed in the provenance buffer and charges the tenant's SLO
  /// error budget. Does NOT release the pending slot (sheds never took
  /// one).
  void RecordShed(const std::string& tenant, const std::string& model,
                  ExplainerKind kind, FidelityTier fidelity,
                  uint64_t trace_id);
  /// Releases the admission slot and the in-flight count taken by an
  /// admitted request. Called exactly once per admitted request, on
  /// whatever thread delivers its response or error.
  void Complete(const std::string& tenant);
  /// Stateless execution on the control loop (cache probe -> batcher).
  void RunStateless(std::shared_ptr<const std::string> frame,
                    WireRequestHeader header, FramePromise promise);
  /// One dialogue turn on the session lane.
  void RunSessionTurn(std::shared_ptr<const std::string> frame,
                      WireRequestHeader header, FramePromise promise);

  ExplainServer* const server_;
  const Config config_;
  RealClock real_clock_;
  Clock* const clock_;
  AdmissionController admission_;
  SessionManager sessions_;
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<EventLoop> session_lane_;

  /// Admitted-but-unanswered requests. Drain() (and the destructor) wait
  /// for this to reach zero so no completion callback can outlive the
  /// front end's admission state.
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  int64_t in_flight_ = 0;

  std::mutex shed_mu_;
  std::deque<ExplanationProvenance> shed_records_;
  int64_t shed_records_dropped_ = 0;
};

}  // namespace async
}  // namespace serve
}  // namespace xai

#endif  // XAI_SERVE_ASYNC_FRONTEND_H_
