#include "xai/serve/request.h"

#include "xai/model/serialization.h"

namespace xai {
namespace serve {
namespace {

uint64_t HashDouble(double v, uint64_t h) {
  return ContentHash64(&v, sizeof(v), h);
}

uint64_t HashInt(int64_t v, uint64_t h) {
  return ContentHash64(&v, sizeof(v), h);
}

uint64_t HashString(const std::string& s, uint64_t h) {
  h = HashInt(static_cast<int64_t>(s.size()), h);
  return ContentHash64(s, h);
}

uint64_t HashVector(const Vector& v, uint64_t h) {
  h = HashInt(static_cast<int64_t>(v.size()), h);
  return ContentHash64(v, h);
}

}  // namespace

const char* ExplainerKindName(ExplainerKind kind) {
  switch (kind) {
    case ExplainerKind::kTreeShap:
      return "tree_shap";
    case ExplainerKind::kKernelShap:
      return "kernel_shap";
    case ExplainerKind::kSamplingShapley:
      return "sampling_shapley";
    case ExplainerKind::kExactShapley:
      return "exact_shapley";
    case ExplainerKind::kLime:
      return "lime";
    case ExplainerKind::kAnchors:
      return "anchors";
    case ExplainerKind::kCounterfactual:
      return "counterfactual";
  }
  return "unknown";
}

const char* FidelityTierName(FidelityTier tier) {
  switch (tier) {
    case FidelityTier::kExact:
      return "exact";
    case FidelityTier::kHigh:
      return "high";
    case FidelityTier::kStandard:
      return "standard";
    case FidelityTier::kReduced:
      return "reduced";
    case FidelityTier::kMinimal:
      return "minimal";
  }
  return "unknown";
}

uint64_t PayloadHash(const ExplainResponse& r) {
  uint64_t h = kContentHashSeed;
  h = HashInt(static_cast<int64_t>(r.kind), h);
  h = HashInt(static_cast<int64_t>(r.served_tier), h);
  h = HashInt(r.degraded ? 1 : 0, h);
  h = HashInt(static_cast<int64_t>(r.model_fingerprint), h);
  h = HashInt(r.planned_evals, h);

  h = HashVector(r.attribution.attributions, h);
  h = HashDouble(r.attribution.base_value, h);
  h = HashDouble(r.attribution.prediction, h);

  h = HashInt(static_cast<int64_t>(r.anchor.features.size()), h);
  for (int f : r.anchor.features) h = HashInt(f, h);
  h = HashDouble(r.anchor.precision, h);
  h = HashDouble(r.anchor.precision_lb, h);
  h = HashDouble(r.anchor.coverage, h);
  h = HashInt(r.anchor.samples_used, h);
  for (const std::string& s : r.anchor.description) h = HashString(s, h);

  h = HashInt(static_cast<int64_t>(r.counterfactuals.size()), h);
  for (const Counterfactual& cf : r.counterfactuals) {
    h = HashVector(cf.x, h);
    h = HashDouble(cf.prediction, h);
    h = HashInt(cf.valid ? 1 : 0, h);
    h = HashDouble(cf.proximity, h);
    h = HashInt(cf.sparsity, h);
    h = HashDouble(cf.plausibility_distance, h);
  }
  return h;
}

size_t ApproxResponseBytes(const ExplainResponse& r) {
  size_t bytes = sizeof(ExplainResponse);
  bytes += r.provenance.tenant.size() + r.provenance.model.size();
  bytes += r.attribution.attributions.size() * sizeof(double);
  for (const std::string& s : r.attribution.feature_names)
    bytes += sizeof(std::string) + s.size();
  bytes += r.anchor.features.size() * sizeof(int);
  for (const std::string& s : r.anchor.description)
    bytes += sizeof(std::string) + s.size();
  for (const Counterfactual& cf : r.counterfactuals)
    bytes += sizeof(Counterfactual) + cf.x.size() * sizeof(double);
  return bytes;
}

}  // namespace serve
}  // namespace xai
