#include "xai/serve/slo.h"

#include "xai/core/json.h"

namespace xai {
namespace serve {
namespace {

const char kDefaultTenant[] = "default";

double BudgetUsed(int64_t violations, int64_t requests, double target) {
  if (requests <= 0) return 0.0;
  const double budget = 1.0 - target;
  if (budget <= 0.0)
    return violations > 0 ? static_cast<double>(violations) : 0.0;
  const double rate =
      static_cast<double>(violations) / static_cast<double>(requests);
  return rate / budget;
}

}  // namespace

SloTracker::Cell* SloTracker::GetCell(const std::string& tenant,
                                      const std::string& model) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = cells_[{tenant.empty() ? kDefaultTenant : tenant, model}];
  if (!slot) slot = std::make_unique<Cell>();
  return slot.get();
}

void SloTracker::Record(const std::string& tenant, const std::string& model,
                        double latency_ms, bool deadline_met, bool degraded,
                        bool cache_hit, bool coalesced) {
  Cell* cell = GetCell(tenant, model);
  cell->requests.Add(1);
  if (!deadline_met) cell->deadline_misses.Add(1);
  if (degraded) cell->degraded.Add(1);
  if (cache_hit) cell->cache_hits.Add(1);
  if (coalesced) cell->coalesced.Add(1);
  cell->latency_ns.Record(
      latency_ms <= 0.0 ? 0 : static_cast<int64_t>(latency_ms * 1e6));
}

void SloTracker::RecordError(const std::string& tenant,
                             const std::string& model) {
  Cell* cell = GetCell(tenant, model);
  cell->requests.Add(1);
  cell->errors.Add(1);
}

void SloTracker::RecordShed(const std::string& tenant,
                            const std::string& model) {
  Cell* cell = GetCell(tenant, model);
  cell->requests.Add(1);
  cell->shed.Add(1);
}

TenantSloStats SloTracker::StatsFor(const std::string& tenant,
                                    const std::string& model,
                                    const Cell& cell) const {
  TenantSloStats s;
  s.tenant = tenant;
  s.model = model;
  s.requests = cell.requests.Get();
  s.deadline_misses = cell.deadline_misses.Get();
  s.degraded = cell.degraded.Get();
  s.errors = cell.errors.Get();
  s.shed = cell.shed.Get();
  s.cache_hits = cell.cache_hits.Get();
  s.coalesced = cell.coalesced.Get();
  s.latency_p50_ms = cell.latency_ns.Quantile(0.50) / 1e6;
  s.latency_p95_ms = cell.latency_ns.Quantile(0.95) / 1e6;
  s.latency_p99_ms = cell.latency_ns.Quantile(0.99) / 1e6;
  s.deadline_budget_used = BudgetUsed(s.deadline_misses + s.errors + s.shed,
                                      s.requests,
                                      config_.deadline_hit_target);
  s.degradation_budget_used =
      BudgetUsed(s.degraded, s.requests, config_.full_fidelity_target);
  return s;
}

std::vector<TenantSloStats> SloTracker::Snapshot() const {
  std::vector<TenantSloStats> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(cells_.size());
  for (const auto& [key, cell] : cells_)
    out.push_back(StatsFor(key.first, key.second, *cell));
  return out;
}

void SloTracker::WritePrometheus(std::ostream& os) const {
  const std::vector<TenantSloStats> stats = Snapshot();
  auto labels = [&os](const TenantSloStats& s, const char* extra = nullptr) {
    os << "{tenant=";
    json::WriteString(os, s.tenant);
    os << ",model=";
    json::WriteString(os, s.model);
    if (extra) os << "," << extra;
    os << "}";
  };
  auto counter = [&](const char* metric, auto value_of) {
    os << "# TYPE xai_slo_" << metric << "_total counter\n";
    for (const TenantSloStats& s : stats) {
      os << "xai_slo_" << metric << "_total";
      labels(s);
      os << " " << value_of(s) << "\n";
    }
  };
  counter("requests", [](const auto& s) { return s.requests; });
  counter("deadline_misses",
          [](const auto& s) { return s.deadline_misses; });
  counter("degraded", [](const auto& s) { return s.degraded; });
  counter("errors", [](const auto& s) { return s.errors; });
  counter("shed", [](const auto& s) { return s.shed; });
  counter("cache_hits", [](const auto& s) { return s.cache_hits; });
  counter("coalesced", [](const auto& s) { return s.coalesced; });

  os << "# TYPE xai_slo_deadline_budget_used gauge\n";
  for (const TenantSloStats& s : stats) {
    os << "xai_slo_deadline_budget_used";
    labels(s);
    os << " " << s.deadline_budget_used << "\n";
  }
  os << "# TYPE xai_slo_degradation_budget_used gauge\n";
  for (const TenantSloStats& s : stats) {
    os << "xai_slo_degradation_budget_used";
    labels(s);
    os << " " << s.degradation_budget_used << "\n";
  }
  os << "# TYPE xai_slo_latency_ms summary\n";
  for (const TenantSloStats& s : stats) {
    os << "xai_slo_latency_ms";
    labels(s, "quantile=\"0.5\"");
    os << " " << s.latency_p50_ms << "\n";
    os << "xai_slo_latency_ms";
    labels(s, "quantile=\"0.95\"");
    os << " " << s.latency_p95_ms << "\n";
    os << "xai_slo_latency_ms";
    labels(s, "quantile=\"0.99\"");
    os << " " << s.latency_p99_ms << "\n";
  }
}

void SloTracker::WriteJsonl(std::ostream& os) const {
  for (const TenantSloStats& s : Snapshot()) {
    os << "{\"type\":\"slo\",\"tenant\":";
    json::WriteString(os, s.tenant);
    os << ",\"model\":";
    json::WriteString(os, s.model);
    os << ",\"requests\":" << s.requests
       << ",\"deadline_misses\":" << s.deadline_misses
       << ",\"degraded\":" << s.degraded << ",\"errors\":" << s.errors
       << ",\"shed\":" << s.shed
       << ",\"cache_hits\":" << s.cache_hits
       << ",\"coalesced\":" << s.coalesced
       << ",\"latency_p50_ms\":" << s.latency_p50_ms
       << ",\"latency_p95_ms\":" << s.latency_p95_ms
       << ",\"latency_p99_ms\":" << s.latency_p99_ms
       << ",\"deadline_budget_used\":" << s.deadline_budget_used
       << ",\"degradation_budget_used\":" << s.degradation_budget_used
       << "}\n";
  }
}

void SloTracker::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, cell] : cells_) {
    cell->requests.Reset();
    cell->deadline_misses.Reset();
    cell->degraded.Reset();
    cell->errors.Reset();
    cell->shed.Reset();
    cell->cache_hits.Reset();
    cell->coalesced.Reset();
    cell->latency_ns.Reset();
  }
}

}  // namespace serve
}  // namespace xai
