#ifndef XAI_SERVE_EXPLAIN_SERVER_H_
#define XAI_SERVE_EXPLAIN_SERVER_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>

#include "xai/core/status.h"
#include "xai/serve/batcher.h"
#include "xai/serve/degradation.h"
#include "xai/serve/explanation_cache.h"
#include "xai/serve/model_registry.h"
#include "xai/serve/request.h"
#include "xai/serve/slo.h"

namespace xai {
namespace serve {

namespace async {
class AdmissionController;
class SessionManager;
}  // namespace async

/// \brief The explanation serving layer: registry -> cache -> batcher ->
/// explainer, in that order per request.
///
/// The tutorial's data-management reading of XAI is that explanations are
/// query results: they can be cached (same model, same instance, same
/// config => same bytes), batched (concurrent requests share work), and
/// answered approximately under a latency budget (degradation ladder). This
/// class is that pipeline:
///
///   1. resolve the model name against the registry (snapshot + fingerprint);
///   2. price the requested fidelity against the deadline with the
///      deterministic DegradationPolicy, possibly picking a lower tier;
///   3. look up (fingerprint, instance hash, config hash) in the sharded
///      LRU cache — a hit skips all computation;
///   4. on a miss, enqueue on the batching scheduler, which coalesces
///      same-key requests and fans unique work out over the thread pool;
///   5. record the served tier, planned cost, and wall-clock in the
///      response. Responses are bit-identical for a fixed request at any
///      thread count; only `latency_ms` / `deadline_met` / `cache_hit` /
///      `provenance` vary (and PayloadHash excludes them).
///
/// Observability: every request gets a trace_id (caller-provided, or drawn
/// from a deterministic ContentHash64-seeded stream) and a root span; the
/// TraceContext rides the request through the cache, the batcher, the
/// explainer spans, and — via core/parallel's per-region context capture —
/// every chunk a ParallelFor fans out. Responses carry a full
/// ExplanationProvenance record, per-(tenant, model) standing accumulates
/// in the SloTracker, and MetricsSnapshot() renders both plus the registry
/// as Prometheus text or JSONL.
class ExplainServer {
 public:
  struct Config {
    ExplanationCache::Config cache;
    RequestBatcher::Config batcher;
    CostModel cost_model;
    SloTracker::Config slo;
    /// When false, requests execute inline on the calling thread (no
    /// worker, no coalescing) — handy for tests and single-client tools.
    bool enable_batching = true;
    /// Seed of the server-assigned trace_id stream (ids are ContentHash64
    /// over a per-server sequence — deterministic for a fixed seed,
    /// distinct across servers with different seeds).
    uint64_t trace_seed = 0;
  };

  ExplainServer() : ExplainServer(Config()) {}
  explicit ExplainServer(const Config& config);

  /// Serves one request synchronously: cache hit, or batched execution.
  /// NotFound for an unknown model name; InvalidArgument on a schema
  /// mismatch; OutOfRange when the deadline cannot fund the requested
  /// fidelity and the request forbids degradation.
  Result<ExplainResponse> Explain(const ExplainRequest& request);

  /// Asynchronous variant: admission (registry lookup, tier pricing, cache
  /// probe) happens now, the returned future resolves when the batch runs.
  /// Cache hits resolve immediately.
  Result<std::future<Result<ExplainResponse>>> SubmitAsync(
      const ExplainRequest& request);

  /// \brief Wire-layer hooks for ExplainAsync: a precomputed instance hash
  /// and an optional deferred instance payload.
  ///
  /// The async front end probes the cache from a request frame's *header*
  /// — the instance vector stays encoded. `instance_hash` is the hash the
  /// frame carries (0 = compute from request.instance); `deferred_count`
  /// >= 0 promises the instance has that many features without decoding
  /// it, and `materialize` fills it in only when a cache miss makes the
  /// bytes necessary (returning InvalidArgument for a corrupt payload).
  struct AsyncHints {
    uint64_t instance_hash = 0;
    int64_t deferred_count = -1;
    std::function<Status(Vector*)> materialize;
  };

  /// Completion-callback serving path for the event-loop front end. Never
  /// blocks: cache hits invoke `done` inline on the calling thread;
  /// misses go through the batcher's try-enqueue (`done` then runs on the
  /// batch worker under the request's TraceContext). A non-OK return
  /// (NotFound / InvalidArgument / OutOfRange at admission, Overloaded
  /// from a full queue) means `done` will never run — the caller answers
  /// the client itself (e.g. converts Overloaded into a shed).
  Status ExplainAsync(ExplainRequest request, RequestBatcher::Callback done,
                      AsyncHints hints);
  Status ExplainAsync(ExplainRequest request, RequestBatcher::Callback done) {
    return ExplainAsync(std::move(request), std::move(done), AsyncHints());
  }

  ModelRegistry& registry() { return registry_; }
  const ModelRegistry& registry() const { return registry_; }
  ExplanationCache& cache() { return cache_; }
  const ExplanationCache& cache() const { return cache_; }
  const DegradationPolicy& policy() const { return policy_; }
  /// Null when batching is disabled.
  RequestBatcher* batcher() { return batcher_.get(); }

  SloTracker& slo() { return slo_; }
  const SloTracker& slo() const { return slo_; }

  /// The metrics export surface: the global telemetry registry (counters,
  /// span histograms) plus this server's per-tenant SLO standings — and,
  /// when an async front end attached its admission controller / session
  /// manager, per-tenant token/shed gauges and session reuse rates —
  /// rendered for scraping (Prometheus text exposition) or log shipping
  /// (JSONL).
  enum class MetricsFormat { kPrometheus, kJsonl };
  std::string MetricsSnapshot(MetricsFormat format) const;

  /// Registers the async front end's admission controller / session
  /// manager as metrics sources. Observers only — the server never calls
  /// into them on the serving path. Pass nullptr to detach; the attached
  /// object must outlive the server or be detached first.
  void AttachAdmission(const async::AdmissionController* admission) {
    admission_ = admission;
  }
  void AttachSessions(const async::SessionManager* sessions) {
    sessions_ = sessions;
  }

 private:
  /// Registry lookup, validation, tier choice, cache-key construction.
  /// `hints` (nullable) supplies the wire layer's precomputed instance
  /// hash and deferred-payload promise.
  Result<BatchJob> Admit(const ExplainRequest& request,
                         const AsyncHints* hints) const;
  Result<BatchJob> Admit(const ExplainRequest& request) const {
    return Admit(request, nullptr);
  }
  /// Runs the chosen plan. Called from pool workers via the batcher.
  Result<ExplainResponse> Execute(const BatchJob& job);

  /// Fills in request.trace when the caller left trace_id == 0 and stamps
  /// the head-sampling decision.
  void AssignTrace(ExplainRequest* request) const;
  /// Rewrites the request-scoped provenance fields on a cached response
  /// copy (the payload and its producing-execution facts are shared).
  void StampCacheHit(const ExplainRequest& request, const BatchJob& job,
                     ExplainResponse* response) const;
  /// SLO accounting + root-span emission for requests completed on the
  /// synchronous / cache-hit / inline paths (batched jobs go through the
  /// batcher completion hook instead).
  void RecordCompletion(const ExplainRequest& request,
                        const ExplainResponse& response, int64_t start_ns);
  /// The RequestBatcher completion hook: rewrites follower provenance
  /// (own ids, coalesced-onto linkage), stamps the queue/batch breakdown,
  /// records SLO standing, and emits the request root span.
  void OnBatchComplete(const BatchJob& job,
                       const RequestBatcher::CompletionInfo& info,
                       Result<ExplainResponse>* result);

  ModelRegistry registry_;
  ExplanationCache cache_;
  DegradationPolicy policy_;
  SloTracker slo_;
  const async::AdmissionController* admission_ = nullptr;
  const async::SessionManager* sessions_ = nullptr;
  uint64_t trace_stream_seed_ = 0;
  mutable std::atomic<uint64_t> trace_seq_{0};
  std::unique_ptr<RequestBatcher> batcher_;  // Last member: dies first.
};

}  // namespace serve
}  // namespace xai

#endif  // XAI_SERVE_EXPLAIN_SERVER_H_
