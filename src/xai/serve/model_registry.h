#ifndef XAI_SERVE_MODEL_REGISTRY_H_
#define XAI_SERVE_MODEL_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "xai/core/status.h"
#include "xai/data/dataset.h"
#include "xai/model/flat_ensemble.h"
#include "xai/model/model.h"
#include "xai/model/tree_ensemble_view.h"

namespace xai {
namespace serve {

/// \brief One registered model snapshot: the deserialized model, its stable
/// content fingerprint, and the background data its explainers condition
/// on. Entries are immutable once published — re-registering a name swaps
/// in a new entry; in-flight requests keep their shared_ptr to the old one.
struct ModelEntry {
  std::string name;
  /// Serialization kind tag ("gbdt", "logistic_regression", ...).
  std::string kind;
  /// ContentHash64 of the serialized text. Stable across process restarts
  /// and registry reloads of the same snapshot, so cache keys built on it
  /// survive both.
  uint64_t fingerprint = 0;
  /// ContentHash64 of the background matrix (folded into cache keys:
  /// explanations condition on the background, so swapping it must miss).
  uint64_t background_fingerprint = 0;
  std::shared_ptr<const Model> model;
  /// Non-null for tree-based snapshots (decision_tree / random_forest /
  /// gbdt); borrows from `model`, which this entry keeps alive.
  std::shared_ptr<const TreeEnsembleView> tree_view;
  /// Non-null for tree-based snapshots: the compiled SoA inference kernel
  /// (model/flat_ensemble.h), built eagerly at Register so the first
  /// request never pays the flatten. One kernel per fingerprinted snapshot —
  /// every explainer run against this entry shares it.
  std::shared_ptr<const FlatEnsemble> flat;
  /// Training-distribution sample: SHAP background rows, LIME/Anchors
  /// perturbation statistics, counterfactual plausibility reference.
  std::shared_ptr<const Dataset> background;

  int num_features() const { return background->num_features(); }
};

/// \brief Thread-safe name -> snapshot registry fronting the serving layer.
///
/// Models enter serialized (model/serialization text format), the same
/// bytes a model store or replication stream would carry, and the
/// fingerprint is the content hash of exactly those bytes — the registry
/// never re-serializes, so what you register is what you hash.
class ModelRegistry {
 public:
  /// Deserializes and publishes a snapshot under `name`, replacing any
  /// previous entry (a reload). Returns the content fingerprint.
  /// InvalidArgument on malformed text or an unsupported kind.
  Result<uint64_t> Register(const std::string& name,
                            const std::string& serialized,
                            Dataset background);

  /// The current entry, or nullptr if the name is unknown.
  std::shared_ptr<const ModelEntry> Find(const std::string& name) const;

  /// Removes `name`. NotFound if absent.
  Status Unregister(const std::string& name);

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  int size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const ModelEntry>>
      entries_;
};

}  // namespace serve
}  // namespace xai

#endif  // XAI_SERVE_MODEL_REGISTRY_H_
