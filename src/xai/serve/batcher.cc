#include "xai/serve/batcher.h"

#include <optional>
#include <unordered_map>
#include <utility>

#include "xai/core/parallel.h"
#include "xai/core/telemetry.h"
#include "xai/core/timer.h"
#include "xai/core/trace.h"

namespace xai {
namespace serve {

RequestBatcher::RequestBatcher(const Config& config, Executor executor,
                               Completion on_complete)
    : config_(config),
      executor_(std::move(executor)),
      on_complete_(std::move(on_complete)) {
  worker_ = std::thread([this] { WorkerLoop(); });
}

RequestBatcher::~RequestBatcher() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  worker_.join();
}

Result<std::future<Result<ExplainResponse>>> RequestBatcher::Submit(
    BatchJob job) {
  Pending pending;
  pending.job = std::move(job);
  pending.promise =
      std::make_shared<std::promise<Result<ExplainResponse>>>();
  pending.enqueue_ns = MonotonicNanos();
  auto future = pending.promise->get_future();

  {
    std::unique_lock<std::mutex> lock(mu_);
    if (static_cast<int>(queue_.size()) >= config_.max_queue) {
      if (!config_.block_when_full) {
        XAI_COUNTER_INC("serve/batcher_overloaded");
        return Status::Overloaded("serving queue full");
      }
      space_cv_.wait(lock, [this] {
        return stopping_ ||
               static_cast<int>(queue_.size()) < config_.max_queue;
      });
    }
    if (stopping_) return Status::Internal("batcher is shutting down");
    queue_.push_back(std::move(pending));
    XAI_HISTOGRAM_RECORD("serve/queue_depth",
                         static_cast<int64_t>(queue_.size()));
  }
  work_cv_.notify_one();
  return future;
}

Status RequestBatcher::SubmitCallback(BatchJob job, Callback done) {
  Pending pending;
  pending.job = std::move(job);
  pending.done = std::move(done);
  pending.enqueue_ns = MonotonicNanos();

  {
    std::unique_lock<std::mutex> lock(mu_);
    // Try-enqueue only: an event loop must shed here, never park. The
    // blocking branch of Submit() is deliberately unreachable from this
    // entry point.
    if (static_cast<int>(queue_.size()) >= config_.max_queue) {
      XAI_COUNTER_INC("serve/batcher_overloaded");
      return Status::Overloaded("serving queue full");
    }
    if (stopping_) return Status::Internal("batcher is shutting down");
    queue_.push_back(std::move(pending));
    XAI_HISTOGRAM_RECORD("serve/queue_depth",
                         static_cast<int64_t>(queue_.size()));
  }
  work_cv_.notify_one();
  return Status::OK();
}

void RequestBatcher::Deliver(Pending* pending,
                             Result<ExplainResponse> result) {
  if (pending->done) {
    // The callback continues the request on this worker thread: install the
    // request's trace identity so any spans it opens stay causally linked.
    telemetry::ScopedTraceContext scope(pending->job.request.trace);
    pending->done(std::move(result));
  } else {
    pending->promise->set_value(std::move(result));
  }
}

void RequestBatcher::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void RequestBatcher::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void RequestBatcher::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock,
                [this] { return queue_.empty() && !in_flight_; });
}

int RequestBatcher::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size());
}

void RequestBatcher::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] {
      return stopping_ || (!paused_ && !queue_.empty());
    });
    if (stopping_) break;

    // Drain up to max_batch jobs for the front job's model, preserving the
    // FIFO order of everything left behind.
    std::vector<Pending> batch;
    const std::string model = queue_.front().job.request.model;
    for (auto it = queue_.begin();
         it != queue_.end() &&
         static_cast<int>(batch.size()) < config_.max_batch;) {
      if (it->job.request.model == model) {
        batch.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    in_flight_ = true;
    lock.unlock();
    space_cv_.notify_all();

    ExecuteBatch(std::move(batch));

    lock.lock();
    in_flight_ = false;
    if (queue_.empty()) idle_cv_.notify_all();
  }
  // Shutdown: fail whatever never ran. Move the entries out and deliver
  // after unlocking, mirroring ExecuteBatch — Deliver runs callbacks and
  // future continuations that may re-enter the batcher (Submit,
  // queue_depth, Flush), which would deadlock under mu_.
  std::vector<Pending> orphans(std::make_move_iterator(queue_.begin()),
                               std::make_move_iterator(queue_.end()));
  queue_.clear();
  idle_cv_.notify_all();
  lock.unlock();
  for (auto& pending : orphans)
    Deliver(&pending, Status::Internal("batcher stopped"));
}

void RequestBatcher::ExecuteBatch(std::vector<Pending> batch) {
  const int n = static_cast<int>(batch.size());
  XAI_COUNTER_INC("serve/batches");
  XAI_COUNTER_ADD("serve/batched_requests", n);
  XAI_HISTOGRAM_RECORD("serve/batch_size", n);

  // Coalesce: identical cache keys share one execution (the first
  // occurrence leads). Jobs that opted out of caching always run alone.
  std::vector<int> leader_of(n);
  std::vector<int> leaders;
  leaders.reserve(n);
  std::unordered_map<CacheKey, int, CacheKeyHash> first_with_key;
  for (int i = 0; i < n; ++i) {
    if (batch[i].job.coalescable) {
      auto [it, inserted] = first_with_key.try_emplace(batch[i].job.key, i);
      leader_of[i] = it->second;
      if (inserted)
        leaders.push_back(i);
      else
        XAI_COUNTER_INC("serve/coalesced_requests");
    } else {
      leader_of[i] = i;
      leaders.push_back(i);
    }
  }

  // Unique executions fan out over the pool; each job's own explainer-level
  // ParallelFor then runs inline inside its chunk (nested regions
  // serialize), so batching never changes a response.
  const int64_t batch_start_ns = MonotonicNanos();
  std::vector<std::optional<Result<ExplainResponse>>> results(n);
  ParallelFor(static_cast<int64_t>(leaders.size()), 1,
              [&](int64_t begin, int64_t end, int64_t /*chunk*/) {
                for (int64_t k = begin; k < end; ++k) {
                  const int i = leaders[k];
                  results[i] = executor_(batch[i].job);
                }
              });
  const int64_t done_ns = MonotonicNanos();

  for (int i = 0; i < n; ++i) {
    // Followers get a copy of the leader's result; the completion hook then
    // rewrites the copy's per-request metadata (own trace ids, coalesced
    // linkage, queue timing) without touching the shared payload.
    Result<ExplainResponse> result = *results[leader_of[i]];
    if (on_complete_) {
      CompletionInfo info;
      info.enqueue_ns = batch[i].enqueue_ns;
      info.batch_start_ns = batch_start_ns;
      info.done_ns = done_ns;
      info.batch_size = n;
      info.coalesced = leader_of[i] != i;
      const BatchJob& leader = batch[leader_of[i]].job;
      info.leader_trace_id = leader.request.trace.trace_id;
      info.leader_span_id = leader.root_span_id;
      on_complete_(batch[i].job, info, &result);
    }
    Deliver(&batch[i], std::move(result));
  }
}

}  // namespace serve
}  // namespace xai
