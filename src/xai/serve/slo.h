#ifndef XAI_SERVE_SLO_H_
#define XAI_SERVE_SLO_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "xai/core/telemetry.h"

/// \file
/// Per-tenant / per-model SLO accounting for the serving path.
///
/// Two objectives, each with an error budget (the fraction of requests
/// allowed to violate it over the accounting window — here, since the last
/// Reset()):
///   - deadline objective: requests must meet their deadline
///     (deadline_hit_target, default 99.9%);
///   - fidelity objective: requests must be served at their requested tier
///     (full_fidelity_target, default 99% — degradation is a feature, but a
///     budgeted one: a tenant degraded on every request is being silently
///     short-changed).
/// budget_used = violation_rate / (1 - target): 1.0 means the budget is
/// exactly exhausted, >1 means the objective is being missed.
///
/// Counters and latency histograms reuse the striped telemetry primitives,
/// so recording costs the same as any XAI_COUNTER_ADD. The registry map is
/// mutex-guarded but each (tenant, model) cell is looked up once per
/// request, and cells are stable pointers — never removed (Reset() zeroes
/// values only), matching telemetry::Registry semantics.

namespace xai {
namespace serve {

/// Accumulated standing of one (tenant, model) pair.
struct TenantSloStats {
  std::string tenant;
  std::string model;
  int64_t requests = 0;
  int64_t deadline_misses = 0;
  int64_t degraded = 0;
  int64_t errors = 0;
  /// Admission-control sheds (rate limit / pending bound / queue full).
  /// Counted against the deadline budget like errors: a shed request met
  /// no deadline.
  int64_t shed = 0;
  int64_t cache_hits = 0;
  int64_t coalesced = 0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  /// Fraction of the error budget consumed (see file comment). Errors
  /// count against the deadline budget: a failed request met no deadline.
  double deadline_budget_used = 0.0;
  double degradation_budget_used = 0.0;
};

class SloTracker {
 public:
  struct Config {
    double deadline_hit_target = 0.999;
    double full_fidelity_target = 0.99;
  };

  SloTracker() : SloTracker(Config()) {}
  explicit SloTracker(const Config& config) : config_(config) {}

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// Records one completed request. Thread-safe; one map lookup plus
  /// striped counter bumps.
  void Record(const std::string& tenant, const std::string& model,
              double latency_ms, bool deadline_met, bool degraded,
              bool cache_hit, bool coalesced);

  /// Records one failed request (admission rejection, execution error).
  void RecordError(const std::string& tenant, const std::string& model);

  /// Records one load-shed request (admission control or batcher
  /// backpressure). Sheds charge the deadline error budget — §7's framing:
  /// refusing to answer is an SLO event, not a free action.
  void RecordShed(const std::string& tenant, const std::string& model);

  /// Sorted per-(tenant, model) standings. Quiescent-exact, like every
  /// telemetry snapshot.
  std::vector<TenantSloStats> Snapshot() const;

  /// Prometheus text format, one labelled sample set per (tenant, model):
  /// xai_slo_requests_total{tenant=...,model=...}, deadline misses,
  /// degraded, errors, cache hits, coalesced, budget gauges, and a latency
  /// summary.
  void WritePrometheus(std::ostream& os) const;

  /// One JSON object per (tenant, model) per line.
  void WriteJsonl(std::ostream& os) const;

  /// Zeroes every cell (cells themselves persist — stable pointers).
  void Reset();

  const Config& config() const { return config_; }

 private:
  struct Cell {
    telemetry::Counter requests;
    telemetry::Counter deadline_misses;
    telemetry::Counter degraded;
    telemetry::Counter errors;
    telemetry::Counter shed;
    telemetry::Counter cache_hits;
    telemetry::Counter coalesced;
    telemetry::Histogram latency_ns;  // Nanoseconds, per convention.
  };

  Cell* GetCell(const std::string& tenant, const std::string& model);
  TenantSloStats StatsFor(const std::string& tenant,
                          const std::string& model, const Cell& cell) const;

  const Config config_;
  mutable std::mutex mu_;
  // std::map: snapshots come out sorted without a per-snapshot sort.
  std::map<std::pair<std::string, std::string>, std::unique_ptr<Cell>>
      cells_;
};

}  // namespace serve
}  // namespace xai

#endif  // XAI_SERVE_SLO_H_
