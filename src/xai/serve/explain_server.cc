#include "xai/serve/explain_server.h"

#include <chrono>
#include <string>
#include <utility>

#include "xai/core/telemetry.h"
#include "xai/core/trace.h"
#include "xai/explain/counterfactual/counterfactual.h"
#include "xai/explain/counterfactual/dice.h"
#include "xai/explain/lime.h"
#include "xai/explain/shapley/exact_shapley.h"
#include "xai/explain/shapley/kernel_shap.h"
#include "xai/explain/shapley/sampling_shapley.h"
#include "xai/explain/shapley/tree_shap.h"
#include "xai/explain/shapley/value_function.h"
#include "xai/model/serialization.h"
#include "xai/rules/anchors.h"

namespace xai {
namespace serve {
namespace {

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::vector<std::string> FeatureNames(const Dataset& background) {
  std::vector<std::string> names;
  names.reserve(background.schema().features.size());
  for (const auto& feature : background.schema().features)
    names.push_back(feature.name);
  return names;
}

/// `count_miss` is set only at the end-to-end (queue wait included) layer,
/// so a synchronous request never counts a miss twice.
void FinalizeTiming(const ExplainRequest& request,
                    std::chrono::steady_clock::time_point start,
                    ExplainResponse* response, bool count_miss) {
  response->latency_ms = ElapsedMs(start);
  response->deadline_met =
      request.deadline_ms <= 0.0 || response->latency_ms <= request.deadline_ms;
  if (count_miss && !response->deadline_met)
    XAI_COUNTER_INC("serve/deadline_misses");
}

}  // namespace

ExplainServer::ExplainServer(const Config& config)
    : cache_(config.cache), policy_(config.cost_model) {
  if (config.enable_batching) {
    batcher_ = std::make_unique<RequestBatcher>(
        config.batcher,
        [this](const BatchJob& job) { return Execute(job); });
  }
}

Result<BatchJob> ExplainServer::Admit(const ExplainRequest& request) const {
  BatchJob job;
  job.entry = registry_.Find(request.model);
  if (job.entry == nullptr)
    return Status::NotFound("no registered model named " + request.model);
  const int num_features = job.entry->num_features();
  if (static_cast<int>(request.instance.size()) != num_features)
    return Status::InvalidArgument(
        "instance has " + std::to_string(request.instance.size()) +
        " features; model " + request.model + " expects " +
        std::to_string(num_features));

  const int background_rows = job.entry->background->num_rows();
  job.plan = policy_.Choose(request.kind, request.fidelity, num_features,
                            background_rows, request.deadline_ms);
  // The undegraded reference is what Choose picks with no deadline (the
  // requested tier clamped to the kind's natural top).
  const FidelityTier reference =
      policy_
          .Choose(request.kind, request.fidelity, num_features,
                  background_rows, /*deadline_ms=*/0.0)
          .tier;
  job.degraded = job.plan.tier != reference;
  if (job.degraded && !request.allow_degradation)
    return Status::OutOfRange(
        "deadline of " + std::to_string(request.deadline_ms) +
        " ms cannot fund tier " + FidelityTierName(reference) +
        " and the request forbids degradation");
  if (job.degraded) XAI_COUNTER_INC("serve/degraded_requests");

  job.request = request;
  job.coalescable = request.use_cache;
  job.key.model_fingerprint = job.entry->fingerprint;
  job.key.instance_hash = ContentHash64(request.instance);
  const uint64_t config_fields[] = {
      static_cast<uint64_t>(request.kind),
      static_cast<uint64_t>(job.plan.tier),
      request.seed,
      job.entry->background_fingerprint,
      static_cast<uint64_t>(static_cast<int64_t>(request.desired_class)),
  };
  job.key.config_hash = ContentHash64(config_fields, sizeof(config_fields));
  return job;
}

Result<ExplainResponse> ExplainServer::Explain(const ExplainRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  XAI_COUNTER_INC("serve/requests");
  XAI_ASSIGN_OR_RETURN(BatchJob job, Admit(request));

  if (request.use_cache) {
    if (auto hit = cache_.Get(job.key)) {
      ExplainResponse response = *hit;
      response.cache_hit = true;
      FinalizeTiming(request, start, &response, /*count_miss=*/true);
      return response;
    }
  }

  Result<ExplainResponse> result =
      batcher_ != nullptr
          ? [&]() -> Result<ExplainResponse> {
              XAI_ASSIGN_OR_RETURN(auto future,
                                   batcher_->Submit(std::move(job)));
              return future.get();
            }()
          : Execute(job);
  if (!result.ok()) return result.status();

  ExplainResponse response = std::move(result).ValueOrDie();
  FinalizeTiming(request, start, &response, /*count_miss=*/true);
  return response;
}

Result<std::future<Result<ExplainResponse>>> ExplainServer::SubmitAsync(
    const ExplainRequest& request) {
  XAI_COUNTER_INC("serve/requests");
  XAI_ASSIGN_OR_RETURN(BatchJob job, Admit(request));

  if (request.use_cache) {
    if (auto hit = cache_.Get(job.key)) {
      ExplainResponse response = *hit;
      response.cache_hit = true;
      std::promise<Result<ExplainResponse>> ready;
      ready.set_value(std::move(response));
      return ready.get_future();
    }
  }
  if (batcher_ == nullptr) {
    std::promise<Result<ExplainResponse>> ready;
    ready.set_value(Execute(job));
    return ready.get_future();
  }
  return batcher_->Submit(std::move(job));
}

Result<ExplainResponse> ExplainServer::Execute(const BatchJob& job) {
  XAI_SPAN("serve/execute");
  const auto start = std::chrono::steady_clock::now();
  const ExplainRequest& request = job.request;
  const ModelEntry& entry = *job.entry;
  const TierPlan& plan = job.plan;

  ExplainResponse response;
  response.kind = request.kind;
  response.served_tier = plan.tier;
  response.degraded = job.degraded;
  response.model_fingerprint = entry.fingerprint;
  response.planned_evals = plan.planned_evals;

  Rng rng(request.seed);
  const PredictFn predict = AsPredictFn(*entry.model);

  switch (plan.algorithm) {
    case ExplainerKind::kTreeShap: {
      if (entry.tree_view == nullptr)
        return Status::InvalidArgument(
            "tree_shap requires a tree model; " + entry.name + " is " +
            entry.kind);
      response.attribution = TreeShap(*entry.tree_view, request.instance);
      break;
    }
    case ExplainerKind::kExactShapley: {
      // Model-aware game: coalition sweeps run one batched call through the
      // entry's compiled flat kernel instead of a PredictFn call per row.
      MarginalFeatureGame game(*entry.model, request.instance,
                               entry.background->x());
      XAI_ASSIGN_OR_RETURN(Vector values, ExactShapley(game));
      response.attribution.attributions = std::move(values);
      response.attribution.base_value = game.Value(0);
      response.attribution.prediction = predict(request.instance);
      response.attribution.feature_names = FeatureNames(*entry.background);
      break;
    }
    case ExplainerKind::kKernelShap: {
      MarginalFeatureGame game(*entry.model, request.instance,
                               entry.background->x());
      XAI_ASSIGN_OR_RETURN(response.attribution,
                           KernelShap(game, plan.kernel_config, &rng));
      break;
    }
    case ExplainerKind::kSamplingShapley: {
      MarginalFeatureGame game(*entry.model, request.instance,
                               entry.background->x());
      SamplingShapleyResult sampled =
          SamplingShapley(game, plan.sampling_permutations, &rng);
      response.attribution.attributions = std::move(sampled.values);
      response.attribution.base_value = game.Value(0);
      response.attribution.prediction = predict(request.instance);
      response.attribution.feature_names = FeatureNames(*entry.background);
      break;
    }
    case ExplainerKind::kLime: {
      LimeExplainer lime(*entry.background, plan.lime_config);
      XAI_ASSIGN_OR_RETURN(LimeExplanation explanation,
                           lime.Explain(predict, request.instance,
                                        request.seed));
      response.attribution = std::move(explanation);
      break;
    }
    case ExplainerKind::kAnchors: {
      AnchorsExplainer anchors(*entry.background, plan.anchors_config);
      XAI_ASSIGN_OR_RETURN(response.anchor,
                           anchors.Explain(predict, request.instance,
                                           request.seed));
      break;
    }
    case ExplainerKind::kCounterfactual: {
      CounterfactualEvaluator evaluator(*entry.background);
      ActionabilitySpec spec = ActionabilitySpec::AllFree(*entry.background);
      XAI_ASSIGN_OR_RETURN(
          DiceResult dice,
          DiceCounterfactuals(predict, request.instance,
                              request.desired_class, evaluator, spec,
                              plan.dice_config, &rng));
      response.counterfactuals = std::move(dice.counterfactuals);
      break;
    }
  }

  FinalizeTiming(request, start, &response, /*count_miss=*/false);
  if (request.use_cache)
    cache_.Put(job.key, std::make_shared<const ExplainResponse>(response));
  return response;
}

}  // namespace serve
}  // namespace xai
