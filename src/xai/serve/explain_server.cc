#include "xai/serve/explain_server.h"

#include <chrono>
#include <sstream>
#include <string>
#include <utility>

#include "xai/core/json.h"
#include "xai/core/rng.h"
#include "xai/core/simd.h"
#include "xai/core/telemetry.h"
#include "xai/core/timer.h"
#include "xai/core/trace.h"
#include "xai/explain/counterfactual/counterfactual.h"
#include "xai/explain/counterfactual/dice.h"
#include "xai/explain/lime.h"
#include "xai/explain/shapley/exact_shapley.h"
#include "xai/explain/shapley/kernel_shap.h"
#include "xai/explain/shapley/sampling_shapley.h"
#include "xai/explain/shapley/tree_shap.h"
#include "xai/explain/shapley/value_function.h"
#include "xai/model/serialization.h"
#include "xai/rules/anchors.h"
#include "xai/serve/async/admission.h"
#include "xai/serve/async/session.h"

namespace xai {
namespace serve {
namespace {

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::vector<std::string> FeatureNames(const Dataset& background) {
  std::vector<std::string> names;
  names.reserve(background.schema().features.size());
  for (const auto& feature : background.schema().features)
    names.push_back(feature.name);
  return names;
}

const std::string& TenantOf(const ExplainRequest& request) {
  static const std::string kDefault = "default";
  return request.tenant.empty() ? kDefault : request.tenant;
}

/// `count_miss` is set only at the end-to-end (queue wait included) layer,
/// so a synchronous request never counts a miss twice. Also finalizes the
/// provenance fields that depend on total latency: every exit from the
/// serving path funnels through here, which is what makes provenance
/// coverage a structural property instead of a per-path checklist.
void FinalizeTiming(const ExplainRequest& request,
                    std::chrono::steady_clock::time_point start,
                    ExplainResponse* response, bool count_miss) {
  response->latency_ms = ElapsedMs(start);
  response->deadline_met =
      request.deadline_ms <= 0.0 || response->latency_ms <= request.deadline_ms;
  if (count_miss && !response->deadline_met)
    XAI_COUNTER_INC("serve/deadline_misses");
  response->provenance.total_ms = response->latency_ms;
  response->provenance.deadline_met = response->deadline_met;
  response->provenance.complete = true;
}

}  // namespace

ExplainServer::ExplainServer(const Config& config)
    : cache_(config.cache),
      policy_(config.cost_model),
      slo_(config.slo),
      trace_stream_seed_(
          Rng(ContentHash64("xai.serve/trace_ids") ^ config.trace_seed)
              .NextU64()) {
  if (config.enable_batching) {
    batcher_ = std::make_unique<RequestBatcher>(
        config.batcher, [this](const BatchJob& job) { return Execute(job); },
        [this](const BatchJob& job,
               const RequestBatcher::CompletionInfo& info,
               Result<ExplainResponse>* result) {
          OnBatchComplete(job, info, result);
        });
  }
}

void ExplainServer::AssignTrace(ExplainRequest* request) const {
  if (request->trace.trace_id == 0) {
    // Deterministic id stream: ContentHash64 over a per-server sequence.
    // Reproducible for a fixed trace_seed, well-spread for sampling.
    const uint64_t seq = trace_seq_.fetch_add(1, std::memory_order_relaxed);
    uint64_t id = ContentHash64(&seq, sizeof(seq), trace_stream_seed_);
    if (id == 0) id = 1;  // 0 means "unassigned" everywhere.
    request->trace.trace_id = id;
  }
  request->trace.sampled = telemetry::SampleTrace(request->trace.trace_id);
  // The request's root span: children (serve/execute, explainer spans,
  // ParallelFor chunks) parent-link to it; the span event itself is emitted
  // at completion, covering admission -> response.
  request->trace.span_id = telemetry::NextSpanId();
}

Result<BatchJob> ExplainServer::Admit(const ExplainRequest& request,
                                      const AsyncHints* hints) const {
  BatchJob job;
  job.entry = registry_.Find(request.model);
  if (job.entry == nullptr)
    return Status::NotFound("no registered model named " + request.model);
  const int num_features = job.entry->num_features();
  // A deferred instance is schema-checked against the count its wire
  // header promised; the bytes themselves are only decoded on a cache
  // miss (and verified against the carried hash there).
  const int64_t instance_count =
      (hints != nullptr && hints->deferred_count >= 0)
          ? hints->deferred_count
          : static_cast<int64_t>(request.instance.size());
  if (instance_count != num_features)
    return Status::InvalidArgument(
        "instance has " + std::to_string(instance_count) +
        " features; model " + request.model + " expects " +
        std::to_string(num_features));

  const int background_rows = job.entry->background->num_rows();
  // Tree-based snapshots carry their compiled kernel; its node count prices
  // a TreeSHAP request in eval-equivalents (ignored for other kinds).
  const int64_t tree_nodes =
      job.entry->flat != nullptr ? job.entry->flat->num_nodes() : 0;
  job.plan = policy_.Choose(request.kind, request.fidelity, num_features,
                            background_rows, request.deadline_ms, tree_nodes);
  // The undegraded reference is what Choose picks with no deadline (the
  // requested tier clamped to the kind's natural top).
  const FidelityTier reference =
      policy_
          .Choose(request.kind, request.fidelity, num_features,
                  background_rows, /*deadline_ms=*/0.0, tree_nodes)
          .tier;
  job.degraded = job.plan.tier != reference;
  if (job.degraded && !request.allow_degradation)
    return Status::OutOfRange(
        "deadline of " + std::to_string(request.deadline_ms) +
        " ms cannot fund tier " + FidelityTierName(reference) +
        " and the request forbids degradation");
  if (job.degraded) XAI_COUNTER_INC("serve/degraded_requests");

  job.request = request;
  job.coalescable = request.use_cache;
  job.root_span_id = request.trace.span_id;
  job.key.model_fingerprint = job.entry->fingerprint;
  job.key.instance_hash = (hints != nullptr && hints->instance_hash != 0)
                              ? hints->instance_hash
                              : ContentHash64(request.instance);
  const uint64_t config_fields[] = {
      static_cast<uint64_t>(request.kind),
      static_cast<uint64_t>(job.plan.tier),
      request.seed,
      job.entry->background_fingerprint,
      static_cast<uint64_t>(static_cast<int64_t>(request.desired_class)),
      // Tenant scoping: on the deferred wire path the instance_hash is
      // client-supplied and a hit is served without materializing the
      // payload, so a guessed/replayed hash must only ever reach entries
      // the same tenant produced. Cross-tenant sharing is deliberately
      // given up for that isolation.
      ContentHash64(TenantOf(request)),
  };
  job.key.config_hash = ContentHash64(config_fields, sizeof(config_fields));
  return job;
}

void ExplainServer::RecordCompletion(const ExplainRequest& request,
                                     const ExplainResponse& response,
                                     int64_t start_ns) {
  slo_.Record(TenantOf(request), request.model, response.latency_ms,
              response.deadline_met, response.degraded, response.cache_hit,
              /*coalesced=*/false);
  // Tail retention: the root span of a deadline-missed or degraded request
  // survives any head-sampling rate.
  telemetry::RecordRequestSpan(
      "serve/request", request.trace, request.trace.span_id,
      /*parent_span_id=*/0, start_ns,
      static_cast<int64_t>(response.latency_ms * 1e6),
      /*force_retain=*/!response.deadline_met || response.degraded);
}

Result<ExplainResponse> ExplainServer::Explain(const ExplainRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  const int64_t start_ns = MonotonicNanos();
  XAI_COUNTER_INC("serve/requests");
  ExplainRequest req = request;
  AssignTrace(&req);

  Result<BatchJob> admitted = Admit(req);
  if (!admitted.ok()) {
    slo_.RecordError(TenantOf(req), req.model);
    telemetry::RecordRequestSpan("serve/request_error", req.trace,
                                 req.trace.span_id, /*parent_span_id=*/0,
                                 start_ns, MonotonicNanos() - start_ns,
                                 /*force_retain=*/true);
    return admitted.status();
  }
  BatchJob job = std::move(admitted).ValueOrDie();

  if (req.use_cache) {
    if (auto hit = cache_.Get(job.key)) {
      ExplainResponse response = *hit;
      response.cache_hit = true;
      StampCacheHit(req, job, &response);
      FinalizeTiming(req, start, &response, /*count_miss=*/true);
      RecordCompletion(req, response, start_ns);
      return response;
    }
  }

  Result<ExplainResponse> result =
      batcher_ != nullptr
          ? [&]() -> Result<ExplainResponse> {
              XAI_ASSIGN_OR_RETURN(auto future,
                                   batcher_->Submit(std::move(job)));
              return future.get();
            }()
          : Execute(job);
  if (!result.ok()) {
    if (batcher_ == nullptr) {
      // The batcher completion hook records errors for batched jobs;
      // inline execution accounts for itself.
      slo_.RecordError(TenantOf(req), req.model);
      telemetry::RecordRequestSpan("serve/request_error", req.trace,
                                   req.trace.span_id, /*parent_span_id=*/0,
                                   start_ns, MonotonicNanos() - start_ns,
                                   /*force_retain=*/true);
    }
    return result.status();
  }

  ExplainResponse response = std::move(result).ValueOrDie();
  FinalizeTiming(req, start, &response, /*count_miss=*/true);
  if (batcher_ == nullptr) RecordCompletion(req, response, start_ns);
  return response;
}

Result<std::future<Result<ExplainResponse>>> ExplainServer::SubmitAsync(
    const ExplainRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  const int64_t start_ns = MonotonicNanos();
  XAI_COUNTER_INC("serve/requests");
  ExplainRequest req = request;
  AssignTrace(&req);

  Result<BatchJob> admitted = Admit(req);
  if (!admitted.ok()) {
    slo_.RecordError(TenantOf(req), req.model);
    telemetry::RecordRequestSpan("serve/request_error", req.trace,
                                 req.trace.span_id, /*parent_span_id=*/0,
                                 start_ns, MonotonicNanos() - start_ns,
                                 /*force_retain=*/true);
    return admitted.status();
  }
  BatchJob job = std::move(admitted).ValueOrDie();

  if (req.use_cache) {
    if (auto hit = cache_.Get(job.key)) {
      ExplainResponse response = *hit;
      response.cache_hit = true;
      StampCacheHit(req, job, &response);
      FinalizeTiming(req, start, &response, /*count_miss=*/false);
      RecordCompletion(req, response, start_ns);
      std::promise<Result<ExplainResponse>> ready;
      ready.set_value(std::move(response));
      return ready.get_future();
    }
  }
  if (batcher_ == nullptr) {
    Result<ExplainResponse> result = Execute(job);
    if (result.ok()) {
      RecordCompletion(req, result.ValueOrDie(), start_ns);
    } else {
      slo_.RecordError(TenantOf(req), req.model);
      telemetry::RecordRequestSpan("serve/request_error", req.trace,
                                   req.trace.span_id, /*parent_span_id=*/0,
                                   start_ns, MonotonicNanos() - start_ns,
                                   /*force_retain=*/true);
    }
    std::promise<Result<ExplainResponse>> ready;
    ready.set_value(std::move(result));
    return ready.get_future();
  }
  return batcher_->Submit(std::move(job));
}

Status ExplainServer::ExplainAsync(ExplainRequest request,
                                   RequestBatcher::Callback done,
                                   AsyncHints hints) {
  const auto start = std::chrono::steady_clock::now();
  const int64_t start_ns = MonotonicNanos();
  XAI_COUNTER_INC("serve/requests");
  AssignTrace(&request);

  Result<BatchJob> admitted = Admit(request, &hints);
  if (!admitted.ok()) {
    slo_.RecordError(TenantOf(request), request.model);
    telemetry::RecordRequestSpan("serve/request_error", request.trace,
                                 request.trace.span_id,
                                 /*parent_span_id=*/0, start_ns,
                                 MonotonicNanos() - start_ns,
                                 /*force_retain=*/true);
    return admitted.status();
  }
  BatchJob job = std::move(admitted).ValueOrDie();

  if (request.use_cache) {
    if (auto hit = cache_.Get(job.key)) {
      // The wire-format payoff: for a deferred instance this path never
      // materialized the feature vector at all.
      ExplainResponse response = *hit;
      response.cache_hit = true;
      StampCacheHit(request, job, &response);
      FinalizeTiming(request, start, &response, /*count_miss=*/false);
      RecordCompletion(request, response, start_ns);
      done(std::move(response));
      return Status::OK();
    }
  }

  if (hints.materialize != nullptr) {
    Status materialized = hints.materialize(&job.request.instance);
    if (!materialized.ok()) {
      slo_.RecordError(TenantOf(request), request.model);
      telemetry::RecordRequestSpan("serve/request_error", request.trace,
                                   request.trace.span_id,
                                   /*parent_span_id=*/0, start_ns,
                                   MonotonicNanos() - start_ns,
                                   /*force_retain=*/true);
      return materialized;
    }
  }

  if (batcher_ != nullptr)
    // Try-enqueue only: Overloaded propagates to the caller, which sheds.
    return batcher_->SubmitCallback(std::move(job), std::move(done));

  Result<ExplainResponse> result = Execute(job);
  if (result.ok()) {
    RecordCompletion(request, result.ValueOrDie(), start_ns);
  } else {
    slo_.RecordError(TenantOf(request), request.model);
    telemetry::RecordRequestSpan("serve/request_error", request.trace,
                                 request.trace.span_id,
                                 /*parent_span_id=*/0, start_ns,
                                 MonotonicNanos() - start_ns,
                                 /*force_retain=*/true);
  }
  done(std::move(result));
  return Status::OK();
}

void ExplainServer::StampCacheHit(const ExplainRequest& request,
                                  const BatchJob& job,
                                  ExplainResponse* response) const {
  // The cached payload (and its producing-execution facts: served tier,
  // algorithm, simd backend) is shared; everything request-scoped is
  // rewritten for *this* request. used_evals/compute are zero — a hit
  // spends nothing.
  ExplanationProvenance& prov = response->provenance;
  prov.trace_id = request.trace.trace_id;
  prov.root_span_id = request.trace.span_id;
  prov.tenant = TenantOf(request);
  prov.model = request.model;
  prov.kind = ExplainerKindName(request.kind);
  prov.requested_tier = FidelityTierName(request.fidelity);
  prov.served_tier = FidelityTierName(job.plan.tier);
  prov.algorithm = ExplainerKindName(job.plan.algorithm);
  prov.degraded = job.degraded;
  prov.cache_hit = true;
  prov.coalesced = false;
  prov.coalesced_onto = 0;
  prov.planned_evals = job.plan.planned_evals;
  prov.used_evals = 0;
  prov.batch_size = 0;
  prov.queue_ms = 0.0;
  prov.compute_ms = 0.0;
}

void ExplainServer::OnBatchComplete(
    const BatchJob& job, const RequestBatcher::CompletionInfo& info,
    Result<ExplainResponse>* result) {
  const ExplainRequest& req = job.request;
  const int64_t total_ns = info.done_ns - info.enqueue_ns;
  if (!result->ok()) {
    slo_.RecordError(TenantOf(req), req.model);
    telemetry::RecordRequestSpan("serve/request_error", req.trace,
                                 job.root_span_id, /*parent_span_id=*/0,
                                 info.enqueue_ns, total_ns,
                                 /*force_retain=*/true);
    return;
  }

  ExplainResponse& response = result->ValueOrDie();
  const double total_ms = static_cast<double>(total_ns) / 1e6;
  response.latency_ms = total_ms;
  response.deadline_met =
      req.deadline_ms <= 0.0 || total_ms <= req.deadline_ms;

  // Followers hold a copy of the leader's response: re-stamp everything
  // request-scoped (their own ids, tier ask, queue timing) and link the
  // payload back to the execution that produced it.
  ExplanationProvenance& prov = response.provenance;
  prov.trace_id = req.trace.trace_id;
  prov.root_span_id = job.root_span_id;
  prov.tenant = TenantOf(req);
  prov.model = req.model;
  prov.kind = ExplainerKindName(req.kind);
  prov.requested_tier = FidelityTierName(req.fidelity);
  prov.degraded = job.degraded;
  prov.coalesced = info.coalesced;
  prov.coalesced_onto = info.coalesced ? info.leader_trace_id : 0;
  if (info.coalesced) {
    prov.used_evals = 0;     // This request ran nothing...
    prov.compute_ms = 0.0;   // ...the leader's execution is billed once.
  }
  prov.queue_ms =
      static_cast<double>(info.batch_start_ns - info.enqueue_ns) / 1e6;
  prov.batch_size = info.batch_size;
  prov.total_ms = total_ms;
  prov.deadline_met = response.deadline_met;
  prov.complete = true;

  slo_.Record(TenantOf(req), req.model, total_ms, response.deadline_met,
              job.degraded, /*cache_hit=*/false, info.coalesced);
  // The request root span. A coalesced follower parent-links to the
  // leader's root, so the trace shows N requests hanging off one
  // execution. Tail retention keeps every missed/degraded request.
  telemetry::RecordRequestSpan(
      "serve/request", req.trace, job.root_span_id,
      /*parent_span_id=*/info.coalesced ? info.leader_span_id : 0,
      info.enqueue_ns, total_ns,
      /*force_retain=*/!response.deadline_met || job.degraded);
}

namespace {

void WriteAdmissionMetrics(std::ostream& os,
                           const async::AdmissionController& admission,
                           ExplainServer::MetricsFormat format) {
  const auto snapshot = admission.Snapshot();
  if (format == ExplainServer::MetricsFormat::kPrometheus) {
    auto series = [&](const char* metric, const char* type, auto value_of) {
      os << "# TYPE xai_admission_" << metric << " " << type << "\n";
      for (const auto& [tenant, stats] : snapshot) {
        os << "xai_admission_" << metric << "{tenant=";
        json::WriteString(os, tenant);
        os << "} " << value_of(stats) << "\n";
      }
    };
    series("tokens_available", "gauge",
           [](const auto& s) { return s.tokens_available; });
    series("pending", "gauge", [](const auto& s) { return s.pending; });
    series("admitted_total", "counter",
           [](const auto& s) { return s.admitted; });
    series("shed_rate_limited_total", "counter",
           [](const auto& s) { return s.shed_rate_limited; });
    series("shed_pending_total", "counter",
           [](const auto& s) { return s.shed_pending_full; });
  } else {
    for (const auto& [tenant, stats] : snapshot) {
      os << "{\"type\":\"admission\",\"tenant\":";
      json::WriteString(os, tenant);
      os << ",\"tokens_available\":" << stats.tokens_available
         << ",\"pending\":" << stats.pending
         << ",\"admitted\":" << stats.admitted
         << ",\"shed_rate_limited\":" << stats.shed_rate_limited
         << ",\"shed_pending_full\":" << stats.shed_pending_full << "}\n";
    }
  }
}

void WriteSessionMetrics(std::ostream& os,
                         const async::SessionManager& sessions,
                         ExplainServer::MetricsFormat format) {
  const auto stats = sessions.GetStats();
  if (format == ExplainServer::MetricsFormat::kPrometheus) {
    os << "# TYPE xai_sessions_active gauge\n"
       << "xai_sessions_active " << stats.active_sessions << "\n"
       << "# TYPE xai_sessions_opened_total counter\n"
       << "xai_sessions_opened_total " << stats.opened << "\n"
       << "# TYPE xai_sessions_expired_total counter\n"
       << "xai_sessions_expired_total " << stats.expired << "\n"
       << "# TYPE xai_sessions_memo_hits_total counter\n"
       << "xai_sessions_memo_hits_total " << stats.memo_hits << "\n"
       << "# TYPE xai_sessions_memo_misses_total counter\n"
       << "xai_sessions_memo_misses_total " << stats.memo_misses << "\n"
       << "# TYPE xai_sessions_reuse_answers_total counter\n"
       << "xai_sessions_reuse_answers_total " << stats.reuse_answers
       << "\n"
       << "# TYPE xai_sessions_memo_hit_rate gauge\n"
       << "xai_sessions_memo_hit_rate " << stats.memo_hit_rate << "\n";
  } else {
    os << "{\"type\":\"sessions\",\"active\":" << stats.active_sessions
       << ",\"opened\":" << stats.opened
       << ",\"expired\":" << stats.expired
       << ",\"memo_hits\":" << stats.memo_hits
       << ",\"memo_misses\":" << stats.memo_misses
       << ",\"reuse_answers\":" << stats.reuse_answers
       << ",\"memo_hit_rate\":" << stats.memo_hit_rate << "}\n";
  }
}

}  // namespace

std::string ExplainServer::MetricsSnapshot(MetricsFormat format) const {
  std::ostringstream os;
  if (format == MetricsFormat::kPrometheus) {
    telemetry::Registry::Global().WritePrometheus(os);
    slo_.WritePrometheus(os);
  } else {
    telemetry::Registry::Global().WriteJson(os);
    slo_.WriteJsonl(os);
  }
  if (admission_ != nullptr) WriteAdmissionMetrics(os, *admission_, format);
  if (sessions_ != nullptr) WriteSessionMetrics(os, *sessions_, format);
  return os.str();
}

Result<ExplainResponse> ExplainServer::Execute(const BatchJob& job) {
  // Adopt the request's trace identity for everything below — explainer
  // spans, cache writes, and every ParallelFor chunk record against this
  // request's trace_id with the root span as ancestor.
  XAI_TRACE_CONTEXT(job.request.trace);
  XAI_SPAN("serve/execute");
  const auto start = std::chrono::steady_clock::now();
  const ExplainRequest& request = job.request;
  const ModelEntry& entry = *job.entry;
  const TierPlan& plan = job.plan;

  ExplainResponse response;
  response.kind = request.kind;
  response.served_tier = plan.tier;
  response.degraded = job.degraded;
  response.model_fingerprint = entry.fingerprint;
  response.planned_evals = plan.planned_evals;

  ExplanationProvenance& prov = response.provenance;
  prov.trace_id = request.trace.trace_id;
  prov.root_span_id = job.root_span_id;
  prov.tenant = TenantOf(request);
  prov.model = request.model;
  prov.kind = ExplainerKindName(request.kind);
  prov.requested_tier = FidelityTierName(request.fidelity);
  prov.served_tier = FidelityTierName(plan.tier);
  prov.algorithm = ExplainerKindName(plan.algorithm);
  prov.degraded = job.degraded;
  prov.planned_evals = plan.planned_evals;
  prov.simd_backend = simd::BackendName(simd::Active());
  prov.batch_size = 1;  // Overwritten by the batch completion hook.

  Rng rng(request.seed);
  const PredictFn predict = AsPredictFn(*entry.model);
  const int64_t background_rows = entry.background->num_rows();

  switch (plan.algorithm) {
    case ExplainerKind::kTreeShap: {
      if (entry.tree_view == nullptr)
        return Status::InvalidArgument(
            "tree_shap requires a tree model; " + entry.name + " is " +
            entry.kind);
      response.attribution = TreeShap(*entry.tree_view, request.instance);
      // Structural tree walk: no model-row evaluations to meter.
      prov.used_evals = 0;
      break;
    }
    case ExplainerKind::kExactShapley: {
      // Model-aware game: coalition sweeps run one batched call through the
      // entry's compiled flat kernel instead of a PredictFn call per row.
      MarginalFeatureGame game(*entry.model, request.instance,
                               entry.background->x());
      XAI_ASSIGN_OR_RETURN(Vector values, ExactShapley(game));
      response.attribution.attributions = std::move(values);
      response.attribution.base_value = game.Value(0);
      response.attribution.prediction = predict(request.instance);
      response.attribution.feature_names = FeatureNames(*entry.background);
      prov.used_evals = game.num_evaluations() * background_rows;
      break;
    }
    case ExplainerKind::kKernelShap: {
      MarginalFeatureGame game(*entry.model, request.instance,
                               entry.background->x());
      XAI_ASSIGN_OR_RETURN(response.attribution,
                           KernelShap(game, plan.kernel_config, &rng));
      prov.used_evals = game.num_evaluations() * background_rows;
      break;
    }
    case ExplainerKind::kSamplingShapley: {
      MarginalFeatureGame game(*entry.model, request.instance,
                               entry.background->x());
      SamplingShapleyResult sampled =
          SamplingShapley(game, plan.sampling_permutations, &rng);
      response.attribution.attributions = std::move(sampled.values);
      response.attribution.base_value = game.Value(0);
      response.attribution.prediction = predict(request.instance);
      response.attribution.feature_names = FeatureNames(*entry.background);
      prov.used_evals = game.num_evaluations() * background_rows;
      break;
    }
    case ExplainerKind::kLime: {
      LimeExplainer lime(*entry.background, plan.lime_config);
      XAI_ASSIGN_OR_RETURN(LimeExplanation explanation,
                           lime.Explain(predict, request.instance,
                                        request.seed));
      response.attribution = std::move(explanation);
      // LIME's sampling loop runs exactly its configured budget.
      prov.used_evals = plan.planned_evals;
      break;
    }
    case ExplainerKind::kAnchors: {
      AnchorsExplainer anchors(*entry.background, plan.anchors_config);
      XAI_ASSIGN_OR_RETURN(response.anchor,
                           anchors.Explain(predict, request.instance,
                                           request.seed));
      prov.used_evals =
          response.anchor.samples_used > 0
              ? static_cast<int64_t>(response.anchor.samples_used)
              : plan.planned_evals;
      break;
    }
    case ExplainerKind::kCounterfactual: {
      CounterfactualEvaluator evaluator(*entry.background);
      ActionabilitySpec spec = ActionabilitySpec::AllFree(*entry.background);
      XAI_ASSIGN_OR_RETURN(
          DiceResult dice,
          DiceCounterfactuals(predict, request.instance,
                              request.desired_class, evaluator, spec,
                              plan.dice_config, &rng));
      response.counterfactuals = std::move(dice.counterfactuals);
      prov.used_evals = plan.planned_evals;
      break;
    }
  }

  prov.compute_ms = ElapsedMs(start);
  FinalizeTiming(request, start, &response, /*count_miss=*/false);
  if (request.use_cache)
    cache_.Put(job.key, std::make_shared<const ExplainResponse>(response));
  return response;
}

}  // namespace serve
}  // namespace xai
