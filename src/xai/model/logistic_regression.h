#ifndef XAI_MODEL_LOGISTIC_REGRESSION_H_
#define XAI_MODEL_LOGISTIC_REGRESSION_H_

#include <string>

#include "xai/core/status.h"
#include "xai/model/model.h"

namespace xai {

/// Numerically stable sigmoid.
double Sigmoid(double z);

/// \brief Configuration for LogisticRegressionModel.
struct LogisticRegressionConfig {
  double l2 = 1e-4;    ///< L2 penalty on weights (not the intercept).
  int max_iter = 100;  ///< Newton iterations.
  double tol = 1e-10;  ///< Stop when the gradient norm drops below this.
  /// Per-sample weights (empty = all ones); used by Data Shapley variants.
  Vector sample_weights;
};

/// \brief L2-regularized binary logistic regression trained with Newton's
/// method (IRLS), with a gradient-descent fallback if the Hessian solve
/// fails.
///
/// Exposes gradients and Hessians of its loss — the quantities influence
/// functions (Koh & Liang, §2.3.2) and incremental maintenance (§3) consume.
class LogisticRegressionModel : public Model {
 public:
  using Config = LogisticRegressionConfig;

  static Result<LogisticRegressionModel> Train(const Matrix& x,
                                               const Vector& y,
                                               const Config& config = {});
  static Result<LogisticRegressionModel> Train(const Dataset& dataset,
                                               const Config& config = {});
  /// Warm-started training (initial parameters = `init`, last = bias).
  static Result<LogisticRegressionModel> TrainWarmStart(
      const Matrix& x, const Vector& y, const Vector& init_weights,
      double init_bias, const Config& config = {});

  TaskType task() const override { return TaskType::kClassification; }
  std::string name() const override { return "logistic_regression"; }
  double Predict(const Vector& row) const override;
  /// Batched dot products + sigmoid over Matrix rows in place, parallelized.
  Vector PredictBatch(const Matrix& x) const override;

  /// Decision-function value (log-odds) for a row.
  double Margin(const Vector& row) const;

  const Vector& weights() const { return weights_; }
  double bias() const { return bias_; }
  const Config& config() const { return config_; }

  /// Per-example (unregularized) negative log-likelihood loss.
  double ExampleLoss(const Vector& row, double label) const;
  /// Gradient of the *unregularized* per-example loss w.r.t. [weights; bias].
  Vector ExampleLossGradient(const Vector& row, double label) const;
  /// Full-dataset Hessian of the regularized mean loss w.r.t.
  /// [weights; bias]; dimension (d+1) x (d+1).
  Matrix LossHessian(const Matrix& x) const;

  static LogisticRegressionModel FromCoefficients(Vector weights, double bias,
                                                  const Config& config = {});

 private:
  Vector weights_;
  double bias_ = 0.0;
  Config config_;
};

}  // namespace xai

#endif  // XAI_MODEL_LOGISTIC_REGRESSION_H_
