#ifndef XAI_MODEL_SERIALIZATION_H_
#define XAI_MODEL_SERIALIZATION_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "xai/core/matrix.h"
#include "xai/core/status.h"
#include "xai/model/decision_tree.h"
#include "xai/model/gbdt.h"
#include "xai/model/linear_regression.h"
#include "xai/model/logistic_regression.h"
#include "xai/model/random_forest.h"

namespace xai {

/// \brief Text serialization of the library's models: a line-oriented,
/// human-inspectable format ("xai_model v1 <kind> ..."). Round trips are
/// prediction-exact (doubles are written with %.17g).

std::string SerializeModel(const LinearRegressionModel& model);
std::string SerializeModel(const LogisticRegressionModel& model);
std::string SerializeModel(const DecisionTreeModel& model);
std::string SerializeModel(const RandomForestModel& model);
std::string SerializeModel(const GbdtModel& model);

Result<LinearRegressionModel> DeserializeLinearRegression(
    const std::string& text);
Result<LogisticRegressionModel> DeserializeLogisticRegression(
    const std::string& text);
Result<DecisionTreeModel> DeserializeDecisionTree(const std::string& text);
Result<RandomForestModel> DeserializeRandomForest(const std::string& text);
Result<GbdtModel> DeserializeGbdt(const std::string& text);

/// Kind tag on the header line ("linear_regression", "gbdt", ...), so
/// callers can dispatch before deserializing. NotFound on malformed input.
Result<std::string> PeekModelKind(const std::string& text);

/// \name Content hashing
/// Stable 64-bit FNV-1a content hash. The serving layer keys its
/// explanation cache on these: a model's fingerprint is the hash of its
/// serialized text, so re-registering the same snapshot after a process
/// restart (or a registry reload) lands on the same cache entries. The
/// function is defined by the FNV-1a recurrence — it never changes across
/// platforms or library versions, unlike std::hash.
/// @{

inline constexpr uint64_t kContentHashSeed = 0xcbf29ce484222325ULL;

/// FNV-1a over a byte range; chain calls by passing the previous hash as
/// `seed`.
uint64_t ContentHash64(const void* data, size_t len,
                       uint64_t seed = kContentHashSeed);
uint64_t ContentHash64(const std::string& s,
                       uint64_t seed = kContentHashSeed);
/// Hash of a vector's raw double bytes (bit-exact, so two instances hash
/// equal iff every coordinate is bit-identical).
uint64_t ContentHash64(const Vector& v, uint64_t seed = kContentHashSeed);

/// Fingerprint of a serialized model snapshot (= ContentHash64 of the
/// text). Overloads serialize first, so fingerprints are stable across
/// save/load round trips of the same model.
uint64_t Fingerprint(const std::string& serialized);
uint64_t Fingerprint(const LinearRegressionModel& model);
uint64_t Fingerprint(const LogisticRegressionModel& model);
uint64_t Fingerprint(const DecisionTreeModel& model);
uint64_t Fingerprint(const RandomForestModel& model);
uint64_t Fingerprint(const GbdtModel& model);
/// @}

/// File helpers.
Status SaveModelToFile(const std::string& serialized,
                       const std::string& path);
Result<std::string> LoadModelFile(const std::string& path);

}  // namespace xai

#endif  // XAI_MODEL_SERIALIZATION_H_
