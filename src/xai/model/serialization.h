#ifndef XAI_MODEL_SERIALIZATION_H_
#define XAI_MODEL_SERIALIZATION_H_

#include <string>

#include "xai/core/status.h"
#include "xai/model/decision_tree.h"
#include "xai/model/gbdt.h"
#include "xai/model/linear_regression.h"
#include "xai/model/logistic_regression.h"
#include "xai/model/random_forest.h"

namespace xai {

/// \brief Text serialization of the library's models: a line-oriented,
/// human-inspectable format ("xai_model v1 <kind> ..."). Round trips are
/// prediction-exact (doubles are written with %.17g).

std::string SerializeModel(const LinearRegressionModel& model);
std::string SerializeModel(const LogisticRegressionModel& model);
std::string SerializeModel(const DecisionTreeModel& model);
std::string SerializeModel(const RandomForestModel& model);
std::string SerializeModel(const GbdtModel& model);

Result<LinearRegressionModel> DeserializeLinearRegression(
    const std::string& text);
Result<LogisticRegressionModel> DeserializeLogisticRegression(
    const std::string& text);
Result<DecisionTreeModel> DeserializeDecisionTree(const std::string& text);
Result<RandomForestModel> DeserializeRandomForest(const std::string& text);
Result<GbdtModel> DeserializeGbdt(const std::string& text);

/// Kind tag on the header line ("linear_regression", "gbdt", ...), so
/// callers can dispatch before deserializing. NotFound on malformed input.
Result<std::string> PeekModelKind(const std::string& text);

/// File helpers.
Status SaveModelToFile(const std::string& serialized,
                       const std::string& path);
Result<std::string> LoadModelFile(const std::string& path);

}  // namespace xai

#endif  // XAI_MODEL_SERIALIZATION_H_
