#include "xai/model/serialization.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace xai {
namespace {

constexpr char kMagic[] = "xai_model";
constexpr char kVersion[] = "v1";

void AppendDouble(std::ostringstream* os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *os << buf;
}

void AppendVector(std::ostringstream* os, const char* name,
                  const Vector& v) {
  *os << name << " " << v.size();
  for (double x : v) {
    *os << " ";
    AppendDouble(os, x);
  }
  *os << "\n";
}

void AppendTree(std::ostringstream* os, const Tree& tree) {
  *os << "tree " << tree.num_nodes() << "\n";
  for (const TreeNode& n : tree.nodes()) {
    *os << "node " << n.feature << " ";
    AppendDouble(os, n.threshold);
    *os << " " << n.left << " " << n.right << " ";
    AppendDouble(os, n.value);
    *os << " ";
    AppendDouble(os, n.cover);
    *os << "\n";
  }
}

/// Tokenizing reader over the serialized text.
class Reader {
 public:
  explicit Reader(const std::string& text) : in_(text) {}

  Result<std::string> Word() {
    std::string w;
    if (!(in_ >> w)) return Status::InvalidArgument("unexpected end of model");
    return w;
  }
  Result<double> Double() {
    double v;
    if (!(in_ >> v)) return Status::InvalidArgument("expected number");
    return v;
  }
  Result<int> Int() {
    int v;
    if (!(in_ >> v)) return Status::InvalidArgument("expected integer");
    return v;
  }
  Status Expect(const std::string& token) {
    XAI_ASSIGN_OR_RETURN(std::string w, Word());
    if (w != token)
      return Status::InvalidArgument("expected '" + token + "', got '" + w +
                                     "'");
    return Status::OK();
  }
  Result<Vector> NamedVector(const std::string& name) {
    XAI_RETURN_NOT_OK(Expect(name));
    XAI_ASSIGN_OR_RETURN(int n, Int());
    if (n < 0) return Status::InvalidArgument("negative vector size");
    Vector v(n);
    for (int i = 0; i < n; ++i) {
      XAI_ASSIGN_OR_RETURN(v[i], Double());
    }
    return v;
  }
  Result<Tree> ReadTree() {
    XAI_RETURN_NOT_OK(Expect("tree"));
    XAI_ASSIGN_OR_RETURN(int count, Int());
    if (count < 0) return Status::InvalidArgument("negative node count");
    std::vector<TreeNode> nodes(count);
    for (int i = 0; i < count; ++i) {
      XAI_RETURN_NOT_OK(Expect("node"));
      TreeNode& n = nodes[i];
      XAI_ASSIGN_OR_RETURN(n.feature, Int());
      XAI_ASSIGN_OR_RETURN(n.threshold, Double());
      XAI_ASSIGN_OR_RETURN(n.left, Int());
      XAI_ASSIGN_OR_RETURN(n.right, Int());
      XAI_ASSIGN_OR_RETURN(n.value, Double());
      XAI_ASSIGN_OR_RETURN(n.cover, Double());
      if (!n.IsLeaf() &&
          (n.left < 0 || n.left >= count || n.right < 0 || n.right >= count))
        return Status::InvalidArgument("tree child index out of range");
    }
    return Tree(std::move(nodes));
  }
  Status Header(const std::string& kind, std::string* task = nullptr) {
    XAI_RETURN_NOT_OK(Expect(kMagic));
    XAI_RETURN_NOT_OK(Expect(kVersion));
    XAI_RETURN_NOT_OK(Expect(kind));
    if (task != nullptr) {
      XAI_ASSIGN_OR_RETURN(*task, Word());
      if (*task != "classification" && *task != "regression")
        return Status::InvalidArgument("bad task tag: " + *task);
    }
    return Status::OK();
  }

 private:
  std::istringstream in_;
};

const char* TaskTag(TaskType task) {
  return task == TaskType::kClassification ? "classification"
                                           : "regression";
}

TaskType TagToTask(const std::string& tag) {
  return tag == "classification" ? TaskType::kClassification
                                 : TaskType::kRegression;
}

}  // namespace

std::string SerializeModel(const LinearRegressionModel& model) {
  std::ostringstream os;
  os << kMagic << " " << kVersion << " linear_regression\n";
  AppendVector(&os, "weights", model.weights());
  os << "bias ";
  AppendDouble(&os, model.bias());
  os << "\nl2 ";
  AppendDouble(&os, model.config().l2);
  os << "\n";
  return os.str();
}

Result<LinearRegressionModel> DeserializeLinearRegression(
    const std::string& text) {
  Reader r(text);
  XAI_RETURN_NOT_OK(r.Header("linear_regression"));
  XAI_ASSIGN_OR_RETURN(Vector weights, r.NamedVector("weights"));
  XAI_RETURN_NOT_OK(r.Expect("bias"));
  XAI_ASSIGN_OR_RETURN(double bias, r.Double());
  XAI_RETURN_NOT_OK(r.Expect("l2"));
  XAI_ASSIGN_OR_RETURN(double l2, r.Double());
  return LinearRegressionModel::FromCoefficients(std::move(weights), bias,
                                                 {l2});
}

std::string SerializeModel(const LogisticRegressionModel& model) {
  std::ostringstream os;
  os << kMagic << " " << kVersion << " logistic_regression\n";
  AppendVector(&os, "weights", model.weights());
  os << "bias ";
  AppendDouble(&os, model.bias());
  os << "\nl2 ";
  AppendDouble(&os, model.config().l2);
  os << "\n";
  return os.str();
}

Result<LogisticRegressionModel> DeserializeLogisticRegression(
    const std::string& text) {
  Reader r(text);
  XAI_RETURN_NOT_OK(r.Header("logistic_regression"));
  XAI_ASSIGN_OR_RETURN(Vector weights, r.NamedVector("weights"));
  XAI_RETURN_NOT_OK(r.Expect("bias"));
  XAI_ASSIGN_OR_RETURN(double bias, r.Double());
  XAI_RETURN_NOT_OK(r.Expect("l2"));
  XAI_ASSIGN_OR_RETURN(double l2, r.Double());
  LogisticRegressionConfig config;
  config.l2 = l2;
  return LogisticRegressionModel::FromCoefficients(std::move(weights), bias,
                                                   config);
}

std::string SerializeModel(const DecisionTreeModel& model) {
  std::ostringstream os;
  os << kMagic << " " << kVersion << " decision_tree "
     << TaskTag(model.task()) << "\n";
  AppendTree(&os, model.tree());
  return os.str();
}

Result<DecisionTreeModel> DeserializeDecisionTree(const std::string& text) {
  Reader r(text);
  std::string task;
  XAI_RETURN_NOT_OK(r.Header("decision_tree", &task));
  XAI_ASSIGN_OR_RETURN(Tree tree, r.ReadTree());
  return DecisionTreeModel::FromTree(std::move(tree), TagToTask(task));
}

std::string SerializeModel(const RandomForestModel& model) {
  std::ostringstream os;
  os << kMagic << " " << kVersion << " random_forest "
     << TaskTag(model.task()) << "\ntrees " << model.trees().size() << "\n";
  for (const Tree& tree : model.trees()) AppendTree(&os, tree);
  return os.str();
}

Result<RandomForestModel> DeserializeRandomForest(const std::string& text) {
  Reader r(text);
  std::string task;
  XAI_RETURN_NOT_OK(r.Header("random_forest", &task));
  XAI_RETURN_NOT_OK(r.Expect("trees"));
  XAI_ASSIGN_OR_RETURN(int count, r.Int());
  std::vector<Tree> trees;
  for (int t = 0; t < count; ++t) {
    XAI_ASSIGN_OR_RETURN(Tree tree, r.ReadTree());
    trees.push_back(std::move(tree));
  }
  return RandomForestModel::FromTrees(std::move(trees), TagToTask(task));
}

std::string SerializeModel(const GbdtModel& model) {
  std::ostringstream os;
  os << kMagic << " " << kVersion << " gbdt " << TaskTag(model.task())
     << "\nbase_score ";
  AppendDouble(&os, model.base_score());
  os << "\nlearning_rate ";
  AppendDouble(&os, model.config().learning_rate);
  os << "\ntrees " << model.trees().size() << "\n";
  for (const Tree& tree : model.trees()) AppendTree(&os, tree);
  return os.str();
}

Result<GbdtModel> DeserializeGbdt(const std::string& text) {
  Reader r(text);
  std::string task;
  XAI_RETURN_NOT_OK(r.Header("gbdt", &task));
  XAI_RETURN_NOT_OK(r.Expect("base_score"));
  XAI_ASSIGN_OR_RETURN(double base_score, r.Double());
  XAI_RETURN_NOT_OK(r.Expect("learning_rate"));
  XAI_ASSIGN_OR_RETURN(double lr, r.Double());
  XAI_RETURN_NOT_OK(r.Expect("trees"));
  XAI_ASSIGN_OR_RETURN(int count, r.Int());
  std::vector<Tree> trees;
  for (int t = 0; t < count; ++t) {
    XAI_ASSIGN_OR_RETURN(Tree tree, r.ReadTree());
    trees.push_back(std::move(tree));
  }
  GbdtModel::Config config;
  config.learning_rate = lr;
  config.n_trees = count;
  return GbdtModel::FromParts(std::move(trees), base_score,
                              TagToTask(task), config);
}

uint64_t ContentHash64(const void* data, size_t len, uint64_t seed) {
  // FNV-1a, 64-bit: hash = (hash ^ byte) * prime, byte-at-a-time. Simple,
  // allocation-free, and stable by construction.
  constexpr uint64_t kPrime = 0x100000001b3ULL;
  uint64_t hash = seed;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= kPrime;
  }
  return hash;
}

uint64_t ContentHash64(const std::string& s, uint64_t seed) {
  return ContentHash64(s.data(), s.size(), seed);
}

uint64_t ContentHash64(const Vector& v, uint64_t seed) {
  return v.empty() ? seed
                   : ContentHash64(v.data(), v.size() * sizeof(double), seed);
}

uint64_t Fingerprint(const std::string& serialized) {
  return ContentHash64(serialized);
}

uint64_t Fingerprint(const LinearRegressionModel& model) {
  return Fingerprint(SerializeModel(model));
}
uint64_t Fingerprint(const LogisticRegressionModel& model) {
  return Fingerprint(SerializeModel(model));
}
uint64_t Fingerprint(const DecisionTreeModel& model) {
  return Fingerprint(SerializeModel(model));
}
uint64_t Fingerprint(const RandomForestModel& model) {
  return Fingerprint(SerializeModel(model));
}
uint64_t Fingerprint(const GbdtModel& model) {
  return Fingerprint(SerializeModel(model));
}

Result<std::string> PeekModelKind(const std::string& text) {
  Reader r(text);
  XAI_RETURN_NOT_OK(r.Expect(kMagic));
  XAI_RETURN_NOT_OK(r.Expect(kVersion));
  return r.Word();
}

Status SaveModelToFile(const std::string& serialized,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << serialized;
  return Status::OK();
}

Result<std::string> LoadModelFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace xai
