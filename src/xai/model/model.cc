#include "xai/model/model.h"

#include "xai/core/parallel.h"
#include "xai/core/telemetry.h"
#include "xai/core/trace.h"

namespace xai {

Vector Model::PredictBatch(const Matrix& x) const {
  XAI_SPAN("model/predict_batch");
  XAI_COUNTER_ADD("model/evals", x.rows());
  Vector out(x.rows());
  // Each output slot is written by exactly one chunk; Predict is
  // const-reentrant per the Model threading contract.
  ParallelFor(x.rows(), /*grain=*/256,
              [&](int64_t begin, int64_t end, int64_t) {
                for (int64_t i = begin; i < end; ++i)
                  out[i] = Predict(x.Row(static_cast<int>(i)));
              });
  return out;
}

int Model::PredictClass(const Vector& row) const {
  return Predict(row) >= 0.5 ? 1 : 0;
}

PredictFn AsPredictFn(const Model& model) {
  return [&model](const Vector& row) { return model.Predict(row); };
}

}  // namespace xai
