#include "xai/model/model.h"

#include <memory>

#include "xai/core/parallel.h"
#include "xai/core/telemetry.h"
#include "xai/core/trace.h"
#include "xai/model/decision_tree.h"
#include "xai/model/flat_ensemble.h"
#include "xai/model/gbdt.h"
#include "xai/model/random_forest.h"

namespace xai {

Vector Model::PredictBatch(const Matrix& x) const {
  XAI_SPAN_IF(x.rows() >= kPredictSpanMinRows, "model/predict_batch");
  XAI_COUNTER_ADD("model/evals", x.rows());
  Vector out(x.rows());
  // Each output slot is written by exactly one chunk; Predict is
  // const-reentrant per the Model threading contract.
  ParallelFor(x.rows(), /*grain=*/256,
              [&](int64_t begin, int64_t end, int64_t) {
                for (int64_t i = begin; i < end; ++i)
                  out[i] = Predict(x.Row(static_cast<int>(i)));
              });
  return out;
}

int Model::PredictClass(const Vector& row) const {
  return Predict(row) >= 0.5 ? 1 : 0;
}

PredictFn AsPredictFn(const Model& model) {
  // Tree-based models get a zero-virtual fast path: the closure owns a
  // shared_ptr snapshot of the compiled SoA kernel and steps it directly,
  // skipping the virtual Predict call and the pointer-chasing AoS traversal
  // on every perturbation an explainer throws at the black box. Each kernel
  // is bit-identical to the model's own Predict.
  if (const auto* rf = dynamic_cast<const RandomForestModel*>(&model)) {
    std::shared_ptr<const FlatEnsemble> flat = rf->shared_flat();
    return [flat](const Vector& row) { return flat->PredictRow(row); };
  }
  if (const auto* gbdt = dynamic_cast<const GbdtModel*>(&model)) {
    std::shared_ptr<const FlatEnsemble> flat = gbdt->shared_flat();
    return [flat](const Vector& row) { return flat->PredictRow(row); };
  }
  if (const auto* tree = dynamic_cast<const DecisionTreeModel*>(&model)) {
    std::shared_ptr<const FlatEnsemble> flat = tree->shared_flat();
    return [flat](const Vector& row) { return flat->PredictRow(row); };
  }
  return [&model](const Vector& row) { return model.Predict(row); };
}

BatchPredictFn AsBatchPredictFn(const Model& model) {
  return [&model](const Matrix& x) { return model.PredictBatch(x); };
}

}  // namespace xai
