#include "xai/model/model.h"

namespace xai {

Vector Model::PredictBatch(const Matrix& x) const {
  Vector out(x.rows());
  for (int i = 0; i < x.rows(); ++i) out[i] = Predict(x.Row(i));
  return out;
}

int Model::PredictClass(const Vector& row) const {
  return Predict(row) >= 0.5 ? 1 : 0;
}

PredictFn AsPredictFn(const Model& model) {
  return [&model](const Vector& row) { return model.Predict(row); };
}

}  // namespace xai
