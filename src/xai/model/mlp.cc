#include "xai/model/mlp.h"

#include <cmath>
#include <cstring>

#include "xai/core/parallel.h"
#include "xai/core/simd.h"
#include "xai/core/telemetry.h"
#include "xai/model/logistic_regression.h"

namespace xai {

double MlpModel::Forward(const Vector& row,
                         std::vector<Vector>* activations) const {
  Vector current = row;
  if (activations) {
    activations->clear();
    activations->push_back(current);
  }
  for (size_t l = 0; l < weights_.size(); ++l) {
    const Matrix& w = weights_[l];
    Vector next(w.rows());
    for (int o = 0; o < w.rows(); ++o) {
      double z = w(o, w.cols() - 1);  // Bias.
      for (int i = 0; i < w.cols() - 1; ++i) z += w(o, i) * current[i];
      bool is_output = l + 1 == weights_.size();
      next[o] = is_output ? z : std::tanh(z);
    }
    current = std::move(next);
    if (activations) activations->push_back(current);
  }
  double z = current[0];
  return task_ == TaskType::kClassification ? Sigmoid(z) : z;
}

Result<MlpModel> MlpModel::Train(const Matrix& x, const Vector& y,
                                 TaskType task, const Config& config) {
  if (x.rows() == 0) return Status::InvalidArgument("empty training set");
  if (x.rows() != static_cast<int>(y.size()))
    return Status::InvalidArgument("row count mismatch");
  MlpModel model;
  model.task_ = task;
  model.config_ = config;
  Rng rng(config.seed);

  std::vector<int> sizes;
  sizes.push_back(x.cols());
  for (int h : config.hidden) sizes.push_back(h);
  sizes.push_back(1);
  for (size_t l = 0; l + 1 < sizes.size(); ++l) {
    Matrix w(sizes[l + 1], sizes[l] + 1);
    double scale = std::sqrt(2.0 / sizes[l]);
    for (int i = 0; i < w.rows(); ++i)
      for (int j = 0; j < w.cols(); ++j)
        w(i, j) = j + 1 == w.cols() ? 0.0 : rng.Normal(0.0, scale);
    model.weights_.push_back(std::move(w));
  }

  std::vector<Matrix> velocity;
  for (const Matrix& w : model.weights_)
    velocity.emplace_back(w.rows(), w.cols());

  int n = x.rows();
  std::vector<Vector> activations;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    std::vector<int> order = rng.Permutation(n);
    for (int start = 0; start < n; start += config.batch_size) {
      int end = std::min(n, start + config.batch_size);
      std::vector<Matrix> grads;
      for (const Matrix& w : model.weights_)
        grads.emplace_back(w.rows(), w.cols());

      for (int b = start; b < end; ++b) {
        int i = order[b];
        Vector row = x.Row(i);
        model.Forward(row, &activations);
        // Output delta: dL/dz for both losses is (pred - y).
        double z = activations.back()[0];
        double pred =
            task == TaskType::kClassification ? Sigmoid(z) : z;
        Vector delta = {pred - y[i]};
        for (int l = static_cast<int>(model.weights_.size()) - 1; l >= 0;
             --l) {
          const Matrix& w = model.weights_[l];
          const Vector& input = activations[l];
          Matrix& g = grads[l];
          for (int o = 0; o < w.rows(); ++o) {
            for (int j = 0; j < w.cols() - 1; ++j)
              g(o, j) += delta[o] * input[j];
            g(o, w.cols() - 1) += delta[o];
          }
          if (l > 0) {
            Vector next_delta(w.cols() - 1, 0.0);
            for (int j = 0; j < w.cols() - 1; ++j) {
              double acc = 0.0;
              for (int o = 0; o < w.rows(); ++o) acc += w(o, j) * delta[o];
              // tanh' = 1 - a^2 where a is the activation of layer l.
              double a = activations[l][j];
              next_delta[j] = acc * (1.0 - a * a);
            }
            delta = std::move(next_delta);
          }
        }
      }

      double batch = end - start;
      for (size_t l = 0; l < model.weights_.size(); ++l) {
        Matrix& w = model.weights_[l];
        Matrix& v = velocity[l];
        const Matrix& g = grads[l];
        for (int r = 0; r < w.rows(); ++r) {
          for (int c = 0; c < w.cols(); ++c) {
            double grad = g(r, c) / batch + config.l2 * w(r, c);
            v(r, c) = config.momentum * v(r, c) -
                      config.learning_rate * grad;
            w(r, c) += v(r, c);
          }
        }
      }
    }
  }
  return model;
}

Result<MlpModel> MlpModel::Train(const Dataset& dataset,
                                 const Config& config) {
  return Train(dataset.x(), dataset.y(), dataset.schema().task, config);
}

double MlpModel::Predict(const Vector& row) const { return Forward(row); }

Vector MlpModel::PredictBatch(const Matrix& x) const {
  XAI_COUNTER_ADD("model/evals", x.rows());
  int n = x.rows();
  Vector out(n);
  if (n == 0) return out;
  // Per-layer transposed weights (bias column dropped). With B = W^T the
  // GEMM broadcast chain c[r][o] += a[r][k] * b[k][o], k ascending, is
  // exactly Forward's per-output accumulation starting from the bias, so
  // batch outputs are bit-identical to row-wise Forward calls regardless
  // of backend or row blocking.
  std::vector<Matrix> wt;
  wt.reserve(weights_.size());
  for (const Matrix& w : weights_) {
    Matrix t(w.cols() - 1, w.rows());
    for (int o = 0; o < w.rows(); ++o) {
      const double* wr = w.RowPtr(o);
      for (int i = 0; i < w.cols() - 1; ++i) t.RowPtr(i)[o] = wr[i];
    }
    wt.push_back(std::move(t));
  }
  ParallelFor(n, /*grain=*/256, [&](int64_t begin, int64_t end, int64_t) {
    int m = static_cast<int>(end - begin);
    Matrix cur(m, x.cols());
    for (int r = 0; r < m; ++r)
      std::memcpy(cur.RowPtr(r), x.RowPtr(static_cast<int>(begin) + r),
                  sizeof(double) * x.cols());
    for (size_t l = 0; l < weights_.size(); ++l) {
      const Matrix& w = weights_[l];
      int in = w.cols() - 1;
      int outs = w.rows();
      Matrix next(m, outs);
      for (int r = 0; r < m; ++r) {
        double* nr = next.RowPtr(r);
        for (int o = 0; o < outs; ++o) nr[o] = w.RowPtr(o)[in];  // Bias.
      }
      simd::Gemm(m, outs, in, cur.RowPtr(0), cur.cols(), wt[l].RowPtr(0),
                 wt[l].cols(), next.RowPtr(0), next.cols());
      if (l + 1 < weights_.size()) {
        for (int r = 0; r < m; ++r) {
          double* nr = next.RowPtr(r);
          for (int o = 0; o < outs; ++o) nr[o] = std::tanh(nr[o]);
        }
      }
      cur = std::move(next);
    }
    for (int r = 0; r < m; ++r) {
      double z = cur.RowPtr(r)[0];
      out[begin + r] = task_ == TaskType::kClassification ? Sigmoid(z) : z;
    }
  });
  return out;
}

}  // namespace xai
