#include "xai/model/random_forest.h"

#include <cmath>
#include <numeric>

namespace xai {

Result<RandomForestModel> RandomForestModel::Train(const Matrix& x,
                                                   const Vector& y,
                                                   TaskType task,
                                                   const Config& config) {
  if (x.rows() == 0) return Status::InvalidArgument("empty training set");
  if (x.rows() != static_cast<int>(y.size()))
    return Status::InvalidArgument("row count mismatch");
  RandomForestModel model;
  model.task_ = task;
  model.config_ = config;
  Rng rng(config.seed);

  CartConfig cart;
  cart.max_depth = config.max_depth;
  cart.min_samples_leaf = config.min_samples_leaf;
  cart.criterion = task == TaskType::kClassification
                       ? CartConfig::Criterion::kGini
                       : CartConfig::Criterion::kMse;
  cart.max_features =
      config.max_features > 0
          ? config.max_features
          : std::max(1, static_cast<int>(std::lround(std::sqrt(x.cols()))));

  int n = x.rows();
  for (int t = 0; t < config.n_trees; ++t) {
    std::vector<int> rows(n);
    if (config.bootstrap) {
      for (int i = 0; i < n; ++i) rows[i] = rng.UniformInt(n);
    } else {
      std::iota(rows.begin(), rows.end(), 0);
    }
    Rng tree_rng = rng.Fork();
    model.trees_.push_back(BuildCartTree(x, y, rows, cart, &tree_rng));
  }
  return model;
}

Result<RandomForestModel> RandomForestModel::Train(const Dataset& dataset,
                                                   const Config& config) {
  return Train(dataset.x(), dataset.y(), dataset.schema().task, config);
}

RandomForestModel RandomForestModel::FromTrees(std::vector<Tree> trees,
                                               TaskType task,
                                               const Config& config) {
  RandomForestModel model;
  model.trees_ = std::move(trees);
  model.task_ = task;
  model.config_ = config;
  return model;
}

double RandomForestModel::Predict(const Vector& row) const {
  double acc = 0.0;
  for (const Tree& tree : trees_) acc += tree.PredictRow(row);
  return trees_.empty() ? 0.0 : acc / trees_.size();
}

}  // namespace xai
