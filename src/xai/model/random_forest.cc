#include "xai/model/random_forest.h"

#include <cmath>
#include <numeric>

#include "xai/core/parallel.h"
#include "xai/core/telemetry.h"
#include "xai/core/trace.h"

namespace xai {

Result<RandomForestModel> RandomForestModel::Train(const Matrix& x,
                                                   const Vector& y,
                                                   TaskType task,
                                                   const Config& config) {
  if (x.rows() == 0) return Status::InvalidArgument("empty training set");
  if (x.rows() != static_cast<int>(y.size()))
    return Status::InvalidArgument("row count mismatch");
  RandomForestModel model;
  model.task_ = task;
  model.config_ = config;
  Rng rng(config.seed);

  CartConfig cart;
  cart.max_depth = config.max_depth;
  cart.min_samples_leaf = config.min_samples_leaf;
  cart.criterion = task == TaskType::kClassification
                       ? CartConfig::Criterion::kGini
                       : CartConfig::Criterion::kMse;
  cart.max_features =
      config.max_features > 0
          ? config.max_features
          : std::max(1, static_cast<int>(std::lround(std::sqrt(x.cols()))));

  // Draw all bootstrap samples and per-tree RNGs serially off the single
  // seeded generator (same stream as a fully serial loop), then build the
  // independent trees in parallel. Forest output is bit-identical at any
  // thread count.
  int n = x.rows();
  std::vector<std::vector<int>> bootstrap_rows(config.n_trees);
  std::vector<Rng> tree_rngs;
  tree_rngs.reserve(config.n_trees);
  for (int t = 0; t < config.n_trees; ++t) {
    bootstrap_rows[t].resize(n);
    if (config.bootstrap) {
      for (int i = 0; i < n; ++i) bootstrap_rows[t][i] = rng.UniformInt(n);
    } else {
      std::iota(bootstrap_rows[t].begin(), bootstrap_rows[t].end(), 0);
    }
    tree_rngs.push_back(rng.Fork());
  }
  model.trees_.resize(config.n_trees);
  XAI_SPAN("rf/train");
  ParallelFor(config.n_trees, /*grain=*/1,
              [&](int64_t begin, int64_t end, int64_t) {
                for (int64_t t = begin; t < end; ++t)
                  model.trees_[t] =
                      BuildCartTree(x, y, bootstrap_rows[t], cart,
                                    &tree_rngs[t]);
              });
  return model;
}

Result<RandomForestModel> RandomForestModel::Train(const Dataset& dataset,
                                                   const Config& config) {
  return Train(dataset.x(), dataset.y(), dataset.schema().task, config);
}

RandomForestModel RandomForestModel::FromTrees(std::vector<Tree> trees,
                                               TaskType task,
                                               const Config& config) {
  RandomForestModel model;
  model.trees_ = std::move(trees);
  model.task_ = task;
  model.config_ = config;
  return model;
}

double RandomForestModel::Predict(const Vector& row) const {
  double acc = 0.0;
  for (const Tree& tree : trees_) acc += tree.PredictRow(row);
  return trees_.empty() ? 0.0 : acc / trees_.size();
}

std::shared_ptr<const FlatEnsemble> RandomForestModel::shared_flat() const {
  return flat_.GetOrBuild([this] {
    // Scales stay 1 and the tree sum is divided by T at the end, exactly
    // like Predict: (v0 + v1 + ...) / T is not bitwise (1/T)*v0 + ...
    std::vector<const Tree*> trees;
    trees.reserve(trees_.size());
    for (const Tree& tree : trees_) trees.push_back(&tree);
    FlatEnsemble::Options options;
    options.divisor = trees_.empty() ? 1.0 : static_cast<double>(trees_.size());
    return FlatEnsemble::Build(trees, std::move(options));
  });
}

Vector RandomForestModel::PredictBatch(const Matrix& x) const {
  XAI_SPAN_IF(x.rows() >= kPredictSpanMinRows, "rf/predict_batch");
  XAI_COUNTER_ADD("model/evals", x.rows());
  return shared_flat()->PredictBatch(x);
}

}  // namespace xai
