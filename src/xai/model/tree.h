#ifndef XAI_MODEL_TREE_H_
#define XAI_MODEL_TREE_H_

#include <algorithm>
#include <vector>

#include "xai/core/check.h"
#include "xai/core/matrix.h"

namespace xai {

/// \brief One node of a binary decision tree.
///
/// Internal nodes route row[feature] <= threshold to `left`, otherwise to
/// `right`. Leaves have feature == -1 and carry the prediction in `value`.
/// `cover` is the number (or total weight) of training rows that reached the
/// node — TreeSHAP's conditional expectations are computed from it.
struct TreeNode {
  int feature = -1;
  double threshold = 0.0;
  int left = -1;
  int right = -1;
  double value = 0.0;
  double cover = 0.0;

  bool IsLeaf() const { return feature < 0; }
};

/// \brief Flat-array binary decision tree (node 0 is the root).
class Tree {
 public:
  Tree() = default;
  explicit Tree(std::vector<TreeNode> nodes) : nodes_(std::move(nodes)) {}

  const std::vector<TreeNode>& nodes() const { return nodes_; }
  std::vector<TreeNode>* mutable_nodes() { return &nodes_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  bool empty() const { return nodes_.empty(); }

  /// Index of the leaf a row is routed to.
  int LeafIndexOf(const Vector& row) const { return LeafIndexOf(row.data()); }

  /// Pointer variant: lets batch predictors walk Matrix rows in place
  /// (Matrix::RowPtr) without materializing a Vector per row.
  int LeafIndexOf(const double* row) const {
    XAI_DCHECK(!nodes_.empty());
    int node = 0;
    while (!nodes_[node].IsLeaf()) {
      const TreeNode& n = nodes_[node];
      node = row[n.feature] <= n.threshold ? n.left : n.right;
    }
    return node;
  }

  /// Value of the leaf a row is routed to.
  double PredictRow(const Vector& row) const {
    return nodes_[LeafIndexOf(row)].value;
  }

  /// Pointer variant of PredictRow; see LeafIndexOf(const double*).
  double PredictRow(const double* row) const {
    return nodes_[LeafIndexOf(row)].value;
  }

  /// Maximum root-to-leaf depth.
  int Depth() const { return DepthFrom(0); }

  /// Number of leaves.
  int NumLeaves() const {
    int count = 0;
    for (const TreeNode& n : nodes_)
      if (n.IsLeaf()) ++count;
    return count;
  }

 private:
  int DepthFrom(int node) const {
    if (nodes_.empty() || nodes_[node].IsLeaf()) return 0;
    return 1 + std::max(DepthFrom(nodes_[node].left),
                        DepthFrom(nodes_[node].right));
  }

  std::vector<TreeNode> nodes_;
};

}  // namespace xai

#endif  // XAI_MODEL_TREE_H_
