#ifndef XAI_MODEL_MODEL_H_
#define XAI_MODEL_MODEL_H_

#include <functional>
#include <memory>
#include <string>

#include "xai/core/matrix.h"
#include "xai/data/dataset.h"

namespace xai {

/// Row threshold below which the batch-predict paths skip their trace
/// span (XAI_SPAN_IF): explainer coalition sweeps call PredictBatch
/// hundreds of times per request with background-sized batches, and a
/// span per ~1 us call would dominate both the tracing overhead budget
/// and the per-thread trace buffers. Batch-scale calls (the inference
/// benches, LIME neighborhoods) stay spanned; counters and model/evals
/// record regardless of batch size.
inline constexpr int64_t kPredictSpanMinRows = 1024;

/// \brief Base interface of all predictive models in libxai.
///
/// The unified output convention keeps explainers model-agnostic:
///  - regression models: Predict() returns the predicted value;
///  - binary classifiers: Predict() returns P(y = 1);
///  - multiclass classifiers additionally override PredictClass().
///
/// Threading contract
/// ------------------
/// Explainers fan black-box evaluations out over the parallel runtime
/// (core/parallel.h) and capture models by reference across worker
/// threads. Every Model implementation therefore must keep `Predict` /
/// `PredictClass` / `PredictBatch` const AND reentrant: concurrent calls
/// on the same instance may not mutate shared state (no unsynchronized
/// caches, counters, or scratch buffers behind `mutable`). Training and
/// other non-const mutation must finish before the model is handed to an
/// explainer. Implementations that memoize internally must guard the
/// cache with a mutex (see shapley/value_function.cc for the pattern).
class Model {
 public:
  virtual ~Model() = default;

  /// Task this model was trained for.
  virtual TaskType task() const = 0;
  /// Short human-readable name ("logistic_regression", "gbdt", ...).
  virtual std::string name() const = 0;

  /// Predicted value (regression) or P(y=1) (binary classification).
  /// Must be safe to call concurrently (see the threading contract).
  virtual double Predict(const Vector& row) const = 0;

  /// Batch prediction. The default parallelizes row-at-a-time Predict
  /// calls over the runtime; models with cheaper vectorized paths
  /// (trees, ensembles, linear models) override it.
  virtual Vector PredictBatch(const Matrix& x) const;

  /// Hard class decision; the default thresholds Predict() at 0.5.
  virtual int PredictClass(const Vector& row) const;
};

/// \brief Black-box view of a model: explainers that are model-agnostic
/// accept only this function type and can never peek inside.
using PredictFn = std::function<double(const Vector&)>;

/// \brief Batched black-box view: one call scores a whole perturbation
/// matrix. Coalition games prefer this over per-row PredictFn calls — it
/// amortizes the std::function + virtual dispatch to one indirection per
/// background sweep and lets tree models run their compiled SoA kernel
/// (model/flat_ensemble.h) over the batch.
using BatchPredictFn = std::function<Vector(const Matrix&)>;

/// Adapts a model to the black-box view. The model must outlive the result.
/// Tree-based models (decision tree, random forest, GBDT) return a
/// zero-virtual closure over their compiled flat kernel: the shared_ptr
/// snapshot keeps the kernel alive independent of later model mutation.
PredictFn AsPredictFn(const Model& model);

/// Adapts a model to the batched view via its PredictBatch override (which
/// also owns the model/evals accounting). The model must outlive the result.
BatchPredictFn AsBatchPredictFn(const Model& model);

}  // namespace xai

#endif  // XAI_MODEL_MODEL_H_
