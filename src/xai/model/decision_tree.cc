#include "xai/model/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "xai/core/check.h"
#include "xai/core/parallel.h"
#include "xai/core/telemetry.h"

namespace xai {
namespace {

// Impurity of a node given (count, sum, sum of squares, count of ones).
// For gini we use label counts; for mse the variance times count.
struct SplitStats {
  double count = 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;

  void Add(double y) {
    count += 1.0;
    sum += y;
    sum_sq += y * y;
  }
  void Remove(double y) {
    count -= 1.0;
    sum -= y;
    sum_sq -= y * y;
  }
};

double Impurity(const SplitStats& s, CartConfig::Criterion criterion) {
  if (s.count <= 0.0) return 0.0;
  if (criterion == CartConfig::Criterion::kGini) {
    // Binary gini from the mean of {0,1} labels: 2 p (1-p), scaled by count.
    double p = s.sum / s.count;
    return s.count * 2.0 * p * (1.0 - p);
  }
  // MSE: count * variance = sum_sq - sum^2 / count.
  return s.sum_sq - s.sum * s.sum / s.count;
}

struct Builder {
  const Matrix& x;
  const Vector& y;
  const CartConfig& config;
  Rng* rng;
  std::vector<TreeNode> nodes;

  int Build(std::vector<int>* rows, int depth) {
    SplitStats total;
    for (int r : *rows) total.Add(y[r]);
    int node_index = static_cast<int>(nodes.size());
    nodes.emplace_back();
    nodes[node_index].cover = total.count;
    nodes[node_index].value = total.count > 0 ? total.sum / total.count : 0.0;

    bool can_split =
        depth < config.max_depth &&
        static_cast<int>(rows->size()) >= config.min_samples_split &&
        Impurity(total, config.criterion) > 1e-12;
    if (!can_split) return node_index;

    int d = x.cols();
    std::vector<int> features(d);
    std::iota(features.begin(), features.end(), 0);
    if (config.max_features > 0 && config.max_features < d) {
      XAI_CHECK(rng != nullptr);
      features = rng->SampleWithoutReplacement(d, config.max_features);
    }

    double best_gain = 1e-12;
    int best_feature = -1;
    double best_threshold = 0.0;
    double parent_impurity = Impurity(total, config.criterion);

    std::vector<int> sorted = *rows;
    for (int f : features) {
      std::sort(sorted.begin(), sorted.end(),
                [&](int a, int b) { return x(a, f) < x(b, f); });
      SplitStats left, right = total;
      for (size_t i = 0; i + 1 < sorted.size(); ++i) {
        double yi = y[sorted[i]];
        left.Add(yi);
        right.Remove(yi);
        double v = x(sorted[i], f);
        double v_next = x(sorted[i + 1], f);
        if (v_next <= v + 1e-12) continue;  // No valid threshold here.
        if (left.count < config.min_samples_leaf ||
            right.count < config.min_samples_leaf)
          continue;
        double gain = parent_impurity - Impurity(left, config.criterion) -
                      Impurity(right, config.criterion);
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = f;
          best_threshold = 0.5 * (v + v_next);
        }
      }
    }

    if (best_feature < 0) return node_index;

    std::vector<int> left_rows, right_rows;
    for (int r : *rows) {
      (x(r, best_feature) <= best_threshold ? left_rows : right_rows)
          .push_back(r);
    }
    XAI_CHECK(!left_rows.empty() && !right_rows.empty());
    rows->clear();
    rows->shrink_to_fit();

    int left_index = Build(&left_rows, depth + 1);
    int right_index = Build(&right_rows, depth + 1);
    nodes[node_index].feature = best_feature;
    nodes[node_index].threshold = best_threshold;
    nodes[node_index].left = left_index;
    nodes[node_index].right = right_index;
    return node_index;
  }
};

}  // namespace

Tree BuildCartTree(const Matrix& x, const Vector& y,
                   const std::vector<int>& rows, const CartConfig& config,
                   Rng* rng) {
  XAI_CHECK(!rows.empty());
  Builder builder{x, y, config, rng, {}};
  std::vector<int> mutable_rows = rows;
  builder.Build(&mutable_rows, 0);
  return Tree(std::move(builder.nodes));
}

Result<DecisionTreeModel> DecisionTreeModel::Train(const Matrix& x,
                                                   const Vector& y,
                                                   TaskType task,
                                                   const CartConfig& config) {
  if (x.rows() == 0) return Status::InvalidArgument("empty training set");
  if (x.rows() != static_cast<int>(y.size()))
    return Status::InvalidArgument("row count mismatch");
  if (task == TaskType::kClassification) {
    for (double label : y)
      if (label != 0.0 && label != 1.0)
        return Status::InvalidArgument(
            "classification trees require binary {0,1} labels");
  }
  CartConfig cfg = config;
  cfg.criterion = task == TaskType::kClassification
                      ? CartConfig::Criterion::kGini
                      : CartConfig::Criterion::kMse;
  std::vector<int> rows(x.rows());
  std::iota(rows.begin(), rows.end(), 0);
  Rng rng(0);
  DecisionTreeModel model;
  model.tree_ = BuildCartTree(x, y, rows, cfg, &rng);
  model.task_ = task;
  model.config_ = cfg;
  return model;
}

Result<DecisionTreeModel> DecisionTreeModel::Train(const Dataset& dataset,
                                                   const CartConfig& config) {
  return Train(dataset.x(), dataset.y(), dataset.schema().task, config);
}

double DecisionTreeModel::Predict(const Vector& row) const {
  return tree_.PredictRow(row);
}

std::shared_ptr<const FlatEnsemble> DecisionTreeModel::shared_flat() const {
  return flat_.GetOrBuild(
      [this] { return FlatEnsemble::Build({&tree_}, {}); });
}

Vector DecisionTreeModel::PredictBatch(const Matrix& x) const {
  XAI_COUNTER_ADD("model/evals", x.rows());
  return shared_flat()->PredictBatch(x);
}

DecisionTreeModel DecisionTreeModel::FromTree(Tree tree, TaskType task) {
  DecisionTreeModel model;
  model.tree_ = std::move(tree);
  model.task_ = task;
  return model;
}

}  // namespace xai
