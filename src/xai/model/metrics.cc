#include "xai/model/metrics.h"

#include <algorithm>
#include <cmath>

#include "xai/core/check.h"
#include "xai/core/stats.h"

namespace xai {

double Accuracy(const Vector& scores, const Vector& labels) {
  XAI_CHECK_EQ(scores.size(), labels.size());
  if (scores.empty()) return 0.0;
  int correct = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    int pred = scores[i] >= 0.5 ? 1 : 0;
    if (pred == static_cast<int>(labels[i])) ++correct;
  }
  return static_cast<double>(correct) / scores.size();
}

double Auc(const Vector& scores, const Vector& labels) {
  XAI_CHECK_EQ(scores.size(), labels.size());
  // Rank-sum (Mann-Whitney) AUC with average ranks for ties.
  std::vector<double> ranks = Ranks(scores);
  double n_pos = 0.0, rank_sum_pos = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == 1.0) {
      n_pos += 1.0;
      rank_sum_pos += ranks[i];
    }
  }
  double n_neg = static_cast<double>(labels.size()) - n_pos;
  if (n_pos == 0.0 || n_neg == 0.0) return 0.5;
  return (rank_sum_pos - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg);
}

double LogLoss(const Vector& scores, const Vector& labels) {
  XAI_CHECK_EQ(scores.size(), labels.size());
  if (scores.empty()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < scores.size(); ++i) {
    double p = std::clamp(scores[i], 1e-12, 1.0 - 1e-12);
    acc += labels[i] == 1.0 ? -std::log(p) : -std::log(1.0 - p);
  }
  return acc / scores.size();
}

double Mse(const Vector& scores, const Vector& labels) {
  XAI_CHECK_EQ(scores.size(), labels.size());
  if (scores.empty()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < scores.size(); ++i) {
    double d = scores[i] - labels[i];
    acc += d * d;
  }
  return acc / scores.size();
}

double Precision(const Vector& scores, const Vector& labels) {
  XAI_CHECK_EQ(scores.size(), labels.size());
  double tp = 0.0, fp = 0.0;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] >= 0.5) {
      if (labels[i] == 1.0)
        tp += 1.0;
      else
        fp += 1.0;
    }
  }
  return tp + fp > 0.0 ? tp / (tp + fp) : 0.0;
}

double Recall(const Vector& scores, const Vector& labels) {
  XAI_CHECK_EQ(scores.size(), labels.size());
  double tp = 0.0, fn = 0.0;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (labels[i] == 1.0) {
      if (scores[i] >= 0.5)
        tp += 1.0;
      else
        fn += 1.0;
    }
  }
  return tp + fn > 0.0 ? tp / (tp + fn) : 0.0;
}

double EvaluateAccuracy(const Model& model, const Dataset& dataset) {
  if (dataset.num_rows() == 0) return 0.0;
  int correct = 0;
  for (int i = 0; i < dataset.num_rows(); ++i) {
    if (model.PredictClass(dataset.Row(i)) ==
        static_cast<int>(dataset.Label(i)))
      ++correct;
  }
  return static_cast<double>(correct) / dataset.num_rows();
}

double EvaluateAuc(const Model& model, const Dataset& dataset) {
  return Auc(model.PredictBatch(dataset.x()), dataset.y());
}

double EvaluateMse(const Model& model, const Dataset& dataset) {
  return Mse(model.PredictBatch(dataset.x()), dataset.y());
}

}  // namespace xai
