#include "xai/model/tree_ensemble_view.h"

#include "xai/core/parallel.h"

namespace xai {

Vector TreeEnsembleView::MarginBatch(const Matrix& x) const {
  Vector out(x.rows());
  ParallelFor(x.rows(), /*grain=*/64,
              [&](int64_t begin, int64_t end, int64_t) {
                for (int64_t i = begin; i < end; ++i) {
                  const double* row = x.RowPtr(static_cast<int>(i));
                  double acc = base;
                  for (size_t t = 0; t < trees.size(); ++t)
                    acc += scales[t] * trees[t]->PredictRow(row);
                  out[i] = acc;
                }
              });
  return out;
}

TreeEnsembleView TreeEnsembleView::Of(const DecisionTreeModel& model) {
  TreeEnsembleView view;
  view.trees.push_back(&model.tree());
  view.scales.push_back(1.0);
  return view;
}

TreeEnsembleView TreeEnsembleView::Of(const RandomForestModel& model) {
  TreeEnsembleView view;
  double scale =
      model.trees().empty() ? 1.0 : 1.0 / static_cast<double>(model.trees().size());
  for (const Tree& tree : model.trees()) {
    view.trees.push_back(&tree);
    view.scales.push_back(scale);
  }
  return view;
}

TreeEnsembleView TreeEnsembleView::Of(const GbdtModel& model) {
  TreeEnsembleView view;
  view.base = model.base_score();
  for (const Tree& tree : model.trees()) {
    view.trees.push_back(&tree);
    view.scales.push_back(1.0);
  }
  return view;
}

}  // namespace xai
