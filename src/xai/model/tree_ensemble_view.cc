#include "xai/model/tree_ensemble_view.h"

#include <utility>

namespace xai {

Vector TreeEnsembleView::MarginBatch(const Matrix& x) const {
  return flat()->PredictBatch(x);
}

std::shared_ptr<const FlatEnsemble> TreeEnsembleView::flat() const {
  return flat_.GetOrBuild([this] {
    FlatEnsemble::Options options;
    options.base = base;
    options.scales = scales;
    return FlatEnsemble::Build(trees, std::move(options));
  });
}

TreeEnsembleView TreeEnsembleView::Of(const DecisionTreeModel& model) {
  TreeEnsembleView view;
  view.trees.push_back(&model.tree());
  view.scales.push_back(1.0);
  return view;
}

TreeEnsembleView TreeEnsembleView::Of(const RandomForestModel& model) {
  TreeEnsembleView view;
  double scale =
      model.trees().empty() ? 1.0 : 1.0 / static_cast<double>(model.trees().size());
  for (const Tree& tree : model.trees()) {
    view.trees.push_back(&tree);
    view.scales.push_back(scale);
  }
  return view;
}

TreeEnsembleView TreeEnsembleView::Of(const GbdtModel& model) {
  TreeEnsembleView view;
  view.base = model.base_score();
  for (const Tree& tree : model.trees()) {
    view.trees.push_back(&tree);
    view.scales.push_back(1.0);
  }
  return view;
}

}  // namespace xai
