#ifndef XAI_MODEL_KNN_H_
#define XAI_MODEL_KNN_H_

#include <string>
#include <vector>

#include "xai/core/status.h"
#include "xai/model/model.h"

namespace xai {

/// \brief Configuration for KnnModel.
struct KnnConfig {
  int k = 5;
};

/// \brief Brute-force k-nearest-neighbor model (Euclidean distance).
///
/// Supports multiclass classification (majority vote) and regression (mean
/// of neighbor targets). Also the utility model of the exact KNN-Shapley
/// data-valuation algorithm (§2.3.1), which needs access to the sorted
/// neighbor order this class exposes.
class KnnModel : public Model {
 public:
  using Config = KnnConfig;

  static Result<KnnModel> Train(const Dataset& dataset,
                                const Config& config = {});
  static Result<KnnModel> Train(const Matrix& x, const Vector& y,
                                TaskType task, const Config& config = {});

  TaskType task() const override { return task_; }
  std::string name() const override { return "knn"; }

  /// Regression: mean neighbor target. Binary classification: fraction of
  /// the k nearest neighbors with label 1.
  double Predict(const Vector& row) const override;
  /// Majority label among the k nearest (supports multiclass).
  int PredictClass(const Vector& row) const override;

  /// Indices of all training rows sorted by ascending distance to `row`.
  std::vector<int> NeighborsSortedByDistance(const Vector& row) const;

  int k() const { return config_.k; }
  const Matrix& train_x() const { return x_; }
  const Vector& train_y() const { return y_; }

 private:
  Matrix x_;
  Vector y_;
  TaskType task_ = TaskType::kClassification;
  Config config_;
};

}  // namespace xai

#endif  // XAI_MODEL_KNN_H_
