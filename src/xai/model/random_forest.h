#ifndef XAI_MODEL_RANDOM_FOREST_H_
#define XAI_MODEL_RANDOM_FOREST_H_

#include <string>
#include <vector>

#include <memory>

#include "xai/core/rng.h"
#include "xai/core/status.h"
#include "xai/model/decision_tree.h"
#include "xai/model/flat_ensemble.h"
#include "xai/model/model.h"
#include "xai/model/tree.h"

namespace xai {

/// \brief Configuration for RandomForestModel.
struct RandomForestConfig {
  int n_trees = 50;
  int max_depth = 8;
  int min_samples_leaf = 2;
  /// Features per split; -1 = round(sqrt(d)).
  int max_features = -1;
  bool bootstrap = true;
  uint64_t seed = 42;
};

/// \brief Random forest: bagged CART trees with per-split feature
/// subsampling. Predicts the average of the tree outputs (a probability for
/// binary classification).
class RandomForestModel : public Model {
 public:
  using Config = RandomForestConfig;

  static Result<RandomForestModel> Train(const Dataset& dataset,
                                         const Config& config = {});
  static Result<RandomForestModel> Train(const Matrix& x, const Vector& y,
                                         TaskType task,
                                         const Config& config = {});

  TaskType task() const override { return task_; }
  std::string name() const override { return "random_forest"; }
  double Predict(const Vector& row) const override;
  /// Batched traversal over Matrix rows in place (no per-row copies),
  /// parallelized over the runtime.
  Vector PredictBatch(const Matrix& x) const override;

  const std::vector<Tree>& trees() const { return trees_; }
  const Config& config() const { return config_; }

  /// Compiled SoA inference kernel over the forest (model/flat_ensemble.h),
  /// built once on first use (thread-safe) and bit-identical to
  /// Predict/PredictBatch. PredictBatch and AsPredictFn route through it.
  std::shared_ptr<const FlatEnsemble> shared_flat() const;

  /// Reassembles a forest from its trees (deserialization).
  static RandomForestModel FromTrees(std::vector<Tree> trees, TaskType task,
                                     const Config& config = {});

 private:
  std::vector<Tree> trees_;
  TaskType task_ = TaskType::kClassification;
  Config config_;
  LazyFlatEnsemble flat_;
};

}  // namespace xai

#endif  // XAI_MODEL_RANDOM_FOREST_H_
