#ifndef XAI_MODEL_TREE_ENSEMBLE_VIEW_H_
#define XAI_MODEL_TREE_ENSEMBLE_VIEW_H_

#include <vector>

#include "xai/model/decision_tree.h"
#include "xai/model/gbdt.h"
#include "xai/model/random_forest.h"
#include "xai/model/tree.h"

namespace xai {

/// \brief Uniform additive view over any tree-based model in libxai:
///
///   Margin(x) = base + sum_t scale_t * tree_t(x).
///
/// TreeSHAP and the LeafInfluence-style estimator operate on this view, so
/// they work unchanged for single trees, random forests (scale = 1/T) and
/// GBDTs (scale = 1, base = base_score). The referenced model must outlive
/// the view.
struct TreeEnsembleView {
  std::vector<const Tree*> trees;
  std::vector<double> scales;
  double base = 0.0;

  /// The additive raw score this view explains. Note for classifiers this
  /// is the probability for single trees/forests but the log-odds margin for
  /// GBDTs (TreeSHAP explains the additive output; see GbdtModel docs).
  double Margin(const Vector& row) const {
    double acc = base;
    for (size_t t = 0; t < trees.size(); ++t)
      acc += scales[t] * trees[t]->PredictRow(row);
    return acc;
  }

  int num_trees() const { return static_cast<int>(trees.size()); }

  /// Margin for every row of `x`, parallelized over rows (core/parallel.h);
  /// per-row tree accumulation order matches Margin() exactly.
  Vector MarginBatch(const Matrix& x) const;

  static TreeEnsembleView Of(const DecisionTreeModel& model);
  static TreeEnsembleView Of(const RandomForestModel& model);
  static TreeEnsembleView Of(const GbdtModel& model);
};

}  // namespace xai

#endif  // XAI_MODEL_TREE_ENSEMBLE_VIEW_H_
