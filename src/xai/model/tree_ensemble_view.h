#ifndef XAI_MODEL_TREE_ENSEMBLE_VIEW_H_
#define XAI_MODEL_TREE_ENSEMBLE_VIEW_H_

#include <memory>
#include <vector>

#include "xai/model/decision_tree.h"
#include "xai/model/flat_ensemble.h"
#include "xai/model/gbdt.h"
#include "xai/model/random_forest.h"
#include "xai/model/tree.h"

namespace xai {

/// \brief Uniform additive view over any tree-based model in libxai:
///
///   Margin(x) = base + sum_t scale_t * tree_t(x).
///
/// TreeSHAP and the LeafInfluence-style estimator operate on this view, so
/// they work unchanged for single trees, random forests (scale = 1/T) and
/// GBDTs (scale = 1, base = base_score). The referenced model must outlive
/// the view.
struct TreeEnsembleView {
  std::vector<const Tree*> trees;
  std::vector<double> scales;
  double base = 0.0;

  /// The additive raw score this view explains. Note for classifiers this
  /// is the probability for single trees/forests but the log-odds margin for
  /// GBDTs (TreeSHAP explains the additive output; see GbdtModel docs).
  ///
  /// The array bases are hoisted out of the loop: the previous version
  /// re-read `scales[t]` and `trees[t]` through the two vector
  /// indirections (data pointer, then element) on every tree of the hot
  /// single-row path.
  double Margin(const Vector& row) const {
    double acc = base;
    const double* scale = scales.data();
    const Tree* const* tree = trees.data();
    const size_t n = trees.size();
    for (size_t t = 0; t < n; ++t) acc += scale[t] * tree[t]->PredictRow(row);
    return acc;
  }

  int num_trees() const { return static_cast<int>(trees.size()); }

  /// Margin for every row of `x` via the compiled flat kernel (blocked SoA
  /// traversal, parallelized over rows); per-row tree accumulation order
  /// matches Margin() exactly, so the output is bit-identical to a serial
  /// Margin() loop at any thread count.
  Vector MarginBatch(const Matrix& x) const;

  /// Compiled SoA kernel over this view with `scales` and `base` folded in
  /// (model/flat_ensemble.h): built on first use, thread-safe, bit-identical
  /// to Margin(). Assemble the view fully before first use — the kernel is
  /// cached and does not observe later edits to trees/scales/base.
  std::shared_ptr<const FlatEnsemble> flat() const;

  static TreeEnsembleView Of(const DecisionTreeModel& model);
  static TreeEnsembleView Of(const RandomForestModel& model);
  static TreeEnsembleView Of(const GbdtModel& model);

  /// Backs flat(); internal.
  LazyFlatEnsemble flat_;
};

}  // namespace xai

#endif  // XAI_MODEL_TREE_ENSEMBLE_VIEW_H_
