#ifndef XAI_MODEL_FLAT_ENSEMBLE_H_
#define XAI_MODEL_FLAT_ENSEMBLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "xai/core/matrix.h"
#include "xai/model/tree.h"

namespace xai {

/// \brief Compiled inference kernel over a tree ensemble.
///
/// Every perturbation-based explainer (KernelSHAP, sampling Shapley, LIME,
/// Anchors, PDP, data valuation) bottlenecks on batch prediction over tree
/// ensembles, yet the pointer-walking path steps 48-byte AoS `TreeNode`
/// structs through a dispatch per row. A FlatEnsemble is built once from the
/// trees and stores all nodes in one contiguous structure-of-arrays block:
///
///   feature[n]  int32   split feature, or -1 for a leaf
///   bits[n]     double  split threshold for internal nodes, the leaf value
///                       for leaves (one payload slot, QuickScorer-style)
///   left[n]     int32   absolute index of the left child; the right child
///                       is always left[n] + 1 (children are re-laid
///                       adjacently during flattening)
///
/// which shrinks a node to 16 effective bytes and makes the step
///
///   node = left[node] + !(row[feature[node]] <= bits[node])
///
/// branch-reduced (a setcc, not a mispredictable jump; `!(a <= b)` rather
/// than `a > b` so NaN routes right exactly like the scalar path). Batch
/// prediction tiles rows x trees: a block of kRowBlock rows is pushed
/// through one tree before moving to the next, so each tree's node arrays
/// stay L1/L2-resident across the whole row tile instead of being re-read
/// per row.
///
/// Output convention. One kernel serves single trees, random forests and
/// GBDTs via a scale/base fold plus two post-ops:
///
///   raw(x)   = base + sum_t scales[t] * leaf_t(x)
///   score(x) = raw(x) / divisor            (when divisor > 0)
///   out(x)   = sigmoid(score(x))           (when sigmoid is set)
///
/// The fold is chosen at build time so results are BIT-IDENTICAL to the
/// scalar path being replaced (same per-tree accumulation order, same
/// operations): forests keep scales = 1 and divide by T at the end, because
/// (v0 + v1 + ...) / T is not bitwise (1/T)*v0 + (1/T)*v1 + ...; GBDTs fold
/// base_score into `base`; TreeEnsembleView folds its scales directly.
/// Multiplication by a scale of exactly 1.0 is exact in IEEE arithmetic, so
/// the fold never perturbs the forest/GBDT sums.
///
/// TreeSHAP side-table. The inference arrays above deliberately drop the
/// node covers (16 effective bytes/node is the whole point), but the exact
/// TreeSHAP kernel needs them — plus each tree's expected value and depth.
/// Those live in an optional side-table built lazily by EnsureTreeShapData
/// the first time TreeSHAP is requested, so pure-inference ensembles never
/// pay for it. The side-table is keyed by the same BFS sibling-adjacent
/// slot layout as the inference arrays (the flatten walk is shared), so
/// `cover[left[n]]` / `cover[left[n] + 1]` are the child covers of `n`.
///
/// Thread safety: immutable after Build; PredictRow / PredictBatch are
/// const-reentrant (the Model threading contract). PredictBatch partitions
/// rows over core/parallel.h and is bit-identical at any thread count.
/// EnsureTreeShapData is guarded by a shared mutex (copies of the ensemble
/// share the snapshot like LazyFlatEnsemble does) and is idempotent.
class FlatEnsemble {
 public:
  /// Rows per tile of the blocked batch traversal. 64 rows x 8 bytes of
  /// accumulator fits comfortably in L1 next to one tree's node block.
  static constexpr int kRowBlock = 64;

  struct Options {
    /// Additive offset the accumulator starts from (GBDT base_score).
    double base = 0.0;
    /// Per-tree output multipliers; empty means all 1.0. Must otherwise
    /// match the number of trees.
    std::vector<double> scales;
    /// When > 0 the accumulated sum is divided by this after the tree loop
    /// (random forests average AFTER summation).
    double divisor = 0.0;
    /// Apply the logistic link to the final score (GBDT classifiers).
    bool sigmoid = false;
  };

  FlatEnsemble() = default;

  /// Flattens `trees` (all non-empty, pointers non-null) into one SoA
  /// block. Records build time in the `model/flat_build_us` histogram.
  static FlatEnsemble Build(const std::vector<const Tree*>& trees,
                            Options options);

  int num_trees() const { return static_cast<int>(roots_.size()); }
  int num_nodes() const { return static_cast<int>(feature_.size()); }
  double base() const { return base_; }
  double divisor() const { return divisor_; }
  bool sigmoid() const { return sigmoid_; }

  /// Prediction for one row (pointer to num-features contiguous doubles).
  /// Bit-identical to the scalar path the build options encode.
  double PredictRow(const double* row) const;
  double PredictRow(const Vector& row) const { return PredictRow(row.data()); }

  /// Raw additive score for one row: divisor applied, sigmoid skipped
  /// (GBDT margin; equals PredictRow for non-sigmoid ensembles).
  double MarginRow(const double* row) const;

  /// Blocked batch prediction over every row of `x`, parallelized over the
  /// runtime (grain 256 rows). Bumps `model/flat_predict_rows`.
  Vector PredictBatch(const Matrix& x) const;

  /// Serial building block of PredictBatch: scores rows [begin, end) of
  /// `x` into out[begin..end). Exposed for benches that want the kernel
  /// without the ParallelFor wrapper.
  void ScoreRows(const Matrix& x, int64_t begin, int64_t end,
                 double* out) const;

  /// Per-node covers + per-tree expectations for the exact TreeSHAP kernel
  /// (explain/shapley/flat_tree_shap.h). Built by EnsureTreeShapData.
  struct TreeShapData {
    /// Training weight that reached each flat slot (TreeNode::cover laid
    /// out in the inference arrays' BFS slot order).
    std::vector<double> cover;
    /// Cover-weighted leaf mean per tree, accumulated in the original
    /// tree's node order so it is bit-identical to TreeExpectedValue.
    std::vector<double> expected;
    /// Max root-to-leaf depth per tree (arena sizing).
    std::vector<int32_t> depth;
    /// Max of `depth` over all trees.
    int max_depth = 0;
  };

  /// Builds (first call) and returns the TreeSHAP side-table. `trees` must
  /// be the same trees, in the same order, that Build flattened — the
  /// covers are re-laid with the identical BFS walk so slots line up.
  /// Thread-safe; the returned reference lives as long as any copy of this
  /// ensemble. Records build time in `model/flat_shap_build_us`.
  const TreeShapData& EnsureTreeShapData(
      const std::vector<const Tree*>& trees) const;

  /// The side-table if EnsureTreeShapData already ran, else nullptr.
  const TreeShapData* tree_shap_data() const;

  /// Read-only raw view over the SoA block for external kernels (the
  /// TreeSHAP walk); pointers are valid as long as this ensemble.
  struct NodeView {
    const int32_t* feature = nullptr;
    const double* bits = nullptr;
    const int32_t* left = nullptr;
    const int32_t* roots = nullptr;
    const double* scales = nullptr;
    int num_trees = 0;
    double base = 0.0;
  };
  NodeView nodes() const {
    return {feature_.data(), bits_.data(),   left_.data(), roots_.data(),
            scales_.data(),  num_trees(),    base_};
  }

 private:
  double Finish(double acc) const;

  // One contiguous SoA block over all trees; see the class comment.
  std::vector<int32_t> feature_;
  std::vector<double> bits_;
  std::vector<int32_t> left_;
  /// Index of tree t's root inside the block.
  std::vector<int32_t> roots_;
  std::vector<double> scales_;
  double base_ = 0.0;
  double divisor_ = 0.0;
  bool sigmoid_ = false;

  // Lazy TreeSHAP side-table; shared across copies (copies flatten equal
  // trees, so sharing the snapshot is sound — same reasoning as
  // LazyFlatEnsemble below).
  std::shared_ptr<std::mutex> shap_mu_ = std::make_shared<std::mutex>();
  mutable std::shared_ptr<const TreeShapData> shap_;
};

/// \brief Thread-safe lazily built FlatEnsemble cache for model classes.
///
/// Models are copied freely (Result<Model> returns by value), so the guard
/// mutex is shared; the cached kernel pointer itself is per-copy state that
/// copies shallowly (copies have equal trees, so sharing the snapshot is
/// sound). Invalidate() drops this copy's snapshot — call it from any
/// non-const accessor that exposes the trees for mutation.
class LazyFlatEnsemble {
 public:
  /// Returns the cached kernel, building it via `build` on first use.
  std::shared_ptr<const FlatEnsemble> GetOrBuild(
      const std::function<FlatEnsemble()>& build) const {
    std::lock_guard<std::mutex> lock(*mu_);
    if (flat_ == nullptr)
      flat_ = std::make_shared<const FlatEnsemble>(build());
    return flat_;
  }

  void Invalidate() {
    std::lock_guard<std::mutex> lock(*mu_);
    flat_.reset();
  }

 private:
  std::shared_ptr<std::mutex> mu_ = std::make_shared<std::mutex>();
  mutable std::shared_ptr<const FlatEnsemble> flat_;
};

}  // namespace xai

#endif  // XAI_MODEL_FLAT_ENSEMBLE_H_
