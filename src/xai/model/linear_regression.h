#ifndef XAI_MODEL_LINEAR_REGRESSION_H_
#define XAI_MODEL_LINEAR_REGRESSION_H_

#include <string>

#include "xai/core/status.h"
#include "xai/model/model.h"

namespace xai {

/// \brief Configuration for LinearRegressionModel.
struct LinearRegressionConfig {
  double l2 = 1e-6;  ///< Ridge penalty (not applied to the intercept).
};

/// \brief Ridge linear regression fit in closed form via normal equations.
///
/// Exposes its coefficients: the tutorial's running example of an
/// intrinsically interpretable model ("the coefficients ... can be an
/// indicator for the importance of the features", §2.1), and the exact
/// substrate for influence functions (§2.3.2) and PrIU-style incremental
/// maintenance (§3).
class LinearRegressionModel : public Model {
 public:
  using Config = LinearRegressionConfig;

  /// Fits on a feature matrix and real-valued targets.
  static Result<LinearRegressionModel> Train(const Matrix& x, const Vector& y,
                                             const Config& config = {});
  /// Fits on a dataset (must be a regression task).
  static Result<LinearRegressionModel> Train(const Dataset& dataset,
                                             const Config& config = {});

  TaskType task() const override { return TaskType::kRegression; }
  std::string name() const override { return "linear_regression"; }
  double Predict(const Vector& row) const override;
  /// Batched dot products over Matrix rows in place, parallelized.
  Vector PredictBatch(const Matrix& x) const override;

  const Vector& weights() const { return weights_; }
  double bias() const { return bias_; }
  const Config& config() const { return config_; }

  /// Constructs directly from coefficients (used by incremental updates).
  static LinearRegressionModel FromCoefficients(Vector weights, double bias,
                                                const Config& config = {});

 private:
  Vector weights_;
  double bias_ = 0.0;
  Config config_;
};

}  // namespace xai

#endif  // XAI_MODEL_LINEAR_REGRESSION_H_
