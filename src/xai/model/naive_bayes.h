#ifndef XAI_MODEL_NAIVE_BAYES_H_
#define XAI_MODEL_NAIVE_BAYES_H_

#include <string>
#include <vector>

#include "xai/core/status.h"
#include "xai/model/model.h"

namespace xai {

/// \brief Gaussian naive Bayes for binary classification.
///
/// Each feature is modeled as class-conditionally Gaussian; categorical
/// features (small integer codes) are handled acceptably by the same
/// Gaussian approximation for the synthetic workloads in this library.
class NaiveBayesModel : public Model {
 public:
  static Result<NaiveBayesModel> Train(const Dataset& dataset);
  static Result<NaiveBayesModel> Train(const Matrix& x, const Vector& y);

  TaskType task() const override { return TaskType::kClassification; }
  std::string name() const override { return "naive_bayes"; }
  double Predict(const Vector& row) const override;

 private:
  double prior1_ = 0.5;
  Vector mean0_, mean1_;
  Vector var0_, var1_;
};

}  // namespace xai

#endif  // XAI_MODEL_NAIVE_BAYES_H_
