#include "xai/model/logistic_regression.h"

#include <cmath>

#include "xai/core/check.h"
#include "xai/core/matrix.h"
#include "xai/core/parallel.h"
#include "xai/core/simd.h"
#include "xai/core/telemetry.h"

namespace xai {

double Sigmoid(double z) {
  if (z >= 0) {
    double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

namespace {

// The optimization works on theta = [weights..., bias].
// Objective: J(theta) = (1/n) sum_i s_i * nll_i + (l2/2) ||w||^2.
Vector Gradient(const Matrix& x, const Vector& y, const Vector& s,
                const Vector& theta, double l2, double total_weight) {
  int d = x.cols();
  Vector g(d + 1, 0.0);
  for (int i = 0; i < x.rows(); ++i) {
    if (s[i] == 0.0) continue;
    const double* rp = x.RowPtr(i);
    double z = simd::Dot(theta.data(), rp, d) + theta[d];
    double err = s[i] * (Sigmoid(z) - y[i]);
    simd::Axpy(err, rp, g.data(), d);
    g[d] += err;
  }
  for (int j = 0; j <= d; ++j) g[j] /= total_weight;
  for (int j = 0; j < d; ++j) g[j] += l2 * theta[j];
  return g;
}

Matrix Hessian(const Matrix& x, const Vector& s, const Vector& theta,
               double l2, double total_weight) {
  int d = x.cols();
  Matrix h(d + 1, d + 1);
  double* h_base = h.RowPtr(0);
  for (int i = 0; i < x.rows(); ++i) {
    if (s[i] == 0.0) continue;
    const double* rp = x.RowPtr(i);
    double z = simd::Dot(theta.data(), rp, d) + theta[d];
    double p = Sigmoid(z);
    double w = s[i] * p * (1.0 - p);
    if (w == 0.0) continue;
    // d x d block as a blocked rank-1 update; bias column separately.
    simd::WeightedOuterAccumulate(w, rp, d, h_base, d + 1);
    for (int a = 0; a < d; ++a) h(a, d) += w * rp[a];
    h(d, d) += w;
  }
  for (int a = 0; a <= d; ++a)
    for (int b = a; b <= d; ++b) {
      h(a, b) /= total_weight;
      h(b, a) = h(a, b);
    }
  for (int j = 0; j < d; ++j) h(j, j) += l2;
  return h;
}

}  // namespace

Result<LogisticRegressionModel> LogisticRegressionModel::TrainWarmStart(
    const Matrix& x, const Vector& y, const Vector& init_weights,
    double init_bias, const Config& config) {
  if (x.rows() != static_cast<int>(y.size()))
    return Status::InvalidArgument("row count mismatch");
  if (x.rows() == 0) return Status::InvalidArgument("empty training set");
  int d = x.cols();
  Vector s = config.sample_weights;
  if (s.empty()) s.assign(x.rows(), 1.0);
  if (static_cast<int>(s.size()) != x.rows())
    return Status::InvalidArgument("sample_weights size mismatch");
  double total_weight = 0.0;
  for (double w : s) total_weight += w;
  if (total_weight <= 0.0)
    return Status::InvalidArgument("total sample weight must be positive");

  Vector theta(d + 1, 0.0);
  if (!init_weights.empty()) {
    XAI_CHECK_EQ(static_cast<int>(init_weights.size()), d);
    for (int j = 0; j < d; ++j) theta[j] = init_weights[j];
    theta[d] = init_bias;
  }

  for (int it = 0; it < config.max_iter; ++it) {
    Vector g = Gradient(x, y, s, theta, config.l2, total_weight);
    if (Norm2(g) < config.tol) break;
    Matrix h = Hessian(x, s, theta, config.l2, total_weight);
    h.AddScaledIdentity(1e-10);
    auto step = CholeskySolve(h, g);
    if (!step.ok()) {
      // Gradient-descent fallback for a degenerate Hessian.
      Axpy(-0.1, g, &theta);
      continue;
    }
    // Damped Newton: halve the step until the gradient norm improves.
    double g0 = Norm2(g);
    double scale = 1.0;
    for (int half = 0; half < 12; ++half) {
      Vector cand = theta;
      Axpy(-scale, step.ValueUnsafe(), &cand);
      Vector g1 = Gradient(x, y, s, cand, config.l2, total_weight);
      if (Norm2(g1) <= g0 || half == 11) {
        theta = std::move(cand);
        break;
      }
      scale *= 0.5;
    }
  }

  LogisticRegressionModel model;
  model.config_ = config;
  model.bias_ = theta[d];
  theta.pop_back();
  model.weights_ = std::move(theta);
  return model;
}

Result<LogisticRegressionModel> LogisticRegressionModel::Train(
    const Matrix& x, const Vector& y, const Config& config) {
  return TrainWarmStart(x, y, {}, 0.0, config);
}

Result<LogisticRegressionModel> LogisticRegressionModel::Train(
    const Dataset& dataset, const Config& config) {
  return Train(dataset.x(), dataset.y(), config);
}

double LogisticRegressionModel::Predict(const Vector& row) const {
  return Sigmoid(Margin(row));
}

Vector LogisticRegressionModel::PredictBatch(const Matrix& x) const {
  XAI_COUNTER_ADD("model/evals", x.rows());
  int d = static_cast<int>(weights_.size());
  Vector out(x.rows());
  ParallelFor(x.rows(), /*grain=*/2048,
              [&](int64_t begin, int64_t end, int64_t) {
                for (int64_t i = begin; i < end; ++i) {
                  const double* row = x.RowPtr(static_cast<int>(i));
                  // Same striped-dot kernel as Margin (dot, then bias) so
                  // batch output is bit-identical to row-wise calls.
                  out[i] = Sigmoid(simd::Dot(row, weights_.data(), d) + bias_);
                }
              });
  return out;
}

double LogisticRegressionModel::Margin(const Vector& row) const {
  return Dot(row, weights_) + bias_;
}

double LogisticRegressionModel::ExampleLoss(const Vector& row,
                                            double label) const {
  double z = Margin(row);
  // Stable: log(1 + e^z) - y z.
  double log1pexp = z > 30 ? z : std::log1p(std::exp(z));
  return log1pexp - label * z;
}

Vector LogisticRegressionModel::ExampleLossGradient(const Vector& row,
                                                    double label) const {
  double err = Sigmoid(Margin(row)) - label;
  Vector g(row.size() + 1);
  for (size_t j = 0; j < row.size(); ++j) g[j] = err * row[j];
  g[row.size()] = err;
  return g;
}

Matrix LogisticRegressionModel::LossHessian(const Matrix& x) const {
  Vector s(x.rows(), 1.0);
  Vector theta = weights_;
  theta.push_back(bias_);
  return Hessian(x, s, theta, config_.l2, static_cast<double>(x.rows()));
}

LogisticRegressionModel LogisticRegressionModel::FromCoefficients(
    Vector weights, double bias, const Config& config) {
  LogisticRegressionModel model;
  model.weights_ = std::move(weights);
  model.bias_ = bias;
  model.config_ = config;
  return model;
}

}  // namespace xai
