#ifndef XAI_MODEL_DECISION_TREE_H_
#define XAI_MODEL_DECISION_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "xai/core/rng.h"
#include "xai/core/status.h"
#include "xai/model/flat_ensemble.h"
#include "xai/model/model.h"
#include "xai/model/tree.h"

namespace xai {

/// \brief Configuration of the CART tree builder.
struct CartConfig {
  enum class Criterion { kGini, kMse };

  int max_depth = 6;
  int min_samples_leaf = 2;
  int min_samples_split = 2;
  Criterion criterion = Criterion::kGini;
  /// Number of features considered per split; -1 = all (0 < mtry <= d).
  int max_features = -1;
};

/// Builds a CART tree over the given training rows. All splits are numeric
/// thresholds (categorical features split on their category index); leaf
/// values are the mean target of the rows reaching the leaf. `rng` is only
/// consulted when `max_features` restricts the candidate features.
Tree BuildCartTree(const Matrix& x, const Vector& y,
                   const std::vector<int>& rows, const CartConfig& config,
                   Rng* rng);

/// \brief Single CART decision tree: intrinsically interpretable and the
/// substrate for TreeSHAP (§2.1.2) and sufficient-reason explanations
/// (§2.2.2).
///
/// Classification trees are binary ({0,1} labels) and predict P(y = 1);
/// regression trees predict the leaf mean.
class DecisionTreeModel : public Model {
 public:
  static Result<DecisionTreeModel> Train(const Dataset& dataset,
                                         const CartConfig& config = {});
  static Result<DecisionTreeModel> Train(const Matrix& x, const Vector& y,
                                         TaskType task,
                                         const CartConfig& config = {});

  TaskType task() const override { return task_; }
  std::string name() const override { return "decision_tree"; }
  double Predict(const Vector& row) const override;
  /// Batched traversal over Matrix rows in place (no per-row copies),
  /// parallelized over the runtime.
  Vector PredictBatch(const Matrix& x) const override;

  const Tree& tree() const { return tree_; }
  const CartConfig& config() const { return config_; }

  /// Compiled SoA kernel over the tree (model/flat_ensemble.h), built once
  /// on first use (thread-safe); bit-identical to Predict/PredictBatch.
  std::shared_ptr<const FlatEnsemble> shared_flat() const;

  /// Wraps an existing tree (used in tests and by the unlearning module).
  static DecisionTreeModel FromTree(Tree tree, TaskType task);

 private:
  Tree tree_;
  TaskType task_ = TaskType::kClassification;
  CartConfig config_;
  LazyFlatEnsemble flat_;
};

}  // namespace xai

#endif  // XAI_MODEL_DECISION_TREE_H_
