#ifndef XAI_MODEL_METRICS_H_
#define XAI_MODEL_METRICS_H_

#include <vector>

#include "xai/core/matrix.h"
#include "xai/data/dataset.h"
#include "xai/model/model.h"

namespace xai {

/// \brief Evaluation metrics. `scores` are model outputs (probabilities or
/// regression predictions); `labels` are ground truth.

/// Fraction of correct 0.5-thresholded predictions.
double Accuracy(const Vector& scores, const Vector& labels);
/// Area under the ROC curve (rank-based; ties get half credit).
double Auc(const Vector& scores, const Vector& labels);
/// Mean binary cross-entropy (scores clipped away from 0/1).
double LogLoss(const Vector& scores, const Vector& labels);
/// Mean squared error.
double Mse(const Vector& scores, const Vector& labels);
/// Precision of the positive class at threshold 0.5.
double Precision(const Vector& scores, const Vector& labels);
/// Recall of the positive class at threshold 0.5.
double Recall(const Vector& scores, const Vector& labels);

/// Convenience: model accuracy over a dataset (classification uses
/// PredictClass, so multiclass models evaluate correctly).
double EvaluateAccuracy(const Model& model, const Dataset& dataset);
/// Convenience: model AUC over a binary-classification dataset.
double EvaluateAuc(const Model& model, const Dataset& dataset);
/// Convenience: model MSE over a regression dataset.
double EvaluateMse(const Model& model, const Dataset& dataset);

}  // namespace xai

#endif  // XAI_MODEL_METRICS_H_
