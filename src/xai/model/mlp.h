#ifndef XAI_MODEL_MLP_H_
#define XAI_MODEL_MLP_H_

#include <string>
#include <vector>

#include "xai/core/rng.h"
#include "xai/core/status.h"
#include "xai/model/model.h"

namespace xai {

/// \brief Configuration for MlpModel.
struct MlpConfig {
  std::vector<int> hidden = {16, 8};
  double learning_rate = 0.05;
  double momentum = 0.9;
  double l2 = 1e-5;
  int epochs = 200;
  int batch_size = 32;
  uint64_t seed = 42;
};

/// \brief Small fully-connected neural network (tanh hidden layers).
///
/// Serves as the genuinely opaque "complex black-box model" the post-hoc
/// explainers of §2.1 are pointed at. Binary classification (sigmoid output,
/// log loss) or regression (linear output, squared loss), trained with
/// mini-batch SGD + momentum.
class MlpModel : public Model {
 public:
  using Config = MlpConfig;

  static Result<MlpModel> Train(const Dataset& dataset,
                                const Config& config = {});
  static Result<MlpModel> Train(const Matrix& x, const Vector& y,
                                TaskType task, const Config& config = {});

  TaskType task() const override { return task_; }
  std::string name() const override { return "mlp"; }
  double Predict(const Vector& row) const override;
  /// Batched forward pass as one GEMM per layer over row blocks.
  /// Bit-identical to row-wise Predict calls (see mlp.cc).
  Vector PredictBatch(const Matrix& x) const override;

 private:
  /// weights_[l] has shape (out_l, in_l + 1); the last column is the bias.
  std::vector<Matrix> weights_;
  TaskType task_ = TaskType::kClassification;
  Config config_;

  double Forward(const Vector& row,
                 std::vector<Vector>* activations = nullptr) const;
};

}  // namespace xai

#endif  // XAI_MODEL_MLP_H_
