#include "xai/model/knn.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "xai/core/simd.h"

namespace xai {

Result<KnnModel> KnnModel::Train(const Matrix& x, const Vector& y,
                                 TaskType task, const Config& config) {
  if (x.rows() == 0) return Status::InvalidArgument("empty training set");
  if (x.rows() != static_cast<int>(y.size()))
    return Status::InvalidArgument("row count mismatch");
  if (config.k <= 0) return Status::InvalidArgument("k must be positive");
  KnnModel model;
  model.x_ = x;
  model.y_ = y;
  model.task_ = task;
  model.config_ = config;
  return model;
}

Result<KnnModel> KnnModel::Train(const Dataset& dataset,
                                 const Config& config) {
  return Train(dataset.x(), dataset.y(), dataset.schema().task, config);
}

std::vector<int> KnnModel::NeighborsSortedByDistance(const Vector& row) const {
  int n = x_.rows();
  std::vector<double> dist(n);
  for (int i = 0; i < n; ++i)
    dist[i] =
        simd::ScaledSquaredDistance(x_.RowPtr(i), row.data(), x_.cols());
  std::vector<int> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(),
                   [&](int a, int b) { return dist[a] < dist[b]; });
  return idx;
}

double KnnModel::Predict(const Vector& row) const {
  std::vector<int> order = NeighborsSortedByDistance(row);
  int k = std::min(config_.k, static_cast<int>(order.size()));
  double acc = 0.0;
  for (int i = 0; i < k; ++i) acc += y_[order[i]];
  return k > 0 ? acc / k : 0.0;
}

int KnnModel::PredictClass(const Vector& row) const {
  std::vector<int> order = NeighborsSortedByDistance(row);
  int k = std::min(config_.k, static_cast<int>(order.size()));
  std::map<int, int> votes;
  for (int i = 0; i < k; ++i) ++votes[static_cast<int>(y_[order[i]])];
  int best = 0, best_count = -1;
  for (auto [label, count] : votes) {
    if (count > best_count) {
      best = label;
      best_count = count;
    }
  }
  return best;
}

}  // namespace xai
