#include "xai/model/flat_ensemble.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <utility>

#include "xai/core/check.h"
#include "xai/core/parallel.h"
#include "xai/core/telemetry.h"
#include "xai/core/timer.h"
#include "xai/core/trace.h"
#include "xai/model/model.h"  // kPredictSpanMinRows.
#include "xai/model/logistic_regression.h"

namespace xai {
namespace {

/// Replays the BFS sibling-adjacent re-layout over `trees`, invoking
/// `emit(tree_index, original_node, slot, left_child_slot)` for every node
/// in slot order (left_child_slot is 0 for leaves; the right child always
/// sits at left_child_slot + 1). Both the inference arrays (Build) and the
/// TreeSHAP cover side-table (EnsureTreeShapData) are laid out through this
/// one walk, so their slot numbering can never diverge. Returns the total
/// slot count.
template <typename Emit>
int32_t ForEachFlatSlot(const std::vector<const Tree*>& trees,
                        const Emit& emit) {
  int32_t next = 0;
  for (int t = 0; t < static_cast<int>(trees.size()); ++t) {
    const std::vector<TreeNode>& nodes = trees[t]->nodes();
    const int32_t root = next++;
    // (original node index, flattened slot) pairs still to emit.
    std::deque<std::pair<int, int32_t>> pending;
    pending.emplace_back(0, root);
    while (!pending.empty()) {
      auto [orig, slot] = pending.front();
      pending.pop_front();
      const TreeNode& n = nodes[orig];
      if (n.IsLeaf()) {
        emit(t, orig, slot, 0);
      } else {
        emit(t, orig, slot, next);
        pending.emplace_back(n.left, next);
        pending.emplace_back(n.right, next + 1);
        next += 2;
      }
    }
  }
  return next;
}

}  // namespace

FlatEnsemble FlatEnsemble::Build(const std::vector<const Tree*>& trees,
                                 Options options) {
  WallTimer timer;
  FlatEnsemble flat;
  flat.base_ = options.base;
  flat.divisor_ = options.divisor;
  flat.sigmoid_ = options.sigmoid;

  if (options.scales.empty()) {
    flat.scales_.assign(trees.size(), 1.0);
  } else {
    XAI_CHECK_EQ(options.scales.size(), trees.size());
    flat.scales_ = std::move(options.scales);
  }

  int64_t total_nodes = 0;
  for (const Tree* tree : trees) {
    XAI_CHECK(tree != nullptr);
    XAI_CHECK_MSG(!tree->empty(), "cannot flatten an empty tree");
    total_nodes += tree->num_nodes();
  }
  XAI_CHECK_LE(total_nodes, std::numeric_limits<int32_t>::max());

  flat.feature_.resize(total_nodes);
  flat.bits_.resize(total_nodes);
  flat.left_.resize(total_nodes);
  flat.roots_.reserve(trees.size());

  // Re-lay each tree breadth-first with sibling pairs adjacent: the right
  // child always sits at left + 1, which is what makes the traversal step
  // `left + !(x <= t)` valid, and keeps the hot top levels of the tree in
  // a handful of consecutive cache lines.
  int32_t next = ForEachFlatSlot(
      trees, [&](int t, int orig, int32_t slot, int32_t children) {
        const TreeNode& n = trees[t]->nodes()[orig];
        if (orig == 0) flat.roots_.push_back(slot);
        if (n.IsLeaf()) {
          flat.feature_[slot] = -1;
          flat.bits_[slot] = n.value;
          flat.left_[slot] = 0;
        } else {
          flat.feature_[slot] = n.feature;
          flat.bits_[slot] = n.threshold;
          flat.left_[slot] = children;
        }
      });
  XAI_CHECK_EQ(static_cast<int64_t>(next), total_nodes);

  XAI_HISTOGRAM_RECORD("model/flat_build_us", timer.Nanos() / 1000);
  return flat;
}

double FlatEnsemble::Finish(double acc) const {
  if (divisor_ > 0.0) acc /= divisor_;
  if (sigmoid_) acc = Sigmoid(acc);
  return acc;
}

double FlatEnsemble::PredictRow(const double* row) const {
  const double margin = MarginRow(row);
  return sigmoid_ ? Sigmoid(margin) : margin;
}

double FlatEnsemble::MarginRow(const double* row) const {
  XAI_COUNTER_INC("model/flat_predict_rows");
  const int32_t* feature = feature_.data();
  const double* bits = bits_.data();
  const int32_t* left = left_.data();
  double acc = base_;
  const int num_trees = static_cast<int>(roots_.size());
  for (int t = 0; t < num_trees; ++t) {
    int32_t node = roots_[t];
    int32_t f = feature[node];
    while (f >= 0) {
      node = left[node] + static_cast<int32_t>(!(row[f] <= bits[node]));
      f = feature[node];
    }
    acc += scales_[t] * bits[node];
  }
  return divisor_ > 0.0 ? acc / divisor_ : acc;
}

void FlatEnsemble::ScoreRows(const Matrix& x, int64_t begin, int64_t end,
                             double* out) const {
  const int32_t* feature = feature_.data();
  const double* bits = bits_.data();
  const int32_t* left = left_.data();
  const int32_t* roots = roots_.data();
  const double* scales = scales_.data();
  const int num_trees = static_cast<int>(roots_.size());

  double acc[kRowBlock];
  const double* rows[kRowBlock];
  for (int64_t block = begin; block < end; block += kRowBlock) {
    const int bn = static_cast<int>(std::min<int64_t>(kRowBlock, end - block));
    for (int i = 0; i < bn; ++i) {
      acc[i] = base_;
      rows[i] = x.RowPtr(static_cast<int>(block + i));
    }
    // Rows x trees tile: one tree's node block services the whole row tile
    // from L1 before the next tree's block is touched. Per-tree scale and
    // root are hoisted out of the row loop (the AoS path re-read
    // scales[t] / trees[t] through two indirections per tree per row).
    for (int t = 0; t < num_trees; ++t) {
      const double scale = scales[t];
      const int32_t root = roots[t];
      for (int i = 0; i < bn; ++i) {
        const double* row = rows[i];
        int32_t node = root;
        int32_t f = feature[node];
        while (f >= 0) {
          node = left[node] + static_cast<int32_t>(!(row[f] <= bits[node]));
          f = feature[node];
        }
        acc[i] += scale * bits[node];
      }
    }
    for (int i = 0; i < bn; ++i) out[block + i] = Finish(acc[i]);
  }
}

const FlatEnsemble::TreeShapData& FlatEnsemble::EnsureTreeShapData(
    const std::vector<const Tree*>& trees) const {
  std::lock_guard<std::mutex> lock(*shap_mu_);
  if (shap_ != nullptr) return *shap_;
  WallTimer timer;
  XAI_CHECK_EQ(trees.size(), roots_.size());

  auto data = std::make_shared<TreeShapData>();
  data->cover.resize(feature_.size());
  data->expected.reserve(trees.size());
  data->depth.reserve(trees.size());
  // Covers ride the exact BFS walk the inference arrays were laid with.
  int32_t next = ForEachFlatSlot(
      trees, [&](int t, int orig, int32_t slot, int32_t) {
        data->cover[slot] = trees[t]->nodes()[orig].cover;
      });
  XAI_CHECK_EQ(static_cast<size_t>(next), feature_.size());

  for (const Tree* tree : trees) {
    // Cover-weighted leaf mean, accumulated in the original node order —
    // the same float operations TreeExpectedValue performs, so the cached
    // value is bit-identical to what the legacy per-call scan returned.
    double num = 0.0, den = 0.0;
    for (const TreeNode& node : tree->nodes()) {
      if (node.IsLeaf()) {
        num += node.cover * node.value;
        den += node.cover;
      }
    }
    data->expected.push_back(den > 0.0 ? num / den : 0.0);
    const int depth = tree->Depth();
    data->depth.push_back(depth);
    data->max_depth = std::max(data->max_depth, depth);
  }

  shap_ = std::move(data);
  XAI_HISTOGRAM_RECORD("model/flat_shap_build_us", timer.Nanos() / 1000);
  return *shap_;
}

const FlatEnsemble::TreeShapData* FlatEnsemble::tree_shap_data() const {
  std::lock_guard<std::mutex> lock(*shap_mu_);
  return shap_.get();
}

Vector FlatEnsemble::PredictBatch(const Matrix& x) const {
  XAI_SPAN_IF(x.rows() >= kPredictSpanMinRows, "model/flat_predict_batch");
  XAI_COUNTER_ADD("model/flat_predict_rows", x.rows());
  Vector out(x.rows());
  // Chunk grain is a multiple of kRowBlock so every chunk tiles cleanly;
  // per-row results are independent of both the tiling and the chunking,
  // so output is bit-identical at any thread count.
  ParallelFor(x.rows(), /*grain=*/4 * kRowBlock,
              [&](int64_t begin, int64_t end, int64_t) {
                ScoreRows(x, begin, end, out.data());
              });
  return out;
}

}  // namespace xai
