#ifndef XAI_MODEL_GBDT_H_
#define XAI_MODEL_GBDT_H_

#include <memory>
#include <string>
#include <vector>

#include "xai/core/status.h"
#include "xai/model/flat_ensemble.h"
#include "xai/model/model.h"
#include "xai/model/tree.h"

namespace xai {

/// \brief Configuration for GbdtModel.
struct GbdtConfig {
  int n_trees = 100;
  double learning_rate = 0.1;
  int max_depth = 3;
  int min_samples_leaf = 5;
  /// Fraction of rows sampled (without replacement) per tree; 1 = all.
  double subsample = 1.0;
  uint64_t seed = 42;
};

/// \brief Gradient-boosted decision trees.
///
/// Binary classification uses the logistic loss: the model output is
/// sigmoid(Margin(x)) where Margin(x) = base_score + sum_t tree_t(x), with
/// one-step-Newton leaf values (leaf values already include the learning
/// rate, so TreeSHAP attributions over the trees sum exactly to the margin).
/// Regression uses squared loss and predicts Margin(x) directly.
class GbdtModel : public Model {
 public:
  using Config = GbdtConfig;

  static Result<GbdtModel> Train(const Dataset& dataset,
                                 const Config& config = {});
  static Result<GbdtModel> Train(const Matrix& x, const Vector& y,
                                 TaskType task, const Config& config = {});

  TaskType task() const override { return task_; }
  std::string name() const override { return "gbdt"; }
  double Predict(const Vector& row) const override;
  /// Batched traversal over Matrix rows in place (no per-row copies),
  /// parallelized over the runtime.
  Vector PredictBatch(const Matrix& x) const override;

  /// Raw additive score: base_score + sum of tree outputs.
  double Margin(const Vector& row) const;

  const std::vector<Tree>& trees() const { return trees_; }
  double base_score() const { return base_score_; }
  const Config& config() const { return config_; }

  /// Compiled SoA inference kernel over the trees (model/flat_ensemble.h),
  /// built once on first use (thread-safe) and bit-identical to
  /// Predict/PredictBatch (the sigmoid link is folded in for classifiers).
  /// PredictBatch and AsPredictFn route through it.
  std::shared_ptr<const FlatEnsemble> shared_flat() const;

  /// Mutable access for the LeafInfluence-style tree-influence estimator,
  /// which re-derives leaf values under reweighted training data. Drops the
  /// cached flat kernel — mutation must finish before the model is handed
  /// back to predictors (the Model threading contract).
  std::vector<Tree>* mutable_trees() {
    flat_.Invalidate();
    return &trees_;
  }

  /// Reassembles a model from its parts (deserialization).
  static GbdtModel FromParts(std::vector<Tree> trees, double base_score,
                             TaskType task, const Config& config = {});

 private:
  std::vector<Tree> trees_;
  double base_score_ = 0.0;
  TaskType task_ = TaskType::kClassification;
  Config config_;
  LazyFlatEnsemble flat_;
};

}  // namespace xai

#endif  // XAI_MODEL_GBDT_H_
