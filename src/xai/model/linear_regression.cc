#include "xai/model/linear_regression.h"

#include "xai/core/linalg.h"
#include "xai/core/parallel.h"
#include "xai/core/simd.h"
#include "xai/core/telemetry.h"

namespace xai {

Result<LinearRegressionModel> LinearRegressionModel::Train(
    const Matrix& x, const Vector& y, const Config& config) {
  if (x.rows() != static_cast<int>(y.size()))
    return Status::InvalidArgument("row count mismatch");
  if (x.rows() == 0) return Status::InvalidArgument("empty training set");
  XAI_ASSIGN_OR_RETURN(
      Vector coef, RidgeRegression(x, y, config.l2, /*fit_intercept=*/true));
  LinearRegressionModel model;
  model.config_ = config;
  model.bias_ = coef.back();
  coef.pop_back();
  model.weights_ = std::move(coef);
  return model;
}

Result<LinearRegressionModel> LinearRegressionModel::Train(
    const Dataset& dataset, const Config& config) {
  return Train(dataset.x(), dataset.y(), config);
}

double LinearRegressionModel::Predict(const Vector& row) const {
  return Dot(row, weights_) + bias_;
}

Vector LinearRegressionModel::PredictBatch(const Matrix& x) const {
  XAI_COUNTER_ADD("model/evals", x.rows());
  int d = static_cast<int>(weights_.size());
  Vector out(x.rows());
  ParallelFor(x.rows(), /*grain=*/2048,
              [&](int64_t begin, int64_t end, int64_t) {
                for (int64_t i = begin; i < end; ++i) {
                  const double* row = x.RowPtr(static_cast<int>(i));
                  // Same striped-dot kernel as Predict (dot, then bias) so
                  // batch output is bit-identical to row-wise calls.
                  out[i] = simd::Dot(row, weights_.data(), d) + bias_;
                }
              });
  return out;
}

LinearRegressionModel LinearRegressionModel::FromCoefficients(
    Vector weights, double bias, const Config& config) {
  LinearRegressionModel model;
  model.weights_ = std::move(weights);
  model.bias_ = bias;
  model.config_ = config;
  return model;
}

}  // namespace xai
