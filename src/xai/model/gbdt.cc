#include "xai/model/gbdt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "xai/core/parallel.h"
#include "xai/core/rng.h"
#include "xai/core/telemetry.h"
#include "xai/core/trace.h"
#include "xai/model/decision_tree.h"
#include "xai/model/logistic_regression.h"

namespace xai {

Result<GbdtModel> GbdtModel::Train(const Matrix& x, const Vector& y,
                                   TaskType task, const Config& config) {
  if (x.rows() == 0) return Status::InvalidArgument("empty training set");
  if (x.rows() != static_cast<int>(y.size()))
    return Status::InvalidArgument("row count mismatch");
  int n = x.rows();
  GbdtModel model;
  model.task_ = task;
  model.config_ = config;
  Rng rng(config.seed);

  bool classify = task == TaskType::kClassification;
  if (classify) {
    for (double label : y)
      if (label != 0.0 && label != 1.0)
        return Status::InvalidArgument("gbdt classification needs {0,1}");
    double mean = std::accumulate(y.begin(), y.end(), 0.0) / n;
    mean = std::clamp(mean, 1e-6, 1.0 - 1e-6);
    model.base_score_ = std::log(mean / (1.0 - mean));
  } else {
    model.base_score_ = std::accumulate(y.begin(), y.end(), 0.0) / n;
  }

  CartConfig cart;
  cart.max_depth = config.max_depth;
  cart.min_samples_leaf = config.min_samples_leaf;
  cart.criterion = CartConfig::Criterion::kMse;

  Vector margin(n, model.base_score_);
  Vector residual(n);
  for (int t = 0; t < config.n_trees; ++t) {
    // Negative gradient of the loss at the current margin.
    for (int i = 0; i < n; ++i) {
      residual[i] =
          classify ? y[i] - Sigmoid(margin[i]) : y[i] - margin[i];
    }
    std::vector<int> rows;
    if (config.subsample < 1.0) {
      int k = std::max(1, static_cast<int>(config.subsample * n));
      rows = rng.SampleWithoutReplacement(n, k);
    } else {
      rows.resize(n);
      std::iota(rows.begin(), rows.end(), 0);
    }
    Tree tree = BuildCartTree(x, residual, rows, cart, &rng);

    // Leaf values: one-step Newton for logistic loss, shrunk mean residual
    // for squared loss; accumulate per-leaf statistics over the *training*
    // rows of this tree.
    std::vector<double> num(tree.num_nodes(), 0.0);
    std::vector<double> den(tree.num_nodes(), 0.0);
    for (int r : rows) {
      int leaf = tree.LeafIndexOf(x.Row(r));
      num[leaf] += residual[r];
      if (classify) {
        double p = Sigmoid(margin[r]);
        den[leaf] += p * (1.0 - p);
      } else {
        den[leaf] += 1.0;
      }
    }
    auto* nodes = tree.mutable_nodes();
    for (int j = 0; j < tree.num_nodes(); ++j) {
      if (!(*nodes)[j].IsLeaf()) continue;
      double step = den[j] > 1e-12 ? num[j] / den[j] : 0.0;
      (*nodes)[j].value = config.learning_rate * std::clamp(step, -4.0, 4.0);
    }
    for (int i = 0; i < n; ++i) margin[i] += tree.PredictRow(x.Row(i));
    model.trees_.push_back(std::move(tree));
  }
  return model;
}

Result<GbdtModel> GbdtModel::Train(const Dataset& dataset,
                                   const Config& config) {
  return Train(dataset.x(), dataset.y(), dataset.schema().task, config);
}

GbdtModel GbdtModel::FromParts(std::vector<Tree> trees, double base_score,
                               TaskType task, const Config& config) {
  GbdtModel model;
  model.trees_ = std::move(trees);
  model.base_score_ = base_score;
  model.task_ = task;
  model.config_ = config;
  return model;
}

double GbdtModel::Margin(const Vector& row) const {
  double acc = base_score_;
  for (const Tree& tree : trees_) acc += tree.PredictRow(row);
  return acc;
}

double GbdtModel::Predict(const Vector& row) const {
  double margin = Margin(row);
  return task_ == TaskType::kClassification ? Sigmoid(margin) : margin;
}

std::shared_ptr<const FlatEnsemble> GbdtModel::shared_flat() const {
  return flat_.GetOrBuild([this] {
    std::vector<const Tree*> trees;
    trees.reserve(trees_.size());
    for (const Tree& tree : trees_) trees.push_back(&tree);
    FlatEnsemble::Options options;
    options.base = base_score_;
    options.sigmoid = task_ == TaskType::kClassification;
    return FlatEnsemble::Build(trees, std::move(options));
  });
}

Vector GbdtModel::PredictBatch(const Matrix& x) const {
  XAI_SPAN_IF(x.rows() >= kPredictSpanMinRows, "gbdt/predict_batch");
  XAI_COUNTER_ADD("model/evals", x.rows());
  return shared_flat()->PredictBatch(x);
}

}  // namespace xai
