#include "xai/model/naive_bayes.h"

#include <cmath>

namespace xai {

Result<NaiveBayesModel> NaiveBayesModel::Train(const Matrix& x,
                                               const Vector& y) {
  if (x.rows() == 0) return Status::InvalidArgument("empty training set");
  if (x.rows() != static_cast<int>(y.size()))
    return Status::InvalidArgument("row count mismatch");
  int n = x.rows(), d = x.cols();
  NaiveBayesModel model;
  model.mean0_.assign(d, 0.0);
  model.mean1_.assign(d, 0.0);
  model.var0_.assign(d, 0.0);
  model.var1_.assign(d, 0.0);
  double n1 = 0.0;
  for (int i = 0; i < n; ++i) n1 += y[i];
  double n0 = n - n1;
  if (n0 == 0.0 || n1 == 0.0)
    return Status::InvalidArgument("need both classes present");
  model.prior1_ = n1 / n;
  for (int i = 0; i < n; ++i) {
    Vector& mean = y[i] == 1.0 ? model.mean1_ : model.mean0_;
    for (int j = 0; j < d; ++j) mean[j] += x(i, j);
  }
  for (int j = 0; j < d; ++j) {
    model.mean0_[j] /= n0;
    model.mean1_[j] /= n1;
  }
  for (int i = 0; i < n; ++i) {
    Vector& mean = y[i] == 1.0 ? model.mean1_ : model.mean0_;
    Vector& var = y[i] == 1.0 ? model.var1_ : model.var0_;
    for (int j = 0; j < d; ++j) {
      double diff = x(i, j) - mean[j];
      var[j] += diff * diff;
    }
  }
  for (int j = 0; j < d; ++j) {
    model.var0_[j] = model.var0_[j] / n0 + 1e-6;
    model.var1_[j] = model.var1_[j] / n1 + 1e-6;
  }
  return model;
}

Result<NaiveBayesModel> NaiveBayesModel::Train(const Dataset& dataset) {
  return Train(dataset.x(), dataset.y());
}

double NaiveBayesModel::Predict(const Vector& row) const {
  double log1 = std::log(prior1_);
  double log0 = std::log(1.0 - prior1_);
  for (size_t j = 0; j < row.size(); ++j) {
    double d1 = row[j] - mean1_[j];
    double d0 = row[j] - mean0_[j];
    log1 += -0.5 * std::log(2 * M_PI * var1_[j]) - d1 * d1 / (2 * var1_[j]);
    log0 += -0.5 * std::log(2 * M_PI * var0_[j]) - d0 * d0 / (2 * var0_[j]);
  }
  double m = std::max(log0, log1);
  double e1 = std::exp(log1 - m), e0 = std::exp(log0 - m);
  return e1 / (e0 + e1);
}

}  // namespace xai
