#ifndef XAI_INFLUENCE_COMPLAINT_H_
#define XAI_INFLUENCE_COMPLAINT_H_

#include <vector>

#include "xai/core/matrix.h"
#include "xai/core/status.h"
#include "xai/influence/influence_function.h"
#include "xai/model/logistic_regression.h"

namespace xai {

/// \brief Complaint-driven training-data debugging (Wu et al. 2020 "Rain",
/// §3): the user complains that an *aggregate query over model predictions*
/// is wrong (e.g. "COUNT(approved) for group g is too high"), and the system
/// ranks training points by how much their removal would move that
/// aggregate — "identifying data points that are responsible for an error in
/// a query result (where the query includes predictions from an ML model)".
struct Complaint {
  /// Rows of the query input that participate in the aggregate.
  std::vector<int> query_rows;
  /// +1: the aggregate is too high (removals should decrease it);
  /// -1: too low.
  int direction = +1;
};

/// \brief Result of a complaint analysis.
struct ComplaintResult {
  /// Per-training-point estimated change of the (smoothed) aggregate if the
  /// point were removed; positive = removal moves the aggregate in the
  /// complained-about direction (i.e. fixes it).
  Vector fix_scores;
  /// Training rows ranked by fix_scores descending.
  std::vector<int> ranking;
  /// Current value of the smoothed aggregate.
  double aggregate = 0.0;
};

/// Ranks training points by influence on the smoothed aggregate
/// sum_{r in query_rows} sigmoid(margin(x_r)) — the differentiable proxy
/// Rain relaxes COUNT() into. One Hessian solve total.
Result<ComplaintResult> ExplainComplaint(const LogisticInfluence& influence,
                                         const Matrix& x_query,
                                         const Complaint& complaint);

}  // namespace xai

#endif  // XAI_INFLUENCE_COMPLAINT_H_
