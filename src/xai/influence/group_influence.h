#ifndef XAI_INFLUENCE_GROUP_INFLUENCE_H_
#define XAI_INFLUENCE_GROUP_INFLUENCE_H_

#include <vector>

#include "xai/core/matrix.h"
#include "xai/core/status.h"
#include "xai/influence/influence_function.h"

namespace xai {

/// \brief Group influence for logistic regression (Basu, You & Feizi 2020,
/// §2.3.2). First-order group influence simply sums individual influences;
/// "applying first-order approximations to a group of data points can be
/// inaccurate because they do not capture the correlations among data points
/// in the group". The second-order variant re-derives the Newton step with
/// the group's own Hessian contributions removed, capturing exactly those
/// intra-group correlations.

/// First-order parameter change from removing `rows`: (1/n) H^{-1} sum g_i.
Result<Vector> FirstOrderGroupParamChange(const LogisticInfluence& influence,
                                          const std::vector<int>& rows);

/// Second-order (group-corrected) parameter change: solves with the
/// *post-removal* Hessian H' = (n H - sum_{i in U} H_i) / (n - |U|) and the
/// post-removal gradient, i.e. one exact Newton step of the reduced
/// objective from the old optimum.
Result<Vector> SecondOrderGroupParamChange(
    const LogisticRegressionModel& model, const Matrix& x_train,
    const Vector& y_train, const std::vector<int>& rows);

/// Effect on a test margin implied by a parameter change.
double MarginChange(const Vector& param_change, const Vector& x_test);

}  // namespace xai

#endif  // XAI_INFLUENCE_GROUP_INFLUENCE_H_
