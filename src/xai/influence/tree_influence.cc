#include "xai/influence/tree_influence.h"

#include "xai/model/logistic_regression.h"

namespace xai {

Result<GbdtLeafInfluence> GbdtLeafInfluence::Make(const GbdtModel& model,
                                                  const Matrix& x,
                                                  const Vector& y) {
  int n = x.rows();
  if (n != static_cast<int>(y.size()))
    return Status::InvalidArgument("row count mismatch");
  if (model.trees().empty())
    return Status::InvalidArgument("model has no trees");
  bool classify = model.task() == TaskType::kClassification;

  GbdtLeafInfluence inf;
  inf.model_ = &model;
  int t_count = static_cast<int>(model.trees().size());
  inf.leaf_of_.resize(t_count);
  inf.leaf_r_.resize(t_count);
  inf.leaf_h_.resize(t_count);
  inf.point_r_.resize(t_count);
  inf.point_h_.resize(t_count);

  Vector margin(n, model.base_score());
  for (int t = 0; t < t_count; ++t) {
    const Tree& tree = model.trees()[t];
    inf.leaf_of_[t].resize(n);
    inf.leaf_r_[t].assign(tree.num_nodes(), 0.0);
    inf.leaf_h_[t].assign(tree.num_nodes(), 0.0);
    inf.point_r_[t].resize(n);
    inf.point_h_[t].resize(n);
    for (int i = 0; i < n; ++i) {
      Vector row = x.Row(i);
      double r, h;
      if (classify) {
        double p = Sigmoid(margin[i]);
        r = y[i] - p;
        h = p * (1.0 - p);
      } else {
        r = y[i] - margin[i];
        h = 1.0;
      }
      int leaf = tree.LeafIndexOf(row);
      inf.leaf_of_[t][i] = leaf;
      inf.leaf_r_[t][leaf] += r;
      inf.leaf_h_[t][leaf] += h;
      inf.point_r_[t][i] = r;
      inf.point_h_[t][i] = h;
      margin[i] += tree.PredictRow(row);
    }
  }
  return inf;
}

Vector GbdtLeafInfluence::InfluenceOnMarginAll(const Vector& x_test) const {
  int n = num_train();
  Vector out(n, 0.0);
  double lr = model_->config().learning_rate;
  for (size_t t = 0; t < leaf_of_.size(); ++t) {
    const Tree& tree = model_->trees()[t];
    int test_leaf = tree.LeafIndexOf(x_test);
    double big_r = leaf_r_[t][test_leaf];
    double big_h = leaf_h_[t][test_leaf];
    if (big_h <= 1e-12) continue;
    double v = lr * big_r / big_h;
    for (int i = 0; i < n; ++i) {
      if (leaf_of_[t][i] != test_leaf) continue;
      double r2 = big_r - point_r_[t][i];
      double h2 = big_h - point_h_[t][i];
      double v2 = h2 > 1e-12 ? lr * r2 / h2 : 0.0;
      out[i] += v2 - v;  // Margin change at x_test if i is removed.
    }
  }
  return out;
}

double GbdtLeafInfluence::InfluenceOnMargin(const Vector& x_test,
                                            int train_index) const {
  return InfluenceOnMarginAll(x_test)[train_index];
}

}  // namespace xai
