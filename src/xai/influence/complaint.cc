#include "xai/influence/complaint.h"

#include "xai/core/stats.h"

namespace xai {

Result<ComplaintResult> ExplainComplaint(const LogisticInfluence& influence,
                                         const Matrix& x_query,
                                         const Complaint& complaint) {
  const LogisticRegressionModel& model = influence.model();
  int d = x_query.cols();
  if (complaint.direction != 1 && complaint.direction != -1)
    return Status::InvalidArgument("direction must be +1 or -1");

  // Gradient of the smoothed aggregate w.r.t. theta = [w; b]:
  //   d/dtheta sum_r sigmoid(m_r) = sum_r p_r (1 - p_r) [x_r; 1].
  Vector agg_grad(d + 1, 0.0);
  double aggregate = 0.0;
  for (int r : complaint.query_rows) {
    if (r < 0 || r >= x_query.rows())
      return Status::OutOfRange("query row out of range");
    Vector row = x_query.Row(r);
    double p = Sigmoid(model.Margin(row));
    aggregate += p;
    double w = p * (1.0 - p);
    for (int j = 0; j < d; ++j) agg_grad[j] += w * row[j];
    agg_grad[d] += w;
  }

  // Removing train point i changes theta by (1/n) H^{-1} g_i, hence the
  // aggregate by (1/n) agg_grad^T H^{-1} g_i. One Hessian solve for the
  // aggregate, then a dot product per training point.
  XAI_ASSIGN_OR_RETURN(Vector s, influence.SolveHessian(agg_grad));

  ComplaintResult result;
  result.aggregate = aggregate;
  int n = influence.num_train();
  result.fix_scores.resize(n);
  for (int i = 0; i < n; ++i) {
    Vector g_i = model.ExampleLossGradient(influence.x_train().Row(i),
                                           influence.y_train()[i]);
    double delta_aggregate = Dot(s, g_i) / n;
    // A "fix" moves the aggregate against the complained direction.
    result.fix_scores[i] = -complaint.direction * delta_aggregate;
  }
  result.ranking = ArgSortDescending(result.fix_scores);
  return result;
}

}  // namespace xai
