#include "xai/influence/influence_function.h"

#include <cmath>

#include "xai/core/linalg.h"
#include "xai/core/parallel.h"
#include "xai/core/trace.h"

namespace xai {

Result<LogisticInfluence> LogisticInfluence::Make(
    const LogisticRegressionModel& model, const Matrix& x_train,
    const Vector& y_train, const Config& config) {
  if (x_train.rows() != static_cast<int>(y_train.size()))
    return Status::InvalidArgument("row count mismatch");
  if (x_train.rows() == 0) return Status::InvalidArgument("empty train set");
  LogisticInfluence inf;
  inf.model_ = &model;
  inf.x_train_ = &x_train;
  inf.y_train_ = &y_train;
  inf.config_ = config;
  inf.hessian_ = model.LossHessian(x_train);
  if (config.damping > 0.0) inf.hessian_.AddScaledIdentity(config.damping);
  if (!config.use_conjugate_gradient) {
    XAI_ASSIGN_OR_RETURN(inf.cholesky_, CholeskyFactor(inf.hessian_));
  }
  return inf;
}

Result<Vector> LogisticInfluence::SolveHessian(const Vector& v) const {
  if (config_.use_conjugate_gradient) {
    const Matrix& h = hessian_;
    return ConjugateGradient(
        [&h](const Vector& p) { return h.MatVec(p); }, v,
        config_.cg_max_iter);
  }
  // Reuse the cached Cholesky factor: L L^T s = v.
  int n = cholesky_.rows();
  Vector y(n);
  for (int i = 0; i < n; ++i) {
    double val = v[i];
    for (int k = 0; k < i; ++k) val -= cholesky_(i, k) * y[k];
    y[i] = val / cholesky_(i, i);
  }
  Vector s(n);
  for (int i = n - 1; i >= 0; --i) {
    double val = y[i];
    for (int k = i + 1; k < n; ++k) val -= cholesky_(k, i) * s[k];
    s[i] = val / cholesky_(i, i);
  }
  return s;
}

double LogisticInfluence::InfluenceOnLoss(const Vector& x_test, double y_test,
                                          int train_index) const {
  auto all = InfluenceOnLossAll(x_test, y_test);
  if (!all.ok()) return 0.0;
  return all.ValueUnsafe()[train_index];
}

Result<Vector> LogisticInfluence::InfluenceOnLossAll(const Vector& x_test,
                                                     double y_test) const {
  XAI_SPAN("influence/loss_all");
  Vector g_test = model_->ExampleLossGradient(x_test, y_test);
  XAI_ASSIGN_OR_RETURN(Vector s, SolveHessian(g_test));
  int n = x_train_->rows();
  Vector out(n);
  // Per-row gradient dot products are independent; each slot of `out` is
  // written by exactly one chunk.
  ParallelFor(n, /*grain=*/256, [&](int64_t begin, int64_t end, int64_t) {
    for (int64_t i = begin; i < end; ++i) {
      Vector g_i = model_->ExampleLossGradient(
          x_train_->Row(static_cast<int>(i)), (*y_train_)[i]);
      out[i] = Dot(s, g_i) / n;
    }
  });
  return out;
}

Result<Vector> LogisticInfluence::InfluenceOnMarginAll(
    const Vector& x_test) const {
  XAI_SPAN("influence/margin_all");
  // d margin / d theta = [x_test; 1].
  Vector g(x_test);
  g.push_back(1.0);
  XAI_ASSIGN_OR_RETURN(Vector s, SolveHessian(g));
  int n = x_train_->rows();
  Vector out(n);
  ParallelFor(n, /*grain=*/256, [&](int64_t begin, int64_t end, int64_t) {
    for (int64_t i = begin; i < end; ++i) {
      Vector g_i = model_->ExampleLossGradient(
          x_train_->Row(static_cast<int>(i)), (*y_train_)[i]);
      out[i] = Dot(s, g_i) / n;
    }
  });
  return out;
}

Result<Vector> LogisticInfluence::ParamChangeOnRemoval(
    const std::vector<int>& rows) const {
  int d = x_train_->cols();
  Vector g_sum(d + 1, 0.0);
  for (int r : rows) {
    Vector g = model_->ExampleLossGradient(x_train_->Row(r), (*y_train_)[r]);
    for (int j = 0; j <= d; ++j) g_sum[j] += g[j];
  }
  XAI_ASSIGN_OR_RETURN(Vector s, SolveHessian(g_sum));
  return Scale(s, 1.0 / x_train_->rows());
}

Result<LinearInfluence> LinearInfluence::Make(
    const LinearRegressionModel& model, const Matrix& x_train,
    const Vector& y_train) {
  if (x_train.rows() != static_cast<int>(y_train.size()))
    return Status::InvalidArgument("row count mismatch");
  int n = x_train.rows(), d = x_train.cols();
  if (n <= d + 1)
    return Status::InvalidArgument("need more rows than parameters");
  LinearInfluence inf;
  inf.d_ = d;
  inf.x_ = Matrix(n, d + 1);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) inf.x_(i, j) = x_train(i, j);
    inf.x_(i, d) = 1.0;
  }
  Matrix gram = inf.x_.Gram();
  for (int j = 0; j < d; ++j) gram(j, j) += model.config().l2;
  gram.AddScaledIdentity(1e-10);
  XAI_ASSIGN_OR_RETURN(inf.inv_gram_, Inverse(gram));

  inf.residual_.resize(n);
  inf.leverage_.resize(n);
  double sse = 0.0;
  for (int i = 0; i < n; ++i) {
    Vector xi = x_train.Row(i);
    inf.residual_[i] = y_train[i] - model.Predict(xi);
    sse += inf.residual_[i] * inf.residual_[i];
    Vector row = inf.x_.Row(i);
    inf.leverage_[i] = Dot(row, inf.inv_gram_.MatVec(row));
  }
  inf.mse_ = sse / std::max(1, n - d - 1);
  return inf;
}

Vector LinearInfluence::LooParamChange(int i) const {
  // theta_{-i} - theta = -inv(X^T X) x_i e_i / (1 - h_i)  (exact).
  Vector xi = x_.Row(i);
  Vector v = inv_gram_.MatVec(xi);
  double factor = -residual_[i] / (1.0 - leverage_[i]);
  return Scale(v, factor);
}

double LinearInfluence::LooPredictionChange(const Vector& x_test,
                                            int i) const {
  Vector xt = x_test;
  xt.push_back(1.0);
  return Dot(xt, LooParamChange(i));
}

double LinearInfluence::Leverage(int i) const { return leverage_[i]; }

double LinearInfluence::CooksDistance(int i) const {
  double h = leverage_[i];
  double e = residual_[i];
  double p = d_ + 1;
  return (e * e * h) / (p * mse_ * (1.0 - h) * (1.0 - h));
}

}  // namespace xai
