#ifndef XAI_INFLUENCE_TREE_INFLUENCE_H_
#define XAI_INFLUENCE_TREE_INFLUENCE_H_

#include <vector>

#include "xai/core/matrix.h"
#include "xai/core/status.h"
#include "xai/model/gbdt.h"

namespace xai {

/// \brief LeafInfluence-style influence for gradient-boosted trees
/// (Sharchilev et al. 2018, §2.3.2): influence of a training point on a test
/// prediction with the *tree structures held fixed* — "fixing the tree
/// ensemble structure and analyzing changes in leaf values with respect to
/// the weights of the training data points".
///
/// This implementation uses the independent-trees first-order variant: for
/// each tree, the leaf value is a ratio of gradient statistics; removing
/// point z shifts the value of exactly the leaves containing z by
///   delta_v = lr * ((R - r_z) / (H - h_z) - R / H),
/// and the influence on a test margin is the sum of delta_v over trees where
/// the test point shares z's leaf. Cross-stage residual interactions are not
/// propagated (see the E9 experiment for the accuracy this buys/loses).
class GbdtLeafInfluence {
 public:
  /// Replays the training statistics of the model over (x, y) — the same
  /// data it was trained on, full-batch (subsample == 1).
  static Result<GbdtLeafInfluence> Make(const GbdtModel& model,
                                        const Matrix& x, const Vector& y);

  /// Estimated change of the test margin if `train_index` were removed.
  double InfluenceOnMargin(const Vector& x_test, int train_index) const;

  /// All training points at once.
  Vector InfluenceOnMarginAll(const Vector& x_test) const;

  int num_train() const { return static_cast<int>(leaf_of_.empty() ? 0 : leaf_of_[0].size()); }

 private:
  const GbdtModel* model_ = nullptr;
  /// leaf_of_[t][i] = leaf index of training row i in tree t.
  std::vector<std::vector<int>> leaf_of_;
  /// Per tree, per leaf: sums of residuals (R) and hessians (H).
  std::vector<std::vector<double>> leaf_r_;
  std::vector<std::vector<double>> leaf_h_;
  /// Per tree, per train point: its residual / hessian at that stage.
  std::vector<std::vector<double>> point_r_;
  std::vector<std::vector<double>> point_h_;
};

}  // namespace xai

#endif  // XAI_INFLUENCE_TREE_INFLUENCE_H_
