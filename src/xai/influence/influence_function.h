#ifndef XAI_INFLUENCE_INFLUENCE_FUNCTION_H_
#define XAI_INFLUENCE_INFLUENCE_FUNCTION_H_

#include <vector>

#include "xai/core/matrix.h"
#include "xai/core/status.h"
#include "xai/model/linear_regression.h"
#include "xai/model/logistic_regression.h"

namespace xai {

/// \brief Influence functions for logistic regression (Koh & Liang 2017,
/// §2.3.2): first-order estimates of how removing a training point changes
/// the parameters, a test loss, or a test prediction — "avoid(ing)
/// retraining the model by estimating the change in model parameters
/// effected by a slight change in the weight of a data point".
///
/// Conventions: the trained objective is J(theta) = (1/n) sum_i nll_i +
/// (l2/2)||w||^2. Removing point z moves the parameters by approximately
///   delta_theta = (1/n) H^{-1} grad nll_z(theta*),
/// where H is the Hessian of J at theta*.
struct InfluenceConfig {
  /// Solve H s = g with conjugate gradient instead of a Cholesky factor
  /// (matrix-free; the right choice when d is large).
  bool use_conjugate_gradient = false;
  int cg_max_iter = 200;
  /// Damping added to H (stabilizes nearly-singular Hessians).
  double damping = 0.0;
};

class LogisticInfluence {
 public:
  using Config = InfluenceConfig;

  /// Precomputes the Hessian at the trained model. The referenced matrix /
  /// labels must outlive the object.
  static Result<LogisticInfluence> Make(const LogisticRegressionModel& model,
                                        const Matrix& x_train,
                                        const Vector& y_train,
                                        const Config& config = {});

  /// Estimated change in loss at (x_test, y_test) caused by REMOVING
  /// training point i (positive = the test loss would increase).
  double InfluenceOnLoss(const Vector& x_test, double y_test,
                         int train_index) const;

  /// All-points version: one Hessian solve for the test gradient, then one
  /// dot product per training point.
  Result<Vector> InfluenceOnLossAll(const Vector& x_test,
                                    double y_test) const;

  /// Estimated change of the test *margin* caused by removing point i.
  Result<Vector> InfluenceOnMarginAll(const Vector& x_test) const;

  /// First-order estimated parameter change ([weights; bias]) from removing
  /// a set of training points (sum of individual influences).
  Result<Vector> ParamChangeOnRemoval(const std::vector<int>& rows) const;

  /// Solves H s = v (the inverse-Hessian-vector product).
  Result<Vector> SolveHessian(const Vector& v) const;

  const LogisticRegressionModel& model() const { return *model_; }
  int num_train() const { return x_train_->rows(); }
  const Matrix& x_train() const { return *x_train_; }
  const Vector& y_train() const { return *y_train_; }

 private:
  const LogisticRegressionModel* model_ = nullptr;
  const Matrix* x_train_ = nullptr;
  const Vector* y_train_ = nullptr;
  Config config_;
  Matrix hessian_;
  /// Cholesky factor of the Hessian (empty when using CG).
  Matrix cholesky_;
};

/// \brief Exact leave-one-out analysis for ridge linear regression via the
/// hat matrix (Cook & Weisberg 1980, cited in §2.3.2): the rare model where
/// "the naive way" has a closed form and no retraining is needed at all.
class LinearInfluence {
 public:
  static Result<LinearInfluence> Make(const LinearRegressionModel& model,
                                      const Matrix& x_train,
                                      const Vector& y_train);

  /// Exact parameter change ([weights; bias]) from deleting train point i.
  Vector LooParamChange(int train_index) const;
  /// Exact change of the prediction at x_test from deleting train point i.
  double LooPredictionChange(const Vector& x_test, int train_index) const;
  /// Leverage (hat value) of training point i.
  double Leverage(int train_index) const;
  /// Cook's distance of training point i.
  double CooksDistance(int train_index) const;

 private:
  Matrix x_;        // With intercept column.
  Vector residual_; // y - prediction.
  Matrix inv_gram_; // (X^T X + reg)^{-1}.
  Vector leverage_;
  double mse_ = 0.0;
  int d_ = 0;
};

}  // namespace xai

#endif  // XAI_INFLUENCE_INFLUENCE_FUNCTION_H_
