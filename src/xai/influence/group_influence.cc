#include "xai/influence/group_influence.h"

#include <set>

#include "xai/core/matrix.h"

namespace xai {

Result<Vector> FirstOrderGroupParamChange(const LogisticInfluence& influence,
                                          const std::vector<int>& rows) {
  return influence.ParamChangeOnRemoval(rows);
}

Result<Vector> SecondOrderGroupParamChange(
    const LogisticRegressionModel& model, const Matrix& x_train,
    const Vector& y_train, const std::vector<int>& rows) {
  int n = x_train.rows();
  int d = x_train.cols();
  int m = static_cast<int>(rows.size());
  if (m >= n) return Status::InvalidArgument("cannot remove all rows");
  std::set<int> removed(rows.begin(), rows.end());

  // Post-removal gradient of J'(theta) = (1/(n-m)) sum_keep nll + reg at the
  // current optimum: since (1/n) sum_all g_i + l2 w = 0,
  //   grad J' = ( -m * l2*[w;0] - sum_U g_i ) / (n - m)  + l2*[w;0]
  // but computing it directly from the kept rows is simpler and exact.
  Vector grad(d + 1, 0.0);
  Matrix hess(d + 1, d + 1);
  for (int i = 0; i < n; ++i) {
    if (removed.count(i)) continue;
    Vector row = x_train.Row(i);
    Vector g = model.ExampleLossGradient(row, y_train[i]);
    for (int j = 0; j <= d; ++j) grad[j] += g[j];
    double p = Sigmoid(model.Margin(row));
    double w = p * (1.0 - p);
    for (int a = 0; a < d; ++a) {
      double wa = w * row[a];
      for (int b = a; b < d; ++b) hess(a, b) += wa * row[b];
      hess(a, d) += wa;
    }
    hess(d, d) += w;
  }
  double keep = n - m;
  for (int a = 0; a <= d; ++a)
    for (int b = a; b <= d; ++b) {
      hess(a, b) /= keep;
      hess(b, a) = hess(a, b);
    }
  for (int j = 0; j <= d; ++j) grad[j] /= keep;
  for (int j = 0; j < d; ++j) {
    grad[j] += model.config().l2 * model.weights()[j];
    hess(j, j) += model.config().l2;
  }
  hess.AddScaledIdentity(1e-10);
  XAI_ASSIGN_OR_RETURN(Vector step, CholeskySolve(hess, grad));
  return Scale(step, -1.0);
}

double MarginChange(const Vector& param_change, const Vector& x_test) {
  double acc = param_change.back();
  for (size_t j = 0; j < x_test.size(); ++j)
    acc += param_change[j] * x_test[j];
  return acc;
}

}  // namespace xai
