#ifndef XAI_CORE_TIMER_H_
#define XAI_CORE_TIMER_H_

#include <chrono>
#include <cstdint>

namespace xai {

/// Monotonic clock reading in nanoseconds (steady_clock since an arbitrary
/// epoch). The telemetry spans (core/trace.h) and WallTimer share this
/// clock, so span timestamps and stopwatch readings are directly comparable.
/// Spans rely on this never going backwards — wall-clock adjustments (NTP,
/// suspend/resume) must not produce negative durations or misordered trace
/// timestamps.
static_assert(std::chrono::steady_clock::is_steady,
              "span timing requires a monotonic clock");

inline int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// \brief Simple wall-clock stopwatch.
///
/// New instrumentation should prefer `XAI_SPAN("subsystem/op")` from
/// core/trace.h: a span feeds the telemetry registry (histogram quantiles,
/// Chrome trace) for free, while a WallTimer reading is visible only to the
/// code that took it. Direct WallTimer use in benches is deprecated except
/// where the raw reading itself is the published measurement.
class WallTimer {
 public:
  WallTimer() : start_ns_(MonotonicNanos()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ns_ = MonotonicNanos(); }

  /// Elapsed monotonic nanoseconds since construction / last Reset().
  int64_t Nanos() const { return MonotonicNanos() - start_ns_; }

  /// Elapsed seconds since construction / last Reset().
  double Seconds() const { return static_cast<double>(Nanos()) * 1e-9; }

  /// Elapsed milliseconds.
  double Millis() const { return static_cast<double>(Nanos()) * 1e-6; }
  /// Elapsed microseconds.
  double Micros() const { return static_cast<double>(Nanos()) * 1e-3; }

 private:
  int64_t start_ns_;
};

}  // namespace xai

#endif  // XAI_CORE_TIMER_H_
