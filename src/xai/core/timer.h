#ifndef XAI_CORE_TIMER_H_
#define XAI_CORE_TIMER_H_

#include <chrono>

namespace xai {

/// \brief Simple wall-clock stopwatch for the benchmark harnesses.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }
  /// Elapsed microseconds.
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace xai

#endif  // XAI_CORE_TIMER_H_
