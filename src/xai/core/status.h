#ifndef XAI_CORE_STATUS_H_
#define XAI_CORE_STATUS_H_

#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace xai {

/// \brief Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kUnimplemented,
  kIOError,
  kInternal,
  /// The serving layer cannot take more work right now (admission shed,
  /// full batcher queue). Distinct from kOutOfRange so callers can tell
  /// "retry later / degrade" apart from "the request itself is unfundable".
  kOverloaded,
};

/// \brief Human-readable name of a status code ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// \brief Arrow-style status object: either OK or a code plus message.
///
/// All fallible public APIs in libxai return `Status` or `Result<T>` instead
/// of throwing exceptions.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
///
/// Mirrors `arrow::Result`. Access the value with `ValueOrDie()` /
/// `ValueUnsafe()` after checking `ok()`, or use XAI_ASSIGN_OR_RETURN.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                          // NOLINT(runtime/explicit)
      : status_(std::move(status)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; aborts if this holds an error.
  const T& ValueOrDie() const& {
    AbortIfError();
    return *value_;
  }
  T& ValueOrDie() & {
    AbortIfError();
    return *value_;
  }
  T&& ValueOrDie() && {
    AbortIfError();
    return std::move(*value_);
  }

  /// Returns the contained value without checking; UB if not ok().
  const T& ValueUnsafe() const& { return *value_; }
  T& ValueUnsafe() & { return *value_; }
  T&& ValueUnsafe() && { return std::move(*value_); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void AbortIfError() const;

  std::optional<T> value_;
  Status status_;
};

namespace internal {
[[noreturn]] void DieOnBadResult(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieOnBadResult(status_);
}

/// Propagates a non-OK Status to the caller.
#define XAI_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::xai::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (0)

#define XAI_CONCAT_IMPL(a, b) a##b
#define XAI_CONCAT(a, b) XAI_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// move-assigns the value into `lhs` (which may include a declaration).
#define XAI_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  XAI_ASSIGN_OR_RETURN_IMPL(XAI_CONCAT(_xai_result_, __COUNTER__), lhs, rexpr)

#define XAI_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueUnsafe();

}  // namespace xai

#endif  // XAI_CORE_STATUS_H_
