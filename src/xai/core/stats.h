#ifndef XAI_CORE_STATS_H_
#define XAI_CORE_STATS_H_

#include <vector>

namespace xai {

/// \brief Descriptive statistics and rank correlations used throughout the
/// experiment harnesses (agreement between estimators, stability indices).

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& v);
/// Unbiased sample variance; 0 for fewer than two elements.
double Variance(const std::vector<double>& v);
/// Square root of Variance().
double StdDev(const std::vector<double>& v);
/// Linear-interpolated quantile, q in [0, 1].
double Quantile(std::vector<double> v, double q);
/// Median (Quantile 0.5).
double Median(std::vector<double> v);
/// Pearson correlation; 0 if either side is constant.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);
/// Spearman rank correlation (average ranks for ties).
double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b);
/// Ranks with ties broken by averaging (1-based ranks).
std::vector<double> Ranks(const std::vector<double>& v);
/// argmax index; -1 for empty input.
int ArgMax(const std::vector<double>& v);
/// argmin index; -1 for empty input.
int ArgMin(const std::vector<double>& v);
/// Indices that sort v descending.
std::vector<int> ArgSortDescending(const std::vector<double>& v);
/// Indices that sort v ascending.
std::vector<int> ArgSortAscending(const std::vector<double>& v);

}  // namespace xai

#endif  // XAI_CORE_STATS_H_
