#include "xai/core/trace.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "xai/core/timer.h"

namespace xai {
namespace telemetry {
namespace {

/// Per-thread event buffer. Single writer (the owning thread), any reader:
/// the writer fills slot `size` then publishes `size + 1` with a release
/// store, so a reader that acquires `size` sees fully written events — no
/// locks anywhere on the recording path.
struct ThreadBuffer {
  static constexpr uint32_t kCapacity = 1 << 14;  // 16K events / thread.

  explicit ThreadBuffer(uint32_t tid) : tid(tid), slots(kCapacity) {}

  const uint32_t tid;
  std::atomic<uint32_t> size{0};
  std::vector<TraceEvent> slots;
};

std::mutex g_buffers_mu;
// Shared ownership keeps a buffer readable after its thread exits.
std::vector<std::shared_ptr<ThreadBuffer>>& Buffers() {
  static auto* buffers = new std::vector<std::shared_ptr<ThreadBuffer>>();
  return *buffers;
}
uint32_t g_next_tid = 0;

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    std::lock_guard<std::mutex> lock(g_buffers_mu);
    auto b = std::make_shared<ThreadBuffer>(g_next_tid++);
    Buffers().push_back(b);
    return b;
  }();
  return *buffer;
}

void AppendEvent(const char* name, int64_t start_ns, int64_t duration_ns) {
  ThreadBuffer& buffer = LocalBuffer();
  uint32_t i = buffer.size.load(std::memory_order_relaxed);
  if (i >= ThreadBuffer::kCapacity) {
    XAI_COUNTER_INC("trace/dropped_events");
    return;
  }
  buffer.slots[i] = TraceEvent{name, start_ns, duration_ns, buffer.tid};
  buffer.size.store(i + 1, std::memory_order_release);
}

}  // namespace

ScopedSpan::ScopedSpan(const char* name)
    : name_(name), start_ns_(Enabled() ? MonotonicNanos() : -1) {}

ScopedSpan::~ScopedSpan() {
  if (start_ns_ < 0 || !Enabled()) return;
  const int64_t duration_ns = MonotonicNanos() - start_ns_;
  AppendEvent(name_, start_ns_, duration_ns);
  // One registry lookup per span end; spans sit at explain/chunk
  // granularity, so this stays far below the overhead budget.
  Registry::Global().GetHistogram(name_)->Record(duration_ns);
}

namespace internal {

void CollectTraceEvents(std::vector<TraceEvent>* out) {
  std::lock_guard<std::mutex> lock(g_buffers_mu);
  for (const auto& buffer : Buffers()) {
    uint32_t n = buffer->size.load(std::memory_order_acquire);
    for (uint32_t i = 0; i < n; ++i) out->push_back(buffer->slots[i]);
  }
}

void ClearTraceEvents() {
  std::lock_guard<std::mutex> lock(g_buffers_mu);
  for (const auto& buffer : Buffers())
    buffer->size.store(0, std::memory_order_release);
}

}  // namespace internal
}  // namespace telemetry
}  // namespace xai
