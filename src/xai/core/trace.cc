#include "xai/core/trace.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "xai/core/check.h"
#include "xai/core/parallel.h"
#include "xai/core/timer.h"

namespace xai {
namespace telemetry {
namespace {

/// Per-thread event buffer. Single writer (the owning thread), any reader:
/// the writer fills slot `size` then publishes `size + 1` with a release
/// store, so a reader that acquires `size` sees fully written events — no
/// locks anywhere on the recording path.
struct ThreadBuffer {
  static constexpr uint32_t kCapacity = 1 << 14;  // 16K events / thread.

  explicit ThreadBuffer(uint32_t tid) : tid(tid), slots(kCapacity) {}

  const uint32_t tid;
  std::atomic<uint32_t> size{0};
  std::vector<TraceEvent> slots;
};

std::mutex g_buffers_mu;
// Shared ownership keeps a buffer readable after its thread exits.
std::vector<std::shared_ptr<ThreadBuffer>>& Buffers() {
  static auto* buffers = new std::vector<std::shared_ptr<ThreadBuffer>>();
  return *buffers;
}
uint32_t g_next_tid = 0;

// Tail-retention buffer: request-root spans of slow / degraded / error
// requests land here even when head sampling skipped the trace. Mutex-only —
// it sees one append per retained *request*, not per span, so contention is
// irrelevant.
constexpr uint32_t kRetainedCapacity = 1 << 15;
std::mutex g_retained_mu;
std::vector<TraceEvent>& Retained() {
  static auto* retained = new std::vector<TraceEvent>();
  return *retained;
}

std::atomic<int64_t> g_dropped_events{0};
std::atomic<int64_t> g_retained_dropped{0};
std::atomic<uint64_t> g_clear_epoch{0};
// Set when ClearTraceEvents discarded a nonempty trace and nothing has been
// recorded since: a CollectTraceEvents in that state is a double export and
// dies instead of silently emitting an empty trace.
std::atomic<bool> g_cleared_nonempty{false};

std::atomic<uint64_t> g_next_span_id{1};

thread_local TraceContext t_current_ctx;

void NoteEventRecorded() {
  if (g_cleared_nonempty.load(std::memory_order_relaxed))
    g_cleared_nonempty.store(false, std::memory_order_relaxed);
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    std::lock_guard<std::mutex> lock(g_buffers_mu);
    auto b = std::make_shared<ThreadBuffer>(g_next_tid++);
    Buffers().push_back(b);
    return b;
  }();
  return *buffer;
}

void AppendEvent(const char* name, int64_t start_ns, int64_t duration_ns,
                 const TraceContext& ctx, uint64_t span_id,
                 uint64_t parent_span_id) {
  ThreadBuffer& buffer = LocalBuffer();
  uint32_t i = buffer.size.load(std::memory_order_relaxed);
  if (i >= ThreadBuffer::kCapacity) {
    g_dropped_events.fetch_add(1, std::memory_order_relaxed);
    XAI_COUNTER_INC("trace/dropped_events");
    return;
  }
  buffer.slots[i] = TraceEvent{name,          start_ns, duration_ns,
                               buffer.tid,    ctx.trace_id, span_id,
                               parent_span_id};
  buffer.size.store(i + 1, std::memory_order_release);
  NoteEventRecorded();
}

// XAI_TRACE_SAMPLE stored as parts-per-2^32 so the atomic stays integral.
std::atomic<uint64_t> g_sample_threshold{[] {
  double rate = 1.0;
  if (const char* env = std::getenv("XAI_TRACE_SAMPLE")) {
    char* end = nullptr;
    const double parsed = std::strtod(env, &end);
    if (end != env) rate = parsed;
  }
  if (rate < 0.0) rate = 0.0;
  if (rate > 1.0) rate = 1.0;
  return static_cast<uint64_t>(rate * 4294967296.0);
}()};

// splitmix64 finalizer: decorrelates sequentially assigned trace ids so a
// fixed-rate threshold on the low bits samples uniformly.
uint64_t MixTraceId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const TraceContext& CurrentTraceContext() { return t_current_ctx; }

uint64_t NextSpanId() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

double TraceSampleRate() {
  return static_cast<double>(
             g_sample_threshold.load(std::memory_order_relaxed)) /
         4294967296.0;
}

void SetTraceSampleRate(double rate) {
  if (rate < 0.0) rate = 0.0;
  if (rate > 1.0) rate = 1.0;
  g_sample_threshold.store(static_cast<uint64_t>(rate * 4294967296.0),
                           std::memory_order_relaxed);
}

bool SampleTrace(uint64_t trace_id) {
  const uint64_t threshold =
      g_sample_threshold.load(std::memory_order_relaxed);
  if (threshold >= (1ULL << 32)) return true;
  return (MixTraceId(trace_id) >> 32) < threshold;
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx)
    : prev_(t_current_ctx) {
  t_current_ctx = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { t_current_ctx = prev_; }

std::function<void()> BindTraceContext(std::function<void()> fn) {
  return BindTraceContext(t_current_ctx, std::move(fn));
}

std::function<void()> BindTraceContext(const TraceContext& ctx,
                                       std::function<void()> fn) {
  return [ctx, fn = std::move(fn)] {
    ScopedTraceContext scope(ctx);
    fn();
  };
}

ScopedSpan::ScopedSpan(const char* name) : ScopedSpan(name, nullptr) {}

ScopedSpan::ScopedSpan(const char* name, Histogram* histogram)
    : name_(name),
      histogram_(histogram),
      start_ns_(Enabled() ? MonotonicNanos() : -1) {
  if (start_ns_ < 0) return;
  prev_ = t_current_ctx;
  if (prev_.trace_id != 0) {
    // Become the innermost span of the active request: spans opened inside
    // this scope parent-link to us.
    span_id_ = NextSpanId();
    t_current_ctx = TraceContext{prev_.trace_id, span_id_, prev_.sampled};
    installed_ = true;
  }
}

ScopedSpan::~ScopedSpan() {
  if (start_ns_ < 0) return;
  if (installed_) t_current_ctx = prev_;
  if (!Enabled()) return;
  // MonotonicNanos is steady by static_assert, but clamp anyway so an event
  // can never carry a negative duration.
  int64_t duration_ns = MonotonicNanos() - start_ns_;
  if (duration_ns < 0) duration_ns = 0;
  if (!installed_ || prev_.sampled) {
    AppendEvent(name_, start_ns_, duration_ns, prev_, span_id_,
                installed_ ? prev_.span_id : 0);
  }
  // Histograms record even for head-sampled-out traces: sampling thins the
  // event stream, never the metrics. XAI_SPAN call sites pass the resolved
  // histogram; the lookup fallback only serves direct ScopedSpan users.
  if (histogram_ == nullptr)
    histogram_ = Registry::Global().GetHistogram(name_);
  histogram_->Record(duration_ns);
}

#if XAI_TELEMETRY

void RecordRequestSpan(const char* name, const TraceContext& ctx,
                       uint64_t span_id, uint64_t parent_span_id,
                       int64_t start_ns, int64_t duration_ns,
                       bool force_retain) {
  if (!Enabled()) return;
  if (duration_ns < 0) duration_ns = 0;
  Registry::Global().GetHistogram(name)->Record(duration_ns);
  if (ctx.sampled) {
    AppendEvent(name, start_ns, duration_ns, ctx, span_id, parent_span_id);
    return;
  }
  if (!force_retain) return;
  std::lock_guard<std::mutex> lock(g_retained_mu);
  std::vector<TraceEvent>& retained = Retained();
  if (retained.size() >= kRetainedCapacity) {
    g_retained_dropped.fetch_add(1, std::memory_order_relaxed);
    XAI_COUNTER_INC("trace/retained_dropped");
    return;
  }
  retained.push_back(TraceEvent{name, start_ns, duration_ns,
                                LocalBuffer().tid, ctx.trace_id, span_id,
                                parent_span_id});
  NoteEventRecorded();
}

#endif  // XAI_TELEMETRY

namespace internal {

void CollectTraceEvents(std::vector<TraceEvent>* out) {
  XAI_CHECK_MSG(!InParallelRegion(),
                "CollectTraceEvents inside a parallel region");
  const size_t before = out->size();
  {
    std::lock_guard<std::mutex> lock(g_buffers_mu);
    for (const auto& buffer : Buffers()) {
      uint32_t n = buffer->size.load(std::memory_order_acquire);
      for (uint32_t i = 0; i < n; ++i) out->push_back(buffer->slots[i]);
    }
  }
  {
    std::lock_guard<std::mutex> lock(g_retained_mu);
    for (const TraceEvent& e : Retained()) out->push_back(e);
  }
  XAI_CHECK_MSG(
      out->size() != before ||
          !g_cleared_nonempty.load(std::memory_order_relaxed),
      "double export: CollectTraceEvents after ClearTraceEvents discarded "
      "the trace and nothing was recorded since");
}

void ClearTraceEvents() {
  XAI_CHECK_MSG(!InParallelRegion(),
                "ClearTraceEvents inside a parallel region");
  int64_t cleared = 0;
  {
    std::lock_guard<std::mutex> lock(g_buffers_mu);
    for (const auto& buffer : Buffers()) {
      cleared += buffer->size.load(std::memory_order_acquire);
      buffer->size.store(0, std::memory_order_release);
    }
  }
  {
    std::lock_guard<std::mutex> lock(g_retained_mu);
    cleared += static_cast<int64_t>(Retained().size());
    Retained().clear();
  }
  g_dropped_events.store(0, std::memory_order_relaxed);
  g_retained_dropped.store(0, std::memory_order_relaxed);
  g_clear_epoch.fetch_add(1, std::memory_order_relaxed);
  if (cleared > 0) g_cleared_nonempty.store(true, std::memory_order_relaxed);
}

TraceStats GetTraceStats() {
  TraceStats stats;
  stats.buffer_capacity = ThreadBuffer::kCapacity;
  stats.retained_capacity = kRetainedCapacity;
  stats.dropped_events = g_dropped_events.load(std::memory_order_relaxed);
  stats.retained_dropped =
      g_retained_dropped.load(std::memory_order_relaxed);
  stats.clear_epoch = g_clear_epoch.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(g_buffers_mu);
    stats.num_thread_buffers = static_cast<int>(Buffers().size());
    for (const auto& buffer : Buffers())
      stats.buffered_events +=
          buffer->size.load(std::memory_order_acquire);
  }
  {
    std::lock_guard<std::mutex> lock(g_retained_mu);
    stats.buffered_events += static_cast<int64_t>(Retained().size());
  }
  return stats;
}

}  // namespace internal
}  // namespace telemetry
}  // namespace xai
