#include "xai/core/matrix.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "xai/core/simd.h"
#include "xai/core/telemetry.h"

// Kernel-style loops in this file work on raw row spans (RowPtr) instead of
// the checked operator(): the per-element XAI_DCHECK bounds test is hoisted
// to one shape check per call, which is what lets the simd kernels see
// plain contiguous doubles. The checked accessor remains the public API.

namespace xai {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = static_cast<int>(rows.size());
  cols_ = rows_ == 0 ? 0 : static_cast<int>(rows.begin()->size());
  data_.reserve(static_cast<size_t>(rows_) * cols_);
  for (const auto& row : rows) {
    XAI_CHECK_EQ(static_cast<int>(row.size()), cols_);
    for (double v : row) data_.push_back(v);
  }
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m.RowPtr(i)[i] = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const Vector& diag) {
  int n = static_cast<int>(diag.size());
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m.RowPtr(i)[i] = diag[i];
  return m;
}

Matrix Matrix::FromRows(const std::vector<Vector>& rows) {
  int r = static_cast<int>(rows.size());
  int c = r == 0 ? 0 : static_cast<int>(rows[0].size());
  Matrix m(r, c);
  for (int i = 0; i < r; ++i) {
    XAI_CHECK_EQ(static_cast<int>(rows[i].size()), c);
    if (c > 0) std::memcpy(m.RowPtr(i), rows[i].data(), sizeof(double) * c);
  }
  return m;
}

Vector Matrix::Row(int r) const {
  XAI_DCHECK(r >= 0 && r < rows_);
  const double* src = RowPtr(r);
  return Vector(src, src + cols_);
}

Vector Matrix::Col(int c) const {
  XAI_DCHECK(c >= 0 && c < cols_);
  Vector v(rows_);
  for (int i = 0; i < rows_; ++i) v[i] = RowPtr(i)[c];
  return v;
}

void Matrix::SetRow(int r, const Vector& v) {
  XAI_CHECK_EQ(static_cast<int>(v.size()), cols_);
  XAI_DCHECK(r >= 0 && r < rows_);
  if (cols_ > 0) std::memcpy(RowPtr(r), v.data(), sizeof(double) * cols_);
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (int i = 0; i < rows_; ++i) {
    const double* src = RowPtr(i);
    for (int j = 0; j < cols_; ++j) t.RowPtr(j)[i] = src[j];
  }
  return t;
}

Matrix Matrix::operator+(const Matrix& other) const {
  XAI_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix m(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) m.data_[i] = data_[i] + other.data_[i];
  return m;
}

Matrix Matrix::operator-(const Matrix& other) const {
  XAI_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix m(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) m.data_[i] = data_[i] - other.data_[i];
  return m;
}

Matrix Matrix::operator*(double s) const {
  Matrix m(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) m.data_[i] = data_[i] * s;
  return m;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  XAI_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  XAI_COUNTER_ADD("linalg/gemm_flops",
                  2LL * rows_ * cols_ * other.cols_);
  simd::Gemm(rows_, other.cols_, cols_, data_.data(), cols_,
             other.data_.data(), other.cols_, out.data_.data(), out.cols_);
  return out;
}

Vector Matrix::MatVec(const Vector& v) const {
  XAI_CHECK_EQ(static_cast<int>(v.size()), cols_);
  Vector out(rows_, 0.0);
  for (int i = 0; i < rows_; ++i) out[i] = simd::Dot(RowPtr(i), v.data(), cols_);
  return out;
}

Vector Matrix::TransposeMatVec(const Vector& v) const {
  XAI_CHECK_EQ(static_cast<int>(v.size()), rows_);
  Vector out(cols_, 0.0);
  for (int i = 0; i < rows_; ++i) simd::Axpy(v[i], RowPtr(i), out.data(), cols_);
  return out;
}

Matrix Matrix::Gram() const {
  Matrix g(cols_, cols_);
  XAI_COUNTER_ADD("linalg/gemm_flops", 1LL * rows_ * cols_ * cols_);
  for (int i = 0; i < rows_; ++i)
    simd::WeightedOuterAccumulate(1.0, RowPtr(i), cols_, g.data_.data(),
                                  cols_);
  // Mirror upper triangle into the lower one.
  for (int a = 0; a < cols_; ++a)
    for (int b = 0; b < a; ++b) g.RowPtr(a)[b] = g.RowPtr(b)[a];
  return g;
}

Matrix Matrix::WeightedGram(const Vector& w) const {
  XAI_CHECK_EQ(static_cast<int>(w.size()), rows_);
  Matrix g(cols_, cols_);
  XAI_COUNTER_ADD("linalg/gemm_flops", 1LL * rows_ * cols_ * cols_);
  for (int i = 0; i < rows_; ++i) {
    if (w[i] == 0.0) continue;
    simd::WeightedOuterAccumulate(w[i], RowPtr(i), cols_, g.data_.data(),
                                  cols_);
  }
  for (int a = 0; a < cols_; ++a)
    for (int b = 0; b < a; ++b) g.RowPtr(a)[b] = g.RowPtr(b)[a];
  return g;
}

void Matrix::AddScaledIdentity(double s) {
  XAI_CHECK_EQ(rows_, cols_);
  for (int i = 0; i < rows_; ++i) RowPtr(i)[i] += s;
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

bool Matrix::ApproxEquals(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i)
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  return true;
}

std::string Matrix::ToString(int max_rows) const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " [\n";
  for (int i = 0; i < rows_ && i < max_rows; ++i) {
    os << "  ";
    for (int j = 0; j < cols_; ++j) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%10.4f", (*this)(i, j));
      os << buf << (j + 1 < cols_ ? " " : "");
    }
    os << "\n";
  }
  if (rows_ > max_rows) os << "  ... (" << rows_ - max_rows << " more)\n";
  os << "]";
  return os.str();
}

double Dot(const Vector& a, const Vector& b) {
  XAI_CHECK_EQ(a.size(), b.size());
  return simd::Dot(a.data(), b.data(), a.size());
}

double Norm2(const Vector& a) { return std::sqrt(Dot(a, a)); }

Vector Add(const Vector& a, const Vector& b) {
  XAI_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector Sub(const Vector& a, const Vector& b) {
  XAI_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector Scale(const Vector& a, double s) {
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

void Axpy(double s, const Vector& b, Vector* a) {
  XAI_CHECK_EQ(a->size(), b.size());
  simd::Axpy(s, b.data(), a->data(), b.size());
}

Result<Matrix> CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols())
    return Status::InvalidArgument("Cholesky requires a square matrix");
  int n = a.rows();
  Matrix l(n, n);
  for (int j = 0; j < n; ++j) {
    // Row-major lower-triangular L keeps l(j, 0..j) contiguous, so the
    // triangular inner products are striped dots over row prefixes.
    double* lj = l.RowPtr(j);
    double diag = a(j, j) - simd::Dot(lj, lj, j);
    if (diag <= 0.0 || !std::isfinite(diag))
      return Status::InvalidArgument("matrix is not positive definite");
    lj[j] = std::sqrt(diag);
    for (int i = j + 1; i < n; ++i) {
      double* li = l.RowPtr(i);
      li[j] = (a(i, j) - simd::Dot(li, lj, j)) / lj[j];
    }
  }
  return l;
}

namespace {

// Solves L y = b then L^T x = y given lower-triangular L.
Vector CholeskyBackSubstitute(const Matrix& l, const Vector& b) {
  int n = l.rows();
  Vector y(n);
  for (int i = 0; i < n; ++i) {
    const double* li = l.RowPtr(i);
    y[i] = (b[i] - simd::Dot(li, y.data(), i)) / li[i];
  }
  // L^T solve in axpy form so the inner loop runs over the contiguous row
  // l(i, 0..i) instead of a strided column.
  Vector x = std::move(y);
  for (int i = n - 1; i >= 0; --i) {
    const double* li = l.RowPtr(i);
    x[i] /= li[i];
    simd::Axpy(-x[i], li, x.data(), i);
  }
  return x;
}

}  // namespace

Result<Vector> CholeskySolve(const Matrix& a, const Vector& b) {
  if (a.rows() != static_cast<int>(b.size()))
    return Status::InvalidArgument("dimension mismatch in CholeskySolve");
  XAI_ASSIGN_OR_RETURN(Matrix l, CholeskyFactor(a));
  return CholeskyBackSubstitute(l, b);
}

Result<Matrix> CholeskySolveMatrix(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows())
    return Status::InvalidArgument("dimension mismatch in CholeskySolveMatrix");
  XAI_ASSIGN_OR_RETURN(Matrix l, CholeskyFactor(a));
  Matrix x(b.rows(), b.cols());
  for (int c = 0; c < b.cols(); ++c) {
    Vector col = b.Col(c);
    Vector sol = CholeskyBackSubstitute(l, col);
    for (int r = 0; r < b.rows(); ++r) x(r, c) = sol[r];
  }
  return x;
}

Result<Vector> LuSolve(const Matrix& a, const Vector& b) {
  if (a.rows() != a.cols())
    return Status::InvalidArgument("LuSolve requires a square matrix");
  if (a.rows() != static_cast<int>(b.size()))
    return Status::InvalidArgument("dimension mismatch in LuSolve");
  int n = a.rows();
  Matrix lu = a;
  Vector x = b;
  std::vector<int> piv(n);
  for (int i = 0; i < n; ++i) piv[i] = i;
  for (int col = 0; col < n; ++col) {
    int best = col;
    for (int r = col + 1; r < n; ++r)
      if (std::fabs(lu(r, col)) > std::fabs(lu(best, col))) best = r;
    if (std::fabs(lu(best, col)) < 1e-14)
      return Status::InvalidArgument("matrix is singular");
    if (best != col) {
      double* rc = lu.RowPtr(col);
      double* rb = lu.RowPtr(best);
      for (int j = 0; j < n; ++j) std::swap(rc[j], rb[j]);
      std::swap(x[col], x[best]);
    }
    const double* pivot_row = lu.RowPtr(col);
    const double pivot = pivot_row[col];
    for (int r = col + 1; r < n; ++r) {
      double* row = lu.RowPtr(r);
      double f = row[col] / pivot;
      row[col] = f;
      // Rank-1 elimination over the trailing row suffix.
      simd::Axpy(-f, pivot_row + col + 1, row + col + 1, n - col - 1);
      x[r] -= f * x[col];
    }
  }
  for (int i = n - 1; i >= 0; --i) {
    const double* row = lu.RowPtr(i);
    x[i] = (x[i] - simd::Dot(row + i + 1, x.data() + i + 1, n - i - 1)) /
           row[i];
  }
  return x;
}

Result<Matrix> Inverse(const Matrix& a) {
  if (a.rows() != a.cols())
    return Status::InvalidArgument("Inverse requires a square matrix");
  int n = a.rows();
  Matrix inv(n, n);
  for (int c = 0; c < n; ++c) {
    Vector e(n, 0.0);
    e[c] = 1.0;
    XAI_ASSIGN_OR_RETURN(Vector col, LuSolve(a, e));
    for (int r = 0; r < n; ++r) inv(r, c) = col[r];
  }
  return inv;
}

}  // namespace xai
