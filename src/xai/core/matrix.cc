#include "xai/core/matrix.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace xai {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = static_cast<int>(rows.size());
  cols_ = rows_ == 0 ? 0 : static_cast<int>(rows.begin()->size());
  data_.reserve(static_cast<size_t>(rows_) * cols_);
  for (const auto& row : rows) {
    XAI_CHECK_EQ(static_cast<int>(row.size()), cols_);
    for (double v : row) data_.push_back(v);
  }
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const Vector& diag) {
  int n = static_cast<int>(diag.size());
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = diag[i];
  return m;
}

Matrix Matrix::FromRows(const std::vector<Vector>& rows) {
  int r = static_cast<int>(rows.size());
  int c = r == 0 ? 0 : static_cast<int>(rows[0].size());
  Matrix m(r, c);
  for (int i = 0; i < r; ++i) {
    XAI_CHECK_EQ(static_cast<int>(rows[i].size()), c);
    for (int j = 0; j < c; ++j) m(i, j) = rows[i][j];
  }
  return m;
}

Vector Matrix::Row(int r) const {
  Vector v(cols_);
  for (int j = 0; j < cols_; ++j) v[j] = (*this)(r, j);
  return v;
}

Vector Matrix::Col(int c) const {
  Vector v(rows_);
  for (int i = 0; i < rows_; ++i) v[i] = (*this)(i, c);
  return v;
}

void Matrix::SetRow(int r, const Vector& v) {
  XAI_CHECK_EQ(static_cast<int>(v.size()), cols_);
  for (int j = 0; j < cols_; ++j) (*this)(r, j) = v[j];
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (int i = 0; i < rows_; ++i)
    for (int j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

Matrix Matrix::operator+(const Matrix& other) const {
  XAI_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix m(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) m.data_[i] = data_[i] + other.data_[i];
  return m;
}

Matrix Matrix::operator-(const Matrix& other) const {
  XAI_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix m(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) m.data_[i] = data_[i] - other.data_[i];
  return m;
}

Matrix Matrix::operator*(double s) const {
  Matrix m(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) m.data_[i] = data_[i] * s;
  return m;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  XAI_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (int i = 0; i < rows_; ++i) {
    const double* arow = RowPtr(i);
    double* orow = out.RowPtr(i);
    for (int k = 0; k < cols_; ++k) {
      double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = other.RowPtr(k);
      for (int j = 0; j < other.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Vector Matrix::MatVec(const Vector& v) const {
  XAI_CHECK_EQ(static_cast<int>(v.size()), cols_);
  Vector out(rows_, 0.0);
  for (int i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    double acc = 0.0;
    for (int j = 0; j < cols_; ++j) acc += row[j] * v[j];
    out[i] = acc;
  }
  return out;
}

Vector Matrix::TransposeMatVec(const Vector& v) const {
  XAI_CHECK_EQ(static_cast<int>(v.size()), rows_);
  Vector out(cols_, 0.0);
  for (int i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    double vi = v[i];
    if (vi == 0.0) continue;
    for (int j = 0; j < cols_; ++j) out[j] += row[j] * vi;
  }
  return out;
}

Matrix Matrix::Gram() const {
  Matrix g(cols_, cols_);
  for (int i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    for (int a = 0; a < cols_; ++a) {
      double ra = row[a];
      if (ra == 0.0) continue;
      double* grow = g.RowPtr(a);
      for (int b = a; b < cols_; ++b) grow[b] += ra * row[b];
    }
  }
  for (int a = 0; a < cols_; ++a)
    for (int b = 0; b < a; ++b) g(a, b) = g(b, a);
  return g;
}

Matrix Matrix::WeightedGram(const Vector& w) const {
  XAI_CHECK_EQ(static_cast<int>(w.size()), rows_);
  Matrix g(cols_, cols_);
  for (int i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    double wi = w[i];
    if (wi == 0.0) continue;
    for (int a = 0; a < cols_; ++a) {
      double ra = wi * row[a];
      if (ra == 0.0) continue;
      double* grow = g.RowPtr(a);
      for (int b = a; b < cols_; ++b) grow[b] += ra * row[b];
    }
  }
  for (int a = 0; a < cols_; ++a)
    for (int b = 0; b < a; ++b) g(a, b) = g(b, a);
  return g;
}

void Matrix::AddScaledIdentity(double s) {
  XAI_CHECK_EQ(rows_, cols_);
  for (int i = 0; i < rows_; ++i) (*this)(i, i) += s;
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

bool Matrix::ApproxEquals(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i)
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  return true;
}

std::string Matrix::ToString(int max_rows) const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " [\n";
  for (int i = 0; i < rows_ && i < max_rows; ++i) {
    os << "  ";
    for (int j = 0; j < cols_; ++j) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%10.4f", (*this)(i, j));
      os << buf << (j + 1 < cols_ ? " " : "");
    }
    os << "\n";
  }
  if (rows_ > max_rows) os << "  ... (" << rows_ - max_rows << " more)\n";
  os << "]";
  return os.str();
}

double Dot(const Vector& a, const Vector& b) {
  XAI_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm2(const Vector& a) { return std::sqrt(Dot(a, a)); }

Vector Add(const Vector& a, const Vector& b) {
  XAI_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector Sub(const Vector& a, const Vector& b) {
  XAI_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector Scale(const Vector& a, double s) {
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

void Axpy(double s, const Vector& b, Vector* a) {
  XAI_CHECK_EQ(a->size(), b.size());
  for (size_t i = 0; i < b.size(); ++i) (*a)[i] += s * b[i];
}

Result<Matrix> CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols())
    return Status::InvalidArgument("Cholesky requires a square matrix");
  int n = a.rows();
  Matrix l(n, n);
  for (int j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (int k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag))
      return Status::InvalidArgument("matrix is not positive definite");
    l(j, j) = std::sqrt(diag);
    for (int i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (int k = 0; k < j; ++k) v -= l(i, k) * l(j, k);
      l(i, j) = v / l(j, j);
    }
  }
  return l;
}

namespace {

// Solves L y = b then L^T x = y given lower-triangular L.
Vector CholeskyBackSubstitute(const Matrix& l, const Vector& b) {
  int n = l.rows();
  Vector y(n);
  for (int i = 0; i < n; ++i) {
    double v = b[i];
    for (int k = 0; k < i; ++k) v -= l(i, k) * y[k];
    y[i] = v / l(i, i);
  }
  Vector x(n);
  for (int i = n - 1; i >= 0; --i) {
    double v = y[i];
    for (int k = i + 1; k < n; ++k) v -= l(k, i) * x[k];
    x[i] = v / l(i, i);
  }
  return x;
}

}  // namespace

Result<Vector> CholeskySolve(const Matrix& a, const Vector& b) {
  if (a.rows() != static_cast<int>(b.size()))
    return Status::InvalidArgument("dimension mismatch in CholeskySolve");
  XAI_ASSIGN_OR_RETURN(Matrix l, CholeskyFactor(a));
  return CholeskyBackSubstitute(l, b);
}

Result<Matrix> CholeskySolveMatrix(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows())
    return Status::InvalidArgument("dimension mismatch in CholeskySolveMatrix");
  XAI_ASSIGN_OR_RETURN(Matrix l, CholeskyFactor(a));
  Matrix x(b.rows(), b.cols());
  for (int c = 0; c < b.cols(); ++c) {
    Vector col = b.Col(c);
    Vector sol = CholeskyBackSubstitute(l, col);
    for (int r = 0; r < b.rows(); ++r) x(r, c) = sol[r];
  }
  return x;
}

Result<Vector> LuSolve(const Matrix& a, const Vector& b) {
  if (a.rows() != a.cols())
    return Status::InvalidArgument("LuSolve requires a square matrix");
  if (a.rows() != static_cast<int>(b.size()))
    return Status::InvalidArgument("dimension mismatch in LuSolve");
  int n = a.rows();
  Matrix lu = a;
  Vector x = b;
  std::vector<int> piv(n);
  for (int i = 0; i < n; ++i) piv[i] = i;
  for (int col = 0; col < n; ++col) {
    int best = col;
    for (int r = col + 1; r < n; ++r)
      if (std::fabs(lu(r, col)) > std::fabs(lu(best, col))) best = r;
    if (std::fabs(lu(best, col)) < 1e-14)
      return Status::InvalidArgument("matrix is singular");
    if (best != col) {
      for (int j = 0; j < n; ++j) std::swap(lu(col, j), lu(best, j));
      std::swap(x[col], x[best]);
    }
    for (int r = col + 1; r < n; ++r) {
      double f = lu(r, col) / lu(col, col);
      lu(r, col) = f;
      for (int j = col + 1; j < n; ++j) lu(r, j) -= f * lu(col, j);
      x[r] -= f * x[col];
    }
  }
  for (int i = n - 1; i >= 0; --i) {
    double v = x[i];
    for (int j = i + 1; j < n; ++j) v -= lu(i, j) * x[j];
    x[i] = v / lu(i, i);
  }
  return x;
}

Result<Matrix> Inverse(const Matrix& a) {
  if (a.rows() != a.cols())
    return Status::InvalidArgument("Inverse requires a square matrix");
  int n = a.rows();
  Matrix inv(n, n);
  for (int c = 0; c < n; ++c) {
    Vector e(n, 0.0);
    e[c] = 1.0;
    XAI_ASSIGN_OR_RETURN(Vector col, LuSolve(a, e));
    for (int r = 0; r < n; ++r) inv(r, c) = col[r];
  }
  return inv;
}

}  // namespace xai
