#ifndef XAI_CORE_RNG_H_
#define XAI_CORE_RNG_H_

#include <cstdint>
#include <vector>

namespace xai {

/// \brief Deterministic pseudo-random number generator (PCG32).
///
/// Every stochastic component in libxai takes an explicit seed and draws from
/// an Rng instance, so all experiments are reproducible bit-for-bit.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

  /// Next raw 32-bit value.
  uint32_t NextU32();
  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  /// Standard normal via Box-Muller.
  double Normal();
  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);
  /// Uniform integer in [0, n); n must be > 0.
  int UniformInt(int n);
  /// Uniform integer in [lo, hi).
  int UniformInt(int lo, int hi);
  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);
  /// Index drawn proportionally to non-negative `weights`.
  int Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (int i = static_cast<int>(v->size()) - 1; i > 0; --i) {
      int j = UniformInt(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// A uniformly random permutation of {0, ..., n-1}.
  std::vector<int> Permutation(int n);

  /// k distinct indices sampled uniformly from {0, ..., n-1} (k <= n).
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Derives an independent child generator (for parallel streams).
  Rng Fork();

 private:
  uint64_t state_;
  uint64_t inc_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// \brief Stateless seed derivation for deterministic parallel streams.
///
/// Hashes (seed, stream) into the seed of an independent child generator:
/// `Rng(SplitSeed(seed, i))` gives chunk/permutation `i` its own stream
/// regardless of which thread runs it or in what order, so Monte-Carlo
/// explainers produce bit-identical output at any thread count (see
/// core/parallel.h). Unlike Rng::Fork(), this does not advance any state.
uint64_t SplitSeed(uint64_t seed, uint64_t stream);

}  // namespace xai

#endif  // XAI_CORE_RNG_H_
