#ifndef XAI_CORE_LINALG_H_
#define XAI_CORE_LINALG_H_

#include <functional>

#include "xai/core/matrix.h"
#include "xai/core/status.h"

namespace xai {

/// \brief Higher-level solvers built on Matrix: ridge / weighted least
/// squares (the workhorse of LIME and KernelSHAP) and conjugate gradient
/// (the workhorse of influence functions).

/// Solves min_w ||X w - y||^2 + l2 ||w||^2 via normal equations.
/// When `fit_intercept` is true an intercept column is appended internally
/// and returned as the last coefficient (the intercept is not regularized).
Result<Vector> RidgeRegression(const Matrix& x, const Vector& y, double l2,
                               bool fit_intercept = false);

/// Solves min_w sum_i s_i (x_i . w - y_i)^2 + l2 ||w||^2 for sample weights s.
Result<Vector> WeightedRidgeRegression(const Matrix& x, const Vector& y,
                                       const Vector& sample_weights, double l2,
                                       bool fit_intercept = false);

/// Solves the equality-constrained weighted least squares
///   min_w sum_i s_i (x_i . w - y_i)^2   s.t.  c . w = d
/// via variable elimination; used by KernelSHAP's efficiency constraint.
Result<Vector> ConstrainedWeightedLeastSquares(const Matrix& x,
                                               const Vector& y,
                                               const Vector& sample_weights,
                                               const Vector& c, double d,
                                               double l2 = 1e-9);

/// Matrix-free conjugate gradient for SPD systems A x = b, where `apply_a`
/// computes A v. Stops at `tol` relative residual or `max_iter`.
Result<Vector> ConjugateGradient(
    const std::function<Vector(const Vector&)>& apply_a, const Vector& b,
    int max_iter = 200, double tol = 1e-10);

}  // namespace xai

#endif  // XAI_CORE_LINALG_H_
