#ifndef XAI_CORE_LINALG_H_
#define XAI_CORE_LINALG_H_

#include <functional>

#include "xai/core/matrix.h"
#include "xai/core/status.h"

namespace xai {

/// \brief Higher-level solvers built on Matrix: ridge / weighted least
/// squares (the workhorse of LIME and KernelSHAP) and conjugate gradient
/// (the workhorse of influence functions).

/// Solves min_w ||X w - y||^2 + l2 ||w||^2 via normal equations.
/// When `fit_intercept` is true an intercept column is appended internally
/// and returned as the last coefficient (the intercept is not regularized).
Result<Vector> RidgeRegression(const Matrix& x, const Vector& y, double l2,
                               bool fit_intercept = false);

/// Solves min_w sum_i s_i (x_i . w - y_i)^2 + l2 ||w||^2 for sample weights s.
Result<Vector> WeightedRidgeRegression(const Matrix& x, const Vector& y,
                                       const Vector& sample_weights, double l2,
                                       bool fit_intercept = false);

/// Solves the equality-constrained weighted least squares
///   min_w sum_i s_i (x_i . w - y_i)^2   s.t.  c . w = d
/// via variable elimination; used by KernelSHAP's efficiency constraint.
Result<Vector> ConstrainedWeightedLeastSquares(const Matrix& x,
                                               const Vector& y,
                                               const Vector& sample_weights,
                                               const Vector& c, double d,
                                               double l2 = 1e-9);

/// Matrix-free conjugate gradient for SPD systems A x = b, where `apply_a`
/// computes A v. Stops at `tol` relative residual or `max_iter`.
Result<Vector> ConjugateGradient(
    const std::function<Vector(const Vector&)>& apply_a, const Vector& b,
    int max_iter = 200, double tol = 1e-10);

/// \brief Streaming normal-equation accumulator for weighted ridge — the
/// fusion substrate under LIME's and KernelSHAP's sample→predict→weight→
/// solve pipelines.
///
/// Instead of materializing the full n_samples x dim design matrix and
/// calling WeightedRidgeRegression, callers push row blocks as they are
/// generated; the accumulator folds each block straight into the Gram
/// matrix (X^T diag(w) X, via the upper-only packed Gram kernel
/// simd::GemmTNUpper over a weight-scaled copy of the block, with columns
/// padded to a full register tile) and right-hand side (X^T (w .* y)), so
/// the working set per block stays L2-resident regardless of n_samples.
///
/// Bit-identity with the materialized path is part of the contract on the
/// default SIMD tiers: per Gram element the accumulation chain is
/// (w_i * x_ia) * x_ib over nonzero-weight rows in ascending row order —
/// exactly the chain Matrix::WeightedGram produces — provided blocks are
/// added in ascending row order. Zero-weight rows are compacted out of the
/// Gram update (WeightedGram skips them) but kept in the rhs update
/// (TransposeMatVec does not). Solve() then mirrors the upper triangle,
/// regularizes, and Cholesky-solves in the same order as
/// WeightedRidgeRegression, so coefficients match that path bitwise.
class WlsAccumulator {
 public:
  /// `dim` counts ALL design columns — including the intercept column,
  /// which the caller appends to each row (trailing 1.0) when fitting one.
  /// `fit_intercept` only controls which diagonal entries Solve()
  /// regularizes (the last column is exempt, as in WeightedRidgeRegression).
  WlsAccumulator(int dim, bool fit_intercept);

  /// Folds an n x dim row-major block with targets y[0..n) and sample
  /// weights w[0..n). Blocks must arrive in ascending row order for the
  /// bit-identity guarantee; n == 0 is a no-op.
  void AddBlock(const double* rows, const double* y, const double* w, int n);

  /// Regularizes and solves the accumulated normal equations; the
  /// accumulator itself is untouched, so callers may keep streaming and
  /// solve again. Matches WeightedRidgeRegression(X, y, w, l2,
  /// fit_intercept) on the same data bit-for-bit (default tiers).
  Result<Vector> Solve(double l2) const;

  /// Weighted residual sum of squares ||diag(w)^(1/2) (X coef - y)||^2,
  /// computed algebraically from the accumulated moments:
  ///   sum_i w_i y_i^2 - 2 coef^T rhs + coef^T Gram coef.
  /// Exact up to summation order (NOT bitwise against a row-by-row
  /// residual pass); used for the fused LIME local R^2.
  double ResidualSumOfSquares(const Vector& coef) const;

  /// Accumulated moments for goodness-of-fit summaries.
  double weight_sum() const { return weight_sum_; }
  double weighted_y_sum() const { return wy_sum_; }
  double weighted_yy_sum() const { return wyy_sum_; }
  int dim() const { return dim_; }
  int rows_seen() const { return rows_seen_; }

 private:
  int dim_;
  // Internal column stride, dim_ rounded up to the GEMM register-tile width
  // (simd::kGemmNR). The padded tail columns of scaled_/compact_ stay zero
  // (grow-only resizes, rows written only up to dim_), so the Gram kernel
  // runs entirely on full register tiles without perturbing any real entry
  // — each Gram element's chain touches only its own two columns.
  int pad_;
  bool fit_intercept_;
  int rows_seen_ = 0;
  double weight_sum_ = 0.0;
  double wy_sum_ = 0.0;
  double wyy_sum_ = 0.0;
  // pad_ x pad_; upper triangle (a <= b < dim_) carries the
  // WeightedGram-identical chains. Lower triangle and padded tail are
  // scratch (GemmTNUpper leaves sub-diagonal tiles partially updated).
  Matrix gram_;
  Vector rhs_;
  std::vector<double> scaled_;  // Per-block w-scaled rows (Gram operand A).
  std::vector<double> compact_;  // Per-block nonzero-weight rows (operand B).
};

/// \brief Streaming variant of ConstrainedWeightedLeastSquares: eliminates
/// the pinned variable row-by-row (identical arithmetic to the materialized
/// elimination) and feeds the reduced rows into a WlsAccumulator, so
/// KernelSHAP's efficiency-constrained solve never materializes its
/// coalition design matrix. Same block-order / bit-identity contract as
/// WlsAccumulator.
class CwlsAccumulator {
 public:
  /// Constraint c . w = d over `dim` coefficients. `c` must have a nonzero
  /// entry (checked at Solve()).
  CwlsAccumulator(int dim, const Vector& c, double d);

  /// Folds an n x dim row-major block; same contract as
  /// WlsAccumulator::AddBlock.
  void AddBlock(const double* rows, const double* y, const double* w, int n);

  /// Solves the reduced problem and reconstructs the eliminated
  /// coefficient. Matches ConstrainedWeightedLeastSquares(X, y, w, c, d,
  /// l2) bit-for-bit on the default tiers.
  Result<Vector> Solve(double l2) const;

 private:
  int dim_;
  int pivot_;  // Index of the eliminated variable; -1 if c == 0.
  Vector c_;
  Vector ratio_;
  double d_;
  WlsAccumulator inner_;
  std::vector<double> reduced_;  // Per-block reduced rows.
  std::vector<double> yr_;       // Per-block reduced targets.
};

}  // namespace xai

#endif  // XAI_CORE_LINALG_H_
