#include "xai/core/telemetry.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <sstream>
#include <vector>

#include "xai/core/json.h"
#include "xai/core/timer.h"
#include "xai/core/trace.h"

namespace xai {
namespace telemetry {
namespace {

std::atomic<bool> g_enabled{true};

// Escaping lives in core/json.h, shared with the bench report writer.
void WriteJsonString(std::ostream& os, const std::string& s) {
  json::WriteString(os, s);
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Counter

namespace internal {

int ThreadIndex() {
  static std::atomic<int> next{0};
  thread_local int index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

}  // namespace internal

int Counter::ThreadSlot() {
  // Threads claim slots in first-touch order. The first kSlots-1 threads
  // own theirs exclusively (plain-store fast path); everyone after shares
  // the last slot, which stays exact because that path uses fetch-add.
  const int n = internal::ThreadIndex();
  return n < kSlots - 1 ? n : kSlots - 1;
}

// ---------------------------------------------------------------------------
// Histogram

int Histogram::BucketFor(int64_t value) {
  if (value < 0) value = 0;
  uint64_t u = static_cast<uint64_t>(value);
  if (u < kSubCount) return static_cast<int>(u);  // Exact small values.
  int msb = 63 - std::countl_zero(u);
  int sub = static_cast<int>((u >> (msb - kSubBits)) & (kSubCount - 1));
  return (msb - kSubBits + 1) * kSubCount + sub;
}

int64_t Histogram::BucketLowerBound(int index) {
  if (index < kSubCount) return index;
  int msb = index / kSubCount + kSubBits - 1;
  int sub = index % kSubCount;
  return (int64_t{1} << msb) |
         (static_cast<int64_t>(sub) << (msb - kSubBits));
}

void Histogram::Record(int64_t value) {
  // The recording thread owns its stripe in practice (pool sizes rarely
  // exceed kStripes); fetch_add keeps overlapping threads exact.
  Stripe& s = stripes_[internal::ThreadIndex() & (kStripes - 1)];
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value < 0 ? 0 : value, std::memory_order_relaxed);
  s.buckets[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::Merge(const Histogram& other) {
  for (int s = 0; s < kStripes; ++s) {
    stripes_[s].count.fetch_add(
        other.stripes_[s].count.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    stripes_[s].sum.fetch_add(
        other.stripes_[s].sum.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    for (int i = 0; i < kNumBuckets; ++i)
      stripes_[s].buckets[i].fetch_add(
          other.stripes_[s].buckets[i].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
  }
}

void Histogram::Reset() {
  for (Stripe& s : stripes_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

double Histogram::Quantile(double q) const {
  int64_t total = Count();
  if (total <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile, 1-based; walk the cumulative counts.
  int64_t rank = static_cast<int64_t>(q * (total - 1)) + 1;
  int64_t cum = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cum += BucketTotal(i);
    if (cum >= rank) {
      int64_t lo = BucketLowerBound(i);
      int64_t hi = i + 1 < kNumBuckets ? BucketLowerBound(i + 1) : lo + 1;
      return static_cast<double>(lo) + static_cast<double>(hi - lo) / 2.0;
    }
  }
  return static_cast<double>(BucketLowerBound(kNumBuckets - 1));
}

// ---------------------------------------------------------------------------
// Registry

Registry::Registry() { epoch_ns_.store(MonotonicNanos()); }

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // Leaked: outlives all users.
  return *registry;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

void Registry::Reset() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, counter] : counters_) counter->Reset();
    for (auto& [name, histogram] : histograms_) histogram->Reset();
  }
  internal::ClearTraceEvents();
  epoch_ns_.store(MonotonicNanos());
}

std::map<std::string, int64_t> Registry::CounterSnapshot() const {
  std::map<std::string, int64_t> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) out[name] = counter->Get();
  return out;
}

std::map<std::string, HistogramStats> Registry::HistogramSnapshot() const {
  std::map<std::string, HistogramStats> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, histogram] : histograms_) {
    HistogramStats stats;
    stats.count = histogram->Count();
    stats.sum = histogram->Sum();
    stats.p50 = histogram->Quantile(0.50);
    stats.p95 = histogram->Quantile(0.95);
    stats.p99 = histogram->Quantile(0.99);
    out[name] = stats;
  }
  return out;
}

void Registry::WriteJson(std::ostream& os) const {
  for (const auto& [name, value] : CounterSnapshot()) {
    os << "{\"type\":\"counter\",\"name\":";
    WriteJsonString(os, name);
    os << ",\"value\":" << value << "}\n";
  }
  for (const auto& [name, h] : HistogramSnapshot()) {
    os << "{\"type\":\"histogram\",\"name\":";
    WriteJsonString(os, name);
    os << ",\"count\":" << h.count << ",\"sum\":" << h.sum << ",\"p50\":"
       << h.p50 << ",\"p95\":" << h.p95 << ",\"p99\":" << h.p99 << "}\n";
  }
}

void Registry::WriteJsonObject(std::ostream& os) const {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : CounterSnapshot()) {
    if (!first) os << ",";
    first = false;
    WriteJsonString(os, name);
    os << ":" << value;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : HistogramSnapshot()) {
    if (!first) os << ",";
    first = false;
    WriteJsonString(os, name);
    os << ":{\"count\":" << h.count << ",\"sum\":" << h.sum << ",\"p50\":"
       << h.p50 << ",\"p95\":" << h.p95 << ",\"p99\":" << h.p99 << "}";
  }
  os << "}}";
}

void Registry::WritePrometheus(std::ostream& os) const {
  // Prometheus metric names allow [a-zA-Z0-9_:]; map everything else (the
  // '/' in our subsystem/op convention, mostly) to '_'.
  auto sanitize = [](const std::string& name) {
    std::string out = "xai_";
    for (char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
      out.push_back(ok ? c : '_');
    }
    return out;
  };
  for (const auto& [name, value] : CounterSnapshot()) {
    const std::string metric = sanitize(name) + "_total";
    os << "# TYPE " << metric << " counter\n"
       << metric << " " << value << "\n";
  }
  for (const auto& [name, h] : HistogramSnapshot()) {
    const std::string metric = sanitize(name);
    os << "# TYPE " << metric << " summary\n"
       << metric << "{quantile=\"0.5\"} " << h.p50 << "\n"
       << metric << "{quantile=\"0.95\"} " << h.p95 << "\n"
       << metric << "{quantile=\"0.99\"} " << h.p99 << "\n"
       << metric << "_sum " << h.sum << "\n"
       << metric << "_count " << h.count << "\n";
  }
}

void Registry::WriteChromeTrace(std::ostream& os) const {
  std::vector<TraceEvent> events;
  internal::CollectTraceEvents(&events);
  const TraceStats stats = internal::GetTraceStats();
  // Chrome sorts by ts; emit in recorded order with ts relative to the
  // registry epoch so traces start near zero.
  int64_t epoch = epoch_ns_.load();
  os << "{\"otherData\":{\"dropped_events\":" << stats.dropped_events
     << ",\"retained_dropped\":" << stats.retained_dropped
     << ",\"buffer_capacity_per_thread\":" << stats.buffer_capacity
     << ",\"retained_capacity\":" << stats.retained_capacity
     << ",\"num_thread_buffers\":" << stats.num_thread_buffers
     << ",\"clear_epoch\":" << stats.clear_epoch
     << ",\"sample_rate\":" << TraceSampleRate() << "},\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":";
    WriteJsonString(os, e.name);
    os << ",\"ph\":\"X\",\"cat\":\"xai\",\"pid\":1,\"tid\":" << e.tid
       << ",\"ts\":" << static_cast<double>(e.start_ns - epoch) / 1e3
       << ",\"dur\":" << static_cast<double>(e.duration_ns) / 1e3;
    if (e.trace_id != 0) {
      // 64-bit ids as decimal strings: JSON numbers are doubles and would
      // silently round ids above 2^53.
      os << ",\"args\":{\"trace_id\":\"" << e.trace_id << "\",\"span_id\":\""
         << e.span_id << "\",\"parent_span_id\":\"" << e.parent_span_id
         << "\"}";
    }
    os << "}";
  }
  os << "]}";
}

int64_t Registry::ElapsedNanos() const {
  return MonotonicNanos() - epoch_ns_.load();
}

// ---------------------------------------------------------------------------
// Example-binary helpers

bool TelemetryFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--telemetry") == 0) return true;
  return false;
}

std::string SummaryLine() {
  Registry& registry = Registry::Global();
  auto counters = registry.CounterSnapshot();
  auto histograms = registry.HistogramSnapshot();
  int64_t evals = 0;
  if (auto it = counters.find("model/evals"); it != counters.end())
    evals = it->second;

  // Top-3 spans by total recorded time.
  std::vector<std::pair<std::string, HistogramStats>> spans(
      histograms.begin(), histograms.end());
  std::sort(spans.begin(), spans.end(), [](const auto& a, const auto& b) {
    return a.second.sum > b.second.sum;
  });

  std::ostringstream os;
  os << "[telemetry] model evals=" << evals << " wall_ms="
     << static_cast<double>(registry.ElapsedNanos()) / 1e6 << " top spans:";
  int shown = 0;
  for (const auto& [name, stats] : spans) {
    if (stats.count == 0 || shown == 3) break;
    os << (shown ? ", " : " ") << name << "="
       << static_cast<double>(stats.sum) / 1e6 << "ms/" << stats.count
       << "x";
    ++shown;
  }
  if (shown == 0) os << " (none)";

  // Serving-layer line, only when the process actually served requests
  // (examples that never touch xai_serve keep the one-line summary).
  auto counter = [&](const char* name) -> int64_t {
    auto it = counters.find(name);
    return it != counters.end() ? it->second : 0;
  };
  if (int64_t requests = counter("serve/requests"); requests > 0) {
    os << "\n[telemetry] serve: requests=" << requests
       << " cache_hits=" << counter("serve/cache_hits")
       << " cache_misses=" << counter("serve/cache_misses")
       << " degraded=" << counter("serve/degraded_requests")
       << " deadline_misses=" << counter("serve/deadline_misses");
    if (auto it = histograms.find("serve/queue_depth");
        it != histograms.end() && it->second.count > 0)
      os << " queue_depth_p95=" << it->second.p95;
  }

  // Truncated traces must be visible, not silent: surface buffer drops the
  // same way the Chrome-trace otherData header does.
  const TraceStats trace_stats = internal::GetTraceStats();
  if (trace_stats.dropped_events > 0 || trace_stats.retained_dropped > 0) {
    os << "\n[telemetry] trace: dropped_events="
       << trace_stats.dropped_events
       << " retained_dropped=" << trace_stats.retained_dropped
       << " (buffer capacity " << trace_stats.buffer_capacity
       << " events/thread x " << trace_stats.num_thread_buffers
       << " threads; raise XAI_TRACE_SAMPLE granularity or export more "
          "often)";
  }
  return os.str();
}

}  // namespace telemetry
}  // namespace xai
