#ifndef XAI_CORE_JSON_H_
#define XAI_CORE_JSON_H_

#include <ostream>
#include <string_view>

namespace xai {
namespace json {

/// \brief Minimal JSON writing helpers shared by every emitter in the tree
/// (telemetry registry dumps, Chrome traces, bench run reports). One
/// definition of string escaping instead of a per-caller copy-paste: the
/// telemetry and bench writers previously each carried their own — and they
/// had already drifted (one dropped \t and control characters).

/// Writes `s` as a JSON string literal: surrounding quotes, with `"`, `\`,
/// newline and tab escaped and other control characters replaced by a space
/// (names here are short identifiers; lossless \u escapes are not needed).
void WriteString(std::ostream& os, std::string_view s);

}  // namespace json
}  // namespace xai

#endif  // XAI_CORE_JSON_H_
