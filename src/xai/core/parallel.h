#ifndef XAI_CORE_PARALLEL_H_
#define XAI_CORE_PARALLEL_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

namespace xai {
namespace core {

/// \brief Deterministic parallel execution runtime.
///
/// A fixed-size thread pool plus chunked ParallelFor / ParallelReduce
/// helpers. Determinism is the design constraint: chunk boundaries depend
/// only on (n, grain) — never on the thread count — and ParallelReduce
/// combines per-chunk partials in ascending chunk order on the calling
/// thread. Together with per-chunk RNG streams (SplitSeed in core/rng.h)
/// this makes every parallel explainer bit-identical at 1 and N threads.
///
/// Callables submitted here run concurrently: anything they touch (models
/// via Predict/PredictBatch, PredictFn lambdas, CoalitionGame::Value,
/// UtilityFn) must be const-reentrant. See the threading contract in
/// model/model.h.

/// Number of hardware threads (always >= 1).
int HardwareConcurrency();

/// Resizes the global worker pool to `n` threads (clamped to >= 1). With
/// n == 1 every ParallelFor runs inline on the calling thread and the pool
/// is bypassed entirely. The initial value comes from the XAI_NUM_THREADS
/// environment variable, defaulting to HardwareConcurrency(). Must not be
/// called from inside a parallel region.
void SetNumThreads(int n);

/// Current pool size (>= 1).
int GetNumThreads();

/// True on a pool worker thread or on a caller participating in its own
/// parallel region. Nested ParallelFor calls run inline serially.
bool InParallelRegion();

namespace internal {

/// Runs chunk_fn(c) for every c in [0, num_chunks), distributing chunks
/// over the pool. The calling thread participates. The first exception
/// thrown by any chunk is rethrown on the calling thread after all workers
/// quiesce; remaining chunks are skipped once an exception is recorded.
void RunChunks(int64_t num_chunks,
               const std::function<void(int64_t)>& chunk_fn);

}  // namespace internal

/// Chunked parallel loop over [0, n). `body(begin, end, chunk)` handles the
/// half-open index range of chunk `chunk` (= [chunk*grain, ...)). Chunk
/// layout depends only on (n, grain), so writes keyed by index or chunk are
/// deterministic regardless of the thread count. Bodies touching shared
/// mutable state must synchronize (and forfeit determinism).
template <typename Body>
void ParallelFor(int64_t n, int64_t grain, const Body& body) {
  // Explainers capture models/games by reference into these bodies; the
  // callable itself must be invocable from any worker thread.
  static_assert(std::is_invocable_v<const Body&, int64_t, int64_t, int64_t>,
                "ParallelFor body must be callable as "
                "body(int64_t begin, int64_t end, int64_t chunk)");
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  const int64_t num_chunks = (n + grain - 1) / grain;
  internal::RunChunks(num_chunks, [&](int64_t c) {
    const int64_t begin = c * grain;
    const int64_t end = std::min(n, begin + grain);
    body(begin, end, c);
  });
}

/// Ordered parallel reduction over [0, n): `map(begin, end, chunk)` produces
/// one partial per chunk; `combine(acc, partial)` folds the partials in
/// ascending chunk order on the calling thread. Because both the chunking
/// and the fold order are independent of the thread count, the result is
/// bit-identical for any pool size (floating-point summation order
/// included).
template <typename T, typename Map, typename Combine>
T ParallelReduce(int64_t n, int64_t grain, T init, const Map& map,
                 const Combine& combine) {
  static_assert(std::is_invocable_r_v<T, const Map&, int64_t, int64_t,
                                      int64_t>,
                "ParallelReduce map must be callable as "
                "T map(int64_t begin, int64_t end, int64_t chunk)");
  static_assert(std::is_invocable_r_v<T, const Combine&, T, const T&>,
                "ParallelReduce combine must be callable as "
                "T combine(T acc, const T& partial)");
  if (n <= 0) return init;
  if (grain < 1) grain = 1;
  const int64_t num_chunks = (n + grain - 1) / grain;
  std::vector<T> partials(static_cast<size_t>(num_chunks), init);
  ParallelFor(n, grain, [&](int64_t begin, int64_t end, int64_t chunk) {
    partials[static_cast<size_t>(chunk)] = map(begin, end, chunk);
  });
  T acc = std::move(init);
  for (T& partial : partials) acc = combine(std::move(acc), partial);
  return acc;
}

}  // namespace core

// The runtime lives in xai::core (it is infrastructure, not an explainer),
// but call sites across the library use the unqualified names.
using core::GetNumThreads;
using core::HardwareConcurrency;
using core::InParallelRegion;
using core::ParallelFor;
using core::ParallelReduce;
using core::SetNumThreads;

}  // namespace xai

#endif  // XAI_CORE_PARALLEL_H_
