#include "xai/core/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define XAI_SIMD_X86 1
#include <immintrin.h>
#else
#define XAI_SIMD_X86 0
#endif

namespace xai {
namespace simd {

// ---------------------------------------------------------------------------
// Backend selection.
// ---------------------------------------------------------------------------

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kAvx2:
      return "avx2";
    case Backend::kSse2:
      return "sse2";
    case Backend::kScalar:
      return "scalar";
  }
  return "unknown";
}

Backend MaxSupported() {
#if XAI_SIMD_X86
  // SSE2 is architectural on x86-64; AVX2 needs a CPUID probe.
  if (__builtin_cpu_supports("avx2")) return Backend::kAvx2;
  return Backend::kSse2;
#else
  return Backend::kScalar;
#endif
}

namespace {

Backend ClampToSupported(Backend backend) {
  Backend max = MaxSupported();
  return static_cast<int>(backend) > static_cast<int>(max) ? max : backend;
}

Backend InitialBackend() {
  if (const char* env = std::getenv("XAI_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) return Backend::kScalar;
    if (std::strcmp(env, "sse2") == 0) return ClampToSupported(Backend::kSse2);
    if (std::strcmp(env, "avx2") == 0) return ClampToSupported(Backend::kAvx2);
    // Unrecognized values fall through to auto-detection.
  }
  return MaxSupported();
}

// Relaxed atomic so TSan-clean to read from worker threads; written only at
// startup and from SetBackend (documented non-concurrent with kernels).
std::atomic<Backend>& ActiveSlot() {
  static std::atomic<Backend> active{InitialBackend()};
  return active;
}

}  // namespace

Backend Active() { return ActiveSlot().load(std::memory_order_relaxed); }

Backend SetBackend(Backend backend) {
  Backend applied = ClampToSupported(backend);
  ActiveSlot().store(applied, std::memory_order_relaxed);
  return applied;
}

// ---------------------------------------------------------------------------
// Scalar backend: the reference for the 4-wide stripe contract. Every other
// backend must reproduce these exact per-lane IEEE operation chains.
//
// Auto-vectorization is disabled on these functions: the stripe layout is
// exactly what the compiler's vectorizer looks for, and letting it fire
// would silently turn the "scalar" backend into an unlabeled SSE2 backend —
// the XAI_SIMD=scalar CI job and the scalar-vs-dispatched A/B in bench_e21
// both need a genuinely scalar baseline. Results are unaffected either way
// (same IEEE operations in the same order).
// ---------------------------------------------------------------------------

#if defined(__GNUC__) && !defined(__clang__)
#define XAI_SIMD_NOVEC \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define XAI_SIMD_NOVEC
#endif

namespace {

XAI_SIMD_NOVEC double DotScalar(const double* a, const double* b, size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  // Tail lanes r = 0..n-i-1 extend stripe lane r, as in the contract.
  if (i < n) acc0 += a[i] * b[i];
  if (i + 1 < n) acc1 += a[i + 1] * b[i + 1];
  if (i + 2 < n) acc2 += a[i + 2] * b[i + 2];
  return (acc0 + acc1) + (acc2 + acc3);
}

XAI_SIMD_NOVEC void AxpyScalar(double s, const double* x, double* y,
                               size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += s * x[i];
}

XAI_SIMD_NOVEC double SsdScalar(const double* a, const double* b, size_t n,
                                const double* w) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  if (w == nullptr) {
    for (; i + 4 <= n; i += 4) {
      double d0 = a[i] - b[i];
      double d1 = a[i + 1] - b[i + 1];
      double d2 = a[i + 2] - b[i + 2];
      double d3 = a[i + 3] - b[i + 3];
      acc0 += d0 * d0;
      acc1 += d1 * d1;
      acc2 += d2 * d2;
      acc3 += d3 * d3;
    }
    for (size_t r = 0; i + r < n; ++r) {
      double d = a[i + r] - b[i + r];
      double sq = d * d;
      if (r == 0) acc0 += sq;
      if (r == 1) acc1 += sq;
      if (r == 2) acc2 += sq;
    }
  } else {
    for (; i + 4 <= n; i += 4) {
      double d0 = a[i] - b[i];
      double d1 = a[i + 1] - b[i + 1];
      double d2 = a[i + 2] - b[i + 2];
      double d3 = a[i + 3] - b[i + 3];
      acc0 += (d0 * d0) * w[i];
      acc1 += (d1 * d1) * w[i + 1];
      acc2 += (d2 * d2) * w[i + 2];
      acc3 += (d3 * d3) * w[i + 3];
    }
    for (size_t r = 0; i + r < n; ++r) {
      double d = a[i + r] - b[i + r];
      double sq = (d * d) * w[i + r];
      if (r == 0) acc0 += sq;
      if (r == 1) acc1 += sq;
      if (r == 2) acc2 += sq;
    }
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

// Shared i/j edge handling for Gemm: plain per-element loops with the same
// ascending-k accumulation chain as the blocked kernels.
XAI_SIMD_NOVEC void GemmEdgeScalar(int i_begin, int i_end, int j_begin,
                                   int j_end, int k, const double* a, int lda,
                                   const double* b, int ldb, double* c,
                                   int ldc) {
  for (int i = i_begin; i < i_end; ++i) {
    const double* arow = a + static_cast<size_t>(i) * lda;
    double* crow = c + static_cast<size_t>(i) * ldc;
    for (int p = 0; p < k; ++p) {
      double aik = arow[p];
      const double* brow = b + static_cast<size_t>(p) * ldb;
      for (int j = j_begin; j < j_end; ++j) crow[j] += aik * brow[j];
    }
  }
}

XAI_SIMD_NOVEC void GemmScalar(int m, int n, int k, const double* a, int lda,
                               const double* b, int ldb, double* c, int ldc) {
  GemmEdgeScalar(0, m, 0, n, k, a, lda, b, ldb, c, ldc);
}

XAI_SIMD_NOVEC void GemmTNScalar(int m, int n, int k, const double* a,
                                 int lda, const double* b, int ldb, double* c,
                                 int ldc) {
  for (int p = 0; p < k; ++p) {
    const double* arow = a + static_cast<size_t>(p) * lda;
    const double* brow = b + static_cast<size_t>(p) * ldb;
    for (int i = 0; i < m; ++i) {
      AxpyScalar(arow[i], brow, c + static_cast<size_t>(i) * ldc, n);
    }
  }
}

XAI_SIMD_NOVEC void WeightedOuterScalar(double w, const double* row, int d,
                                        double* g, int stride) {
  for (int a = 0; a < d; ++a) {
    double s = w * row[a];
    AxpyScalar(s, row + a, g + static_cast<size_t>(a) * stride + a, d - a);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// SSE2 backend: the 4-wide stripe as two 2-lane halves. SSE2 is baseline on
// x86-64, so these functions need no target attribute.
// ---------------------------------------------------------------------------

#if XAI_SIMD_X86
namespace {

double DotSse2(const double* a, const double* b, size_t n) {
  __m128d acc01 = _mm_setzero_pd();  // Stripe lanes 0, 1.
  __m128d acc23 = _mm_setzero_pd();  // Stripe lanes 2, 3.
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(_mm_loadu_pd(a + i),
                                         _mm_loadu_pd(b + i)));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(_mm_loadu_pd(a + i + 2),
                                         _mm_loadu_pd(b + i + 2)));
  }
  double acc[4];
  _mm_storeu_pd(acc, acc01);
  _mm_storeu_pd(acc + 2, acc23);
  for (size_t r = 0; i + r < n; ++r) acc[r] += a[i + r] * b[i + r];
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

void AxpySse2(double s, const double* x, double* y, size_t n) {
  __m128d vs = _mm_set1_pd(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_pd(y + i, _mm_add_pd(_mm_loadu_pd(y + i),
                                    _mm_mul_pd(vs, _mm_loadu_pd(x + i))));
    _mm_storeu_pd(
        y + i + 2,
        _mm_add_pd(_mm_loadu_pd(y + i + 2),
                   _mm_mul_pd(vs, _mm_loadu_pd(x + i + 2))));
  }
  for (; i < n; ++i) y[i] += s * x[i];
}

double SsdSse2(const double* a, const double* b, size_t n, const double* w) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  size_t i = 0;
  if (w == nullptr) {
    for (; i + 4 <= n; i += 4) {
      __m128d d01 = _mm_sub_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i));
      __m128d d23 =
          _mm_sub_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2));
      acc01 = _mm_add_pd(acc01, _mm_mul_pd(d01, d01));
      acc23 = _mm_add_pd(acc23, _mm_mul_pd(d23, d23));
    }
  } else {
    for (; i + 4 <= n; i += 4) {
      __m128d d01 = _mm_sub_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i));
      __m128d d23 =
          _mm_sub_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2));
      acc01 = _mm_add_pd(
          acc01, _mm_mul_pd(_mm_mul_pd(d01, d01), _mm_loadu_pd(w + i)));
      acc23 = _mm_add_pd(
          acc23, _mm_mul_pd(_mm_mul_pd(d23, d23), _mm_loadu_pd(w + i + 2)));
    }
  }
  double acc[4];
  _mm_storeu_pd(acc, acc01);
  _mm_storeu_pd(acc + 2, acc23);
  for (size_t r = 0; i + r < n; ++r) {
    double d = a[i + r] - b[i + r];
    double sq = d * d;
    acc[r] += w == nullptr ? sq : sq * w[i + r];
  }
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

void GemmSse2(int m, int n, int k, const double* a, int lda, const double* b,
              int ldb, double* c, int ldc) {
  // 2 rows x 4 cols register tile; k ascending per C element.
  const int m2 = m & ~1;
  const int n4 = n & ~3;
  for (int i = 0; i < m2; i += 2) {
    const double* a0 = a + static_cast<size_t>(i) * lda;
    const double* a1 = a0 + lda;
    double* c0 = c + static_cast<size_t>(i) * ldc;
    double* c1 = c0 + ldc;
    for (int j = 0; j < n4; j += 4) {
      __m128d c00 = _mm_loadu_pd(c0 + j);
      __m128d c01 = _mm_loadu_pd(c0 + j + 2);
      __m128d c10 = _mm_loadu_pd(c1 + j);
      __m128d c11 = _mm_loadu_pd(c1 + j + 2);
      for (int p = 0; p < k; ++p) {
        const double* brow = b + static_cast<size_t>(p) * ldb + j;
        __m128d b0 = _mm_loadu_pd(brow);
        __m128d b1 = _mm_loadu_pd(brow + 2);
        __m128d va0 = _mm_set1_pd(a0[p]);
        __m128d va1 = _mm_set1_pd(a1[p]);
        c00 = _mm_add_pd(c00, _mm_mul_pd(va0, b0));
        c01 = _mm_add_pd(c01, _mm_mul_pd(va0, b1));
        c10 = _mm_add_pd(c10, _mm_mul_pd(va1, b0));
        c11 = _mm_add_pd(c11, _mm_mul_pd(va1, b1));
      }
      _mm_storeu_pd(c0 + j, c00);
      _mm_storeu_pd(c0 + j + 2, c01);
      _mm_storeu_pd(c1 + j, c10);
      _mm_storeu_pd(c1 + j + 2, c11);
    }
  }
  // Edges: leftover columns for the blocked rows, then leftover rows.
  if (n4 < n) GemmEdgeScalar(0, m2, n4, n, k, a, lda, b, ldb, c, ldc);
  if (m2 < m) GemmEdgeScalar(m2, m, 0, n, k, a, lda, b, ldb, c, ldc);
}

void GemmTNSse2(int m, int n, int k, const double* a, int lda,
                const double* b, int ldb, double* c, int ldc) {
  for (int p = 0; p < k; ++p) {
    const double* arow = a + static_cast<size_t>(p) * lda;
    const double* brow = b + static_cast<size_t>(p) * ldb;
    for (int i = 0; i < m; ++i) {
      AxpySse2(arow[i], brow, c + static_cast<size_t>(i) * ldc, n);
    }
  }
}

void WeightedOuterSse2(double w, const double* row, int d, double* g,
                       int stride) {
  for (int a = 0; a < d; ++a) {
    double s = w * row[a];
    AxpySse2(s, row + a, g + static_cast<size_t>(a) * stride + a, d - a);
  }
}

}  // namespace
#endif  // XAI_SIMD_X86

// ---------------------------------------------------------------------------
// AVX2 backend. Per-function target attribute so the rest of the binary
// stays baseline-compatible. FMA is intentionally absent from the target:
// the contract is mul-then-add (two roundings), and without FMA in the ISA
// set the compiler cannot contract the intrinsics either.
// ---------------------------------------------------------------------------

#if XAI_SIMD_X86
namespace {

__attribute__((target("avx2"))) double DotAvx2(const double* a,
                                               const double* b, size_t n) {
  __m256d vacc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vacc = _mm256_add_pd(
        vacc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  double acc[4];
  _mm256_storeu_pd(acc, vacc);
  for (size_t r = 0; i + r < n; ++r) acc[r] += a[i + r] * b[i + r];
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

__attribute__((target("avx2"))) void AxpyAvx2(double s, const double* x,
                                              double* y, size_t n) {
  __m256d vs = _mm256_set1_pd(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                             _mm256_mul_pd(vs, _mm256_loadu_pd(x + i))));
  }
  for (; i < n; ++i) y[i] += s * x[i];
}

__attribute__((target("avx2"))) double SsdAvx2(const double* a,
                                               const double* b, size_t n,
                                               const double* w) {
  __m256d vacc = _mm256_setzero_pd();
  size_t i = 0;
  if (w == nullptr) {
    for (; i + 4 <= n; i += 4) {
      __m256d d = _mm256_sub_pd(_mm256_loadu_pd(a + i),
                                _mm256_loadu_pd(b + i));
      vacc = _mm256_add_pd(vacc, _mm256_mul_pd(d, d));
    }
  } else {
    for (; i + 4 <= n; i += 4) {
      __m256d d = _mm256_sub_pd(_mm256_loadu_pd(a + i),
                                _mm256_loadu_pd(b + i));
      vacc = _mm256_add_pd(
          vacc, _mm256_mul_pd(_mm256_mul_pd(d, d), _mm256_loadu_pd(w + i)));
    }
  }
  double acc[4];
  _mm256_storeu_pd(acc, vacc);
  for (size_t r = 0; i + r < n; ++r) {
    double d = a[i + r] - b[i + r];
    double sq = d * d;
    acc[r] += w == nullptr ? sq : sq * w[i + r];
  }
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

__attribute__((target("avx2"))) void GemmAvx2(int m, int n, int k,
                                              const double* a, int lda,
                                              const double* b, int ldb,
                                              double* c, int ldc) {
  // 2 rows x 8 cols register tile (4 ymm accumulators live across the full
  // k loop); k ascending per C element, so any tile shape is bit-equal.
  const int m2 = m & ~1;
  const int n8 = n & ~7;
  for (int i = 0; i < m2; i += 2) {
    const double* a0 = a + static_cast<size_t>(i) * lda;
    const double* a1 = a0 + lda;
    double* c0 = c + static_cast<size_t>(i) * ldc;
    double* c1 = c0 + ldc;
    for (int j = 0; j < n8; j += 8) {
      __m256d c00 = _mm256_loadu_pd(c0 + j);
      __m256d c01 = _mm256_loadu_pd(c0 + j + 4);
      __m256d c10 = _mm256_loadu_pd(c1 + j);
      __m256d c11 = _mm256_loadu_pd(c1 + j + 4);
      for (int p = 0; p < k; ++p) {
        const double* brow = b + static_cast<size_t>(p) * ldb + j;
        __m256d b0 = _mm256_loadu_pd(brow);
        __m256d b1 = _mm256_loadu_pd(brow + 4);
        __m256d va0 = _mm256_set1_pd(a0[p]);
        __m256d va1 = _mm256_set1_pd(a1[p]);
        c00 = _mm256_add_pd(c00, _mm256_mul_pd(va0, b0));
        c01 = _mm256_add_pd(c01, _mm256_mul_pd(va0, b1));
        c10 = _mm256_add_pd(c10, _mm256_mul_pd(va1, b0));
        c11 = _mm256_add_pd(c11, _mm256_mul_pd(va1, b1));
      }
      _mm256_storeu_pd(c0 + j, c00);
      _mm256_storeu_pd(c0 + j + 4, c01);
      _mm256_storeu_pd(c1 + j, c10);
      _mm256_storeu_pd(c1 + j + 4, c11);
    }
    // Column edge for this row pair with 4-wide tiles, then scalar.
    int j = n8;
    for (; j + 4 <= n; j += 4) {
      __m256d c00 = _mm256_loadu_pd(c0 + j);
      __m256d c10 = _mm256_loadu_pd(c1 + j);
      for (int p = 0; p < k; ++p) {
        __m256d bv = _mm256_loadu_pd(b + static_cast<size_t>(p) * ldb + j);
        c00 = _mm256_add_pd(c00, _mm256_mul_pd(_mm256_set1_pd(a0[p]), bv));
        c10 = _mm256_add_pd(c10, _mm256_mul_pd(_mm256_set1_pd(a1[p]), bv));
      }
      _mm256_storeu_pd(c0 + j, c00);
      _mm256_storeu_pd(c1 + j, c10);
    }
    if (j < n) GemmEdgeScalar(i, i + 2, j, n, k, a, lda, b, ldb, c, ldc);
  }
  if (m2 < m) GemmEdgeScalar(m2, m, 0, n, k, a, lda, b, ldb, c, ldc);
}

__attribute__((target("avx2"))) void GemmTNAvx2(int m, int n, int k,
                                                const double* a, int lda,
                                                const double* b, int ldb,
                                                double* c, int ldc) {
  for (int p = 0; p < k; ++p) {
    const double* arow = a + static_cast<size_t>(p) * lda;
    const double* brow = b + static_cast<size_t>(p) * ldb;
    for (int i = 0; i < m; ++i) {
      AxpyAvx2(arow[i], brow, c + static_cast<size_t>(i) * ldc, n);
    }
  }
}

__attribute__((target("avx2"))) void WeightedOuterAvx2(double w,
                                                       const double* row,
                                                       int d, double* g,
                                                       int stride) {
  // Two triangle rows per pass so each row[b] vector load feeds both rows a
  // and a+1. Every output element still receives exactly one multiply-add
  // per call — no reduction is involved — so blocking cannot perturb the
  // per-element accumulation chain and results stay bit-identical to the
  // other backends.
  int a = 0;
  for (; a + 1 < d; a += 2) {
    double s0 = w * row[a];
    double s1 = w * row[a + 1];
    double* g0 = g + static_cast<size_t>(a) * stride;
    double* g1 = g + static_cast<size_t>(a + 1) * stride;
    g0[a] += s0 * row[a];
    g0[a + 1] += s0 * row[a + 1];
    g1[a + 1] += s1 * row[a + 1];
    int b = a + 2;
    __m256d vs0 = _mm256_set1_pd(s0);
    __m256d vs1 = _mm256_set1_pd(s1);
    for (; b + 4 <= d; b += 4) {
      __m256d vb = _mm256_loadu_pd(row + b);
      _mm256_storeu_pd(
          g0 + b, _mm256_add_pd(_mm256_loadu_pd(g0 + b), _mm256_mul_pd(vs0, vb)));
      _mm256_storeu_pd(
          g1 + b, _mm256_add_pd(_mm256_loadu_pd(g1 + b), _mm256_mul_pd(vs1, vb)));
    }
    for (; b < d; ++b) {
      double rb = row[b];
      g0[b] += s0 * rb;
      g1[b] += s1 * rb;
    }
  }
  if (a < d) {
    double s = w * row[a];
    g[static_cast<size_t>(a) * stride + a] += s * row[a];
  }
}

}  // namespace
#endif  // XAI_SIMD_X86

// ---------------------------------------------------------------------------
// Dispatch. One branch on a relaxed atomic per kernel call; the kernels are
// large enough that the branch is noise.
// ---------------------------------------------------------------------------

double Dot(const double* a, const double* b, size_t n) {
#if XAI_SIMD_X86
  switch (Active()) {
    case Backend::kAvx2:
      return DotAvx2(a, b, n);
    case Backend::kSse2:
      return DotSse2(a, b, n);
    case Backend::kScalar:
      break;
  }
#endif
  return DotScalar(a, b, n);
}

void Axpy(double s, const double* x, double* y, size_t n) {
#if XAI_SIMD_X86
  switch (Active()) {
    case Backend::kAvx2:
      AxpyAvx2(s, x, y, n);
      return;
    case Backend::kSse2:
      AxpySse2(s, x, y, n);
      return;
    case Backend::kScalar:
      break;
  }
#endif
  AxpyScalar(s, x, y, n);
}

double ScaledSquaredDistance(const double* a, const double* b, size_t n,
                             const double* w) {
#if XAI_SIMD_X86
  switch (Active()) {
    case Backend::kAvx2:
      return SsdAvx2(a, b, n, w);
    case Backend::kSse2:
      return SsdSse2(a, b, n, w);
    case Backend::kScalar:
      break;
  }
#endif
  return SsdScalar(a, b, n, w);
}

void WeightedOuterAccumulate(double w, const double* row, int d, double* g,
                             int stride) {
#if XAI_SIMD_X86
  switch (Active()) {
    case Backend::kAvx2:
      WeightedOuterAvx2(w, row, d, g, stride);
      return;
    case Backend::kSse2:
      WeightedOuterSse2(w, row, d, g, stride);
      return;
    case Backend::kScalar:
      break;
  }
#endif
  WeightedOuterScalar(w, row, d, g, stride);
}

void Gemm(int m, int n, int k, const double* a, int lda, const double* b,
          int ldb, double* c, int ldc) {
  if (m <= 0 || n <= 0 || k <= 0) return;
#if XAI_SIMD_X86
  switch (Active()) {
    case Backend::kAvx2:
      GemmAvx2(m, n, k, a, lda, b, ldb, c, ldc);
      return;
    case Backend::kSse2:
      GemmSse2(m, n, k, a, lda, b, ldb, c, ldc);
      return;
    case Backend::kScalar:
      break;
  }
#endif
  GemmScalar(m, n, k, a, lda, b, ldb, c, ldc);
}

void GemmTN(int m, int n, int k, const double* a, int lda, const double* b,
            int ldb, double* c, int ldc) {
  if (m <= 0 || n <= 0 || k <= 0) return;
#if XAI_SIMD_X86
  switch (Active()) {
    case Backend::kAvx2:
      GemmTNAvx2(m, n, k, a, lda, b, ldb, c, ldc);
      return;
    case Backend::kSse2:
      GemmTNSse2(m, n, k, a, lda, b, ldb, c, ldc);
      return;
    case Backend::kScalar:
      break;
  }
#endif
  GemmTNScalar(m, n, k, a, lda, b, ldb, c, ldc);
}

}  // namespace simd
}  // namespace xai
