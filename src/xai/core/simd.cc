#include "xai/core/simd.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "xai/core/check.h"
#include "xai/core/parallel.h"
#include "xai/core/telemetry.h"
#include "xai/core/timer.h"

#if defined(__x86_64__) || defined(__i386__)
#define XAI_SIMD_X86 1
#include <immintrin.h>
#else
#define XAI_SIMD_X86 0
#endif

namespace xai {
namespace simd {

// ---------------------------------------------------------------------------
// Backend probing and name parsing.
// ---------------------------------------------------------------------------

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kFma:
      return "fma";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kSse2:
      return "sse2";
    case Backend::kScalar:
      return "scalar";
  }
  return "unknown";
}

Backend MaxSupported() {
#if XAI_SIMD_X86
  // SSE2 is architectural on x86-64; AVX2 needs a CPUID probe. kFma is
  // opt-in only, so the auto-detected ceiling stops at the bit-identical
  // tiers even on FMA-capable hardware.
  if (__builtin_cpu_supports("avx2")) return Backend::kAvx2;
  return Backend::kSse2;
#else
  return Backend::kScalar;
#endif
}

bool FmaSupported() {
#if XAI_SIMD_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

Backend ParseBackendName(const char* name) {
  XAI_CHECK_MSG(name != nullptr, "XAI_SIMD backend name is null");
  if (std::strcmp(name, "scalar") == 0) return Backend::kScalar;
  if (std::strcmp(name, "sse2") == 0) return Backend::kSse2;
  if (std::strcmp(name, "avx2") == 0) return Backend::kAvx2;
  if (std::strcmp(name, "fma") == 0) return Backend::kFma;
  // A typo must not silently fall back to auto-detection: whoever set
  // XAI_SIMD is running an A/B experiment and needs to know it didn't apply.
  XAI_CHECK_MSG(false, name);
  return Backend::kScalar;  // Unreachable.
}

namespace {

Backend ClampToSupported(Backend backend) {
  if (backend == Backend::kFma)
    return FmaSupported() ? Backend::kFma : MaxSupported();
  Backend max = MaxSupported();
  return static_cast<int>(backend) > static_cast<int>(max) ? max : backend;
}

Backend InitialBackend() {
  if (const char* env = std::getenv("XAI_SIMD"))
    return ClampToSupported(ParseBackendName(env));
  return MaxSupported();
}

}  // namespace

// ---------------------------------------------------------------------------
// Scalar backend: the reference for the 4-wide stripe contract. Every other
// backend (except the opt-in FMA tier) must reproduce these exact per-lane
// IEEE operation chains.
//
// Auto-vectorization is disabled on these functions: the stripe layout is
// exactly what the compiler's vectorizer looks for, and letting it fire
// would silently turn the "scalar" backend into an unlabeled SSE2 backend —
// the XAI_SIMD=scalar CI job and the scalar-vs-dispatched A/B in bench_e21
// both need a genuinely scalar baseline. Results are unaffected either way
// (same IEEE operations in the same order).
// ---------------------------------------------------------------------------

#if defined(__GNUC__) && !defined(__clang__)
#define XAI_SIMD_NOVEC \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define XAI_SIMD_NOVEC
#endif

namespace {

XAI_SIMD_NOVEC double DotScalar(const double* a, const double* b, size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  // Tail lanes r = 0..n-i-1 extend stripe lane r, as in the contract.
  if (i < n) acc0 += a[i] * b[i];
  if (i + 1 < n) acc1 += a[i + 1] * b[i + 1];
  if (i + 2 < n) acc2 += a[i + 2] * b[i + 2];
  return (acc0 + acc1) + (acc2 + acc3);
}

XAI_SIMD_NOVEC void AxpyScalar(double s, const double* x, double* y,
                               size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += s * x[i];
}

XAI_SIMD_NOVEC double SsdScalar(const double* a, const double* b, size_t n,
                                const double* w) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  if (w == nullptr) {
    for (; i + 4 <= n; i += 4) {
      double d0 = a[i] - b[i];
      double d1 = a[i + 1] - b[i + 1];
      double d2 = a[i + 2] - b[i + 2];
      double d3 = a[i + 3] - b[i + 3];
      acc0 += d0 * d0;
      acc1 += d1 * d1;
      acc2 += d2 * d2;
      acc3 += d3 * d3;
    }
    for (size_t r = 0; i + r < n; ++r) {
      double d = a[i + r] - b[i + r];
      double sq = d * d;
      if (r == 0) acc0 += sq;
      if (r == 1) acc1 += sq;
      if (r == 2) acc2 += sq;
    }
  } else {
    for (; i + 4 <= n; i += 4) {
      double d0 = a[i] - b[i];
      double d1 = a[i + 1] - b[i + 1];
      double d2 = a[i + 2] - b[i + 2];
      double d3 = a[i + 3] - b[i + 3];
      acc0 += (d0 * d0) * w[i];
      acc1 += (d1 * d1) * w[i + 1];
      acc2 += (d2 * d2) * w[i + 2];
      acc3 += (d3 * d3) * w[i + 3];
    }
    for (size_t r = 0; i + r < n; ++r) {
      double d = a[i + r] - b[i + r];
      double sq = (d * d) * w[i + r];
      if (r == 0) acc0 += sq;
      if (r == 1) acc1 += sq;
      if (r == 2) acc2 += sq;
    }
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

// Shared i/j edge handling for the direct Gemm path: plain per-element loops
// with the same ascending-k accumulation chain as the blocked kernels.
XAI_SIMD_NOVEC void GemmEdgeScalar(int i_begin, int i_end, int j_begin,
                                   int j_end, int k, const double* a, int lda,
                                   const double* b, int ldb, double* c,
                                   int ldc) {
  for (int i = i_begin; i < i_end; ++i) {
    const double* arow = a + static_cast<size_t>(i) * lda;
    double* crow = c + static_cast<size_t>(i) * ldc;
    for (int p = 0; p < k; ++p) {
      double aik = arow[p];
      const double* brow = b + static_cast<size_t>(p) * ldb;
      for (int j = j_begin; j < j_end; ++j) crow[j] += aik * brow[j];
    }
  }
}

XAI_SIMD_NOVEC void GemmScalar(int m, int n, int k, const double* a, int lda,
                               const double* b, int ldb, double* c, int ldc) {
  GemmEdgeScalar(0, m, 0, n, k, a, lda, b, ldb, c, ldc);
}

XAI_SIMD_NOVEC void GemmTNScalar(int m, int n, int k, const double* a,
                                 int lda, const double* b, int ldb, double* c,
                                 int ldc) {
  for (int p = 0; p < k; ++p) {
    const double* arow = a + static_cast<size_t>(p) * lda;
    const double* brow = b + static_cast<size_t>(p) * ldb;
    for (int i = 0; i < m; ++i) {
      AxpyScalar(arow[i], brow, c + static_cast<size_t>(i) * ldc, n);
    }
  }
}

XAI_SIMD_NOVEC void WeightedOuterScalar(double w, const double* row, int d,
                                        double* g, int stride) {
  for (int a = 0; a < d; ++a) {
    double s = w * row[a];
    AxpyScalar(s, row + a, g + static_cast<size_t>(a) * stride + a, d - a);
  }
}

// Packed micro-kernel, scalar flavor: one full MR x NR tile of C over a
// KC-long contraction, reading unit-stride panels. Accumulators live in a
// local array across the whole kc loop, so each C element carries exactly
// one ascending-p chain — the same chain as the direct path.
XAI_SIMD_NOVEC void GemmMicroScalar(int kc, const double* ap,
                                    const double* bp, double* c, int ldc) {
  double acc[kGemmMR][kGemmNR];
  for (int r = 0; r < kGemmMR; ++r)
    for (int j = 0; j < kGemmNR; ++j)
      acc[r][j] = c[static_cast<size_t>(r) * ldc + j];
  for (int p = 0; p < kc; ++p) {
    const double* brow = bp + static_cast<size_t>(p) * kGemmNR;
    const double* acol = ap + static_cast<size_t>(p) * kGemmMR;
    for (int r = 0; r < kGemmMR; ++r) {
      double av = acol[r];
      for (int j = 0; j < kGemmNR; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (int r = 0; r < kGemmMR; ++r)
    for (int j = 0; j < kGemmNR; ++j)
      c[static_cast<size_t>(r) * ldc + j] = acc[r][j];
}

// Packed edge micro-kernel (mr < MR and/or nr < NR), shared by every
// backend: loops only over the valid panel lanes so the zero padding in the
// packed buffers is never accumulated (adding a * 0.0 could flip a -0.0
// result to +0.0 and break bit-equality with the direct path).
XAI_SIMD_NOVEC void GemmMicroEdgeScalar(int kc, int mr, int nr,
                                        const double* ap, const double* bp,
                                        double* c, int ldc) {
  for (int r = 0; r < mr; ++r) {
    double* crow = c + static_cast<size_t>(r) * ldc;
    for (int p = 0; p < kc; ++p) {
      double av = ap[static_cast<size_t>(p) * kGemmMR + r];
      const double* brow = bp + static_cast<size_t>(p) * kGemmNR;
      for (int j = 0; j < nr; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// SSE2 backend: the 4-wide stripe as two 2-lane halves. SSE2 is baseline on
// x86-64, so these functions need no target attribute.
// ---------------------------------------------------------------------------

#if XAI_SIMD_X86
namespace {

double DotSse2(const double* a, const double* b, size_t n) {
  __m128d acc01 = _mm_setzero_pd();  // Stripe lanes 0, 1.
  __m128d acc23 = _mm_setzero_pd();  // Stripe lanes 2, 3.
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(_mm_loadu_pd(a + i),
                                         _mm_loadu_pd(b + i)));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(_mm_loadu_pd(a + i + 2),
                                         _mm_loadu_pd(b + i + 2)));
  }
  double acc[4];
  _mm_storeu_pd(acc, acc01);
  _mm_storeu_pd(acc + 2, acc23);
  for (size_t r = 0; i + r < n; ++r) acc[r] += a[i + r] * b[i + r];
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

void AxpySse2(double s, const double* x, double* y, size_t n) {
  __m128d vs = _mm_set1_pd(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_pd(y + i, _mm_add_pd(_mm_loadu_pd(y + i),
                                    _mm_mul_pd(vs, _mm_loadu_pd(x + i))));
    _mm_storeu_pd(
        y + i + 2,
        _mm_add_pd(_mm_loadu_pd(y + i + 2),
                   _mm_mul_pd(vs, _mm_loadu_pd(x + i + 2))));
  }
  for (; i < n; ++i) y[i] += s * x[i];
}

double SsdSse2(const double* a, const double* b, size_t n, const double* w) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  size_t i = 0;
  if (w == nullptr) {
    for (; i + 4 <= n; i += 4) {
      __m128d d01 = _mm_sub_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i));
      __m128d d23 =
          _mm_sub_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2));
      acc01 = _mm_add_pd(acc01, _mm_mul_pd(d01, d01));
      acc23 = _mm_add_pd(acc23, _mm_mul_pd(d23, d23));
    }
  } else {
    for (; i + 4 <= n; i += 4) {
      __m128d d01 = _mm_sub_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i));
      __m128d d23 =
          _mm_sub_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2));
      acc01 = _mm_add_pd(
          acc01, _mm_mul_pd(_mm_mul_pd(d01, d01), _mm_loadu_pd(w + i)));
      acc23 = _mm_add_pd(
          acc23, _mm_mul_pd(_mm_mul_pd(d23, d23), _mm_loadu_pd(w + i + 2)));
    }
  }
  double acc[4];
  _mm_storeu_pd(acc, acc01);
  _mm_storeu_pd(acc + 2, acc23);
  for (size_t r = 0; i + r < n; ++r) {
    double d = a[i + r] - b[i + r];
    double sq = d * d;
    acc[r] += w == nullptr ? sq : sq * w[i + r];
  }
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

void GemmSse2(int m, int n, int k, const double* a, int lda, const double* b,
              int ldb, double* c, int ldc) {
  // 2 rows x 4 cols register tile; k ascending per C element.
  const int m2 = m & ~1;
  const int n4 = n & ~3;
  for (int i = 0; i < m2; i += 2) {
    const double* a0 = a + static_cast<size_t>(i) * lda;
    const double* a1 = a0 + lda;
    double* c0 = c + static_cast<size_t>(i) * ldc;
    double* c1 = c0 + ldc;
    for (int j = 0; j < n4; j += 4) {
      __m128d c00 = _mm_loadu_pd(c0 + j);
      __m128d c01 = _mm_loadu_pd(c0 + j + 2);
      __m128d c10 = _mm_loadu_pd(c1 + j);
      __m128d c11 = _mm_loadu_pd(c1 + j + 2);
      for (int p = 0; p < k; ++p) {
        const double* brow = b + static_cast<size_t>(p) * ldb + j;
        __m128d b0 = _mm_loadu_pd(brow);
        __m128d b1 = _mm_loadu_pd(brow + 2);
        __m128d va0 = _mm_set1_pd(a0[p]);
        __m128d va1 = _mm_set1_pd(a1[p]);
        c00 = _mm_add_pd(c00, _mm_mul_pd(va0, b0));
        c01 = _mm_add_pd(c01, _mm_mul_pd(va0, b1));
        c10 = _mm_add_pd(c10, _mm_mul_pd(va1, b0));
        c11 = _mm_add_pd(c11, _mm_mul_pd(va1, b1));
      }
      _mm_storeu_pd(c0 + j, c00);
      _mm_storeu_pd(c0 + j + 2, c01);
      _mm_storeu_pd(c1 + j, c10);
      _mm_storeu_pd(c1 + j + 2, c11);
    }
  }
  // Edges: leftover columns for the blocked rows, then leftover rows.
  if (n4 < n) GemmEdgeScalar(0, m2, n4, n, k, a, lda, b, ldb, c, ldc);
  if (m2 < m) GemmEdgeScalar(m2, m, 0, n, k, a, lda, b, ldb, c, ldc);
}

void GemmTNSse2(int m, int n, int k, const double* a, int lda,
                const double* b, int ldb, double* c, int ldc) {
  for (int p = 0; p < k; ++p) {
    const double* arow = a + static_cast<size_t>(p) * lda;
    const double* brow = b + static_cast<size_t>(p) * ldb;
    for (int i = 0; i < m; ++i) {
      AxpySse2(arow[i], brow, c + static_cast<size_t>(i) * ldc, n);
    }
  }
}

void WeightedOuterSse2(double w, const double* row, int d, double* g,
                       int stride) {
  for (int a = 0; a < d; ++a) {
    double s = w * row[a];
    AxpySse2(s, row + a, g + static_cast<size_t>(a) * stride + a, d - a);
  }
}

// Packed 4x8 micro-kernel as two sequential 4x4 halves (8 xmm accumulators
// each — the full tile would need 16 and spill). Each half runs the whole
// kc loop, so every C element still carries one ascending-p chain.
void GemmMicroSse2(int kc, const double* ap, const double* bp, double* c,
                   int ldc) {
  double* c0 = c;
  double* c1 = c0 + ldc;
  double* c2 = c1 + ldc;
  double* c3 = c2 + ldc;
  for (int h = 0; h < kGemmNR; h += 4) {
    __m128d c00 = _mm_loadu_pd(c0 + h);
    __m128d c01 = _mm_loadu_pd(c0 + h + 2);
    __m128d c10 = _mm_loadu_pd(c1 + h);
    __m128d c11 = _mm_loadu_pd(c1 + h + 2);
    __m128d c20 = _mm_loadu_pd(c2 + h);
    __m128d c21 = _mm_loadu_pd(c2 + h + 2);
    __m128d c30 = _mm_loadu_pd(c3 + h);
    __m128d c31 = _mm_loadu_pd(c3 + h + 2);
    for (int p = 0; p < kc; ++p) {
      const double* brow = bp + static_cast<size_t>(p) * kGemmNR + h;
      const double* acol = ap + static_cast<size_t>(p) * kGemmMR;
      __m128d b0 = _mm_loadu_pd(brow);
      __m128d b1 = _mm_loadu_pd(brow + 2);
      __m128d va = _mm_set1_pd(acol[0]);
      c00 = _mm_add_pd(c00, _mm_mul_pd(va, b0));
      c01 = _mm_add_pd(c01, _mm_mul_pd(va, b1));
      va = _mm_set1_pd(acol[1]);
      c10 = _mm_add_pd(c10, _mm_mul_pd(va, b0));
      c11 = _mm_add_pd(c11, _mm_mul_pd(va, b1));
      va = _mm_set1_pd(acol[2]);
      c20 = _mm_add_pd(c20, _mm_mul_pd(va, b0));
      c21 = _mm_add_pd(c21, _mm_mul_pd(va, b1));
      va = _mm_set1_pd(acol[3]);
      c30 = _mm_add_pd(c30, _mm_mul_pd(va, b0));
      c31 = _mm_add_pd(c31, _mm_mul_pd(va, b1));
    }
    _mm_storeu_pd(c0 + h, c00);
    _mm_storeu_pd(c0 + h + 2, c01);
    _mm_storeu_pd(c1 + h, c10);
    _mm_storeu_pd(c1 + h + 2, c11);
    _mm_storeu_pd(c2 + h, c20);
    _mm_storeu_pd(c2 + h + 2, c21);
    _mm_storeu_pd(c3 + h, c30);
    _mm_storeu_pd(c3 + h + 2, c31);
  }
}

}  // namespace
#endif  // XAI_SIMD_X86

// ---------------------------------------------------------------------------
// AVX2 backend. Per-function target attribute so the rest of the binary
// stays baseline-compatible. FMA is intentionally absent from the target:
// the contract is mul-then-add (two roundings), and without FMA in the ISA
// set the compiler cannot contract the intrinsics either.
// ---------------------------------------------------------------------------

#if XAI_SIMD_X86
namespace {

__attribute__((target("avx2"))) double DotAvx2(const double* a,
                                               const double* b, size_t n) {
  __m256d vacc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vacc = _mm256_add_pd(
        vacc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  double acc[4];
  _mm256_storeu_pd(acc, vacc);
  for (size_t r = 0; i + r < n; ++r) acc[r] += a[i + r] * b[i + r];
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

__attribute__((target("avx2"))) void AxpyAvx2(double s, const double* x,
                                              double* y, size_t n) {
  __m256d vs = _mm256_set1_pd(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                             _mm256_mul_pd(vs, _mm256_loadu_pd(x + i))));
  }
  for (; i < n; ++i) y[i] += s * x[i];
}

__attribute__((target("avx2"))) double SsdAvx2(const double* a,
                                               const double* b, size_t n,
                                               const double* w) {
  __m256d vacc = _mm256_setzero_pd();
  size_t i = 0;
  if (w == nullptr) {
    for (; i + 4 <= n; i += 4) {
      __m256d d = _mm256_sub_pd(_mm256_loadu_pd(a + i),
                                _mm256_loadu_pd(b + i));
      vacc = _mm256_add_pd(vacc, _mm256_mul_pd(d, d));
    }
  } else {
    for (; i + 4 <= n; i += 4) {
      __m256d d = _mm256_sub_pd(_mm256_loadu_pd(a + i),
                                _mm256_loadu_pd(b + i));
      vacc = _mm256_add_pd(
          vacc, _mm256_mul_pd(_mm256_mul_pd(d, d), _mm256_loadu_pd(w + i)));
    }
  }
  double acc[4];
  _mm256_storeu_pd(acc, vacc);
  for (size_t r = 0; i + r < n; ++r) {
    double d = a[i + r] - b[i + r];
    double sq = d * d;
    acc[r] += w == nullptr ? sq : sq * w[i + r];
  }
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

__attribute__((target("avx2"))) void GemmAvx2(int m, int n, int k,
                                              const double* a, int lda,
                                              const double* b, int ldb,
                                              double* c, int ldc) {
  // 2 rows x 8 cols register tile (4 ymm accumulators live across the full
  // k loop); k ascending per C element, so any tile shape is bit-equal.
  const int m2 = m & ~1;
  const int n8 = n & ~7;
  for (int i = 0; i < m2; i += 2) {
    const double* a0 = a + static_cast<size_t>(i) * lda;
    const double* a1 = a0 + lda;
    double* c0 = c + static_cast<size_t>(i) * ldc;
    double* c1 = c0 + ldc;
    for (int j = 0; j < n8; j += 8) {
      __m256d c00 = _mm256_loadu_pd(c0 + j);
      __m256d c01 = _mm256_loadu_pd(c0 + j + 4);
      __m256d c10 = _mm256_loadu_pd(c1 + j);
      __m256d c11 = _mm256_loadu_pd(c1 + j + 4);
      for (int p = 0; p < k; ++p) {
        const double* brow = b + static_cast<size_t>(p) * ldb + j;
        __m256d b0 = _mm256_loadu_pd(brow);
        __m256d b1 = _mm256_loadu_pd(brow + 4);
        __m256d va0 = _mm256_set1_pd(a0[p]);
        __m256d va1 = _mm256_set1_pd(a1[p]);
        c00 = _mm256_add_pd(c00, _mm256_mul_pd(va0, b0));
        c01 = _mm256_add_pd(c01, _mm256_mul_pd(va0, b1));
        c10 = _mm256_add_pd(c10, _mm256_mul_pd(va1, b0));
        c11 = _mm256_add_pd(c11, _mm256_mul_pd(va1, b1));
      }
      _mm256_storeu_pd(c0 + j, c00);
      _mm256_storeu_pd(c0 + j + 4, c01);
      _mm256_storeu_pd(c1 + j, c10);
      _mm256_storeu_pd(c1 + j + 4, c11);
    }
    // Column edge for this row pair with 4-wide tiles, then scalar.
    int j = n8;
    for (; j + 4 <= n; j += 4) {
      __m256d c00 = _mm256_loadu_pd(c0 + j);
      __m256d c10 = _mm256_loadu_pd(c1 + j);
      for (int p = 0; p < k; ++p) {
        __m256d bv = _mm256_loadu_pd(b + static_cast<size_t>(p) * ldb + j);
        c00 = _mm256_add_pd(c00, _mm256_mul_pd(_mm256_set1_pd(a0[p]), bv));
        c10 = _mm256_add_pd(c10, _mm256_mul_pd(_mm256_set1_pd(a1[p]), bv));
      }
      _mm256_storeu_pd(c0 + j, c00);
      _mm256_storeu_pd(c1 + j, c10);
    }
    if (j < n) GemmEdgeScalar(i, i + 2, j, n, k, a, lda, b, ldb, c, ldc);
  }
  if (m2 < m) GemmEdgeScalar(m2, m, 0, n, k, a, lda, b, ldb, c, ldc);
}

__attribute__((target("avx2"))) void GemmTNAvx2(int m, int n, int k,
                                                const double* a, int lda,
                                                const double* b, int ldb,
                                                double* c, int ldc) {
  for (int p = 0; p < k; ++p) {
    const double* arow = a + static_cast<size_t>(p) * lda;
    const double* brow = b + static_cast<size_t>(p) * ldb;
    for (int i = 0; i < m; ++i) {
      AxpyAvx2(arow[i], brow, c + static_cast<size_t>(i) * ldc, n);
    }
  }
}

__attribute__((target("avx2"))) void WeightedOuterAvx2(double w,
                                                       const double* row,
                                                       int d, double* g,
                                                       int stride) {
  // Two triangle rows per pass so each row[b] vector load feeds both rows a
  // and a+1. Every output element still receives exactly one multiply-add
  // per call — no reduction is involved — so blocking cannot perturb the
  // per-element accumulation chain and results stay bit-identical to the
  // other backends.
  int a = 0;
  for (; a + 1 < d; a += 2) {
    double s0 = w * row[a];
    double s1 = w * row[a + 1];
    double* g0 = g + static_cast<size_t>(a) * stride;
    double* g1 = g + static_cast<size_t>(a + 1) * stride;
    g0[a] += s0 * row[a];
    g0[a + 1] += s0 * row[a + 1];
    g1[a + 1] += s1 * row[a + 1];
    int b = a + 2;
    __m256d vs0 = _mm256_set1_pd(s0);
    __m256d vs1 = _mm256_set1_pd(s1);
    for (; b + 4 <= d; b += 4) {
      __m256d vb = _mm256_loadu_pd(row + b);
      _mm256_storeu_pd(
          g0 + b, _mm256_add_pd(_mm256_loadu_pd(g0 + b), _mm256_mul_pd(vs0, vb)));
      _mm256_storeu_pd(
          g1 + b, _mm256_add_pd(_mm256_loadu_pd(g1 + b), _mm256_mul_pd(vs1, vb)));
    }
    for (; b < d; ++b) {
      double rb = row[b];
      g0[b] += s0 * rb;
      g1[b] += s1 * rb;
    }
  }
  if (a < d) {
    double s = w * row[a];
    g[static_cast<size_t>(a) * stride + a] += s * row[a];
  }
}

// Packed 4x8 micro-kernel: 8 ymm accumulators + 2 B vectors + 1 broadcast
// register — fits the 16-register file with room for addressing. The panels
// are unit-stride, so the only loads in the loop are two contiguous ymm
// reads of B and four scalar broadcasts of A.
__attribute__((target("avx2"))) void GemmMicroAvx2(int kc, const double* ap,
                                                   const double* bp,
                                                   double* c, int ldc) {
  double* c0 = c;
  double* c1 = c0 + ldc;
  double* c2 = c1 + ldc;
  double* c3 = c2 + ldc;
  __m256d acc00 = _mm256_loadu_pd(c0);
  __m256d acc01 = _mm256_loadu_pd(c0 + 4);
  __m256d acc10 = _mm256_loadu_pd(c1);
  __m256d acc11 = _mm256_loadu_pd(c1 + 4);
  __m256d acc20 = _mm256_loadu_pd(c2);
  __m256d acc21 = _mm256_loadu_pd(c2 + 4);
  __m256d acc30 = _mm256_loadu_pd(c3);
  __m256d acc31 = _mm256_loadu_pd(c3 + 4);
  for (int p = 0; p < kc; ++p) {
    const double* brow = bp + static_cast<size_t>(p) * kGemmNR;
    const double* acol = ap + static_cast<size_t>(p) * kGemmMR;
    __m256d b0 = _mm256_loadu_pd(brow);
    __m256d b1 = _mm256_loadu_pd(brow + 4);
    __m256d va = _mm256_set1_pd(acol[0]);
    acc00 = _mm256_add_pd(acc00, _mm256_mul_pd(va, b0));
    acc01 = _mm256_add_pd(acc01, _mm256_mul_pd(va, b1));
    va = _mm256_set1_pd(acol[1]);
    acc10 = _mm256_add_pd(acc10, _mm256_mul_pd(va, b0));
    acc11 = _mm256_add_pd(acc11, _mm256_mul_pd(va, b1));
    va = _mm256_set1_pd(acol[2]);
    acc20 = _mm256_add_pd(acc20, _mm256_mul_pd(va, b0));
    acc21 = _mm256_add_pd(acc21, _mm256_mul_pd(va, b1));
    va = _mm256_set1_pd(acol[3]);
    acc30 = _mm256_add_pd(acc30, _mm256_mul_pd(va, b0));
    acc31 = _mm256_add_pd(acc31, _mm256_mul_pd(va, b1));
  }
  _mm256_storeu_pd(c0, acc00);
  _mm256_storeu_pd(c0 + 4, acc01);
  _mm256_storeu_pd(c1, acc10);
  _mm256_storeu_pd(c1 + 4, acc11);
  _mm256_storeu_pd(c2, acc20);
  _mm256_storeu_pd(c2 + 4, acc21);
  _mm256_storeu_pd(c3, acc30);
  _mm256_storeu_pd(c3 + 4, acc31);
}

}  // namespace
#endif  // XAI_SIMD_X86

// ---------------------------------------------------------------------------
// FMA tier: AVX2 + fused multiply-add. OUTSIDE the bit-identity contract —
// one rounding per multiply-add instead of two — so these are only reachable
// through the explicit XAI_SIMD=fma / SetBackend(kFma) opt-in and are
// validated against a long-double reference by tolerance, never bitwise.
// ScaledSquaredDistance reuses the AVX2 kernel (its (a-b)^2 * w shape gains
// nothing from contraction worth a third variant).
// ---------------------------------------------------------------------------

#if XAI_SIMD_X86
namespace {

__attribute__((target("avx2,fma"))) double DotFma(const double* a,
                                                  const double* b, size_t n) {
  __m256d vacc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vacc = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           vacc);
  }
  double acc[4];
  _mm256_storeu_pd(acc, vacc);
  for (size_t r = 0; i + r < n; ++r) acc[r] += a[i + r] * b[i + r];
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

__attribute__((target("avx2,fma"))) void AxpyFma(double s, const double* x,
                                                 double* y, size_t n) {
  __m256d vs = _mm256_set1_pd(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(y + i, _mm256_fmadd_pd(vs, _mm256_loadu_pd(x + i),
                                            _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) y[i] += s * x[i];
}

__attribute__((target("avx2,fma"))) void GemmFma(int m, int n, int k,
                                                 const double* a, int lda,
                                                 const double* b, int ldb,
                                                 double* c, int ldc) {
  const int m2 = m & ~1;
  const int n8 = n & ~7;
  for (int i = 0; i < m2; i += 2) {
    const double* a0 = a + static_cast<size_t>(i) * lda;
    const double* a1 = a0 + lda;
    double* c0 = c + static_cast<size_t>(i) * ldc;
    double* c1 = c0 + ldc;
    for (int j = 0; j < n8; j += 8) {
      __m256d c00 = _mm256_loadu_pd(c0 + j);
      __m256d c01 = _mm256_loadu_pd(c0 + j + 4);
      __m256d c10 = _mm256_loadu_pd(c1 + j);
      __m256d c11 = _mm256_loadu_pd(c1 + j + 4);
      for (int p = 0; p < k; ++p) {
        const double* brow = b + static_cast<size_t>(p) * ldb + j;
        __m256d b0 = _mm256_loadu_pd(brow);
        __m256d b1 = _mm256_loadu_pd(brow + 4);
        __m256d va0 = _mm256_set1_pd(a0[p]);
        __m256d va1 = _mm256_set1_pd(a1[p]);
        c00 = _mm256_fmadd_pd(va0, b0, c00);
        c01 = _mm256_fmadd_pd(va0, b1, c01);
        c10 = _mm256_fmadd_pd(va1, b0, c10);
        c11 = _mm256_fmadd_pd(va1, b1, c11);
      }
      _mm256_storeu_pd(c0 + j, c00);
      _mm256_storeu_pd(c0 + j + 4, c01);
      _mm256_storeu_pd(c1 + j, c10);
      _mm256_storeu_pd(c1 + j + 4, c11);
    }
    int j = n8;
    for (; j + 4 <= n; j += 4) {
      __m256d c00 = _mm256_loadu_pd(c0 + j);
      __m256d c10 = _mm256_loadu_pd(c1 + j);
      for (int p = 0; p < k; ++p) {
        __m256d bv = _mm256_loadu_pd(b + static_cast<size_t>(p) * ldb + j);
        c00 = _mm256_fmadd_pd(_mm256_set1_pd(a0[p]), bv, c00);
        c10 = _mm256_fmadd_pd(_mm256_set1_pd(a1[p]), bv, c10);
      }
      _mm256_storeu_pd(c0 + j, c00);
      _mm256_storeu_pd(c1 + j, c10);
    }
    if (j < n) GemmEdgeScalar(i, i + 2, j, n, k, a, lda, b, ldb, c, ldc);
  }
  if (m2 < m) GemmEdgeScalar(m2, m, 0, n, k, a, lda, b, ldb, c, ldc);
}

__attribute__((target("avx2,fma"))) void GemmTNFma(int m, int n, int k,
                                                   const double* a, int lda,
                                                   const double* b, int ldb,
                                                   double* c, int ldc) {
  for (int p = 0; p < k; ++p) {
    const double* arow = a + static_cast<size_t>(p) * lda;
    const double* brow = b + static_cast<size_t>(p) * ldb;
    for (int i = 0; i < m; ++i) {
      AxpyFma(arow[i], brow, c + static_cast<size_t>(i) * ldc, n);
    }
  }
}

__attribute__((target("avx2,fma"))) void WeightedOuterFma(double w,
                                                          const double* row,
                                                          int d, double* g,
                                                          int stride) {
  int a = 0;
  for (; a + 1 < d; a += 2) {
    double s0 = w * row[a];
    double s1 = w * row[a + 1];
    double* g0 = g + static_cast<size_t>(a) * stride;
    double* g1 = g + static_cast<size_t>(a + 1) * stride;
    g0[a] += s0 * row[a];
    g0[a + 1] += s0 * row[a + 1];
    g1[a + 1] += s1 * row[a + 1];
    int b = a + 2;
    __m256d vs0 = _mm256_set1_pd(s0);
    __m256d vs1 = _mm256_set1_pd(s1);
    for (; b + 4 <= d; b += 4) {
      __m256d vb = _mm256_loadu_pd(row + b);
      _mm256_storeu_pd(g0 + b,
                       _mm256_fmadd_pd(vs0, vb, _mm256_loadu_pd(g0 + b)));
      _mm256_storeu_pd(g1 + b,
                       _mm256_fmadd_pd(vs1, vb, _mm256_loadu_pd(g1 + b)));
    }
    for (; b < d; ++b) {
      double rb = row[b];
      g0[b] += s0 * rb;
      g1[b] += s1 * rb;
    }
  }
  if (a < d) {
    double s = w * row[a];
    g[static_cast<size_t>(a) * stride + a] += s * row[a];
  }
}

__attribute__((target("avx2,fma"))) void GemmMicroFma(int kc,
                                                      const double* ap,
                                                      const double* bp,
                                                      double* c, int ldc) {
  double* c0 = c;
  double* c1 = c0 + ldc;
  double* c2 = c1 + ldc;
  double* c3 = c2 + ldc;
  __m256d acc00 = _mm256_loadu_pd(c0);
  __m256d acc01 = _mm256_loadu_pd(c0 + 4);
  __m256d acc10 = _mm256_loadu_pd(c1);
  __m256d acc11 = _mm256_loadu_pd(c1 + 4);
  __m256d acc20 = _mm256_loadu_pd(c2);
  __m256d acc21 = _mm256_loadu_pd(c2 + 4);
  __m256d acc30 = _mm256_loadu_pd(c3);
  __m256d acc31 = _mm256_loadu_pd(c3 + 4);
  for (int p = 0; p < kc; ++p) {
    const double* brow = bp + static_cast<size_t>(p) * kGemmNR;
    const double* acol = ap + static_cast<size_t>(p) * kGemmMR;
    __m256d b0 = _mm256_loadu_pd(brow);
    __m256d b1 = _mm256_loadu_pd(brow + 4);
    __m256d va = _mm256_set1_pd(acol[0]);
    acc00 = _mm256_fmadd_pd(va, b0, acc00);
    acc01 = _mm256_fmadd_pd(va, b1, acc01);
    va = _mm256_set1_pd(acol[1]);
    acc10 = _mm256_fmadd_pd(va, b0, acc10);
    acc11 = _mm256_fmadd_pd(va, b1, acc11);
    va = _mm256_set1_pd(acol[2]);
    acc20 = _mm256_fmadd_pd(va, b0, acc20);
    acc21 = _mm256_fmadd_pd(va, b1, acc21);
    va = _mm256_set1_pd(acol[3]);
    acc30 = _mm256_fmadd_pd(va, b0, acc30);
    acc31 = _mm256_fmadd_pd(va, b1, acc31);
  }
  _mm256_storeu_pd(c0, acc00);
  _mm256_storeu_pd(c0 + 4, acc01);
  _mm256_storeu_pd(c1, acc10);
  _mm256_storeu_pd(c1 + 4, acc11);
  _mm256_storeu_pd(c2, acc20);
  _mm256_storeu_pd(c2 + 4, acc21);
  _mm256_storeu_pd(c3, acc30);
  _mm256_storeu_pd(c3 + 4, acc31);
}

}  // namespace
#endif  // XAI_SIMD_X86

// ---------------------------------------------------------------------------
// Dispatch: one function-pointer table per backend, resolved once per
// SetBackend() / XAI_SIMD read and published through a single relaxed
// atomic. Kernel entry points are one indirect call — no per-call backend
// branch survives into the GEMM inner loops.
// ---------------------------------------------------------------------------

namespace {

using DotFn = double (*)(const double*, const double*, size_t);
using AxpyFn = void (*)(double, const double*, double*, size_t);
using SsdFn = double (*)(const double*, const double*, size_t,
                         const double*);
using WouterFn = void (*)(double, const double*, int, double*, int);
using GemmFn = void (*)(int, int, int, const double*, int, const double*,
                        int, double*, int);
using MicroFn = void (*)(int, const double*, const double*, double*, int);

struct KernelTable {
  Backend backend;
  DotFn dot;
  AxpyFn axpy;
  SsdFn ssd;
  WouterFn wouter;
  GemmFn gemm_direct;
  GemmFn gemm_tn_direct;
  MicroFn micro;
};

constexpr KernelTable kScalarTable = {
    Backend::kScalar, DotScalar,    AxpyScalar,   SsdScalar,
    WeightedOuterScalar, GemmScalar, GemmTNScalar, GemmMicroScalar};

#if XAI_SIMD_X86
constexpr KernelTable kSse2Table = {
    Backend::kSse2,     DotSse2,  AxpySse2,   SsdSse2,
    WeightedOuterSse2, GemmSse2, GemmTNSse2, GemmMicroSse2};

constexpr KernelTable kAvx2Table = {
    Backend::kAvx2,     DotAvx2,  AxpyAvx2,   SsdAvx2,
    WeightedOuterAvx2, GemmAvx2, GemmTNAvx2, GemmMicroAvx2};

constexpr KernelTable kFmaTable = {
    Backend::kFma,     DotFma,  AxpyFma,   SsdAvx2,
    WeightedOuterFma, GemmFma, GemmTNFma, GemmMicroFma};
#endif

const KernelTable* TableFor(Backend backend) {
#if XAI_SIMD_X86
  switch (backend) {
    case Backend::kFma:
      return &kFmaTable;
    case Backend::kAvx2:
      return &kAvx2Table;
    case Backend::kSse2:
      return &kSse2Table;
    case Backend::kScalar:
      return &kScalarTable;
  }
#endif
  return &kScalarTable;
}

// Relaxed atomic so TSan-clean to read from worker threads; written only at
// startup and from SetBackend (documented non-concurrent with kernels).
std::atomic<const KernelTable*>& ActiveSlot() {
  static std::atomic<const KernelTable*> active{TableFor(InitialBackend())};
  return active;
}

const KernelTable& ActiveTable() {
  return *ActiveSlot().load(std::memory_order_relaxed);
}

}  // namespace

Backend Active() { return ActiveTable().backend; }

Backend SetBackend(Backend backend) {
  Backend applied = ClampToSupported(backend);
  ActiveSlot().store(TableFor(applied), std::memory_order_relaxed);
  return applied;
}

// ---------------------------------------------------------------------------
// Packed / cache-blocked / multithreaded GEMM driver, shared by the NN and
// TN orientations (they differ only in how A panels are gathered).
//
// Blocking (BLIS-style): the contraction dimension is cut into KC slices
// processed serially in ascending order — this is what keeps every C
// element's accumulation chain in ascending-k order and therefore bit-equal
// to the direct kernels on the default tiers. Within a KC slice, B columns
// are cut into NC blocks packed once into KC x NR panels, and C rows into MC
// blocks distributed over ParallelFor. Row blocks are disjoint in C, so the
// parallel partitioning is race-free and the result is independent of the
// thread count by construction.
//
// Footprints: one A panel (MR x KC = 8 KB) stays hot in L1 across the jp
// sweep; a packed A block (MC x KC = 256 KB) sits in L2; a packed B block
// (KC x NC <= 4 MB) streams from L3, one 16 KB KC x NR panel at a time.
// ---------------------------------------------------------------------------

namespace {

constexpr int kBlockKC = 256;
constexpr int kBlockMC = 128;
constexpr int kBlockNC = 2048;

// `upper_only` (valid for square outputs) skips every register tile that
// lies entirely below the diagonal — the syrk-style mode WlsAccumulator
// uses for Gram updates, where only C[a][b] with b >= a is ever read.
// Tiles straddling the diagonal are computed in full; their below-diagonal
// elements carry ordinary GemmTN chains that callers must not read.
void GemmPackedImpl(bool transpose_a, bool upper_only, int m, int n, int k,
                    const double* a, int lda, const double* b, int ldb,
                    double* c, int ldc) {
  const KernelTable& table = ActiveTable();
  std::vector<double> bpack;
  std::atomic<int64_t> pack_ns{0};
  for (int p0 = 0; p0 < k; p0 += kBlockKC) {
    const int kc = std::min(kBlockKC, k - p0);
    for (int j0 = 0; j0 < n; j0 += kBlockNC) {
      const int nc = std::min(kBlockNC, n - j0);
      const int jpanels = (nc + kGemmNR - 1) / kGemmNR;
      WallTimer bpack_timer;
      // Zero-filled so the padding lanes of a partial panel hold defined
      // values; the edge micro-kernel never reads them (see above).
      bpack.assign(static_cast<size_t>(jpanels) * kc * kGemmNR, 0.0);
      for (int jp = 0; jp < jpanels; ++jp) {
        const int jj = jp * kGemmNR;
        const int nr = std::min(kGemmNR, nc - jj);
        double* dst = bpack.data() + static_cast<size_t>(jp) * kc * kGemmNR;
        const double* src = b + static_cast<size_t>(p0) * ldb + j0 + jj;
        for (int p = 0; p < kc; ++p) {
          const double* srow = src + static_cast<size_t>(p) * ldb;
          double* drow = dst + static_cast<size_t>(p) * kGemmNR;
          for (int l = 0; l < nr; ++l) drow[l] = srow[l];
        }
      }
      pack_ns.fetch_add(bpack_timer.Nanos(), std::memory_order_relaxed);
      const int num_mblocks = (m + kBlockMC - 1) / kBlockMC;
      ParallelFor(num_mblocks, 1, [&](int64_t begin, int64_t end, int64_t) {
        std::vector<double> apack;
        for (int64_t mb = begin; mb < end; ++mb) {
          const int i0 = static_cast<int>(mb) * kBlockMC;
          const int mc = std::min(kBlockMC, m - i0);
          const int ipanels = (mc + kGemmMR - 1) / kGemmMR;
          WallTimer apack_timer;
          apack.assign(static_cast<size_t>(ipanels) * kc * kGemmMR, 0.0);
          for (int ip = 0; ip < ipanels; ++ip) {
            const int ii = ip * kGemmMR;
            const int mr = std::min(kGemmMR, mc - ii);
            double* dst =
                apack.data() + static_cast<size_t>(ip) * kc * kGemmMR;
            if (transpose_a) {
              // A is k x m: panel rows are contiguous within each A row.
              const double* src =
                  a + static_cast<size_t>(p0) * lda + i0 + ii;
              for (int p = 0; p < kc; ++p) {
                const double* srow = src + static_cast<size_t>(p) * lda;
                double* drow = dst + static_cast<size_t>(p) * kGemmMR;
                for (int r = 0; r < mr; ++r) drow[r] = srow[r];
              }
            } else {
              // A is m x k: gather column p0+p of each panel row.
              for (int r = 0; r < mr; ++r) {
                const double* srow =
                    a + static_cast<size_t>(i0 + ii + r) * lda + p0;
                for (int p = 0; p < kc; ++p)
                  dst[static_cast<size_t>(p) * kGemmMR + r] = srow[p];
              }
            }
          }
          pack_ns.fetch_add(apack_timer.Nanos(), std::memory_order_relaxed);
          for (int ip = 0; ip < ipanels; ++ip) {
            const int ii = ip * kGemmMR;
            const int mr = std::min(kGemmMR, mc - ii);
            const double* ap =
                apack.data() + static_cast<size_t>(ip) * kc * kGemmMR;
            double* crow = c + static_cast<size_t>(i0 + ii) * ldc + j0;
            for (int jp = 0; jp < jpanels; ++jp) {
              const int jj = jp * kGemmNR;
              const int nr = std::min(kGemmNR, nc - jj);
              if (upper_only && j0 + jj + nr <= i0 + ii) continue;
              const double* bp =
                  bpack.data() + static_cast<size_t>(jp) * kc * kGemmNR;
              if (mr == kGemmMR && nr == kGemmNR)
                table.micro(kc, ap, bp, crow + jj, ldc);
              else
                GemmMicroEdgeScalar(kc, mr, nr, ap, bp, crow + jj, ldc);
            }
          }
        }
      });
    }
  }
  XAI_HISTOGRAM_RECORD("linalg/gemm_pack_us",
                       pack_ns.load(std::memory_order_relaxed) / 1000);
}

// Per-backend flop counters: the telemetry names are compile-time literals,
// hence one macro site per tier. Divided by a span's wall time these give
// the flop-rate-vs-peak gap bench_micro_kernels tracks.
void CountGemmFlops(Backend backend, int m, int n, int k) {
  const long long flops = 2LL * m * n * k;
  switch (backend) {
    case Backend::kFma:
      XAI_COUNTER_ADD("linalg/gemm_flops_fma", flops);
      break;
    case Backend::kAvx2:
      XAI_COUNTER_ADD("linalg/gemm_flops_avx2", flops);
      break;
    case Backend::kSse2:
      XAI_COUNTER_ADD("linalg/gemm_flops_sse2", flops);
      break;
    case Backend::kScalar:
      XAI_COUNTER_ADD("linalg/gemm_flops_scalar", flops);
      break;
  }
}

// Packing pays for itself once the contraction is deep enough to reuse each
// packed panel and the output is at least a few tiles; below that the
// direct kernels win on pure overhead. Both sides of the split are
// bit-identical on the default tiers, so the threshold is a pure
// performance knob.
bool UsePacked(int m, int n, int k) {
  if (m < 2 * kGemmMR || n < kGemmNR || k < 32) return false;
  return 2.0 * m * n * k >= 2.5e5;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public kernel entry points.
// ---------------------------------------------------------------------------

double Dot(const double* a, const double* b, size_t n) {
  return ActiveTable().dot(a, b, n);
}

void Axpy(double s, const double* x, double* y, size_t n) {
  ActiveTable().axpy(s, x, y, n);
}

double ScaledSquaredDistance(const double* a, const double* b, size_t n,
                             const double* w) {
  return ActiveTable().ssd(a, b, n, w);
}

void WeightedOuterAccumulate(double w, const double* row, int d, double* g,
                             int stride) {
  ActiveTable().wouter(w, row, d, g, stride);
}

void GemmDirect(int m, int n, int k, const double* a, int lda,
                const double* b, int ldb, double* c, int ldc) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  const KernelTable& table = ActiveTable();
  CountGemmFlops(table.backend, m, n, k);
  table.gemm_direct(m, n, k, a, lda, b, ldb, c, ldc);
}

void GemmTNDirect(int m, int n, int k, const double* a, int lda,
                  const double* b, int ldb, double* c, int ldc) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  const KernelTable& table = ActiveTable();
  CountGemmFlops(table.backend, m, n, k);
  table.gemm_tn_direct(m, n, k, a, lda, b, ldb, c, ldc);
}

void GemmPacked(int m, int n, int k, const double* a, int lda,
                const double* b, int ldb, double* c, int ldc) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  CountGemmFlops(Active(), m, n, k);
  GemmPackedImpl(/*transpose_a=*/false, /*upper_only=*/false, m, n, k, a,
                 lda, b, ldb, c, ldc);
}

void GemmTNPacked(int m, int n, int k, const double* a, int lda,
                  const double* b, int ldb, double* c, int ldc) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  CountGemmFlops(Active(), m, n, k);
  GemmPackedImpl(/*transpose_a=*/true, /*upper_only=*/false, m, n, k, a, lda,
                 b, ldb, c, ldc);
}

void GemmTNUpper(int dim, int k, const double* a, int lda, const double* b,
                 int ldb, double* c, int ldc) {
  if (dim <= 0 || k <= 0) return;
  if (UsePacked(dim, dim, k)) {
    // Roughly half the flops of the full product reach the micro-kernels.
    CountGemmFlops(Active(), dim, (dim + 1) / 2, k);
    GemmPackedImpl(/*transpose_a=*/true, /*upper_only=*/true, dim, dim, k, a,
                   lda, b, ldb, c, ldc);
  } else {
    // The direct kernel computes the full product; the upper triangle
    // carries the same chains, the rest is wasted work that only matters
    // above the packing threshold.
    GemmTNDirect(dim, dim, k, a, lda, b, ldb, c, ldc);
  }
}

void Gemm(int m, int n, int k, const double* a, int lda, const double* b,
          int ldb, double* c, int ldc) {
  if (UsePacked(m, n, k))
    GemmPacked(m, n, k, a, lda, b, ldb, c, ldc);
  else
    GemmDirect(m, n, k, a, lda, b, ldb, c, ldc);
}

void GemmTN(int m, int n, int k, const double* a, int lda, const double* b,
            int ldb, double* c, int ldc) {
  if (UsePacked(m, n, k))
    GemmTNPacked(m, n, k, a, lda, b, ldb, c, ldc);
  else
    GemmTNDirect(m, n, k, a, lda, b, ldb, c, ldc);
}

}  // namespace simd
}  // namespace xai
