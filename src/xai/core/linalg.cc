#include "xai/core/linalg.h"

#include <cmath>
#include <cstring>

#include "xai/core/simd.h"
#include "xai/core/telemetry.h"
#include "xai/core/timer.h"

namespace xai {
namespace {

Matrix AppendOnesColumn(const Matrix& x) {
  Matrix out(x.rows(), x.cols() + 1);
  for (int i = 0; i < x.rows(); ++i) {
    double* dst = out.RowPtr(i);
    if (x.cols() > 0)
      std::memcpy(dst, x.RowPtr(i), sizeof(double) * x.cols());
    dst[x.cols()] = 1.0;
  }
  return out;
}

}  // namespace

Result<Vector> RidgeRegression(const Matrix& x, const Vector& y, double l2,
                               bool fit_intercept) {
  Vector ones(x.rows(), 1.0);
  return WeightedRidgeRegression(x, y, ones, l2, fit_intercept);
}

Result<Vector> WeightedRidgeRegression(const Matrix& x, const Vector& y,
                                       const Vector& sample_weights, double l2,
                                       bool fit_intercept) {
  if (x.rows() != static_cast<int>(y.size()) ||
      x.rows() != static_cast<int>(sample_weights.size())) {
    return Status::InvalidArgument("row count mismatch in ridge regression");
  }
  WallTimer timer;
  Matrix xx = fit_intercept ? AppendOnesColumn(x) : x;
  // Normal-equation assembly: X^T diag(s) X via the blocked rank-1 kernel
  // and X^T (s .* y) via axpy — both simd-dispatched.
  Matrix gram = xx.WeightedGram(sample_weights);
  // Regularize all but the intercept coefficient.
  int d = gram.rows();
  int reg_dims = fit_intercept ? d - 1 : d;
  for (int i = 0; i < reg_dims; ++i) gram(i, i) += l2;
  // Tiny jitter for numerical robustness of the Cholesky factorization.
  gram.AddScaledIdentity(1e-12);
  Vector wy(y.size());
  for (size_t i = 0; i < y.size(); ++i) wy[i] = sample_weights[i] * y[i];
  Vector rhs = xx.TransposeMatVec(wy);
  auto solution = CholeskySolve(gram, rhs);
  XAI_HISTOGRAM_RECORD("linalg/wls_solve_us", timer.Nanos() / 1000);
  return solution;
}

Result<Vector> ConstrainedWeightedLeastSquares(const Matrix& x,
                                               const Vector& y,
                                               const Vector& sample_weights,
                                               const Vector& c, double d,
                                               double l2) {
  // Eliminate the last variable with non-zero constraint coefficient:
  //   w_k = (d - sum_{j != k} c_j w_j) / c_k
  // and solve the reduced unconstrained problem.
  int dim = x.cols();
  if (static_cast<int>(c.size()) != dim)
    return Status::InvalidArgument("constraint dimension mismatch");
  int k = -1;
  for (int j = dim - 1; j >= 0; --j) {
    if (std::fabs(c[j]) > 1e-12) {
      k = j;
      break;
    }
  }
  if (k < 0) return Status::InvalidArgument("constraint vector is zero");

  // Reduced design: for each row i,
  //   pred_i = sum_{j != k} w_j (x_ij - x_ik c_j / c_k) + x_ik d / c_k.
  // Hoist the per-column constraint ratios so the row loop is a contiguous
  // gather-subtract over raw spans.
  Vector ratio(dim);
  for (int j = 0; j < dim; ++j) ratio[j] = c[j] / c[k];
  Matrix xr(x.rows(), dim - 1);
  Vector yr(y.size());
  for (int i = 0; i < x.rows(); ++i) {
    const double* src = x.RowPtr(i);
    double* dst = xr.RowPtr(i);
    double xik = src[k];
    int jj = 0;
    for (int j = 0; j < dim; ++j) {
      if (j == k) continue;
      dst[jj++] = src[j] - xik * ratio[j];
    }
    yr[i] = y[i] - xik * d / c[k];
  }
  XAI_ASSIGN_OR_RETURN(Vector wr,
                       WeightedRidgeRegression(xr, yr, sample_weights, l2));
  Vector w(dim);
  int jj = 0;
  double acc = 0.0;
  for (int j = 0; j < dim; ++j) {
    if (j == k) continue;
    w[j] = wr[jj++];
    acc += c[j] * w[j];
  }
  w[k] = (d - acc) / c[k];
  return w;
}

Result<Vector> ConjugateGradient(
    const std::function<Vector(const Vector&)>& apply_a, const Vector& b,
    int max_iter, double tol) {
  Vector x(b.size(), 0.0);
  Vector r = b;
  Vector p = r;
  double rs_old = Dot(r, r);
  double b_norm = std::sqrt(Dot(b, b));
  // Stopping rule: relative residual against ||b||, falling back to the
  // absolute residual when ||b|| == 0 (otherwise the relative test would
  // divide by zero). For b == 0 the initial residual already passes and the
  // exact solution x = 0 is returned without touching apply_a.
  const double threshold = tol * (b_norm > 0.0 ? b_norm : 1.0);
  if (std::sqrt(rs_old) <= threshold) return x;
  for (int it = 0; it < max_iter; ++it) {
    Vector ap = apply_a(p);
    double p_ap = Dot(p, ap);
    if (p_ap <= 0.0 || !std::isfinite(p_ap))
      return Status::InvalidArgument(
          "conjugate gradient: operator is not positive definite");
    double alpha = rs_old / p_ap;
    Axpy(alpha, p, &x);
    Axpy(-alpha, ap, &r);
    double rs_new = Dot(r, r);
    if (std::sqrt(rs_new) <= threshold) break;
    double beta = rs_new / rs_old;
    for (size_t i = 0; i < p.size(); ++i) p[i] = r[i] + beta * p[i];
    rs_old = rs_new;
  }
  return x;
}

}  // namespace xai
