#include "xai/core/linalg.h"

#include <cmath>
#include <cstring>

#include "xai/core/simd.h"
#include "xai/core/telemetry.h"
#include "xai/core/timer.h"

namespace xai {
namespace {

Matrix AppendOnesColumn(const Matrix& x) {
  Matrix out(x.rows(), x.cols() + 1);
  for (int i = 0; i < x.rows(); ++i) {
    double* dst = out.RowPtr(i);
    if (x.cols() > 0)
      std::memcpy(dst, x.RowPtr(i), sizeof(double) * x.cols());
    dst[x.cols()] = 1.0;
  }
  return out;
}

}  // namespace

Result<Vector> RidgeRegression(const Matrix& x, const Vector& y, double l2,
                               bool fit_intercept) {
  Vector ones(x.rows(), 1.0);
  return WeightedRidgeRegression(x, y, ones, l2, fit_intercept);
}

Result<Vector> WeightedRidgeRegression(const Matrix& x, const Vector& y,
                                       const Vector& sample_weights, double l2,
                                       bool fit_intercept) {
  if (x.rows() != static_cast<int>(y.size()) ||
      x.rows() != static_cast<int>(sample_weights.size())) {
    return Status::InvalidArgument("row count mismatch in ridge regression");
  }
  WallTimer timer;
  Matrix xx = fit_intercept ? AppendOnesColumn(x) : x;
  // Normal-equation assembly: X^T diag(s) X via the blocked rank-1 kernel
  // and X^T (s .* y) via axpy — both simd-dispatched.
  Matrix gram = xx.WeightedGram(sample_weights);
  // Regularize all but the intercept coefficient.
  int d = gram.rows();
  int reg_dims = fit_intercept ? d - 1 : d;
  for (int i = 0; i < reg_dims; ++i) gram(i, i) += l2;
  // Tiny jitter for numerical robustness of the Cholesky factorization.
  gram.AddScaledIdentity(1e-12);
  Vector wy(y.size());
  for (size_t i = 0; i < y.size(); ++i) wy[i] = sample_weights[i] * y[i];
  Vector rhs = xx.TransposeMatVec(wy);
  auto solution = CholeskySolve(gram, rhs);
  XAI_HISTOGRAM_RECORD("linalg/wls_solve_us", timer.Nanos() / 1000);
  return solution;
}

Result<Vector> ConstrainedWeightedLeastSquares(const Matrix& x,
                                               const Vector& y,
                                               const Vector& sample_weights,
                                               const Vector& c, double d,
                                               double l2) {
  // Eliminate the last variable with non-zero constraint coefficient:
  //   w_k = (d - sum_{j != k} c_j w_j) / c_k
  // and solve the reduced unconstrained problem.
  int dim = x.cols();
  if (static_cast<int>(c.size()) != dim)
    return Status::InvalidArgument("constraint dimension mismatch");
  int k = -1;
  for (int j = dim - 1; j >= 0; --j) {
    if (std::fabs(c[j]) > 1e-12) {
      k = j;
      break;
    }
  }
  if (k < 0) return Status::InvalidArgument("constraint vector is zero");

  // Reduced design: for each row i,
  //   pred_i = sum_{j != k} w_j (x_ij - x_ik c_j / c_k) + x_ik d / c_k.
  // Hoist the per-column constraint ratios so the row loop is a contiguous
  // gather-subtract over raw spans.
  Vector ratio(dim);
  for (int j = 0; j < dim; ++j) ratio[j] = c[j] / c[k];
  Matrix xr(x.rows(), dim - 1);
  Vector yr(y.size());
  for (int i = 0; i < x.rows(); ++i) {
    const double* src = x.RowPtr(i);
    double* dst = xr.RowPtr(i);
    double xik = src[k];
    int jj = 0;
    for (int j = 0; j < dim; ++j) {
      if (j == k) continue;
      dst[jj++] = src[j] - xik * ratio[j];
    }
    yr[i] = y[i] - xik * d / c[k];
  }
  XAI_ASSIGN_OR_RETURN(Vector wr,
                       WeightedRidgeRegression(xr, yr, sample_weights, l2));
  Vector w(dim);
  int jj = 0;
  double acc = 0.0;
  for (int j = 0; j < dim; ++j) {
    if (j == k) continue;
    w[j] = wr[jj++];
    acc += c[j] * w[j];
  }
  w[k] = (d - acc) / c[k];
  return w;
}

WlsAccumulator::WlsAccumulator(int dim, bool fit_intercept)
    : dim_(dim),
      pad_((dim + simd::kGemmNR - 1) / simd::kGemmNR * simd::kGemmNR),
      fit_intercept_(fit_intercept), gram_(pad_, pad_), rhs_(dim, 0.0) {
  XAI_CHECK_GE(dim, 0);
}

void WlsAccumulator::AddBlock(const double* rows, const double* y,
                              const double* w, int n) {
  if (n <= 0) return;
  // Right-hand side and moments run over ALL rows, zero weights included —
  // TransposeMatVec does not skip them, and a +0.0 contribution is not
  // always a bitwise no-op (it flips -0.0 accumulators).
  for (int i = 0; i < n; ++i) {
    double wyi = w[i] * y[i];
    simd::Axpy(wyi, rows + static_cast<size_t>(i) * dim_, rhs_.data(), dim_);
    weight_sum_ += w[i];
    wy_sum_ += wyi;
    wyy_sum_ += wyi * y[i];
  }
  // Gram operands compact zero-weight rows out, exactly as WeightedGram
  // skips them. The scaled copy carries w_i * x_ia, so the Gram update
  // g(a,b) += (w_i * x_ia) * x_ib replays WeightedOuterAccumulate's
  // operation chain element-for-element (upper triangle; Solve() mirrors).
  // Rows are laid out at stride pad_ with zero tails (grow-only resize,
  // columns [dim_, pad_) never written), so the padded-width kernel call
  // below runs on full register tiles while leaving every real upper-
  // triangle chain untouched — a zero tail column only feeds chains of
  // entries in that same tail column.
  size_t need = static_cast<size_t>(n) * pad_;
  if (scaled_.size() < need) scaled_.resize(need, 0.0);
  if (compact_.size() < need) compact_.resize(need, 0.0);
  int nz = 0;
  for (int i = 0; i < n; ++i) {
    if (w[i] == 0.0) continue;
    const double* src = rows + static_cast<size_t>(i) * dim_;
    double* srow = scaled_.data() + static_cast<size_t>(nz) * pad_;
    double* crow = compact_.data() + static_cast<size_t>(nz) * pad_;
    for (int j = 0; j < dim_; ++j) srow[j] = w[i] * src[j];
    std::memcpy(crow, src, sizeof(double) * dim_);
    ++nz;
  }
  simd::GemmTNUpper(pad_, nz, scaled_.data(), pad_, compact_.data(), pad_,
                    gram_.RowPtr(0), pad_);
  rows_seen_ += n;
}

Result<Vector> WlsAccumulator::Solve(double l2) const {
  WallTimer timer;
  // Assemble the dense dim_ x dim_ system from gram_'s upper triangle (its
  // lower triangle and padded tail are kernel scratch): copy the upper,
  // mirror the lower, exactly as WeightedGram's final mirror does.
  Matrix gram(dim_, dim_);
  for (int a = 0; a < dim_; ++a) {
    const double* src = gram_.RowPtr(a);
    double* dst = gram.RowPtr(a);
    for (int b = 0; b < a; ++b) dst[b] = gram_.RowPtr(b)[a];
    for (int b = a; b < dim_; ++b) dst[b] = src[b];
  }
  int reg_dims = fit_intercept_ ? dim_ - 1 : dim_;
  for (int i = 0; i < reg_dims; ++i) gram(i, i) += l2;
  gram.AddScaledIdentity(1e-12);
  auto solution = CholeskySolve(gram, rhs_);
  XAI_HISTOGRAM_RECORD("linalg/wls_solve_us", timer.Nanos() / 1000);
  return solution;
}

double WlsAccumulator::ResidualSumOfSquares(const Vector& coef) const {
  XAI_CHECK_EQ(static_cast<int>(coef.size()), dim_);
  // ||sqrt(w)(X c - y)||^2 = c^T G c - 2 c^T rhs + sum w y^2 with the
  // unregularized Gram; use the mirrored-symmetric form for c^T G c.
  double quad = 0.0;
  for (int a = 0; a < dim_; ++a) {
    const double* grow = gram_.RowPtr(a);
    double rowdot = 0.0;
    for (int b = 0; b < dim_; ++b)
      rowdot += (b < a ? gram_.RowPtr(b)[a] : grow[b]) * coef[b];
    quad += coef[a] * rowdot;
  }
  double cross = 0.0;
  for (int a = 0; a < dim_; ++a) cross += coef[a] * rhs_[a];
  double ss = wyy_sum_ - 2.0 * cross + quad;
  return ss > 0.0 ? ss : 0.0;
}

CwlsAccumulator::CwlsAccumulator(int dim, const Vector& c, double d)
    : dim_(dim), pivot_(-1), c_(c), ratio_(dim, 0.0), d_(d),
      inner_(dim > 0 ? dim - 1 : 0, /*fit_intercept=*/false) {
  XAI_CHECK_EQ(static_cast<int>(c.size()), dim);
  for (int j = dim - 1; j >= 0; --j) {
    if (std::fabs(c_[j]) > 1e-12) {
      pivot_ = j;
      break;
    }
  }
  if (pivot_ >= 0)
    for (int j = 0; j < dim; ++j) ratio_[j] = c_[j] / c_[pivot_];
}

void CwlsAccumulator::AddBlock(const double* rows, const double* y,
                               const double* w, int n) {
  if (n <= 0 || pivot_ < 0) return;
  const int rdim = dim_ - 1;
  reduced_.resize(static_cast<size_t>(n) * rdim);
  yr_.resize(n);
  for (int i = 0; i < n; ++i) {
    const double* src = rows + static_cast<size_t>(i) * dim_;
    double* dst = reduced_.data() + static_cast<size_t>(i) * rdim;
    double xik = src[pivot_];
    int jj = 0;
    for (int j = 0; j < dim_; ++j) {
      if (j == pivot_) continue;
      dst[jj++] = src[j] - xik * ratio_[j];
    }
    yr_[i] = y[i] - xik * d_ / c_[pivot_];
  }
  inner_.AddBlock(reduced_.data(), yr_.data(), w, n);
}

Result<Vector> CwlsAccumulator::Solve(double l2) const {
  if (pivot_ < 0) return Status::InvalidArgument("constraint vector is zero");
  XAI_ASSIGN_OR_RETURN(Vector wr, inner_.Solve(l2));
  Vector w(dim_);
  int jj = 0;
  double acc = 0.0;
  for (int j = 0; j < dim_; ++j) {
    if (j == pivot_) continue;
    w[j] = wr[jj++];
    acc += c_[j] * w[j];
  }
  w[pivot_] = (d_ - acc) / c_[pivot_];
  return w;
}

Result<Vector> ConjugateGradient(
    const std::function<Vector(const Vector&)>& apply_a, const Vector& b,
    int max_iter, double tol) {
  Vector x(b.size(), 0.0);
  Vector r = b;
  Vector p = r;
  double rs_old = Dot(r, r);
  double b_norm = std::sqrt(Dot(b, b));
  // Stopping rule: relative residual against ||b||, falling back to the
  // absolute residual when ||b|| == 0 (otherwise the relative test would
  // divide by zero). For b == 0 the initial residual already passes and the
  // exact solution x = 0 is returned without touching apply_a.
  const double threshold = tol * (b_norm > 0.0 ? b_norm : 1.0);
  if (std::sqrt(rs_old) <= threshold) return x;
  for (int it = 0; it < max_iter; ++it) {
    Vector ap = apply_a(p);
    double p_ap = Dot(p, ap);
    if (p_ap <= 0.0 || !std::isfinite(p_ap))
      return Status::InvalidArgument(
          "conjugate gradient: operator is not positive definite");
    double alpha = rs_old / p_ap;
    Axpy(alpha, p, &x);
    Axpy(-alpha, ap, &r);
    double rs_new = Dot(r, r);
    if (std::sqrt(rs_new) <= threshold) break;
    double beta = rs_new / rs_old;
    for (size_t i = 0; i < p.size(); ++i) p[i] = r[i] + beta * p[i];
    rs_old = rs_new;
  }
  return x;
}

}  // namespace xai
