#include "xai/core/linalg.h"

#include <cmath>

namespace xai {
namespace {

Matrix AppendOnesColumn(const Matrix& x) {
  Matrix out(x.rows(), x.cols() + 1);
  for (int i = 0; i < x.rows(); ++i) {
    for (int j = 0; j < x.cols(); ++j) out(i, j) = x(i, j);
    out(i, x.cols()) = 1.0;
  }
  return out;
}

}  // namespace

Result<Vector> RidgeRegression(const Matrix& x, const Vector& y, double l2,
                               bool fit_intercept) {
  Vector ones(x.rows(), 1.0);
  return WeightedRidgeRegression(x, y, ones, l2, fit_intercept);
}

Result<Vector> WeightedRidgeRegression(const Matrix& x, const Vector& y,
                                       const Vector& sample_weights, double l2,
                                       bool fit_intercept) {
  if (x.rows() != static_cast<int>(y.size()) ||
      x.rows() != static_cast<int>(sample_weights.size())) {
    return Status::InvalidArgument("row count mismatch in ridge regression");
  }
  Matrix xx = fit_intercept ? AppendOnesColumn(x) : x;
  Matrix gram = xx.WeightedGram(sample_weights);
  // Regularize all but the intercept coefficient.
  int d = gram.rows();
  int reg_dims = fit_intercept ? d - 1 : d;
  for (int i = 0; i < reg_dims; ++i) gram(i, i) += l2;
  // Tiny jitter for numerical robustness of the Cholesky factorization.
  gram.AddScaledIdentity(1e-12);
  Vector wy(y.size());
  for (size_t i = 0; i < y.size(); ++i) wy[i] = sample_weights[i] * y[i];
  Vector rhs = xx.TransposeMatVec(wy);
  return CholeskySolve(gram, rhs);
}

Result<Vector> ConstrainedWeightedLeastSquares(const Matrix& x,
                                               const Vector& y,
                                               const Vector& sample_weights,
                                               const Vector& c, double d,
                                               double l2) {
  // Eliminate the last variable with non-zero constraint coefficient:
  //   w_k = (d - sum_{j != k} c_j w_j) / c_k
  // and solve the reduced unconstrained problem.
  int dim = x.cols();
  if (static_cast<int>(c.size()) != dim)
    return Status::InvalidArgument("constraint dimension mismatch");
  int k = -1;
  for (int j = dim - 1; j >= 0; --j) {
    if (std::fabs(c[j]) > 1e-12) {
      k = j;
      break;
    }
  }
  if (k < 0) return Status::InvalidArgument("constraint vector is zero");

  // Reduced design: for each row i,
  //   pred_i = sum_{j != k} w_j (x_ij - x_ik c_j / c_k) + x_ik d / c_k.
  Matrix xr(x.rows(), dim - 1);
  Vector yr(y.size());
  for (int i = 0; i < x.rows(); ++i) {
    double xik = x(i, k);
    int jj = 0;
    for (int j = 0; j < dim; ++j) {
      if (j == k) continue;
      xr(i, jj++) = x(i, j) - xik * c[j] / c[k];
    }
    yr[i] = y[i] - xik * d / c[k];
  }
  XAI_ASSIGN_OR_RETURN(Vector wr,
                       WeightedRidgeRegression(xr, yr, sample_weights, l2));
  Vector w(dim);
  int jj = 0;
  double acc = 0.0;
  for (int j = 0; j < dim; ++j) {
    if (j == k) continue;
    w[j] = wr[jj++];
    acc += c[j] * w[j];
  }
  w[k] = (d - acc) / c[k];
  return w;
}

Result<Vector> ConjugateGradient(
    const std::function<Vector(const Vector&)>& apply_a, const Vector& b,
    int max_iter, double tol) {
  Vector x(b.size(), 0.0);
  Vector r = b;
  Vector p = r;
  double rs_old = Dot(r, r);
  double b_norm = std::sqrt(Dot(b, b));
  if (b_norm == 0.0) return x;
  for (int it = 0; it < max_iter; ++it) {
    Vector ap = apply_a(p);
    double p_ap = Dot(p, ap);
    if (p_ap <= 0.0 || !std::isfinite(p_ap))
      return Status::InvalidArgument(
          "conjugate gradient: operator is not positive definite");
    double alpha = rs_old / p_ap;
    Axpy(alpha, p, &x);
    Axpy(-alpha, ap, &r);
    double rs_new = Dot(r, r);
    if (std::sqrt(rs_new) / b_norm < tol) break;
    double beta = rs_new / rs_old;
    for (size_t i = 0; i < p.size(); ++i) p[i] = r[i] + beta * p[i];
    rs_old = rs_new;
  }
  return x;
}

}  // namespace xai
