#include "xai/core/json.h"

namespace xai {
namespace json {

void WriteString(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          os << ' ';
        else
          os << c;
    }
  }
  os << '"';
}

}  // namespace json
}  // namespace xai
