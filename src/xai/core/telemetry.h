#ifndef XAI_CORE_TELEMETRY_H_
#define XAI_CORE_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_map>

/// \file
/// Process-wide telemetry: named counters, log-bucketed latency histograms,
/// and (together with core/trace.h) scoped spans, exported as a flat JSONL
/// metrics dump or a Chrome trace_event file.
///
/// Two kill switches:
///  - compile time: build with XAI_TELEMETRY=0 (cmake -DXAI_TELEMETRY=0) and
///    every XAI_COUNTER_* / XAI_SPAN macro expands to nothing — zero overhead,
///    the registry still links but stays empty;
///  - run time: telemetry::SetEnabled(false) turns the macros into a single
///    relaxed atomic load + untaken branch, cheap enough to measure the
///    enabled-mode overhead from inside one binary (bench_e02 does).
///
/// Naming convention: `subsystem/op`, e.g. "model/evals",
/// "shap/cache_hits", "kernel_shap/solve". Span histograms record
/// nanoseconds under the span's own name.

#ifndef XAI_TELEMETRY
#define XAI_TELEMETRY 1
#endif

namespace xai {
namespace telemetry {

/// Runtime switch read by every macro. Default: enabled.
bool Enabled();
void SetEnabled(bool enabled);

namespace internal {
/// First-touch thread index shared by the striped primitives (Counter
/// slots, Histogram stripes): the n-th thread to record anything gets n,
/// cached thread-locally. Monotone and process-wide, so a thread maps to
/// the same stripe in every instance.
int ThreadIndex();
}  // namespace internal

/// \brief Monotonically increasing event count. Thread-safe; writes are
/// striped across per-thread cache-line-sized slots so concurrent adds
/// from the pool neither ping-pong a single line nor pay a locked RMW: the
/// first kSlots-1 threads each own a slot exclusively and bump it with a
/// plain relaxed load+store (single-writer, so no update is lost); any
/// later threads share the last slot via fetch-add. A shared fetch-add
/// design cost ~5% on the sampling-Shapley hot loop at 4 threads; this is
/// <1%. `Get` sums the slots — exact once writers are quiescent, which is
/// when snapshots are taken (Reset concurrent with a writer may drop that
/// writer's in-flight bump; Reset is documented quiescent-only). Hot paths
/// should still batch (add once per chunk / per cache miss, not per row).
class Counter {
 public:
  static constexpr int kSlots = 64;

  void Add(int64_t n) {
    const int slot = ThreadSlot();
    std::atomic<int64_t>& v = slots_[slot].value;
    if (slot < kSlots - 1) {
      v.store(v.load(std::memory_order_relaxed) + n,
              std::memory_order_relaxed);
    } else {
      v.fetch_add(n, std::memory_order_relaxed);
    }
  }
  int64_t Get() const {
    int64_t total = 0;
    for (const Slot& s : slots_)
      total += s.value.load(std::memory_order_relaxed);
    return total;
  }
  void Reset() {
    for (Slot& s : slots_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<int64_t> value{0};
  };
  /// Index of this thread's slot: the n-th thread to touch any counter gets
  /// min(n, kSlots - 1). Identical for every Counter instance.
  static int ThreadSlot();

  Slot slots_[kSlots];
};

/// \brief Log-bucketed histogram of non-negative int64 samples (nanoseconds
/// by convention). Each power-of-two octave is split into 4 linear
/// sub-buckets, so quantile estimates carry at most ~25% relative error;
/// values below 4 are exact. Thread-safe recording, mergeable across
/// instances.
///
/// Recording is striped: samples land in the stripe owned by the calling
/// thread's ThreadIndex() (mod kStripes), so the pool's workers recording
/// into one hot span histogram bump disjoint cache lines instead of
/// ping-ponging a shared count/sum pair — span-end cost stays flat with
/// thread count. Readers sum the stripes; exact once writers are
/// quiescent, same contract as Counter.
class Histogram {
 public:
  static constexpr int kSubBits = 2;                    // Sub-buckets/octave.
  static constexpr int kSubCount = 1 << kSubBits;
  // Non-negative int64 samples have msb in [0, 62], so the highest bucket
  // is (62 - kSubBits + 1) * kSubCount + (kSubCount - 1).
  static constexpr int kNumBuckets = (63 - kSubBits + 1) * kSubCount;
  static constexpr int kStripes = 8;  // Power of two (stripe = index & mask).

  void Record(int64_t value);
  /// Adds every bucket of `other` into this histogram.
  void Merge(const Histogram& other);
  void Reset();

  int64_t Count() const {
    int64_t total = 0;
    for (const Stripe& s : stripes_)
      total += s.count.load(std::memory_order_relaxed);
    return total;
  }
  int64_t Sum() const {
    int64_t total = 0;
    for (const Stripe& s : stripes_)
      total += s.sum.load(std::memory_order_relaxed);
    return total;
  }
  /// Approximate value at quantile q in [0, 1] (midpoint of the bucket the
  /// rank falls into). Returns 0 for an empty histogram.
  double Quantile(double q) const;

  /// Bucket index for a sample (exposed for tests).
  static int BucketFor(int64_t value);
  /// Inclusive lower bound of bucket `index`.
  static int64_t BucketLowerBound(int index);

 private:
  struct alignas(64) Stripe {
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> buckets[kNumBuckets] = {};
  };

  int64_t BucketTotal(int index) const {
    int64_t total = 0;
    for (const Stripe& s : stripes_)
      total += s.buckets[index].load(std::memory_order_relaxed);
    return total;
  }

  Stripe stripes_[kStripes];
};

/// Snapshot of one histogram for reporting.
struct HistogramStats {
  int64_t count = 0;
  int64_t sum = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// \brief Process-wide registry of named counters and histograms.
///
/// GetCounter / GetHistogram return stable pointers (entries are never
/// removed; Reset() only zeroes values), so call sites may cache them —
/// the XAI_COUNTER_* macros do, via a function-local static, making the
/// steady-state cost of a counter bump one relaxed load + one relaxed add.
class Registry {
 public:
  static Registry& Global();

  Counter* GetCounter(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Zeroes every counter and histogram, clears all recorded trace events,
  /// and restarts the wall clock used by SummaryLine(). Call it between
  /// measured sections, outside any parallel region.
  void Reset();

  /// Name -> value snapshots (sorted, for stable output).
  std::map<std::string, int64_t> CounterSnapshot() const;
  std::map<std::string, HistogramStats> HistogramSnapshot() const;

  /// Flat JSONL metrics dump: one JSON object per line, either
  ///   {"type":"counter","name":...,"value":...}
  /// or
  ///   {"type":"histogram","name":...,"count":...,"sum":...,
  ///    "p50":...,"p95":...,"p99":...}
  void WriteJson(std::ostream& os) const;

  /// One JSON object {"counters":{...},"histograms":{name:{...}}} for
  /// embedding into a larger report (no trailing newline).
  void WriteJsonObject(std::ostream& os) const;

  /// Prometheus text exposition format: counters as `xai_<name>_total`,
  /// histograms as summaries (p50/p95/p99 quantile samples plus _sum and
  /// _count). Non-[a-zA-Z0-9_] characters in names map to '_'.
  void WritePrometheus(std::ostream& os) const;

  /// Chrome trace_event JSON ({"otherData":{...},"traceEvents":[...]}) of
  /// every span recorded since the last Reset(), loadable in
  /// chrome://tracing / Perfetto. The otherData header carries buffer
  /// health (dropped_events, buffer capacity, sample rate) so truncated or
  /// sampled traces are detectable; events recorded under a TraceContext
  /// carry args.trace_id / span_id / parent_span_id (decimal strings — JSON
  /// numbers lose 64-bit precision) for per-request reconstruction.
  /// Call outside parallel regions (spans still being written on other
  /// threads would be racy to read).
  void WriteChromeTrace(std::ostream& os) const;

  /// Nanoseconds since construction / last Reset() (SummaryLine's wall ms).
  int64_t ElapsedNanos() const;

 private:
  Registry();

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::atomic<int64_t> epoch_ns_{0};
};

/// True if argv contains `--telemetry` (helper for the example binaries).
bool TelemetryFlag(int argc, char** argv);

/// One human-readable line: total model evals, wall ms since the registry
/// epoch, and the top-3 spans by total time. For example binaries'
/// `--telemetry` flag.
std::string SummaryLine();

}  // namespace telemetry
}  // namespace xai

#if XAI_TELEMETRY

/// Adds `n` to the named process-wide counter. `name` must be a constant
/// per call site: the Registry lookup happens once, via a local static.
#define XAI_COUNTER_ADD(name, n)                                      \
  do {                                                                \
    if (::xai::telemetry::Enabled()) {                                \
      static ::xai::telemetry::Counter* xai_counter_ =                \
          ::xai::telemetry::Registry::Global().GetCounter(name);      \
      xai_counter_->Add(n);                                           \
    }                                                                 \
  } while (0)

/// Records `value` into the named process-wide histogram (log-bucketed;
/// nanoseconds by span convention, but any non-negative quantity works —
/// the serving layer records batch sizes and queue depths). Same cached
/// registry-lookup pattern as XAI_COUNTER_ADD.
#define XAI_HISTOGRAM_RECORD(name, value)                              \
  do {                                                                 \
    if (::xai::telemetry::Enabled()) {                                 \
      static ::xai::telemetry::Histogram* xai_histogram_ =             \
          ::xai::telemetry::Registry::Global().GetHistogram(name);     \
      xai_histogram_->Record(value);                                   \
    }                                                                  \
  } while (0)

#else  // XAI_TELEMETRY == 0: compile the arguments away entirely.

#define XAI_COUNTER_ADD(name, n) \
  do {                           \
    if (false) {                 \
      (void)(n);                 \
    }                            \
  } while (0)

#define XAI_HISTOGRAM_RECORD(name, value) \
  do {                                    \
    if (false) {                          \
      (void)(value);                      \
    }                                     \
  } while (0)

#endif  // XAI_TELEMETRY

#define XAI_COUNTER_INC(name) XAI_COUNTER_ADD(name, 1)

#endif  // XAI_CORE_TELEMETRY_H_
