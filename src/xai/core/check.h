#ifndef XAI_CORE_CHECK_H_
#define XAI_CORE_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Programmer-error assertions. These abort the process; they are for
/// invariants, not for user input validation (which returns Status).

#define XAI_CHECK(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "XAI_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define XAI_CHECK_MSG(cond, msg)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "XAI_CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #cond, msg);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define XAI_CHECK_EQ(a, b) XAI_CHECK((a) == (b))
#define XAI_CHECK_NE(a, b) XAI_CHECK((a) != (b))
#define XAI_CHECK_LT(a, b) XAI_CHECK((a) < (b))
#define XAI_CHECK_LE(a, b) XAI_CHECK((a) <= (b))
#define XAI_CHECK_GT(a, b) XAI_CHECK((a) > (b))
#define XAI_CHECK_GE(a, b) XAI_CHECK((a) >= (b))

#ifdef NDEBUG
#define XAI_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define XAI_DCHECK(cond) XAI_CHECK(cond)
#endif

#endif  // XAI_CORE_CHECK_H_
