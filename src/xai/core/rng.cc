#include "xai/core/rng.h"

#include <cmath>
#include <numbers>

#include "xai/core/check.h"
#include "xai/core/telemetry.h"

namespace xai {
namespace {

// splitmix64: used to decorrelate user-provided seeds.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  state_ = SplitMix64(&sm);
  inc_ = SplitMix64(&sm) | 1ULL;
  NextU32();
}

uint32_t Rng::NextU32() {
  // PCG-XSH-RR.
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

uint64_t Rng::NextU64() {
  return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
}

double Rng::Uniform() {
  return (NextU64() >> 11) * 0x1.0p-53;  // 53 random bits in [0,1).
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = Uniform();
  double u2 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

int Rng::UniformInt(int n) {
  XAI_CHECK_GT(n, 0);
  // Rejection sampling to avoid modulo bias.
  uint32_t bound = static_cast<uint32_t>(n);
  uint32_t threshold = (0u - bound) % bound;
  for (;;) {
    uint32_t r = NextU32();
    if (r >= threshold) return static_cast<int>(r % bound);
  }
}

int Rng::UniformInt(int lo, int hi) {
  XAI_CHECK_LT(lo, hi);
  return lo + UniformInt(hi - lo);
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int Rng::Categorical(const std::vector<double>& weights) {
  XAI_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    XAI_CHECK_GE(w, 0.0);
    total += w;
  }
  XAI_CHECK_GT(total, 0.0);
  double target = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> p(n);
  for (int i = 0; i < n; ++i) p[i] = i;
  Shuffle(&p);
  return p;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  XAI_CHECK_LE(k, n);
  // Floyd's algorithm for k << n; fall back to shuffle otherwise.
  if (k * 4 >= n) {
    std::vector<int> p = Permutation(n);
    p.resize(k);
    return p;
  }
  std::vector<int> result;
  result.reserve(k);
  std::vector<bool> chosen(n, false);
  for (int j = n - k; j < n; ++j) {
    int t = UniformInt(j + 1);
    if (chosen[t]) t = j;
    chosen[t] = true;
    result.push_back(t);
  }
  return result;
}

Rng Rng::Fork() { return Rng(NextU64()); }

uint64_t SplitSeed(uint64_t seed, uint64_t stream) {
  XAI_COUNTER_INC("rng/streams");
  // Two rounds of splitmix64 over the pair; the +1 keeps stream 0 from
  // collapsing onto the plain seed hash.
  uint64_t sm = seed;
  uint64_t mixed = SplitMix64(&sm);
  sm = mixed ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  return SplitMix64(&sm);
}

}  // namespace xai
