#ifndef XAI_CORE_TRACE_H_
#define XAI_CORE_TRACE_H_

#include <cstdint>
#include <vector>

#include "xai/core/telemetry.h"  // For the XAI_TELEMETRY switch.

/// \file
/// Scoped spans recorded into lock-free thread-local buffers.
///
/// `XAI_SPAN("kernel_shap/solve")` times the enclosing scope: on exit it
/// appends one event to the calling thread's buffer (single-writer, readers
/// synchronize on a release-published size — no locks on the hot path) and
/// records the duration into the histogram of the same name in
/// telemetry::Registry. Buffers are bounded; once a thread's buffer is full
/// further events still feed the histogram but are dropped from the trace
/// (counted in "trace/dropped_events").
///
/// Span names must be string literals (or otherwise outlive the process):
/// only the pointer is stored.

namespace xai {
namespace telemetry {

/// One completed span, in nanoseconds on the shared monotonic clock.
struct TraceEvent {
  const char* name;
  int64_t start_ns;
  int64_t duration_ns;
  uint32_t tid;  // Small sequential id assigned per recording thread.
};

/// \brief RAII span. Construction snapshots the clock; destruction records
/// the event + histogram sample. Runtime-disabled telemetry makes both ends
/// a single relaxed load.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  int64_t start_ns_;  // -1 when telemetry was disabled at entry.
};

namespace internal {

/// Copies every thread's recorded events into `out` (appended). Caller must
/// be outside parallel regions for a complete snapshot; concurrent writers
/// only make the snapshot miss their newest events, never tear.
void CollectTraceEvents(std::vector<TraceEvent>* out);

/// Resets every thread buffer to empty. Quiescence required (no spans
/// in flight on other threads).
void ClearTraceEvents();

}  // namespace internal
}  // namespace telemetry
}  // namespace xai

#if XAI_TELEMETRY

#define XAI_TRACE_CONCAT_INNER(a, b) a##b
#define XAI_TRACE_CONCAT(a, b) XAI_TRACE_CONCAT_INNER(a, b)

/// Times the enclosing scope under `name` (a string literal,
/// `subsystem/op`). Nest freely; events carry start + duration so viewers
/// reconstruct the stack.
#define XAI_SPAN(name)                 \
  ::xai::telemetry::ScopedSpan XAI_TRACE_CONCAT(xai_span_, __LINE__) { name }

#else

#define XAI_SPAN(name) \
  do {                 \
  } while (0)

#endif  // XAI_TELEMETRY

#endif  // XAI_CORE_TRACE_H_
