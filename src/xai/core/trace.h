#ifndef XAI_CORE_TRACE_H_
#define XAI_CORE_TRACE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "xai/core/telemetry.h"  // For the XAI_TELEMETRY switch.

/// \file
/// Scoped spans recorded into lock-free thread-local buffers, with
/// request-scoped causal linkage.
///
/// `XAI_SPAN("kernel_shap/solve")` times the enclosing scope: on exit it
/// appends one event to the calling thread's buffer (single-writer, readers
/// synchronize on a release-published size — no locks on the hot path) and
/// records the duration into the histogram of the same name in
/// telemetry::Registry. Buffers are bounded; once a thread's buffer is full
/// further events still feed the histogram but are dropped from the trace
/// (counted in "trace/dropped_events" and surfaced in the export header).
///
/// Span names must be string literals (or otherwise outlive the process):
/// only the pointer is stored.
///
/// Request scoping: a TraceContext (trace_id + active span id) installed on
/// the current thread makes every span opened underneath it a *child* of
/// that context — events then carry (trace_id, span_id, parent_span_id), so
/// an exported trace can be regrouped per request and its critical path
/// reconstructed (tools/analyze_trace.py). The parallel runtime propagates
/// the caller's context onto pool workers for the duration of a region, so
/// spans inside ParallelFor chunks stay attached to the request that
/// spawned them.
///
/// Sampling: XAI_TRACE_SAMPLE in [0,1] (default 1) head-samples which
/// *requests* record span events — an unsampled context still feeds every
/// histogram, it only skips the per-event buffers. Tail retention is the
/// serving layer's job: RecordRequestSpan(..., force_retain=true) lands the
/// request's root span in a dedicated retained buffer even when the context
/// was sampled out, so slow/degraded/error requests never vanish from the
/// trace.

namespace xai {
namespace telemetry {

/// \brief Identity of the request (trace) the current thread is working
/// for. `trace_id == 0` means "no request context": spans then record with
/// zeroed ids, exactly like the pre-context flat spans.
struct TraceContext {
  uint64_t trace_id = 0;
  /// The innermost open span — new spans underneath parent-link to it.
  uint64_t span_id = 0;
  /// Head-sampling decision for this trace (see SampleTrace). Unsampled
  /// contexts skip the event buffers but still feed histograms.
  bool sampled = true;
};

/// The calling thread's current context (zero-initialized when none).
const TraceContext& CurrentTraceContext();

/// Process-unique span id (never 0). Cheap: one relaxed fetch-add.
uint64_t NextSpanId();

/// Head-sampling rate in [0, 1]: the fraction of traces whose span events
/// are recorded. Initialized from the XAI_TRACE_SAMPLE environment variable
/// (default 1.0 — trace everything; the measured overhead budget makes that
/// affordable).
double TraceSampleRate();
void SetTraceSampleRate(double rate);

/// Deterministic per-trace sampling decision: the same trace_id always
/// samples the same way at a fixed rate.
bool SampleTrace(uint64_t trace_id);

/// Wraps `fn` so that it runs under the trace context that was current when
/// BindTraceContext was called — the capture half of ScopedTraceContext,
/// packaged for deferred execution. The async serving layer binds every
/// event-loop task and future continuation with this, so spans opened on an
/// executor thread parent-link to the submitting request's trace instead of
/// recording as flat context-free events. Capturing a zero context is fine
/// (the wrapper then installs "no request", exactly like the caller had).
std::function<void()> BindTraceContext(std::function<void()> fn);

/// Same capture, but binding an explicit context instead of the caller's
/// current one (e.g. the request's own TraceContext held in a job struct).
std::function<void()> BindTraceContext(const TraceContext& ctx,
                                       std::function<void()> fn);

/// \brief RAII: installs `ctx` as the calling thread's context, restoring
/// the previous one on destruction. The serving layer wraps request
/// execution in one of these; ParallelFor workers get one per region.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext prev_;
};

/// One completed span, in nanoseconds on the shared monotonic clock.
/// trace_id / span_id / parent_span_id are zero for spans recorded outside
/// any request context.
struct TraceEvent {
  const char* name;
  int64_t start_ns;
  int64_t duration_ns;
  uint32_t tid;  // Small sequential id assigned per recording thread.
  uint64_t trace_id;
  uint64_t span_id;
  uint64_t parent_span_id;
};

/// Buffer health for the export header and `--telemetry` summaries:
/// truncated traces must be detectable, not silent.
struct TraceStats {
  int64_t dropped_events = 0;   ///< Thread-buffer drops since last clear.
  int64_t retained_dropped = 0; ///< Retained-buffer drops since last clear.
  int64_t buffered_events = 0;  ///< Currently collectable events.
  uint32_t buffer_capacity = 0; ///< Per-thread buffer capacity (events).
  uint32_t retained_capacity = 0;
  int num_thread_buffers = 0;
  uint64_t clear_epoch = 0;     ///< Count of ClearTraceEvents calls.
};

/// \brief RAII span. Construction snapshots the monotonic clock (the only
/// clock spans ever read; negative deltas are clamped to zero); destruction
/// records the event + histogram sample. Runtime-disabled telemetry makes
/// both ends a single relaxed load. Under a TraceContext the span allocates
/// its own span id, parent-links to the innermost open span, and becomes
/// the context for spans nested inside it.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  /// `histogram` is the registry entry for `name`, resolved once per call
  /// site by XAI_SPAN (registry pointers are stable) — span end then skips
  /// the name lookup entirely.
  ScopedSpan(const char* name, Histogram* histogram);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  Histogram* histogram_ = nullptr;
  int64_t start_ns_;  // -1 when telemetry was disabled at entry.
  TraceContext prev_;
  uint64_t span_id_ = 0;
  bool installed_ = false;
};

#if XAI_TELEMETRY

/// Records a synthesized span (the serving layer's per-request root: the
/// span covering enqueue -> completion) under `ctx` without the RAII scope.
/// Feeds the `name` histogram always; appends the event to the thread
/// buffer when `ctx.sampled`, or to the retained buffer when
/// `force_retain` — the tail-sampling hook that keeps slow / degraded /
/// error requests in the trace at any head-sampling rate.
void RecordRequestSpan(const char* name, const TraceContext& ctx,
                       uint64_t span_id, uint64_t parent_span_id,
                       int64_t start_ns, int64_t duration_ns,
                       bool force_retain);

#else

inline void RecordRequestSpan(const char*, const TraceContext&, uint64_t,
                              uint64_t, int64_t, int64_t, bool) {}

#endif  // XAI_TELEMETRY

namespace internal {

/// Copies every thread's recorded events (and the retained tail buffer)
/// into `out` (appended). Caller must be outside parallel regions for a
/// complete snapshot; concurrent writers only make the snapshot miss their
/// newest events, never tear. XAI_CHECK-fails when called after
/// ClearTraceEvents discarded events and nothing was recorded since — a
/// double export would otherwise produce silently empty output.
void CollectTraceEvents(std::vector<TraceEvent>* out);

/// Resets every thread buffer (and the retained buffer) to empty.
/// Quiescence required (no spans in flight on other threads;
/// XAI_CHECK-enforced against being called from inside a parallel region).
void ClearTraceEvents();

/// Buffer/drop accounting for the export header.
TraceStats GetTraceStats();

}  // namespace internal
}  // namespace telemetry
}  // namespace xai

#define XAI_TRACE_CONCAT_INNER(a, b) a##b
#define XAI_TRACE_CONCAT(a, b) XAI_TRACE_CONCAT_INNER(a, b)

#if XAI_TELEMETRY

/// Times the enclosing scope under `name` (a string literal,
/// `subsystem/op`). Nest freely; events carry start + duration + causal
/// ids so viewers reconstruct the stack per request. The histogram behind
/// `name` resolves once per call site (function-local static, same pattern
/// as XAI_COUNTER_ADD), so span end costs no registry lookup even on
/// per-coalition hot paths.
#define XAI_SPAN(name)                                                   \
  ::xai::telemetry::ScopedSpan XAI_TRACE_CONCAT(xai_span_, __LINE__) {   \
    name, [] {                                                           \
      static ::xai::telemetry::Histogram* const xai_span_hist =          \
          ::xai::telemetry::Registry::Global().GetHistogram(name);       \
      return xai_span_hist;                                              \
    }()                                                                  \
  }

/// XAI_SPAN gated on a condition evaluated at scope entry: span only when
/// the work is span-scale. Call sites on fine-grained hot paths (e.g. the
/// per-coalition batch-predict calls) use this to keep sub-microsecond
/// calls out of the trace — and out of the overhead budget — while
/// batch-scale calls through the same function stay visible.
#define XAI_SPAN_IF(cond, name)                                          \
  std::optional<::xai::telemetry::ScopedSpan> XAI_TRACE_CONCAT(          \
      xai_span_, __LINE__);                                              \
  if (cond)                                                              \
  XAI_TRACE_CONCAT(xai_span_, __LINE__).emplace(name, [] {               \
    static ::xai::telemetry::Histogram* const xai_span_hist =            \
        ::xai::telemetry::Registry::Global().GetHistogram(name);         \
    return xai_span_hist;                                                \
  }())

/// Installs a TraceContext for the enclosing scope (RAII). Compiles away
/// with telemetry, so the serving hot path carries zero context-switching
/// cost in an XAI_TELEMETRY=0 build.
#define XAI_TRACE_CONTEXT(...)                                     \
  ::xai::telemetry::ScopedTraceContext XAI_TRACE_CONCAT(           \
      xai_trace_ctx_, __LINE__)(__VA_ARGS__)

#else

#define XAI_SPAN(name) \
  do {                 \
  } while (0)

#define XAI_SPAN_IF(cond, name) \
  do {                          \
    if (false) {                \
      (void)(cond);             \
    }                           \
  } while (0)

#define XAI_TRACE_CONTEXT(...)        \
  do {                                \
    (void)sizeof((__VA_ARGS__));      \
  } while (0)

#endif  // XAI_TELEMETRY

#endif  // XAI_CORE_TRACE_H_
