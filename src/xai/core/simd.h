#ifndef XAI_CORE_SIMD_H_
#define XAI_CORE_SIMD_H_

#include <cstddef>

/// \file
/// Portable vectorized math kernels — the dense-linear-algebra core under
/// Matrix, the WLS solvers, Newton steps, and batch prediction.
///
/// Three backends are compiled into every binary and selected behind one
/// dispatch point:
///   - kAvx2:   4-wide AVX2 (+FMA-capable hardware, but see below),
///   - kSse2:   2x 2-wide SSE2 (baseline on x86-64),
///   - kScalar: plain doubles.
/// The active backend is chosen at startup from CPUID, overridable with the
/// environment variable `XAI_SIMD=avx2|sse2|scalar` (for A/B testing and the
/// scalar CI job) and at runtime with SetBackend (tests and benches only —
/// not thread-safe against concurrent kernel calls).
///
/// Determinism contract (the analogue of the parallel runtime's fixed
/// chunking, §6 of DESIGN.md): every reduction uses a fixed 4-wide striped
/// accumulator layout —
///
///   acc[l] += a[4*i + l] * b[4*i + l]      l = 0..3, i ascending
///   tail elements r go into acc[r]
///   result = (acc[0] + acc[1]) + (acc[2] + acc[3])
///
/// — which the SSE2 backend executes as two 2-lane halves and the scalar
/// backend emulates with four named doubles. Elementwise kernels (Axpy,
/// WeightedOuterAccumulate, Gemm) carry one independent accumulation chain
/// per output element, ordered by the contraction index. Because each IEEE
/// lane operation is identical across widths, every kernel is bit-identical
/// across all three backends and any thread count. FMA is deliberately NOT
/// used inside the contract: a fused multiply-add rounds once where SSE2 and
/// scalar code round twice, which would break cross-backend bit-equality.
/// (Results differ from the pre-kernel textbook loops only by summation
/// order, i.e. within documented tolerance — bench_e21 pins the deltas.)
namespace xai {
namespace simd {

enum class Backend { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Name for logs/benches: "scalar", "sse2", "avx2".
const char* BackendName(Backend backend);

/// Best backend this CPU can execute (compile-time capped on non-x86).
Backend MaxSupported();

/// The backend all kernels currently dispatch to. Initialized on first use
/// from XAI_SIMD (clamped to MaxSupported()), defaulting to MaxSupported().
Backend Active();

/// Forces the active backend (clamped to MaxSupported(); returns what was
/// actually applied). For tests and benches; do not call concurrently with
/// running kernels.
Backend SetBackend(Backend backend);

/// \name Kernels
/// All pointers may alias only where noted; n == 0 is always valid.
/// @{

/// Striped dot product sum_i a[i] * b[i].
double Dot(const double* a, const double* b, size_t n);

/// y[i] += s * x[i] (elementwise; x and y must not alias).
void Axpy(double s, const double* x, double* y, size_t n);

/// Striped sum_i w[i] * (a[i] - b[i])^2; pass w == nullptr for the
/// unweighted distance. The per-lane term is ((a-b)*(a-b)) * w.
double ScaledSquaredDistance(const double* a, const double* b, size_t n,
                             const double* w = nullptr);

/// Rank-1 upper-triangle update for X^T diag(s) X assembly:
///   g[a * stride + b] += (w * row[a]) * row[b]   for 0 <= a <= b < d.
/// Only the upper triangle is written; callers mirror it once at the end.
void WeightedOuterAccumulate(double w, const double* row, int d, double* g,
                             int stride);

/// Register-blocked C += A * B for row-major operands:
///   A is m x k (leading dimension lda), B is k x n (ldb), C is m x n (ldc).
/// Each C element accumulates over the contraction index in ascending
/// order, so the result is independent of the blocking and backend.
void Gemm(int m, int n, int k, const double* a, int lda, const double* b,
          int ldb, double* c, int ldc);

/// C += A^T * B for row-major operands: A is k x m (lda), B is k x n (ldb),
/// C is m x n (ldc). This is the normal-equation / Gram building block
/// (B == A and unit weights give X^T X).
void GemmTN(int m, int n, int k, const double* a, int lda, const double* b,
            int ldb, double* c, int ldc);

/// @}

}  // namespace simd
}  // namespace xai

#endif  // XAI_CORE_SIMD_H_
