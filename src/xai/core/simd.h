#ifndef XAI_CORE_SIMD_H_
#define XAI_CORE_SIMD_H_

#include <cstddef>

/// \file
/// Portable vectorized math kernels — the dense-linear-algebra core under
/// Matrix, the WLS solvers, Newton steps, and batch prediction.
///
/// Four backends are compiled into every binary and selected behind one
/// dispatch point (a function-pointer table resolved per SetBackend() /
/// environment read — kernels never branch on the backend internally):
///   - kFma:    4-wide AVX2 with fused multiply-add (OPT-IN, see below),
///   - kAvx2:   4-wide AVX2 (+FMA-capable hardware, but FMA unused),
///   - kSse2:   2x 2-wide SSE2 (baseline on x86-64),
///   - kScalar: plain doubles.
/// The active backend is chosen at startup from CPUID, overridable with the
/// environment variable `XAI_SIMD=fma|avx2|sse2|scalar` (for A/B testing and
/// the scalar/fma CI jobs) and at runtime with SetBackend (tests and benches
/// only — not thread-safe against concurrent kernel calls). Unknown XAI_SIMD
/// values abort: a typo silently falling back to auto-detection would
/// invalidate whatever A/B experiment the variable was set for.
///
/// Determinism contract (the analogue of the parallel runtime's fixed
/// chunking, §6 of DESIGN.md): every reduction uses a fixed 4-wide striped
/// accumulator layout —
///
///   acc[l] += a[4*i + l] * b[4*i + l]      l = 0..3, i ascending
///   tail elements r go into acc[r]
///   result = (acc[0] + acc[1]) + (acc[2] + acc[3])
///
/// — which the SSE2 backend executes as two 2-lane halves and the scalar
/// backend emulates with four named doubles. Elementwise kernels (Axpy,
/// WeightedOuterAccumulate, Gemm) carry one independent accumulation chain
/// per output element, ordered by the contraction index. Because each IEEE
/// lane operation is identical across widths, every kernel is bit-identical
/// across the scalar/sse2/avx2 backends and any thread count — including
/// the packed, cache-blocked, multithreaded GEMM path: KC blocks are
/// processed serially in ascending contraction order, row panels partition C
/// disjointly across threads, and edge micro-kernels only touch valid panel
/// lanes (never zero padding, which could flip -0.0 to +0.0).
///
/// The FMA tier is deliberately OUTSIDE this contract: a fused multiply-add
/// rounds once where the other backends round twice, so kFma results agree
/// with the default tiers only to tolerance (~1e-15 relative per operation;
/// usually closer to the true value). It is therefore never auto-selected —
/// MaxSupported() tops out at kAvx2 — and must be requested explicitly via
/// XAI_SIMD=fma or SetBackend(Backend::kFma). Tests validate it against a
/// long-double reference, not bitwise. Within the fma tier itself, the
/// packed and direct GEMM paths agree bitwise on full register tiles but
/// may differ in the last ulp on edge rows/columns (the two paths draw
/// their fused/scalar region boundaries at different granularities); both
/// stay inside the long-double tolerance.
namespace xai {
namespace simd {

enum class Backend { kScalar = 0, kSse2 = 1, kAvx2 = 2, kFma = 3 };

/// Register-tile shape of the packed GEMM micro-kernel: each call updates an
/// MR x NR block of C over a KC-long contraction. Exposed so tests can probe
/// the edge shapes (m, n in {1, MR-1, MR, MR+1, ...}) deliberately.
inline constexpr int kGemmMR = 4;
inline constexpr int kGemmNR = 8;

/// Name for logs/benches: "scalar", "sse2", "avx2", "fma".
const char* BackendName(Backend backend);

/// Best *bit-identical* backend this CPU can execute (compile-time capped on
/// non-x86). Never returns kFma — the FMA tier is opt-in only.
Backend MaxSupported();

/// True when the CPU can execute the opt-in FMA tier (AVX2 + FMA3).
bool FmaSupported();

/// Parses an XAI_SIMD value ("scalar" | "sse2" | "avx2" | "fma") into a
/// Backend. Aborts via XAI_CHECK on nullptr or any other string — a typo'd
/// backend name must not silently fall back to auto-detection.
Backend ParseBackendName(const char* name);

/// The backend all kernels currently dispatch to. Initialized on first use
/// from XAI_SIMD (clamped to what the hardware supports), defaulting to
/// MaxSupported().
Backend Active();

/// Forces the active backend and re-resolves the kernel dispatch table
/// (returns what was actually applied: kScalar..kAvx2 clamp to
/// MaxSupported(); kFma falls back to MaxSupported() when the CPU lacks
/// FMA). For tests and benches; do not call concurrently with running
/// kernels.
Backend SetBackend(Backend backend);

/// \name Kernels
/// All pointers may alias only where noted; n == 0 is always valid.
/// @{

/// Striped dot product sum_i a[i] * b[i].
double Dot(const double* a, const double* b, size_t n);

/// y[i] += s * x[i] (elementwise; x and y must not alias).
void Axpy(double s, const double* x, double* y, size_t n);

/// Striped sum_i w[i] * (a[i] - b[i])^2; pass w == nullptr for the
/// unweighted distance. The per-lane term is ((a-b)*(a-b)) * w.
double ScaledSquaredDistance(const double* a, const double* b, size_t n,
                             const double* w = nullptr);

/// Rank-1 upper-triangle update for X^T diag(s) X assembly:
///   g[a * stride + b] += (w * row[a]) * row[b]   for 0 <= a <= b < d.
/// Only the upper triangle is written; callers mirror it once at the end.
void WeightedOuterAccumulate(double w, const double* row, int d, double* g,
                             int stride);

/// Register-blocked C += A * B for row-major operands:
///   A is m x k (leading dimension lda), B is k x n (ldb), C is m x n (ldc).
/// Each C element accumulates over the contraction index in ascending
/// order, so the result is independent of the blocking, backend, and thread
/// count. Routes to GemmPacked above a size threshold and GemmDirect below
/// it; both produce identical bits on the default tiers.
void Gemm(int m, int n, int k, const double* a, int lda, const double* b,
          int ldb, double* c, int ldc);

/// C += A^T * B for row-major operands: A is k x m (lda), B is k x n (ldb),
/// C is m x n (ldc). This is the normal-equation / Gram building block
/// (B == A and unit weights give X^T X). Same packed/direct routing and
/// chain guarantees as Gemm.
void GemmTN(int m, int n, int k, const double* a, int lda, const double* b,
            int ldb, double* c, int ldc);

/// The unpacked register-tiled GEMM (the pre-packing code path): streams B
/// rows straight from memory with no copy. Wins below the packing threshold
/// and serves as the A/B baseline for bench_e21's packed-vs-direct row.
void GemmDirect(int m, int n, int k, const double* a, int lda,
                const double* b, int ldb, double* c, int ldc);

/// Direct (unpacked) C += A^T * B; see GemmDirect.
void GemmTNDirect(int m, int n, int k, const double* a, int lda,
                  const double* b, int ldb, double* c, int ldc);

/// Packed, cache-blocked, multithreaded GEMM: A is repacked into contiguous
/// MR x KC panels and B into KC x NR panels so the micro-kernel streams at
/// unit stride regardless of the leading dimensions; KC x NC blocks of B are
/// shared across a ParallelFor over MC-row blocks of C (disjoint C rows per
/// chunk — deterministic and race-free at any thread count). Bit-identical
/// to GemmDirect on the scalar/sse2/avx2 tiers.
void GemmPacked(int m, int n, int k, const double* a, int lda,
                const double* b, int ldb, double* c, int ldc);

/// Packed C += A^T * B; see GemmPacked.
void GemmTNPacked(int m, int n, int k, const double* a, int lda,
                  const double* b, int ldb, double* c, int ldc);

/// Syrk-style Gram update C += A^T * B restricted to the upper triangle:
/// A and B are k x dim (lda/ldb), C is dim x dim (ldc). Register tiles
/// entirely below the diagonal are skipped — about half the flops of the
/// full product — and tiles straddling the diagonal are computed in full,
/// so entries with b < a are UNDEFINED (partially updated); read only
/// C[a][b] with b >= a. Upper-triangle chains are identical to GemmTN's
/// (and to WeightedOuterAccumulate replay), so the bit-identity contract
/// holds wherever reads are allowed. This is WlsAccumulator's Gram kernel.
void GemmTNUpper(int dim, int k, const double* a, int lda, const double* b,
                 int ldb, double* c, int ldc);

/// @}

}  // namespace simd
}  // namespace xai

#endif  // XAI_CORE_SIMD_H_
