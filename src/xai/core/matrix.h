#ifndef XAI_CORE_MATRIX_H_
#define XAI_CORE_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "xai/core/check.h"
#include "xai/core/status.h"

namespace xai {

/// \brief Dense column vector of doubles.
using Vector = std::vector<double>;

/// \brief Dense row-major matrix of doubles.
///
/// Small, dependency-free linear algebra sufficient for the models and
/// explainers in libxai (ridge regression, Newton steps, Hessian solves).
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, fill) {
    XAI_CHECK_GE(rows, 0);
    XAI_CHECK_GE(cols, 0);
  }
  /// Creates a matrix from nested initializer lists (row major).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Identity matrix of size n.
  static Matrix Identity(int n);
  /// Matrix with `diag` on the diagonal.
  static Matrix Diagonal(const Vector& diag);
  /// Builds a matrix from a vector of rows (all the same length).
  static Matrix FromRows(const std::vector<Vector>& rows);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  double& operator()(int r, int c) {
    XAI_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    XAI_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  /// Raw pointer to row r (cols() contiguous doubles).
  double* RowPtr(int r) { return &data_[static_cast<size_t>(r) * cols_]; }
  const double* RowPtr(int r) const {
    return &data_[static_cast<size_t>(r) * cols_];
  }

  /// Copies row r into a Vector.
  Vector Row(int r) const;
  /// Copies column c into a Vector.
  Vector Col(int c) const;
  /// Overwrites row r.
  void SetRow(int r, const Vector& v);

  Matrix Transpose() const;
  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(double s) const;
  /// Matrix product; inner dimensions must agree.
  Matrix MatMul(const Matrix& other) const;
  /// Matrix-vector product (v has cols() entries).
  Vector MatVec(const Vector& v) const;
  /// X^T v for v with rows() entries.
  Vector TransposeMatVec(const Vector& v) const;
  /// X^T X (Gram matrix), computed without materializing the transpose.
  Matrix Gram() const;
  /// X^T diag(w) X.
  Matrix WeightedGram(const Vector& w) const;

  /// In-place add s * I.
  void AddScaledIdentity(double s);

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// True if dimensions and all entries match to within `tol`.
  bool ApproxEquals(const Matrix& other, double tol = 1e-9) const;

  std::string ToString(int max_rows = 8) const;

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

/// \name Vector helpers
/// @{
double Dot(const Vector& a, const Vector& b);
double Norm2(const Vector& a);
Vector Add(const Vector& a, const Vector& b);
Vector Sub(const Vector& a, const Vector& b);
Vector Scale(const Vector& a, double s);
/// a += s * b
void Axpy(double s, const Vector& b, Vector* a);
/// @}

/// \name Factorizations and solvers
/// @{

/// Cholesky factorization of a symmetric positive-definite matrix.
/// Returns lower-triangular L with A = L L^T, or InvalidArgument if A is not
/// (numerically) SPD.
Result<Matrix> CholeskyFactor(const Matrix& a);

/// Solves A x = b for SPD A via Cholesky.
Result<Vector> CholeskySolve(const Matrix& a, const Vector& b);

/// Solves A X = B (multiple right-hand sides) for SPD A.
Result<Matrix> CholeskySolveMatrix(const Matrix& a, const Matrix& b);

/// Solves A x = b for general square A via partial-pivot LU.
Result<Vector> LuSolve(const Matrix& a, const Vector& b);

/// Inverse of a general square matrix via LU.
Result<Matrix> Inverse(const Matrix& a);

/// @}

}  // namespace xai

#endif  // XAI_CORE_MATRIX_H_
