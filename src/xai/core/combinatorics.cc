#include "xai/core/combinatorics.h"

#include <bit>

#include "xai/core/check.h"

namespace xai {

double Factorial(int n) {
  XAI_CHECK_GE(n, 0);
  double f = 1.0;
  for (int i = 2; i <= n; ++i) f *= i;
  return f;
}

double BinomialCoefficient(int n, int k) {
  if (k < 0 || k > n) return 0.0;
  k = std::min(k, n - k);
  double c = 1.0;
  for (int i = 0; i < k; ++i) c = c * (n - i) / (i + 1);
  return c;
}

double ShapleyWeight(int n, int subset_size) {
  XAI_CHECK(subset_size >= 0 && subset_size < n);
  return Factorial(subset_size) * Factorial(n - subset_size - 1) /
         Factorial(n);
}

void ForEachSubset(int n, const std::function<void(uint64_t)>& fn) {
  XAI_CHECK(n >= 0 && n < 63);
  uint64_t limit = 1ULL << n;
  for (uint64_t mask = 0; mask < limit; ++mask) fn(mask);
}

void ForEachSubsetOf(const std::vector<int>& elements,
                     const std::function<void(uint64_t)>& fn) {
  int n = static_cast<int>(elements.size());
  XAI_CHECK(n >= 0 && n < 63);
  uint64_t limit = 1ULL << n;
  for (uint64_t sub = 0; sub < limit; ++sub) {
    uint64_t mask = 0;
    for (int i = 0; i < n; ++i)
      if (sub & (1ULL << i)) mask |= 1ULL << elements[i];
    fn(mask);
  }
}

int PopCount(uint64_t mask) { return std::popcount(mask); }

std::vector<int> MaskToIndices(uint64_t mask) {
  std::vector<int> out;
  for (int i = 0; i < 64; ++i)
    if (mask & (1ULL << i)) out.push_back(i);
  return out;
}

uint64_t IndicesToMask(const std::vector<int>& indices) {
  uint64_t mask = 0;
  for (int i : indices) {
    XAI_CHECK(i >= 0 && i < 64);
    mask |= 1ULL << i;
  }
  return mask;
}

std::vector<double> ShapleyOfSetFunction(
    int n, const std::function<double(uint64_t)>& v) {
  XAI_CHECK(n >= 0 && n <= 24);
  std::vector<double> phi(n, 0.0);
  if (n == 0) return phi;
  // Cache all 2^n values (each evaluated once).
  uint64_t limit = 1ULL << n;
  std::vector<double> values(limit);
  for (uint64_t mask = 0; mask < limit; ++mask) values[mask] = v(mask);
  std::vector<double> w(n);
  for (int s = 0; s < n; ++s) w[s] = ShapleyWeight(n, s);
  for (uint64_t mask = 0; mask < limit; ++mask) {
    int size = PopCount(mask);
    if (size == n) continue;
    for (int i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) continue;
      phi[i] += w[size] * (values[mask | (1ULL << i)] - values[mask]);
    }
  }
  return phi;
}

}  // namespace xai
