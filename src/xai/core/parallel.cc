#include "xai/core/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "xai/core/check.h"
#include "xai/core/telemetry.h"
#include "xai/core/timer.h"
#include "xai/core/trace.h"

namespace xai {
namespace core {
namespace {

thread_local bool t_in_parallel_region = false;

/// Fixed-size pool with a broadcast-style parallel region: Run() publishes a
/// chunk counter, wakes every worker, and all workers plus the caller drain
/// chunks from the shared atomic until exhausted. There is no work stealing
/// and no task queue — one region at a time, which matches the chunked
/// ParallelFor model and keeps the synchronization easy to reason about.
class ThreadPool {
 public:
  explicit ThreadPool(int num_workers) {
    threads_.reserve(num_workers);
    for (int i = 0; i < num_workers; ++i)
      threads_.emplace_back([this] { WorkerLoop(); });
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
      ++epoch_;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  int num_workers() const { return static_cast<int>(threads_.size()); }

  void Run(int64_t num_chunks, const std::function<void(int64_t)>& fn) {
    // One region at a time; concurrent top-level callers serialize here.
    std::lock_guard<std::mutex> run_lock(run_mu_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      task_ = &fn;
      num_chunks_ = num_chunks;
      next_chunk_.store(0, std::memory_order_relaxed);
      has_error_.store(false, std::memory_order_relaxed);
      pending_workers_ = static_cast<int>(threads_.size());
#if XAI_TELEMETRY
      // Capture the caller's request context so spans inside chunks stay
      // attached to the request that spawned the region (published under
      // mu_ before the epoch bump; workers copy it under the same lock).
      region_ctx_ = telemetry::CurrentTraceContext();
#endif
      ++epoch_;
      publish_ns_.store(MonotonicNanos(), std::memory_order_relaxed);
    }
    XAI_COUNTER_INC("parallel/regions");
    cv_.notify_all();

    // The caller participates as one more worker.
    t_in_parallel_region = true;
    DrainChunks();
    t_in_parallel_region = false;

    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_workers_ == 0; });
    task_ = nullptr;
    if (first_error_) {
      std::exception_ptr error = first_error_;
      first_error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(error);
    }
  }

 private:
  void WorkerLoop() {
    t_in_parallel_region = true;
    uint64_t seen_epoch = 0;
    for (;;) {
#if XAI_TELEMETRY
      telemetry::TraceContext region_ctx;
#endif
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock,
                 [&] { return stop_ || epoch_ != seen_epoch; });
        if (stop_) return;
        seen_epoch = epoch_;
#if XAI_TELEMETRY
        region_ctx = region_ctx_;
#endif
      }
#if XAI_TELEMETRY
      // Adopt the region caller's request context for the duration of this
      // region: spans recorded inside chunks carry its trace_id and
      // parent-link to the span that opened the ParallelFor.
      telemetry::ScopedTraceContext ctx_scope(region_ctx);
#endif
      // Latency between a region being published and this worker picking up
      // its first chunk — the pool's scheduling overhead, aggregated.
      if (telemetry::Enabled()) {
        XAI_COUNTER_ADD(
            "parallel/queue_wait_ns",
            MonotonicNanos() - publish_ns_.load(std::memory_order_relaxed));
      }
      DrainChunks();
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_workers_ == 0) done_cv_.notify_all();
      }
    }
  }

  void DrainChunks() {
    // One span per worker per region (not per chunk): at fine grains a
    // per-chunk span costs two clock reads plus a contended histogram
    // update per chunk, which alone blows the <2% telemetry budget. The
    // chunk count is batched locally for the same reason.
    XAI_SPAN("parallel/drain");
    int64_t drained = 0;
    for (;;) {
      const int64_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks_) break;
      if (has_error_.load(std::memory_order_relaxed)) continue;
      try {
        ++drained;
        (*task_)(c);
      } catch (...) {
        has_error_.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
    }
    if (drained > 0) XAI_COUNTER_ADD("parallel/chunks", drained);
  }

  std::mutex run_mu_;  // Serializes top-level parallel regions.

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  uint64_t epoch_ = 0;
  bool stop_ = false;
  int pending_workers_ = 0;
  const std::function<void(int64_t)>* task_ = nullptr;
  int64_t num_chunks_ = 0;
#if XAI_TELEMETRY
  telemetry::TraceContext region_ctx_;  // Guarded by mu_.
#endif
  std::atomic<int64_t> next_chunk_{0};
  std::atomic<int64_t> publish_ns_{0};
  std::atomic<bool> has_error_{false};
  std::exception_ptr first_error_;

  std::vector<std::thread> threads_;
};

int InitialNumThreads() {
  if (const char* env = std::getenv("XAI_NUM_THREADS")) {
    int n = std::atoi(env);
    if (n >= 1) return n;
  }
  return HardwareConcurrency();
}

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;               // Guarded by g_pool_mu.
std::atomic<int> g_num_threads{0};                // 0 = not initialized yet.

int NumThreadsInitialized() {
  int n = g_num_threads.load(std::memory_order_acquire);
  if (n == 0) {
    std::lock_guard<std::mutex> lock(g_pool_mu);
    n = g_num_threads.load(std::memory_order_acquire);
    if (n == 0) {
      n = InitialNumThreads();
      g_num_threads.store(n, std::memory_order_release);
    }
  }
  return n;
}

// Returns the pool sized to the current thread count, creating or resizing
// it lazily. Null when the configured count is 1 (pure inline execution).
ThreadPool* GetPool() {
  const int n = NumThreadsInitialized();
  if (n <= 1) return nullptr;
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (!g_pool || g_pool->num_workers() != n - 1)
    g_pool = std::make_unique<ThreadPool>(n - 1);
  return g_pool.get();
}

}  // namespace

int HardwareConcurrency() {
  unsigned int n = std::thread::hardware_concurrency();
  return n >= 1 ? static_cast<int>(n) : 1;
}

void SetNumThreads(int n) {
  XAI_CHECK(!InParallelRegion());
  if (n < 1) n = 1;
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_num_threads.store(n, std::memory_order_release);
  // Drop a mis-sized pool now; the next parallel region rebuilds it.
  if (g_pool && g_pool->num_workers() != n - 1) g_pool.reset();
}

int GetNumThreads() { return NumThreadsInitialized(); }

bool InParallelRegion() { return t_in_parallel_region; }

namespace internal {

void RunChunks(int64_t num_chunks,
               const std::function<void(int64_t)>& chunk_fn) {
  if (num_chunks <= 0) return;
  // Nested regions (and single-chunk or single-thread runs) execute inline:
  // identical chunk layout, same results, no pool round-trip.
  if (num_chunks > 1 && !t_in_parallel_region) {
    if (ThreadPool* pool = GetPool()) {
      pool->Run(num_chunks, chunk_fn);
      return;
    }
  }
  // Inline path (single thread, single chunk, or nested region): count the
  // chunks in one batched add; no per-chunk span, the work is on the caller.
  XAI_COUNTER_ADD("parallel/chunks", num_chunks);
  for (int64_t c = 0; c < num_chunks; ++c) chunk_fn(c);
}

}  // namespace internal
}  // namespace core
}  // namespace xai
