#include "xai/core/status.h"

#include <cstdio>
#include <cstdlib>

namespace xai {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void DieOnBadResult(const Status& status) {
  std::fprintf(stderr, "Fatal: ValueOrDie() on error result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace xai
