#ifndef XAI_CORE_COMBINATORICS_H_
#define XAI_CORE_COMBINATORICS_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace xai {

/// \brief Subset/permutation utilities for the exact Shapley computations.
/// Subsets of up to 63 elements are represented as uint64_t bitmasks.

/// n! as a double (exact up to n = 170 in double range).
double Factorial(int n);

/// Binomial coefficient C(n, k) as a double.
double BinomialCoefficient(int n, int k);

/// The classic Shapley permutation weight |S|! (n - |S| - 1)! / n!.
double ShapleyWeight(int n, int subset_size);

/// Invokes `fn(mask)` for every subset mask of {0..n-1}; n <= 24 recommended.
void ForEachSubset(int n, const std::function<void(uint64_t)>& fn);

/// Invokes `fn(mask)` for every subset of the given elements.
void ForEachSubsetOf(const std::vector<int>& elements,
                     const std::function<void(uint64_t)>& fn);

/// Number of set bits.
int PopCount(uint64_t mask);

/// Elements of a bitmask as a sorted vector of indices.
std::vector<int> MaskToIndices(uint64_t mask);

/// Bitmask for a set of indices (each < 64).
uint64_t IndicesToMask(const std::vector<int>& indices);

/// Exact Shapley values of an arbitrary set function v over n players
/// (full 2^n enumeration; n <= 24). The generic workhorse shared by the
/// feature explainers, the tuple-Shapley engine and pipeline-stage
/// attribution. `v` is called at most 2^n times.
std::vector<double> ShapleyOfSetFunction(
    int n, const std::function<double(uint64_t)>& v);

}  // namespace xai

#endif  // XAI_CORE_COMBINATORICS_H_
