#include "xai/core/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "xai/core/check.h"

namespace xai {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / v.size();
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / (v.size() - 1);
}

double StdDev(const std::vector<double>& v) { return std::sqrt(Variance(v)); }

double Quantile(std::vector<double> v, double q) {
  XAI_CHECK(!v.empty());
  XAI_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(v.begin(), v.end());
  double pos = q * (v.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = pos - lo;
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double Median(std::vector<double> v) { return Quantile(std::move(v), 0.5); }

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  XAI_CHECK_EQ(a.size(), b.size());
  if (a.size() < 2) return 0.0;
  double ma = Mean(a);
  double mb = Mean(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da <= 0.0 || db <= 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

std::vector<double> Ranks(const std::vector<double>& v) {
  std::vector<int> idx(v.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(),
            [&](int x, int y) { return v[x] < v[y]; });
  std::vector<double> ranks(v.size());
  size_t i = 0;
  while (i < idx.size()) {
    size_t j = i;
    while (j + 1 < idx.size() && v[idx[j + 1]] == v[idx[i]]) ++j;
    double avg_rank = (static_cast<double>(i) + j) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[idx[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  return PearsonCorrelation(Ranks(a), Ranks(b));
}

int ArgMax(const std::vector<double>& v) {
  if (v.empty()) return -1;
  return static_cast<int>(std::max_element(v.begin(), v.end()) - v.begin());
}

int ArgMin(const std::vector<double>& v) {
  if (v.empty()) return -1;
  return static_cast<int>(std::min_element(v.begin(), v.end()) - v.begin());
}

std::vector<int> ArgSortDescending(const std::vector<double>& v) {
  std::vector<int> idx(v.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(),
                   [&](int a, int b) { return v[a] > v[b]; });
  return idx;
}

std::vector<int> ArgSortAscending(const std::vector<double>& v) {
  std::vector<int> idx(v.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(),
                   [&](int a, int b) { return v[a] < v[b]; });
  return idx;
}

}  // namespace xai
