#ifndef XAI_CAUSAL_SCM_H_
#define XAI_CAUSAL_SCM_H_

#include <functional>
#include <map>
#include <vector>

#include "xai/causal/dag.h"
#include "xai/core/matrix.h"
#include "xai/core/rng.h"
#include "xai/core/status.h"
#include "xai/data/dataset.h"

namespace xai {

/// \brief Linear-Gaussian structural causal model.
///
/// Every node i follows the structural equation
///   X_i = bias_i + sum_{j in Pa(i)} w_{ij} X_j + sigma_i * U_i,
/// with independent standard-normal exogenous noise U_i. Supports
/// observational sampling, interventional sampling (`do(X_S = x_S)`), and
/// deterministic counterfactuals via abduction-action-prediction — the three
/// rungs needed by causal Shapley values, Shapley flow and LEWIS.
class LinearScm {
 public:
  /// Creates an SCM over `dag` with zero weights, zero bias, unit noise.
  explicit LinearScm(Dag dag);

  const Dag& dag() const { return dag_; }
  int num_nodes() const { return dag_.num_nodes(); }

  /// Sets the structural weight of edge parent -> child (edge must exist).
  Status SetWeight(int parent, int child, double weight);
  Status SetWeight(const std::string& parent, const std::string& child,
                   double weight);
  double Weight(int parent, int child) const;
  /// Sets the additive bias of a node's equation.
  void SetBias(int node, double bias) { bias_[node] = bias; }
  double Bias(int node) const { return bias_[node]; }
  /// Sets the noise standard deviation of a node.
  void SetNoiseStdDev(int node, double sigma) { sigma_[node] = sigma; }
  double NoiseStdDev(int node) const { return sigma_[node]; }

  /// Draws n observational samples (rows = samples, cols = nodes).
  Matrix Sample(int n, Rng* rng) const;

  /// Draws n samples under the hard intervention do(X_k = v) for every
  /// (k, v) in `interventions`.
  Matrix SampleInterventional(const std::map<int, double>& interventions,
                              int n, Rng* rng) const;

  /// Deterministic counterfactual: abducts each node's noise from the fully
  /// `observed` world, applies the interventions, and propagates.
  Vector Counterfactual(const Vector& observed,
                        const std::map<int, double>& interventions) const;

  /// The noise values implied by a fully observed world (abduction step).
  Vector AbductNoise(const Vector& observed) const;

  /// Mean of node values under do(interventions) computed in closed form
  /// (linear-Gaussian SCMs admit exact interventional means).
  Vector InterventionalMean(const std::map<int, double>& interventions) const;

  /// Total causal effect of a unit change of `from` on `to` (sum over
  /// directed paths of products of edge weights).
  double TotalEffect(int from, int to) const;

  /// Wraps `n` samples into a Dataset with all-numeric schema and labels
  /// produced by `label_of_row`.
  Dataset SampleDataset(int n, Rng* rng,
                        const std::function<double(const Vector&)>&
                            label_of_row,
                        TaskType task = TaskType::kClassification) const;

 private:
  double Mechanism(int node, const Vector& values) const;

  Dag dag_;
  /// weight_[child] aligned with dag_.Parents(child).
  std::vector<std::vector<double>> weight_;
  Vector bias_;
  Vector sigma_;
};

/// Convenience builders for the canonical three-node structures used in the
/// causal-Shapley experiments.
/// Chain: X0 -> X1 -> X2 with the given edge weights.
LinearScm MakeChainScm(double w01, double w12);
/// Fork: X0 -> X1, X0 -> X2.
LinearScm MakeForkScm(double w01, double w02);
/// Collider: X0 -> X2 <- X1.
LinearScm MakeColliderScm(double w02, double w12);

}  // namespace xai

#endif  // XAI_CAUSAL_SCM_H_
