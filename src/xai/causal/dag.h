#ifndef XAI_CAUSAL_DAG_H_
#define XAI_CAUSAL_DAG_H_

#include <string>
#include <vector>

#include "xai/core/status.h"

namespace xai {

/// \brief Directed acyclic graph over named nodes.
///
/// Used as the causal diagram for causal/asymmetric Shapley values, Shapley
/// flow and LEWIS-style counterfactual reasoning.
class Dag {
 public:
  Dag() = default;
  /// Creates a DAG with `names.size()` nodes and no edges.
  explicit Dag(std::vector<std::string> names);

  int num_nodes() const { return static_cast<int>(names_.size()); }
  const std::string& name(int node) const { return names_[node]; }
  /// Index of a node by name, or -1.
  int NodeIndex(const std::string& name) const;

  /// Adds edge from -> to. Returns InvalidArgument if it creates a cycle or
  /// AlreadyExists if the edge is present.
  Status AddEdge(int from, int to);
  Status AddEdge(const std::string& from, const std::string& to);

  bool HasEdge(int from, int to) const;
  const std::vector<int>& Parents(int node) const { return parents_[node]; }
  const std::vector<int>& Children(int node) const { return children_[node]; }
  /// All edges as (from, to) pairs in insertion order.
  const std::vector<std::pair<int, int>>& Edges() const { return edges_; }

  /// Nodes in a topological order (parents before children).
  std::vector<int> TopologicalOrder() const;

  /// True if `a` is an ancestor of `b` (a strictly precedes b on some path).
  bool IsAncestor(int a, int b) const;

  /// All descendants of `node` (excluding itself).
  std::vector<int> Descendants(int node) const;

  /// Root nodes (no parents).
  std::vector<int> Roots() const;

 private:
  bool WouldCreateCycle(int from, int to) const;

  std::vector<std::string> names_;
  std::vector<std::vector<int>> parents_;
  std::vector<std::vector<int>> children_;
  std::vector<std::pair<int, int>> edges_;
};

}  // namespace xai

#endif  // XAI_CAUSAL_DAG_H_
