#include "xai/causal/scm.h"

#include <algorithm>

#include "xai/core/check.h"

namespace xai {

LinearScm::LinearScm(Dag dag)
    : dag_(std::move(dag)),
      weight_(dag_.num_nodes()),
      bias_(dag_.num_nodes(), 0.0),
      sigma_(dag_.num_nodes(), 1.0) {
  for (int i = 0; i < dag_.num_nodes(); ++i)
    weight_[i].resize(dag_.Parents(i).size(), 0.0);
}

Status LinearScm::SetWeight(int parent, int child, double weight) {
  const auto& parents = dag_.Parents(child);
  // weight_ slots can lag behind edges added after construction.
  weight_[child].resize(parents.size(), 0.0);
  for (size_t k = 0; k < parents.size(); ++k) {
    if (parents[k] == parent) {
      weight_[child][k] = weight;
      return Status::OK();
    }
  }
  return Status::NotFound("no edge " + dag_.name(parent) + "->" +
                          dag_.name(child));
}

Status LinearScm::SetWeight(const std::string& parent,
                            const std::string& child, double weight) {
  int p = dag_.NodeIndex(parent);
  int c = dag_.NodeIndex(child);
  if (p < 0 || c < 0) return Status::NotFound("unknown node name");
  return SetWeight(p, c, weight);
}

double LinearScm::Weight(int parent, int child) const {
  const auto& parents = dag_.Parents(child);
  for (size_t k = 0; k < parents.size() && k < weight_[child].size(); ++k)
    if (parents[k] == parent) return weight_[child][k];
  return 0.0;
}

double LinearScm::Mechanism(int node, const Vector& values) const {
  double v = bias_[node];
  const auto& parents = dag_.Parents(node);
  for (size_t k = 0; k < parents.size(); ++k) {
    double w = k < weight_[node].size() ? weight_[node][k] : 0.0;
    v += w * values[parents[k]];
  }
  return v;
}

Matrix LinearScm::Sample(int n, Rng* rng) const {
  return SampleInterventional({}, n, rng);
}

Matrix LinearScm::SampleInterventional(
    const std::map<int, double>& interventions, int n, Rng* rng) const {
  std::vector<int> order = dag_.TopologicalOrder();
  Matrix out(n, num_nodes());
  Vector values(num_nodes());
  for (int i = 0; i < n; ++i) {
    for (int node : order) {
      auto it = interventions.find(node);
      if (it != interventions.end()) {
        values[node] = it->second;
      } else {
        values[node] = Mechanism(node, values) +
                       sigma_[node] * rng->Normal();
      }
    }
    out.SetRow(i, values);
  }
  return out;
}

Vector LinearScm::AbductNoise(const Vector& observed) const {
  XAI_CHECK_EQ(static_cast<int>(observed.size()), num_nodes());
  Vector noise(num_nodes());
  for (int node = 0; node < num_nodes(); ++node) {
    double residual = observed[node] - Mechanism(node, observed);
    noise[node] = sigma_[node] > 1e-12 ? residual / sigma_[node] : 0.0;
  }
  return noise;
}

Vector LinearScm::Counterfactual(
    const Vector& observed, const std::map<int, double>& interventions) const {
  Vector noise = AbductNoise(observed);
  std::vector<int> order = dag_.TopologicalOrder();
  Vector values(num_nodes());
  for (int node : order) {
    auto it = interventions.find(node);
    if (it != interventions.end()) {
      values[node] = it->second;
    } else {
      values[node] = Mechanism(node, values) + sigma_[node] * noise[node];
    }
  }
  return values;
}

Vector LinearScm::InterventionalMean(
    const std::map<int, double>& interventions) const {
  std::vector<int> order = dag_.TopologicalOrder();
  Vector mean(num_nodes());
  for (int node : order) {
    auto it = interventions.find(node);
    mean[node] =
        it != interventions.end() ? it->second : Mechanism(node, mean);
  }
  return mean;
}

double LinearScm::TotalEffect(int from, int to) const {
  if (from == to) return 1.0;
  // Dynamic programming over a topological order: effect[v] = sum over
  // parents p of effect[p] * w(p, v), seeded with effect[from] = 1.
  std::vector<int> order = dag_.TopologicalOrder();
  Vector effect(num_nodes(), 0.0);
  effect[from] = 1.0;
  for (int node : order) {
    if (node == from) continue;
    const auto& parents = dag_.Parents(node);
    double acc = 0.0;
    for (size_t k = 0; k < parents.size(); ++k)
      acc += effect[parents[k]] *
             (k < weight_[node].size() ? weight_[node][k] : 0.0);
    effect[node] = acc;
  }
  return effect[to];
}

Dataset LinearScm::SampleDataset(
    int n, Rng* rng, const std::function<double(const Vector&)>& label_of_row,
    TaskType task) const {
  Matrix x = Sample(n, rng);
  Vector y(n);
  for (int i = 0; i < n; ++i) y[i] = label_of_row(x.Row(i));
  Schema schema;
  for (int j = 0; j < num_nodes(); ++j)
    schema.features.push_back(FeatureSpec::Numeric(dag_.name(j)));
  schema.task = task;
  return Dataset(std::move(schema), std::move(x), std::move(y));
}

namespace {

Dag ThreeNodeDag() { return Dag({"x0", "x1", "x2"}); }

}  // namespace

LinearScm MakeChainScm(double w01, double w12) {
  Dag dag = ThreeNodeDag();
  XAI_CHECK(dag.AddEdge(0, 1).ok());
  XAI_CHECK(dag.AddEdge(1, 2).ok());
  LinearScm scm(std::move(dag));
  XAI_CHECK(scm.SetWeight(0, 1, w01).ok());
  XAI_CHECK(scm.SetWeight(1, 2, w12).ok());
  return scm;
}

LinearScm MakeForkScm(double w01, double w02) {
  Dag dag = ThreeNodeDag();
  XAI_CHECK(dag.AddEdge(0, 1).ok());
  XAI_CHECK(dag.AddEdge(0, 2).ok());
  LinearScm scm(std::move(dag));
  XAI_CHECK(scm.SetWeight(0, 1, w01).ok());
  XAI_CHECK(scm.SetWeight(0, 2, w02).ok());
  return scm;
}

LinearScm MakeColliderScm(double w02, double w12) {
  Dag dag = ThreeNodeDag();
  XAI_CHECK(dag.AddEdge(0, 2).ok());
  XAI_CHECK(dag.AddEdge(1, 2).ok());
  LinearScm scm(std::move(dag));
  XAI_CHECK(scm.SetWeight(0, 2, w02).ok());
  XAI_CHECK(scm.SetWeight(1, 2, w12).ok());
  return scm;
}

}  // namespace xai
