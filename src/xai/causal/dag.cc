#include "xai/causal/dag.h"

#include <algorithm>
#include <queue>

#include "xai/core/check.h"

namespace xai {

Dag::Dag(std::vector<std::string> names)
    : names_(std::move(names)),
      parents_(names_.size()),
      children_(names_.size()) {}

int Dag::NodeIndex(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return static_cast<int>(i);
  return -1;
}

Status Dag::AddEdge(int from, int to) {
  if (from < 0 || from >= num_nodes() || to < 0 || to >= num_nodes())
    return Status::InvalidArgument("edge endpoint out of range");
  if (from == to) return Status::InvalidArgument("self-loop");
  if (HasEdge(from, to)) return Status::AlreadyExists("edge exists");
  if (WouldCreateCycle(from, to))
    return Status::InvalidArgument("edge " + names_[from] + "->" +
                                   names_[to] + " would create a cycle");
  parents_[to].push_back(from);
  children_[from].push_back(to);
  edges_.emplace_back(from, to);
  return Status::OK();
}

Status Dag::AddEdge(const std::string& from, const std::string& to) {
  int f = NodeIndex(from);
  int t = NodeIndex(to);
  if (f < 0) return Status::NotFound("no node named " + from);
  if (t < 0) return Status::NotFound("no node named " + to);
  return AddEdge(f, t);
}

bool Dag::HasEdge(int from, int to) const {
  const auto& ch = children_[from];
  return std::find(ch.begin(), ch.end(), to) != ch.end();
}

bool Dag::WouldCreateCycle(int from, int to) const {
  // Cycle iff `from` is reachable from `to`.
  std::vector<bool> seen(num_nodes(), false);
  std::queue<int> q;
  q.push(to);
  seen[to] = true;
  while (!q.empty()) {
    int u = q.front();
    q.pop();
    if (u == from) return true;
    for (int v : children_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        q.push(v);
      }
    }
  }
  return false;
}

std::vector<int> Dag::TopologicalOrder() const {
  std::vector<int> indeg(num_nodes());
  for (int i = 0; i < num_nodes(); ++i)
    indeg[i] = static_cast<int>(parents_[i].size());
  std::queue<int> q;
  for (int i = 0; i < num_nodes(); ++i)
    if (indeg[i] == 0) q.push(i);
  std::vector<int> order;
  order.reserve(num_nodes());
  while (!q.empty()) {
    int u = q.front();
    q.pop();
    order.push_back(u);
    for (int v : children_[u])
      if (--indeg[v] == 0) q.push(v);
  }
  XAI_CHECK_EQ(static_cast<int>(order.size()), num_nodes());
  return order;
}

bool Dag::IsAncestor(int a, int b) const {
  std::vector<bool> seen(num_nodes(), false);
  std::queue<int> q;
  q.push(a);
  while (!q.empty()) {
    int u = q.front();
    q.pop();
    for (int v : children_[u]) {
      if (v == b) return true;
      if (!seen[v]) {
        seen[v] = true;
        q.push(v);
      }
    }
  }
  return false;
}

std::vector<int> Dag::Descendants(int node) const {
  std::vector<bool> seen(num_nodes(), false);
  std::queue<int> q;
  q.push(node);
  std::vector<int> out;
  while (!q.empty()) {
    int u = q.front();
    q.pop();
    for (int v : children_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        out.push_back(v);
        q.push(v);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int> Dag::Roots() const {
  std::vector<int> roots;
  for (int i = 0; i < num_nodes(); ++i)
    if (parents_[i].empty()) roots.push_back(i);
  return roots;
}

}  // namespace xai
