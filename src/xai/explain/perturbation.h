#ifndef XAI_EXPLAIN_PERTURBATION_H_
#define XAI_EXPLAIN_PERTURBATION_H_

#include <vector>

#include "xai/core/matrix.h"
#include "xai/core/rng.h"
#include "xai/data/dataset.h"
#include "xai/data/transform.h"

namespace xai {

/// \brief Local neighborhood sampler for perturbation-based explainers
/// (LIME, Anchors, and the adversarial-attack experiment).
///
/// Two strategies, matching the two classic LIME-tabular modes:
///  - kGaussian: numeric features are jittered around the instance with the
///    training standard deviation; categoricals are resampled from their
///    empirical training distribution.
///  - kDiscretized: each feature's bin is resampled from the training bin
///    distribution and a raw value is drawn inside the bin (LIME's default
///    discretize_continuous mode).
class Perturber {
 public:
  enum class Strategy { kGaussian, kDiscretized };

  /// Learns feature statistics (stddevs, category/bin frequencies) from the
  /// training data.
  Perturber(const Dataset& train, Strategy strategy, int discretizer_bins = 4);

  /// Draws `n` perturbed raw feature vectors around `instance`. Features
  /// whose index appears in `frozen` keep their instance value (used by
  /// Anchors to condition on a rule).
  Matrix Sample(const Vector& instance, int n, Rng* rng,
                const std::vector<int>& frozen = {}) const;

  /// Binary interpretable representation of a perturbed sample relative to
  /// the instance: z_j = 1 iff sample j "matches" the instance (same bin for
  /// numerics under kDiscretized, same category / within-1-sigma for the
  /// other cases).
  std::vector<int> Interpretable(const Vector& instance,
                                 const Vector& sample) const;

  /// Weighted Euclidean distance in standardized feature space.
  double Distance(const Vector& a, const Vector& b) const;

  const QuantileDiscretizer& discretizer() const { return discretizer_; }
  Strategy strategy() const { return strategy_; }
  const Vector& means() const { return means_; }
  const Vector& stddevs() const { return stddevs_; }

 private:
  Strategy strategy_;
  Schema schema_;
  Vector means_;
  Vector stddevs_;
  /// Empirical category frequencies per categorical feature.
  std::vector<std::vector<double>> category_freq_;
  /// Empirical bin frequencies per feature (kDiscretized).
  std::vector<std::vector<double>> bin_freq_;
  QuantileDiscretizer discretizer_;
};

}  // namespace xai

#endif  // XAI_EXPLAIN_PERTURBATION_H_
