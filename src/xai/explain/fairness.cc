#include "xai/explain/fairness.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace xai {
namespace {

// Demographic-parity gap of scores grouped by the binary feature column.
double ParityGap(const Vector& scores, const Dataset& data,
                 int group_feature) {
  double sum0 = 0, sum1 = 0;
  int n0 = 0, n1 = 0;
  for (int i = 0; i < data.num_rows(); ++i) {
    if (data.At(i, group_feature) == 1.0) {
      sum1 += scores[i];
      ++n1;
    } else {
      sum0 += scores[i];
      ++n0;
    }
  }
  if (n0 == 0 || n1 == 0) return 0.0;
  return std::fabs(sum1 / n1 - sum0 / n0);
}

Status ValidateGroupFeature(const Dataset& data, int group_feature) {
  if (group_feature < 0 || group_feature >= data.num_features())
    return Status::OutOfRange("group feature out of range");
  for (int i = 0; i < data.num_rows(); ++i) {
    double v = data.At(i, group_feature);
    if (v != 0.0 && v != 1.0)
      return Status::InvalidArgument(
          "group feature must be binary 0/1-coded");
  }
  return Status::OK();
}

}  // namespace

std::string GroupFairnessReport::ToString() const {
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "group0: n=%d mean=%.4f | group1: n=%d mean=%.4f\n",
                count_group0, mean_outcome_group0, count_group1,
                mean_outcome_group1);
  os << buf;
  std::snprintf(buf, sizeof(buf),
                "demographic parity gap: %.4f ; equal opportunity gap: "
                "%.4f\n",
                demographic_parity_gap, equal_opportunity_gap);
  os << buf;
  return os.str();
}

Result<GroupFairnessReport> EvaluateGroupFairness(const PredictFn& f,
                                                  const Dataset& data,
                                                  int group_feature) {
  XAI_RETURN_NOT_OK(ValidateGroupFeature(data, group_feature));
  if (data.num_rows() == 0) return Status::InvalidArgument("empty dataset");

  GroupFairnessReport report;
  double sum0 = 0, sum1 = 0;
  double tp0 = 0, pos0 = 0, tp1 = 0, pos1 = 0;
  for (int i = 0; i < data.num_rows(); ++i) {
    double score = f(data.Row(i));
    bool group1 = data.At(i, group_feature) == 1.0;
    if (group1) {
      sum1 += score;
      ++report.count_group1;
    } else {
      sum0 += score;
      ++report.count_group0;
    }
    if (data.Label(i) == 1.0) {
      (group1 ? pos1 : pos0) += 1.0;
      if (score >= 0.5) (group1 ? tp1 : tp0) += 1.0;
    }
  }
  if (report.count_group0 == 0 || report.count_group1 == 0)
    return Status::InvalidArgument("both groups must be present");
  report.mean_outcome_group0 = sum0 / report.count_group0;
  report.mean_outcome_group1 = sum1 / report.count_group1;
  report.demographic_parity_gap =
      std::fabs(report.mean_outcome_group1 - report.mean_outcome_group0);
  double tpr0 = pos0 > 0 ? tp0 / pos0 : 0.0;
  double tpr1 = pos1 > 0 ? tp1 / pos1 : 0.0;
  report.equal_opportunity_gap = std::fabs(tpr1 - tpr0);
  return report;
}

Result<Vector> DisparityQii(const PredictFn& f, const Dataset& data,
                            int group_feature, int repeats, Rng* rng) {
  XAI_RETURN_NOT_OK(ValidateGroupFeature(data, group_feature));
  if (repeats < 1) return Status::InvalidArgument("repeats must be >= 1");
  int n = data.num_rows(), d = data.num_features();
  if (n < 2) return Status::InvalidArgument("need at least two rows");

  Vector base_scores(n);
  for (int i = 0; i < n; ++i) base_scores[i] = f(data.Row(i));
  double base_gap = ParityGap(base_scores, data, group_feature);

  Vector influence(d, 0.0);
  const Matrix& x = data.x();
  for (int j = 0; j < d; ++j) {
    double drop = 0.0;
    for (int rep = 0; rep < repeats; ++rep) {
      std::vector<int> perm = rng->Permutation(n);
      Vector scores(n);
      Vector row(d);
      for (int i = 0; i < n; ++i) {
        for (int k = 0; k < d; ++k) row[k] = x(i, k);
        row[j] = x(perm[i], j);
        scores[i] = f(row);
      }
      // Note: the group column used for the *gap* stays the original one,
      // even when j == group_feature (randomizing the model's *input*).
      drop += base_gap - ParityGap(scores, data, group_feature);
    }
    influence[j] = drop / repeats;
  }
  return influence;
}

}  // namespace xai
