#ifndef XAI_EXPLAIN_EXPLANATION_H_
#define XAI_EXPLAIN_EXPLANATION_H_

#include <string>
#include <vector>

#include "xai/core/matrix.h"

namespace xai {

/// \brief A feature-attribution explanation: one real number per feature
/// indicating the magnitude and direction of its influence on a single
/// prediction (§2.1 of the tutorial).
struct AttributionExplanation {
  /// Attribution of each feature (aligned with `feature_names`).
  Vector attributions;
  /// The explainer's reference output (expected value / intercept).
  double base_value = 0.0;
  /// Model output at the explained instance.
  double prediction = 0.0;
  std::vector<std::string> feature_names;

  /// Indices of the `k` largest-|attribution| features, descending.
  std::vector<int> TopFeatures(int k) const;

  /// Sum of attributions plus base value (equals the prediction for
  /// efficiency-satisfying explainers such as SHAP).
  double AttributionSum() const;

  /// Pretty-printed table of the attributions.
  std::string ToString() const;
};

/// Mean absolute deviation of each column of `x` from its median — the
/// robust per-feature scale used by LIME/DiCE-style distances.
Vector MedianAbsoluteDeviation(const Matrix& x);

}  // namespace xai

#endif  // XAI_EXPLAIN_EXPLANATION_H_
