#include "xai/explain/surrogate_tree.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "xai/core/stats.h"

namespace xai {

std::string SurrogateTreeExplanation::ToString() const {
  std::ostringstream os;
  os << "surrogate path (fidelity R^2 = ";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", fidelity);
  os << buf << "):\n";
  for (const std::string& predicate : path) os << "  AND " << predicate
                                               << "\n";
  std::snprintf(buf, sizeof(buf), "%.4f", surrogate_prediction);
  os << "  => " << buf << "\n";
  return os.str();
}

SurrogateTreeExplainer::SurrogateTreeExplainer(
    const Dataset& train, const SurrogateTreeConfig& config)
    : config_(config),
      schema_(train.schema()),
      perturber_(train, config.strategy) {}

Result<SurrogateTreeExplanation> SurrogateTreeExplainer::Explain(
    const PredictFn& f, const Vector& instance, uint64_t seed) const {
  int d = static_cast<int>(instance.size());
  if (d != schema_.num_features())
    return Status::InvalidArgument("instance width mismatch");
  Rng rng(seed);

  // Neighborhood: perturbations labelled by the black box.
  Matrix x = perturber_.Sample(instance, config_.num_samples, &rng);
  Vector y(config_.num_samples);
  for (int i = 0; i < config_.num_samples; ++i) y[i] = f(x.Row(i));

  CartConfig cart;
  cart.max_depth = config_.max_depth;
  cart.min_samples_leaf = config_.min_samples_leaf;
  cart.criterion = CartConfig::Criterion::kMse;  // Regress on f's output.
  XAI_ASSIGN_OR_RETURN(
      DecisionTreeModel surrogate,
      DecisionTreeModel::Train(x, y, TaskType::kRegression, cart));

  SurrogateTreeExplanation exp;
  exp.prediction = f(instance);
  exp.surrogate_prediction = surrogate.Predict(instance);

  // Fidelity: R^2 of surrogate vs black box over the neighborhood.
  Vector surrogate_scores(config_.num_samples);
  for (int i = 0; i < config_.num_samples; ++i)
    surrogate_scores[i] = surrogate.Predict(x.Row(i));
  double mean = Mean(y);
  double ss_res = 0, ss_tot = 0;
  for (int i = 0; i < config_.num_samples; ++i) {
    ss_res += (y[i] - surrogate_scores[i]) * (y[i] - surrogate_scores[i]);
    ss_tot += (y[i] - mean) * (y[i] - mean);
  }
  exp.fidelity = ss_tot > 1e-12 ? 1.0 - ss_res / ss_tot : 1.0;

  // Decision path of the instance through the surrogate.
  const Tree& tree = surrogate.tree();
  int node = 0;
  while (!tree.nodes()[node].IsLeaf()) {
    const TreeNode& split = tree.nodes()[node];
    const std::string& name = schema_.features[split.feature].name;
    char buf[96];
    if (instance[split.feature] <= split.threshold) {
      std::snprintf(buf, sizeof(buf), "%s <= %.4g", name.c_str(),
                    split.threshold);
      node = split.left;
    } else {
      std::snprintf(buf, sizeof(buf), "%s > %.4g", name.c_str(),
                    split.threshold);
      node = split.right;
    }
    exp.path.push_back(buf);
  }
  exp.surrogate = std::move(surrogate);
  return exp;
}

}  // namespace xai
