#ifndef XAI_EXPLAIN_ADVERSARIAL_H_
#define XAI_EXPLAIN_ADVERSARIAL_H_

#include <memory>
#include <string>

#include "xai/core/status.h"
#include "xai/explain/perturbation.h"
#include "xai/model/model.h"
#include "xai/model/random_forest.h"

namespace xai {

/// \brief Configuration of the adversarial scaffolding.
struct AdversarialConfig {
  /// Trees in the OOD detector forest.
  int ood_trees = 64;
  /// Perturbed samples generated per training row to train the detector.
  int perturbations_per_row = 2;
  /// Detector probability above which a query counts as "real data".
  double real_threshold = 0.5;
  uint64_t seed = 21;
};

/// \brief Scaffolding of Slack et al. 2020 (§2.1.1): "Fooling LIME and
/// SHAP". The adversarial model behaves as a biased model on real
/// (in-distribution) inputs but routes the synthetic perturbations LIME/SHAP
/// generate — which an out-of-distribution detector recognizes — to an
/// innocuous model, hiding the bias from perturbation-based explainers.
class AdversarialModel : public Model {
 public:
  /// Trains the OOD detector to separate `train` rows from `perturber`
  /// samples, then wires up the two-faced predictor.
  static Result<AdversarialModel> Make(const Dataset& train,
                                       const Perturber& perturber,
                                       PredictFn biased, PredictFn innocuous,
                                       const AdversarialConfig& config = {});

  TaskType task() const override { return TaskType::kClassification; }
  std::string name() const override { return "adversarial"; }

  /// Biased prediction if the detector believes the row is real data,
  /// innocuous prediction otherwise.
  double Predict(const Vector& row) const override;

  /// Detector's probability that the row is real (not a perturbation).
  double RealScore(const Vector& row) const;

  /// Detector accuracy on held-out real and perturbed points.
  double DetectorAccuracy(const Dataset& holdout, const Perturber& perturber,
                          uint64_t seed) const;

 private:
  PredictFn biased_;
  PredictFn innocuous_;
  std::shared_ptr<RandomForestModel> detector_;
  double real_threshold_ = 0.5;
};

}  // namespace xai

#endif  // XAI_EXPLAIN_ADVERSARIAL_H_
