#ifndef XAI_EXPLAIN_PROTOTYPES_H_
#define XAI_EXPLAIN_PROTOTYPES_H_

#include <vector>

#include "xai/core/matrix.h"
#include "xai/core/status.h"
#include "xai/data/dataset.h"

namespace xai {

/// \brief Example-based explanations (§2: "some return data points to make
/// the model interpretable"): MMD-critic-style prototypes and criticisms
/// (Kim, Khanna & Koyejo 2016).
///
/// Prototypes are training points that together minimize the maximum mean
/// discrepancy (MMD) between the data distribution and the prototype set
/// under an RBF kernel — representative examples. Criticisms are points
/// worst-represented by the prototypes (largest witness-function value) —
/// the outliers/edge cases a user should also see.
struct PrototypeResult {
  /// Row indices of the selected prototypes (in selection order).
  std::vector<int> prototypes;
  /// Row indices of the criticisms (most under-represented first).
  std::vector<int> criticisms;
  /// MMD^2 between data and prototype set after each greedy addition.
  std::vector<double> mmd_trace;
};

struct PrototypeConfig {
  int num_prototypes = 5;
  int num_criticisms = 3;
  /// RBF kernel bandwidth; <= 0 uses the median-heuristic over pairwise
  /// distances of (a sample of) the data.
  double bandwidth = -1.0;
};

/// Greedy MMD prototype selection plus witness-function criticisms over the
/// dataset's standardized numeric representation (categoricals enter as
/// their codes; standardize beforehand for mixed scales).
Result<PrototypeResult> SelectPrototypes(const Dataset& data,
                                         const PrototypeConfig& config = {});

/// RBF kernel value between two rows: exp(-||a-b||^2 / (2 bw^2)).
double RbfKernel(const Vector& a, const Vector& b, double bandwidth);

/// Median-heuristic bandwidth over pairwise distances of up to `max_rows`
/// rows.
double MedianHeuristicBandwidth(const Dataset& data, int max_rows = 200);

}  // namespace xai

#endif  // XAI_EXPLAIN_PROTOTYPES_H_
