#include "xai/explain/global_importance.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "xai/core/stats.h"
#include "xai/explain/shapley/tree_shap.h"

namespace xai {

Vector GlobalShapImportance(const TreeEnsembleView& view, const Dataset& data,
                            int max_rows) {
  int d = data.num_features();
  Vector importance(d, 0.0);
  int rows = std::min(max_rows, data.num_rows());
  if (rows == 0) return importance;
  // One batched TreeSHAP call over the sampled rows (blocked, parallel over
  // row tiles) instead of a per-row explanation loop; each batch row is
  // bit-identical to the per-row call, so the fold below is unchanged.
  const Matrix* x = &data.x();
  Matrix head;
  if (rows < data.num_rows()) {
    head = Matrix(rows, d);
    for (int i = 0; i < rows; ++i) {
      const double* src = data.x().RowPtr(i);
      std::copy(src, src + d, head.RowPtr(i));
    }
    x = &head;
  }
  TreeShapBatchResult batch = TreeShapBatch(view, *x);
  for (int i = 0; i < rows; ++i)
    for (int j = 0; j < d; ++j)
      importance[j] += std::fabs(batch.attributions(i, j));
  for (double& v : importance) v /= rows;
  return importance;
}

Vector SplitFrequencyImportance(const TreeEnsembleView& view,
                                int num_features) {
  Vector importance(num_features, 0.0);
  double total = 0.0;
  for (int t = 0; t < view.num_trees(); ++t) {
    for (const TreeNode& node : view.trees[t]->nodes()) {
      if (node.IsLeaf()) continue;
      if (node.feature >= 0 && node.feature < num_features) {
        importance[node.feature] += view.scales[t] * node.cover;
        total += view.scales[t] * node.cover;
      }
    }
  }
  if (total > 0.0)
    for (double& v : importance) v /= total;
  return importance;
}

Result<Vector> PermutationImportance(
    const PredictFn& f, const Dataset& data,
    const std::function<double(const Vector& scores, const Vector& labels)>&
        metric,
    int repeats, Rng* rng) {
  if (data.num_rows() < 2)
    return Status::InvalidArgument("need at least two rows");
  if (repeats < 1) return Status::InvalidArgument("repeats must be >= 1");
  int n = data.num_rows(), d = data.num_features();

  Vector baseline_scores(n);
  for (int i = 0; i < n; ++i) baseline_scores[i] = f(data.Row(i));
  double baseline = metric(baseline_scores, data.y());

  Vector importance(d, 0.0);
  Matrix x = data.x();
  for (int j = 0; j < d; ++j) {
    double drop = 0.0;
    for (int rep = 0; rep < repeats; ++rep) {
      std::vector<int> perm = rng->Permutation(n);
      Vector scores(n);
      Vector row(d);
      for (int i = 0; i < n; ++i) {
        for (int k = 0; k < d; ++k) row[k] = x(i, k);
        row[j] = x(perm[i], j);  // Break the feature-label association.
        scores[i] = f(row);
      }
      drop += baseline - metric(scores, data.y());
    }
    importance[j] = drop / repeats;
  }
  return importance;
}

std::string ImportanceToString(const Vector& importance,
                               const Schema& schema) {
  std::ostringstream os;
  std::vector<int> order = ArgSortDescending(importance);
  for (int j : order) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  %-22s %.5f\n",
                  schema.features[j].name.c_str(), importance[j]);
    os << buf;
  }
  return os.str();
}

}  // namespace xai
