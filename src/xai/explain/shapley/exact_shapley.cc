#include "xai/explain/shapley/exact_shapley.h"

#include "xai/core/combinatorics.h"

namespace xai {

Result<Vector> ExactShapley(const CoalitionGame& game) {
  int n = game.num_players();
  if (n > 24)
    return Status::InvalidArgument(
        "ExactShapley is exponential; refusing n > 24");
  Vector phi(n, 0.0);
  // Precompute the weights per subset size.
  Vector w(n);
  for (int s = 0; s < n; ++s) w[s] = ShapleyWeight(n, s);
  uint64_t limit = 1ULL << n;
  for (uint64_t mask = 0; mask < limit; ++mask) {
    int size = PopCount(mask);
    if (size == n) continue;
    double v_s = game.Value(mask);
    double weight = w[size];
    for (int i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) continue;
      phi[i] += weight * (game.Value(mask | (1ULL << i)) - v_s);
    }
  }
  return phi;
}

Result<Vector> ExactBanzhaf(const CoalitionGame& game) {
  int n = game.num_players();
  if (n > 24)
    return Status::InvalidArgument(
        "ExactBanzhaf is exponential; refusing n > 24");
  Vector phi(n, 0.0);
  uint64_t limit = 1ULL << n;
  double denom = static_cast<double>(limit) / 2.0;
  for (uint64_t mask = 0; mask < limit; ++mask) {
    if (PopCount(mask) == n) continue;
    double v_s = game.Value(mask);
    for (int i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) continue;
      phi[i] += (game.Value(mask | (1ULL << i)) - v_s) / denom;
    }
  }
  return phi;
}

}  // namespace xai
