#include "xai/explain/shapley/exact_shapley.h"

#include <vector>

#include "xai/core/combinatorics.h"
#include "xai/core/parallel.h"
#include "xai/core/trace.h"

namespace xai {
namespace {

// Fixed chunk size over the 2^n coalition space: thread-count independent,
// so the per-chunk accumulation (and its floating-point order) is too.
constexpr int64_t kMaskGrain = 2048;

// Evaluates every coalition once into a flat table indexed by mask. Each
// mask is owned by exactly one chunk, so cached games do no duplicate work
// and num_evaluations() stays exact.
std::vector<double> EvaluateAllCoalitions(const CoalitionGame& game,
                                          uint64_t limit) {
  XAI_SPAN("exact_shapley/enumerate");
  std::vector<double> values(limit);
  ParallelFor(static_cast<int64_t>(limit), kMaskGrain,
              [&](int64_t begin, int64_t end, int64_t) {
                for (int64_t mask = begin; mask < end; ++mask)
                  values[mask] = game.Value(static_cast<uint64_t>(mask));
              });
  return values;
}

}  // namespace

Result<Vector> ExactShapley(const CoalitionGame& game) {
  XAI_SPAN("exact_shapley/explain");
  int n = game.num_players();
  if (n > 24)
    return Status::InvalidArgument(
        "ExactShapley is exponential; refusing n > 24");
  // Precompute the weights per subset size.
  Vector w(n);
  for (int s = 0; s < n; ++s) w[s] = ShapleyWeight(n, s);
  uint64_t limit = 1ULL << n;
  std::vector<double> v = EvaluateAllCoalitions(game, limit);
  return ParallelReduce(
      static_cast<int64_t>(limit), kMaskGrain, Vector(n, 0.0),
      [&](int64_t begin, int64_t end, int64_t) {
        Vector phi(n, 0.0);
        for (int64_t m = begin; m < end; ++m) {
          uint64_t mask = static_cast<uint64_t>(m);
          int size = PopCount(mask);
          if (size == n) continue;
          double v_s = v[mask];
          double weight = w[size];
          for (int i = 0; i < n; ++i) {
            if (mask & (1ULL << i)) continue;
            phi[i] += weight * (v[mask | (1ULL << i)] - v_s);
          }
        }
        return phi;
      },
      [n](Vector acc, const Vector& part) {
        for (int i = 0; i < n; ++i) acc[i] += part[i];
        return acc;
      });
}

Result<Vector> ExactBanzhaf(const CoalitionGame& game) {
  XAI_SPAN("exact_shapley/banzhaf");
  int n = game.num_players();
  if (n > 24)
    return Status::InvalidArgument(
        "ExactBanzhaf is exponential; refusing n > 24");
  uint64_t limit = 1ULL << n;
  double denom = static_cast<double>(limit) / 2.0;
  std::vector<double> v = EvaluateAllCoalitions(game, limit);
  return ParallelReduce(
      static_cast<int64_t>(limit), kMaskGrain, Vector(n, 0.0),
      [&](int64_t begin, int64_t end, int64_t) {
        Vector phi(n, 0.0);
        for (int64_t m = begin; m < end; ++m) {
          uint64_t mask = static_cast<uint64_t>(m);
          if (PopCount(mask) == n) continue;
          double v_s = v[mask];
          for (int i = 0; i < n; ++i) {
            if (mask & (1ULL << i)) continue;
            phi[i] += (v[mask | (1ULL << i)] - v_s) / denom;
          }
        }
        return phi;
      },
      [n](Vector acc, const Vector& part) {
        for (int i = 0; i < n; ++i) acc[i] += part[i];
        return acc;
      });
}

int64_t ExactShapleyPlannedEvals(int num_features, int background_rows) {
  if (num_features < 1 || background_rows < 1) return 0;
  constexpr int64_t kSaturated = 4000000000000000000;
  if (num_features >= 60) return kSaturated;
  int64_t coalitions = int64_t{1} << num_features;
  if (coalitions > kSaturated / background_rows) return kSaturated;
  return coalitions * background_rows;
}

}  // namespace xai
