#include "xai/explain/shapley/tree_shap.h"

#include <vector>

#include "xai/core/check.h"
#include "xai/core/parallel.h"
#include "xai/core/trace.h"

namespace xai {

double TreeExpectedValue(const Tree& tree) {
  if (tree.empty()) return 0.0;
  double num = 0.0, den = 0.0;
  for (const TreeNode& node : tree.nodes()) {
    if (node.IsLeaf()) {
      num += node.cover * node.value;
      den += node.cover;
    }
  }
  return den > 0.0 ? num / den : 0.0;
}

double TreeConditionalExpectation(const Tree& tree, const Vector& x,
                                  uint64_t known_mask) {
  struct Walker {
    const Tree& tree;
    const Vector& x;
    uint64_t mask;
    double Visit(int index) const {
      const TreeNode& node = tree.nodes()[index];
      if (node.IsLeaf()) return node.value;
      if (mask & (1ULL << node.feature)) {
        return Visit(x[node.feature] <= node.threshold ? node.left
                                                       : node.right);
      }
      const TreeNode& l = tree.nodes()[node.left];
      const TreeNode& r = tree.nodes()[node.right];
      double total = l.cover + r.cover;
      if (total <= 0.0) return 0.0;
      return (l.cover * Visit(node.left) + r.cover * Visit(node.right)) /
             total;
    }
  };
  if (tree.empty()) return 0.0;
  return Walker{tree, x, known_mask}.Visit(0);
}

namespace {

// Path bookkeeping of the polynomial TreeSHAP algorithm (Lundberg et al.,
// Algorithm 2). `pweight` holds the proportion of subsets of a given
// cardinality flowing down the path.
struct PathElement {
  int feature_index = -1;
  double zero_fraction = 0.0;  // Fraction of paths when the feature is absent.
  double one_fraction = 0.0;   // 1 if x follows this split, else 0.
  double pweight = 0.0;
};

void ExtendPath(std::vector<PathElement>* path, int unique_depth,
                double zero_fraction, double one_fraction,
                int feature_index) {
  auto& p = *path;
  p[unique_depth].feature_index = feature_index;
  p[unique_depth].zero_fraction = zero_fraction;
  p[unique_depth].one_fraction = one_fraction;
  p[unique_depth].pweight = unique_depth == 0 ? 1.0 : 0.0;
  for (int i = unique_depth - 1; i >= 0; --i) {
    p[i + 1].pweight +=
        one_fraction * p[i].pweight * (i + 1) / (unique_depth + 1.0);
    p[i].pweight =
        zero_fraction * p[i].pweight * (unique_depth - i) /
        (unique_depth + 1.0);
  }
}

void UnwindPath(std::vector<PathElement>* path, int unique_depth,
                int path_index) {
  auto& p = *path;
  const double one_fraction = p[path_index].one_fraction;
  const double zero_fraction = p[path_index].zero_fraction;
  double next_one_portion = p[unique_depth].pweight;
  for (int i = unique_depth - 1; i >= 0; --i) {
    if (one_fraction != 0.0) {
      const double tmp = p[i].pweight;
      p[i].pweight =
          next_one_portion * (unique_depth + 1.0) / ((i + 1) * one_fraction);
      next_one_portion = tmp - p[i].pweight * zero_fraction *
                                   (unique_depth - i) / (unique_depth + 1.0);
    } else {
      p[i].pweight = p[i].pweight * (unique_depth + 1.0) /
                     (zero_fraction * (unique_depth - i));
    }
  }
  for (int i = path_index; i < unique_depth; ++i) {
    p[i].feature_index = p[i + 1].feature_index;
    p[i].zero_fraction = p[i + 1].zero_fraction;
    p[i].one_fraction = p[i + 1].one_fraction;
  }
}

double UnwoundPathSum(const std::vector<PathElement>& p, int unique_depth,
                      int path_index) {
  const double one_fraction = p[path_index].one_fraction;
  const double zero_fraction = p[path_index].zero_fraction;
  double next_one_portion = p[unique_depth].pweight;
  double total = 0.0;
  for (int i = unique_depth - 1; i >= 0; --i) {
    if (one_fraction != 0.0) {
      const double tmp =
          next_one_portion * (unique_depth + 1.0) / ((i + 1) * one_fraction);
      total += tmp;
      next_one_portion =
          p[i].pweight -
          tmp * zero_fraction * (unique_depth - i) / (unique_depth + 1.0);
    } else if (zero_fraction != 0.0) {
      total += (p[i].pweight / zero_fraction) /
               ((unique_depth - i) / (unique_depth + 1.0));
    }
  }
  return total;
}

struct TreeShapWalker {
  const Tree& tree;
  const Vector& x;
  Vector* phi;

  void Recurse(int node_index, std::vector<PathElement> path,
               double parent_zero_fraction, double parent_one_fraction,
               int parent_feature_index, int unique_depth) {
    ExtendPath(&path, unique_depth, parent_zero_fraction,
               parent_one_fraction, parent_feature_index);
    const TreeNode& node = tree.nodes()[node_index];
    if (node.IsLeaf()) {
      for (int i = 1; i <= unique_depth; ++i) {
        const double w = UnwoundPathSum(path, unique_depth, i);
        const PathElement& el = path[i];
        (*phi)[el.feature_index] +=
            w * (el.one_fraction - el.zero_fraction) * node.value;
      }
      return;
    }

    const TreeNode& left = tree.nodes()[node.left];
    const TreeNode& right = tree.nodes()[node.right];
    bool goes_left = x[node.feature] <= node.threshold;
    int hot = goes_left ? node.left : node.right;
    int cold = goes_left ? node.right : node.left;
    double cover = left.cover + right.cover;
    double hot_zero_fraction =
        cover > 0.0 ? tree.nodes()[hot].cover / cover : 0.0;
    double cold_zero_fraction =
        cover > 0.0 ? tree.nodes()[cold].cover / cover : 0.0;
    double incoming_zero_fraction = 1.0;
    double incoming_one_fraction = 1.0;

    // If this feature already appears on the path, undo its previous
    // contribution (each feature may appear on the path only once).
    int path_index = 1;
    for (; path_index <= unique_depth; ++path_index)
      if (path[path_index].feature_index == node.feature) break;
    if (path_index <= unique_depth) {
      incoming_zero_fraction = path[path_index].zero_fraction;
      incoming_one_fraction = path[path_index].one_fraction;
      UnwindPath(&path, unique_depth, path_index);
      unique_depth -= 1;
    }

    Recurse(hot, path, hot_zero_fraction * incoming_zero_fraction,
            incoming_one_fraction, node.feature, unique_depth + 1);
    Recurse(cold, path, cold_zero_fraction * incoming_zero_fraction, 0.0,
            node.feature, unique_depth + 1);
  }
};

}  // namespace

Vector TreeShapValues(const Tree& tree, const Vector& x, int num_features) {
  Vector phi(num_features, 0.0);
  if (tree.empty()) return phi;
  if (tree.nodes()[0].IsLeaf()) return phi;  // Constant tree: all zero.
  std::vector<PathElement> path(tree.Depth() + 2);
  TreeShapWalker walker{tree, x, &phi};
  walker.Recurse(0, path, 1.0, 1.0, -1, 0);
  return phi;
}

AttributionExplanation TreeShap(const TreeEnsembleView& view,
                                const Vector& x) {
  XAI_SPAN("tree_shap/explain");
  int d = static_cast<int>(x.size());
  AttributionExplanation exp;
  exp.attributions.assign(d, 0.0);
  exp.base_value = view.base;
  // Trees are independent: run the per-tree polynomial walk in parallel,
  // then accumulate in tree order so the sums are bit-identical to a plain
  // serial loop at any thread count.
  int num_trees = view.num_trees();
  std::vector<Vector> per_tree(num_trees);
  std::vector<double> expected(num_trees);
  ParallelFor(num_trees, /*grain=*/1,
              [&](int64_t begin, int64_t end, int64_t) {
                for (int64_t t = begin; t < end; ++t) {
                  per_tree[t] = TreeShapValues(*view.trees[t], x, d);
                  expected[t] = TreeExpectedValue(*view.trees[t]);
                }
              });
  for (int t = 0; t < num_trees; ++t) {
    for (int j = 0; j < d; ++j)
      exp.attributions[j] += view.scales[t] * per_tree[t][j];
    exp.base_value += view.scales[t] * expected[t];
  }
  exp.prediction = view.Margin(x);
  return exp;
}

}  // namespace xai
