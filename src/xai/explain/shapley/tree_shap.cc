#include "xai/explain/shapley/tree_shap.h"

#include <algorithm>
#include <vector>

#include "xai/core/check.h"
#include "xai/core/parallel.h"
#include "xai/core/trace.h"
#include "xai/explain/shapley/flat_tree_shap.h"
#include "xai/explain/shapley/tree_shap_path.h"

namespace xai {

double TreeExpectedValue(const Tree& tree) {
  if (tree.empty()) return 0.0;
  double num = 0.0, den = 0.0;
  for (const TreeNode& node : tree.nodes()) {
    if (node.IsLeaf()) {
      num += node.cover * node.value;
      den += node.cover;
    }
  }
  return den > 0.0 ? num / den : 0.0;
}

double TreeConditionalExpectation(const Tree& tree, const Vector& x,
                                  uint64_t known_mask) {
  struct Walker {
    const Tree& tree;
    const Vector& x;
    uint64_t mask;
    double Visit(int index) const {
      const TreeNode& node = tree.nodes()[index];
      if (node.IsLeaf()) return node.value;
      if (mask & (1ULL << node.feature)) {
        return Visit(x[node.feature] <= node.threshold ? node.left
                                                       : node.right);
      }
      const TreeNode& l = tree.nodes()[node.left];
      const TreeNode& r = tree.nodes()[node.right];
      double total = l.cover + r.cover;
      if (total <= 0.0) return 0.0;
      return (l.cover * Visit(node.left) + r.cover * Visit(node.right)) /
             total;
    }
  };
  if (tree.empty()) return 0.0;
  return Walker{tree, x, known_mask}.Visit(0);
}

namespace {

using treeshap::ExtendPath;
using treeshap::PathElement;
using treeshap::UnwindPath;
using treeshap::UnwoundPathSum;

// Recursive reference walk over the AoS tree (Lundberg et al. Algorithm 2).
// The path is threaded by pointer: the hot child (the one the instance
// follows) extends the parent's buffer in place — Algorithm 2 never reads
// the parent's weights again once the child has extended past them — and
// only the cold branch, which must restart from the parent's post-unwind
// state after the hot subtree scribbled over it, snapshots the live prefix.
// (An earlier version passed the path by value, copying — and heap-
// allocating — it once per node visit.)
struct TreeShapWalker {
  const Tree& tree;
  const Vector& x;
  Vector* phi;
  int capacity;  // Path elements per buffer: tree depth + 2.

  void Recurse(int node_index, PathElement* path,
               double parent_zero_fraction, double parent_one_fraction,
               int parent_feature_index, int unique_depth) {
    ExtendPath(path, unique_depth, parent_zero_fraction,
               parent_one_fraction, parent_feature_index);
    const TreeNode& node = tree.nodes()[node_index];
    if (node.IsLeaf()) {
      for (int i = 1; i <= unique_depth; ++i) {
        const double w = UnwoundPathSum(path, unique_depth, i);
        const PathElement& el = path[i];
        (*phi)[el.feature_index] +=
            w * (el.one_fraction - el.zero_fraction) * node.value;
      }
      return;
    }

    const TreeNode& left = tree.nodes()[node.left];
    const TreeNode& right = tree.nodes()[node.right];
    bool goes_left = x[node.feature] <= node.threshold;
    int hot = goes_left ? node.left : node.right;
    int cold = goes_left ? node.right : node.left;
    double cover = left.cover + right.cover;
    double hot_zero_fraction =
        cover > 0.0 ? tree.nodes()[hot].cover / cover : 0.0;
    double cold_zero_fraction =
        cover > 0.0 ? tree.nodes()[cold].cover / cover : 0.0;
    double incoming_zero_fraction = 1.0;
    double incoming_one_fraction = 1.0;

    // If this feature already appears on the path, undo its previous
    // contribution (each feature may appear on the path only once).
    int path_index = 1;
    for (; path_index <= unique_depth; ++path_index)
      if (path[path_index].feature_index == node.feature) break;
    if (path_index <= unique_depth) {
      incoming_zero_fraction = path[path_index].zero_fraction;
      incoming_one_fraction = path[path_index].one_fraction;
      UnwindPath(path, unique_depth, path_index);
      unique_depth -= 1;
    }

    std::vector<PathElement> cold_path(capacity);
    std::copy(path, path + unique_depth + 1, cold_path.data());
    Recurse(hot, path, hot_zero_fraction * incoming_zero_fraction,
            incoming_one_fraction, node.feature, unique_depth + 1);
    Recurse(cold, cold_path.data(),
            cold_zero_fraction * incoming_zero_fraction, 0.0, node.feature,
            unique_depth + 1);
  }
};

}  // namespace

Vector TreeShapValues(const Tree& tree, const Vector& x, int num_features) {
  Vector phi(num_features, 0.0);
  if (tree.empty()) return phi;
  if (tree.nodes()[0].IsLeaf()) return phi;  // Constant tree: all zero.
  const int capacity = tree.Depth() + 2;
  std::vector<PathElement> path(capacity);
  TreeShapWalker walker{tree, x, &phi, capacity};
  walker.Recurse(0, path.data(), 1.0, 1.0, -1, 0);
  return phi;
}

AttributionExplanation TreeShapLegacy(const TreeEnsembleView& view,
                                      const Vector& x) {
  int d = static_cast<int>(x.size());
  AttributionExplanation exp;
  exp.attributions.assign(d, 0.0);
  exp.base_value = view.base;
  // Trees are independent: run the per-tree polynomial walk in parallel,
  // then accumulate in tree order so the sums are bit-identical to a plain
  // serial loop at any thread count.
  int num_trees = view.num_trees();
  std::vector<Vector> per_tree(num_trees);
  std::vector<double> expected(num_trees);
  ParallelFor(num_trees, /*grain=*/1,
              [&](int64_t begin, int64_t end, int64_t) {
                for (int64_t t = begin; t < end; ++t) {
                  per_tree[t] = TreeShapValues(*view.trees[t], x, d);
                  expected[t] = TreeExpectedValue(*view.trees[t]);
                }
              });
  for (int t = 0; t < num_trees; ++t) {
    for (int j = 0; j < d; ++j)
      exp.attributions[j] += view.scales[t] * per_tree[t][j];
    exp.base_value += view.scales[t] * expected[t];
  }
  exp.prediction = view.Margin(x);
  return exp;
}

AttributionExplanation TreeShap(const TreeEnsembleView& view,
                                const Vector& x) {
  XAI_SPAN("tree_shap/explain");
  return FlatTreeShap::Build(view).Shap(x);
}

TreeShapBatchResult TreeShapBatch(const TreeEnsembleView& view,
                                  const Matrix& x) {
  XAI_SPAN("tree_shap/explain_batch");
  TreeShapBatchResult result;
  FlatTreeShap kernel = FlatTreeShap::Build(view);
  result.attributions = kernel.ShapBatch(x);
  result.predictions = view.MarginBatch(x);
  result.base_value = kernel.base_value();
  return result;
}

}  // namespace xai
