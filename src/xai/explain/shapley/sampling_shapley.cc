#include "xai/explain/shapley/sampling_shapley.h"

#include <algorithm>
#include <cmath>

#include "xai/core/parallel.h"
#include "xai/core/trace.h"

namespace xai {
namespace {

// Per-chunk accumulator: running sums of marginal contributions and their
// squares, combined across chunks in chunk order (ordered reduction).
struct MarginalSums {
  Vector sum;
  Vector sum_sq;
};

// Permutations are heavy (n coalition evaluations each), so a small grain
// keeps all workers busy; it is a fixed constant so the chunk layout — and
// therefore the floating-point accumulation order — never depends on the
// thread count.
constexpr int64_t kPermutationGrain = 4;

}  // namespace

SamplingShapleyResult SamplingShapley(const CoalitionGame& game,
                                      int permutations, Rng* rng) {
  XAI_SPAN("sampling_shapley/sweep");
  int n = game.num_players();
  // Each permutation draws from its own RNG stream derived from a single
  // base seed, so the estimate is independent of how permutations are
  // distributed over threads (and the caller's generator advances by
  // exactly one draw regardless of the permutation count).
  uint64_t base_seed = rng->NextU64();
  // Warm the v(empty) cache once before fanning out.
  double v_empty = game.Value(0);

  MarginalSums total = ParallelReduce(
      static_cast<int64_t>(permutations), kPermutationGrain,
      MarginalSums{Vector(n, 0.0), Vector(n, 0.0)},
      [&](int64_t begin, int64_t end, int64_t) {
        MarginalSums acc{Vector(n, 0.0), Vector(n, 0.0)};
        for (int64_t p = begin; p < end; ++p) {
          Rng perm_rng(SplitSeed(base_seed, static_cast<uint64_t>(p)));
          std::vector<int> perm = perm_rng.Permutation(n);
          uint64_t mask = 0;
          double prev = v_empty;
          for (int i : perm) {
            mask |= 1ULL << i;
            double cur = game.Value(mask);
            double marginal = cur - prev;
            acc.sum[i] += marginal;
            acc.sum_sq[i] += marginal * marginal;
            prev = cur;
          }
        }
        return acc;
      },
      [n](MarginalSums acc, const MarginalSums& part) {
        for (int i = 0; i < n; ++i) {
          acc.sum[i] += part.sum[i];
          acc.sum_sq[i] += part.sum_sq[i];
        }
        return acc;
      });

  SamplingShapleyResult result;
  result.permutations_used = permutations;
  result.values.resize(n);
  result.std_errors.resize(n);
  for (int i = 0; i < n; ++i) {
    double mean = total.sum[i] / permutations;
    result.values[i] = mean;
    if (permutations > 1) {
      double var =
          (total.sum_sq[i] - permutations * mean * mean) / (permutations - 1);
      result.std_errors[i] = std::sqrt(std::max(0.0, var) / permutations);
    }
  }
  return result;
}

int64_t SamplingShapleyPlannedEvals(int permutations, int num_features,
                                    int background_rows) {
  if (permutations < 1 || num_features < 1 || background_rows < 1) return 0;
  return static_cast<int64_t>(permutations) * num_features * background_rows;
}

int SamplingShapleyPermutationsForBudget(int permutations, int64_t max_evals,
                                         int num_features,
                                         int background_rows) {
  if (num_features < 1) num_features = 1;
  if (background_rows < 1) background_rows = 1;
  int64_t affordable =
      max_evals / (static_cast<int64_t>(num_features) * background_rows);
  if (affordable < 1) affordable = 1;
  return static_cast<int>(
      std::min<int64_t>(affordable, std::max(1, permutations)));
}

}  // namespace xai
