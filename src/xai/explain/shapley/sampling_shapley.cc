#include "xai/explain/shapley/sampling_shapley.h"

#include <cmath>

namespace xai {

SamplingShapleyResult SamplingShapley(const CoalitionGame& game,
                                      int permutations, Rng* rng) {
  int n = game.num_players();
  Vector sum(n, 0.0), sum_sq(n, 0.0);
  for (int p = 0; p < permutations; ++p) {
    std::vector<int> perm = rng->Permutation(n);
    uint64_t mask = 0;
    double prev = game.Value(0);
    for (int i : perm) {
      mask |= 1ULL << i;
      double cur = game.Value(mask);
      double marginal = cur - prev;
      sum[i] += marginal;
      sum_sq[i] += marginal * marginal;
      prev = cur;
    }
  }
  SamplingShapleyResult result;
  result.permutations_used = permutations;
  result.values.resize(n);
  result.std_errors.resize(n);
  for (int i = 0; i < n; ++i) {
    double mean = sum[i] / permutations;
    result.values[i] = mean;
    if (permutations > 1) {
      double var =
          (sum_sq[i] - permutations * mean * mean) / (permutations - 1);
      result.std_errors[i] = std::sqrt(std::max(0.0, var) / permutations);
    }
  }
  return result;
}

}  // namespace xai
