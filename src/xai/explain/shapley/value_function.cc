#include "xai/explain/shapley/value_function.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "xai/core/check.h"
#include "xai/core/telemetry.h"

namespace xai {
namespace {

/// Coalition masks are uint64_t: a 65th feature would silently fall off the
/// mask and every explainer built on the game would mis-attribute it. Fail
/// loudly at construction instead.
void CheckCoalitionWidth(const Vector& instance) {
  XAI_CHECK_MSG(instance.size() <= 64,
                "coalition games key on a 64-bit mask; instances with more "
                "than 64 features are not representable");
}

}  // namespace

MarginalFeatureGame::MarginalFeatureGame(PredictFn f, Vector instance,
                                         Matrix background,
                                         int max_background)
    : f_(std::move(f)), instance_(std::move(instance)) {
  CheckCoalitionWidth(instance_);
  XAI_CHECK_GT(background.rows(), 0);
  XAI_CHECK_EQ(background.cols(), static_cast<int>(instance_.size()));
  if (max_background > 0 && max_background < background.rows()) {
    Matrix truncated(max_background, background.cols());
    for (int i = 0; i < max_background; ++i)
      truncated.SetRow(i, background.Row(i));
    background_ = std::move(truncated);
  } else {
    background_ = std::move(background);
  }
}

MarginalFeatureGame::MarginalFeatureGame(const Model& model, Vector instance,
                                         Matrix background,
                                         int max_background)
    : MarginalFeatureGame(AsPredictFn(model), std::move(instance),
                          std::move(background), max_background) {
  batch_f_ = AsBatchPredictFn(model);
}

int MarginalFeatureGame::num_players() const {
  return static_cast<int>(instance_.size());
}

double MarginalFeatureGame::Value(uint64_t coalition) const {
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = cache_.find(coalition);
    if (it != cache_.end()) {
      // Count after dropping the lock: telemetry must not lengthen the
      // critical section other threads are waiting on.
      const double cached = it->second;
      lock.unlock();
      XAI_COUNTER_INC("shap/cache_hits");
      return cached;
    }
  }
  // Compute outside the lock: Value() is deterministic per coalition, so if
  // two threads race on the same mask they produce the same value and the
  // duplicate work is the only cost. evaluations_ counts cache insertions,
  // i.e. distinct coalitions, which stays deterministic; the miss counter
  // counts computed coalitions (race duplicates included), so hits + misses
  // equals the number of Value() calls exactly.
  XAI_COUNTER_INC("shap/cache_misses");
  int d = num_players();
  double acc = 0.0;
  if (batch_f_) {
    // One batched model call for the whole background sweep. Rows are
    // filled in the same order as the scalar path and the predictions are
    // summed serially in row order, so the value is bit-identical; the
    // model's PredictBatch owns the model/evals accounting on this path.
    Matrix rows(background_.rows(), d);
    for (int b = 0; b < background_.rows(); ++b) {
      const double* bg = background_.RowPtr(b);
      double* out = rows.RowPtr(b);
      for (int j = 0; j < d; ++j)
        out[j] = (coalition & (1ULL << j)) ? instance_[j] : bg[j];
    }
    const Vector preds = batch_f_(rows);
    for (double p : preds) acc += p;
  } else {
    Vector row(d);
    for (int b = 0; b < background_.rows(); ++b) {
      const double* bg = background_.RowPtr(b);
      for (int j = 0; j < d; ++j)
        row[j] = (coalition & (1ULL << j)) ? instance_[j] : bg[j];
      acc += f_(row);
    }
    XAI_COUNTER_ADD("model/evals", background_.rows());
  }
  double value = acc / background_.rows();
  std::unique_lock<std::mutex> lock(mu_);
  auto [it, inserted] = cache_.emplace(coalition, value);
  const double stored = it->second;
  lock.unlock();
  if (inserted) {
    evaluations_.fetch_add(1, std::memory_order_relaxed);
    XAI_COUNTER_INC("shap/cache_entries");
  }
  return stored;
}

ConditionalFeatureGame::ConditionalFeatureGame(PredictFn f, Vector instance,
                                               Matrix background,
                                               int k_neighbors)
    : f_(std::move(f)),
      instance_(std::move(instance)),
      background_(std::move(background)),
      k_(k_neighbors) {
  CheckCoalitionWidth(instance_);
  XAI_CHECK_GT(background_.rows(), 0);
  XAI_CHECK_EQ(background_.cols(), static_cast<int>(instance_.size()));
  XAI_CHECK_GT(k_, 0);
  // Per-feature scales for the conditioning distance.
  int d = background_.cols();
  stddevs_.assign(d, 1.0);
  for (int j = 0; j < d; ++j) {
    double mean = 0.0;
    for (int i = 0; i < background_.rows(); ++i) mean += background_(i, j);
    mean /= background_.rows();
    double var = 0.0;
    for (int i = 0; i < background_.rows(); ++i) {
      double diff = background_(i, j) - mean;
      var += diff * diff;
    }
    var /= std::max(1, background_.rows() - 1);
    stddevs_[j] = var > 1e-12 ? std::sqrt(var) : 1.0;
  }
}

ConditionalFeatureGame::ConditionalFeatureGame(const Model& model,
                                               Vector instance,
                                               Matrix background,
                                               int k_neighbors)
    : ConditionalFeatureGame(AsPredictFn(model), std::move(instance),
                             std::move(background), k_neighbors) {
  batch_f_ = AsBatchPredictFn(model);
}

int ConditionalFeatureGame::num_players() const {
  return static_cast<int>(instance_.size());
}

double ConditionalFeatureGame::Value(uint64_t coalition) const {
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = cache_.find(coalition);
    if (it != cache_.end()) {
      // Count after dropping the lock: telemetry must not lengthen the
      // critical section other threads are waiting on.
      const double cached = it->second;
      lock.unlock();
      XAI_COUNTER_INC("shap/cache_hits");
      return cached;
    }
  }
  XAI_COUNTER_INC("shap/cache_misses");
  int d = num_players();
  int n = background_.rows();
  int k = std::min(k_, n);

  // Rank background rows by distance to the instance over the coalition's
  // features (empty coalition: every row is equally close).
  std::vector<std::pair<double, int>> by_dist(n);
  for (int i = 0; i < n; ++i) {
    double acc = 0.0;
    for (int j = 0; j < d; ++j) {
      if (!(coalition & (1ULL << j))) continue;
      double diff = (background_(i, j) - instance_[j]) / stddevs_[j];
      acc += diff * diff;
    }
    by_dist[i] = {acc, i};
  }
  std::nth_element(by_dist.begin(), by_dist.begin() + (k - 1),
                   by_dist.end());

  double acc = 0.0;
  if (batch_f_) {
    // Batched: same k rows in the same neighbor order, summed serially
    // (bit-identical to the scalar loop); PredictBatch counts model/evals.
    Matrix rows(k, d);
    for (int q = 0; q < k; ++q) {
      int i = by_dist[q].second;
      double* out = rows.RowPtr(q);
      for (int j = 0; j < d; ++j)
        out[j] = (coalition & (1ULL << j)) ? instance_[j]
                                           : background_(i, j);
    }
    const Vector preds = batch_f_(rows);
    for (double p : preds) acc += p;
  } else {
    Vector row(d);
    for (int q = 0; q < k; ++q) {
      int i = by_dist[q].second;
      for (int j = 0; j < d; ++j)
        row[j] = (coalition & (1ULL << j)) ? instance_[j]
                                           : background_(i, j);
      acc += f_(row);
    }
    XAI_COUNTER_ADD("model/evals", k);
  }
  double value = acc / k;
  std::unique_lock<std::mutex> lock(mu_);
  auto [it, inserted] = cache_.emplace(coalition, value);
  const double stored = it->second;
  lock.unlock();
  if (inserted) XAI_COUNTER_INC("shap/cache_entries");
  return stored;
}

InterventionalScmGame::InterventionalScmGame(const LinearScm* scm,
                                             PredictFn f, Vector instance,
                                             int mc_samples, uint64_t seed)
    : scm_(scm),
      f_(std::move(f)),
      instance_(std::move(instance)),
      mc_samples_(mc_samples),
      seed_(seed) {
  CheckCoalitionWidth(instance_);
  XAI_CHECK(scm != nullptr);
  XAI_CHECK_EQ(scm->num_nodes(), static_cast<int>(instance_.size()));
}

InterventionalScmGame::InterventionalScmGame(const LinearScm* scm,
                                             const Model& model,
                                             Vector instance, int mc_samples,
                                             uint64_t seed)
    : InterventionalScmGame(scm, AsPredictFn(model), std::move(instance),
                            mc_samples, seed) {
  batch_f_ = AsBatchPredictFn(model);
}

int InterventionalScmGame::num_players() const {
  return static_cast<int>(instance_.size());
}

double InterventionalScmGame::Value(uint64_t coalition) const {
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = cache_.find(coalition);
    if (it != cache_.end()) {
      // Count after dropping the lock: telemetry must not lengthen the
      // critical section other threads are waiting on.
      const double cached = it->second;
      lock.unlock();
      XAI_COUNTER_INC("shap/cache_hits");
      return cached;
    }
  }
  XAI_COUNTER_INC("shap/cache_misses");
  std::map<int, double> interventions;
  for (int j = 0; j < num_players(); ++j)
    if (coalition & (1ULL << j)) interventions[j] = instance_[j];
  // Common random numbers: the same seed for every coalition.
  Rng rng(seed_);
  Matrix samples = scm_->SampleInterventional(interventions, mc_samples_, &rng);
  double acc = 0.0;
  if (batch_f_) {
    // The sampled matrix is already materialized: score it in one batched
    // model call and sum serially in sample order (bit-identical to the
    // scalar loop); PredictBatch counts model/evals.
    const Vector preds = batch_f_(samples);
    for (double p : preds) acc += p;
  } else {
    for (int i = 0; i < samples.rows(); ++i) acc += f_(samples.Row(i));
    XAI_COUNTER_ADD("model/evals", samples.rows());
  }
  double value = acc / mc_samples_;
  std::unique_lock<std::mutex> lock(mu_);
  auto [it, inserted] = cache_.emplace(coalition, value);
  const double stored = it->second;
  lock.unlock();
  if (inserted) XAI_COUNTER_INC("shap/cache_entries");
  return stored;
}

}  // namespace xai
