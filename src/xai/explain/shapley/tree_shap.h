#ifndef XAI_EXPLAIN_SHAPLEY_TREE_SHAP_H_
#define XAI_EXPLAIN_SHAPLEY_TREE_SHAP_H_

#include <cstdint>

#include "xai/core/matrix.h"
#include "xai/explain/explanation.h"
#include "xai/model/tree.h"
#include "xai/model/tree_ensemble_view.h"

namespace xai {

/// \brief TreeSHAP (Lundberg et al. 2020, §2.1.2): exact Shapley values of
/// the tree-path-conditional game in O(L D^2) per tree instead of O(2^d)
/// model evaluations — "exploits properties of the tree structure for faster
/// and efficient computation".

/// Expected output of a tree: the cover-weighted mean of its leaves.
double TreeExpectedValue(const Tree& tree);

/// The game TreeSHAP computes Shapley values of:
///   v(S) = E[tree(x) | x_S] under path-proportion conditioning —
/// splits on features in S are followed; splits on other features average
/// both children weighted by cover. Used by tests to cross-check TreeSHAP
/// against brute-force exact Shapley values.
double TreeConditionalExpectation(const Tree& tree, const Vector& x,
                                  uint64_t known_mask);

/// Exact per-feature Shapley values of one tree at `x` (polynomial
/// algorithm). The returned vector has one entry per feature and sums to
/// tree(x) - TreeExpectedValue(tree).
Vector TreeShapValues(const Tree& tree, const Vector& x, int num_features);

/// TreeSHAP over an additive tree ensemble view: attributions sum over
/// trees (scaled); base value = view.base + sum of scaled tree expectations;
/// prediction = view.Margin(x). Runs on the flat iterative kernel
/// (explain/shapley/flat_tree_shap.h) — bit-identical to TreeShapLegacy.
/// Every tree in the view must be non-empty (views over zero trees are
/// fine); same effective contract as before, since Margin() never
/// supported empty trees either, but now enforced by a clear CHECK in
/// FlatEnsemble::Build instead of undefined behavior.
AttributionExplanation TreeShap(const TreeEnsembleView& view, const Vector& x);

/// The recursive AoS reference walk TreeShap is validated against. Same
/// contract and bitwise-identical output; kept as the independent
/// cross-check for tests and benches.
AttributionExplanation TreeShapLegacy(const TreeEnsembleView& view,
                                      const Vector& x);

/// TreeSHAP for every row of a matrix in one call.
struct TreeShapBatchResult {
  /// Row i holds the attributions of x row i (rows x features); each row is
  /// bit-identical to TreeShap(view, x.Row(i)).attributions at any thread
  /// count.
  Matrix attributions;
  /// view.Margin per row (via the flat batch kernel).
  Vector predictions;
  /// Shared base value: view.base + sum of scaled tree expectations.
  double base_value = 0.0;
};

/// Batched TreeSHAP over the flat kernel, blocked rows-by-trees and
/// parallelized over row tiles — the throughput path behind
/// GlobalShapImportance and batch serving.
TreeShapBatchResult TreeShapBatch(const TreeEnsembleView& view,
                                  const Matrix& x);

}  // namespace xai

#endif  // XAI_EXPLAIN_SHAPLEY_TREE_SHAP_H_
