#ifndef XAI_EXPLAIN_SHAPLEY_EXACT_SHAPLEY_H_
#define XAI_EXPLAIN_SHAPLEY_EXACT_SHAPLEY_H_

#include "xai/core/matrix.h"
#include "xai/core/status.h"
#include "xai/explain/shapley/value_function.h"

namespace xai {

/// Exact Shapley values by full subset enumeration:
///   phi_i = sum_{S not containing i} |S|!(n-|S|-1)!/n! [v(S+i) - v(S)].
/// O(2^n) value-function evaluations — "computing Shapley values takes
/// exponential time" (§2.1.2). Refuses n > 24.
Result<Vector> ExactShapley(const CoalitionGame& game);

/// Exact Banzhaf indices (uniform coalition weights) for comparison.
Result<Vector> ExactBanzhaf(const CoalitionGame& game);

/// Serving budget hook: planned model evaluations of a full enumeration —
/// 2^num_features coalitions, `background_rows` model calls each. Saturates
/// (instead of overflowing) for large d, so callers can compare it against
/// any deadline-derived budget.
int64_t ExactShapleyPlannedEvals(int num_features, int background_rows);

}  // namespace xai

#endif  // XAI_EXPLAIN_SHAPLEY_EXACT_SHAPLEY_H_
