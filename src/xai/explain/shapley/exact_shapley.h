#ifndef XAI_EXPLAIN_SHAPLEY_EXACT_SHAPLEY_H_
#define XAI_EXPLAIN_SHAPLEY_EXACT_SHAPLEY_H_

#include "xai/core/matrix.h"
#include "xai/core/status.h"
#include "xai/explain/shapley/value_function.h"

namespace xai {

/// Exact Shapley values by full subset enumeration:
///   phi_i = sum_{S not containing i} |S|!(n-|S|-1)!/n! [v(S+i) - v(S)].
/// O(2^n) value-function evaluations — "computing Shapley values takes
/// exponential time" (§2.1.2). Refuses n > 24.
Result<Vector> ExactShapley(const CoalitionGame& game);

/// Exact Banzhaf indices (uniform coalition weights) for comparison.
Result<Vector> ExactBanzhaf(const CoalitionGame& game);

}  // namespace xai

#endif  // XAI_EXPLAIN_SHAPLEY_EXACT_SHAPLEY_H_
