#include "xai/explain/shapley/asymmetric_shapley.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "xai/core/check.h"

namespace xai {
namespace {

// Marginal contributions along one permutation, added into acc with weight.
void AccumulatePermutation(const CoalitionGame& game,
                           const std::vector<int>& perm, double weight,
                           Vector* acc) {
  uint64_t mask = 0;
  double prev = game.Value(0);
  for (int i : perm) {
    mask |= 1ULL << i;
    double cur = game.Value(mask);
    (*acc)[i] += weight * (cur - prev);
    prev = cur;
  }
}

bool ConsistentWithDag(const std::vector<int>& perm, const Dag& dag) {
  std::vector<int> position(perm.size());
  for (size_t p = 0; p < perm.size(); ++p) position[perm[p]] = static_cast<int>(p);
  for (const auto& [from, to] : dag.Edges())
    if (position[from] > position[to]) return false;
  // Edges only give direct precedence; ancestors follow transitively.
  return true;
}

}  // namespace

Result<Vector> ExactAsymmetricShapley(const CoalitionGame& game,
                                      const Dag& dag) {
  int n = game.num_players();
  if (n != dag.num_nodes())
    return Status::InvalidArgument("DAG size must match player count");
  if (n > 9)
    return Status::InvalidArgument(
        "exact asymmetric Shapley enumerates n! permutations; n > 9 refused");
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  Vector acc(n, 0.0);
  int count = 0;
  do {
    if (!ConsistentWithDag(perm, dag)) continue;
    AccumulatePermutation(game, perm, 1.0, &acc);
    ++count;
  } while (std::next_permutation(perm.begin(), perm.end()));
  if (count == 0) return Status::Internal("no consistent permutation found");
  for (double& v : acc) v /= count;
  return acc;
}

std::vector<int> RandomLinearExtension(const Dag& dag, Rng* rng) {
  int n = dag.num_nodes();
  std::vector<int> indeg(n);
  for (int i = 0; i < n; ++i)
    indeg[i] = static_cast<int>(dag.Parents(i).size());
  std::vector<int> available;
  for (int i = 0; i < n; ++i)
    if (indeg[i] == 0) available.push_back(i);
  std::vector<int> order;
  order.reserve(n);
  while (!available.empty()) {
    int pick = rng->UniformInt(static_cast<int>(available.size()));
    int node = available[pick];
    available.erase(available.begin() + pick);
    order.push_back(node);
    for (int child : dag.Children(node))
      if (--indeg[child] == 0) available.push_back(child);
  }
  XAI_CHECK_EQ(static_cast<int>(order.size()), n);
  return order;
}

Result<Vector> SampledAsymmetricShapley(const CoalitionGame& game,
                                        const Dag& dag, int samples,
                                        Rng* rng) {
  int n = game.num_players();
  if (n != dag.num_nodes())
    return Status::InvalidArgument("DAG size must match player count");
  if (samples <= 0) return Status::InvalidArgument("samples must be > 0");
  // The greedy sampler picks uniformly among available minimal elements, so
  // extension e has probability prod_t 1/|avail_t|; importance-weight each
  // sample by prod_t |avail_t| to recover the uniform-over-extensions mean.
  Vector acc(n, 0.0);
  double weight_sum = 0.0;
  for (int s = 0; s < samples; ++s) {
    std::vector<int> indeg(n);
    for (int i = 0; i < n; ++i)
      indeg[i] = static_cast<int>(dag.Parents(i).size());
    std::vector<int> available;
    for (int i = 0; i < n; ++i)
      if (indeg[i] == 0) available.push_back(i);
    std::vector<int> order;
    double log_weight = 0.0;
    while (!available.empty()) {
      log_weight += std::log(static_cast<double>(available.size()));
      int pick = rng->UniformInt(static_cast<int>(available.size()));
      int node = available[pick];
      available.erase(available.begin() + pick);
      order.push_back(node);
      for (int child : dag.Children(node))
        if (--indeg[child] == 0) available.push_back(child);
    }
    double weight = std::exp(log_weight);
    AccumulatePermutation(game, order, weight, &acc);
    weight_sum += weight;
  }
  for (double& v : acc) v /= weight_sum;
  return acc;
}

}  // namespace xai
