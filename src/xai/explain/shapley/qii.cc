#include "xai/explain/shapley/qii.h"

#include "xai/explain/shapley/sampling_shapley.h"

namespace xai {

Vector UnaryQii(const CoalitionGame& game) {
  int n = game.num_players();
  uint64_t full = (1ULL << n) - 1;
  double vn = game.Value(full);
  Vector iota(n);
  for (int i = 0; i < n; ++i)
    iota[i] = vn - game.Value(full & ~(1ULL << i));
  return iota;
}

Vector BanzhafQii(const CoalitionGame& game, int samples, Rng* rng) {
  int n = game.num_players();
  Vector phi(n, 0.0);
  for (int i = 0; i < n; ++i) {
    uint64_t bit = 1ULL << i;
    double acc = 0.0;
    for (int s = 0; s < samples; ++s) {
      // Uniformly random coalition not containing i.
      uint64_t mask = 0;
      for (int j = 0; j < n; ++j)
        if (j != i && rng->Bernoulli(0.5)) mask |= 1ULL << j;
      acc += game.Value(mask | bit) - game.Value(mask);
    }
    phi[i] = acc / samples;
  }
  return phi;
}

Vector ShapleyQii(const CoalitionGame& game, int permutations, Rng* rng) {
  return SamplingShapley(game, permutations, rng).values;
}

}  // namespace xai
