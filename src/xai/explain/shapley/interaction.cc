#include "xai/explain/shapley/interaction.h"

#include "xai/core/combinatorics.h"
#include "xai/explain/shapley/exact_shapley.h"

namespace xai {

Result<Matrix> ExactShapleyInteractions(const CoalitionGame& game) {
  int n = game.num_players();
  if (n < 2) return Status::InvalidArgument("need at least two players");
  if (n > 16)
    return Status::InvalidArgument(
        "exact interaction values are exponential; refusing n > 16");

  // Cache all 2^n game values.
  uint64_t limit = 1ULL << n;
  std::vector<double> v(limit);
  for (uint64_t mask = 0; mask < limit; ++mask) v[mask] = game.Value(mask);

  // Interaction weights per |S| (S excludes both i and j).
  Vector w(n - 1);
  for (int s = 0; s <= n - 2; ++s)
    w[s] = Factorial(s) * Factorial(n - s - 2) / (2.0 * Factorial(n - 1));

  Matrix phi(n, n);
  for (uint64_t mask = 0; mask < limit; ++mask) {
    int size = PopCount(mask);
    if (size > n - 2) continue;
    double weight = w[size];
    for (int i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) continue;
      for (int j = i + 1; j < n; ++j) {
        if (mask & (1ULL << j)) continue;
        double delta = v[mask | (1ULL << i) | (1ULL << j)] -
                       v[mask | (1ULL << i)] - v[mask | (1ULL << j)] +
                       v[mask];
        phi(i, j) += weight * delta;
      }
    }
  }
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < i; ++j) phi(i, j) = phi(j, i);

  // Diagonal: main effects so that row sums equal the Shapley values.
  XAI_ASSIGN_OR_RETURN(Vector shapley, ExactShapley(game));
  for (int i = 0; i < n; ++i) {
    double off = 0.0;
    for (int j = 0; j < n; ++j)
      if (j != i) off += phi(i, j);
    phi(i, i) = shapley[i] - off;
  }
  return phi;
}

}  // namespace xai
