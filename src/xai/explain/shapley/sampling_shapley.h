#ifndef XAI_EXPLAIN_SHAPLEY_SAMPLING_SHAPLEY_H_
#define XAI_EXPLAIN_SHAPLEY_SAMPLING_SHAPLEY_H_

#include "xai/core/matrix.h"
#include "xai/core/rng.h"
#include "xai/explain/shapley/value_function.h"

namespace xai {

/// \brief Result of Monte-Carlo Shapley estimation.
struct SamplingShapleyResult {
  Vector values;
  /// Per-player standard error of the mean marginal contribution.
  Vector std_errors;
  int permutations_used = 0;
};

/// Permutation-sampling Shapley estimator (Castro et al. style): draws
/// random permutations, walks each one accumulating marginal contributions.
/// Unbiased; error shrinks as 1/sqrt(permutations).
///
/// Permutations are evaluated in parallel (core/parallel.h): each one draws
/// from its own RNG stream derived from a single draw off `rng` via
/// SplitSeed, and partial sums are combined in fixed chunk order, so the
/// result is bit-identical for any thread count.
SamplingShapleyResult SamplingShapley(const CoalitionGame& game,
                                      int permutations, Rng* rng);

/// \name Serving budget hooks (see serve/degradation.h)
/// @{
/// Deterministic planning cost: each permutation walks num_features
/// coalition steps, each charged `background_rows` model calls (memoization
/// makes the real cost lower; planning uses the bound).
int64_t SamplingShapleyPlannedEvals(int permutations, int num_features,
                                    int background_rows);

/// Largest permutation count (>= 1, <= `permutations`) whose planned cost
/// fits `max_evals`.
int SamplingShapleyPermutationsForBudget(int permutations, int64_t max_evals,
                                         int num_features,
                                         int background_rows);
/// @}

}  // namespace xai

#endif  // XAI_EXPLAIN_SHAPLEY_SAMPLING_SHAPLEY_H_
