#ifndef XAI_EXPLAIN_SHAPLEY_SAMPLING_SHAPLEY_H_
#define XAI_EXPLAIN_SHAPLEY_SAMPLING_SHAPLEY_H_

#include "xai/core/matrix.h"
#include "xai/core/rng.h"
#include "xai/explain/shapley/value_function.h"

namespace xai {

/// \brief Result of Monte-Carlo Shapley estimation.
struct SamplingShapleyResult {
  Vector values;
  /// Per-player standard error of the mean marginal contribution.
  Vector std_errors;
  int permutations_used = 0;
};

/// Permutation-sampling Shapley estimator (Castro et al. style): draws
/// random permutations, walks each one accumulating marginal contributions.
/// Unbiased; error shrinks as 1/sqrt(permutations).
SamplingShapleyResult SamplingShapley(const CoalitionGame& game,
                                      int permutations, Rng* rng);

}  // namespace xai

#endif  // XAI_EXPLAIN_SHAPLEY_SAMPLING_SHAPLEY_H_
