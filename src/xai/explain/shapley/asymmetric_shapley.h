#ifndef XAI_EXPLAIN_SHAPLEY_ASYMMETRIC_SHAPLEY_H_
#define XAI_EXPLAIN_SHAPLEY_ASYMMETRIC_SHAPLEY_H_

#include "xai/causal/dag.h"
#include "xai/core/matrix.h"
#include "xai/core/rng.h"
#include "xai/core/status.h"
#include "xai/explain/shapley/value_function.h"

namespace xai {

/// \brief Asymmetric Shapley values (Frye, Rowat & Feige 2019, §2.1.3):
/// only permutations consistent with a causal partial order contribute —
/// "incorporat(ing) causality by discarding coalitions that do not follow
/// causal ordering", at the cost of the symmetry axiom.
///
/// The partial order is given by `dag`: i must precede j in a permutation
/// whenever i is an ancestor of j.

/// Exact version: enumerates all linear extensions of the DAG (n <= 9).
Result<Vector> ExactAsymmetricShapley(const CoalitionGame& game,
                                      const Dag& dag);

/// Monte-Carlo version: samples uniform random linear extensions.
Result<Vector> SampledAsymmetricShapley(const CoalitionGame& game,
                                        const Dag& dag, int samples,
                                        Rng* rng);

/// Draws a uniformly random linear extension of the DAG (random choice among
/// currently available minimal elements).
std::vector<int> RandomLinearExtension(const Dag& dag, Rng* rng);

}  // namespace xai

#endif  // XAI_EXPLAIN_SHAPLEY_ASYMMETRIC_SHAPLEY_H_
