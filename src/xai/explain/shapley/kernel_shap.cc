#include "xai/explain/shapley/kernel_shap.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "xai/core/combinatorics.h"
#include "xai/core/linalg.h"
#include "xai/core/parallel.h"
#include "xai/core/trace.h"

namespace xai {
namespace {

// Shapley kernel weight for coalition size s out of d.
double KernelWeight(int d, int s) {
  return (d - 1.0) / (BinomialCoefficient(d, s) * s * (d - s));
}

// Appends every coalition of `size` over d players to out.
void EnumerateSize(int d, int size, std::vector<uint64_t>* out) {
  std::vector<int> idx(size);
  for (int i = 0; i < size; ++i) idx[i] = i;
  for (;;) {
    uint64_t mask = 0;
    for (int i : idx) mask |= 1ULL << i;
    out->push_back(mask);
    int i = size - 1;
    while (i >= 0 && idx[i] == d - size + i) --i;
    if (i < 0) break;
    ++idx[i];
    for (int j = i + 1; j < size; ++j) idx[j] = idx[j - 1] + 1;
  }
}

uint64_t RandomMaskOfSize(int d, int size, Rng* rng) {
  std::vector<int> chosen = rng->SampleWithoutReplacement(d, size);
  uint64_t mask = 0;
  for (int i : chosen) mask |= 1ULL << i;
  return mask;
}

}  // namespace

Result<AttributionExplanation> KernelShap(const CoalitionGame& game,
                                          const KernelShapConfig& config,
                                          Rng* rng) {
  XAI_SPAN("kernel_shap/explain");
  int d = game.num_players();
  if (d < 1) return Status::InvalidArgument("game has no players");
  if (d == 1) {
    AttributionExplanation exp;
    exp.base_value = game.Value(0);
    exp.prediction = game.Value(1);
    exp.attributions = {exp.prediction - exp.base_value};
    return exp;
  }

  double v0 = game.Value(0);
  uint64_t full = d >= 63 ? ~0ULL : (1ULL << d) - 1;
  double vn = game.Value(full);

  // Collect coalitions and their regression weights.
  std::vector<uint64_t> masks;
  std::vector<double> weights;
  double total_coalitions = std::pow(2.0, d) - 2.0;
  if (total_coalitions <= config.coalition_budget) {
    for (int s = 1; s < d; ++s) {
      size_t before = masks.size();
      EnumerateSize(d, s, &masks);
      double w = KernelWeight(d, s);
      weights.resize(masks.size(), w);
      (void)before;
    }
  } else {
    // Fill size pairs (s, d-s) from the extremes inward while they fit.
    int budget = config.coalition_budget;
    std::vector<bool> enumerated(d, false);
    for (int s = 1; s <= d / 2; ++s) {
      int other = d - s;
      double count = BinomialCoefficient(d, s);
      if (other != s) count *= 2.0;
      if (count > budget) break;
      EnumerateSize(d, s, &masks);
      weights.resize(masks.size(), KernelWeight(d, s));
      if (other != s) {
        EnumerateSize(d, other, &masks);
        weights.resize(masks.size(), KernelWeight(d, other));
      }
      enumerated[s] = enumerated[other] = true;
      budget -= static_cast<int>(count);
    }
    // Sample the remaining budget from the non-enumerated sizes with
    // probability proportional to the total kernel mass of the size. The
    // sampled coalitions' frequencies are then rescaled so their total
    // regression weight equals the kernel mass they stand in for — without
    // this, sampled (middle) sizes would dwarf the enumerated tails.
    std::vector<double> size_mass(d, 0.0);
    double remaining_mass = 0.0;
    for (int s = 1; s < d; ++s) {
      if (enumerated[s]) continue;
      size_mass[s] = KernelWeight(d, s) * BinomialCoefficient(d, s);
      remaining_mass += size_mass[s];
    }
    if (remaining_mass > 0.0 && budget > 0) {
      std::unordered_map<uint64_t, double> sampled;  // mask -> frequency.
      int drawn = 0;
      for (int q = 0; q < budget; ++q) {
        int s = rng->Categorical(size_mass);
        uint64_t mask = RandomMaskOfSize(d, s, rng);
        sampled[mask] += 1.0;
        ++drawn;
        // Paired complement sample (antithetic), as in the reference code.
        if (++q < budget) {
          sampled[full ^ mask] += 1.0;
          ++drawn;
        }
      }
      double scale =
          config.normalize_sampled_mass ? remaining_mass / drawn : 1.0;
      for (const auto& [mask, freq] : sampled) {
        masks.push_back(mask);
        weights.push_back(freq * scale);
      }
    }
  }

  if (masks.empty())
    return Status::InvalidArgument("coalition budget too small");

  const int num_masks = static_cast<int>(masks.size());
  Vector ones(d, 1.0);
  Vector phi;
  if (config.fused) {
    // Fused pipeline: mask→evaluate→weight→accumulate per row block. Each
    // block's rows and targets are filled in parallel (coalition
    // evaluations dominate — each is B model calls and the games'
    // memoization is thread-safe), then folded serially in ascending row
    // order into the streaming constrained solver, so nothing ever holds
    // the full budget x d design matrix and the accumulation chains match
    // the materialized path bit-for-bit.
    CwlsAccumulator acc(d, ones, vn - v0);
    constexpr int kBlockRows = 1024;
    std::vector<double> rows(static_cast<size_t>(kBlockRows) * d);
    Vector target(kBlockRows);
    {
      XAI_SPAN("kernel_shap/eval_coalitions");
      for (int base = 0; base < num_masks; base += kBlockRows) {
        const int bn = std::min(kBlockRows, num_masks - base);
        ParallelFor(bn, /*grain=*/16,
                    [&](int64_t begin, int64_t end, int64_t) {
                      for (int64_t r = begin; r < end; ++r) {
                        double* row = rows.data() + static_cast<size_t>(r) * d;
                        uint64_t mask = masks[base + r];
                        for (int j = 0; j < d; ++j)
                          row[j] = (mask >> j) & 1ULL ? 1.0 : 0.0;
                        target[r] = game.Value(mask) - v0;
                      }
                    });
        acc.AddBlock(rows.data(), target.data(), weights.data() + base, bn);
      }
    }
    XAI_SPAN("kernel_shap/solve");
    XAI_ASSIGN_OR_RETURN(phi, acc.Solve(config.ridge));
  } else {
    // Materialized pipeline (A/B baseline): build the full design matrix,
    // then solve. Every design row / target entry is written by exactly one
    // chunk, so the result is identical at any thread count.
    Matrix design(num_masks, d);
    Vector target(masks.size());
    {
      XAI_SPAN("kernel_shap/eval_coalitions");
      ParallelFor(static_cast<int64_t>(masks.size()), /*grain=*/16,
                  [&](int64_t begin, int64_t end, int64_t) {
                    for (int64_t r = begin; r < end; ++r) {
                      double* row = design.RowPtr(static_cast<int>(r));
                      for (int j = 0; j < d; ++j)
                        row[j] = (masks[r] >> j) & 1ULL ? 1.0 : 0.0;
                      target[r] = game.Value(masks[r]) - v0;
                    }
                  });
    }
    XAI_SPAN("kernel_shap/solve");
    XAI_ASSIGN_OR_RETURN(
        phi, ConstrainedWeightedLeastSquares(design, target, weights, ones,
                                             vn - v0, config.ridge));
  }
  AttributionExplanation exp;
  exp.attributions = std::move(phi);
  exp.base_value = v0;
  exp.prediction = vn;
  return exp;
}

int64_t KernelShapPlannedEvals(const KernelShapConfig& config,
                               int num_features, int background_rows) {
  if (num_features < 1 || background_rows < 1) return 0;
  // Full enumeration caps the budget: 2^d - 2 proper coalitions exist.
  double full = num_features < 62 ? std::pow(2.0, num_features) - 2.0 : 4e18;
  double coalitions =
      std::min(static_cast<double>(config.coalition_budget), full) + 2.0;
  double evals = coalitions * background_rows;
  return evals > 4e18 ? int64_t{4000000000000000000}
                      : static_cast<int64_t>(evals);
}

KernelShapConfig KernelShapForBudget(KernelShapConfig config,
                                     int64_t max_evals, int num_features,
                                     int background_rows) {
  const int floor_budget = 2 * std::max(1, num_features) + 2;
  if (background_rows < 1) background_rows = 1;
  int64_t affordable = max_evals / background_rows - 2;
  config.coalition_budget = static_cast<int>(
      std::clamp<int64_t>(affordable, floor_budget, config.coalition_budget));
  return config;
}

}  // namespace xai
