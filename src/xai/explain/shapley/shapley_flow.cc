#include "xai/explain/shapley/shapley_flow.h"

#include <algorithm>

#include "xai/core/check.h"

namespace xai {

std::string ShapleyFlowResult::EdgeLabel(const Dag& dag, size_t index) const {
  const ShapleyFlowEdge& e = edges[index];
  std::string from = e.from < 0 ? "source" : dag.name(e.from);
  std::string to = e.to >= dag.num_nodes() ? "model" : dag.name(e.to);
  return from + "->" + to;
}

namespace {

/// Evaluates the model output for a given set of active edges (see header
/// for the transmission semantics).
class FlowEvaluator {
 public:
  FlowEvaluator(const LinearScm& scm, const PredictFn& f,
                const Vector& instance, const Vector& baseline_world,
                const Vector& noise,
                const std::vector<ShapleyFlowEdge>& edges)
      : scm_(scm),
        f_(f),
        instance_(instance),
        baseline_world_(baseline_world),
        noise_(noise),
        topo_(scm.dag().TopologicalOrder()) {
    int n = scm.num_nodes();
    edge_index_.assign(static_cast<size_t>(n + 1) * (n + 1), -1);
    for (size_t i = 0; i < edges.size(); ++i) {
      int from = edges[i].from < 0 ? n : edges[i].from;  // Slot n = source.
      edge_index_[static_cast<size_t>(from) * (n + 1) + edges[i].to] =
          static_cast<int>(i);
    }
  }

  double Output(const std::vector<bool>& active) const {
    int n = scm_.num_nodes();
    Vector value(n);
    for (int node : topo_) {
      const auto& parents = scm_.dag().Parents(node);
      if (parents.empty()) {
        value[node] = active[EdgeIndex(-1, node)] ? instance_[node]
                                                  : baseline_world_[node];
        continue;
      }
      double v = scm_.Bias(node);
      for (int p : parents) {
        double seen =
            active[EdgeIndex(p, node)] ? value[p] : baseline_world_[p];
        v += scm_.Weight(p, node) * seen;
      }
      value[node] = v + scm_.NoiseStdDev(node) * noise_[node];
    }
    Vector seen_by_model(n);
    for (int j = 0; j < n; ++j)
      seen_by_model[j] =
          active[EdgeIndex(j, n)] ? value[j] : baseline_world_[j];
    return f_(seen_by_model);
  }

 private:
  int EdgeIndex(int from, int to) const {
    int n = scm_.num_nodes();
    int f = from < 0 ? n : from;
    int idx = edge_index_[static_cast<size_t>(f) * (n + 1) + to];
    XAI_DCHECK(idx >= 0);
    return idx;
  }

  const LinearScm& scm_;
  const PredictFn& f_;
  const Vector& instance_;
  const Vector& baseline_world_;
  const Vector& noise_;
  std::vector<int> topo_;
  std::vector<int> edge_index_;
};

}  // namespace

Result<ShapleyFlowResult> ShapleyFlow(const LinearScm& scm, const PredictFn& f,
                                      const Vector& instance,
                                      const Vector& baseline, int orderings,
                                      Rng* rng) {
  int n = scm.num_nodes();
  if (static_cast<int>(instance.size()) != n ||
      static_cast<int>(baseline.size()) != n)
    return Status::InvalidArgument("instance/baseline width mismatch");
  if (orderings <= 0) return Status::InvalidArgument("orderings must be > 0");

  const Dag& dag = scm.dag();
  ShapleyFlowResult result;
  for (int r : dag.Roots()) result.edges.push_back({-1, r, 0.0});
  for (const auto& [from, to] : dag.Edges())
    result.edges.push_back({from, to, 0.0});
  for (int j = 0; j < n; ++j) result.edges.push_back({j, n, 0.0});
  int m = static_cast<int>(result.edges.size());

  // Baseline world: roots take the baseline values; non-roots propagate them
  // through the mechanisms with the instance's abducted noise.
  Vector noise = scm.AbductNoise(instance);
  Vector baseline_world(n);
  for (int node : dag.TopologicalOrder()) {
    const auto& parents = dag.Parents(node);
    if (parents.empty()) {
      baseline_world[node] = baseline[node];
      continue;
    }
    double v = scm.Bias(node);
    for (int p : parents) v += scm.Weight(p, node) * baseline_world[p];
    baseline_world[node] = v + scm.NoiseStdDev(node) * noise[node];
  }

  FlowEvaluator evaluator(scm, f, instance, baseline_world, noise,
                          result.edges);
  std::vector<bool> none(m, false), all(m, true);
  result.background_output = evaluator.Output(none);
  result.foreground_output = evaluator.Output(all);

  std::vector<int> order(m);
  for (int i = 0; i < m; ++i) order[i] = i;
  for (int s = 0; s < orderings; ++s) {
    rng->Shuffle(&order);
    std::vector<bool> active(m, false);
    double prev = result.background_output;
    for (int e : order) {
      active[e] = true;
      double cur = evaluator.Output(active);
      result.edges[e].credit += (cur - prev) / orderings;
      prev = cur;
    }
  }
  return result;
}

}  // namespace xai
