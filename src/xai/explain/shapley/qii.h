#ifndef XAI_EXPLAIN_SHAPLEY_QII_H_
#define XAI_EXPLAIN_SHAPLEY_QII_H_

#include "xai/core/matrix.h"
#include "xai/core/rng.h"
#include "xai/explain/shapley/value_function.h"

namespace xai {

/// \brief Quantitative Input Influence (Datta, Sen & Zick 2016, §2.1.2):
/// the influence of a feature measured as its marginal effect across sets.

/// Unary QII: iota(i) = v(N) - v(N \ {i}) — the effect of randomizing only
/// feature i while everything else stays known.
Vector UnaryQii(const CoalitionGame& game);

/// Set QII averaged over uniformly random coalitions (the Banzhaf-style
/// aggregate); `samples` random S per feature.
Vector BanzhafQii(const CoalitionGame& game, int samples, Rng* rng);

/// Shapley QII (the paper's recommended aggregation) via permutation
/// sampling — identical in expectation to SamplingShapley; provided under
/// the QII name for the tutorial's taxonomy.
Vector ShapleyQii(const CoalitionGame& game, int permutations, Rng* rng);

}  // namespace xai

#endif  // XAI_EXPLAIN_SHAPLEY_QII_H_
