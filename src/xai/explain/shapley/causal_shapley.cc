#include "xai/explain/shapley/causal_shapley.h"

#include "xai/explain/shapley/exact_shapley.h"
#include "xai/explain/shapley/sampling_shapley.h"
#include "xai/explain/shapley/value_function.h"

namespace xai {

Result<AttributionExplanation> CausalShapley(
    const LinearScm& scm, const PredictFn& f, const Vector& instance,
    const CausalShapleyConfig& config) {
  if (scm.num_nodes() != static_cast<int>(instance.size()))
    return Status::InvalidArgument("instance width must match SCM nodes");
  InterventionalScmGame game(&scm, f, instance, config.mc_samples,
                             config.seed);
  int d = game.num_players();
  AttributionExplanation exp;
  if (d <= 14) {
    XAI_ASSIGN_OR_RETURN(exp.attributions, ExactShapley(game));
  } else {
    Rng rng(config.seed + 1);
    exp.attributions =
        SamplingShapley(game, config.permutations, &rng).values;
  }
  exp.base_value = game.Value(0);
  exp.prediction = game.Value((1ULL << d) - 1);
  for (int j = 0; j < d; ++j)
    exp.feature_names.push_back(scm.dag().name(j));
  return exp;
}

std::vector<std::pair<double, double>> LinearDirectIndirectEffects(
    const LinearScm& scm, const Vector& model_weights,
    const Vector& instance, const Vector& baseline) {
  int d = scm.num_nodes();
  std::vector<std::pair<double, double>> out(d);
  for (int j = 0; j < d; ++j) {
    double delta = instance[j] - baseline[j];
    double direct = delta * model_weights[j];
    double total = 0.0;
    for (int k = 0; k < d; ++k)
      total += delta * model_weights[k] * scm.TotalEffect(j, k);
    out[j] = {direct, total - direct};
  }
  return out;
}

}  // namespace xai
