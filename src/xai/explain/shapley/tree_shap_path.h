#ifndef XAI_EXPLAIN_SHAPLEY_TREE_SHAP_PATH_H_
#define XAI_EXPLAIN_SHAPLEY_TREE_SHAP_PATH_H_

namespace xai {
namespace treeshap {

/// \brief Path bookkeeping of the polynomial TreeSHAP algorithm (Lundberg
/// et al., "Consistent Individualized Feature Attribution for Tree
/// Ensembles", Algorithm 2). `pweight` holds the proportion of subsets of a
/// given cardinality flowing down the path.
///
/// These helpers are shared between the legacy recursive walk
/// (tree_shap.cc) and the flat iterative kernel (flat_tree_shap.cc): both
/// paths execute the exact same floating-point operations in the same
/// order, which is what makes the flat kernel bit-identical to the
/// recursive reference by construction.
struct PathElement {
  int feature_index = -1;
  double zero_fraction = 0.0;  // Fraction of paths when the feature is absent.
  double one_fraction = 0.0;   // 1 if x follows this split, else 0.
  double pweight = 0.0;
};

/// Grows the path by one split (Algorithm 2, EXTEND): pushes the new
/// element at `unique_depth` and redistributes the subset-proportion
/// weights of every prefix length.
inline void ExtendPath(PathElement* p, int unique_depth, double zero_fraction,
                       double one_fraction, int feature_index) {
  p[unique_depth].feature_index = feature_index;
  p[unique_depth].zero_fraction = zero_fraction;
  p[unique_depth].one_fraction = one_fraction;
  p[unique_depth].pweight = unique_depth == 0 ? 1.0 : 0.0;
  for (int i = unique_depth - 1; i >= 0; --i) {
    p[i + 1].pweight +=
        one_fraction * p[i].pweight * (i + 1) / (unique_depth + 1.0);
    p[i].pweight =
        zero_fraction * p[i].pweight * (unique_depth - i) /
        (unique_depth + 1.0);
  }
}

/// Removes the element at `path_index` (Algorithm 2, UNWIND), restoring the
/// weights to what they were before that split was extended onto the path.
inline void UnwindPath(PathElement* p, int unique_depth, int path_index) {
  const double one_fraction = p[path_index].one_fraction;
  const double zero_fraction = p[path_index].zero_fraction;
  double next_one_portion = p[unique_depth].pweight;
  for (int i = unique_depth - 1; i >= 0; --i) {
    if (one_fraction != 0.0) {
      const double tmp = p[i].pweight;
      p[i].pweight =
          next_one_portion * (unique_depth + 1.0) / ((i + 1) * one_fraction);
      next_one_portion = tmp - p[i].pweight * zero_fraction *
                                   (unique_depth - i) / (unique_depth + 1.0);
    } else {
      p[i].pweight = p[i].pweight * (unique_depth + 1.0) /
                     (zero_fraction * (unique_depth - i));
    }
  }
  for (int i = path_index; i < unique_depth; ++i) {
    p[i].feature_index = p[i + 1].feature_index;
    p[i].zero_fraction = p[i + 1].zero_fraction;
    p[i].one_fraction = p[i + 1].one_fraction;
  }
}

/// Total pweight the path would carry after unwinding `path_index`, without
/// mutating the path — the leaf-time per-feature weight of Algorithm 2.
inline double UnwoundPathSum(const PathElement* p, int unique_depth,
                             int path_index) {
  const double one_fraction = p[path_index].one_fraction;
  const double zero_fraction = p[path_index].zero_fraction;
  double next_one_portion = p[unique_depth].pweight;
  double total = 0.0;
  for (int i = unique_depth - 1; i >= 0; --i) {
    if (one_fraction != 0.0) {
      const double tmp =
          next_one_portion * (unique_depth + 1.0) / ((i + 1) * one_fraction);
      total += tmp;
      next_one_portion =
          p[i].pweight -
          tmp * zero_fraction * (unique_depth - i) / (unique_depth + 1.0);
    } else if (zero_fraction != 0.0) {
      total += (p[i].pweight / zero_fraction) /
               ((unique_depth - i) / (unique_depth + 1.0));
    }
  }
  return total;
}

}  // namespace treeshap
}  // namespace xai

#endif  // XAI_EXPLAIN_SHAPLEY_TREE_SHAP_PATH_H_
