#include "xai/explain/shapley/flat_tree_shap.h"

#include <algorithm>
#include <cstddef>

#include "xai/core/check.h"
#include "xai/core/parallel.h"
#include "xai/core/telemetry.h"

namespace xai {
namespace {

/// One arena per OS thread, grown to the largest (depth, features) it has
/// served and then reused across trees, rows, batches, and requests — the
/// steady-state walk performs zero heap allocations. Pool workers persist
/// across ParallelFor calls, so serving traffic hits the reuse path on
/// every request after warm-up (observable via `tree_shap/arena_reuse`).
TreeShapArena& LocalArena() {
  static thread_local TreeShapArena arena;
  return arena;
}

}  // namespace

void TreeShapArena::Ensure(int max_depth, int num_features) {
  if (max_depth <= max_depth_ && num_features <= num_features_) {
    XAI_COUNTER_INC("tree_shap/arena_reuse");
    return;
  }
  max_depth_ = std::max(max_depth, max_depth_);
  num_features_ = std::max(num_features, num_features_);
  // Levels 0..max_depth+1, each holding up to max_depth+2 path elements;
  // see the aliasing argument in the class comment.
  stride_ = max_depth_ + 2;
  path_.resize(static_cast<size_t>(stride_) * stride_);
  // DFS holds at most one pending cold frame per ancestor depth plus the
  // two just-pushed children.
  stack_.resize(static_cast<size_t>(max_depth_) + 4);
  phi_tree_.resize(num_features_);
  XAI_COUNTER_INC("tree_shap/arena_grow");
}

FlatTreeShap FlatTreeShap::Build(const TreeEnsembleView& view) {
  FlatTreeShap kernel;
  kernel.flat_ = view.flat();
  kernel.shap_ = &kernel.flat_->EnsureTreeShapData(view.trees);
  kernel.nodes_ = kernel.flat_->nodes();
  // Same accumulation order as the legacy per-call loop (base, then scaled
  // expectations in tree order), over the cached per-tree expectations.
  double base = kernel.nodes_.base;
  for (int t = 0; t < kernel.nodes_.num_trees; ++t)
    base += kernel.nodes_.scales[t] * kernel.shap_->expected[t];
  kernel.base_value_ = base;
  return kernel;
}

int FlatTreeShap::WalkTree(int32_t root, const double* row,
                           TreeShapArena* arena, double* phi) const {
  using treeshap::PathElement;
  const int32_t* feature = nodes_.feature;
  const double* bits = nodes_.bits;
  const int32_t* left = nodes_.left;
  const double* cover = shap_->cover.data();

  TreeShapArena::Frame* stack = arena->stack();
  PathElement* const level0 = arena->Level(0);
  const std::ptrdiff_t stride = arena->Level(1) - level0;
  int top = 0;
  int max_ud = 0;

  // Preorder DFS, hot child first — the exact visit (and therefore
  // leaf-accumulation) order of the recursive reference, with the same
  // shared path arithmetic, so every += lands bit-identically. The live
  // descent is held in locals and *chases the hot child* without touching
  // the stack; only cold siblings are pushed, and popping the most recent
  // pending cold frame is exactly where the recursion would resume after
  // unwinding its hot subtree.
  int32_t node = root;
  PathElement* path = level0;
  int32_t depth = 0;
  int ud = 0;
  double zero = 1.0, one = 1.0;
  int32_t feat = -1;

  for (;;) {
    treeshap::ExtendPath(path, ud, zero, one, feat);
    const int32_t fidx = feature[node];
    if (fidx < 0) {
      const double leaf = bits[node];
      for (int i = 1; i <= ud; ++i) {
        const double w = treeshap::UnwoundPathSum(path, ud, i);
        phi[path[i].feature_index] +=
            w * (path[i].one_fraction - path[i].zero_fraction) * leaf;
      }
      max_ud = std::max(max_ud, ud);
      if (top == 0) break;
      const TreeShapArena::Frame& f = stack[--top];
      node = f.node;
      path = level0 + f.path_level * stride;
      depth = f.depth;
      ud = f.unique_depth;
      zero = f.zero_fraction;
      one = f.one_fraction;
      feat = f.feature;
      continue;
    }

    const int32_t l = left[node];
    const int32_t r = l + 1;  // Sibling-adjacent layout.
    // `<=` routes NaN right exactly like the AoS walk.
    const bool goes_left = row[fidx] <= bits[node];
    const int32_t hot = goes_left ? l : r;
    const int32_t cold = goes_left ? r : l;
    const double total = cover[l] + cover[r];
    const double hot_zero = total > 0.0 ? cover[hot] / total : 0.0;
    const double cold_zero = total > 0.0 ? cover[cold] / total : 0.0;

    // A feature may appear on the path only once (Lundberg Algorithm 2):
    // undo a previous split on this feature before extending through it.
    double incoming_zero = 1.0;
    double incoming_one = 1.0;
    int path_index = 1;
    for (; path_index <= ud; ++path_index)
      if (path[path_index].feature_index == fidx) break;
    if (path_index <= ud) {
      incoming_zero = path[path_index].zero_fraction;
      incoming_one = path[path_index].one_fraction;
      treeshap::UnwindPath(path, ud, path_index);
      ud -= 1;
    }

    // The hot branch keeps extending this level's path in place; only the
    // cold branch snapshots the post-unwind state, into the level owned by
    // the child's tree depth (never aliased — see TreeShapArena).
    const int32_t child_depth = depth + 1;
    std::copy(path, path + ud + 1, level0 + child_depth * stride);
    stack[top++] = {cold,   child_depth, child_depth,
                    fidx,   ud + 1,      cold_zero * incoming_zero, 0.0};
    node = hot;
    depth = child_depth;
    ud += 1;
    zero = hot_zero * incoming_zero;
    one = incoming_one;
    feat = fidx;
  }
  return max_ud;
}

AttributionExplanation FlatTreeShap::Shap(const Vector& x) const {
  XAI_CHECK(flat_ != nullptr);
  const int d = static_cast<int>(x.size());
  AttributionExplanation exp;
  exp.attributions.assign(d, 0.0);
  exp.base_value = base_value_;

  TreeShapArena& arena = LocalArena();
  arena.Ensure(shap_->max_depth, d);
  double* phi = arena.phi_tree();
  int max_ud = 0;
  for (int t = 0; t < nodes_.num_trees; ++t) {
    // Per-tree scratch zeroed then folded with the tree's scale — the same
    // two-step accumulation (and float ops) as the legacy per-tree phis.
    std::fill(phi, phi + d, 0.0);
    max_ud = std::max(max_ud, WalkTree(nodes_.roots[t], x.data(), &arena,
                                       phi));
    const double scale = nodes_.scales[t];
    for (int j = 0; j < d; ++j) exp.attributions[j] += scale * phi[j];
  }
  exp.prediction = flat_->MarginRow(x.data());
  XAI_COUNTER_INC("tree_shap/flat_rows");
  XAI_HISTOGRAM_RECORD("tree_shap/path_depth", max_ud);
  return exp;
}

void FlatTreeShap::ShapRows(const Matrix& x, int64_t begin, int64_t end,
                            Matrix* out) const {
  const int d = x.cols();
  TreeShapArena& arena = LocalArena();
  arena.Ensure(shap_->max_depth, d);
  double* phi = arena.phi_tree();

  const double* rows[kRowBlock];
  double* outs[kRowBlock];
  int depth_seen[kRowBlock];
  for (int64_t block = begin; block < end; block += kRowBlock) {
    const int bn = static_cast<int>(std::min<int64_t>(kRowBlock,
                                                      end - block));
    for (int i = 0; i < bn; ++i) {
      rows[i] = x.RowPtr(static_cast<int>(block + i));
      outs[i] = out->RowPtr(static_cast<int>(block + i));
      std::fill(outs[i], outs[i] + d, 0.0);
      depth_seen[i] = 0;
    }
    // Rows x trees tile: one tree's nodes + covers service the whole row
    // tile from cache before the next tree's block is touched. Per-row
    // accumulation stays in ascending tree order, so each output row is
    // bit-identical to the single-instance walk regardless of tiling.
    for (int t = 0; t < nodes_.num_trees; ++t) {
      const int32_t root = nodes_.roots[t];
      const double scale = nodes_.scales[t];
      for (int i = 0; i < bn; ++i) {
        std::fill(phi, phi + d, 0.0);
        depth_seen[i] = std::max(depth_seen[i],
                                 WalkTree(root, rows[i], &arena, phi));
        double* o = outs[i];
        for (int j = 0; j < d; ++j) o[j] += scale * phi[j];
      }
    }
    for (int i = 0; i < bn; ++i)
      XAI_HISTOGRAM_RECORD("tree_shap/path_depth", depth_seen[i]);
  }
}

Matrix FlatTreeShap::ShapBatch(const Matrix& x) const {
  XAI_CHECK(flat_ != nullptr);
  Matrix out(x.rows(), x.cols());
  // Chunk grain equals the row tile so every chunk tiles cleanly; per-row
  // results are independent of the chunking, so output is bit-identical at
  // any thread count.
  ParallelFor(x.rows(), /*grain=*/kRowBlock,
              [&](int64_t begin, int64_t end, int64_t) {
                ShapRows(x, begin, end, &out);
              });
  XAI_COUNTER_ADD("tree_shap/flat_rows", x.rows());
  return out;
}

}  // namespace xai
