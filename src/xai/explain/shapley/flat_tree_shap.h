#ifndef XAI_EXPLAIN_SHAPLEY_FLAT_TREE_SHAP_H_
#define XAI_EXPLAIN_SHAPLEY_FLAT_TREE_SHAP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "xai/core/matrix.h"
#include "xai/explain/explanation.h"
#include "xai/explain/shapley/tree_shap_path.h"
#include "xai/model/flat_ensemble.h"
#include "xai/model/tree_ensemble_view.h"

namespace xai {

/// \brief Preallocated scratch for the iterative TreeSHAP walk: one path
/// buffer per tree level, an explicit node stack, and the per-tree phi
/// accumulator. Sized once per (max_depth, num_features) and reused across
/// trees, rows, and requests — the walk itself never touches the heap.
///
/// Layout contract. The walk descends the *hot* child (the one the
/// instance follows) by extending the current level's path buffer in
/// place; only the *cold* branch snapshots the path, into the buffer of
/// the child's tree depth. At most one cold snapshot is pending per depth
/// at any time (they correspond to ancestors of the DFS position), and the
/// hot chain's working buffer always has a strictly smaller level index
/// than any pending cold snapshot, so `(max_depth + 2)` buffers of
/// `(max_depth + 2)` elements each can never alias: (max_depth+2)^2
/// path elements total, the arena bound quoted in DESIGN.md §14.
class TreeShapArena {
 public:
  /// Grows the arena if `max_depth` / `num_features` exceed the current
  /// capacity; otherwise reuses the existing block. Bumps the
  /// `tree_shap/arena_reuse` (capacity hit) or `tree_shap/arena_grow`
  /// (reallocation) counter so steady-state zero-allocation is observable.
  void Ensure(int max_depth, int num_features);

  treeshap::PathElement* Level(int level) {
    return path_.data() + static_cast<size_t>(level) * stride_;
  }
  double* phi_tree() { return phi_tree_.data(); }

  struct Frame {
    int32_t node = 0;          // Flat slot to visit.
    int32_t path_level = 0;    // Arena level holding this frame's path.
    int32_t depth = 0;         // Tree depth of the node (level allocator).
    int32_t feature = -1;      // Parent split feature (-1 at the root).
    int32_t unique_depth = 0;  // Path length on entry (pre-extend).
    double zero_fraction = 1.0;
    double one_fraction = 1.0;
  };
  Frame* stack() { return stack_.data(); }

 private:
  std::vector<treeshap::PathElement> path_;
  std::vector<Frame> stack_;
  std::vector<double> phi_tree_;
  int stride_ = 0;
  int max_depth_ = -1;
  int num_features_ = -1;
};

/// \brief Iterative, allocation-free polynomial TreeSHAP over the flat SoA
/// ensemble (DESIGN.md §14).
///
/// The legacy recursive walk (tree_shap.cc) chases 48-byte AoS TreeNode
/// structs and copies the live path once per internal node — a heap
/// allocation per visit. This kernel walks the 16-byte-effective flat
/// inference layout plus its lazily built cover side-table
/// (FlatEnsemble::EnsureTreeShapData), replaces recursion with an explicit
/// node stack, and extends the hot branch's path in place so only cold
/// branches pay a (stack-arena) snapshot. Per-node float arithmetic is the
/// shared tree_shap_path.h code, executed in the same DFS order as the
/// recursion, so attributions and base values are BIT-IDENTICAL to the
/// legacy walk — at any thread count.
///
/// Cheap to construct once the underlying caches are warm: Build reuses
/// the view's cached FlatEnsemble and the ensemble's cached side-table, so
/// the serving path constructs one per request for the price of two
/// shared_ptr copies.
class FlatTreeShap {
 public:
  /// Rows per tile of the batch walk: one tree's node block and covers
  /// service the whole row tile from cache before the next tree is
  /// touched. Also the ParallelFor grain, so chunks tile cleanly.
  static constexpr int kRowBlock = 8;

  FlatTreeShap() = default;

  /// Compiles (or reuses) the view's flat kernel and TreeSHAP side-table.
  /// The view must outlive nothing — the returned object shares ownership
  /// of the flat ensemble; only `view.base` and the tree count are copied.
  static FlatTreeShap Build(const TreeEnsembleView& view);

  /// view.base + sum_t scales[t] * E[tree_t] — the cached base value every
  /// explanation shares (bit-identical to the legacy per-call leaf scans).
  double base_value() const { return base_value_; }
  int num_trees() const { return nodes_.num_trees; }
  int max_depth() const { return shap_->max_depth; }
  int64_t num_nodes() const { return flat_->num_nodes(); }

  /// Exact Shapley attributions of one instance; bit-identical to the
  /// legacy TreeShap(view, x). Serial over trees (single-row latency is
  /// already sub-millisecond; batch throughput parallelizes over rows).
  AttributionExplanation Shap(const Vector& x) const;

  /// Attributions for every row of `x` (rows x features), blocked
  /// rows-by-trees and parallelized over row tiles with tree-ordered
  /// accumulation: row i of the result is bit-identical to Shap(x.Row(i))
  /// — and therefore to the legacy walk — at any thread count.
  Matrix ShapBatch(const Matrix& x) const;

  /// Serial building block of ShapBatch: attributions for rows
  /// [begin, end) into out rows [begin, end). Exposed for benches.
  void ShapRows(const Matrix& x, int64_t begin, int64_t end,
                Matrix* out) const;

 private:
  /// One (tree, row) polynomial walk accumulating into phi (d doubles,
  /// caller-zeroed). Returns the deepest unique path depth reached.
  int WalkTree(int32_t root, const double* row, TreeShapArena* arena,
               double* phi) const;

  std::shared_ptr<const FlatEnsemble> flat_;
  const FlatEnsemble::TreeShapData* shap_ = nullptr;
  FlatEnsemble::NodeView nodes_;
  double base_value_ = 0.0;
};

}  // namespace xai

#endif  // XAI_EXPLAIN_SHAPLEY_FLAT_TREE_SHAP_H_
