#ifndef XAI_EXPLAIN_SHAPLEY_VALUE_FUNCTION_H_
#define XAI_EXPLAIN_SHAPLEY_VALUE_FUNCTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "xai/causal/scm.h"
#include "xai/core/matrix.h"
#include "xai/core/rng.h"
#include "xai/model/model.h"

namespace xai {

/// \brief A cooperative game over feature coalitions (bitmask of players).
///
/// Shapley-value explainers (§2.1.2-2.1.3) differ only in this value
/// function: marginal expectations for SHAP, interventional expectations for
/// causal Shapley values, model-performance for Data Shapley. Implementations
/// may cache: Value() is expected to be deterministic per coalition.
///
/// Threading: the parallel explainers (KernelSHAP, sampling Shapley, exact
/// enumeration; see core/parallel.h) call Value() concurrently from pool
/// workers. Implementations must be const-reentrant — the built-in games
/// below guard their memoization caches with a mutex and only capture
/// const-reentrant PredictFns (see the Model threading contract in
/// model/model.h).
class CoalitionGame {
 public:
  virtual ~CoalitionGame() = default;
  /// Number of players n. Coalitions are bitmasks over n bits in a
  /// uint64_t, so n <= 64 is a hard structural limit — the built-in games
  /// XAI_CHECK it at construction (silent mask truncation would
  /// mis-attribute every feature past the 64th).
  virtual int num_players() const = 0;
  /// Worth of a coalition.
  virtual double Value(uint64_t coalition) const = 0;
};

/// \brief The (marginal / interventional-by-independence) SHAP game:
///
///   v(S) = (1/B) sum_b f(x_S ; background_b restricted to ~S)
///
/// i.e. features in S take the instance's values, the rest take values from
/// background rows. Values are memoized, so exact enumeration over 2^d
/// coalitions costs each coalition only once.
class MarginalFeatureGame : public CoalitionGame {
 public:
  /// `background` rows supply the off-coalition feature values. If
  /// `max_background` > 0 only the first `max_background` rows are used.
  MarginalFeatureGame(PredictFn f, Vector instance, Matrix background,
                      int max_background = 0);

  /// Model-aware overload: coalition evaluations go through the model's
  /// batched path (one PredictBatch call per background sweep instead of a
  /// std::function + virtual call per row), which for tree models runs the
  /// compiled SoA kernel (model/flat_ensemble.h). Values are bit-identical
  /// to the PredictFn constructor: the perturbed rows are built in the same
  /// order and summed serially in row order. The model must outlive the
  /// game.
  MarginalFeatureGame(const Model& model, Vector instance, Matrix background,
                      int max_background = 0);

  int num_players() const override;
  double Value(uint64_t coalition) const override;

  /// Number of distinct coalition evaluations so far (for cost accounting).
  /// Atomic: exact and safely readable while pool workers are inside
  /// Value() — the pre-telemetry version read a plain int that concurrent
  /// inserters were mutating under the cache mutex.
  int64_t num_evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }

 private:
  PredictFn f_;
  /// Non-null only for the Model overload; the miss path then batches the
  /// whole background sweep into one model call.
  BatchPredictFn batch_f_;
  Vector instance_;
  Matrix background_;
  mutable std::mutex mu_;  // Guards cache_.
  mutable std::unordered_map<uint64_t, double> cache_;
  mutable std::atomic<int64_t> evaluations_{0};
};

/// \brief The *conditional* (on-manifold) SHAP game (Aas et al.'s empirical
/// conditioning; the answer to §2.1.2's criticism that marginal Shapley
/// values cannot "capture the indirect influences of features"):
///
///   v(S) = E[ f(X) | X_S = x_S ]
///
/// estimated by averaging f over the `k` training rows closest to the
/// instance in the coalition's coordinates (standardized distance), with
/// the coalition features forced to the instance's values. Because the
/// off-coalition values come from *matching real rows*, correlated features
/// move together and the evaluation points stay near the data manifold —
/// which also blunts OOD-detector-based adversarial attacks (§2.1.1).
class ConditionalFeatureGame : public CoalitionGame {
 public:
  ConditionalFeatureGame(PredictFn f, Vector instance, Matrix background,
                         int k_neighbors = 20);

  /// Model-aware overload: the k matched-neighbor evaluations per coalition
  /// go through one batched model call (see MarginalFeatureGame). The model
  /// must outlive the game.
  ConditionalFeatureGame(const Model& model, Vector instance,
                         Matrix background, int k_neighbors = 20);

  int num_players() const override;
  double Value(uint64_t coalition) const override;

 private:
  PredictFn f_;
  BatchPredictFn batch_f_;  // Non-null only for the Model overload.
  Vector instance_;
  Matrix background_;
  int k_;
  Vector stddevs_;  // Per-feature scale for the conditioning distance.
  mutable std::mutex mu_;  // Guards cache_.
  mutable std::unordered_map<uint64_t, double> cache_;
};

/// \brief The causal Shapley game of Heskes et al. (§2.1.3):
///
///   v(S) = E[ f(X) | do(X_S = x_S) ]
///
/// estimated by sampling the SCM under the hard intervention. The RNG is
/// re-seeded per coalition (common random numbers), making Value()
/// deterministic and reducing the variance of marginal contrasts.
class InterventionalScmGame : public CoalitionGame {
 public:
  InterventionalScmGame(const LinearScm* scm, PredictFn f, Vector instance,
                        int mc_samples, uint64_t seed);

  /// Model-aware overload: the sampled interventional matrix is scored with
  /// one batched model call (see MarginalFeatureGame). The model must
  /// outlive the game.
  InterventionalScmGame(const LinearScm* scm, const Model& model,
                        Vector instance, int mc_samples, uint64_t seed);

  int num_players() const override;
  double Value(uint64_t coalition) const override;

 private:
  const LinearScm* scm_;
  PredictFn f_;
  BatchPredictFn batch_f_;  // Non-null only for the Model overload.
  Vector instance_;
  int mc_samples_;
  uint64_t seed_;
  mutable std::mutex mu_;  // Guards cache_.
  mutable std::unordered_map<uint64_t, double> cache_;
};

}  // namespace xai

#endif  // XAI_EXPLAIN_SHAPLEY_VALUE_FUNCTION_H_
