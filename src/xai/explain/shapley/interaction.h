#ifndef XAI_EXPLAIN_SHAPLEY_INTERACTION_H_
#define XAI_EXPLAIN_SHAPLEY_INTERACTION_H_

#include "xai/core/matrix.h"
#include "xai/core/status.h"
#include "xai/explain/shapley/value_function.h"

namespace xai {

/// \brief Exact Shapley interaction values (the SHAP interaction index of
/// Lundberg et al. 2020, building on Fujimoto et al.): a d x d matrix whose
/// off-diagonal entries capture pairwise feature interactions,
///
///   Phi_ij = sum_{S not containing i,j} |S|!(n-|S|-2)!/(2(n-1)!) *
///            [ v(S+ij) - v(S+i) - v(S+j) + v(S) ]        (i != j)
///
/// and whose diagonal holds the "main effects"
///   Phi_ii = phi_i - sum_{j != i} Phi_ij,
/// so every row sums to the feature's ordinary Shapley value and the whole
/// matrix sums to v(N) - v(empty).
///
/// Exponential in d (full enumeration); refuses n > 16.
Result<Matrix> ExactShapleyInteractions(const CoalitionGame& game);

}  // namespace xai

#endif  // XAI_EXPLAIN_SHAPLEY_INTERACTION_H_
