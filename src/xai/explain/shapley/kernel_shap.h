#ifndef XAI_EXPLAIN_SHAPLEY_KERNEL_SHAP_H_
#define XAI_EXPLAIN_SHAPLEY_KERNEL_SHAP_H_

#include "xai/core/rng.h"
#include "xai/core/status.h"
#include "xai/explain/explanation.h"
#include "xai/explain/shapley/value_function.h"

namespace xai {

/// \brief Configuration of Kernel SHAP.
struct KernelShapConfig {
  /// Coalition evaluation budget. When 2^d - 2 <= budget all coalitions are
  /// enumerated and the result is exact; otherwise coalitions are sampled in
  /// paired complements, filling subset sizes from the extremes inward
  /// (largest kernel weight first), as in the reference implementation.
  int coalition_budget = 2048;
  /// Ridge added to the weighted least squares for numerical stability.
  double ridge = 1e-9;
  /// Rescale sampled coalitions' frequencies to the kernel mass of their
  /// sizes (the reference implementation's behavior). Disabling this is an
  /// ablation: sampled middle sizes then dwarf the enumerated tails and the
  /// estimator becomes visibly biased (see bench_a01).
  bool normalize_sampled_mass = true;
  /// Stream mask→evaluate→weight→accumulate through a CwlsAccumulator in
  /// row blocks instead of materializing the budget x d coalition design
  /// matrix. Bit-identical attributions on the default SIMD tiers (the
  /// accumulator replays the materialized solve's operation chains);
  /// disable only to A/B against the materialized path.
  bool fused = true;
};

/// \brief Kernel SHAP (Lundberg & Lee 2017, §2.1.2): estimates Shapley
/// values as the solution of a weighted linear regression over coalitions
/// with the Shapley kernel pi(S) = (d-1) / (C(d,|S|) |S| (d-|S|)), subject
/// to the efficiency constraint sum(phi) = v(N) - v(0).
Result<AttributionExplanation> KernelShap(const CoalitionGame& game,
                                          const KernelShapConfig& config,
                                          Rng* rng);

/// \name Serving budget hooks (see serve/degradation.h)
/// @{
/// Deterministic planning cost of a KernelSHAP run against a marginal game:
/// distinct coalitions evaluated (budget capped by full enumeration, plus
/// the two anchors v(0) and v(N)) times `background_rows` model calls each.
int64_t KernelShapPlannedEvals(const KernelShapConfig& config,
                               int num_features, int background_rows);

/// Shrinks `config.coalition_budget` until the planned cost fits
/// `max_evals` (floor: 2*num_features + 2 coalitions, below which the
/// regression is degenerate). Deterministic — pure arithmetic on the config.
KernelShapConfig KernelShapForBudget(KernelShapConfig config,
                                     int64_t max_evals, int num_features,
                                     int background_rows);
/// @}

}  // namespace xai

#endif  // XAI_EXPLAIN_SHAPLEY_KERNEL_SHAP_H_
