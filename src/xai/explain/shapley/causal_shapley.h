#ifndef XAI_EXPLAIN_SHAPLEY_CAUSAL_SHAPLEY_H_
#define XAI_EXPLAIN_SHAPLEY_CAUSAL_SHAPLEY_H_

#include "xai/causal/scm.h"
#include "xai/core/rng.h"
#include "xai/core/status.h"
#include "xai/explain/explanation.h"
#include "xai/model/model.h"

namespace xai {

/// \brief Configuration of the causal Shapley explainer.
struct CausalShapleyConfig {
  /// Monte-Carlo samples per interventional expectation.
  int mc_samples = 512;
  /// Permutation samples when the exact computation is refused (d > 14).
  int permutations = 200;
  uint64_t seed = 7;
};

/// \brief Causal Shapley values (Heskes et al. 2020, §2.1.3): ordinary
/// Shapley values of the interventional game v(S) = E[f(X) | do(X_S = x_S)],
/// computed over a structural causal model. Unlike asymmetric Shapley
/// values, all Shapley axioms are preserved while indirect effects routed
/// through the causal graph are still credited.
Result<AttributionExplanation> CausalShapley(
    const LinearScm& scm, const PredictFn& f, const Vector& instance,
    const CausalShapleyConfig& config = {});

/// Decomposition of a linear model's causal attribution into direct and
/// indirect parts, computed analytically on a linear SCM: the *total*
/// effect of feature j routes w_j directly plus the model weights of its
/// descendants times their path effects. Returned per feature as
/// (direct, indirect).
std::vector<std::pair<double, double>> LinearDirectIndirectEffects(
    const LinearScm& scm, const Vector& model_weights,
    const Vector& instance, const Vector& baseline);

}  // namespace xai

#endif  // XAI_EXPLAIN_SHAPLEY_CAUSAL_SHAPLEY_H_
