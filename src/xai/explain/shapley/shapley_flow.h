#ifndef XAI_EXPLAIN_SHAPLEY_SHAPLEY_FLOW_H_
#define XAI_EXPLAIN_SHAPLEY_SHAPLEY_FLOW_H_

#include <string>
#include <vector>

#include "xai/causal/scm.h"
#include "xai/core/rng.h"
#include "xai/core/status.h"
#include "xai/model/model.h"

namespace xai {

/// \brief Shapley flow (Wang, Wiens & Lundberg 2021, §2.1.3): assigns credit
/// to the *edges* of the causal graph rather than to features, "extend(ing)
/// the set-based view of Shapley values to a graph-based approach".
///
/// The graph is augmented with a virtual source (whose edges set each root
/// feature to its foreground value) and a virtual sink (the model reads each
/// feature through a feature->sink edge). An edge is either active
/// (transmits the parent's current value) or inactive (transmits the
/// parent's baseline-world value). Credit of an edge = expected change in
/// model output at the moment the edge activates, averaged over sampled
/// edge orderings.
///
/// Implementation note: we sample uniform edge orderings rather than
/// enumerating only boundary-consistent DFS orderings as in the original
/// paper; the efficiency property (credits sum to f(x) - f(baseline world))
/// holds per ordering either way.
struct ShapleyFlowEdge {
  /// Parent node; -1 denotes the virtual source.
  int from = -1;
  /// Child node; num_nodes denotes the virtual sink (the model).
  int to = 0;
  double credit = 0.0;
};

struct ShapleyFlowResult {
  std::vector<ShapleyFlowEdge> edges;
  /// Model output at the instance (all edges active).
  double foreground_output = 0.0;
  /// Model output in the baseline world (no edges active).
  double background_output = 0.0;

  /// Edge labelled "a->b" using node names ("source"/"model" for virtuals).
  std::string EdgeLabel(const Dag& dag, size_t index) const;
};

/// Computes Shapley-flow credits over `orderings` sampled edge orderings.
/// `baseline` supplies the background values of the *root* features; the
/// baseline world propagates them through the SCM with the instance's
/// abducted noise.
Result<ShapleyFlowResult> ShapleyFlow(const LinearScm& scm, const PredictFn& f,
                                      const Vector& instance,
                                      const Vector& baseline, int orderings,
                                      Rng* rng);

}  // namespace xai

#endif  // XAI_EXPLAIN_SHAPLEY_SHAPLEY_FLOW_H_
