#include "xai/explain/explanation.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <sstream>

#include "xai/core/stats.h"

namespace xai {

std::vector<int> AttributionExplanation::TopFeatures(int k) const {
  std::vector<double> magnitude(attributions.size());
  for (size_t i = 0; i < attributions.size(); ++i)
    magnitude[i] = std::fabs(attributions[i]);
  std::vector<int> order = ArgSortDescending(magnitude);
  if (k < static_cast<int>(order.size())) order.resize(k);
  return order;
}

double AttributionExplanation::AttributionSum() const {
  return base_value +
         std::accumulate(attributions.begin(), attributions.end(), 0.0);
}

std::string AttributionExplanation::ToString() const {
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "prediction=%.4f base=%.4f\n", prediction,
                base_value);
  os << buf;
  for (int i : TopFeatures(static_cast<int>(attributions.size()))) {
    const std::string& name = i < static_cast<int>(feature_names.size())
                                  ? feature_names[i]
                                  : "feature_" + std::to_string(i);
    std::snprintf(buf, sizeof(buf), "  %-24s %+.5f\n", name.c_str(),
                  attributions[i]);
    os << buf;
  }
  return os.str();
}

Vector MedianAbsoluteDeviation(const Matrix& x) {
  Vector mad(x.cols());
  for (int j = 0; j < x.cols(); ++j) {
    std::vector<double> col = x.Col(j);
    double med = Median(col);
    std::vector<double> dev(col.size());
    for (size_t i = 0; i < col.size(); ++i) dev[i] = std::fabs(col[i] - med);
    double m = Median(dev);
    mad[j] = m > 1e-9 ? m : 1.0;
  }
  return mad;
}

}  // namespace xai
