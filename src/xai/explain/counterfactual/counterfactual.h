#ifndef XAI_EXPLAIN_COUNTERFACTUAL_COUNTERFACTUAL_H_
#define XAI_EXPLAIN_COUNTERFACTUAL_COUNTERFACTUAL_H_

#include <string>
#include <vector>

#include "xai/core/matrix.h"
#include "xai/data/dataset.h"
#include "xai/model/model.h"

namespace xai {

/// \brief Which feature changes are allowed when searching for
/// counterfactuals / recourse (the *feasibility* constraints of §2.1.4).
struct ActionabilitySpec {
  /// Features that may never change (e.g. race, gender).
  std::vector<bool> immutable;
  /// Allowed [lo, hi] per feature (categoricals: category index range).
  std::vector<std::pair<double, double>> ranges;
  /// Monotonicity: +1 may only increase (e.g. age), -1 only decrease, 0 free.
  std::vector<int> monotonicity;

  /// Everything mutable, ranges from the training data, no monotonicity.
  static ActionabilitySpec AllFree(const Dataset& train);

  /// True if moving feature j from `from` to `to` is allowed.
  bool Allows(int feature, double from, double to) const;
};

/// \brief One counterfactual example with its quality metrics (§2.1.4).
struct Counterfactual {
  Vector x;
  double prediction = 0.0;
  bool valid = false;
  /// MAD-weighted L1 distance to the original (numerics) + #category flips.
  double proximity = 0.0;
  /// Number of changed features.
  int sparsity = 0;
  /// Standardized distance to the nearest training row — a proxy for the
  /// "unrealistic and impossible counterfactual instances" critique: large
  /// values mean the counterfactual left the data manifold.
  double plausibility_distance = 0.0;
};

/// \brief Shared metric computation for all counterfactual generators.
class CounterfactualEvaluator {
 public:
  explicit CounterfactualEvaluator(const Dataset& train);

  /// MAD-weighted L1 distance (categorical mismatch counts 1).
  double Proximity(const Vector& a, const Vector& b) const;
  /// Number of differing features.
  int Sparsity(const Vector& a, const Vector& b) const;
  /// Standardized Euclidean distance to the nearest training row.
  double PlausibilityDistance(const Vector& x) const;
  /// Mean pairwise proximity among a set of counterfactuals.
  double Diversity(const std::vector<Counterfactual>& cfs) const;

  /// Fills in all metrics for a candidate counterfactual.
  Counterfactual Evaluate(const PredictFn& f, const Vector& original,
                          Vector candidate, int desired_class,
                          double threshold = 0.5) const;

  const Dataset& train() const { return *train_; }
  const Vector& mad() const { return mad_; }

 private:
  const Dataset* train_;
  Vector mad_;
  Vector stddevs_;
  std::vector<bool> categorical_;
};

}  // namespace xai

#endif  // XAI_EXPLAIN_COUNTERFACTUAL_COUNTERFACTUAL_H_
