#ifndef XAI_EXPLAIN_COUNTERFACTUAL_RECOURSE_H_
#define XAI_EXPLAIN_COUNTERFACTUAL_RECOURSE_H_

#include <string>
#include <vector>

#include "xai/core/status.h"
#include "xai/explain/counterfactual/counterfactual.h"
#include "xai/model/logistic_regression.h"

namespace xai {

/// \brief One feature change within a recourse flipset.
struct RecourseItem {
  int feature = -1;
  double from = 0.0;
  double to = 0.0;
  double cost = 0.0;
};

/// \brief A minimal-cost set of actions that flips a linear classifier's
/// decision (Ustun, Spangher & Liu 2019, §2.1.4: "actionable recourse in
/// linear classification").
struct Flipset {
  std::vector<RecourseItem> items;
  double total_cost = 0.0;
  /// Model score after applying the actions.
  double new_score = 0.0;
  bool feasible = false;

  std::string ToString(const Schema& schema) const;
};

/// \brief Configuration of the recourse search.
struct RecourseConfig {
  /// Grid points per feature between its current value and its bound.
  int grid_steps = 8;
  /// Maximum number of features changed jointly (exhaustive search; <= 3).
  int max_features = 2;
  /// Required margin past the decision boundary.
  double target_margin = 1e-6;
};

/// Exhaustive grid search for the cheapest action set that makes the
/// logistic model predict the positive class for `instance`, honoring the
/// actionability spec. Cost of changing feature j by delta = |delta|/mad_j.
Result<Flipset> LinearRecourse(const LogisticRegressionModel& model,
                               const Vector& instance,
                               const ActionabilitySpec& spec,
                               const Vector& mad,
                               const RecourseConfig& config = {});

}  // namespace xai

#endif  // XAI_EXPLAIN_COUNTERFACTUAL_RECOURSE_H_
