#ifndef XAI_EXPLAIN_COUNTERFACTUAL_DICE_H_
#define XAI_EXPLAIN_COUNTERFACTUAL_DICE_H_

#include <vector>

#include "xai/core/rng.h"
#include "xai/core/status.h"
#include "xai/explain/counterfactual/counterfactual.h"

namespace xai {

/// \brief Configuration of the DiCE-style generator.
struct DiceConfig {
  /// Number of diverse counterfactuals to return.
  int k = 4;
  /// Size of the valid-candidate pool built before diverse selection.
  int pool_size = 40;
  /// Random-walk restarts allowed while building the pool.
  int max_restarts = 400;
  /// Maximum mutation steps per restart.
  int max_steps_per_restart = 60;
  /// Trade-off weights of the selection objective
  /// (-proximity_weight * proximity + diversity_weight * log det K).
  double proximity_weight = 0.5;
  double diversity_weight = 1.0;
  double threshold = 0.5;
};

/// \brief Result: the selected diverse set plus search statistics.
struct DiceResult {
  std::vector<Counterfactual> counterfactuals;
  int model_calls = 0;
  /// Mean pairwise distance within the returned set.
  double diversity = 0.0;
};

/// \brief DiCE-style diverse counterfactuals (Mothilal et al. 2020, §2.1.4):
/// builds a pool of valid counterfactuals by guided random walks from the
/// instance (mutating features toward values seen in training data, then
/// greedily reverting unnecessary changes for sparsity), and selects k of
/// them greedily maximizing a determinantal-point-process diversity score
/// traded off against proximity — "a candidate set of diverse and feasible
/// counterfactuals".
Result<DiceResult> DiceCounterfactuals(const PredictFn& f,
                                       const Vector& instance,
                                       int desired_class,
                                       const CounterfactualEvaluator& eval,
                                       const ActionabilitySpec& spec,
                                       const DiceConfig& config, Rng* rng);

/// \name Serving budget hooks (see serve/degradation.h)
/// @{
/// Deterministic planning cost: the random-walk pool construction dominates
/// (restarts * steps model calls, plus the sparsity-revert pass per pooled
/// candidate, bounded by pool_size * steps).
int64_t DicePlannedModelCalls(const DiceConfig& config);

/// Shrinks max_restarts (floor 4*k) and pool_size (floor k) until the
/// planned cost fits `max_calls`.
DiceConfig DiceForBudget(DiceConfig config, int64_t max_calls);
/// @}

}  // namespace xai

#endif  // XAI_EXPLAIN_COUNTERFACTUAL_DICE_H_
