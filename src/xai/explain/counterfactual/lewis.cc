#include "xai/explain/counterfactual/lewis.h"

#include <algorithm>
#include <cmath>

#include "xai/core/check.h"

namespace xai {

LewisExplainer::LewisExplainer(const LinearScm* scm, PredictFn f,
                               double threshold)
    : scm_(scm), f_(std::move(f)), threshold_(threshold) {
  XAI_CHECK(scm != nullptr);
}

bool LewisExplainer::Positive(const Vector& world) const {
  return f_(world) >= threshold_;
}

Result<LewisExplainer::Scores> LewisExplainer::AttributeScores(
    int feature, double hi, double lo, int samples, Rng* rng) const {
  if (feature < 0 || feature >= scm_->num_nodes())
    return Status::InvalidArgument("feature out of range");
  if (samples <= 0) return Status::InvalidArgument("samples must be > 0");
  double midpoint = 0.5 * (hi + lo);

  Scores scores;
  int nec_hits = 0, suf_hits = 0, nesuf_hits = 0;
  for (int s = 0; s < samples; ++s) {
    Vector world = scm_->Sample(1, rng).Row(0);
    bool positive = Positive(world);
    bool is_high = world[feature] >= midpoint;

    // Counterfactual twins under the two interventions (abduction of this
    // world's noise happens inside Counterfactual()).
    Vector twin_lo = scm_->Counterfactual(world, {{feature, lo}});
    Vector twin_hi = scm_->Counterfactual(world, {{feature, hi}});
    bool lo_positive = Positive(twin_lo);
    bool hi_positive = Positive(twin_hi);

    if (is_high && positive) {
      ++scores.necessity_support;
      if (!lo_positive) ++nec_hits;
    }
    if (!is_high && !positive) {
      ++scores.sufficiency_support;
      if (hi_positive) ++suf_hits;
    }
    if (hi_positive && !lo_positive) ++nesuf_hits;
  }
  scores.necessity = scores.necessity_support > 0
                         ? static_cast<double>(nec_hits) /
                               scores.necessity_support
                         : 0.0;
  scores.sufficiency = scores.sufficiency_support > 0
                           ? static_cast<double>(suf_hits) /
                                 scores.sufficiency_support
                           : 0.0;
  scores.nesuf = static_cast<double>(nesuf_hits) / samples;
  return scores;
}

Result<std::vector<LewisExplainer::RecourseAction>>
LewisExplainer::CounterfactualRecourse(
    const Vector& instance,
    const std::vector<std::pair<int, std::vector<double>>>& candidate_values,
    int max_features, const Vector& mad) const {
  if (static_cast<int>(instance.size()) != scm_->num_nodes())
    return Status::InvalidArgument("instance width mismatch");
  if (max_features < 1 || max_features > 2)
    return Status::InvalidArgument(
        "recourse search supports 1 or 2 intervened features");

  std::vector<RecourseAction> actions;
  auto try_action = [&](const std::map<int, double>& iv) {
    Vector world = scm_->Counterfactual(instance, iv);
    if (!Positive(world)) return;
    RecourseAction action;
    action.interventions = iv;
    for (const auto& [j, v] : iv) {
      double scale = j < static_cast<int>(mad.size()) && mad[j] > 1e-12
                         ? mad[j]
                         : 1.0;
      action.cost += std::fabs(v - instance[j]) / scale;
    }
    action.counterfactual_world = std::move(world);
    actions.push_back(std::move(action));
  };

  for (const auto& [j, values] : candidate_values)
    for (double v : values) try_action({{j, v}});

  if (max_features >= 2) {
    for (size_t a = 0; a < candidate_values.size(); ++a) {
      for (size_t b = a + 1; b < candidate_values.size(); ++b) {
        for (double va : candidate_values[a].second)
          for (double vb : candidate_values[b].second)
            try_action({{candidate_values[a].first, va},
                        {candidate_values[b].first, vb}});
      }
    }
  }

  std::sort(actions.begin(), actions.end(),
            [](const RecourseAction& x, const RecourseAction& y) {
              return x.cost < y.cost;
            });
  return actions;
}

}  // namespace xai
