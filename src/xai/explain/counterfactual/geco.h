#ifndef XAI_EXPLAIN_COUNTERFACTUAL_GECO_H_
#define XAI_EXPLAIN_COUNTERFACTUAL_GECO_H_

#include <functional>
#include <vector>

#include "xai/core/rng.h"
#include "xai/core/status.h"
#include "xai/explain/counterfactual/counterfactual.h"

namespace xai {

/// \brief A PLAF-style plausibility/feasibility constraint: a predicate the
/// counterfactual must satisfy (e.g. "education can only increase",
/// "if education increases then age increases").
using PlafConstraint = std::function<bool(const Vector& original,
                                          const Vector& candidate)>;

/// \brief Configuration of the GeCo-style genetic search.
struct GecoConfig {
  int population = 64;
  int max_generations = 30;
  /// Survivors kept per generation.
  int elite = 16;
  double mutation_rate = 0.4;
  double crossover_rate = 0.6;
  /// Stop after the best valid candidate has been stable this many
  /// generations (the "real time" early exit).
  int patience = 3;
  double threshold = 0.5;
  uint64_t seed = 11;
};

/// \brief Search statistics reported alongside the counterfactual.
struct GecoResult {
  /// Best counterfactual found (check `found`).
  Counterfactual best;
  bool found = false;
  int model_calls = 0;
  int generations = 0;
  /// Additional valid candidates (sorted by quality) for diversity.
  std::vector<Counterfactual> runners_up;
};

/// \brief GeCo-style counterfactual search (Schleich et al. 2021, §3):
/// genetic algorithm whose candidate values are grounded in the training
/// data (plausibility), subject to PLAF constraints (feasibility), exploring
/// few-feature changes first and terminating as soon as a stable valid
/// counterfactual exists — the design that makes "quality counterfactual
/// explanations in real time" possible.
Result<GecoResult> GecoCounterfactual(
    const PredictFn& f, const Vector& instance, int desired_class,
    const CounterfactualEvaluator& eval, const ActionabilitySpec& spec,
    const std::vector<PlafConstraint>& plaf, const GecoConfig& config);

}  // namespace xai

#endif  // XAI_EXPLAIN_COUNTERFACTUAL_GECO_H_
