#ifndef XAI_EXPLAIN_COUNTERFACTUAL_LEWIS_H_
#define XAI_EXPLAIN_COUNTERFACTUAL_LEWIS_H_

#include <map>
#include <vector>

#include "xai/causal/scm.h"
#include "xai/core/rng.h"
#include "xai/core/status.h"
#include "xai/model/model.h"

namespace xai {

/// \brief LEWIS-style probabilistic contrastive counterfactuals (Galhotra,
/// Pradhan & Salimi 2021, §2.1.4): explains a classifier's output with the
/// probabilities of necessity and sufficiency of attribute interventions,
/// computed over a structural causal model, and ranks interventions for
/// counterfactual recourse.
class LewisExplainer {
 public:
  /// `scm` must outlive the explainer; `f` is the (black-box) classifier
  /// over the SCM's node vector; outputs >= threshold count as positive.
  LewisExplainer(const LinearScm* scm, PredictFn f, double threshold = 0.5);

  /// Contrastive scores of the intervention do(X_j = hi) vs do(X_j = lo).
  struct Scores {
    /// P( Y_{do(X_j=lo)} = 0 | X_j "high", Y = 1 ) — would flipping the
    /// attribute down have changed a positive outcome?
    double necessity = 0.0;
    /// P( Y_{do(X_j=hi)} = 1 | X_j "low", Y = 0 ) — would flipping it up fix
    /// a negative outcome?
    double sufficiency = 0.0;
    /// P( Y_{do(hi)} = 1 and Y_{do(lo)} = 0 ) over the population.
    double nesuf = 0.0;
    /// How many rejection samples backed each conditional estimate.
    int necessity_support = 0;
    int sufficiency_support = 0;
  };

  /// Population-level scores by rejection sampling `samples` observational
  /// worlds from the SCM; "X_j high/low" means above/below the midpoint of
  /// hi and lo. Counterfactual outcomes use abduction of the sampled
  /// world's noise.
  Result<Scores> AttributeScores(int feature, double hi, double lo,
                                 int samples, Rng* rng) const;

  /// One recourse option for an individual.
  struct RecourseAction {
    std::map<int, double> interventions;
    double cost = 0.0;
    /// The counterfactual world resulting from the interventions.
    Vector counterfactual_world;
  };

  /// Individual counterfactual recourse: among interventions assembled from
  /// `candidate_values` (feature -> candidate values), finds those that flip
  /// the individual's outcome to positive, trying single features first,
  /// then pairs, up to `max_features`. Actions are returned sorted by cost
  /// (sum over intervened features of |new - old| / mad[j]).
  Result<std::vector<RecourseAction>> CounterfactualRecourse(
      const Vector& instance,
      const std::vector<std::pair<int, std::vector<double>>>& candidate_values,
      int max_features, const Vector& mad) const;

 private:
  bool Positive(const Vector& world) const;

  const LinearScm* scm_;
  PredictFn f_;
  double threshold_;
};

}  // namespace xai

#endif  // XAI_EXPLAIN_COUNTERFACTUAL_LEWIS_H_
