#include "xai/explain/counterfactual/dice.h"

#include <algorithm>
#include <cmath>

#include "xai/core/matrix.h"
#include "xai/core/telemetry.h"
#include "xai/core/trace.h"

namespace xai {
namespace {

// log det of the DPP kernel K_ij = 1 / (1 + dist(i, j)) over selected CFs.
double LogDetKernel(const std::vector<Counterfactual>& sel,
                    const CounterfactualEvaluator& eval) {
  int k = static_cast<int>(sel.size());
  if (k == 0) return 0.0;
  Matrix kmat(k, k);
  for (int a = 0; a < k; ++a) {
    for (int b = 0; b < k; ++b) {
      double dist = a == b ? 0.0 : eval.Proximity(sel[a].x, sel[b].x);
      kmat(a, b) = 1.0 / (1.0 + dist);
    }
    kmat(a, a) += 1e-6;
  }
  auto chol = CholeskyFactor(kmat);
  if (!chol.ok()) return -1e18;
  double logdet = 0.0;
  for (int i = 0; i < k; ++i) logdet += 2.0 * std::log(chol->operator()(i, i));
  return logdet;
}

}  // namespace

Result<DiceResult> DiceCounterfactuals(const PredictFn& f,
                                       const Vector& instance,
                                       int desired_class,
                                       const CounterfactualEvaluator& eval,
                                       const ActionabilitySpec& spec,
                                       const DiceConfig& config, Rng* rng) {
  XAI_SPAN("dice/search");
  int d = static_cast<int>(instance.size());
  if (eval.train().num_features() != d)
    return Status::InvalidArgument("instance width mismatch");

  const Dataset& train = eval.train();
  DiceResult result;
  auto predict = [&](const Vector& x) {
    ++result.model_calls;
    return f(x);
  };
  auto is_valid = [&](double p) {
    return desired_class == 1 ? p >= config.threshold : p < config.threshold;
  };

  std::vector<Counterfactual> pool;
  for (int restart = 0;
       restart < config.max_restarts &&
       static_cast<int>(pool.size()) < config.pool_size;
       ++restart) {
    Vector current = instance;
    for (int step = 0; step < config.max_steps_per_restart; ++step) {
      // Mutate one random feature toward the value of a random training row.
      int feature = rng->UniformInt(d);
      double target = train.At(rng->UniformInt(train.num_rows()), feature);
      if (!spec.Allows(feature, instance[feature], target)) continue;
      double old = current[feature];
      if (train.schema().features[feature].is_categorical()) {
        current[feature] = target;
      } else {
        // Move a random fraction of the way toward the sampled value.
        current[feature] = old + rng->Uniform(0.3, 1.0) * (target - old);
        if (!spec.Allows(feature, instance[feature], current[feature])) {
          current[feature] = old;
          continue;
        }
      }
      double p = predict(current);
      if (is_valid(p)) {
        // Sparsify: greedily revert changed features that are unnecessary.
        for (int j = 0; j < d; ++j) {
          if (current[j] == instance[j]) continue;
          double saved = current[j];
          current[j] = instance[j];
          if (!is_valid(predict(current))) current[j] = saved;
        }
        pool.push_back(eval.Evaluate(f, instance, current, desired_class,
                                     config.threshold));
        ++result.model_calls;
        break;
      }
    }
  }

  if (pool.empty()) {
    return result;  // No counterfactual found within the budget.
  }

  // Greedy diverse selection: maximize diversity_weight * logdet(K) -
  // proximity_weight * sum proximity.
  std::vector<bool> used(pool.size(), false);
  std::vector<Counterfactual> selected;
  int k = std::min<int>(config.k, static_cast<int>(pool.size()));
  for (int pick = 0; pick < k; ++pick) {
    int best = -1;
    double best_score = -1e18;
    for (size_t c = 0; c < pool.size(); ++c) {
      if (used[c]) continue;
      std::vector<Counterfactual> cand = selected;
      cand.push_back(pool[c]);
      double prox = 0.0;
      for (const auto& cf : cand) prox += cf.proximity;
      double score = config.diversity_weight * LogDetKernel(cand, eval) -
                     config.proximity_weight * prox;
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(c);
      }
    }
    if (best < 0) break;
    used[best] = true;
    selected.push_back(pool[best]);
  }
  result.diversity = eval.Diversity(selected);
  result.counterfactuals = std::move(selected);
  return result;
}

int64_t DicePlannedModelCalls(const DiceConfig& config) {
  int64_t steps = std::max(1, config.max_steps_per_restart);
  int64_t walk = static_cast<int64_t>(std::max(1, config.max_restarts)) *
                 steps;
  int64_t revert = static_cast<int64_t>(std::max(1, config.pool_size)) *
                   steps;
  return walk + revert;
}

DiceConfig DiceForBudget(DiceConfig config, int64_t max_calls) {
  const int k = std::max(1, config.k);
  while (DicePlannedModelCalls(config) > max_calls) {
    if (config.max_restarts > 4 * k) {
      config.max_restarts = std::max(4 * k, config.max_restarts / 2);
    } else if (config.pool_size > k) {
      config.pool_size = std::max(k, config.pool_size / 2);
    } else if (config.max_steps_per_restart > 10) {
      config.max_steps_per_restart =
          std::max(10, config.max_steps_per_restart / 2);
    } else {
      break;  // Floors reached; serve the cheapest search we have.
    }
  }
  return config;
}

}  // namespace xai
