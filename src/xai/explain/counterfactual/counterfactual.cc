#include "xai/explain/counterfactual/counterfactual.h"

#include <cmath>
#include <limits>

#include "xai/core/check.h"
#include "xai/core/stats.h"
#include "xai/explain/explanation.h"

namespace xai {

ActionabilitySpec ActionabilitySpec::AllFree(const Dataset& train) {
  ActionabilitySpec spec;
  int d = train.num_features();
  spec.immutable.assign(d, false);
  spec.ranges = train.FeatureRanges();
  spec.monotonicity.assign(d, 0);
  return spec;
}

bool ActionabilitySpec::Allows(int feature, double from, double to) const {
  if (from == to) return true;
  if (feature < static_cast<int>(immutable.size()) && immutable[feature])
    return false;
  if (feature < static_cast<int>(ranges.size()) &&
      (to < ranges[feature].first || to > ranges[feature].second))
    return false;
  if (feature < static_cast<int>(monotonicity.size())) {
    int m = monotonicity[feature];
    if (m > 0 && to < from) return false;
    if (m < 0 && to > from) return false;
  }
  return true;
}

CounterfactualEvaluator::CounterfactualEvaluator(const Dataset& train)
    : train_(&train), mad_(MedianAbsoluteDeviation(train.x())) {
  int d = train.num_features();
  stddevs_.resize(d, 1.0);
  categorical_.resize(d);
  for (int j = 0; j < d; ++j) {
    categorical_[j] = train.schema().features[j].is_categorical();
    std::vector<double> col = train.x().Col(j);
    double sd = StdDev(col);
    stddevs_[j] = sd > 1e-9 ? sd : 1.0;
  }
}

double CounterfactualEvaluator::Proximity(const Vector& a,
                                          const Vector& b) const {
  XAI_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t j = 0; j < a.size(); ++j) {
    if (categorical_[j]) {
      acc += static_cast<int>(a[j]) == static_cast<int>(b[j]) ? 0.0 : 1.0;
    } else {
      acc += std::fabs(a[j] - b[j]) / mad_[j];
    }
  }
  return acc;
}

int CounterfactualEvaluator::Sparsity(const Vector& a, const Vector& b) const {
  int count = 0;
  for (size_t j = 0; j < a.size(); ++j) {
    if (categorical_[j]) {
      count += static_cast<int>(a[j]) != static_cast<int>(b[j]);
    } else {
      count += std::fabs(a[j] - b[j]) > 1e-9;
    }
  }
  return count;
}

double CounterfactualEvaluator::PlausibilityDistance(const Vector& x) const {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < train_->num_rows(); ++i) {
    double acc = 0.0;
    for (int j = 0; j < train_->num_features(); ++j) {
      double dj;
      if (categorical_[j]) {
        dj = static_cast<int>(x[j]) ==
                     static_cast<int>(train_->At(i, j))
                 ? 0.0
                 : 1.0;
      } else {
        dj = (x[j] - train_->At(i, j)) / stddevs_[j];
      }
      acc += dj * dj;
      if (acc >= best) break;
    }
    best = std::min(best, acc);
  }
  return std::sqrt(best);
}

double CounterfactualEvaluator::Diversity(
    const std::vector<Counterfactual>& cfs) const {
  if (cfs.size() < 2) return 0.0;
  double acc = 0.0;
  int pairs = 0;
  for (size_t a = 0; a < cfs.size(); ++a) {
    for (size_t b = a + 1; b < cfs.size(); ++b) {
      acc += Proximity(cfs[a].x, cfs[b].x);
      ++pairs;
    }
  }
  return acc / pairs;
}

Counterfactual CounterfactualEvaluator::Evaluate(const PredictFn& f,
                                                 const Vector& original,
                                                 Vector candidate,
                                                 int desired_class,
                                                 double threshold) const {
  Counterfactual cf;
  cf.prediction = f(candidate);
  cf.valid = desired_class == 1 ? cf.prediction >= threshold
                                : cf.prediction < threshold;
  cf.proximity = Proximity(original, candidate);
  cf.sparsity = Sparsity(original, candidate);
  cf.plausibility_distance = PlausibilityDistance(candidate);
  cf.x = std::move(candidate);
  return cf;
}

}  // namespace xai
