#include "xai/explain/counterfactual/geco.h"

#include <algorithm>
#include <cmath>

#include "xai/core/telemetry.h"
#include "xai/core/trace.h"

namespace xai {
namespace {

struct Candidate {
  Vector x;
  double prediction = 0.0;
  bool valid = false;
  int changes = 0;
  double proximity = 0.0;

  /// Lexicographic fitness: valid first, then fewer changes, then closer.
  bool BetterThan(const Candidate& other) const {
    if (valid != other.valid) return valid;
    if (!valid) {
      // Both invalid: closer to the decision boundary wins.
      return prediction > other.prediction;
    }
    if (changes != other.changes) return changes < other.changes;
    return proximity < other.proximity;
  }
};

}  // namespace

Result<GecoResult> GecoCounterfactual(
    const PredictFn& f, const Vector& instance, int desired_class,
    const CounterfactualEvaluator& eval, const ActionabilitySpec& spec,
    const std::vector<PlafConstraint>& plaf, const GecoConfig& config) {
  XAI_SPAN("geco/search");
  int d = static_cast<int>(instance.size());
  const Dataset& train = eval.train();
  if (train.num_features() != d)
    return Status::InvalidArgument("instance width mismatch");
  Rng rng(config.seed);
  GecoResult result;

  // Signed view of the prediction so "higher is better" regardless of the
  // desired class.
  auto signed_pred = [&](double p) {
    return desired_class == 1 ? p : 1.0 - p;
  };
  double signed_threshold =
      desired_class == 1 ? config.threshold : 1.0 - config.threshold;

  auto satisfies = [&](const Vector& x) {
    for (int j = 0; j < d; ++j)
      if (!spec.Allows(j, instance[j], x[j])) return false;
    for (const auto& c : plaf)
      if (!c(instance, x)) return false;
    return true;
  };

  auto make_candidate = [&](Vector x) {
    Candidate c;
    ++result.model_calls;
    c.prediction = signed_pred(f(x));
    c.valid = c.prediction >= signed_threshold;
    c.changes = eval.Sparsity(instance, x);
    c.proximity = eval.Proximity(instance, x);
    c.x = std::move(x);
    return c;
  };

  // Candidate values per feature come from the training data (plausibility:
  // every proposed value has been observed in the wild).
  auto sample_value = [&](int feature) {
    return train.At(rng.UniformInt(train.num_rows()), feature);
  };

  // Initial population: single-feature changes, the "fewest changes first"
  // exploration order.
  std::vector<Candidate> population;
  for (int tries = 0;
       tries < config.population * 4 &&
       static_cast<int>(population.size()) < config.population;
       ++tries) {
    Vector x = instance;
    int feature = rng.UniformInt(d);
    x[feature] = sample_value(feature);
    if (!satisfies(x)) continue;
    population.push_back(make_candidate(std::move(x)));
  }
  if (population.empty())
    return Status::InvalidArgument(
        "no feasible single-feature candidate; constraints too tight");

  auto by_fitness = [](const Candidate& a, const Candidate& b) {
    return a.BetterThan(b);
  };

  Candidate best = population[0];
  for (const Candidate& c : population)
    if (c.BetterThan(best)) best = c;

  int stable = 0;
  for (int gen = 0; gen < config.max_generations; ++gen) {
    result.generations = gen + 1;
    std::sort(population.begin(), population.end(), by_fitness);
    if (static_cast<int>(population.size()) > config.elite)
      population.resize(config.elite);

    std::vector<Candidate> next = population;
    while (static_cast<int>(next.size()) < config.population) {
      const Candidate& parent =
          population[rng.UniformInt(static_cast<int>(population.size()))];
      Vector child = parent.x;
      bool changed = false;
      if (rng.Bernoulli(config.crossover_rate) && population.size() > 1) {
        const Candidate& other =
            population[rng.UniformInt(static_cast<int>(population.size()))];
        // Crossover: adopt the other parent's change on one feature.
        for (int j = 0; j < d; ++j) {
          if (other.x[j] != instance[j] && rng.Bernoulli(0.5)) {
            child[j] = other.x[j];
            changed = true;
          }
        }
      }
      if (rng.Bernoulli(config.mutation_rate) || !changed) {
        int feature = rng.UniformInt(d);
        child[feature] = sample_value(feature);
        changed = true;
      }
      if (!satisfies(child)) continue;
      next.push_back(make_candidate(std::move(child)));
    }
    population = std::move(next);

    Candidate gen_best = population[0];
    for (const Candidate& c : population)
      if (c.BetterThan(gen_best)) gen_best = c;
    if (gen_best.BetterThan(best)) {
      best = gen_best;
      stable = 0;
    } else if (best.valid) {
      if (++stable >= config.patience) break;  // Real-time early exit.
    }
  }

  if (best.valid) {
    result.found = true;
    result.best = eval.Evaluate(f, instance, best.x, desired_class,
                                config.threshold);
    // Collect distinct valid runners-up.
    std::sort(population.begin(), population.end(), by_fitness);
    for (const Candidate& c : population) {
      if (!c.valid || c.x == best.x) continue;
      result.runners_up.push_back(eval.Evaluate(f, instance, c.x,
                                                desired_class,
                                                config.threshold));
      if (result.runners_up.size() >= 4) break;
    }
  }
  XAI_COUNTER_ADD("model/evals", result.model_calls);
  return result;
}

}  // namespace xai
