#include "xai/explain/counterfactual/recourse.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace xai {

std::string Flipset::ToString(const Schema& schema) const {
  std::ostringstream os;
  if (!feasible) return "infeasible (no action set found)\n";
  char buf[160];
  for (const RecourseItem& item : items) {
    std::snprintf(buf, sizeof(buf), "  %-20s %.4g -> %.4g (cost %.3f)\n",
                  schema.features[item.feature].name.c_str(), item.from,
                  item.to, item.cost);
    os << buf;
  }
  std::snprintf(buf, sizeof(buf), "  total cost %.3f, new score %.4f\n",
                total_cost, new_score);
  os << buf;
  return os.str();
}

namespace {

// Candidate moves of one feature: grid between the current value and the
// boundary allowed by the spec, in the direction that increases the score.
std::vector<double> CandidateValues(const LogisticRegressionModel& model,
                                    const Vector& instance, int feature,
                                    const ActionabilitySpec& spec,
                                    int grid_steps) {
  std::vector<double> values;
  double w = model.weights()[feature];
  if (w == 0.0) return values;
  if (feature < static_cast<int>(spec.immutable.size()) &&
      spec.immutable[feature])
    return values;
  double cur = instance[feature];
  double lo = feature < static_cast<int>(spec.ranges.size())
                  ? spec.ranges[feature].first
                  : cur - 1.0;
  double hi = feature < static_cast<int>(spec.ranges.size())
                  ? spec.ranges[feature].second
                  : cur + 1.0;
  // Direction that pushes the score up.
  double target = w > 0.0 ? hi : lo;
  for (int s = 1; s <= grid_steps; ++s) {
    double v = cur + (target - cur) * s / grid_steps;
    if (spec.Allows(feature, cur, v) && v != cur) values.push_back(v);
  }
  return values;
}

}  // namespace

Result<Flipset> LinearRecourse(const LogisticRegressionModel& model,
                               const Vector& instance,
                               const ActionabilitySpec& spec,
                               const Vector& mad,
                               const RecourseConfig& config) {
  int d = static_cast<int>(instance.size());
  if (static_cast<int>(model.weights().size()) != d)
    return Status::InvalidArgument("model/instance width mismatch");
  if (config.max_features < 1 || config.max_features > 3)
    return Status::InvalidArgument("max_features must be in [1, 3]");

  double base_margin = model.Margin(instance);
  if (base_margin >= config.target_margin) {
    Flipset trivial;
    trivial.feasible = true;
    trivial.new_score = model.Predict(instance);
    return trivial;  // Already positive: empty flipset.
  }

  std::vector<std::vector<double>> candidates(d);
  for (int j = 0; j < d; ++j)
    candidates[j] =
        CandidateValues(model, instance, j, spec, config.grid_steps);

  auto cost_of = [&](int j, double to) {
    double scale = j < static_cast<int>(mad.size()) && mad[j] > 1e-12
                       ? mad[j]
                       : 1.0;
    return std::fabs(to - instance[j]) / scale;
  };
  auto margin_gain = [&](int j, double to) {
    return model.weights()[j] * (to - instance[j]);
  };

  Flipset best;
  double best_cost = 1e300;
  auto consider = [&](const std::vector<std::pair<int, double>>& actions) {
    double margin = base_margin;
    double cost = 0.0;
    for (const auto& [j, v] : actions) {
      margin += margin_gain(j, v);
      cost += cost_of(j, v);
    }
    if (margin < config.target_margin || cost >= best_cost) return;
    best_cost = cost;
    best.items.clear();
    Vector moved = instance;
    for (const auto& [j, v] : actions) {
      best.items.push_back({j, instance[j], v, cost_of(j, v)});
      moved[j] = v;
    }
    best.total_cost = cost;
    best.new_score = model.Predict(moved);
    best.feasible = true;
  };

  // Single-feature actions.
  for (int j = 0; j < d; ++j)
    for (double v : candidates[j]) consider({{j, v}});
  // Pairs.
  if (config.max_features >= 2) {
    for (int a = 0; a < d; ++a)
      for (int b = a + 1; b < d; ++b)
        for (double va : candidates[a])
          for (double vb : candidates[b]) consider({{a, va}, {b, vb}});
  }
  // Triples.
  if (config.max_features >= 3) {
    for (int a = 0; a < d; ++a)
      for (int b = a + 1; b < d; ++b)
        for (int c = b + 1; c < d; ++c)
          for (double va : candidates[a])
            for (double vb : candidates[b])
              for (double vc : candidates[c])
                consider({{a, va}, {b, vb}, {c, vc}});
  }
  return best;
}

}  // namespace xai
