#ifndef XAI_EXPLAIN_SURROGATE_TREE_H_
#define XAI_EXPLAIN_SURROGATE_TREE_H_

#include <string>
#include <vector>

#include "xai/core/status.h"
#include "xai/data/dataset.h"
#include "xai/explain/perturbation.h"
#include "xai/model/decision_tree.h"
#include "xai/model/model.h"

namespace xai {

/// \brief Local rule-surrogate explanations (§2.1.1: "a simple surrogate
/// model ... such as linear regression model [LIME] or decision rules"):
/// fit a shallow decision tree on the perturbation neighborhood of the
/// instance and read off the root-to-leaf decision path as the explanation.
struct SurrogateTreeConfig {
  int num_samples = 1500;
  int max_depth = 3;
  int min_samples_leaf = 10;
  Perturber::Strategy strategy = Perturber::Strategy::kGaussian;
};

struct SurrogateTreeExplanation {
  /// The decision path as human-readable predicates
  /// ("credit_score <= 644.2", ...).
  std::vector<std::string> path;
  /// Surrogate output at the instance's leaf.
  double surrogate_prediction = 0.0;
  /// Black-box output at the instance.
  double prediction = 0.0;
  /// Agreement between surrogate and black box on the neighborhood
  /// (R^2 of surrogate outputs vs black-box outputs).
  double fidelity = 0.0;
  /// The fitted surrogate itself (inspectable/queriable).
  DecisionTreeModel surrogate;

  std::string ToString() const;
};

/// \brief Fits the neighborhood surrogate tree and extracts the instance's
/// decision path.
class SurrogateTreeExplainer {
 public:
  SurrogateTreeExplainer(const Dataset& train,
                         const SurrogateTreeConfig& config = {});

  Result<SurrogateTreeExplanation> Explain(const PredictFn& f,
                                           const Vector& instance,
                                           uint64_t seed) const;

 private:
  SurrogateTreeConfig config_;
  Schema schema_;
  Perturber perturber_;
};

}  // namespace xai

#endif  // XAI_EXPLAIN_SURROGATE_TREE_H_
