#ifndef XAI_EXPLAIN_PARTIAL_DEPENDENCE_H_
#define XAI_EXPLAIN_PARTIAL_DEPENDENCE_H_

#include <string>
#include <vector>

#include "xai/core/matrix.h"
#include "xai/core/status.h"
#include "xai/data/dataset.h"
#include "xai/model/model.h"

namespace xai {

/// \brief Partial-dependence and ICE curves (§2: methods that "provide a
/// comprehensive summary of features"): the classic global view of how one
/// feature moves the model output, marginalized over the data.
struct PartialDependence {
  /// Grid of values of the probed feature.
  Vector grid;
  /// PD curve: mean model output with the feature forced to grid[k].
  Vector mean;
  /// ICE curves: per-row outputs (rows x grid), for heterogeneity checks.
  Matrix ice;

  /// Standard deviation of the ICE curves at each grid point — large values
  /// flag interactions that the averaged PD curve hides.
  Vector IceStdDev() const;

  std::string ToString(const std::string& feature_name) const;
};

struct PartialDependenceConfig {
  /// Grid points; numeric features use equally spaced quantiles,
  /// categorical features enumerate their categories.
  int grid_points = 10;
  /// Rows sampled from the dataset (0 = all).
  int max_rows = 200;
};

/// Computes PD + ICE of `feature` for a black-box model over `data`.
Result<PartialDependence> ComputePartialDependence(
    const PredictFn& f, const Dataset& data, int feature,
    const PartialDependenceConfig& config = {});

}  // namespace xai

#endif  // XAI_EXPLAIN_PARTIAL_DEPENDENCE_H_
