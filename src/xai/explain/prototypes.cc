#include "xai/explain/prototypes.h"

#include <algorithm>
#include <cmath>

#include "xai/core/simd.h"
#include "xai/core/stats.h"

namespace xai {

double RbfKernel(const Vector& a, const Vector& b, double bandwidth) {
  double acc = simd::ScaledSquaredDistance(a.data(), b.data(), a.size());
  return std::exp(-acc / (2.0 * bandwidth * bandwidth));
}

double MedianHeuristicBandwidth(const Dataset& data, int max_rows) {
  int n = std::min(max_rows, data.num_rows());
  std::vector<Vector> rows(n);
  for (int i = 0; i < n; ++i) rows[i] = data.Row(i);
  std::vector<double> dists;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double acc = simd::ScaledSquaredDistance(
          rows[i].data(), rows[j].data(), rows[i].size());
      dists.push_back(std::sqrt(acc));
    }
  }
  if (dists.empty()) return 1.0;
  double med = Median(std::move(dists));
  return med > 1e-9 ? med : 1.0;
}

Result<PrototypeResult> SelectPrototypes(const Dataset& data,
                                         const PrototypeConfig& config) {
  int n = data.num_rows();
  if (n == 0) return Status::InvalidArgument("empty dataset");
  if (config.num_prototypes < 1 || config.num_prototypes > n)
    return Status::InvalidArgument("bad num_prototypes");
  double bw = config.bandwidth > 0.0 ? config.bandwidth
                                     : MedianHeuristicBandwidth(data);

  // Precompute rows and the mean kernel value of each point to the data:
  // colmean[i] = (1/n) sum_j k(x_i, x_j).
  std::vector<Vector> rows(n);
  for (int i = 0; i < n; ++i) rows[i] = data.Row(i);
  Vector colmean(n, 0.0);
  // Symmetric accumulation (k(i,i) = 1).
  std::vector<std::vector<double>> kernel(n);
  for (int i = 0; i < n; ++i) kernel[i].assign(n, 0.0);
  for (int i = 0; i < n; ++i) {
    kernel[i][i] = 1.0;
    for (int j = i + 1; j < n; ++j) {
      double k = RbfKernel(rows[i], rows[j], bw);
      kernel[i][j] = kernel[j][i] = k;
    }
  }
  for (int i = 0; i < n; ++i) {
    double acc = 0.0;
    for (int j = 0; j < n; ++j) acc += kernel[i][j];
    colmean[i] = acc / n;
  }

  // Greedy MMD^2 minimization: with prototype set S,
  //   MMD^2(S) = const - (2/(n|S|)) sum_{i in S} sum_j k_ij
  //              + (1/|S|^2) sum_{i,i' in S} k_ii'.
  PrototypeResult result;
  std::vector<bool> chosen(n, false);
  Vector proto_ksum(n, 0.0);  // sum_{p in S} k(i, p) for every i.
  double ss_sum = 0.0;        // sum over pairs within S (incl. diagonal).
  double data_const = 0.0;
  for (int i = 0; i < n; ++i) data_const += colmean[i] / n;

  for (int pick = 0; pick < config.num_prototypes; ++pick) {
    int best = -1;
    double best_mmd = 1e300;
    int m = pick + 1;
    for (int c = 0; c < n; ++c) {
      if (chosen[c]) continue;
      double new_ss = ss_sum + 2.0 * proto_ksum[c] + 1.0;
      double cross = 0.0;
      // sum_{p in S+c} colmean[p] (2/m averaged below).
      // Track incrementally: store running sum of colmeans of S.
      cross = colmean[c];
      for (int p : result.prototypes) cross += colmean[p];
      double mmd = data_const - 2.0 * cross / m + new_ss / (m * m);
      if (mmd < best_mmd) {
        best_mmd = mmd;
        best = c;
      }
    }
    chosen[best] = true;
    ss_sum += 2.0 * proto_ksum[best] + 1.0;
    for (int i = 0; i < n; ++i) proto_ksum[i] += kernel[i][best];
    result.prototypes.push_back(best);
    result.mmd_trace.push_back(best_mmd);
  }

  // Criticisms: largest |witness| where
  //   witness(x) = (1/n) sum_j k(x, x_j) - (1/|S|) sum_{p in S} k(x, p).
  int m = static_cast<int>(result.prototypes.size());
  std::vector<double> witness(n);
  for (int i = 0; i < n; ++i)
    witness[i] = std::fabs(colmean[i] - proto_ksum[i] / m);
  std::vector<int> order = ArgSortDescending(witness);
  for (int i : order) {
    if (chosen[i]) continue;
    result.criticisms.push_back(i);
    if (static_cast<int>(result.criticisms.size()) >=
        config.num_criticisms)
      break;
  }
  return result;
}

}  // namespace xai
