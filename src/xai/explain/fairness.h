#ifndef XAI_EXPLAIN_FAIRNESS_H_
#define XAI_EXPLAIN_FAIRNESS_H_

#include <string>

#include "xai/core/matrix.h"
#include "xai/core/rng.h"
#include "xai/core/status.h"
#include "xai/data/dataset.h"
#include "xai/model/model.h"

namespace xai {

/// \brief Group-fairness metrics and disparity attribution. The paper's
/// motivation (3): XAI should "facilitat(e) the identification of sources of
/// harms such as bias and discrimination"; QII (Datta et al., §2.1.2)
/// defines exactly this "group disparity" quantity of interest.

/// Group outcome statistics for a binary protected feature.
struct GroupFairnessReport {
  /// Mean model output (e.g. P(positive)) per group value 0 / 1.
  double mean_outcome_group0 = 0.0;
  double mean_outcome_group1 = 0.0;
  /// Demographic-parity difference: |mean1 - mean0|.
  double demographic_parity_gap = 0.0;
  /// True-positive-rate difference (equal opportunity): needs labels.
  double equal_opportunity_gap = 0.0;
  int count_group0 = 0;
  int count_group1 = 0;

  std::string ToString() const;
};

/// Evaluates group fairness of a model over a dataset; `group_feature` must
/// be a binary (0/1-coded) feature.
Result<GroupFairnessReport> EvaluateGroupFairness(const PredictFn& f,
                                                  const Dataset& data,
                                                  int group_feature);

/// \brief Disparity QII (Datta et al.'s "group disparity" quantity of
/// interest): the influence of each feature on the demographic-parity gap,
/// measured as
///   iota_j = gap(original) - E[ gap when feature j is randomized ].
/// A large positive value means feature j *carries* the disparity (directly
/// or as a proxy); near-zero means the gap survives without it.
Result<Vector> DisparityQii(const PredictFn& f, const Dataset& data,
                            int group_feature, int repeats, Rng* rng);

}  // namespace xai

#endif  // XAI_EXPLAIN_FAIRNESS_H_
