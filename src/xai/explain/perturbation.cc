#include "xai/explain/perturbation.h"

#include <algorithm>
#include <cmath>

#include "xai/core/check.h"
#include "xai/core/stats.h"

namespace xai {

Perturber::Perturber(const Dataset& train, Strategy strategy,
                     int discretizer_bins)
    : strategy_(strategy),
      schema_(train.schema()),
      discretizer_(QuantileDiscretizer::Fit(train, discretizer_bins)) {
  int d = train.num_features();
  means_.resize(d, 0.0);
  stddevs_.resize(d, 1.0);
  category_freq_.resize(d);
  bin_freq_.resize(d);
  for (int j = 0; j < d; ++j) {
    std::vector<double> col = train.x().Col(j);
    const FeatureSpec& spec = schema_.features[j];
    if (spec.is_categorical()) {
      category_freq_[j].assign(std::max(1, spec.num_categories()), 0.0);
      for (double v : col) {
        int c = static_cast<int>(v);
        if (c >= 0 && c < static_cast<int>(category_freq_[j].size()))
          category_freq_[j][c] += 1.0;
      }
    } else {
      means_[j] = Mean(col);
      double sd = StdDev(col);
      stddevs_[j] = sd > 1e-9 ? sd : 1.0;
    }
    bin_freq_[j].assign(discretizer_.NumBins(j), 0.0);
    for (double v : col) bin_freq_[j][discretizer_.BinOf(j, v)] += 1.0;
  }
}

Matrix Perturber::Sample(const Vector& instance, int n, Rng* rng,
                         const std::vector<int>& frozen) const {
  int d = static_cast<int>(instance.size());
  XAI_CHECK_EQ(d, schema_.num_features());
  std::vector<bool> is_frozen(d, false);
  for (int f : frozen) is_frozen[f] = true;

  Matrix out(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) {
      if (is_frozen[j]) {
        out(i, j) = instance[j];
        continue;
      }
      const FeatureSpec& spec = schema_.features[j];
      if (strategy_ == Strategy::kDiscretized) {
        int bin = rng->Categorical(bin_freq_[j]);
        out(i, j) = spec.is_categorical()
                        ? bin
                        : discretizer_.SampleFromBin(j, bin, rng);
      } else {
        out(i, j) = spec.is_categorical()
                        ? rng->Categorical(category_freq_[j])
                        : instance[j] + stddevs_[j] * rng->Normal();
      }
    }
  }
  return out;
}

std::vector<int> Perturber::Interpretable(const Vector& instance,
                                          const Vector& sample) const {
  int d = static_cast<int>(instance.size());
  std::vector<int> z(d);
  for (int j = 0; j < d; ++j) {
    const FeatureSpec& spec = schema_.features[j];
    if (spec.is_categorical()) {
      z[j] = static_cast<int>(instance[j]) == static_cast<int>(sample[j]);
    } else if (strategy_ == Strategy::kDiscretized) {
      z[j] = discretizer_.BinOf(j, instance[j]) ==
             discretizer_.BinOf(j, sample[j]);
    } else {
      z[j] = std::fabs(instance[j] - sample[j]) <= stddevs_[j];
    }
  }
  return z;
}

double Perturber::Distance(const Vector& a, const Vector& b) const {
  double acc = 0.0;
  for (size_t j = 0; j < a.size(); ++j) {
    const FeatureSpec& spec = schema_.features[j];
    double dj;
    if (spec.is_categorical()) {
      dj = static_cast<int>(a[j]) == static_cast<int>(b[j]) ? 0.0 : 1.0;
    } else {
      dj = (a[j] - b[j]) / stddevs_[j];
    }
    acc += dj * dj;
  }
  return std::sqrt(acc);
}

}  // namespace xai
