#include "xai/explain/partial_dependence.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "xai/core/stats.h"

namespace xai {

Vector PartialDependence::IceStdDev() const {
  Vector out(grid.size(), 0.0);
  for (size_t k = 0; k < grid.size(); ++k) {
    std::vector<double> col = ice.Col(static_cast<int>(k));
    out[k] = StdDev(col);
  }
  return out;
}

std::string PartialDependence::ToString(
    const std::string& feature_name) const {
  std::ostringstream os;
  os << "partial dependence of " << feature_name << ":\n";
  Vector sd = IceStdDev();
  for (size_t k = 0; k < grid.size(); ++k) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  %10.4g -> %8.4f (ice sd %.4f)\n",
                  grid[k], mean[k], sd[k]);
    os << buf;
  }
  return os.str();
}

Result<PartialDependence> ComputePartialDependence(
    const PredictFn& f, const Dataset& data, int feature,
    const PartialDependenceConfig& config) {
  if (feature < 0 || feature >= data.num_features())
    return Status::OutOfRange("feature out of range");
  if (data.num_rows() == 0) return Status::InvalidArgument("empty dataset");
  if (config.grid_points < 2)
    return Status::InvalidArgument("need at least 2 grid points");

  const FeatureSpec& spec = data.schema().features[feature];
  PartialDependence pd;
  if (spec.is_categorical()) {
    for (int c = 0; c < spec.num_categories(); ++c)
      pd.grid.push_back(static_cast<double>(c));
  } else {
    std::vector<double> col = data.x().Col(feature);
    for (int k = 0; k < config.grid_points; ++k) {
      double q = static_cast<double>(k) / (config.grid_points - 1);
      pd.grid.push_back(Quantile(col, q));
    }
    pd.grid.erase(std::unique(pd.grid.begin(), pd.grid.end()),
                  pd.grid.end());
  }

  int rows = config.max_rows > 0
                 ? std::min(config.max_rows, data.num_rows())
                 : data.num_rows();
  int g = static_cast<int>(pd.grid.size());
  pd.ice = Matrix(rows, g);
  pd.mean.assign(g, 0.0);
  Vector row;
  for (int i = 0; i < rows; ++i) {
    row = data.Row(i);
    for (int k = 0; k < g; ++k) {
      row[feature] = pd.grid[k];
      double v = f(row);
      pd.ice(i, k) = v;
      pd.mean[k] += v / rows;
    }
  }
  return pd;
}

}  // namespace xai
