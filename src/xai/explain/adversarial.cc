#include "xai/explain/adversarial.h"

namespace xai {

Result<AdversarialModel> AdversarialModel::Make(
    const Dataset& train, const Perturber& perturber, PredictFn biased,
    PredictFn innocuous, const AdversarialConfig& config) {
  if (train.num_rows() == 0)
    return Status::InvalidArgument("empty training data");
  Rng rng(config.seed);

  // Detector training set: real rows labelled 1, perturbations labelled 0.
  int n = train.num_rows();
  int n_pert = n * config.perturbations_per_row;
  Matrix x(n + n_pert, train.num_features());
  Vector y(n + n_pert);
  for (int i = 0; i < n; ++i) {
    x.SetRow(i, train.Row(i));
    y[i] = 1.0;
  }
  int row = n;
  for (int i = 0; i < n; ++i) {
    Matrix pert = perturber.Sample(train.Row(i),
                                   config.perturbations_per_row, &rng);
    for (int p = 0; p < pert.rows(); ++p) {
      x.SetRow(row, pert.Row(p));
      y[row] = 0.0;
      ++row;
    }
  }

  RandomForestModel::Config forest;
  forest.n_trees = config.ood_trees;
  forest.max_depth = 10;
  forest.seed = config.seed + 1;
  XAI_ASSIGN_OR_RETURN(
      RandomForestModel detector,
      RandomForestModel::Train(x, y, TaskType::kClassification, forest));

  AdversarialModel model;
  model.biased_ = std::move(biased);
  model.innocuous_ = std::move(innocuous);
  model.detector_ = std::make_shared<RandomForestModel>(std::move(detector));
  model.real_threshold_ = config.real_threshold;
  return model;
}

double AdversarialModel::Predict(const Vector& row) const {
  return RealScore(row) >= real_threshold_ ? biased_(row) : innocuous_(row);
}

double AdversarialModel::RealScore(const Vector& row) const {
  return detector_->Predict(row);
}

double AdversarialModel::DetectorAccuracy(const Dataset& holdout,
                                          const Perturber& perturber,
                                          uint64_t seed) const {
  Rng rng(seed);
  int correct = 0, total = 0;
  for (int i = 0; i < holdout.num_rows(); ++i) {
    if (RealScore(holdout.Row(i)) >= real_threshold_) ++correct;
    ++total;
    Matrix pert = perturber.Sample(holdout.Row(i), 1, &rng);
    if (RealScore(pert.Row(0)) < real_threshold_) ++correct;
    ++total;
  }
  return total > 0 ? static_cast<double>(correct) / total : 0.0;
}

}  // namespace xai
