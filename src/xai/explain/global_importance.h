#ifndef XAI_EXPLAIN_GLOBAL_IMPORTANCE_H_
#define XAI_EXPLAIN_GLOBAL_IMPORTANCE_H_

#include <functional>
#include <string>
#include <vector>

#include "xai/core/rng.h"
#include "xai/core/status.h"
#include "xai/data/dataset.h"
#include "xai/model/model.h"
#include "xai/model/tree_ensemble_view.h"

namespace xai {

/// \brief Global feature-importance measures (§2.1.2: TreeSHAP "suggests
/// ways to combine local explanations to get a global understanding of the
/// model").

/// Mean |SHAP value| per feature over (up to `max_rows` of) a dataset,
/// computed with TreeSHAP — the SHAP summary-bar aggregation.
Vector GlobalShapImportance(const TreeEnsembleView& view, const Dataset& data,
                            int max_rows = 200);

/// Cover-weighted split-frequency importance: how much training mass flows
/// through splits on each feature, summed over the ensemble. The classic
/// cheap structural importance TreeSHAP's global view improves on.
Vector SplitFrequencyImportance(const TreeEnsembleView& view,
                                int num_features);

/// Permutation importance (Breiman): the drop in `metric` (higher = better,
/// e.g. accuracy or AUC) when feature j's column is shuffled. Model
/// agnostic; `repeats` shuffles are averaged.
Result<Vector> PermutationImportance(
    const PredictFn& f, const Dataset& data,
    const std::function<double(const Vector& scores, const Vector& labels)>&
        metric,
    int repeats, Rng* rng);

/// Renders an importance vector as a sorted human-readable table.
std::string ImportanceToString(const Vector& importance,
                               const Schema& schema);

}  // namespace xai

#endif  // XAI_EXPLAIN_GLOBAL_IMPORTANCE_H_
