#include "xai/explain/lime.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "xai/core/linalg.h"
#include "xai/core/parallel.h"
#include "xai/core/simd.h"
#include "xai/core/stats.h"
#include "xai/core/telemetry.h"
#include "xai/core/trace.h"

namespace xai {

LimeExplainer::LimeExplainer(const Dataset& train, const LimeConfig& config)
    : config_(config),
      schema_(train.schema()),
      perturber_(train, config.strategy, config.discretizer_bins) {}

namespace {

// Weighted R^2 of predictions vs targets.
double WeightedR2(const Vector& pred, const Vector& target, const Vector& w) {
  double wsum = 0.0, mean = 0.0;
  for (size_t i = 0; i < target.size(); ++i) {
    wsum += w[i];
    mean += w[i] * target[i];
  }
  if (wsum <= 0.0) return 0.0;
  mean /= wsum;
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < target.size(); ++i) {
    ss_res += w[i] * (target[i] - pred[i]) * (target[i] - pred[i]);
    ss_tot += w[i] * (target[i] - mean) * (target[i] - mean);
  }
  if (ss_tot <= 1e-12) return 1.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace

Result<LimeExplanation> LimeExplainer::Explain(const PredictFn& f,
                                               const Vector& instance,
                                               uint64_t seed) const {
  XAI_SPAN("lime/explain");
  int d = static_cast<int>(instance.size());
  if (d != schema_.num_features())
    return Status::InvalidArgument("instance width does not match schema");
  Rng rng(seed);
  int n = config_.num_samples;

  // Interpretable representation of one neighborhood sample; row 0 of the
  // design is the instance itself, as in the reference implementation. In
  // discretized mode the representation is binary same-bin indicators; in
  // Gaussian mode numeric features enter as standardized raw values (the
  // reference discretize_continuous=False behavior) and categoricals as
  // match indicators.
  bool discretized = config_.strategy == Perturber::Strategy::kDiscretized;
  double width = config_.kernel_width > 0.0
                     ? config_.kernel_width
                     : 0.75 * std::sqrt(static_cast<double>(d));
  auto fill_row = [&](const Vector& sample, double* zr) {
    if (discretized) {
      std::vector<int> zi = perturber_.Interpretable(instance, sample);
      for (int j = 0; j < d; ++j) zr[j] = zi[j];
    } else {
      for (int j = 0; j < d; ++j) {
        if (schema_.features[j].is_categorical()) {
          zr[j] = static_cast<int>(sample[j]) == static_cast<int>(instance[j])
                      ? 1.0
                      : 0.0;
        } else {
          zr[j] =
              (sample[j] - perturber_.means()[j]) / perturber_.stddevs()[j];
        }
      }
    }
  };

  const bool forward_selection = config_.top_k > 0 && config_.top_k < d;
  if (config_.fused && !forward_selection) {
    // Fused pipeline: sample→predict→weight→accumulate per row block, so
    // the (n+1) x d design is never materialized and WLS assembly streams
    // through cache. Block-wise Sample calls reproduce the one-shot RNG
    // stream exactly (Sample consumes the shared Rng strictly row-major),
    // model evaluations fan out within each block, and blocks fold into
    // the accumulator serially in ascending row order — so attributions
    // and intercept match the materialized path bit-for-bit on the default
    // SIMD tiers.
    WlsAccumulator acc(d + 1, /*fit_intercept=*/true);
    constexpr int kBlockRows = 1024;
    std::vector<double> zblock(static_cast<size_t>(kBlockRows) * (d + 1));
    Vector target(kBlockRows);
    Vector weight(kBlockRows);
    double instance_pred = 0.0;
    {
      XAI_SPAN("lime/neighborhood");
      for (int base = 0; base < n + 1; base += kBlockRows) {
        const int bn = std::min(kBlockRows, n + 1 - base);
        // Row 0 is the instance itself, so the first block draws one fewer
        // perturbed sample.
        Matrix raw = perturber_.Sample(instance, base == 0 ? bn - 1 : bn,
                                       &rng);
        ParallelFor(bn, /*grain=*/64,
                    [&](int64_t begin, int64_t end, int64_t) {
                      XAI_COUNTER_ADD("model/evals", end - begin);
                      for (int64_t i = begin; i < end; ++i) {
                        const bool is_instance = base == 0 && i == 0;
                        Vector sample =
                            is_instance
                                ? instance
                                : raw.Row(static_cast<int>(i) -
                                          (base == 0 ? 1 : 0));
                        double* zr =
                            zblock.data() + static_cast<size_t>(i) * (d + 1);
                        fill_row(sample, zr);
                        zr[d] = 1.0;
                        target[i] = f(sample);
                        double dist = perturber_.Distance(instance, sample);
                        weight[i] = std::exp(-dist * dist / (width * width));
                      }
                    });
        if (base == 0) instance_pred = target[0];
        acc.AddBlock(zblock.data(), target.data(), weight.data(), bn);
      }
    }
    XAI_ASSIGN_OR_RETURN(Vector coef, acc.Solve(config_.ridge));

    LimeExplanation exp;
    exp.attributions.assign(coef.begin(), coef.begin() + d);
    exp.intercept = coef.back();
    exp.base_value = coef.back();
    exp.prediction = instance_pred;
    for (int j = 0; j < d; ++j)
      exp.feature_names.push_back(schema_.features[j].name);
    // Weighted R^2 from the accumulated moments: identical up to summation
    // order to the materialized row-by-row pass (documented tolerance
    // carve-out — the coefficients above are still bitwise).
    double wsum = acc.weight_sum();
    if (wsum <= 0.0) {
      exp.local_r2 = 0.0;
      return exp;
    }
    double ss_res = acc.ResidualSumOfSquares(coef);
    double ss_tot = acc.weighted_yy_sum() -
                    acc.weighted_y_sum() * acc.weighted_y_sum() / wsum;
    exp.local_r2 = ss_tot <= 1e-12 ? 1.0 : 1.0 - ss_res / ss_tot;
    return exp;
  }

  Matrix raw = perturber_.Sample(instance, n, &rng);
  Matrix z(n + 1, d);
  Vector target(n + 1);
  Vector weight(n + 1);
  // Sampling above consumed the RNG serially; scoring the neighborhood is
  // RNG-free and dominated by the n+1 black-box calls, so it fans out over
  // the pool. Every row of z/target/weight is written by exactly one chunk;
  // f must be const-reentrant (see the Model threading contract).
  XAI_SPAN("lime/neighborhood");
  ParallelFor(n + 1, /*grain=*/64, [&](int64_t begin, int64_t end, int64_t) {
    XAI_COUNTER_ADD("model/evals", end - begin);
    for (int64_t i = begin; i < end; ++i) {
      Vector sample = i == 0 ? instance : raw.Row(static_cast<int>(i) - 1);
      fill_row(sample, z.RowPtr(static_cast<int>(i)));
      target[i] = f(sample);
      double dist = perturber_.Distance(instance, sample);
      weight[i] = std::exp(-dist * dist / (width * width));
    }
  });

  // Optional forward selection of top_k interpretable features.
  std::vector<int> selected;
  if (config_.top_k > 0 && config_.top_k < d) {
    std::set<int> remaining;
    for (int j = 0; j < d; ++j) remaining.insert(j);
    while (static_cast<int>(selected.size()) < config_.top_k) {
      // Score every remaining candidate independently in parallel, then
      // pick the winner in candidate order (strict >), which reproduces the
      // serial scan exactly.
      std::vector<int> candidates(remaining.begin(), remaining.end());
      std::vector<double> r2s(candidates.size(), -1e18);
      ParallelFor(static_cast<int64_t>(candidates.size()), /*grain=*/1,
                  [&](int64_t begin, int64_t end, int64_t) {
                    for (int64_t q = begin; q < end; ++q) {
                      std::vector<int> cand = selected;
                      cand.push_back(candidates[q]);
                      Matrix sub(n + 1, static_cast<int>(cand.size()));
                      for (int i = 0; i <= n; ++i) {
                        const double* zr = z.RowPtr(i);
                        double* sr = sub.RowPtr(i);
                        for (size_t c = 0; c < cand.size(); ++c)
                          sr[c] = zr[cand[c]];
                      }
                      auto coef = WeightedRidgeRegression(
                          sub, target, weight, config_.ridge, true);
                      if (!coef.ok()) continue;
                      const Vector& cf = coef.ValueUnsafe();
                      Vector pred(n + 1);
                      for (int i = 0; i <= n; ++i)
                        pred[i] = cf.back() + simd::Dot(cf.data(),
                                                        sub.RowPtr(i),
                                                        cand.size());
                      r2s[q] = WeightedR2(pred, target, weight);
                    }
                  });
      int best = -1;
      double best_r2 = -1e18;
      for (size_t q = 0; q < candidates.size(); ++q) {
        if (r2s[q] > best_r2) {
          best_r2 = r2s[q];
          best = candidates[q];
        }
      }
      if (best < 0) break;
      selected.push_back(best);
      remaining.erase(best);
    }
  } else {
    for (int j = 0; j < d; ++j) selected.push_back(j);
  }

  Matrix design(n + 1, static_cast<int>(selected.size()));
  for (int i = 0; i <= n; ++i) {
    const double* zr = z.RowPtr(i);
    double* dr = design.RowPtr(i);
    for (size_t c = 0; c < selected.size(); ++c) dr[c] = zr[selected[c]];
  }
  XAI_ASSIGN_OR_RETURN(Vector coef,
                       WeightedRidgeRegression(design, target, weight,
                                               config_.ridge, true));

  LimeExplanation exp;
  exp.attributions.assign(d, 0.0);
  for (size_t c = 0; c < selected.size(); ++c)
    exp.attributions[selected[c]] = coef[c];
  exp.intercept = coef.back();
  exp.base_value = coef.back();
  exp.prediction = target[0];
  for (int j = 0; j < d; ++j)
    exp.feature_names.push_back(schema_.features[j].name);

  Vector pred(n + 1);
  for (int i = 0; i <= n; ++i)
    pred[i] =
        exp.intercept + simd::Dot(coef.data(), design.RowPtr(i),
                                  selected.size());
  exp.local_r2 = WeightedR2(pred, target, weight);
  return exp;
}

Result<LimeStability> EvaluateLimeStability(const LimeExplainer& explainer,
                                            const PredictFn& f,
                                            const Vector& instance, int runs,
                                            int top_k, uint64_t seed) {
  if (runs < 2) return Status::InvalidArgument("need at least 2 runs");
  // Each run is an independent Explain call with its own seed; fan the runs
  // out and fold diagnostics in run order afterwards. Nested parallelism
  // inside Explain automatically runs inline.
  std::vector<LimeExplanation> explanations(runs);
  std::vector<Status> statuses(runs);
  ParallelFor(runs, /*grain=*/1, [&](int64_t begin, int64_t end, int64_t) {
    for (int64_t r = begin; r < end; ++r) {
      auto result = explainer.Explain(f, instance, seed + r);
      if (result.ok())
        explanations[r] = std::move(result).ValueUnsafe();
      else
        statuses[r] = result.status();
    }
  });
  std::vector<Vector> coefs;
  std::vector<std::set<int>> tops;
  LimeStability out;
  for (int r = 0; r < runs; ++r) {
    XAI_RETURN_NOT_OK(statuses[r]);
    const LimeExplanation& e = explanations[r];
    coefs.push_back(e.attributions);
    std::vector<int> top = e.TopFeatures(top_k);
    tops.emplace_back(top.begin(), top.end());
    out.mean_r2 += e.local_r2 / runs;
  }
  int d = static_cast<int>(instance.size());
  double acc = 0.0;
  for (int j = 0; j < d; ++j) {
    std::vector<double> vals;
    for (const Vector& c : coefs) vals.push_back(c[j]);
    acc += StdDev(vals);
  }
  out.coefficient_stddev = acc / d;

  double jac = 0.0;
  int pairs = 0;
  for (size_t a = 0; a < tops.size(); ++a) {
    for (size_t b = a + 1; b < tops.size(); ++b) {
      std::vector<int> inter;
      std::set_intersection(tops[a].begin(), tops[a].end(), tops[b].begin(),
                            tops[b].end(), std::back_inserter(inter));
      std::set<int> uni = tops[a];
      uni.insert(tops[b].begin(), tops[b].end());
      jac += uni.empty() ? 1.0
                         : static_cast<double>(inter.size()) / uni.size();
      ++pairs;
    }
  }
  out.jaccard_top_k = pairs > 0 ? jac / pairs : 1.0;
  return out;
}

int64_t LimePlannedEvals(const LimeConfig& config) {
  return std::max(0, config.num_samples);
}

LimeConfig LimeForBudget(LimeConfig config, int64_t max_evals) {
  constexpr int kFloor = 50;
  config.num_samples = static_cast<int>(std::clamp<int64_t>(
      max_evals, kFloor, std::max(kFloor, config.num_samples)));
  return config;
}

}  // namespace xai
