#ifndef XAI_EXPLAIN_LIME_H_
#define XAI_EXPLAIN_LIME_H_

#include <vector>

#include "xai/core/status.h"
#include "xai/data/dataset.h"
#include "xai/explain/explanation.h"
#include "xai/explain/perturbation.h"
#include "xai/model/model.h"

namespace xai {

/// \brief Configuration of the LIME explainer.
struct LimeConfig {
  /// Number of perturbed samples in the local neighborhood.
  int num_samples = 1000;
  /// Number of features in the explanation; -1 = all (plain ridge fit).
  /// When positive, features are chosen by weighted forward selection, as in
  /// the reference implementation.
  int top_k = -1;
  /// Exponential kernel width; <= 0 means the LIME default 0.75 * sqrt(d).
  double kernel_width = -1.0;
  /// Ridge penalty of the surrogate.
  double ridge = 1.0;
  /// Neighborhood sampling strategy.
  Perturber::Strategy strategy = Perturber::Strategy::kDiscretized;
  int discretizer_bins = 4;
  /// Stream sample→predict→weight→accumulate through a WlsAccumulator in
  /// row blocks instead of materializing the num_samples x d design matrix.
  /// Attributions and intercept are bit-identical to the materialized path
  /// on the default SIMD tiers; local_r2 is computed algebraically from the
  /// accumulated moments and may differ in the last ulps. Ignored (the
  /// materialized path runs) when top_k forward selection is active, which
  /// needs the full design for its candidate refits.
  bool fused = true;
};

/// \brief LIME explanation: surrogate coefficients plus fit diagnostics.
struct LimeExplanation : AttributionExplanation {
  /// Weighted R^2 of the surrogate on the neighborhood — LIME's own
  /// faithfulness score.
  double local_r2 = 0.0;
  /// Surrogate intercept.
  double intercept = 0.0;
};

/// \brief LIME (Ribeiro et al. 2016, §2.1.1): approximates the black box
/// around one instance with a weighted ridge surrogate over an interpretable
/// representation, and reads the surrogate's coefficients as the
/// explanation.
class LimeExplainer {
 public:
  /// `train` provides the feature statistics for perturbation; it is not
  /// used for model fitting.
  LimeExplainer(const Dataset& train, const LimeConfig& config = {});

  /// Explains `f` at `instance`. Deterministic for a fixed `seed`.
  Result<LimeExplanation> Explain(const PredictFn& f, const Vector& instance,
                                  uint64_t seed) const;

  const Perturber& perturber() const { return perturber_; }

 private:
  LimeConfig config_;
  Schema schema_;
  Perturber perturber_;
};

/// \brief Stability diagnostics across repeated LIME runs (Visani et al.,
/// the "unreliable sampling" critique in §2.1.1).
struct LimeStability {
  /// Mean over features of the stddev of the coefficient across runs.
  double coefficient_stddev = 0.0;
  /// Mean pairwise Jaccard similarity of the top-k feature sets (VSI-like;
  /// 1 = always the same variables).
  double jaccard_top_k = 0.0;
  /// Mean local R^2 across runs.
  double mean_r2 = 0.0;
};

/// Runs LIME `runs` times with different seeds and reports stability.
Result<LimeStability> EvaluateLimeStability(const LimeExplainer& explainer,
                                            const PredictFn& f,
                                            const Vector& instance, int runs,
                                            int top_k, uint64_t seed);

/// \name Serving budget hooks (see serve/degradation.h)
/// @{
/// Deterministic planning cost: one model call per neighborhood sample.
int64_t LimePlannedEvals(const LimeConfig& config);

/// Shrinks `config.num_samples` to fit `max_evals` (floor 50 — below that
/// the ridge fit is too noisy to be worth serving).
LimeConfig LimeForBudget(LimeConfig config, int64_t max_evals);
/// @}

}  // namespace xai

#endif  // XAI_EXPLAIN_LIME_H_
