#include "xai/unlearn/dare_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "xai/core/check.h"

namespace xai {
namespace {

// Weighted Gini impurity of a candidate split given node totals.
// Invalid splits (empty side / below min leaf size) return +inf.
double SplitImpurity(int n, int pos, int n_left, int pos_left,
                     int min_samples_leaf) {
  int n_right = n - n_left;
  int pos_right = pos - pos_left;
  if (n_left < min_samples_leaf || n_right < min_samples_leaf)
    return std::numeric_limits<double>::infinity();
  double pl = static_cast<double>(pos_left) / n_left;
  double pr = static_cast<double>(pos_right) / n_right;
  return n_left * 2.0 * pl * (1.0 - pl) + n_right * 2.0 * pr * (1.0 - pr);
}

}  // namespace

Result<DareTree> DareTree::Train(const Dataset& train,
                                 const DareTreeConfig& config) {
  if (train.num_rows() == 0)
    return Status::InvalidArgument("empty training set");
  for (double label : train.y())
    if (label != 0.0 && label != 1.0)
      return Status::InvalidArgument("DareTree requires binary labels");
  DareTree tree;
  tree.x_ = train.x();
  tree.y_ = train.y();
  tree.removed_.assign(train.num_rows(), false);
  tree.config_ = config;
  tree.rng_ = Rng(config.seed);
  tree.active_rows_ = train.num_rows();
  std::vector<int> rows(train.num_rows());
  for (int i = 0; i < train.num_rows(); ++i) rows[i] = i;
  tree.root_ = tree.Build(std::move(rows), 0);
  return tree;
}

int DareTree::BestCandidate(const Node& node) const {
  int best = -1;
  double best_impurity = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < node.candidates.size(); ++c) {
    const Candidate& cand = node.candidates[c];
    double imp = SplitImpurity(node.n, node.pos, cand.n_left, cand.pos_left,
                               config_.min_samples_leaf);
    // Deterministic tie-break keeps "best split unchanged" stable.
    if (imp + 1e-12 < best_impurity) {
      best_impurity = imp;
      best = static_cast<int>(c);
    }
  }
  // A split must actually reduce impurity below the node's own.
  if (best >= 0) {
    double p = node.n > 0 ? static_cast<double>(node.pos) / node.n : 0.0;
    double node_impurity = node.n * 2.0 * p * (1.0 - p);
    if (best_impurity >= node_impurity - 1e-12) return -1;
  }
  return best;
}

std::unique_ptr<DareTree::Node> DareTree::Build(std::vector<int> rows,
                                                int depth) {
  auto node = std::make_unique<Node>();
  node->depth = depth;
  node->n = static_cast<int>(rows.size());
  for (int r : rows) node->pos += y_[r] == 1.0 ? 1 : 0;
  node->rows = std::move(rows);

  bool splittable = depth < config_.max_depth &&
                    node->n >= 2 * config_.min_samples_leaf &&
                    node->pos > 0 && node->pos < node->n;
  if (!splittable) return node;

  // Draw random candidate thresholds per feature within the node's range.
  int d = x_.cols();
  for (int f = 0; f < d; ++f) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (int r : node->rows) {
      lo = std::min(lo, x_(r, f));
      hi = std::max(hi, x_(r, f));
    }
    if (hi <= lo) continue;
    for (int t = 0; t < config_.thresholds_per_feature; ++t) {
      Candidate cand;
      cand.feature = f;
      cand.threshold = rng_.Uniform(lo, hi);
      for (int r : node->rows) {
        if (x_(r, f) <= cand.threshold) {
          ++cand.n_left;
          cand.pos_left += y_[r] == 1.0 ? 1 : 0;
        }
      }
      node->candidates.push_back(cand);
    }
  }

  int best = BestCandidate(*node);
  if (best < 0) return node;

  const Candidate& cand = node->candidates[best];
  node->leaf = false;
  node->feature = cand.feature;
  node->threshold = cand.threshold;
  std::vector<int> left_rows, right_rows;
  for (int r : node->rows)
    (x_(r, node->feature) <= node->threshold ? left_rows : right_rows)
        .push_back(r);
  node->left = Build(std::move(left_rows), depth + 1);
  node->right = Build(std::move(right_rows), depth + 1);
  return node;
}

Status DareTree::Delete(int row) {
  if (row < 0 || row >= x_.rows()) return Status::OutOfRange("bad row index");
  if (removed_[row]) return Status::InvalidArgument("row already removed");
  if (active_rows_ <= 2 * config_.min_samples_leaf)
    return Status::InvalidArgument("too few rows would remain");
  removed_[row] = true;
  --active_rows_;
  ++num_deletions_;

  int label = y_[row] == 1.0 ? 1 : 0;
  Node* node = root_.get();
  for (;;) {
    // Update node statistics.
    node->n -= 1;
    node->pos -= label;
    node->rows.erase(std::find(node->rows.begin(), node->rows.end(), row));
    for (Candidate& cand : node->candidates) {
      if (x_(row, cand.feature) <= cand.threshold) {
        --cand.n_left;
        cand.pos_left -= label;
      }
    }
    if (node->leaf) break;

    // Does the cached split survive the deletion? Keep it unless it became
    // invalid or a competitor beats it by the robustness margin.
    int best = BestCandidate(*node);
    double current_impurity = std::numeric_limits<double>::infinity();
    for (const Candidate& cand : node->candidates) {
      if (cand.feature == node->feature &&
          cand.threshold == node->threshold) {
        current_impurity =
            SplitImpurity(node->n, node->pos, cand.n_left, cand.pos_left,
                          config_.min_samples_leaf);
        break;
      }
    }
    bool unchanged = best >= 0 && std::isfinite(current_impurity);
    if (unchanged) {
      double best_impurity = SplitImpurity(
          node->n, node->pos, node->candidates[best].n_left,
          node->candidates[best].pos_left, config_.min_samples_leaf);
      if (best_impurity <
          current_impurity * (1.0 - config_.rebuild_tolerance))
        unchanged = false;
    }
    if (!unchanged) {
      // Structural change: rebuild this subtree from its remaining rows.
      ++num_rebuilds_;
      rows_retrained_ += node->n;
      std::vector<int> rows = node->rows;
      int depth = node->depth;
      auto rebuilt = Build(std::move(rows), depth);
      *node = std::move(*rebuilt);
      break;
    }
    node = x_(row, node->feature) <= node->threshold ? node->left.get()
                                                     : node->right.get();
  }
  return Status::OK();
}

double DareTree::PredictFrom(const Node* node, const Vector& row) const {
  while (!node->leaf) {
    node = row[node->feature] <= node->threshold ? node->left.get()
                                                 : node->right.get();
  }
  return node->n > 0 ? static_cast<double>(node->pos) / node->n : 0.5;
}

double DareTree::Predict(const Vector& row) const {
  XAI_CHECK(root_ != nullptr);
  return PredictFrom(root_.get(), row);
}

Result<DareForest> DareForest::Train(const Dataset& train,
                                     const Config& config) {
  DareForest forest;
  for (int t = 0; t < config.n_trees; ++t) {
    DareTreeConfig tree_config = config.tree;
    tree_config.seed = config.tree.seed + 0x9e3779b9u * (t + 1);
    XAI_ASSIGN_OR_RETURN(DareTree tree, DareTree::Train(train, tree_config));
    forest.trees_.push_back(std::move(tree));
  }
  return forest;
}

Status DareForest::Delete(int row) {
  for (DareTree& tree : trees_) XAI_RETURN_NOT_OK(tree.Delete(row));
  return Status::OK();
}

double DareForest::Predict(const Vector& row) const {
  if (trees_.empty()) return 0.5;
  double acc = 0.0;
  for (const DareTree& tree : trees_) acc += tree.Predict(row);
  return acc / trees_.size();
}

int DareForest::num_rebuilds() const {
  int acc = 0;
  for (const DareTree& tree : trees_) acc += tree.num_rebuilds();
  return acc;
}

}  // namespace xai
