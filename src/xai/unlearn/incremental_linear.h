#ifndef XAI_UNLEARN_INCREMENTAL_LINEAR_H_
#define XAI_UNLEARN_INCREMENTAL_LINEAR_H_

#include <vector>

#include "xai/core/matrix.h"
#include "xai/core/status.h"
#include "xai/model/linear_regression.h"

namespace xai {

/// \brief PrIU-style incrementally maintained ridge linear regression
/// (Wu, Tannen & Davidson 2020, §3): the model keeps provenance-style
/// aggregates — the inverse regularized Gram matrix and X^T y — and updates
/// them in O(d^2) per deleted row via Sherman-Morrison downdates, instead of
/// refitting on all n rows ("adopt database techniques such as incremental
/// view maintenance to estimate the parameters of the updated model").
///
/// The maintained parameters are algebraically *exact*: they equal a full
/// refit on the remaining rows (up to numerical error), which the test suite
/// verifies.
class MaintainedLinearRegression {
 public:
  /// Fits on the full data and caches the incremental aggregates.
  static Result<MaintainedLinearRegression> Fit(const Matrix& x,
                                                const Vector& y,
                                                double l2 = 1e-6);

  /// Removes one training row (index into the original matrix). O(d^2).
  Status RemoveRow(int row);
  /// Removes several rows.
  Status RemoveRows(const std::vector<int>& rows);
  /// Adds a new row (Sherman-Morrison update). O(d^2).
  Status AddRow(const Vector& features, double label);

  /// Current coefficients (without intercept) and intercept.
  const Vector& weights() const { return weights_; }
  double bias() const { return bias_; }
  /// Number of active (non-removed) rows.
  int active_rows() const { return active_rows_; }

  /// Materializes a model with the current parameters.
  LinearRegressionModel CurrentModel() const;

 private:
  void RefreshTheta();
  /// Sherman-Morrison: inv(A + s u u^T) given inv(A); s = +1 add, -1 remove.
  Status RankOneUpdate(const Vector& u, double sign);

  Matrix x_;          // Original rows (with intercept column appended).
  Vector y_;
  std::vector<bool> removed_;
  Matrix inv_;        // (X'^T X' + reg)^{-1} over active rows.
  Vector xty_;        // X'^T y over active rows.
  Vector theta_;      // inv_ * xty_.
  Vector weights_;
  double bias_ = 0.0;
  double l2_ = 0.0;
  int active_rows_ = 0;
};

}  // namespace xai

#endif  // XAI_UNLEARN_INCREMENTAL_LINEAR_H_
