#include "xai/unlearn/incremental_logistic.h"

#include <cmath>

#include "xai/core/simd.h"

namespace xai {
namespace {

// Per-example unregularized Hessian contribution at theta, added into h.
void AddExampleHessian(const Vector& row, double p, Matrix* h) {
  int d = static_cast<int>(row.size());
  double w = p * (1.0 - p);
  // d x d block as one blocked rank-1 update; bias column separately.
  simd::WeightedOuterAccumulate(w, row.data(), d, h->RowPtr(0), d + 1);
  for (int a = 0; a < d; ++a) (*h)(a, d) += w * row[a];
  (*h)(d, d) += w;
}

void Symmetrize(Matrix* h) {
  for (int a = 0; a < h->rows(); ++a)
    for (int b = 0; b < a; ++b) (*h)(a, b) = (*h)(b, a);
}

}  // namespace

Result<MaintainedLogisticRegression> MaintainedLogisticRegression::Fit(
    const Matrix& x, const Vector& y, const LogisticRegressionConfig& config) {
  XAI_ASSIGN_OR_RETURN(LogisticRegressionModel model,
                       LogisticRegressionModel::Train(x, y, config));
  MaintainedLogisticRegression m;
  m.x_ = x;
  m.y_ = y;
  m.removed_.assign(x.rows(), false);
  m.config_ = config;
  m.weights_ = model.weights();
  m.bias_ = model.bias();
  m.active_rows_ = x.rows();
  m.CacheAggregates();
  return m;
}

void MaintainedLogisticRegression::CacheAggregates() {
  int d = x_.cols();
  grad_sum_.assign(d + 1, 0.0);
  hessian_sum_ = Matrix(d + 1, d + 1);
  LogisticRegressionModel model = CurrentModel();
  for (int i = 0; i < x_.rows(); ++i) {
    if (removed_[i]) continue;
    Vector row = x_.Row(i);
    Vector g = model.ExampleLossGradient(row, y_[i]);
    simd::Axpy(1.0, g.data(), grad_sum_.data(), d + 1);
    AddExampleHessian(row, Sigmoid(model.Margin(row)), &hessian_sum_);
  }
  Symmetrize(&hessian_sum_);
}

Status MaintainedLogisticRegression::AddRows(const Matrix& new_x,
                                             const Vector& new_y,
                                             int refine_full_iters) {
  int d = x_.cols();
  if (new_x.cols() != d)
    return Status::InvalidArgument("new rows have wrong width");
  if (new_x.rows() != static_cast<int>(new_y.size()))
    return Status::InvalidArgument("row count mismatch");
  LogisticRegressionModel model = CurrentModel();

  // Append the rows and add their gradient/Hessian contributions at the
  // current parameters.
  Matrix combined(x_.rows() + new_x.rows(), d);
  for (int i = 0; i < x_.rows(); ++i) combined.SetRow(i, x_.Row(i));
  for (int i = 0; i < new_x.rows(); ++i) {
    Vector row = new_x.Row(i);
    combined.SetRow(x_.rows() + i, row);
    y_.push_back(new_y[i]);
    removed_.push_back(false);
    ++active_rows_;
    Vector g = model.ExampleLossGradient(row, new_y[i]);
    simd::Axpy(1.0, g.data(), grad_sum_.data(), d + 1);
    AddExampleHessian(row, Sigmoid(model.Margin(row)), &hessian_sum_);
  }
  Symmetrize(&hessian_sum_);
  x_ = std::move(combined);

  return NewtonCorrectAndRecache(refine_full_iters);
}

Status MaintainedLogisticRegression::RemoveRows(const std::vector<int>& rows,
                                                int refine_full_iters) {
  int d = x_.cols();
  LogisticRegressionModel model = CurrentModel();
  // Subtract the removed rows' cached contributions — O(|R| d^2).
  for (int r : rows) {
    if (r < 0 || r >= x_.rows()) return Status::OutOfRange("bad row index");
    if (removed_[r]) return Status::InvalidArgument("row already removed");
    Vector row = x_.Row(r);
    Vector g = model.ExampleLossGradient(row, y_[r]);
    simd::Axpy(-1.0, g.data(), grad_sum_.data(), d + 1);
    Matrix neg(d + 1, d + 1);
    AddExampleHessian(row, Sigmoid(model.Margin(row)), &neg);
    Symmetrize(&neg);
    hessian_sum_ = hessian_sum_ - neg;
    removed_[r] = true;
    --active_rows_;
  }
  if (active_rows_ < 2)
    return Status::InvalidArgument("too few rows would remain");

  return NewtonCorrectAndRecache(refine_full_iters);
}

Status MaintainedLogisticRegression::NewtonCorrectAndRecache(
    int refine_full_iters) {
  int d = x_.cols();
  // One Newton step on the post-update objective
  //   J'(theta) = (1/n') sum_active nll_i + (l2/2)||w||^2,
  // evaluated at the cached (pre-deletion) optimum.
  double n = active_rows_;
  Vector grad(d + 1);
  for (int j = 0; j <= d; ++j) grad[j] = grad_sum_[j] / n;
  for (int j = 0; j < d; ++j) grad[j] += config_.l2 * weights_[j];
  Matrix hess = hessian_sum_ * (1.0 / n);
  for (int j = 0; j < d; ++j) hess(j, j) += config_.l2;
  hess.AddScaledIdentity(1e-10);
  auto step = CholeskySolve(hess, grad);
  if (step.ok()) {
    for (int j = 0; j < d; ++j) weights_[j] -= step.ValueUnsafe()[j];
    bias_ -= step.ValueUnsafe()[d];
  }

  if (refine_full_iters > 0) {
    // Warm-started exact refinement over the remaining rows.
    std::vector<int> keep;
    for (int i = 0; i < x_.rows(); ++i)
      if (!removed_[i]) keep.push_back(i);
    Matrix xr(static_cast<int>(keep.size()), d);
    Vector yr(keep.size());
    for (size_t i = 0; i < keep.size(); ++i) {
      xr.SetRow(static_cast<int>(i), x_.Row(keep[i]));
      yr[i] = y_[keep[i]];
    }
    LogisticRegressionConfig cfg = config_;
    cfg.max_iter = refine_full_iters;
    XAI_ASSIGN_OR_RETURN(
        LogisticRegressionModel refined,
        LogisticRegressionModel::TrainWarmStart(xr, yr, weights_, bias_,
                                                cfg));
    weights_ = refined.weights();
    bias_ = refined.bias();
  }

  // Re-cache aggregates at the new parameters so later deletions remain
  // first-order accurate. O(n d^2) — still much cheaper than a cold Newton
  // solve, and skippable for latency-critical paths.
  CacheAggregates();
  return Status::OK();
}

LogisticRegressionModel MaintainedLogisticRegression::CurrentModel() const {
  return LogisticRegressionModel::FromCoefficients(weights_, bias_, config_);
}

}  // namespace xai
