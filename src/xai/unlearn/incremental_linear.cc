#include "xai/unlearn/incremental_linear.h"

#include <cmath>
#include <cstring>

#include "xai/core/simd.h"

namespace xai {

Result<MaintainedLinearRegression> MaintainedLinearRegression::Fit(
    const Matrix& x, const Vector& y, double l2) {
  if (x.rows() != static_cast<int>(y.size()))
    return Status::InvalidArgument("row count mismatch");
  if (x.rows() <= x.cols() + 1)
    return Status::InvalidArgument(
        "need more rows than parameters for stable maintenance");
  MaintainedLinearRegression m;
  int n = x.rows(), d = x.cols();
  m.x_ = Matrix(n, d + 1);
  for (int i = 0; i < n; ++i) {
    double* dst = m.x_.RowPtr(i);
    if (d > 0) std::memcpy(dst, x.RowPtr(i), sizeof(double) * d);
    dst[d] = 1.0;
  }
  m.y_ = y;
  m.removed_.assign(n, false);
  m.l2_ = l2;
  m.active_rows_ = n;

  Matrix gram = m.x_.Gram();
  for (int j = 0; j < d; ++j) gram(j, j) += l2;  // Intercept unregularized.
  gram.AddScaledIdentity(1e-10);
  XAI_ASSIGN_OR_RETURN(m.inv_, Inverse(gram));
  m.xty_ = m.x_.TransposeMatVec(y);
  m.RefreshTheta();
  return m;
}

void MaintainedLinearRegression::RefreshTheta() {
  theta_ = inv_.MatVec(xty_);
  weights_.assign(theta_.begin(), theta_.end() - 1);
  bias_ = theta_.back();
}

Status MaintainedLinearRegression::RankOneUpdate(const Vector& u,
                                                 double sign) {
  // inv(A + s uu^T) = inv - s (inv u)(u^T inv) / (1 + s u^T inv u).
  Vector iu = inv_.MatVec(u);
  double denom = 1.0 + sign * Dot(u, iu);
  if (std::fabs(denom) < 1e-12)
    return Status::InvalidArgument(
        "rank-one downdate is singular (row too influential)");
  double factor = sign / denom;
  int k = inv_.rows();
  for (int a = 0; a < k; ++a)
    simd::Axpy(-factor * iu[a], iu.data(), inv_.RowPtr(a), k);
  return Status::OK();
}

Status MaintainedLinearRegression::RemoveRow(int row) {
  if (row < 0 || row >= static_cast<int>(removed_.size()))
    return Status::OutOfRange("row index out of range");
  if (removed_[row]) return Status::InvalidArgument("row already removed");
  if (active_rows_ <= inv_.rows())
    return Status::InvalidArgument("too few rows would remain");
  Vector u = x_.Row(row);
  XAI_RETURN_NOT_OK(RankOneUpdate(u, -1.0));
  simd::Axpy(-y_[row], u.data(), xty_.data(), xty_.size());
  removed_[row] = true;
  --active_rows_;
  RefreshTheta();
  return Status::OK();
}

Status MaintainedLinearRegression::RemoveRows(const std::vector<int>& rows) {
  for (int r : rows) XAI_RETURN_NOT_OK(RemoveRow(r));
  return Status::OK();
}

Status MaintainedLinearRegression::AddRow(const Vector& features,
                                          double label) {
  if (static_cast<int>(features.size()) + 1 != inv_.rows())
    return Status::InvalidArgument("feature width mismatch");
  Vector u = features;
  u.push_back(1.0);
  XAI_RETURN_NOT_OK(RankOneUpdate(u, +1.0));
  simd::Axpy(label, u.data(), xty_.data(), xty_.size());
  // Record the row so it can be removed later.
  Matrix nx(x_.rows() + 1, x_.cols());
  if (x_.rows() > 0)
    std::memcpy(nx.RowPtr(0), x_.RowPtr(0),
                sizeof(double) * x_.rows() * x_.cols());
  nx.SetRow(x_.rows(), u);
  x_ = std::move(nx);
  y_.push_back(label);
  removed_.push_back(false);
  ++active_rows_;
  RefreshTheta();
  return Status::OK();
}

LinearRegressionModel MaintainedLinearRegression::CurrentModel() const {
  return LinearRegressionModel::FromCoefficients(weights_, bias_, {l2_});
}

}  // namespace xai
