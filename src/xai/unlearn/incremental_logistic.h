#ifndef XAI_UNLEARN_INCREMENTAL_LOGISTIC_H_
#define XAI_UNLEARN_INCREMENTAL_LOGISTIC_H_

#include <vector>

#include "xai/core/matrix.h"
#include "xai/core/status.h"
#include "xai/model/logistic_regression.h"

namespace xai {

/// \brief Incrementally maintained logistic regression (PrIU-style, §3).
///
/// At fit time the per-point gradient and Hessian contributions at the
/// optimum are cached in aggregate. Deleting rows subtracts their
/// contributions (O(|R| d^2), no full-data pass) and applies one damped
/// Newton correction — the first-order "influence update" — optionally
/// followed by warm-started refinement. The approximation error against a
/// full retrain is measured by the E10 experiment.
class MaintainedLogisticRegression {
 public:
  static Result<MaintainedLogisticRegression> Fit(
      const Matrix& x, const Vector& y,
      const LogisticRegressionConfig& config = {});

  /// Removes rows and updates the parameters with one Newton correction
  /// computed from cached aggregates. `refine_full_iters` > 0 additionally
  /// runs that many warm-started Newton iterations over the remaining data
  /// (exact but O(n) per iteration).
  Status RemoveRows(const std::vector<int>& rows, int refine_full_iters = 0);

  /// Adds new training rows with the same one-step-correction scheme (the
  /// incremental-view-maintenance INSERT case). The appended rows receive
  /// indices past the current matrix and can later be removed.
  Status AddRows(const Matrix& new_x, const Vector& new_y,
                 int refine_full_iters = 0);

  const Vector& weights() const { return weights_; }
  double bias() const { return bias_; }
  int active_rows() const { return active_rows_; }
  LogisticRegressionModel CurrentModel() const;

 private:
  void CacheAggregates();
  /// Shared tail of AddRows/RemoveRows: damped Newton step on the cached
  /// aggregates, optional warm-started refinement, re-cache.
  Status NewtonCorrectAndRecache(int refine_full_iters);

  Matrix x_;
  Vector y_;
  std::vector<bool> removed_;
  LogisticRegressionConfig config_;
  Vector weights_;
  double bias_ = 0.0;
  int active_rows_ = 0;
  /// Cached at the current parameters: sum over active rows of per-example
  /// gradients, and the unregularized Hessian sum.
  Vector grad_sum_;
  Matrix hessian_sum_;
};

}  // namespace xai

#endif  // XAI_UNLEARN_INCREMENTAL_LOGISTIC_H_
