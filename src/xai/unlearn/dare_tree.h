#ifndef XAI_UNLEARN_DARE_TREE_H_
#define XAI_UNLEARN_DARE_TREE_H_

#include <memory>
#include <vector>

#include "xai/core/rng.h"
#include "xai/core/status.h"
#include "xai/data/dataset.h"
#include "xai/model/model.h"

namespace xai {

/// \brief Configuration of the unlearnable tree.
struct DareTreeConfig {
  int max_depth = 8;
  int min_samples_leaf = 4;
  /// Candidate thresholds drawn per feature at each node (extremely-
  /// randomized-trees style, as in HedgeCut's ERTs).
  int thresholds_per_feature = 8;
  /// Robustness margin (HedgeCut's split-robustness idea): the cached split
  /// is kept unless a competitor's impurity beats it by this relative
  /// margin, so near-tie flips don't trigger subtree rebuilds.
  double rebuild_tolerance = 0.02;
  uint64_t seed = 29;
};

/// \brief DaRE/HedgeCut-style decision tree with low-latency deletion
/// (§3: "HedgeCut: maintaining randomised trees for low-latency machine
/// unlearning").
///
/// Every node caches, for each candidate split, the label statistics needed
/// to score it. Deleting a training point decrements those statistics along
/// the point's root-to-leaf path (O(depth * candidates)); only when the
/// *best* split of some node changes does the affected subtree get rebuilt.
/// Most deletions therefore cost microseconds instead of a full retrain.
class DareTree {
 public:
  /// Binary classification only ({0,1} labels).
  static Result<DareTree> Train(const Dataset& train,
                                const DareTreeConfig& config = {});

  /// Unlearns one training row (index into the original dataset).
  Status Delete(int row);

  /// P(y=1) at the routed leaf.
  double Predict(const Vector& row) const;

  /// \name Deletion statistics (for the E11 experiment).
  /// @{
  int num_deletions() const { return num_deletions_; }
  int num_rebuilds() const { return num_rebuilds_; }
  int rows_retrained() const { return rows_retrained_; }
  /// @}

  int active_rows() const { return active_rows_; }

 private:
  struct Candidate {
    int feature = -1;
    double threshold = 0.0;
    int n_left = 0;
    int pos_left = 0;
  };
  struct Node {
    int n = 0;
    int pos = 0;
    int depth = 0;
    bool leaf = true;
    int feature = -1;
    double threshold = 0.0;
    std::vector<Candidate> candidates;
    std::vector<int> rows;  // Active original row indices at this node.
    std::unique_ptr<Node> left, right;
  };

  std::unique_ptr<Node> Build(std::vector<int> rows, int depth);
  /// Index into node->candidates of the best valid split, or -1.
  int BestCandidate(const Node& node) const;
  double PredictFrom(const Node* node, const Vector& row) const;

  Matrix x_;
  Vector y_;
  std::vector<bool> removed_;
  DareTreeConfig config_;
  Rng rng_{0};
  std::unique_ptr<Node> root_;
  int active_rows_ = 0;
  int num_deletions_ = 0;
  int num_rebuilds_ = 0;
  int rows_retrained_ = 0;
};

/// \brief Bagging-free forest of DareTrees (each tree sees all rows but
/// draws different random candidate thresholds), averaging their outputs.
class DareForest : public Model {
 public:
  struct Config {
    int n_trees = 10;
    DareTreeConfig tree;
  };

  static Result<DareForest> Train(const Dataset& train, const Config& config);

  Status Delete(int row);

  TaskType task() const override { return TaskType::kClassification; }
  std::string name() const override { return "dare_forest"; }
  double Predict(const Vector& row) const override;

  const std::vector<DareTree>& trees() const { return trees_; }
  int num_rebuilds() const;

 private:
  std::vector<DareTree> trees_;
};

}  // namespace xai

#endif  // XAI_UNLEARN_DARE_TREE_H_
