#include "xai/data/csv.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace xai {
namespace {

// RFC-4180-style splitting: fields may be wrapped in double quotes, inside
// which the delimiter is literal and "" denotes an escaped quote.
std::vector<std::string> SplitLine(const std::string& line, char delim) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"' && field.empty()) {
      quoted = true;
    } else if (c == delim) {
      fields.push_back(field);
      field.clear();
    } else if (c != '\r') {
      field += c;
    }
  }
  fields.push_back(field);
  return fields;
}

// Quotes a field for writing when it contains the delimiter or a quote.
std::string QuoteIfNeeded(const std::string& field, char delim) {
  if (field.find(delim) == std::string::npos &&
      field.find('"') == std::string::npos)
    return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

Result<Dataset> ReadCsvString(const std::string& text,
                              const CsvOptions& options) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line))
    return Status::InvalidArgument("empty CSV input");
  std::vector<std::string> header = SplitLine(line, options.delimiter);
  for (auto& h : header) h = Trim(h);
  int ncols = static_cast<int>(header.size());
  if (ncols < 2)
    return Status::InvalidArgument("CSV needs at least two columns");

  int target_col = ncols - 1;
  if (!options.target_column.empty()) {
    auto it = std::find(header.begin(), header.end(), options.target_column);
    if (it == header.end())
      return Status::NotFound("target column '" + options.target_column +
                              "' not in header");
    target_col = static_cast<int>(it - header.begin());
  }

  std::vector<std::vector<std::string>> raw_rows;
  while (std::getline(in, line)) {
    if (Trim(line).empty()) continue;
    std::vector<std::string> fields = SplitLine(line, options.delimiter);
    if (static_cast<int>(fields.size()) != ncols)
      return Status::InvalidArgument(
          "row " + std::to_string(raw_rows.size() + 1) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(ncols));
    for (auto& f : fields) f = Trim(f);
    raw_rows.push_back(std::move(fields));
  }

  // Decide per column: numeric iff every value parses and the column is not
  // forced categorical.
  std::vector<bool> is_numeric(ncols, true);
  for (int c = 0; c < ncols; ++c) {
    for (const auto& row : raw_rows) {
      double tmp;
      if (!ParseDouble(row[c], &tmp)) {
        is_numeric[c] = false;
        break;
      }
    }
    if (std::find(options.categorical_columns.begin(),
                  options.categorical_columns.end(),
                  header[c]) != options.categorical_columns.end()) {
      is_numeric[c] = false;
    }
  }

  Schema schema;
  schema.target_name = header[target_col];
  schema.task = options.task;
  std::vector<int> feature_cols;
  std::vector<std::map<std::string, int>> encoders(ncols);
  for (int c = 0; c < ncols; ++c) {
    if (c == target_col) continue;
    feature_cols.push_back(c);
    if (is_numeric[c]) {
      schema.features.push_back(FeatureSpec::Numeric(header[c]));
    } else {
      schema.features.push_back(FeatureSpec::Categorical(header[c], {}));
    }
  }

  int n = static_cast<int>(raw_rows.size());
  Matrix x(n, static_cast<int>(feature_cols.size()));
  Vector y(n);
  std::map<std::string, int> target_encoder;
  for (int i = 0; i < n; ++i) {
    for (size_t f = 0; f < feature_cols.size(); ++f) {
      int c = feature_cols[f];
      const std::string& cell = raw_rows[i][c];
      if (is_numeric[c]) {
        double v = 0.0;
        ParseDouble(cell, &v);
        x(i, static_cast<int>(f)) = v;
      } else {
        auto [it, inserted] =
            encoders[c].emplace(cell, static_cast<int>(encoders[c].size()));
        if (inserted) schema.features[f].categories.push_back(cell);
        x(i, static_cast<int>(f)) = it->second;
      }
    }
    const std::string& cell = raw_rows[i][target_col];
    double v = 0.0;
    if (options.task == TaskType::kRegression) {
      if (!ParseDouble(cell, &v))
        return Status::InvalidArgument("non-numeric regression target: " +
                                       cell);
    } else if (!ParseDouble(cell, &v)) {
      auto [it, inserted] = target_encoder.emplace(
          cell, static_cast<int>(target_encoder.size()));
      v = it->second;
    }
    y[i] = v;
  }
  return Dataset(std::move(schema), std::move(x), std::move(y));
}

Result<Dataset> ReadCsvFile(const std::string& path,
                            const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadCsvString(buf.str(), options);
}

std::string WriteCsvString(const Dataset& dataset, char delimiter) {
  std::ostringstream out;
  const Schema& schema = dataset.schema();
  for (int f = 0; f < schema.num_features(); ++f)
    out << QuoteIfNeeded(schema.features[f].name, delimiter) << delimiter;
  out << QuoteIfNeeded(schema.target_name, delimiter) << "\n";
  for (int i = 0; i < dataset.num_rows(); ++i) {
    for (int f = 0; f < schema.num_features(); ++f)
      out << QuoteIfNeeded(dataset.RenderCell(i, f), delimiter) << delimiter;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", dataset.Label(i));
    out << buf << "\n";
  }
  return out.str();
}

Status WriteCsvFile(const Dataset& dataset, const std::string& path,
                    char delimiter) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << WriteCsvString(dataset, delimiter);
  return Status::OK();
}

}  // namespace xai
