#include "xai/data/dataset.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <set>

#include "xai/core/check.h"

namespace xai {

int Schema::FeatureIndex(const std::string& name) const {
  for (size_t i = 0; i < features.size(); ++i)
    if (features[i].name == name) return static_cast<int>(i);
  return -1;
}

Dataset::Dataset(Schema schema, Matrix x, Vector y)
    : schema_(std::move(schema)), x_(std::move(x)), y_(std::move(y)) {
  XAI_CHECK_EQ(x_.rows(), static_cast<int>(y_.size()));
  XAI_CHECK_EQ(x_.cols(), schema_.num_features());
}

std::string Dataset::RenderCell(int row, int feature) const {
  return RenderValue(feature, x_(row, feature));
}

std::string Dataset::RenderValue(int feature, double value) const {
  const FeatureSpec& spec = schema_.features[feature];
  if (spec.is_categorical()) {
    int idx = static_cast<int>(value);
    if (idx >= 0 && idx < spec.num_categories()) return spec.categories[idx];
    return "<bad category " + std::to_string(idx) + ">";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", value);
  return buf;
}

void Dataset::AppendRow(const Vector& features, double label) {
  XAI_CHECK_EQ(static_cast<int>(features.size()), schema_.num_features());
  Matrix nx(x_.rows() + 1, schema_.num_features());
  for (int i = 0; i < x_.rows(); ++i)
    for (int j = 0; j < x_.cols(); ++j) nx(i, j) = x_(i, j);
  for (int j = 0; j < nx.cols(); ++j) nx(x_.rows(), j) = features[j];
  x_ = std::move(nx);
  y_.push_back(label);
}

Dataset Dataset::Subset(const std::vector<int>& rows) const {
  Matrix nx(static_cast<int>(rows.size()), num_features());
  Vector ny(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    XAI_CHECK(rows[i] >= 0 && rows[i] < num_rows());
    for (int j = 0; j < num_features(); ++j) nx(static_cast<int>(i), j) = x_(rows[i], j);
    ny[i] = y_[rows[i]];
  }
  return Dataset(schema_, std::move(nx), std::move(ny));
}

Dataset Dataset::Without(const std::vector<int>& rows) const {
  std::set<int> excluded(rows.begin(), rows.end());
  std::vector<int> keep;
  keep.reserve(num_rows() - excluded.size());
  for (int i = 0; i < num_rows(); ++i)
    if (!excluded.count(i)) keep.push_back(i);
  return Subset(keep);
}

std::pair<Dataset, Dataset> Dataset::TrainTestSplit(double test_fraction,
                                                    uint64_t seed) const {
  XAI_CHECK(test_fraction >= 0.0 && test_fraction <= 1.0);
  Rng rng(seed);
  std::vector<int> perm = rng.Permutation(num_rows());
  int n_test = static_cast<int>(test_fraction * num_rows());
  std::vector<int> test_rows(perm.begin(), perm.begin() + n_test);
  std::vector<int> train_rows(perm.begin() + n_test, perm.end());
  return {Subset(train_rows), Subset(test_rows)};
}

std::vector<double> Dataset::DistinctLabels() const {
  std::set<double> labels(y_.begin(), y_.end());
  return std::vector<double>(labels.begin(), labels.end());
}

std::vector<std::pair<double, double>> Dataset::FeatureRanges() const {
  std::vector<std::pair<double, double>> ranges(
      num_features(), {std::numeric_limits<double>::infinity(),
                       -std::numeric_limits<double>::infinity()});
  for (int i = 0; i < num_rows(); ++i) {
    for (int j = 0; j < num_features(); ++j) {
      ranges[j].first = std::min(ranges[j].first, x_(i, j));
      ranges[j].second = std::max(ranges[j].second, x_(i, j));
    }
  }
  return ranges;
}

std::vector<int> FlipBinaryLabels(Dataset* dataset, double fraction,
                                  uint64_t seed) {
  Rng rng(seed);
  int n = dataset->num_rows();
  int k = static_cast<int>(fraction * n);
  std::vector<int> rows = rng.SampleWithoutReplacement(n, k);
  std::sort(rows.begin(), rows.end());
  Vector* y = dataset->mutable_y();
  for (int r : rows) (*y)[r] = 1.0 - (*y)[r];
  return rows;
}

}  // namespace xai
