#include "xai/data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "xai/core/check.h"

namespace xai {
namespace {

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

double Clip(double v, double lo, double hi) {
  return std::max(lo, std::min(hi, v));
}

}  // namespace

Dataset MakeLoans(int n, uint64_t seed) {
  Rng rng(seed);
  Schema schema;
  schema.features = {
      FeatureSpec::Numeric("age"),
      FeatureSpec::Numeric("income"),
      FeatureSpec::Numeric("credit_score"),
      FeatureSpec::Numeric("debt_to_income"),
      FeatureSpec::Numeric("employment_years"),
      FeatureSpec::Categorical("has_default", {"no", "yes"}),
      FeatureSpec::Categorical("purpose",
                               {"car", "home", "education", "business"}),
      FeatureSpec::Categorical("gender", {"male", "female"}),
  };
  schema.target_name = "approved";
  schema.task = TaskType::kClassification;

  Matrix x(n, schema.num_features());
  Vector y(n);
  const double purpose_effect[4] = {0.0, 0.3, 0.1, -0.2};
  for (int i = 0; i < n; ++i) {
    double age = rng.Uniform(21.0, 70.0);
    double income = std::exp(rng.Normal(4.0, 0.5));  // k$ / year, ~55 median
    double credit = Clip(rng.Normal(650.0, 80.0), 300.0, 850.0);
    double dti = rng.Uniform(0.0, 0.6);
    double emp = Clip(rng.Normal((age - 21.0) * 0.5, 4.0), 0.0, age - 18.0);
    int has_default = rng.Bernoulli(0.15) ? 1 : 0;
    int purpose = rng.UniformInt(4);
    int gender = rng.Bernoulli(0.5) ? 1 : 0;

    double score = 0.004 * (credit - 650.0) + 0.8 * std::log(income / 50.0) -
                   2.5 * dti + 0.04 * emp - 1.2 * has_default +
                   purpose_effect[purpose] + rng.Normal(0.0, 0.3);
    x(i, 0) = age;
    x(i, 1) = income;
    x(i, 2) = credit;
    x(i, 3) = dti;
    x(i, 4) = emp;
    x(i, 5) = has_default;
    x(i, 6) = purpose;
    x(i, 7) = gender;
    y[i] = score > 0.0 ? 1.0 : 0.0;
  }
  return Dataset(std::move(schema), std::move(x), std::move(y));
}

Dataset MakeIncome(int n, uint64_t seed) {
  Rng rng(seed);
  Schema schema;
  schema.features = {
      FeatureSpec::Numeric("age"),
      FeatureSpec::Numeric("education_num"),
      FeatureSpec::Numeric("hours_per_week"),
      FeatureSpec::Numeric("capital_gain"),
      FeatureSpec::Categorical(
          "occupation", {"service", "clerical", "technical", "managerial",
                         "professional"}),
      FeatureSpec::Categorical("marital",
                               {"single", "married", "divorced"}),
      FeatureSpec::Categorical("gender", {"male", "female"}),
  };
  schema.target_name = "high_income";
  schema.task = TaskType::kClassification;

  Matrix x(n, schema.num_features());
  Vector y(n);
  const double occ_effect[5] = {-0.4, -0.1, 0.2, 0.6, 0.8};
  for (int i = 0; i < n; ++i) {
    double age = rng.Uniform(18.0, 80.0);
    double edu = 1.0 + rng.UniformInt(16);
    double hours = Clip(rng.Normal(40.0, 12.0), 5.0, 90.0);
    double capgain =
        rng.Bernoulli(0.8) ? 0.0 : std::exp(rng.Normal(7.0, 1.0));
    int occ = rng.UniformInt(5);
    int marital = rng.UniformInt(3);
    int gender = rng.Bernoulli(0.5) ? 1 : 0;

    double z = 0.03 * (age - 40.0) + 0.30 * (edu - 9.0) +
               0.04 * (hours - 40.0) + 0.0004 * capgain + occ_effect[occ] +
               (marital == 1 ? 0.5 : 0.0) - 1.0;
    x(i, 0) = age;
    x(i, 1) = edu;
    x(i, 2) = hours;
    x(i, 3) = capgain;
    x(i, 4) = occ;
    x(i, 5) = marital;
    x(i, 6) = gender;
    y[i] = rng.Bernoulli(Sigmoid(z)) ? 1.0 : 0.0;
  }
  return Dataset(std::move(schema), std::move(x), std::move(y));
}

Dataset MakeRecidivism(int n, uint64_t seed) {
  Rng rng(seed);
  Schema schema;
  schema.features = {
      FeatureSpec::Numeric("age"),
      FeatureSpec::Numeric("priors_count"),
      FeatureSpec::Categorical("charge_degree", {"misdemeanor", "felony"}),
      FeatureSpec::Categorical("gender", {"male", "female"}),
      FeatureSpec::Categorical("race", {"group_a", "group_b"}),
  };
  schema.target_name = "reoffend";
  schema.task = TaskType::kClassification;

  Matrix x(n, schema.num_features());
  Vector y(n);
  for (int i = 0; i < n; ++i) {
    int race = rng.Bernoulli(0.5) ? 1 : 0;
    double age = rng.Uniform(18.0, 70.0);
    // priors correlated with race group (proxy-bias construction).
    double priors_rate = race == 1 ? 3.5 : 2.0;
    int priors = 0;
    // Poisson via inversion.
    double l = std::exp(-priors_rate), p = rng.Uniform();
    double acc = l;
    while (p > acc && priors < 30) {
      ++priors;
      l *= priors_rate / priors;
      acc += l;
    }
    int degree = rng.Bernoulli(0.4) ? 1 : 0;
    int gender = rng.Bernoulli(0.8) ? 0 : 1;

    double z = 0.35 * priors - 0.04 * (age - 25.0) + 0.4 * degree - 0.8;
    x(i, 0) = age;
    x(i, 1) = priors;
    x(i, 2) = degree;
    x(i, 3) = gender;
    x(i, 4) = race;
    y[i] = rng.Bernoulli(Sigmoid(z)) ? 1.0 : 0.0;
  }
  return Dataset(std::move(schema), std::move(x), std::move(y));
}

Dataset MakeBlobs(int n, int d, int k, double spread, uint64_t seed) {
  XAI_CHECK_GE(k, 2);
  Rng rng(seed);
  Schema schema;
  for (int j = 0; j < d; ++j)
    schema.features.push_back(FeatureSpec::Numeric("x" + std::to_string(j)));
  schema.target_name = "blob";
  schema.task = TaskType::kClassification;

  // Blob centers on a scaled simplex-ish arrangement.
  std::vector<Vector> centers(k, Vector(d));
  for (int c = 0; c < k; ++c)
    for (int j = 0; j < d; ++j) centers[c][j] = rng.Uniform(-5.0, 5.0);

  Matrix x(n, d);
  Vector y(n);
  for (int i = 0; i < n; ++i) {
    int c = rng.UniformInt(k);
    for (int j = 0; j < d; ++j)
      x(i, j) = centers[c][j] + rng.Normal(0.0, spread);
    y[i] = c;
  }
  return Dataset(std::move(schema), std::move(x), std::move(y));
}

std::pair<Dataset, LinearGroundTruth> MakeLinearData(int n, int d,
                                                     double noise,
                                                     uint64_t seed) {
  Rng rng(seed);
  LinearGroundTruth gt;
  gt.noise_stddev = noise;
  gt.weights.resize(d);
  for (int j = 0; j < d; ++j) gt.weights[j] = rng.Uniform(-2.0, 2.0);
  gt.bias = rng.Uniform(-1.0, 1.0);

  Schema schema;
  for (int j = 0; j < d; ++j)
    schema.features.push_back(FeatureSpec::Numeric("x" + std::to_string(j)));
  schema.target_name = "y";
  schema.task = TaskType::kRegression;

  Matrix x(n, d);
  Vector y(n);
  for (int i = 0; i < n; ++i) {
    double z = gt.bias;
    for (int j = 0; j < d; ++j) {
      x(i, j) = rng.Normal();
      z += gt.weights[j] * x(i, j);
    }
    y[i] = z + rng.Normal(0.0, noise);
  }
  return {Dataset(std::move(schema), std::move(x), std::move(y)), gt};
}

std::pair<Dataset, LinearGroundTruth> MakeLogisticData(int n, int d,
                                                       uint64_t seed) {
  Rng rng(seed);
  LinearGroundTruth gt;
  gt.weights.resize(d);
  for (int j = 0; j < d; ++j) gt.weights[j] = rng.Uniform(-2.0, 2.0);
  gt.bias = rng.Uniform(-0.5, 0.5);

  Schema schema;
  for (int j = 0; j < d; ++j)
    schema.features.push_back(FeatureSpec::Numeric("x" + std::to_string(j)));
  schema.target_name = "y";
  schema.task = TaskType::kClassification;

  Matrix x(n, d);
  Vector y(n);
  for (int i = 0; i < n; ++i) {
    double z = gt.bias;
    for (int j = 0; j < d; ++j) {
      x(i, j) = rng.Normal();
      z += gt.weights[j] * x(i, j);
    }
    y[i] = rng.Bernoulli(Sigmoid(z)) ? 1.0 : 0.0;
  }
  return {Dataset(std::move(schema), std::move(x), std::move(y)), gt};
}

std::vector<std::vector<int>> MakeTransactions(int n_txn, int n_items,
                                               int txn_len, int n_patterns,
                                               int pattern_len,
                                               uint64_t seed) {
  XAI_CHECK_GT(n_items, 0);
  Rng rng(seed);
  // Plant patterns: each is a random itemset; transactions draw 1-2 patterns
  // plus random noise items, emulating the IBM Quest generator's structure.
  std::vector<std::vector<int>> patterns(n_patterns);
  for (auto& p : patterns) {
    int len = std::max(1, pattern_len + rng.UniformInt(-1, 2));
    p = rng.SampleWithoutReplacement(n_items, std::min(len, n_items));
    std::sort(p.begin(), p.end());
  }
  std::vector<std::vector<int>> txns(n_txn);
  for (auto& t : txns) {
    std::vector<bool> present(n_items, false);
    int n_pat = 1 + (rng.Bernoulli(0.3) ? 1 : 0);
    for (int q = 0; q < n_pat && n_patterns > 0; ++q) {
      const auto& p = patterns[rng.UniformInt(n_patterns)];
      for (int item : p)
        if (rng.Bernoulli(0.85)) present[item] = true;  // Pattern corruption.
    }
    int extra = std::max(0, txn_len - pattern_len + rng.UniformInt(-1, 2));
    for (int q = 0; q < extra; ++q) present[rng.UniformInt(n_items)] = true;
    for (int item = 0; item < n_items; ++item)
      if (present[item]) t.push_back(item);
  }
  return txns;
}

}  // namespace xai
