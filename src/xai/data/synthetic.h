#ifndef XAI_DATA_SYNTHETIC_H_
#define XAI_DATA_SYNTHETIC_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "xai/data/dataset.h"

namespace xai {

/// \brief Synthetic dataset generators.
///
/// The tutorial's experiments are usually run on Adult/German-credit/COMPAS;
/// those datasets are not available offline, so these generators produce
/// matched-schema synthetic equivalents with *known* generating mechanisms
/// (see DESIGN.md §4). Knowing the mechanism is a feature: tests can check
/// explanations against ground truth.

/// Credit-lending data ("loans"): 5 numeric + 3 categorical features.
///
/// Ground truth: approval is a noisy threshold on
///   0.004*(credit_score-650) + 0.8*ln(income/50) - 2.5*debt_to_income
///   + 0.04*employment_years - 1.2*[has_default=yes] + purpose_effect
/// where purpose_effect = {car:0.0, home:+0.3, education:+0.1,
/// business:-0.2}. `gender` does NOT enter the mechanism (useful for the
/// adversarial-attack and fairness experiments).
Dataset MakeLoans(int n, uint64_t seed);

/// Census-income data ("income", Adult-like): label = high income.
/// Mechanism: sigmoid of 0.03*(age-40) + 0.30*(education_num-9)
///   + 0.04*(hours_per_week-40) + 0.0004*capital_gain + occupation effect
///   + 0.5*[married].
Dataset MakeIncome(int n, uint64_t seed);

/// Recidivism data (COMPAS-like). `race` is correlated with `priors_count`
/// but does not directly enter the label mechanism — a proxy-bias setup.
Dataset MakeRecidivism(int n, uint64_t seed);

/// k isotropic Gaussian blobs in d dimensions; label = blob index.
Dataset MakeBlobs(int n, int d, int k, double spread, uint64_t seed);

/// Known ground truth of a linear regression generator.
struct LinearGroundTruth {
  Vector weights;
  double bias = 0.0;
  double noise_stddev = 0.0;
};

/// Regression data y = X w + b + N(0, noise); X ~ N(0, I). Returns the
/// dataset and the generating coefficients.
std::pair<Dataset, LinearGroundTruth> MakeLinearData(int n, int d,
                                                     double noise,
                                                     uint64_t seed);

/// Binary classification with a known logistic mechanism
/// P(y=1|x) = sigmoid(x . w + b); returns dataset and coefficients.
std::pair<Dataset, LinearGroundTruth> MakeLogisticData(int n, int d,
                                                       uint64_t seed);

/// IBM-Quest-style market-basket transactions for frequent-itemset mining:
/// `n_patterns` hidden patterns of average length `pattern_len` are planted
/// into transactions of average length `txn_len` over `n_items` items.
std::vector<std::vector<int>> MakeTransactions(int n_txn, int n_items,
                                               int txn_len, int n_patterns,
                                               int pattern_len, uint64_t seed);

}  // namespace xai

#endif  // XAI_DATA_SYNTHETIC_H_
