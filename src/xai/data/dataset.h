#ifndef XAI_DATA_DATASET_H_
#define XAI_DATA_DATASET_H_

#include <string>
#include <vector>

#include "xai/core/matrix.h"
#include "xai/core/rng.h"
#include "xai/core/status.h"

namespace xai {

/// \brief Kind of a feature column.
enum class FeatureType {
  kNumeric,      ///< Real-valued.
  kCategorical,  ///< Encoded as a category index (0-based) stored as double.
};

/// \brief Metadata for one feature column.
struct FeatureSpec {
  std::string name;
  FeatureType type = FeatureType::kNumeric;
  /// For categorical features: human-readable names of the categories; the
  /// stored value `v` refers to `categories[(int)v]`.
  std::vector<std::string> categories;

  bool is_categorical() const { return type == FeatureType::kCategorical; }
  int num_categories() const { return static_cast<int>(categories.size()); }

  static FeatureSpec Numeric(std::string name) {
    return FeatureSpec{std::move(name), FeatureType::kNumeric, {}};
  }
  static FeatureSpec Categorical(std::string name,
                                 std::vector<std::string> categories) {
    return FeatureSpec{std::move(name), FeatureType::kCategorical,
                       std::move(categories)};
  }
};

/// \brief Whether the dataset's target is a class label or a real value.
enum class TaskType { kClassification, kRegression };

/// \brief Column schema of a tabular dataset: features plus target.
struct Schema {
  std::vector<FeatureSpec> features;
  std::string target_name = "target";
  TaskType task = TaskType::kClassification;

  int num_features() const { return static_cast<int>(features.size()); }
  /// Index of the feature with the given name, or -1.
  int FeatureIndex(const std::string& name) const;
};

/// \brief In-memory tabular dataset: a feature matrix, a target vector and a
/// schema describing both.
///
/// Categorical features are stored as 0-based category indices in the feature
/// matrix; models and explainers consult the schema to treat them correctly.
class Dataset {
 public:
  Dataset() = default;
  Dataset(Schema schema, Matrix x, Vector y);

  const Schema& schema() const { return schema_; }
  const Matrix& x() const { return x_; }
  const Vector& y() const { return y_; }
  Matrix* mutable_x() { return &x_; }
  Vector* mutable_y() { return &y_; }

  int num_rows() const { return x_.rows(); }
  int num_features() const { return x_.cols(); }

  /// Feature value at (row, feature).
  double At(int row, int feature) const { return x_(row, feature); }
  /// Target value of a row.
  double Label(int row) const { return y_[row]; }
  /// Copy of a row's feature vector.
  Vector Row(int row) const { return x_.Row(row); }

  /// Human-readable rendering of a single cell ("34.5" or "married").
  std::string RenderCell(int row, int feature) const;
  /// Renders a feature value that is not necessarily stored in this dataset.
  std::string RenderValue(int feature, double value) const;

  /// Appends a row; `features` must have num_features() entries.
  void AppendRow(const Vector& features, double label);

  /// New dataset restricted to the given row indices (in order).
  Dataset Subset(const std::vector<int>& rows) const;

  /// New dataset excluding the given row indices.
  Dataset Without(const std::vector<int>& rows) const;

  /// Splits into (train, test) with `test_fraction` of rows in test,
  /// shuffled with `seed`.
  std::pair<Dataset, Dataset> TrainTestSplit(double test_fraction,
                                             uint64_t seed) const;

  /// Distinct labels present (classification).
  std::vector<double> DistinctLabels() const;

  /// Per-feature [min, max] over the rows.
  std::vector<std::pair<double, double>> FeatureRanges() const;

 private:
  Schema schema_;
  Matrix x_;
  Vector y_;
};

/// Flips the binary {0,1} labels of a random `fraction` of rows in place;
/// returns the affected row indices (sorted). Used by the data-debugging
/// experiments, which need ground-truth corrupted rows.
std::vector<int> FlipBinaryLabels(Dataset* dataset, double fraction,
                                  uint64_t seed);

}  // namespace xai

#endif  // XAI_DATA_DATASET_H_
