#include "xai/data/transform.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "xai/core/check.h"
#include "xai/core/stats.h"

namespace xai {

Standardizer Standardizer::Fit(const Dataset& dataset) {
  Standardizer s;
  int d = dataset.num_features();
  s.numeric_.resize(d);
  s.means_.resize(d, 0.0);
  s.stddevs_.resize(d, 1.0);
  for (int j = 0; j < d; ++j) {
    s.numeric_[j] = !dataset.schema().features[j].is_categorical();
    if (!s.numeric_[j]) continue;
    std::vector<double> col = dataset.x().Col(j);
    s.means_[j] = Mean(col);
    double sd = StdDev(col);
    s.stddevs_[j] = sd > 1e-12 ? sd : 1.0;
  }
  return s;
}

Dataset Standardizer::Transform(const Dataset& dataset) const {
  Matrix x = dataset.x();
  for (int i = 0; i < x.rows(); ++i) {
    for (int j = 0; j < x.cols(); ++j) {
      if (numeric_[j]) x(i, j) = (x(i, j) - means_[j]) / stddevs_[j];
    }
  }
  return Dataset(dataset.schema(), std::move(x), dataset.y());
}

void Standardizer::TransformRow(Vector* row) const {
  XAI_CHECK_EQ(row->size(), means_.size());
  for (size_t j = 0; j < row->size(); ++j)
    if (numeric_[j]) (*row)[j] = ((*row)[j] - means_[j]) / stddevs_[j];
}

void Standardizer::InverseTransformRow(Vector* row) const {
  XAI_CHECK_EQ(row->size(), means_.size());
  for (size_t j = 0; j < row->size(); ++j)
    if (numeric_[j]) (*row)[j] = (*row)[j] * stddevs_[j] + means_[j];
}

OneHotEncoder OneHotEncoder::Fit(const Schema& schema) {
  OneHotEncoder enc;
  enc.schema_ = schema;
  for (int f = 0; f < schema.num_features(); ++f) {
    const FeatureSpec& spec = schema.features[f];
    enc.offsets_.push_back(enc.encoded_width_);
    if (spec.is_categorical()) {
      for (int c = 0; c < spec.num_categories(); ++c) {
        enc.encoded_names_.push_back(spec.name + "=" + spec.categories[c]);
        enc.source_feature_.push_back(f);
      }
      enc.encoded_width_ += spec.num_categories();
    } else {
      enc.encoded_names_.push_back(spec.name);
      enc.source_feature_.push_back(f);
      enc.encoded_width_ += 1;
    }
  }
  return enc;
}

Vector OneHotEncoder::EncodeRow(const Vector& row) const {
  XAI_CHECK_EQ(static_cast<int>(row.size()), schema_.num_features());
  Vector out(encoded_width_, 0.0);
  for (int f = 0; f < schema_.num_features(); ++f) {
    const FeatureSpec& spec = schema_.features[f];
    if (spec.is_categorical()) {
      int c = static_cast<int>(row[f]);
      if (c >= 0 && c < spec.num_categories()) out[offsets_[f] + c] = 1.0;
    } else {
      out[offsets_[f]] = row[f];
    }
  }
  return out;
}

Matrix OneHotEncoder::Encode(const Dataset& dataset) const {
  Matrix out(dataset.num_rows(), encoded_width_);
  for (int i = 0; i < dataset.num_rows(); ++i) {
    Vector enc = EncodeRow(dataset.Row(i));
    out.SetRow(i, enc);
  }
  return out;
}

QuantileDiscretizer QuantileDiscretizer::Fit(const Dataset& dataset,
                                             int bins_per_feature) {
  XAI_CHECK_GE(bins_per_feature, 2);
  QuantileDiscretizer q;
  q.schema_ = dataset.schema();
  q.ranges_ = dataset.FeatureRanges();
  int d = dataset.num_features();
  q.edges_.resize(d);
  for (int j = 0; j < d; ++j) {
    if (q.schema_.features[j].is_categorical()) continue;
    std::vector<double> col = dataset.x().Col(j);
    std::vector<double> edges;
    for (int b = 1; b < bins_per_feature; ++b) {
      double e = Quantile(col, static_cast<double>(b) / bins_per_feature);
      if (edges.empty() || e > edges.back() + 1e-12) edges.push_back(e);
    }
    q.edges_[j] = std::move(edges);
  }
  return q;
}

int QuantileDiscretizer::BinOf(int feature, double value) const {
  if (schema_.features[feature].is_categorical())
    return static_cast<int>(value);
  const auto& e = edges_[feature];
  int bin = 0;
  while (bin < static_cast<int>(e.size()) && value > e[bin]) ++bin;
  return bin;
}

int QuantileDiscretizer::NumBins(int feature) const {
  if (schema_.features[feature].is_categorical())
    return schema_.features[feature].num_categories();
  return static_cast<int>(edges_[feature].size()) + 1;
}

std::string QuantileDiscretizer::DescribeBin(int feature, int bin) const {
  const FeatureSpec& spec = schema_.features[feature];
  if (spec.is_categorical()) {
    XAI_CHECK(bin >= 0 && bin < spec.num_categories());
    return spec.name + " = " + spec.categories[bin];
  }
  const auto& e = edges_[feature];
  char buf[96];
  if (bin == 0) {
    std::snprintf(buf, sizeof(buf), "%s <= %.4g", spec.name.c_str(), e[0]);
  } else if (bin == static_cast<int>(e.size())) {
    std::snprintf(buf, sizeof(buf), "%s > %.4g", spec.name.c_str(),
                  e[bin - 1]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g < %s <= %.4g", e[bin - 1],
                  spec.name.c_str(), e[bin]);
  }
  return buf;
}

std::vector<int> QuantileDiscretizer::Discretize(const Vector& row) const {
  std::vector<int> out(row.size());
  for (size_t j = 0; j < row.size(); ++j)
    out[j] = BinOf(static_cast<int>(j), row[j]);
  return out;
}

double QuantileDiscretizer::SampleFromBin(int feature, int bin,
                                          Rng* rng) const {
  const FeatureSpec& spec = schema_.features[feature];
  if (spec.is_categorical()) return bin;
  const auto& e = edges_[feature];
  double lo = bin == 0 ? ranges_[feature].first : e[bin - 1];
  double hi =
      bin == static_cast<int>(e.size()) ? ranges_[feature].second : e[bin];
  if (hi <= lo) return lo;
  return rng->Uniform(lo, hi);
}

}  // namespace xai
