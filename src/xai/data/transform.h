#ifndef XAI_DATA_TRANSFORM_H_
#define XAI_DATA_TRANSFORM_H_

#include <string>
#include <vector>

#include "xai/core/matrix.h"
#include "xai/core/status.h"
#include "xai/data/dataset.h"

namespace xai {

/// \brief Z-score standardization of the numeric features of a dataset.
/// Categorical columns pass through unchanged.
class Standardizer {
 public:
  /// Learns per-feature mean and stddev from `dataset`.
  static Standardizer Fit(const Dataset& dataset);

  /// Applies (x - mean) / stddev to numeric columns of a copy.
  Dataset Transform(const Dataset& dataset) const;
  /// Transforms a single feature vector in place.
  void TransformRow(Vector* row) const;
  /// Inverse transform of a single feature vector in place.
  void InverseTransformRow(Vector* row) const;

  const Vector& means() const { return means_; }
  const Vector& stddevs() const { return stddevs_; }

 private:
  std::vector<bool> numeric_;
  Vector means_;
  Vector stddevs_;
};

/// \brief One-hot encoding of categorical features, producing an all-numeric
/// design matrix for linear models / distance computations.
class OneHotEncoder {
 public:
  /// Learns the encoding layout from a schema.
  static OneHotEncoder Fit(const Schema& schema);

  /// Encoded width (numerics + sum of category counts).
  int encoded_width() const { return encoded_width_; }
  /// Names of the encoded columns ("age", "purpose=car", ...).
  const std::vector<std::string>& encoded_names() const {
    return encoded_names_;
  }
  /// Source feature index of each encoded column.
  const std::vector<int>& source_feature() const { return source_feature_; }

  /// Encodes one raw feature vector.
  Vector EncodeRow(const Vector& row) const;
  /// Encodes a whole dataset's feature matrix.
  Matrix Encode(const Dataset& dataset) const;

 private:
  Schema schema_;
  int encoded_width_ = 0;
  std::vector<std::string> encoded_names_;
  std::vector<int> source_feature_;
  std::vector<int> offsets_;  // Start column for each source feature.
};

/// \brief Equal-frequency (quantile) discretizer for numeric features.
///
/// Produces the interpretable representation used by LIME, Anchors, decision
/// sets and sufficient reasons: each numeric feature is mapped to a small
/// number of bins with human-readable descriptions ("age <= 28.0",
/// "28.0 < age <= 45.0", ...). Categorical features map to their category
/// index unchanged.
class QuantileDiscretizer {
 public:
  /// Learns bin edges (quantiles) for each numeric feature.
  static QuantileDiscretizer Fit(const Dataset& dataset, int bins_per_feature);

  /// Bin index of a feature value.
  int BinOf(int feature, double value) const;
  /// Number of bins of a feature (categoricals: number of categories).
  int NumBins(int feature) const;
  /// Human-readable description of a bin ("age <= 28.0", "purpose = car").
  std::string DescribeBin(int feature, int bin) const;
  /// Discretizes a raw row into bin indices.
  std::vector<int> Discretize(const Vector& row) const;
  /// Samples a raw value uniformly from within the given bin (numeric) or
  /// returns the category index (categorical); requires the fitted ranges.
  double SampleFromBin(int feature, int bin, Rng* rng) const;

  const Schema& schema() const { return schema_; }

 private:
  Schema schema_;
  /// Bin edges per feature (empty for categoricals). k edges -> k+1 bins.
  std::vector<std::vector<double>> edges_;
  /// Observed [min,max] per feature, for sampling from edge bins.
  std::vector<std::pair<double, double>> ranges_;
};

}  // namespace xai

#endif  // XAI_DATA_TRANSFORM_H_
