#ifndef XAI_DATA_CSV_H_
#define XAI_DATA_CSV_H_

#include <string>

#include "xai/core/status.h"
#include "xai/data/dataset.h"

namespace xai {

/// \brief Options controlling CSV parsing.
struct CsvOptions {
  char delimiter = ',';
  /// Name of the target column; defaults to the last column when empty.
  std::string target_column;
  /// Columns whose values should be treated as categorical even if they
  /// parse as numbers.
  std::vector<std::string> categorical_columns;
  /// Target handling: classification targets are label-encoded.
  TaskType task = TaskType::kClassification;
};

/// Parses CSV text (first line = header) into a Dataset. Non-numeric columns
/// are label-encoded as categorical features; the mapping is recorded in the
/// schema.
Result<Dataset> ReadCsvString(const std::string& text,
                              const CsvOptions& options = {});

/// Reads a CSV file from disk.
Result<Dataset> ReadCsvFile(const std::string& path,
                            const CsvOptions& options = {});

/// Serializes a dataset to CSV text (header + rows; categorical values are
/// written as their category names).
std::string WriteCsvString(const Dataset& dataset, char delimiter = ',');

/// Writes a dataset to a CSV file.
Status WriteCsvFile(const Dataset& dataset, const std::string& path,
                    char delimiter = ',');

}  // namespace xai

#endif  // XAI_DATA_CSV_H_
