#include "xai/dbx/shared_scan.h"

#include <algorithm>
#include <utility>

#include "xai/relational/agg_kernels.h"

namespace xai {
namespace {

using rel::ProvExpr;
using rel::ProvExprPtr;

/// Partial-evaluation result for one DAG node: either a compile-time
/// constant (exogenous-only subtrees fold to true; Zero folds to false)
/// or a program slot.
struct PartialValue {
  bool is_const = false;
  bool const_value = false;
  int slot = -1;

  static PartialValue Const(bool v) { return {true, v, -1}; }
  static PartialValue Slot(int s) { return {false, false, s}; }
};

}  // namespace

CompiledLineage CompiledLineage::Compile(const ProvExprPtr& lineage,
                                         const std::vector<int>& endogenous) {
  CompiledLineage out;
  // First occurrence wins, matching the linear scan in the naive path.
  std::unordered_map<int, int> bit_of;
  for (size_t i = 0; i < endogenous.size(); ++i)
    bit_of.emplace(endogenous[i], static_cast<int>(i));

  // Memoized postorder walk over the shared DAG (annotations reuse
  // subtrees heavily — PlusAll trees share base variables).
  std::unordered_map<const ProvExpr*, PartialValue> memo;
  std::unordered_map<int, int> var_slot;  // bit -> emitted kVar slot.

  std::function<PartialValue(const ProvExpr&)> walk =
      [&](const ProvExpr& e) -> PartialValue {
    auto found = memo.find(&e);
    if (found != memo.end()) return found->second;
    PartialValue pv;
    switch (e.kind()) {
      case ProvExpr::Kind::kZero:
        pv = PartialValue::Const(false);
        break;
      case ProvExpr::Kind::kOne:
        pv = PartialValue::Const(true);
        break;
      case ProvExpr::Kind::kBase: {
        auto it = bit_of.find(e.base_id());
        if (it == bit_of.end()) {
          pv = PartialValue::Const(true);  // Exogenous: always present.
        } else {
          auto [vs, inserted] =
              var_slot.try_emplace(it->second, static_cast<int>(
                                                   out.nodes_.size()));
          if (inserted) {
            Node n;
            n.op = Node::Op::kVar;
            n.bit = it->second;
            out.nodes_.push_back(std::move(n));
          }
          pv = PartialValue::Slot(vs->second);
        }
        break;
      }
      case ProvExpr::Kind::kPlus:
      case ProvExpr::Kind::kTimes: {
        const bool is_plus = e.kind() == ProvExpr::Kind::kPlus;
        const Node::Op op = is_plus ? Node::Op::kOr : Node::Op::kAnd;
        // The absorbing constant (true for OR, false for AND) decides the
        // whole node; the neutral constant drops out. Children with the
        // same operator splice their args in (associativity): the deep
        // binary PlusAll trees the operators build flatten into one wide
        // node, which then dedups by idempotence. Spliced children may go
        // dead; the DCE pass below drops them.
        bool absorbed = false;
        std::vector<int> args;
        for (const ProvExprPtr& child : e.children()) {
          const PartialValue c = walk(*child);
          if (c.is_const) {
            if (c.const_value == is_plus) absorbed = true;
          } else if (out.nodes_[c.slot].op == op) {
            const std::vector<int>& inner = out.nodes_[c.slot].args;
            args.insert(args.end(), inner.begin(), inner.end());
          } else {
            args.push_back(c.slot);
          }
        }
        std::sort(args.begin(), args.end());
        args.erase(std::unique(args.begin(), args.end()), args.end());
        if (absorbed) {
          pv = PartialValue::Const(is_plus);
        } else if (args.empty()) {
          pv = PartialValue::Const(!is_plus);
        } else if (args.size() == 1) {
          pv = PartialValue::Slot(args[0]);
        } else {
          Node n;
          n.op = op;
          n.args = std::move(args);
          out.nodes_.push_back(std::move(n));
          pv = PartialValue::Slot(static_cast<int>(out.nodes_.size()) - 1);
        }
        break;
      }
    }
    memo.emplace(&e, pv);
    return pv;
  };

  const PartialValue root = walk(*lineage);
  out.root_is_const_ = root.is_const;
  out.const_result_ = root.const_value;
  out.root_slot_ = root.slot;
  if (root.is_const) {
    out.nodes_.clear();  // Nothing reachable matters.
    return out;
  }

  // Dead-code elimination: splicing and memoized sharing can leave nodes
  // no longer reachable from the root; Eval runs every program op, so
  // compact to the live subset (order-preserving, args stay postorder).
  std::vector<uint8_t> live(out.nodes_.size(), 0);
  std::vector<int> stack = {root.slot};
  while (!stack.empty()) {
    const int s = stack.back();
    stack.pop_back();
    if (live[s]) continue;
    live[s] = 1;
    for (int a : out.nodes_[s].args) stack.push_back(a);
  }
  std::vector<int> remap(out.nodes_.size(), -1);
  std::vector<Node> compact;
  compact.reserve(out.nodes_.size());
  for (size_t i = 0; i < out.nodes_.size(); ++i) {
    if (!live[i]) continue;
    remap[i] = static_cast<int>(compact.size());
    compact.push_back(std::move(out.nodes_[i]));
    for (int& a : compact.back().args) a = remap[a];
  }
  out.nodes_ = std::move(compact);
  out.root_slot_ = remap[root.slot];
  return out;
}

bool CompiledLineage::Eval(uint64_t mask, Scratch* scratch) const {
  if (root_is_const_) return const_result_;
  std::vector<uint8_t>& vals = scratch->vals;
  if (vals.size() < nodes_.size()) vals.resize(nodes_.size());
  const int n = static_cast<int>(nodes_.size());
  for (int i = 0; i < n; ++i) {
    const Node& node = nodes_[i];
    switch (node.op) {
      case Node::Op::kVar:
        vals[i] = static_cast<uint8_t>((mask >> node.bit) & 1);
        break;
      case Node::Op::kAnd: {
        uint8_t v = 1;
        for (int a : node.args) {
          if (!vals[a]) {
            v = 0;
            break;
          }
        }
        vals[i] = v;
        break;
      }
      case Node::Op::kOr: {
        uint8_t v = 0;
        for (int a : node.args) {
          if (vals[a]) {
            v = 1;
            break;
          }
        }
        vals[i] = v;
        break;
      }
    }
  }
  return vals[root_slot_] != 0;
}

uint64_t CompiledLineage::Eval64(uint64_t base_mask, Scratch* scratch) const {
  if (root_is_const_) return const_result_ ? ~0ULL : 0ULL;
  // Lane j of every word is coalition (base_mask & ~63) + j. Over a
  // 64-aligned block, mask bit b < 6 cycles with period 2^(b+1) — a fixed
  // lane constant — and bit b >= 6 is the same for all 64 lanes.
  static constexpr uint64_t kLowBitLanes[6] = {
      0xAAAAAAAAAAAAAAAAULL, 0xCCCCCCCCCCCCCCCCULL, 0xF0F0F0F0F0F0F0F0ULL,
      0xFF00FF00FF00FF00ULL, 0xFFFF0000FFFF0000ULL, 0xFFFFFFFF00000000ULL};
  std::vector<uint64_t>& vals = scratch->lanes;
  if (vals.size() < nodes_.size()) vals.resize(nodes_.size());
  const int n = static_cast<int>(nodes_.size());
  for (int i = 0; i < n; ++i) {
    const Node& node = nodes_[i];
    switch (node.op) {
      case Node::Op::kVar:
        vals[i] = node.bit < 6 ? kLowBitLanes[node.bit]
                  : ((base_mask >> node.bit) & 1) ? ~0ULL
                                                  : 0ULL;
        break;
      case Node::Op::kAnd: {
        uint64_t v = ~0ULL;
        for (int a : node.args) v &= vals[a];
        vals[i] = v;
        break;
      }
      case Node::Op::kOr: {
        uint64_t v = 0;
        for (int a : node.args) v |= vals[a];
        vals[i] = v;
        break;
      }
    }
  }
  return vals[root_slot_];
}

bool CompiledLineage::IsConst(bool* value) const {
  if (!root_is_const_) return false;
  *value = const_result_;
  return true;
}

bool CompiledLineage::IsSingleVar(int* bit) const {
  if (root_is_const_ || nodes_[root_slot_].op != Node::Op::kVar) return false;
  *bit = nodes_[root_slot_].bit;
  return true;
}

Result<SharedScanAggregate> SharedScanAggregate::Build(
    const rel::Relation& rows, rel::AggFn fn, int agg_column,
    const std::vector<int>& endogenous) {
  if (fn != rel::AggFn::kCount &&
      (agg_column < 0 || agg_column >= rows.num_columns()))
    return Status::OutOfRange("aggregate column out of range");
  SharedScanAggregate s;
  s.fn_ = fn;
  for (size_t i = 0; i < endogenous.size(); ++i)
    s.bit_of_.emplace(endogenous[i], static_cast<int>(i));

  const int n = rows.num_tuples();
  s.values_.reserve(n);
  s.presence_.reserve(n);
  s.detail_.reserve(n);
  for (int i = 0; i < n; ++i) {
    s.values_.push_back(fn == rel::AggFn::kCount
                            ? 1.0
                            : rows.tuple(i)[agg_column].AsDouble());
    CompiledLineage compiled =
        CompiledLineage::Compile(rows.annotation(i), endogenous);
    bool cval = false;
    int bit = -1;
    if (compiled.IsConst(&cval)) {
      s.presence_.push_back(cval ? Presence::kAlways : Presence::kNever);
      s.detail_.push_back(0);
    } else if (compiled.IsSingleVar(&bit)) {
      s.presence_.push_back(Presence::kVar);
      s.detail_.push_back(bit);
    } else {
      s.presence_.push_back(Presence::kProgram);
      s.detail_.push_back(static_cast<int32_t>(s.programs_.size()));
      s.programs_.push_back(std::move(compiled));
    }
  }
  s.gather_.reserve(n);
  return s;
}

double SharedScanAggregate::Eval(uint64_t mask) {
  gather_.clear();
  const int64_t n = num_rows();
  for (int64_t i = 0; i < n; ++i) {
    bool present = false;
    switch (presence_[i]) {
      case Presence::kAlways:
        present = true;
        break;
      case Presence::kNever:
        present = false;
        break;
      case Presence::kVar:
        present = (mask >> detail_[i]) & 1;
        break;
      case Presence::kProgram:
        present = programs_[detail_[i]].Eval(mask, &scratch_);
        break;
    }
    if (present) gather_.push_back(values_[i]);
  }
  const int64_t len = static_cast<int64_t>(gather_.size());
  switch (fn_) {
    case rel::AggFn::kCount:
      return static_cast<double>(len);
    case rel::AggFn::kSum:
      return rel::CanonicalSum(gather_.data(), len);
    case rel::AggFn::kAvg:
      return len ? rel::CanonicalSum(gather_.data(), len) / len : 0.0;
    case rel::AggFn::kMin:
      return rel::CanonicalMin(gather_.data(), len);
    case rel::AggFn::kMax:
      return rel::CanonicalMax(gather_.data(), len);
  }
  return 0.0;
}

std::function<double(const std::vector<int>&)>
SharedScanAggregate::AsQueryValue() {
  return [this](const std::vector<int>& present) {
    uint64_t mask = 0;
    for (int id : present) {
      auto it = bit_of_.find(id);
      if (it != bit_of_.end()) mask |= 1ULL << it->second;
    }
    return Eval(mask);
  };
}

}  // namespace xai
