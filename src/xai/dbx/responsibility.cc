#include "xai/dbx/responsibility.h"

#include "xai/core/combinatorics.h"
#include "xai/dbx/shared_scan.h"

namespace xai {

Result<ResponsibilityResult> TupleResponsibility(
    const rel::ProvExprPtr& lineage, const std::vector<int>& endogenous,
    int max_contingency_size) {
  int n = static_cast<int>(endogenous.size());
  if (n == 0) return Status::InvalidArgument("no endogenous tuples");
  if (n > 20)
    return Status::Unimplemented(
        "responsibility search limited to 20 endogenous tuples");

  const CompiledLineage compiled = CompiledLineage::Compile(lineage,
                                                            endogenous);
  CompiledLineage::Scratch scratch;

  // holds(removed_mask): does the answer hold when the endogenous tuples in
  // the mask are removed (all others present)? Presence is the complement
  // of removal, so the compiled program evaluates the inverted mask (bits
  // beyond n are ignored by the program).
  auto holds = [&](uint64_t removed_mask) {
    return compiled.Eval(~removed_mask, &scratch);
  };

  ResponsibilityResult result;
  if (!holds(0)) {
    // The answer does not hold at all: nothing is responsible.
    for (int id : endogenous) result.responsibility[id] = 0.0;
    return result;
  }

  for (int t = 0; t < n; ++t) {
    uint64_t t_bit = 1ULL << t;
    double responsibility = 0.0;
    std::vector<int> best_contingency;
    bool found = false;
    // BFS over contingency sizes: smallest Gamma first.
    for (int size = 0; size <= max_contingency_size && !found; ++size) {
      // Enumerate subsets of the other tuples of this size.
      std::vector<int> others;
      for (int i = 0; i < n; ++i)
        if (i != t) others.push_back(i);
      int m = static_cast<int>(others.size());
      if (size > m) break;
      std::vector<int> idx(size);
      for (int i = 0; i < size; ++i) idx[i] = i;
      bool more = true;
      while (more) {
        uint64_t gamma = 0;
        for (int i : idx) gamma |= 1ULL << others[i];
        if (holds(gamma) && !holds(gamma | t_bit)) {
          responsibility = 1.0 / (1.0 + size);
          for (int i : idx) best_contingency.push_back(endogenous[others[i]]);
          found = true;
          break;
        }
        // Next combination.
        if (size == 0) break;
        int i = size - 1;
        while (i >= 0 && idx[i] == m - size + i) --i;
        if (i < 0) {
          more = false;
        } else {
          ++idx[i];
          for (int j = i + 1; j < size; ++j) idx[j] = idx[j - 1] + 1;
        }
      }
    }
    result.responsibility[endogenous[t]] = responsibility;
    result.contingency[endogenous[t]] = best_contingency;
  }
  return result;
}

}  // namespace xai
