#ifndef XAI_DBX_QUERY_EXPLANATIONS_H_
#define XAI_DBX_QUERY_EXPLANATIONS_H_

#include <functional>
#include <string>
#include <vector>

#include "xai/core/status.h"
#include "xai/relational/relation.h"

namespace xai {

/// \brief Intervention-based explanations for aggregate query answers
/// (Roy & Suciu 2014 / Meliou et al., cited in §3 "Explaining database
/// query results has been an active area of research"): an explanation is a
/// *predicate* over the input tuples; its score is how much the query
/// answer changes when the tuples satisfying the predicate are removed
/// (the intervention).
struct PredicateExplanation {
  /// Conjunction of (column, value) equality predicates (1 or 2 terms).
  std::vector<std::pair<int, rel::Value>> predicate;
  /// Query answer on the full input.
  double original = 0.0;
  /// Query answer after removing tuples matching the predicate.
  double after_intervention = 0.0;
  /// original - after_intervention: positive means the matched tuples push
  /// the answer up.
  double effect = 0.0;
  /// How many tuples the predicate matches.
  int support = 0;

  std::string ToString(const rel::Relation& relation) const;
};

struct QueryExplanationConfig {
  /// Also score conjunctions of two predicates on different columns.
  bool include_pairs = false;
  /// Keep only the top_k explanations by |effect|; 0 = all.
  int top_k = 10;
  /// Skip predicates matching fewer tuples than this.
  int min_support = 1;
};

/// Scores every candidate equality predicate over `candidate_columns`
/// (each distinct value, optionally pairs across columns) by re-evaluating
/// the numeric `query` on the input with matching tuples removed. Returns
/// explanations sorted by |effect| descending.
Result<std::vector<PredicateExplanation>> ExplainAggregateAnswer(
    const rel::Relation& input,
    const std::function<double(const rel::Relation&)>& query,
    const std::vector<int>& candidate_columns,
    const QueryExplanationConfig& config = QueryExplanationConfig());

}  // namespace xai

#endif  // XAI_DBX_QUERY_EXPLANATIONS_H_
