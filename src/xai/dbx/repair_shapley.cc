#include "xai/dbx/repair_shapley.h"

#include <algorithm>
#include <set>

namespace xai {
namespace {

Status ValidateColumns(const rel::Relation& relation,
                       const std::vector<int>& columns) {
  if (columns.empty())
    return Status::InvalidArgument("FD side must name at least one column");
  for (int c : columns)
    if (c < 0 || c >= relation.num_columns())
      return Status::OutOfRange("FD column out of range");
  return Status::OK();
}

bool Agree(const rel::Tuple& a, const rel::Tuple& b,
           const std::vector<int>& columns) {
  for (int c : columns)
    if (!(a[c] == b[c])) return false;
  return true;
}

}  // namespace

Result<std::vector<FdViolation>> FindFdViolations(
    const rel::Relation& relation, const std::vector<int>& lhs,
    const std::vector<int>& rhs) {
  XAI_RETURN_NOT_OK(ValidateColumns(relation, lhs));
  XAI_RETURN_NOT_OK(ValidateColumns(relation, rhs));
  std::vector<FdViolation> violations;
  int n = relation.num_tuples();
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (Agree(relation.tuple(a), relation.tuple(b), lhs) &&
          !Agree(relation.tuple(a), relation.tuple(b), rhs)) {
        violations.push_back({a, b});
      }
    }
  }
  return violations;
}

Result<std::map<int, double>> RepairShapley(const rel::Relation& relation,
                                            const std::vector<int>& lhs,
                                            const std::vector<int>& rhs) {
  XAI_ASSIGN_OR_RETURN(std::vector<FdViolation> violations,
                       FindFdViolations(relation, lhs, rhs));
  std::map<int, double> values;
  for (int t = 0; t < relation.num_tuples(); ++t) values[t] = 0.0;
  // Each violating pair's unit of inconsistency splits evenly between its
  // two (symmetric) endpoints.
  for (const FdViolation& v : violations) {
    values[v.tuple_a] += 0.5;
    values[v.tuple_b] += 0.5;
  }
  return values;
}

Result<std::vector<int>> GreedyRepair(const rel::Relation& relation,
                                      const std::vector<int>& lhs,
                                      const std::vector<int>& rhs) {
  XAI_ASSIGN_OR_RETURN(std::vector<FdViolation> violations,
                       FindFdViolations(relation, lhs, rhs));
  std::vector<int> removed;
  std::set<int> removed_set;
  while (true) {
    // Count remaining violations per tuple.
    std::map<int, int> degree;
    int remaining = 0;
    for (const FdViolation& v : violations) {
      if (removed_set.count(v.tuple_a) || removed_set.count(v.tuple_b))
        continue;
      ++degree[v.tuple_a];
      ++degree[v.tuple_b];
      ++remaining;
    }
    if (remaining == 0) break;
    int best = -1, best_degree = -1;
    for (const auto& [tuple, deg] : degree) {
      if (deg > best_degree) {
        best_degree = deg;
        best = tuple;
      }
    }
    removed.push_back(best);
    removed_set.insert(best);
  }
  return removed;
}

}  // namespace xai
