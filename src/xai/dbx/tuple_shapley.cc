#include "xai/dbx/tuple_shapley.h"

#include <algorithm>

#include "xai/core/combinatorics.h"
#include "xai/dbx/shared_scan.h"

namespace xai {

Result<TupleShapleyResult> BooleanQueryTupleShapley(
    const rel::ProvExprPtr& lineage, const std::vector<int>& endogenous,
    const TupleShapleyConfig& config) {
  int n = static_cast<int>(endogenous.size());
  if (n == 0) return Status::InvalidArgument("no endogenous tuples");
  if (n > 63)
    return Status::Unimplemented("more than 63 endogenous tuples");

  // One compilation replaces the per-evaluation tree walk (which paid a
  // set lookup plus a linear endogenous scan per lineage node); every
  // coalition evaluation is then a pass over the residual AND/OR program.
  const CompiledLineage compiled = CompiledLineage::Compile(lineage,
                                                            endogenous);
  CompiledLineage::Scratch scratch;

  TupleShapleyResult result;
  auto value_of_mask = [&](uint64_t mask) {
    ++result.game_evaluations;
    return compiled.Eval(mask, &scratch) ? 1.0 : 0.0;
  };

  if (n <= config.exact_limit && n <= 24) {
    // Exact enumeration visits every coalition, so precompute all 2^n
    // values bit-parallel — Eval64 does 64 consecutive masks per program
    // pass — and serve ShapleyOfSetFunction from the bit table.
    const uint64_t total = 1ULL << n;
    std::vector<uint64_t> table((total + 63) / 64);
    for (uint64_t base = 0; base < total; base += 64)
      table[base >> 6] = compiled.Eval64(base, &scratch);
    auto table_value = [&](uint64_t mask) {
      ++result.game_evaluations;
      return static_cast<double>((table[mask >> 6] >> (mask & 63)) & 1);
    };
    std::vector<double> phi = ShapleyOfSetFunction(n, table_value);
    for (int i = 0; i < n; ++i) result.values[endogenous[i]] = phi[i];
    result.exact = true;
    return result;
  }

  // Permutation sampling.
  Rng rng(config.seed);
  std::vector<double> acc(n, 0.0);
  for (int p = 0; p < config.permutations; ++p) {
    std::vector<int> perm = rng.Permutation(n);
    uint64_t mask = 0;
    double prev = value_of_mask(0);
    for (int i : perm) {
      mask |= 1ULL << i;
      double cur = value_of_mask(mask);
      acc[i] += cur - prev;
      prev = cur;
    }
  }
  for (int i = 0; i < n; ++i)
    result.values[endogenous[i]] = acc[i] / config.permutations;
  result.exact = false;
  return result;
}

Result<TupleShapleyResult> NumericQueryTupleShapley(
    const std::function<double(const std::vector<int>& present)>& query_value,
    const std::vector<int>& endogenous, const TupleShapleyConfig& config) {
  int n = static_cast<int>(endogenous.size());
  if (n == 0) return Status::InvalidArgument("no endogenous tuples");
  if (n > 63)
    return Status::Unimplemented("more than 63 endogenous tuples");
  TupleShapleyResult result;

  auto value_of_mask = [&](uint64_t mask) {
    ++result.game_evaluations;
    std::vector<int> present;
    for (int i = 0; i < n; ++i)
      if (mask & (1ULL << i)) present.push_back(endogenous[i]);
    return query_value(present);
  };

  if (n <= config.exact_limit && n <= 24) {
    std::vector<double> phi = ShapleyOfSetFunction(n, value_of_mask);
    for (int i = 0; i < n; ++i) result.values[endogenous[i]] = phi[i];
    result.exact = true;
    return result;
  }

  Rng rng(config.seed);
  std::vector<double> acc(n, 0.0);
  for (int p = 0; p < config.permutations; ++p) {
    std::vector<int> perm = rng.Permutation(n);
    uint64_t mask = 0;
    double prev = value_of_mask(0);
    for (int i : perm) {
      mask |= 1ULL << i;
      double cur = value_of_mask(mask);
      acc[i] += cur - prev;
      prev = cur;
    }
  }
  for (int i = 0; i < n; ++i)
    result.values[endogenous[i]] = acc[i] / config.permutations;
  result.exact = false;
  return result;
}

}  // namespace xai
