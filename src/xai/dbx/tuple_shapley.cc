#include "xai/dbx/tuple_shapley.h"

#include <algorithm>
#include <set>

#include "xai/core/combinatorics.h"

namespace xai {

Result<TupleShapleyResult> BooleanQueryTupleShapley(
    const rel::ProvExprPtr& lineage, const std::vector<int>& endogenous,
    const TupleShapleyConfig& config) {
  int n = static_cast<int>(endogenous.size());
  if (n == 0) return Status::InvalidArgument("no endogenous tuples");
  if (n > 63)
    return Status::Unimplemented("more than 63 endogenous tuples");
  std::set<int> endo_set(endogenous.begin(), endogenous.end());

  TupleShapleyResult result;
  auto value_of_mask = [&](uint64_t mask) {
    ++result.game_evaluations;
    auto present = [&](int id) {
      if (!endo_set.count(id)) return true;  // Exogenous: always present.
      for (int i = 0; i < n; ++i)
        if (endogenous[i] == id) return (mask & (1ULL << i)) != 0;
      return false;
    };
    return lineage->EvalBool(present) ? 1.0 : 0.0;
  };

  if (n <= config.exact_limit && n <= 24) {
    std::vector<double> phi = ShapleyOfSetFunction(n, value_of_mask);
    for (int i = 0; i < n; ++i) result.values[endogenous[i]] = phi[i];
    result.exact = true;
    return result;
  }

  // Permutation sampling.
  Rng rng(config.seed);
  std::vector<double> acc(n, 0.0);
  for (int p = 0; p < config.permutations; ++p) {
    std::vector<int> perm = rng.Permutation(n);
    uint64_t mask = 0;
    double prev = value_of_mask(0);
    for (int i : perm) {
      mask |= 1ULL << i;
      double cur = value_of_mask(mask);
      acc[i] += cur - prev;
      prev = cur;
    }
  }
  for (int i = 0; i < n; ++i)
    result.values[endogenous[i]] = acc[i] / config.permutations;
  result.exact = false;
  return result;
}

Result<TupleShapleyResult> NumericQueryTupleShapley(
    const std::function<double(const std::vector<int>& present)>& query_value,
    const std::vector<int>& endogenous, const TupleShapleyConfig& config) {
  int n = static_cast<int>(endogenous.size());
  if (n == 0) return Status::InvalidArgument("no endogenous tuples");
  if (n > 63)
    return Status::Unimplemented("more than 63 endogenous tuples");
  TupleShapleyResult result;

  auto value_of_mask = [&](uint64_t mask) {
    ++result.game_evaluations;
    std::vector<int> present;
    for (int i = 0; i < n; ++i)
      if (mask & (1ULL << i)) present.push_back(endogenous[i]);
    return query_value(present);
  };

  if (n <= config.exact_limit && n <= 24) {
    std::vector<double> phi = ShapleyOfSetFunction(n, value_of_mask);
    for (int i = 0; i < n; ++i) result.values[endogenous[i]] = phi[i];
    result.exact = true;
    return result;
  }

  Rng rng(config.seed);
  std::vector<double> acc(n, 0.0);
  for (int p = 0; p < config.permutations; ++p) {
    std::vector<int> perm = rng.Permutation(n);
    uint64_t mask = 0;
    double prev = value_of_mask(0);
    for (int i : perm) {
      mask |= 1ULL << i;
      double cur = value_of_mask(mask);
      acc[i] += cur - prev;
      prev = cur;
    }
  }
  for (int i = 0; i < n; ++i)
    result.values[endogenous[i]] = acc[i] / config.permutations;
  result.exact = false;
  return result;
}

}  // namespace xai
