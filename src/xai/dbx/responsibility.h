#ifndef XAI_DBX_RESPONSIBILITY_H_
#define XAI_DBX_RESPONSIBILITY_H_

#include <map>
#include <vector>

#include "xai/core/status.h"
#include "xai/relational/provenance.h"

namespace xai {

/// \brief Causal responsibility of tuples for query answers (Meliou et al.
/// 2010 "WHY SO?", §3 "Explanations in Databases").
///
/// An endogenous tuple t is a *counterfactual cause* of a (boolean) answer
/// if removing t alone removes the answer; it is an *actual cause* if some
/// contingency set Gamma of endogenous tuples exists such that after
/// removing Gamma the answer still holds but additionally removing t removes
/// it. Responsibility = 1 / (1 + |smallest such Gamma|); 0 if t is not a
/// cause.
struct ResponsibilityResult {
  /// Per endogenous tuple id: responsibility in [0, 1].
  std::map<int, double> responsibility;
  /// The minimum contingency set found per tuple (empty for counterfactual
  /// causes; meaningless when responsibility is 0).
  std::map<int, std::vector<int>> contingency;
};

/// Exact responsibility by subset search over contingency sets (endogenous
/// count <= 20; the problem is NP-hard in general, §3's point exactly).
Result<ResponsibilityResult> TupleResponsibility(
    const rel::ProvExprPtr& lineage, const std::vector<int>& endogenous,
    int max_contingency_size = 6);

}  // namespace xai

#endif  // XAI_DBX_RESPONSIBILITY_H_
