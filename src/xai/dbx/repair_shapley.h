#ifndef XAI_DBX_REPAIR_SHAPLEY_H_
#define XAI_DBX_REPAIR_SHAPLEY_H_

#include <map>
#include <vector>

#include "xai/core/status.h"
#include "xai/relational/relation.h"

namespace xai {

/// \brief Shapley-value explanations for data repairs (Deutch, Frost, Gilad
/// & Sheffer 2021, cited in §3 "Explanations in Databases"): quantify how
/// much each tuple contributes to the inconsistency of a relation with
/// respect to a functional dependency, and use the ranking to drive repairs.

/// A violating pair of tuple indices (agree on the FD's LHS, differ on its
/// RHS).
struct FdViolation {
  int tuple_a = 0;
  int tuple_b = 0;
};

/// All violations of the FD lhs -> rhs (column index lists).
Result<std::vector<FdViolation>> FindFdViolations(
    const rel::Relation& relation, const std::vector<int>& lhs,
    const std::vector<int>& rhs);

/// Shapley value of each tuple for the inconsistency measure
/// v(S) = #violating pairs within S. Because the game is a sum of pair
/// indicators, the Shapley value has the closed form
///   phi_t = (1/2) * #violations involving t,
/// (verified against generic exact Shapley in the tests). Keyed by tuple
/// index within the relation.
Result<std::map<int, double>> RepairShapley(const rel::Relation& relation,
                                            const std::vector<int>& lhs,
                                            const std::vector<int>& rhs);

/// Greedy Shapley-guided repair: repeatedly delete the tuple with the most
/// remaining violations until the FD holds; returns the deletion order.
/// (A 2-approximation of the minimum deletion repair, which is NP-hard.)
Result<std::vector<int>> GreedyRepair(const rel::Relation& relation,
                                      const std::vector<int>& lhs,
                                      const std::vector<int>& rhs);

}  // namespace xai

#endif  // XAI_DBX_REPAIR_SHAPLEY_H_
