#ifndef XAI_DBX_TUPLE_SHAPLEY_H_
#define XAI_DBX_TUPLE_SHAPLEY_H_

#include <functional>
#include <map>
#include <vector>

#include "xai/core/rng.h"
#include "xai/core/status.h"
#include "xai/relational/provenance.h"

namespace xai {

/// \brief Shapley values of tuples in query answering (Livshits, Bertossi,
/// Kimelfeld & Sebag 2021, §3 "Explanations in Databases"): the database is
/// split into *exogenous* tuples (always present) and *endogenous* tuples
/// (the players); the Shapley value of an endogenous tuple measures its
/// contribution to a query answer.
///
/// Games are expressed over the boolean provenance of the answer: a
/// coalition S of endogenous tuples is "present" together with all exogenous
/// tuples, and the value is the query outcome on that sub-instance.

/// Configuration for the estimators.
struct TupleShapleyConfig {
  /// Exact computation is refused above this many endogenous tuples.
  int exact_limit = 20;
  /// Permutation samples for the Monte-Carlo estimator.
  int permutations = 2000;
  uint64_t seed = 31;
};

/// Result values are keyed by endogenous tuple id.
struct TupleShapleyResult {
  std::map<int, double> values;
  int game_evaluations = 0;
  bool exact = false;
};

/// Shapley values for a *boolean* query: v(S) = 1 iff the answer's lineage
/// is derivable from S plus the exogenous tuples. Exact (subset
/// enumeration) when |endogenous| <= exact_limit.
Result<TupleShapleyResult> BooleanQueryTupleShapley(
    const rel::ProvExprPtr& lineage, const std::vector<int>& endogenous,
    const TupleShapleyConfig& config = {});

/// Shapley values for a general numeric query given as a callback:
/// `query_value(present)` recomputes the answer when endogenous tuple id e
/// is present iff present.count(e) > 0. Used for aggregate queries (e.g.
/// COUNT of qualifying rows). Monte-Carlo permutation sampling.
Result<TupleShapleyResult> NumericQueryTupleShapley(
    const std::function<double(const std::vector<int>& present)>& query_value,
    const std::vector<int>& endogenous, const TupleShapleyConfig& config = {});

}  // namespace xai

#endif  // XAI_DBX_TUPLE_SHAPLEY_H_
