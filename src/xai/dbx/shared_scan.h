#ifndef XAI_DBX_SHARED_SCAN_H_
#define XAI_DBX_SHARED_SCAN_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "xai/core/status.h"
#include "xai/relational/operators.h"
#include "xai/relational/provenance.h"
#include "xai/relational/relation.h"

namespace xai {

/// \brief Boolean lineage compiled against a fixed endogenous-tuple set.
///
/// The Shapley and responsibility analyses evaluate the same lineage under
/// thousands to millions of coalitions. The naive path re-walks the
/// ProvExpr tree per coalition with a `present(id)` callback that does a
/// set lookup plus a linear scan of the endogenous list per *node*.
/// Compile() does all of that once: exogenous variables partial-evaluate
/// to true (folding constants through the +/x structure), endogenous
/// variables resolve to bit positions in the coalition mask, and what
/// remains flattens into a postorder AND/OR program over the shared DAG.
/// Eval(mask) then costs O(remaining nodes) with no hashing, no
/// std::function, and no allocation.
///
/// Eval is exactly ProvExpr::EvalBool with
///   present(id) = id not endogenous ? true : mask bit of id,
/// where duplicate ids in `endogenous` resolve to their first bit, like
/// the linear scan they replace.
class CompiledLineage {
 public:
  /// Reusable per-evaluator buffer (one per thread when evaluating
  /// concurrently; Eval never allocates once it has grown).
  struct Scratch {
    std::vector<uint8_t> vals;
    std::vector<uint64_t> lanes;  // Eval64 per-node lane vectors.
  };

  static CompiledLineage Compile(const rel::ProvExprPtr& lineage,
                                 const std::vector<int>& endogenous);

  /// Coalition bit i = endogenous[i] present. Bits >= endogenous.size()
  /// are ignored.
  bool Eval(uint64_t mask, Scratch* scratch) const;

  /// Bit-parallel block evaluation: bit j of the result is
  /// Eval(block + j) for the 64-aligned block of masks containing
  /// `base_mask` (its low 6 bits are ignored). One pass over the program
  /// evaluates 64 consecutive coalitions — a variable's 64-lane vector is
  /// a fixed low-bit pattern (mask bits 0-5) or a broadcast of the
  /// block's bit (bits 6+), and each AND/OR is a single word op. This is
  /// what compilation buys over the interpreted tree walk for
  /// exhaustive-enumeration games (exact Shapley, responsibility).
  uint64_t Eval64(uint64_t base_mask, Scratch* scratch) const;

  /// True when the result does not depend on the mask at all (the lineage
  /// is derivable from exogenous tuples alone, or not derivable at all);
  /// `*value` receives the constant.
  bool IsConst(bool* value) const;
  /// True when the result is exactly one mask bit; `*bit` receives it.
  bool IsSingleVar(int* bit) const;

  /// Number of program ops Eval executes (0 when constant).
  int num_ops() const { return static_cast<int>(nodes_.size()); }

 private:
  struct Node {
    enum class Op : uint8_t { kVar, kAnd, kOr };
    Op op;
    int bit = -1;            // kVar: mask bit.
    std::vector<int> args;   // kAnd/kOr: earlier slots.
  };

  std::vector<Node> nodes_;
  bool root_is_const_ = true;
  bool const_result_ = false;
  int root_slot_ = -1;
};

/// \brief Shared-scan evaluator for aggregate coalition games over a query
/// result: v(S) = aggregate over the result rows whose lineage is
/// derivable from S plus the exogenous tuples.
///
/// One pass over the result relation precomputes, per row, its aggregate
/// contribution (Value::AsDouble of the aggregate column; 1.0 for COUNT)
/// and its compiled presence condition. Eval(mask) gathers the present
/// rows' values *in row order* and finalizes through the canonical
/// aggregation kernels of rel/agg_kernels.h — the same kernels
/// GroupByAggregate uses — so the value equals, bit for bit, what
/// re-running the query pipeline on the reduced sub-instance produces
/// (operators preserve relative row order under tuple removal).
///
/// This replaces the rebuild-per-coalition pattern (filter the base
/// relations, re-join, re-aggregate — O(pipeline) per coalition) with
/// O(result rows) per coalition after a single shared scan.
class SharedScanAggregate {
 public:
  /// `rows` is the materialized query result whose annotations carry the
  /// lineage. `agg_column` is ignored for kCount.
  static Result<SharedScanAggregate> Build(const rel::Relation& rows,
                                           rel::AggFn fn, int agg_column,
                                           const std::vector<int>& endogenous);

  /// Aggregate under the coalition; empty-selection aggregates are 0.0
  /// (count 0, sum 0; min/max/avg of nothing are 0 like the row path's
  /// zero-initialized group).
  double Eval(uint64_t mask);

  /// Adapter for NumericQueryTupleShapley's query_value callback: converts
  /// the present-id list back to a mask. The returned callable borrows
  /// `this` — keep the evaluator alive while it is in use.
  std::function<double(const std::vector<int>&)> AsQueryValue();

  int64_t num_rows() const { return static_cast<int64_t>(values_.size()); }

 private:
  enum class Presence : uint8_t { kAlways, kNever, kVar, kProgram };

  rel::AggFn fn_ = rel::AggFn::kCount;
  std::vector<double> values_;
  std::vector<Presence> presence_;
  std::vector<int32_t> detail_;  // kVar: bit; kProgram: programs_ index.
  std::vector<CompiledLineage> programs_;
  std::unordered_map<int, int> bit_of_;
  CompiledLineage::Scratch scratch_;
  std::vector<double> gather_;
};

}  // namespace xai

#endif  // XAI_DBX_SHARED_SCAN_H_
