#include "xai/dbx/query_explanations.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace xai {
namespace {

using rel::Relation;
using rel::Value;

// Rebuilds the relation without tuples matching the predicate conjunction.
Relation Remove(const Relation& input,
                const std::vector<std::pair<int, Value>>& predicate,
                int* removed) {
  Relation out(input.name(), input.columns());
  *removed = 0;
  for (int i = 0; i < input.num_tuples(); ++i) {
    bool matches = true;
    for (const auto& [column, value] : predicate)
      matches = matches && input.tuple(i)[column] == value;
    if (matches) {
      ++*removed;
      continue;
    }
    (void)out.Append(input.tuple(i), input.annotation(i));
  }
  return out;
}

}  // namespace

std::string PredicateExplanation::ToString(
    const rel::Relation& relation) const {
  std::ostringstream os;
  for (size_t p = 0; p < predicate.size(); ++p) {
    os << (p ? " AND " : "") << relation.columns()[predicate[p].first]
       << " = " << predicate[p].second.ToString();
  }
  char buf[120];
  std::snprintf(buf, sizeof(buf),
                "  (support %d, answer %.4g -> %.4g, effect %+.4g)",
                support, original, after_intervention, effect);
  os << buf;
  return os.str();
}

Result<std::vector<PredicateExplanation>> ExplainAggregateAnswer(
    const rel::Relation& input,
    const std::function<double(const rel::Relation&)>& query,
    const std::vector<int>& candidate_columns,
    const QueryExplanationConfig& config) {
  if (input.num_tuples() == 0)
    return Status::InvalidArgument("empty input relation");
  for (int c : candidate_columns)
    if (c < 0 || c >= input.num_columns())
      return Status::OutOfRange("candidate column out of range");
  if (candidate_columns.empty())
    return Status::InvalidArgument("no candidate columns");

  double original = query(input);

  // Distinct values per candidate column (rendered for set semantics).
  std::vector<std::vector<Value>> distinct(candidate_columns.size());
  for (size_t k = 0; k < candidate_columns.size(); ++k) {
    std::map<std::string, Value> seen;
    for (int i = 0; i < input.num_tuples(); ++i) {
      const Value& v = input.tuple(i)[candidate_columns[k]];
      seen.emplace(v.ToString(), v);
    }
    for (const auto& [key, value] : seen) distinct[k].push_back(value);
  }

  std::vector<PredicateExplanation> results;
  auto consider = [&](std::vector<std::pair<int, Value>> predicate) {
    int removed = 0;
    Relation reduced = Remove(input, predicate, &removed);
    if (removed < config.min_support || removed == input.num_tuples())
      return;
    PredicateExplanation exp;
    exp.predicate = std::move(predicate);
    exp.original = original;
    exp.after_intervention = query(reduced);
    exp.effect = original - exp.after_intervention;
    exp.support = removed;
    results.push_back(std::move(exp));
  };

  for (size_t k = 0; k < candidate_columns.size(); ++k)
    for (const Value& v : distinct[k])
      consider({{candidate_columns[k], v}});

  if (config.include_pairs) {
    for (size_t a = 0; a < candidate_columns.size(); ++a) {
      for (size_t b = a + 1; b < candidate_columns.size(); ++b) {
        for (const Value& va : distinct[a])
          for (const Value& vb : distinct[b])
            consider({{candidate_columns[a], va},
                      {candidate_columns[b], vb}});
      }
    }
  }

  std::sort(results.begin(), results.end(),
            [](const PredicateExplanation& x, const PredicateExplanation& y) {
              return std::fabs(x.effect) > std::fabs(y.effect);
            });
  if (config.top_k > 0 &&
      static_cast<int>(results.size()) > config.top_k)
    results.resize(config.top_k);
  return results;
}

}  // namespace xai
