#include "xai/pipeline/stage_attribution.h"

#include <cstdio>
#include <sstream>

#include "xai/core/combinatorics.h"
#include "xai/core/stats.h"

namespace xai {

int StageAttribution::MostHarmfulStage() const { return ArgMin(shapley); }

std::string StageAttribution::ToString() const {
  std::ostringstream os;
  for (size_t s = 0; s < shapley.size(); ++s) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "  %-28s %+.5f\n",
                  stage_names[s].c_str(), shapley[s]);
    os << buf;
  }
  return os.str();
}

Result<StageAttribution> StageShapley(
    const Pipeline& pipeline, const Dataset& input,
    const std::function<double(const Dataset&)>& quality) {
  int k = pipeline.num_stages();
  if (k == 0) return Status::InvalidArgument("pipeline has no stages");
  if (k > 16)
    return Status::InvalidArgument(
        "exact stage Shapley enumerates 2^k pipelines; k > 16 refused");

  StageAttribution result;
  for (int s = 0; s < k; ++s)
    result.stage_names.push_back(pipeline.StageName(s));

  // The value of a coalition: quality of the dataset produced by running
  // only those stages. Failures (e.g. a filter leaving no rows) score 0.
  auto value = [&](uint64_t mask) {
    ++result.pipeline_evaluations;
    std::vector<bool> enabled(k);
    for (int s = 0; s < k; ++s) enabled[s] = (mask >> s) & 1ULL;
    auto prepared = pipeline.RunWithStages(input, enabled);
    if (!prepared.ok() || prepared.ValueUnsafe().num_rows() == 0) return 0.0;
    return quality(prepared.ValueUnsafe());
  };
  result.shapley = ShapleyOfSetFunction(k, value);
  return result;
}

}  // namespace xai
