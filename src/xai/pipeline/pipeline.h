#ifndef XAI_PIPELINE_PIPELINE_H_
#define XAI_PIPELINE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "xai/core/status.h"
#include "xai/data/dataset.h"

namespace xai {

/// \brief Row-level why-provenance through a data-preparation pipeline (§3
/// "Provenance-Based Explanations": "the flow of training data points must
/// be monitored through different stages using provenance techniques").
struct RowProvenance {
  /// Origin row index in the pipeline's input dataset.
  int input_row = -1;
  /// Stage indices that modified this row's features or label.
  std::vector<int> modified_by;
};

/// \brief One stage of a data-preparation pipeline.
class PipelineOp {
 public:
  virtual ~PipelineOp() = default;
  virtual std::string name() const = 0;

  /// Transforms the dataset. `provenance` is parallel to the rows of the
  /// input and must be updated to stay parallel to the rows of the output:
  /// dropped rows remove their entry, modified rows append `stage_index` to
  /// `modified_by`.
  virtual Result<Dataset> Apply(const Dataset& input, int stage_index,
                                std::vector<RowProvenance>* provenance)
      const = 0;
};

/// \brief Output of a pipeline run: the dataset plus per-row provenance.
struct PipelineResult {
  Dataset output;
  std::vector<RowProvenance> provenance;
  std::vector<std::string> stage_names;

  /// "row 17 <- input row 203, modified by [impute_income, standardize]".
  std::string TraceRow(int output_row) const;
};

/// \brief A linear pipeline of data-preparation stages with provenance.
class Pipeline {
 public:
  void Add(std::shared_ptr<PipelineOp> op) { ops_.push_back(std::move(op)); }
  int num_stages() const { return static_cast<int>(ops_.size()); }
  std::string StageName(int i) const { return ops_[i]->name(); }

  /// Runs all stages, tracking provenance.
  Result<PipelineResult> Run(const Dataset& input) const;

  /// Runs only the enabled stages (ablation used by stage attribution).
  Result<Dataset> RunWithStages(const Dataset& input,
                                const std::vector<bool>& enabled) const;

 private:
  std::vector<std::shared_ptr<PipelineOp>> ops_;
};

}  // namespace xai

#endif  // XAI_PIPELINE_PIPELINE_H_
