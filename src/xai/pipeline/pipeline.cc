#include "xai/pipeline/pipeline.h"

#include <sstream>

namespace xai {

std::string PipelineResult::TraceRow(int output_row) const {
  std::ostringstream os;
  const RowProvenance& p = provenance[output_row];
  os << "output row " << output_row << " <- input row " << p.input_row;
  if (!p.modified_by.empty()) {
    os << ", modified by [";
    for (size_t i = 0; i < p.modified_by.size(); ++i) {
      os << (i ? ", " : "") << stage_names[p.modified_by[i]];
    }
    os << "]";
  }
  return os.str();
}

Result<PipelineResult> Pipeline::Run(const Dataset& input) const {
  PipelineResult result;
  result.output = input;
  result.provenance.resize(input.num_rows());
  for (int i = 0; i < input.num_rows(); ++i)
    result.provenance[i].input_row = i;
  for (int s = 0; s < num_stages(); ++s) {
    result.stage_names.push_back(ops_[s]->name());
    XAI_ASSIGN_OR_RETURN(
        result.output, ops_[s]->Apply(result.output, s, &result.provenance));
    if (static_cast<int>(result.provenance.size()) !=
        result.output.num_rows())
      return Status::Internal("stage " + ops_[s]->name() +
                              " broke provenance tracking");
  }
  return result;
}

Result<Dataset> Pipeline::RunWithStages(const Dataset& input,
                                        const std::vector<bool>& enabled)
    const {
  Dataset current = input;
  std::vector<RowProvenance> provenance(input.num_rows());
  for (int i = 0; i < input.num_rows(); ++i) provenance[i].input_row = i;
  for (int s = 0; s < num_stages(); ++s) {
    if (s < static_cast<int>(enabled.size()) && !enabled[s]) continue;
    XAI_ASSIGN_OR_RETURN(current, ops_[s]->Apply(current, s, &provenance));
  }
  return current;
}

}  // namespace xai
