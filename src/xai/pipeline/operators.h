#ifndef XAI_PIPELINE_OPERATORS_H_
#define XAI_PIPELINE_OPERATORS_H_

#include <functional>
#include <string>

#include "xai/pipeline/pipeline.h"

namespace xai {

/// \brief Library of concrete pipeline stages. Each stage updates row-level
/// provenance: dropped rows disappear, modified rows record the stage.

/// Keeps rows where `keep(features, label)` is true.
class FilterRowsOp : public PipelineOp {
 public:
  using Predicate = std::function<bool(const Vector&, double)>;
  FilterRowsOp(std::string name, Predicate keep)
      : name_(std::move(name)), keep_(std::move(keep)) {}
  std::string name() const override { return name_; }
  Result<Dataset> Apply(const Dataset& input, int stage_index,
                        std::vector<RowProvenance>* provenance) const override;

 private:
  std::string name_;
  Predicate keep_;
};

/// Replaces `missing_value` in one feature with the mean of the non-missing
/// values (the classic imputation stage).
class ImputeMeanOp : public PipelineOp {
 public:
  ImputeMeanOp(int feature, double missing_value)
      : feature_(feature), missing_value_(missing_value) {}
  std::string name() const override;
  Result<Dataset> Apply(const Dataset& input, int stage_index,
                        std::vector<RowProvenance>* provenance) const override;

 private:
  int feature_;
  double missing_value_;
};

/// Z-score standardization of all numeric features.
class StandardizeOp : public PipelineOp {
 public:
  std::string name() const override { return "standardize"; }
  Result<Dataset> Apply(const Dataset& input, int stage_index,
                        std::vector<RowProvenance>* provenance) const override;
};

/// Clips one feature into [lo, hi] (outlier handling).
class ClipOp : public PipelineOp {
 public:
  ClipOp(int feature, double lo, double hi)
      : feature_(feature), lo_(lo), hi_(hi) {}
  std::string name() const override;
  Result<Dataset> Apply(const Dataset& input, int stage_index,
                        std::vector<RowProvenance>* provenance) const override;

 private:
  int feature_;
  double lo_, hi_;
};

/// Applies an arbitrary per-cell transform to one feature. The workhorse
/// for injecting *buggy* stages in the provenance experiments (e.g. a unit
/// conversion applied twice).
class TransformFeatureOp : public PipelineOp {
 public:
  TransformFeatureOp(std::string name, int feature,
                     std::function<double(double)> fn)
      : name_(std::move(name)), feature_(feature), fn_(std::move(fn)) {}
  std::string name() const override { return name_; }
  Result<Dataset> Apply(const Dataset& input, int stage_index,
                        std::vector<RowProvenance>* provenance) const override;

 private:
  std::string name_;
  int feature_;
  std::function<double(double)> fn_;
};

/// Flips the binary labels of rows matching a predicate — a deliberately
/// corrupting stage for the E13 experiment.
class CorruptLabelsOp : public PipelineOp {
 public:
  using Predicate = std::function<bool(const Vector&, double)>;
  CorruptLabelsOp(std::string name, Predicate match)
      : name_(std::move(name)), match_(std::move(match)) {}
  std::string name() const override { return name_; }
  Result<Dataset> Apply(const Dataset& input, int stage_index,
                        std::vector<RowProvenance>* provenance) const override;

 private:
  std::string name_;
  Predicate match_;
};

}  // namespace xai

#endif  // XAI_PIPELINE_OPERATORS_H_
