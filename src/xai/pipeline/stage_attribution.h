#ifndef XAI_PIPELINE_STAGE_ATTRIBUTION_H_
#define XAI_PIPELINE_STAGE_ATTRIBUTION_H_

#include <functional>
#include <string>
#include <vector>

#include "xai/core/matrix.h"
#include "xai/core/status.h"
#include "xai/pipeline/pipeline.h"

namespace xai {

/// \brief Attribution of a downstream model-quality outcome to pipeline
/// stages (§3 "Provenance-Based Explanations": "generate explanations for an
/// ML model outcome in terms of the actions taken ... throughout the ML
/// pipeline").
///
/// Stages are the players of a cooperative game; the value of a stage
/// coalition S is the quality (e.g. validation accuracy of a model trained
/// on the pipeline output) when only the stages in S run. The Shapley value
/// of a stage is its fair share of the quality difference between the raw
/// and the fully-prepared data — a *negative* value flags a harmful (buggy)
/// stage.
struct StageAttribution {
  Vector shapley;
  std::vector<std::string> stage_names;
  int pipeline_evaluations = 0;

  /// Stage index with the most negative attribution (prime bug suspect).
  int MostHarmfulStage() const;
  std::string ToString() const;
};

/// Exact Shapley over stages (num_stages <= 16; 2^k pipeline runs, each
/// followed by a `quality` evaluation — typically a model retrain).
Result<StageAttribution> StageShapley(
    const Pipeline& pipeline, const Dataset& input,
    const std::function<double(const Dataset&)>& quality);

}  // namespace xai

#endif  // XAI_PIPELINE_STAGE_ATTRIBUTION_H_
