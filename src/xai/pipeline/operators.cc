#include "xai/pipeline/operators.h"

#include <algorithm>
#include <cmath>

#include "xai/core/stats.h"

namespace xai {

Result<Dataset> FilterRowsOp::Apply(
    const Dataset& input, int stage_index,
    std::vector<RowProvenance>* provenance) const {
  (void)stage_index;
  std::vector<int> keep_rows;
  std::vector<RowProvenance> new_prov;
  for (int i = 0; i < input.num_rows(); ++i) {
    if (keep_(input.Row(i), input.Label(i))) {
      keep_rows.push_back(i);
      new_prov.push_back((*provenance)[i]);
    }
  }
  *provenance = std::move(new_prov);
  return input.Subset(keep_rows);
}

std::string ImputeMeanOp::name() const {
  return "impute_mean(f" + std::to_string(feature_) + ")";
}

Result<Dataset> ImputeMeanOp::Apply(
    const Dataset& input, int stage_index,
    std::vector<RowProvenance>* provenance) const {
  if (feature_ < 0 || feature_ >= input.num_features())
    return Status::OutOfRange("impute feature out of range");
  double sum = 0.0;
  int count = 0;
  for (int i = 0; i < input.num_rows(); ++i) {
    double v = input.At(i, feature_);
    if (v != missing_value_ && !std::isnan(v)) {
      sum += v;
      ++count;
    }
  }
  double mean = count > 0 ? sum / count : 0.0;
  Dataset out = input;
  for (int i = 0; i < out.num_rows(); ++i) {
    double v = out.At(i, feature_);
    if (v == missing_value_ || std::isnan(v)) {
      (*out.mutable_x())(i, feature_) = mean;
      (*provenance)[i].modified_by.push_back(stage_index);
    }
  }
  return out;
}

Result<Dataset> StandardizeOp::Apply(
    const Dataset& input, int stage_index,
    std::vector<RowProvenance>* provenance) const {
  Dataset out = input;
  for (int j = 0; j < input.num_features(); ++j) {
    if (input.schema().features[j].is_categorical()) continue;
    std::vector<double> col = input.x().Col(j);
    double mean = Mean(col);
    double sd = StdDev(col);
    if (sd < 1e-12) sd = 1.0;
    for (int i = 0; i < out.num_rows(); ++i)
      (*out.mutable_x())(i, j) = (input.At(i, j) - mean) / sd;
  }
  for (int i = 0; i < out.num_rows(); ++i)
    (*provenance)[i].modified_by.push_back(stage_index);
  return out;
}

std::string ClipOp::name() const {
  return "clip(f" + std::to_string(feature_) + ")";
}

Result<Dataset> ClipOp::Apply(const Dataset& input, int stage_index,
                              std::vector<RowProvenance>* provenance) const {
  if (feature_ < 0 || feature_ >= input.num_features())
    return Status::OutOfRange("clip feature out of range");
  Dataset out = input;
  for (int i = 0; i < out.num_rows(); ++i) {
    double v = out.At(i, feature_);
    double clipped = std::clamp(v, lo_, hi_);
    if (clipped != v) {
      (*out.mutable_x())(i, feature_) = clipped;
      (*provenance)[i].modified_by.push_back(stage_index);
    }
  }
  return out;
}

Result<Dataset> TransformFeatureOp::Apply(
    const Dataset& input, int stage_index,
    std::vector<RowProvenance>* provenance) const {
  if (feature_ < 0 || feature_ >= input.num_features())
    return Status::OutOfRange("transform feature out of range");
  Dataset out = input;
  for (int i = 0; i < out.num_rows(); ++i) {
    double v = out.At(i, feature_);
    double t = fn_(v);
    if (t != v) {
      (*out.mutable_x())(i, feature_) = t;
      (*provenance)[i].modified_by.push_back(stage_index);
    }
  }
  return out;
}

Result<Dataset> CorruptLabelsOp::Apply(
    const Dataset& input, int stage_index,
    std::vector<RowProvenance>* provenance) const {
  Dataset out = input;
  for (int i = 0; i < out.num_rows(); ++i) {
    if (match_(input.Row(i), input.Label(i))) {
      (*out.mutable_y())[i] = 1.0 - input.Label(i);
      (*provenance)[i].modified_by.push_back(stage_index);
    }
  }
  return out;
}

}  // namespace xai
