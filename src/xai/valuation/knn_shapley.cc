#include "xai/valuation/knn_shapley.h"

#include <algorithm>
#include <numeric>

namespace xai {

Result<Vector> KnnShapley(const Dataset& train, const Dataset& valid, int k) {
  int n = train.num_rows();
  if (n == 0) return Status::InvalidArgument("empty training set");
  if (valid.num_rows() == 0)
    return Status::InvalidArgument("empty validation set");
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (train.num_features() != valid.num_features())
    return Status::InvalidArgument("feature width mismatch");

  Vector values(n, 0.0);
  std::vector<double> dist(n);
  std::vector<int> order(n);
  Vector s(n);
  for (int v = 0; v < valid.num_rows(); ++v) {
    Vector z = valid.Row(v);
    double yz = valid.Label(v);
    for (int i = 0; i < n; ++i) {
      double acc = 0.0;
      for (int j = 0; j < train.num_features(); ++j) {
        double d = train.At(i, j) - z[j];
        acc += d * d;
      }
      dist[i] = acc;
    }
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](int a, int b) { return dist[a] < dist[b]; });

    // Jia et al. Theorem 1 recursion over the sorted order (1-indexed i).
    auto match = [&](int rank) {
      return train.Label(order[rank]) == yz ? 1.0 : 0.0;
    };
    s[n - 1] = match(n - 1) / n;
    for (int i = n - 2; i >= 0; --i) {
      int rank1 = i + 1;  // 1-indexed position of alpha_i.
      s[i] = s[i + 1] + (match(i) - match(i + 1)) / k *
                            std::min<double>(k, rank1) / rank1;
    }
    for (int i = 0; i < n; ++i) values[order[i]] += s[i];
  }
  for (double& v : values) v /= valid.num_rows();
  return values;
}

}  // namespace xai
