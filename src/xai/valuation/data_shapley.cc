#include "xai/valuation/data_shapley.h"

#include <cmath>
#include <numeric>

#include "xai/core/parallel.h"
#include "xai/core/rng.h"
#include "xai/core/telemetry.h"
#include "xai/core/trace.h"

namespace xai {
namespace {

// Per-chunk accumulator for the truncated Monte-Carlo sweep, combined in
// fixed chunk order so the result is bit-identical at any thread count.
struct TmcPartial {
  Vector values;
  int utility_calls = 0;
  int64_t total_positions = 0;
  int64_t truncated_positions = 0;
};

}  // namespace

TmcResult TmcDataShapley(int num_points, const UtilityFn& utility,
                         const TmcConfig& config) {
  XAI_SPAN("tmc/sweep");
  TmcResult result;
  result.values.assign(num_points, 0.0);

  std::vector<int> all(num_points);
  std::iota(all.begin(), all.end(), 0);
  double full_utility = utility(all);
  double empty_utility = utility({});
  result.utility_calls += 2;

  // Every permutation gets its own RNG stream derived from the config seed,
  // so the sweep parallelizes over permutations (model retraining inside
  // `utility` dominates) without any shared generator state. The utility
  // must be const-reentrant: the built-in utilities train fresh models per
  // call and qualify.
  TmcPartial total = ParallelReduce(
      static_cast<int64_t>(config.max_permutations), /*grain=*/1,
      TmcPartial{Vector(num_points, 0.0), 0, 0, 0},
      [&](int64_t begin, int64_t end, int64_t) {
        TmcPartial acc{Vector(num_points, 0.0), 0, 0, 0};
        for (int64_t p = begin; p < end; ++p) {
          Rng rng(SplitSeed(config.seed, static_cast<uint64_t>(p)));
          std::vector<int> perm = rng.Permutation(num_points);
          std::vector<int> prefix;
          prefix.reserve(num_points);
          double prev = empty_utility;
          bool truncated = false;
          for (int i : perm) {
            ++acc.total_positions;
            if (truncated) {
              // Remaining marginals treated as zero.
              ++acc.truncated_positions;
              continue;
            }
            prefix.push_back(i);
            double cur = utility(prefix);
            ++acc.utility_calls;
            acc.values[i] += cur - prev;
            prev = cur;
            if (std::fabs(full_utility - cur) < config.truncation_tolerance)
              truncated = true;
          }
        }
        return acc;
      },
      [num_points](TmcPartial acc, const TmcPartial& part) {
        for (int i = 0; i < num_points; ++i) acc.values[i] += part.values[i];
        acc.utility_calls += part.utility_calls;
        acc.total_positions += part.total_positions;
        acc.truncated_positions += part.truncated_positions;
        return acc;
      });

  for (int i = 0; i < num_points; ++i)
    result.values[i] = total.values[i] / config.max_permutations;
  result.utility_calls += total.utility_calls;
  XAI_COUNTER_ADD("valuation/utility_calls", result.utility_calls);
  result.permutations_used = config.max_permutations;
  result.truncation_fraction =
      total.total_positions > 0
          ? static_cast<double>(total.truncated_positions) /
                total.total_positions
          : 0.0;
  return result;
}

}  // namespace xai
