#include "xai/valuation/data_shapley.h"

#include <cmath>
#include <numeric>

#include "xai/core/rng.h"

namespace xai {

TmcResult TmcDataShapley(int num_points, const UtilityFn& utility,
                         const TmcConfig& config) {
  Rng rng(config.seed);
  TmcResult result;
  result.values.assign(num_points, 0.0);

  std::vector<int> all(num_points);
  std::iota(all.begin(), all.end(), 0);
  double full_utility = utility(all);
  double empty_utility = utility({});
  result.utility_calls += 2;

  int total_positions = 0, truncated_positions = 0;
  for (int p = 0; p < config.max_permutations; ++p) {
    std::vector<int> perm = rng.Permutation(num_points);
    std::vector<int> prefix;
    prefix.reserve(num_points);
    double prev = empty_utility;
    bool truncated = false;
    for (int i : perm) {
      ++total_positions;
      if (truncated) {
        // Remaining marginals treated as zero.
        ++truncated_positions;
        continue;
      }
      prefix.push_back(i);
      double cur = utility(prefix);
      ++result.utility_calls;
      result.values[i] += cur - prev;
      prev = cur;
      if (std::fabs(full_utility - cur) < config.truncation_tolerance)
        truncated = true;
    }
  }
  for (double& v : result.values) v /= config.max_permutations;
  result.permutations_used = config.max_permutations;
  result.truncation_fraction =
      total_positions > 0
          ? static_cast<double>(truncated_positions) / total_positions
          : 0.0;
  return result;
}

}  // namespace xai
