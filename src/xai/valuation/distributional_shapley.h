#ifndef XAI_VALUATION_DISTRIBUTIONAL_SHAPLEY_H_
#define XAI_VALUATION_DISTRIBUTIONAL_SHAPLEY_H_

#include <cstdint>

#include "xai/core/matrix.h"
#include "xai/valuation/loo.h"

namespace xai {

/// \brief Configuration of the distributional-Shapley estimator.
struct DistributionalShapleyConfig {
  /// Monte-Carlo draws per data point.
  int iterations = 50;
  /// Largest context-set cardinality sampled (the "m" of D-Shapley).
  int max_cardinality = 64;
  uint64_t seed = 19;
};

/// Distributional Shapley (Ghorbani, Kim & Zou 2020 / Kwon et al. 2021,
/// §2.3.1): the value of a point *in the context of the underlying data
/// distribution* — estimated by resampling context sets S from the data pool
/// (a proxy for the distribution) at random cardinalities and averaging the
/// marginal utility of adding the point. Unlike Data Shapley, the value does
/// not depend on which other points happen to be in one fixed dataset, which
/// addresses the "training data is in fact sampled from an unknown
/// underlying distribution" critique of §2.3.1.
Vector DistributionalShapley(int num_points, const UtilityFn& utility,
                             const DistributionalShapleyConfig& config = {});

}  // namespace xai

#endif  // XAI_VALUATION_DISTRIBUTIONAL_SHAPLEY_H_
