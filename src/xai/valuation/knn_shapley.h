#ifndef XAI_VALUATION_KNN_SHAPLEY_H_
#define XAI_VALUATION_KNN_SHAPLEY_H_

#include "xai/core/matrix.h"
#include "xai/core/status.h"
#include "xai/data/dataset.h"

namespace xai {

/// \brief Exact KNN-Shapley (Jia et al. 2019, §2.3.1): for the unweighted
/// k-NN utility, the Shapley value of every training point has a closed-form
/// recursion over the distance-sorted order, computable in O(N log N) per
/// validation point — one of the "practical Shapley value estimation
/// algorithms (obtained) by making assumptions on the ... model".
///
/// Per validation point z with neighbors sorted ascending by distance
/// (alpha_1 nearest):
///   s(alpha_N) = 1[y_{alpha_N} = y_z] / N
///   s(alpha_i) = s(alpha_{i+1}) +
///                (1[y_{alpha_i} = y_z] - 1[y_{alpha_{i+1}} = y_z]) / k *
///                min(k, i) / i
/// The returned value of a training point is the mean of its per-validation
/// scores; values sum to mean kNN accuracy minus the random-guess baseline.
Result<Vector> KnnShapley(const Dataset& train, const Dataset& valid, int k);

}  // namespace xai

#endif  // XAI_VALUATION_KNN_SHAPLEY_H_
