#ifndef XAI_VALUATION_LOO_H_
#define XAI_VALUATION_LOO_H_

#include <functional>
#include <vector>

#include "xai/core/matrix.h"
#include "xai/data/dataset.h"
#include "xai/model/knn.h"
#include "xai/model/logistic_regression.h"

namespace xai {

/// \brief The utility of a training subset: the performance (e.g. accuracy)
/// on a fixed validation set of the model trained on those rows. This is the
/// value function of all data-valuation games (§2.3.1): "the contribution
/// (of a data point) to the performance of the model ... over a test
/// dataset".
using UtilityFn = std::function<double(const std::vector<int>& rows)>;

/// Utility = validation accuracy of a logistic regression retrained on the
/// subset. Empty/degenerate subsets score the majority-class accuracy.
UtilityFn MakeLogisticAccuracyUtility(
    const Dataset& train, const Dataset& valid,
    const LogisticRegressionConfig& config = {});

/// Utility = validation accuracy of k-NN over the subset (no training cost —
/// the workhorse utility for the expensive valuation estimators).
UtilityFn MakeKnnAccuracyUtility(const Dataset& train, const Dataset& valid,
                                 int k);

/// Exact leave-one-out values: value_i = U(all) - U(all minus i). The
/// "naive way" of §2.3.2 — n full retrainings.
Vector LeaveOneOutValues(int num_points, const UtilityFn& utility);

}  // namespace xai

#endif  // XAI_VALUATION_LOO_H_
