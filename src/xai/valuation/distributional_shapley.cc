#include "xai/valuation/distributional_shapley.h"

#include <algorithm>

#include "xai/core/rng.h"

namespace xai {

Vector DistributionalShapley(int num_points, const UtilityFn& utility,
                             const DistributionalShapleyConfig& config) {
  Rng rng(config.seed);
  Vector values(num_points, 0.0);
  int max_card = std::min(config.max_cardinality, num_points - 1);
  for (int i = 0; i < num_points; ++i) {
    double acc = 0.0;
    for (int it = 0; it < config.iterations; ++it) {
      int k = rng.UniformInt(max_card + 1);
      // Context set S of size k sampled from the pool without point i (the
      // pool stands in for the underlying distribution D).
      std::vector<int> context;
      context.reserve(k + 1);
      std::vector<int> drawn =
          rng.SampleWithoutReplacement(num_points - 1, k);
      for (int idx : drawn) context.push_back(idx >= i ? idx + 1 : idx);
      double without = utility(context);
      context.push_back(i);
      double with = utility(context);
      acc += with - without;
    }
    values[i] = acc / config.iterations;
  }
  return values;
}

}  // namespace xai
