#ifndef XAI_VALUATION_DATA_SHAPLEY_H_
#define XAI_VALUATION_DATA_SHAPLEY_H_

#include <cstdint>

#include "xai/core/matrix.h"
#include "xai/valuation/loo.h"

namespace xai {

/// \brief Configuration of Truncated Monte-Carlo Data Shapley.
struct TmcConfig {
  /// Number of random permutations of the training points.
  int max_permutations = 100;
  /// Truncate a permutation walk once the running utility is within this
  /// tolerance of the full-data utility (the "T" in TMC: later marginals
  /// are approximately zero).
  double truncation_tolerance = 0.01;
  uint64_t seed = 17;
};

/// \brief Estimates and diagnostics of a TMC run.
struct TmcResult {
  Vector values;
  int permutations_used = 0;
  /// Total utility-function evaluations (the dominating cost: each is a
  /// model retraining — "intractable for real-world datasets", §2.3.1).
  int utility_calls = 0;
  /// Fraction of permutation positions skipped by truncation.
  double truncation_fraction = 0.0;
};

/// Truncated Monte-Carlo Data Shapley (Ghorbani & Zou 2019, §2.3.1):
/// permutation sampling over training *points* with early truncation.
TmcResult TmcDataShapley(int num_points, const UtilityFn& utility,
                         const TmcConfig& config = {});

}  // namespace xai

#endif  // XAI_VALUATION_DATA_SHAPLEY_H_
