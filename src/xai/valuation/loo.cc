#include "xai/valuation/loo.h"

#include <numeric>

#include "xai/core/parallel.h"
#include "xai/core/telemetry.h"
#include "xai/core/trace.h"
#include "xai/model/metrics.h"

namespace xai {
namespace {

double MajorityAccuracy(const Dataset& valid) {
  if (valid.num_rows() == 0) return 0.0;
  double pos = 0.0;
  for (double y : valid.y()) pos += y;
  double frac = pos / valid.num_rows();
  return std::max(frac, 1.0 - frac);
}

bool HasBothClasses(const Dataset& subset) {
  bool has0 = false, has1 = false;
  for (double y : subset.y()) {
    if (y == 1.0)
      has1 = true;
    else
      has0 = true;
  }
  return has0 && has1;
}

}  // namespace

UtilityFn MakeLogisticAccuracyUtility(const Dataset& train,
                                      const Dataset& valid,
                                      const LogisticRegressionConfig& config) {
  double fallback = MajorityAccuracy(valid);
  return [&train, &valid, config, fallback](const std::vector<int>& rows) {
    if (rows.size() < 2) return fallback;
    Dataset subset = train.Subset(rows);
    if (!HasBothClasses(subset)) return fallback;
    auto model = LogisticRegressionModel::Train(subset, config);
    if (!model.ok()) return fallback;
    return EvaluateAccuracy(*model, valid);
  };
}

UtilityFn MakeKnnAccuracyUtility(const Dataset& train, const Dataset& valid,
                                 int k) {
  double fallback = MajorityAccuracy(valid);
  return [&train, &valid, k, fallback](const std::vector<int>& rows) {
    if (rows.empty()) return fallback;
    Dataset subset = train.Subset(rows);
    auto model = KnnModel::Train(subset, {k});
    if (!model.ok()) return fallback;
    return EvaluateAccuracy(*model, valid);
  };
}

Vector LeaveOneOutValues(int num_points, const UtilityFn& utility) {
  XAI_SPAN("loo/sweep");
  XAI_COUNTER_ADD("valuation/utility_calls", num_points + 1);
  std::vector<int> all(num_points);
  std::iota(all.begin(), all.end(), 0);
  double full = utility(all);
  Vector values(num_points);
  // One retraining per point, all independent; each slot of `values` is
  // written by exactly one chunk. The utility must be const-reentrant.
  ParallelFor(num_points, /*grain=*/1,
              [&](int64_t begin, int64_t end, int64_t) {
                for (int64_t i = begin; i < end; ++i) {
                  std::vector<int> rest;
                  rest.reserve(num_points - 1);
                  for (int j = 0; j < num_points; ++j)
                    if (j != i) rest.push_back(j);
                  values[i] = full - utility(rest);
                }
              });
  return values;
}

}  // namespace xai
