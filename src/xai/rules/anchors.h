#ifndef XAI_RULES_ANCHORS_H_
#define XAI_RULES_ANCHORS_H_

#include <string>
#include <vector>

#include "xai/core/status.h"
#include "xai/data/dataset.h"
#include "xai/data/transform.h"
#include "xai/explain/perturbation.h"
#include "xai/model/model.h"

namespace xai {

/// \brief Configuration of the Anchors search.
struct AnchorsConfig {
  /// Required rule precision tau.
  double precision_target = 0.95;
  /// Confidence parameter of the KL bounds.
  double delta = 0.05;
  /// Perturbation samples drawn per bandit pull.
  int batch_size = 64;
  /// Beam width of the bottom-up rule search.
  int beam_width = 4;
  /// Maximum number of predicates in a rule ("longer rules ... are
  /// incomprehensible", §2.2).
  int max_anchor_size = 4;
  /// Sampling budget per candidate rule.
  int max_samples_per_candidate = 6000;
  int discretizer_bins = 4;
};

/// \brief An anchor: a conjunction of predicates "feature_j in the
/// instance's bin" that (with high probability) fixes the model's
/// prediction.
struct AnchorRule {
  /// Anchored feature indices.
  std::vector<int> features;
  /// Estimated precision P(model agrees | rule holds).
  double precision = 0.0;
  /// KL lower confidence bound of the precision at acceptance time.
  double precision_lb = 0.0;
  /// Fraction of training rows satisfying the rule.
  double coverage = 0.0;
  /// Total perturbation samples spent on the search.
  int samples_used = 0;
  /// Human-readable predicates ("28 < age <= 45", "purpose = car").
  std::vector<std::string> description;

  std::string ToString() const;
};

/// \brief Anchors (Ribeiro, Singh & Guestrin 2018, §2.2): beam search over
/// predicate conjunctions, with a multi-armed-bandit (KL-LUCB style)
/// adaptive sampling scheme deciding how many model queries each candidate
/// rule receives before its precision is confidently above or below tau.
class AnchorsExplainer {
 public:
  AnchorsExplainer(const Dataset& train, const AnchorsConfig& config = {});

  /// Finds a short, high-precision, high-coverage rule anchoring the model's
  /// prediction at `instance`.
  Result<AnchorRule> Explain(const PredictFn& f, const Vector& instance,
                             uint64_t seed) const;

 private:
  /// Draws one batch conditioned on the rule and returns #model agreements.
  int SampleBatch(const PredictFn& f, const Vector& instance,
                  int instance_class, const std::vector<int>& anchored,
                  int batch, Rng* rng) const;

  Dataset train_;
  AnchorsConfig config_;
  Perturber perturber_;
};

/// \name Serving budget hooks (see serve/degradation.h)
/// @{
/// Deterministic planning cost of an Anchors search: per search round
/// (up to max_anchor_size), each beam slot may spend up to
/// max_samples_per_candidate model calls. A planning bound, not the true
/// worst case (candidate generation also depends on feature count), but
/// monotone in every knob the degradation ladder turns.
int64_t AnchorsPlannedEvals(const AnchorsConfig& config);

/// Shrinks max_samples_per_candidate (floor: 4 bandit batches) and then
/// beam_width (floor 1) until the planned cost fits `max_evals`.
AnchorsConfig AnchorsForBudget(AnchorsConfig config, int64_t max_evals);
/// @}

/// \name KL (Bernoulli) confidence bounds used by the bandit.
/// @{
/// KL divergence of Bernoulli(p) from Bernoulli(q).
double BernoulliKl(double p, double q);
/// Upper confidence bound: max q >= p with n*kl(p, q) <= level.
double KlUpperBound(double p, int n, double level);
/// Lower confidence bound: min q <= p with n*kl(p, q) <= level.
double KlLowerBound(double p, int n, double level);
/// @}

}  // namespace xai

#endif  // XAI_RULES_ANCHORS_H_
