#include "xai/rules/weak_supervision.h"

#include <algorithm>
#include <cmath>

#include "xai/core/stats.h"

namespace xai {

Matrix ApplyLabelingFunctions(const std::vector<LabelingFunction>& lfs,
                              const Dataset& data) {
  Matrix votes(data.num_rows(), static_cast<int>(lfs.size()));
  for (int i = 0; i < data.num_rows(); ++i) {
    Vector row = data.Row(i);
    for (size_t j = 0; j < lfs.size(); ++j)
      votes(i, static_cast<int>(j)) = lfs[j](row);
  }
  return votes;
}

namespace {

// P(y=1 | votes of row i) under accuracies a and prior pi. A +1 vote is
// correct when y=1; a -1 vote is correct when y=0; abstains carry no
// information. Computed in log space.
double Posterior(const Matrix& votes, int row, const Vector& accuracies,
                 double prior) {
  double log1 = std::log(std::clamp(prior, 1e-9, 1.0 - 1e-9));
  double log0 = std::log(1.0 - std::clamp(prior, 1e-9, 1.0 - 1e-9));
  for (int j = 0; j < votes.cols(); ++j) {
    double v = votes(row, j);
    if (v == 0.0) continue;
    double a = std::clamp(accuracies[j], 1e-6, 1.0 - 1e-6);
    if (v > 0) {
      log1 += std::log(a);
      log0 += std::log(1.0 - a);
    } else {
      log1 += std::log(1.0 - a);
      log0 += std::log(a);
    }
  }
  double m = std::max(log0, log1);
  double e1 = std::exp(log1 - m), e0 = std::exp(log0 - m);
  return e1 / (e0 + e1);
}

}  // namespace

Result<LabelModel> LabelModel::Fit(const Matrix& votes,
                                   const Config& config) {
  int n = votes.rows(), m = votes.cols();
  if (n == 0 || m == 0)
    return Status::InvalidArgument("empty vote matrix");
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < m; ++j)
      if (votes(i, j) != -1.0 && votes(i, j) != 0.0 && votes(i, j) != 1.0)
        return Status::InvalidArgument("votes must be -1, 0 or +1");

  LabelModel model;
  model.accuracies_.assign(m, config.init_accuracy);
  model.coverages_.assign(m, 0.0);
  for (int j = 0; j < m; ++j) {
    int non_abstain = 0;
    for (int i = 0; i < n; ++i)
      if (votes(i, j) != 0.0) ++non_abstain;
    model.coverages_[j] = static_cast<double>(non_abstain) / n;
  }
  model.prior_ = std::clamp(config.prior_positive, 0.05, 0.95);

  Vector posterior(n, 0.5);
  for (int it = 0; it < config.max_iter; ++it) {
    // E-step.
    for (int i = 0; i < n; ++i)
      posterior[i] = Posterior(votes, i, model.accuracies_, model.prior_);

    // M-step.
    Vector new_acc(m, 0.0);
    for (int j = 0; j < m; ++j) {
      double correct = 0.0, total = 0.0;
      for (int i = 0; i < n; ++i) {
        double v = votes(i, j);
        if (v == 0.0) continue;
        // Expected correctness under the posterior.
        correct += v > 0 ? posterior[i] : 1.0 - posterior[i];
        total += 1.0;
      }
      new_acc[j] = total > 0 ? correct / total : config.init_accuracy;
      // Keep accuracies away from the degenerate 0/1 corners.
      new_acc[j] = std::clamp(new_acc[j], 0.05, 0.95);
    }
    double new_prior =
        config.learn_prior ? std::clamp(Mean(posterior), 0.05, 0.95)
                           : model.prior_;

    double delta = std::fabs(new_prior - model.prior_);
    for (int j = 0; j < m; ++j)
      delta += std::fabs(new_acc[j] - model.accuracies_[j]);
    model.accuracies_ = std::move(new_acc);
    model.prior_ = new_prior;
    model.iterations_ = it + 1;
    if (delta < config.tol) break;
  }
  return model;
}

double LabelModel::PosteriorPositive(const Vector& votes) const {
  Matrix one(1, static_cast<int>(votes.size()));
  one.SetRow(0, votes);
  return Posterior(one, 0, accuracies_, prior_);
}

Vector LabelModel::PosteriorPositiveAll(const Matrix& votes) const {
  Vector out(votes.rows());
  for (int i = 0; i < votes.rows(); ++i)
    out[i] = Posterior(votes, i, accuracies_, prior_);
  return out;
}

Result<std::vector<LabelingFunction>> GenerateStumpLfs(
    const Dataset& labeled, int per_feature, double min_odds_ratio,
    int thresholds_per_feature) {
  if (labeled.num_rows() < 10)
    return Status::InvalidArgument("need at least 10 labeled rows");
  if (per_feature < 1 || thresholds_per_feature < 1 ||
      min_odds_ratio <= 1.0)
    return Status::InvalidArgument("bad generation parameters");

  // Log-odds qualification bars: beat the class base rate by the required
  // odds ratio.
  double base_pos = std::clamp(Mean(labeled.y()), 0.02, 0.98);
  auto bar_of = [&](double base) {
    double logit = std::log(base / (1.0 - base)) + std::log(min_odds_ratio);
    return 1.0 / (1.0 + std::exp(-logit));
  };
  double bar_pos = bar_of(base_pos);
  double bar_neg = bar_of(1.0 - base_pos);
  constexpr double kMaxCoverage = 0.6;

  struct Candidate {
    int feature;
    double threshold;
    bool le_side;  // Vote applies to rows with x <= threshold (else >).
    int vote;      // +1 or -1.
    double precision;
    double coverage;
  };
  std::vector<LabelingFunction> result;
  int n = labeled.num_rows();
  for (int j = 0; j < labeled.num_features(); ++j) {
    std::vector<double> col = labeled.x().Col(j);
    std::vector<Candidate> candidates;
    for (int t = 1; t <= thresholds_per_feature; ++t) {
      double threshold = Quantile(
          col, static_cast<double>(t) / (thresholds_per_feature + 1));
      for (bool le_side : {true, false}) {
        int covered = 0, positive = 0;
        for (int i = 0; i < n; ++i) {
          bool in_region = le_side ? labeled.At(i, j) <= threshold
                                   : labeled.At(i, j) > threshold;
          if (!in_region) continue;
          ++covered;
          if (labeled.Label(i) == 1.0) ++positive;
        }
        if (covered < 5 || covered > kMaxCoverage * n) continue;
        double frac_pos = static_cast<double>(positive) / covered;
        // Evaluate the region as a candidate for BOTH votes; only the
        // side(s) clearing their class-relative bar survive.
        for (int vote : {+1, -1}) {
          double precision = vote > 0 ? frac_pos : 1.0 - frac_pos;
          double bar = vote > 0 ? bar_pos : bar_neg;
          if (precision < bar) continue;
          candidates.push_back({j, threshold, le_side, vote, precision,
                                static_cast<double>(covered) / n});
        }
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](const Candidate& a, const Candidate& b) {
                double base_a = a.vote > 0 ? base_pos : 1.0 - base_pos;
                double base_b = b.vote > 0 ? base_pos : 1.0 - base_pos;
                return (a.precision - base_a) * a.coverage >
                       (b.precision - base_b) * b.coverage;
              });
    // Keep the best candidates of EACH vote sign: in imbalanced data the
    // minority class's functions would otherwise never survive, collapsing
    // all weak labels onto the majority class.
    for (int sign : {+1, -1}) {
      int kept = 0;
      for (const Candidate& c : candidates) {
        if (c.vote != sign) continue;
        if (kept++ >= per_feature) break;
        result.push_back([c](const Vector& row) {
          bool in_region =
              c.le_side ? row[c.feature] <= c.threshold
                        : row[c.feature] > c.threshold;
          return in_region ? c.vote : 0;
        });
      }
    }
  }
  if (result.empty())
    return Status::NotFound(
        "no stump clears the odds-ratio bar; lower min_odds_ratio");
  return result;
}

}  // namespace xai
