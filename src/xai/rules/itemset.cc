#include "xai/rules/itemset.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "xai/core/check.h"

namespace xai {

std::string AssociationRule::ToString() const {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < antecedent.size(); ++i)
    os << (i ? "," : "") << antecedent[i];
  os << "} => {";
  for (size_t i = 0; i < consequent.size(); ++i)
    os << (i ? "," : "") << consequent[i];
  os << "} (sup=" << support << ", conf=" << confidence << ")";
  return os.str();
}

void SortItemsets(std::vector<FrequentItemset>* itemsets) {
  std::sort(itemsets->begin(), itemsets->end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.items.size() != b.items.size())
                return a.items.size() < b.items.size();
              return a.items < b.items;
            });
}

bool IsSubsetOf(const Itemset& subset, const Itemset& superset) {
  return std::includes(superset.begin(), superset.end(), subset.begin(),
                       subset.end());
}

int CountSupport(const TransactionDb& db, const Itemset& itemset) {
  int count = 0;
  for (const auto& txn : db)
    if (IsSubsetOf(itemset, txn)) ++count;
  return count;
}

std::vector<AssociationRule> GenerateRules(
    const std::vector<FrequentItemset>& frequent, int num_transactions,
    double min_confidence) {
  XAI_CHECK_GT(num_transactions, 0);
  // Support lookup for all frequent itemsets.
  std::map<Itemset, int> support;
  for (const auto& fi : frequent) support[fi.items] = fi.support;

  std::vector<AssociationRule> rules;
  for (const auto& fi : frequent) {
    int k = static_cast<int>(fi.items.size());
    if (k < 2 || k > 12) continue;
    uint64_t limit = 1ULL << k;
    for (uint64_t mask = 1; mask + 1 < limit; ++mask) {
      Itemset ante, cons;
      for (int i = 0; i < k; ++i)
        ((mask >> i) & 1 ? ante : cons).push_back(fi.items[i]);
      auto it = support.find(ante);
      if (it == support.end() || it->second == 0) continue;
      double conf = static_cast<double>(fi.support) / it->second;
      if (conf < min_confidence) continue;
      AssociationRule rule;
      rule.antecedent = std::move(ante);
      rule.consequent = cons;
      rule.support = fi.support;
      rule.confidence = conf;
      auto cons_it = support.find(cons);
      double cons_freq =
          cons_it != support.end()
              ? static_cast<double>(cons_it->second) / num_transactions
              : 0.0;
      rule.lift = cons_freq > 0.0 ? conf / cons_freq : 0.0;
      rules.push_back(std::move(rule));
    }
  }
  return rules;
}

}  // namespace xai
