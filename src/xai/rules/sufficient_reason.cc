#include "xai/rules/sufficient_reason.h"

#include <algorithm>
#include <set>

#include "xai/core/combinatorics.h"

namespace xai {

namespace {

// Does every leaf reachable under the partial assignment classify to
// `target_class`? Features in `mask` follow the instance; others explore
// both branches.
bool AllReachableLeavesAgree(const Tree& tree, const Vector& instance,
                             uint64_t mask, int node, int target_class,
                             double threshold) {
  const TreeNode& n = tree.nodes()[node];
  if (n.IsLeaf()) {
    int cls = n.value >= threshold ? 1 : 0;
    return cls == target_class;
  }
  if (mask & (1ULL << n.feature)) {
    int next = instance[n.feature] <= n.threshold ? n.left : n.right;
    return AllReachableLeavesAgree(tree, instance, mask, next, target_class,
                                   threshold);
  }
  return AllReachableLeavesAgree(tree, instance, mask, n.left, target_class,
                                 threshold) &&
         AllReachableLeavesAgree(tree, instance, mask, n.right, target_class,
                                 threshold);
}

}  // namespace

bool IsSufficientReason(const Tree& tree, const Vector& instance,
                        uint64_t mask, double decision_threshold) {
  if (tree.empty()) return true;
  int target = tree.PredictRow(instance) >= decision_threshold ? 1 : 0;
  return AllReachableLeavesAgree(tree, instance, mask, 0, target,
                                 decision_threshold);
}

std::vector<int> TestedFeatures(const Tree& tree) {
  std::set<int> feats;
  for (const TreeNode& n : tree.nodes())
    if (!n.IsLeaf()) feats.insert(n.feature);
  return std::vector<int>(feats.begin(), feats.end());
}

Result<SufficientReason> MinimumSufficientReason(const Tree& tree,
                                                 const Vector& instance,
                                                 int num_features,
                                                 int exact_limit,
                                                 double decision_threshold) {
  if (num_features >= 63)
    return Status::InvalidArgument("too many features for bitmask search");
  SufficientReason result;
  std::vector<int> tested = TestedFeatures(tree);
  int t = static_cast<int>(tested.size());

  if (t <= exact_limit && t <= 22) {
    // Exact: BFS over subset sizes of the tested features.
    for (int size = 0; size <= t; ++size) {
      // Enumerate subsets of `tested` of the given size.
      std::vector<int> idx(size);
      for (int i = 0; i < size; ++i) idx[i] = i;
      bool more = size <= t;
      while (more) {
        uint64_t mask = 0;
        for (int i : idx) mask |= 1ULL << tested[i];
        ++result.checks;
        if (IsSufficientReason(tree, instance, mask, decision_threshold)) {
          result.features = MaskToIndices(mask);
          result.minimal = true;  // Minimum cardinality => prime implicant.
          return result;
        }
        // Next combination.
        int i = size - 1;
        while (i >= 0 && idx[i] == t - size + i) --i;
        if (i < 0) {
          more = false;
        } else {
          ++idx[i];
          for (int j = i + 1; j < size; ++j) idx[j] = idx[j - 1] + 1;
        }
        if (size == 0) more = false;
      }
    }
    return Status::Internal("full feature set should always be sufficient");
  }

  // Greedy: start from all tested features, try dropping each.
  uint64_t mask = 0;
  for (int f : tested) mask |= 1ULL << f;
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (int f : tested) {
      uint64_t bit = 1ULL << f;
      if (!(mask & bit)) continue;
      ++result.checks;
      if (IsSufficientReason(tree, instance, mask & ~bit,
                             decision_threshold)) {
        mask &= ~bit;
        shrunk = true;
      }
    }
  }
  result.features = MaskToIndices(mask);
  result.minimal = true;  // No single feature can be dropped.
  return result;
}

std::vector<int> NecessaryFeatures(const Tree& tree, const Vector& instance,
                                   int num_features,
                                   double decision_threshold) {
  std::vector<int> necessary;
  uint64_t full = 0;
  for (int f : TestedFeatures(tree)) full |= 1ULL << f;
  for (int f = 0; f < num_features; ++f) {
    uint64_t bit = 1ULL << f;
    if (!(full & bit)) continue;
    if (!IsSufficientReason(tree, instance, full & ~bit,
                            decision_threshold))
      necessary.push_back(f);
  }
  return necessary;
}

}  // namespace xai
