#ifndef XAI_RULES_DECISION_SET_H_
#define XAI_RULES_DECISION_SET_H_

#include <string>
#include <vector>

#include "xai/core/status.h"
#include "xai/data/dataset.h"
#include "xai/data/transform.h"
#include "xai/model/model.h"

namespace xai {

/// \brief One if-then rule of a decision set: a conjunction of (feature, bin)
/// predicates implying a class.
struct DecisionRule {
  /// (feature index, bin index) conjuncts.
  std::vector<std::pair<int, int>> conditions;
  int predicted_class = 0;
  /// Fraction of covered training rows with the predicted class.
  double precision = 0.0;
  /// Number of covered training rows.
  int support = 0;

  bool Covers(const std::vector<int>& bins) const;
  std::string ToString(const QuantileDiscretizer& disc) const;
};

/// \brief Configuration of the interpretable-decision-set learner.
struct DecisionSetConfig {
  int max_rules = 8;
  int max_rule_length = 3;
  /// Minimum fraction of rows a candidate rule must cover.
  double min_support = 0.05;
  /// Candidate mining support for frequent predicate sets.
  int discretizer_bins = 4;
  /// Objective weights: correct-cover reward minus penalties.
  double length_penalty = 0.5;
  double overlap_penalty = 0.2;
  double incorrect_penalty = 1.0;
};

/// \brief Interpretable decision sets (Lakkaraju, Bach & Leskovec 2016,
/// §2.2): an unordered set of independent if-then rules selected greedily
/// under an objective that "balance(s) and optimize(s) both the accuracy and
/// interpretability" — rewarding correctly covered rows, penalizing rule
/// count, rule length, inter-rule overlap and incorrect coverage.
///
/// Used both as an interpretable classifier and, trained on another model's
/// predictions, as a global surrogate explanation of that model.
class DecisionSetModel : public Model {
 public:
  static Result<DecisionSetModel> Train(const Dataset& dataset,
                                        const DecisionSetConfig& config = {});

  TaskType task() const override { return TaskType::kClassification; }
  std::string name() const override { return "decision_set"; }
  /// P(class 1): 1/0 from the matching rule (ties broken by precision),
  /// default class if no rule covers the row.
  double Predict(const Vector& row) const override;

  const std::vector<DecisionRule>& rules() const { return rules_; }
  int default_class() const { return default_class_; }
  const QuantileDiscretizer& discretizer() const { return discretizer_; }

  std::string ToString() const;

 private:
  std::vector<DecisionRule> rules_;
  int default_class_ = 0;
  QuantileDiscretizer discretizer_;
};

}  // namespace xai

#endif  // XAI_RULES_DECISION_SET_H_
