#include "xai/rules/decision_set.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "xai/rules/apriori.h"

namespace xai {

bool DecisionRule::Covers(const std::vector<int>& bins) const {
  for (const auto& [feature, bin] : conditions)
    if (bins[feature] != bin) return false;
  return true;
}

std::string DecisionRule::ToString(const QuantileDiscretizer& disc) const {
  std::ostringstream os;
  os << "IF ";
  for (size_t i = 0; i < conditions.size(); ++i) {
    os << (i ? " AND " : "")
       << disc.DescribeBin(conditions[i].first, conditions[i].second);
  }
  os << " THEN class=" << predicted_class << "  (precision=" << precision
     << ", support=" << support << ")";
  return os.str();
}

Result<DecisionSetModel> DecisionSetModel::Train(
    const Dataset& dataset, const DecisionSetConfig& config) {
  if (dataset.num_rows() == 0)
    return Status::InvalidArgument("empty training set");
  for (double y : dataset.y())
    if (y != 0.0 && y != 1.0)
      return Status::InvalidArgument("decision sets require binary labels");

  DecisionSetModel model;
  model.discretizer_ =
      QuantileDiscretizer::Fit(dataset, config.discretizer_bins);
  int n = dataset.num_rows();
  int d = dataset.num_features();

  // Encode each (feature, bin) as an item; mine frequent predicate sets.
  std::vector<int> bins_per_feature(d);
  std::vector<int> item_offset(d);
  int num_items = 0;
  for (int j = 0; j < d; ++j) {
    item_offset[j] = num_items;
    bins_per_feature[j] = model.discretizer_.NumBins(j);
    num_items += bins_per_feature[j];
  }
  TransactionDb db(n);
  std::vector<std::vector<int>> row_bins(n);
  for (int i = 0; i < n; ++i) {
    row_bins[i] = model.discretizer_.Discretize(dataset.Row(i));
    for (int j = 0; j < d; ++j)
      db[i].push_back(item_offset[j] + row_bins[i][j]);
  }
  int min_support =
      std::max(2, static_cast<int>(config.min_support * n));
  XAI_ASSIGN_OR_RETURN(std::vector<FrequentItemset> frequent,
                       Apriori(db, min_support));

  // Build candidate rules from frequent predicate sets of bounded length.
  auto item_to_condition = [&](int item) {
    int feature = 0;
    while (feature + 1 < d && item >= item_offset[feature + 1]) ++feature;
    return std::make_pair(feature, item - item_offset[feature]);
  };
  std::vector<DecisionRule> candidates;
  std::vector<std::vector<int>> candidate_cover;  // Covered row indices.
  for (const auto& fi : frequent) {
    if (fi.items.empty() ||
        static_cast<int>(fi.items.size()) > config.max_rule_length)
      continue;
    DecisionRule rule;
    for (int item : fi.items)
      rule.conditions.push_back(item_to_condition(item));
    // A rule may not test the same feature twice (frequent sets can't,
    // since bins are disjoint, but keep the check for safety).
    std::set<int> feats;
    bool dup = false;
    for (const auto& [feat, bin] : rule.conditions)
      if (!feats.insert(feat).second) dup = true;
    if (dup) continue;

    std::vector<int> cover;
    int positive = 0;
    for (int i = 0; i < n; ++i) {
      if (rule.Covers(row_bins[i])) {
        cover.push_back(i);
        if (dataset.Label(i) == 1.0) ++positive;
      }
    }
    if (cover.empty()) continue;
    double frac_pos = static_cast<double>(positive) / cover.size();
    rule.predicted_class = frac_pos >= 0.5 ? 1 : 0;
    rule.precision = rule.predicted_class == 1 ? frac_pos : 1.0 - frac_pos;
    rule.support = static_cast<int>(cover.size());
    candidates.push_back(std::move(rule));
    candidate_cover.push_back(std::move(cover));
  }
  if (candidates.empty())
    return Status::InvalidArgument(
        "no candidate rules at the requested support");

  // Greedy selection under the accuracy-vs-interpretability objective.
  std::vector<bool> used(candidates.size(), false);
  std::vector<int> covered_by(n, 0);  // How many selected rules cover row i.
  std::vector<int> correct(n, 0);     // Covered by a correct selected rule.
  double current_objective = 0.0;

  auto objective_delta = [&](size_t c) {
    double delta = -config.length_penalty *
                   static_cast<double>(candidates[c].conditions.size());
    for (int i : candidate_cover[c]) {
      bool rule_correct =
          static_cast<int>(dataset.Label(i)) == candidates[c].predicted_class;
      if (covered_by[i] > 0) delta -= config.overlap_penalty;
      if (rule_correct) {
        if (correct[i] == 0) delta += 1.0;  // Newly correctly covered.
      } else {
        delta -= config.incorrect_penalty;
      }
    }
    return delta;
  };

  for (int pick = 0; pick < config.max_rules; ++pick) {
    int best = -1;
    double best_delta = 1e-9;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (used[c]) continue;
      double delta = objective_delta(c);
      if (delta > best_delta) {
        best_delta = delta;
        best = static_cast<int>(c);
      }
    }
    if (best < 0) break;
    used[best] = true;
    for (int i : candidate_cover[best]) {
      ++covered_by[i];
      if (static_cast<int>(dataset.Label(i)) ==
          candidates[best].predicted_class)
        ++correct[i];
    }
    current_objective += best_delta;
    model.rules_.push_back(candidates[best]);
  }

  // Highest-precision rules first (used as the tie-break at prediction).
  std::sort(model.rules_.begin(), model.rules_.end(),
            [](const DecisionRule& a, const DecisionRule& b) {
              return a.precision > b.precision;
            });

  // Default class: majority among uncovered rows.
  int pos = 0, tot = 0;
  for (int i = 0; i < n; ++i) {
    if (covered_by[i] == 0) {
      ++tot;
      if (dataset.Label(i) == 1.0) ++pos;
    }
  }
  if (tot == 0) {
    for (int i = 0; i < n; ++i)
      if (dataset.Label(i) == 1.0) ++pos;
    tot = n;
  }
  model.default_class_ = pos * 2 >= tot ? 1 : 0;
  return model;
}

double DecisionSetModel::Predict(const Vector& row) const {
  std::vector<int> bins = discretizer_.Discretize(row);
  for (const DecisionRule& rule : rules_)
    if (rule.Covers(bins)) return rule.predicted_class;
  return default_class_;
}

std::string DecisionSetModel::ToString() const {
  std::ostringstream os;
  for (const DecisionRule& rule : rules_)
    os << rule.ToString(discretizer_) << "\n";
  os << "ELSE class=" << default_class_ << "\n";
  return os.str();
}

}  // namespace xai
