#ifndef XAI_RULES_APRIORI_H_
#define XAI_RULES_APRIORI_H_

#include "xai/core/status.h"
#include "xai/rules/itemset.h"

namespace xai {

/// \brief Apriori frequent-itemset mining (Agrawal & Srikant 1994, §2.2.1):
/// level-wise candidate generation with the downward-closure prune — the
/// classic "candidate generation" baseline FP-Growth improves on.
///
/// `min_support` is an absolute transaction count (>= 1).
Result<std::vector<FrequentItemset>> Apriori(const TransactionDb& db,
                                             int min_support);

}  // namespace xai

#endif  // XAI_RULES_APRIORI_H_
