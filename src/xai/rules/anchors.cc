#include "xai/rules/anchors.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

namespace xai {

std::string AnchorRule::ToString() const {
  std::ostringstream os;
  os << "IF ";
  for (size_t i = 0; i < description.size(); ++i)
    os << (i ? " AND " : "") << description[i];
  os << " (precision=" << precision << ", coverage=" << coverage << ")";
  return os.str();
}

double BernoulliKl(double p, double q) {
  p = std::clamp(p, 1e-12, 1.0 - 1e-12);
  q = std::clamp(q, 1e-12, 1.0 - 1e-12);
  return p * std::log(p / q) + (1.0 - p) * std::log((1.0 - p) / (1.0 - q));
}

double KlUpperBound(double p, int n, double level) {
  if (n == 0) return 1.0;
  double target = level / n;
  double lo = p, hi = 1.0;
  for (int it = 0; it < 50; ++it) {
    double mid = 0.5 * (lo + hi);
    if (BernoulliKl(p, mid) > target)
      hi = mid;
    else
      lo = mid;
  }
  return lo;
}

double KlLowerBound(double p, int n, double level) {
  if (n == 0) return 0.0;
  double target = level / n;
  double lo = 0.0, hi = p;
  for (int it = 0; it < 50; ++it) {
    double mid = 0.5 * (lo + hi);
    if (BernoulliKl(p, mid) > target)
      lo = mid;
    else
      hi = mid;
  }
  return hi;
}

AnchorsExplainer::AnchorsExplainer(const Dataset& train,
                                   const AnchorsConfig& config)
    : train_(train),
      config_(config),
      perturber_(train, Perturber::Strategy::kDiscretized,
                 config.discretizer_bins) {}

int AnchorsExplainer::SampleBatch(const PredictFn& f, const Vector& instance,
                                  int instance_class,
                                  const std::vector<int>& anchored, int batch,
                                  Rng* rng) const {
  const QuantileDiscretizer& disc = perturber_.discretizer();
  Matrix samples = perturber_.Sample(instance, batch, rng);
  int agree = 0;
  for (int i = 0; i < batch; ++i) {
    Vector row = samples.Row(i);
    // Condition on the rule: anchored features stay in the instance's bin.
    for (int j : anchored) {
      if (train_.schema().features[j].is_categorical()) {
        row[j] = instance[j];
      } else {
        int bin = disc.BinOf(j, instance[j]);
        row[j] = disc.SampleFromBin(j, bin, rng);
      }
    }
    int pred = f(row) >= 0.5 ? 1 : 0;
    if (pred == instance_class) ++agree;
  }
  return agree;
}

Result<AnchorRule> AnchorsExplainer::Explain(const PredictFn& f,
                                             const Vector& instance,
                                             uint64_t seed) const {
  int d = static_cast<int>(instance.size());
  if (d != train_.num_features())
    return Status::InvalidArgument("instance width mismatch");
  Rng rng(seed);
  int instance_class = f(instance) >= 0.5 ? 1 : 0;
  const QuantileDiscretizer& disc = perturber_.discretizer();

  int total_samples = 0;
  // KL confidence level; the union bound over all candidates ever examined
  // is approximated with a fixed generous candidate count.
  double level = std::log((d * config_.max_anchor_size * 2.0) /
                          config_.delta);

  struct Arm {
    std::vector<int> features;
    int pulls = 0;
    int successes = 0;
    double mean() const { return pulls ? static_cast<double>(successes) / pulls : 0.0; }
  };

  auto coverage_of = [&](const std::vector<int>& features) {
    int covered = 0;
    for (int r = 0; r < train_.num_rows(); ++r) {
      bool ok = true;
      for (int j : features) {
        if (train_.schema().features[j].is_categorical()) {
          if (static_cast<int>(train_.At(r, j)) !=
              static_cast<int>(instance[j])) {
            ok = false;
            break;
          }
        } else if (disc.BinOf(j, train_.At(r, j)) !=
                   disc.BinOf(j, instance[j])) {
          ok = false;
          break;
        }
      }
      if (ok) ++covered;
    }
    return static_cast<double>(covered) / std::max(1, train_.num_rows());
  };

  auto make_result = [&](const Arm& arm) {
    AnchorRule rule;
    rule.features = arm.features;
    rule.precision = arm.mean();
    rule.precision_lb = KlLowerBound(arm.mean(), arm.pulls, level);
    rule.coverage = coverage_of(arm.features);
    rule.samples_used = total_samples;
    for (int j : arm.features) {
      if (train_.schema().features[j].is_categorical()) {
        rule.description.push_back(
            train_.schema().features[j].name + " = " +
            train_.RenderValue(j, instance[j]));
      } else {
        rule.description.push_back(
            disc.DescribeBin(j, disc.BinOf(j, instance[j])));
      }
    }
    return rule;
  };

  std::vector<Arm> beam = {Arm{}};  // Start from the empty rule.
  Arm best_so_far;
  double best_precision = -1.0;

  for (int size = 1; size <= config_.max_anchor_size; ++size) {
    // Candidate arms: beam rules extended by one unused feature.
    std::vector<Arm> candidates;
    std::set<std::vector<int>> seen;
    for (const Arm& parent : beam) {
      for (int j = 0; j < d; ++j) {
        if (std::find(parent.features.begin(), parent.features.end(), j) !=
            parent.features.end())
          continue;
        Arm arm;
        arm.features = parent.features;
        arm.features.push_back(j);
        std::sort(arm.features.begin(), arm.features.end());
        if (!seen.insert(arm.features).second) continue;
        candidates.push_back(std::move(arm));
      }
    }
    if (candidates.empty()) break;

    // Adaptive sampling: pull each ambiguous arm (lb < tau < ub) until its
    // budget runs out or the bound decides; always keep at least an initial
    // estimate per arm.
    for (Arm& arm : candidates) {
      int agree = SampleBatch(f, instance, instance_class, arm.features,
                              config_.batch_size, &rng);
      arm.pulls += config_.batch_size;
      arm.successes += agree;
      total_samples += config_.batch_size;
    }
    bool progress = true;
    while (progress) {
      progress = false;
      for (Arm& arm : candidates) {
        if (arm.pulls >= config_.max_samples_per_candidate) continue;
        double lb = KlLowerBound(arm.mean(), arm.pulls, level);
        double ub = KlUpperBound(arm.mean(), arm.pulls, level);
        if (lb >= config_.precision_target ||
            ub < config_.precision_target)
          continue;  // Already decided.
        int agree = SampleBatch(f, instance, instance_class, arm.features,
                                config_.batch_size, &rng);
        arm.pulls += config_.batch_size;
        arm.successes += agree;
        total_samples += config_.batch_size;
        progress = true;
      }
    }

    // Accept: among arms whose lower bound clears tau, pick max coverage.
    const Arm* accepted = nullptr;
    double accepted_coverage = -1.0;
    for (const Arm& arm : candidates) {
      double lb = KlLowerBound(arm.mean(), arm.pulls, level);
      if (lb >= config_.precision_target) {
        double cov = coverage_of(arm.features);
        if (cov > accepted_coverage) {
          accepted_coverage = cov;
          accepted = &arm;
        }
      }
      if (arm.mean() > best_precision) {
        best_precision = arm.mean();
        best_so_far = arm;
      }
    }
    if (accepted != nullptr) return make_result(*accepted);

    // Keep the beam_width most precise arms for the next size.
    std::sort(candidates.begin(), candidates.end(),
              [](const Arm& a, const Arm& b) { return a.mean() > b.mean(); });
    if (static_cast<int>(candidates.size()) > config_.beam_width)
      candidates.resize(config_.beam_width);
    beam = std::move(candidates);
  }

  // No rule certified at tau: return the most precise rule found.
  return make_result(best_so_far);
}

int64_t AnchorsPlannedEvals(const AnchorsConfig& config) {
  int64_t rounds = std::max(1, config.max_anchor_size);
  int64_t beam = std::max(1, config.beam_width);
  int64_t per_candidate = std::max(config.batch_size,
                                   config.max_samples_per_candidate);
  return rounds * beam * per_candidate;
}

AnchorsConfig AnchorsForBudget(AnchorsConfig config, int64_t max_evals) {
  const int floor_samples = 4 * std::max(1, config.batch_size);
  while (AnchorsPlannedEvals(config) > max_evals) {
    if (config.max_samples_per_candidate > floor_samples) {
      config.max_samples_per_candidate =
          std::max(floor_samples, config.max_samples_per_candidate / 2);
    } else if (config.beam_width > 1) {
      --config.beam_width;
    } else {
      break;  // Already at the floor; serve the cheapest search we have.
    }
  }
  return config;
}

}  // namespace xai
