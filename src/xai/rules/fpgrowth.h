#ifndef XAI_RULES_FPGROWTH_H_
#define XAI_RULES_FPGROWTH_H_

#include "xai/core/status.h"
#include "xai/rules/itemset.h"

namespace xai {

/// \brief FP-Growth frequent-itemset mining (Han, Pei & Yin 2000, §2.2.1):
/// compresses the database into an FP-tree and mines it recursively via
/// conditional pattern bases — "mining frequent patterns without candidate
/// generation". Produces exactly the same itemsets as Apriori (verified by
/// the test suite); typically much faster at low support thresholds.
Result<std::vector<FrequentItemset>> FpGrowth(const TransactionDb& db,
                                              int min_support);

}  // namespace xai

#endif  // XAI_RULES_FPGROWTH_H_
