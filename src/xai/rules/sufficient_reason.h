#ifndef XAI_RULES_SUFFICIENT_REASON_H_
#define XAI_RULES_SUFFICIENT_REASON_H_

#include <cstdint>
#include <vector>

#include "xai/core/status.h"
#include "xai/model/tree.h"

namespace xai {

/// \brief Logic-based explanations for decision trees (§2.2.2, Shih/Darwiche
/// style): a *sufficient reason* is a subset of features whose instance
/// values alone force the tree's decision, no matter what the remaining
/// features are; a minimal one is a prime implicant of the decision
/// function. These are "provably correct explanations": sufficiency is
/// verified exactly against the tree, not sampled.

/// True if fixing the features in `mask` to the instance's values forces
/// every reachable leaf of the tree to the instance's predicted class
/// (values thresholded at `decision_threshold`).
bool IsSufficientReason(const Tree& tree, const Vector& instance,
                        uint64_t mask, double decision_threshold = 0.5);

/// \brief A sufficient reason with search metadata.
struct SufficientReason {
  /// The features in the reason.
  std::vector<int> features;
  /// True if no proper subset is sufficient (prime implicant).
  bool minimal = false;
  /// Number of sufficiency checks performed by the search.
  int checks = 0;
};

/// Finds a cardinality-minimum sufficient reason by breadth-first search
/// over subsets of the features the tree actually tests (exact when that
/// count is <= `exact_limit`, otherwise falls back to greedy shrinking from
/// the full feature set, which yields a minimal — but possibly not minimum —
/// prime implicant).
Result<SufficientReason> MinimumSufficientReason(
    const Tree& tree, const Vector& instance, int num_features,
    int exact_limit = 20, double decision_threshold = 0.5);

/// Features with necessity score 1: removing the feature from the full
/// feature set breaks sufficiency, i.e. the feature appears in *every*
/// sufficient reason.
std::vector<int> NecessaryFeatures(const Tree& tree, const Vector& instance,
                                   int num_features,
                                   double decision_threshold = 0.5);

/// The set of feature indices the tree tests on any node (all other
/// features are trivially irrelevant to sufficiency).
std::vector<int> TestedFeatures(const Tree& tree);

}  // namespace xai

#endif  // XAI_RULES_SUFFICIENT_REASON_H_
