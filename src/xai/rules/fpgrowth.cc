#include "xai/rules/fpgrowth.h"

#include <algorithm>
#include <map>
#include <memory>

namespace xai {
namespace {

struct FpNode {
  int item = -1;
  int count = 0;
  FpNode* parent = nullptr;
  std::map<int, std::unique_ptr<FpNode>> children;
  FpNode* next_same_item = nullptr;  // Header-table chain.
};

struct FpTree {
  FpNode root;
  /// item -> (total count, head of node chain).
  std::map<int, std::pair<int, FpNode*>> header;

  void Insert(const std::vector<int>& items, int count) {
    FpNode* node = &root;
    for (int item : items) {
      auto it = node->children.find(item);
      if (it == node->children.end()) {
        auto child = std::make_unique<FpNode>();
        child->item = item;
        child->parent = node;
        auto& slot = header[item];
        child->next_same_item = slot.second;
        slot.second = child.get();
        it = node->children.emplace(item, std::move(child)).first;
      }
      it->second->count += count;
      header[item].first += count;
      node = it->second.get();
    }
  }
};

// Recursively mines `tree`, emitting itemsets that extend `suffix`.
void Mine(const FpTree& tree, int min_support, Itemset* suffix,
          std::vector<FrequentItemset>* out) {
  // Iterate items (ascending); each frequent item closes one itemset and
  // spawns a conditional tree.
  for (const auto& [item, slot] : tree.header) {
    if (slot.first < min_support) continue;
    suffix->push_back(item);
    Itemset emitted(suffix->rbegin(), suffix->rend());
    std::sort(emitted.begin(), emitted.end());
    out->push_back({std::move(emitted), slot.first});

    // Conditional pattern base: prefix paths of every node of `item`.
    FpTree conditional;
    std::map<int, int> cond_counts;
    std::vector<std::pair<std::vector<int>, int>> paths;
    for (FpNode* node = slot.second; node != nullptr;
         node = node->next_same_item) {
      std::vector<int> path;
      for (FpNode* up = node->parent; up && up->item >= 0; up = up->parent)
        path.push_back(up->item);
      std::reverse(path.begin(), path.end());
      if (!path.empty()) {
        for (int i : path) cond_counts[i] += node->count;
        paths.emplace_back(std::move(path), node->count);
      }
    }
    for (auto& [path, count] : paths) {
      std::vector<int> filtered;
      for (int i : path)
        if (cond_counts[i] >= min_support) filtered.push_back(i);
      if (!filtered.empty()) conditional.Insert(filtered, count);
    }
    if (!conditional.header.empty())
      Mine(conditional, min_support, suffix, out);
    suffix->pop_back();
  }
}

}  // namespace

Result<std::vector<FrequentItemset>> FpGrowth(const TransactionDb& db,
                                              int min_support) {
  if (min_support < 1)
    return Status::InvalidArgument("min_support must be >= 1");

  // First pass: item frequencies.
  std::map<int, int> counts;
  for (const auto& txn : db)
    for (int item : txn) ++counts[item];

  // Second pass: insert transactions with items ordered by descending
  // frequency (ties by item id), infrequent items dropped.
  FpTree tree;
  for (const auto& txn : db) {
    std::vector<int> items;
    for (int item : txn)
      if (counts[item] >= min_support) items.push_back(item);
    std::sort(items.begin(), items.end(), [&](int a, int b) {
      if (counts[a] != counts[b]) return counts[a] > counts[b];
      return a < b;
    });
    items.erase(std::unique(items.begin(), items.end()), items.end());
    if (!items.empty()) tree.Insert(items, 1);
  }

  std::vector<FrequentItemset> result;
  Itemset suffix;
  Mine(tree, min_support, &suffix, &result);
  SortItemsets(&result);
  return result;
}

}  // namespace xai
