#include "xai/rules/apriori.h"

#include <algorithm>
#include <map>
#include <set>

namespace xai {

Result<std::vector<FrequentItemset>> Apriori(const TransactionDb& db,
                                             int min_support) {
  if (min_support < 1)
    return Status::InvalidArgument("min_support must be >= 1");
  std::vector<FrequentItemset> result;

  // Level 1: frequent single items.
  std::map<int, int> item_counts;
  for (const auto& txn : db)
    for (int item : txn) ++item_counts[item];
  std::vector<Itemset> level;
  for (const auto& [item, count] : item_counts) {
    if (count >= min_support) {
      level.push_back({item});
      result.push_back({{item}, count});
    }
  }

  while (!level.empty()) {
    // Candidate generation: join itemsets sharing the first k-1 items.
    std::vector<Itemset> candidates;
    std::set<Itemset> level_set(level.begin(), level.end());
    for (size_t a = 0; a < level.size(); ++a) {
      for (size_t b = a + 1; b < level.size(); ++b) {
        const Itemset& x = level[a];
        const Itemset& y = level[b];
        if (!std::equal(x.begin(), x.end() - 1, y.begin())) continue;
        Itemset joined = x;
        joined.push_back(y.back());
        if (joined[joined.size() - 2] > joined.back())
          std::swap(joined[joined.size() - 2], joined.back());
        // Downward-closure prune: every (k-1)-subset must be frequent.
        bool prune = false;
        for (size_t drop = 0; drop + 2 < joined.size() && !prune; ++drop) {
          Itemset sub;
          for (size_t i = 0; i < joined.size(); ++i)
            if (i != drop) sub.push_back(joined[i]);
          if (!level_set.count(sub)) prune = true;
        }
        if (!prune) candidates.push_back(std::move(joined));
      }
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());

    // Support counting: one database pass per level.
    std::vector<int> counts(candidates.size(), 0);
    for (const auto& txn : db) {
      for (size_t c = 0; c < candidates.size(); ++c)
        if (IsSubsetOf(candidates[c], txn)) ++counts[c];
    }
    level.clear();
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (counts[c] >= min_support) {
        level.push_back(candidates[c]);
        result.push_back({candidates[c], counts[c]});
      }
    }
  }
  SortItemsets(&result);
  return result;
}

}  // namespace xai
