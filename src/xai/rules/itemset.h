#ifndef XAI_RULES_ITEMSET_H_
#define XAI_RULES_ITEMSET_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xai {

/// \brief Items are small non-negative integers; itemsets are kept sorted.
using Itemset = std::vector<int>;
using TransactionDb = std::vector<std::vector<int>>;

/// \brief A frequent itemset with its absolute support count.
struct FrequentItemset {
  Itemset items;
  int support = 0;
};

/// \brief An association rule antecedent => consequent.
struct AssociationRule {
  Itemset antecedent;
  Itemset consequent;
  int support = 0;        ///< Count of transactions containing both sides.
  double confidence = 0;  ///< support / support(antecedent).
  double lift = 0;        ///< confidence / frequency(consequent).

  std::string ToString() const;
};

/// Canonical ordering (by size, then lexicographic) used to compare miner
/// outputs in tests.
void SortItemsets(std::vector<FrequentItemset>* itemsets);

/// True if `subset` (sorted) is contained in `superset` (sorted).
bool IsSubsetOf(const Itemset& subset, const Itemset& superset);

/// Absolute support of an itemset in a transaction database (linear scan).
int CountSupport(const TransactionDb& db, const Itemset& itemset);

/// Derives association rules from frequent itemsets: every non-empty proper
/// subset of each frequent itemset becomes an antecedent; rules below
/// `min_confidence` are dropped. Itemsets larger than 12 items are skipped
/// (2^|I| antecedents).
std::vector<AssociationRule> GenerateRules(
    const std::vector<FrequentItemset>& frequent, int num_transactions,
    double min_confidence);

}  // namespace xai

#endif  // XAI_RULES_ITEMSET_H_
