#ifndef XAI_RULES_WEAK_SUPERVISION_H_
#define XAI_RULES_WEAK_SUPERVISION_H_

#include <functional>
#include <vector>

#include "xai/core/matrix.h"
#include "xai/core/status.h"
#include "xai/data/dataset.h"

namespace xai {

/// \brief Rule-based weak supervision (§2.2.1: "rule-based data mining
/// techniques that leverage recent advances of weak-supervision for
/// labelling datasets" — Snorkel, Snuba, adaptive rule discovery).
///
/// Labeling functions vote +1 (positive), -1 (negative) or 0 (abstain);
/// the label model estimates each function's accuracy *without ground
/// truth* (EM over a Dawid-Skene-style generative model with conditionally
/// independent functions) and combines the votes into probabilistic labels.
using LabelingFunction = std::function<int(const Vector&)>;

/// Applies the functions to every row: an n x m vote matrix in {-1, 0, +1}.
Matrix ApplyLabelingFunctions(const std::vector<LabelingFunction>& lfs,
                              const Dataset& data);

/// \brief Configuration for LabelModel::Fit.
struct LabelModelConfig {
  int max_iter = 200;
  double tol = 1e-8;
  /// Initial accuracy assumed for every labeling function.
  double init_accuracy = 0.7;
  /// Class prior P(y = 1). Snorkel-style: treated as given. Set
  /// `learn_prior` to re-estimate it by EM — beware that correlated
  /// labeling functions can then drive the prior to a degenerate corner.
  double prior_positive = 0.5;
  bool learn_prior = false;
};

/// \brief Snorkel-style generative label model (binary).
class LabelModel {
 public:
  using Config = LabelModelConfig;

  /// Fits by EM on an n x m vote matrix (entries must be -1, 0 or +1).
  static Result<LabelModel> Fit(const Matrix& votes,
                                const Config& config = {});

  /// P(y = 1 | votes of one row).
  double PosteriorPositive(const Vector& votes) const;
  /// P(y = 1) for every row of a vote matrix.
  Vector PosteriorPositiveAll(const Matrix& votes) const;

  /// Estimated accuracy of each labeling function,
  /// P(vote correct | vote != 0).
  const Vector& accuracies() const { return accuracies_; }
  /// Fraction of rows where each function does not abstain.
  const Vector& coverages() const { return coverages_; }
  /// Estimated class prior P(y = 1).
  double prior_positive() const { return prior_; }
  int iterations() const { return iterations_; }

 private:
  Vector accuracies_;
  Vector coverages_;
  double prior_ = 0.5;
  int iterations_ = 0;
};

/// \brief Snuba-style automatic labeling-function synthesis: from a *small*
/// labeled dataset, generates threshold-stump functions
/// ("x_j <= t votes c") whose precision for their voted class c beats that
/// class's base rate by at least `min_odds_ratio` in odds space:
///   logit(precision) >= logit(base_rate_c) + log(min_odds_ratio).
/// The log-odds bar treats majority and minority classes symmetrically, so
/// minority-class functions survive on imbalanced data while
/// high-coverage-but-uninformative stumps do not. Stumps covering more
/// than 60% of the rows are rejected (a useful labeling function mostly
/// abstains). Keeps the best `per_feature` stumps per (feature, vote sign)
/// by (precision - base_rate) * coverage.
Result<std::vector<LabelingFunction>> GenerateStumpLfs(
    const Dataset& labeled, int per_feature = 2, double min_odds_ratio = 3.0,
    int thresholds_per_feature = 8);

}  // namespace xai

#endif  // XAI_RULES_WEAK_SUPERVISION_H_
