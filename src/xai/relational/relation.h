#ifndef XAI_RELATIONAL_RELATION_H_
#define XAI_RELATIONAL_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xai/core/status.h"
#include "xai/relational/provenance.h"
#include "xai/relational/value.h"

namespace xai::rel {

/// \brief An annotated in-memory relation: named columns, tuples, and one
/// N[X] provenance annotation per tuple (a K-relation). Base relations carry
/// Base(id) variables; derived relations carry the polynomials the operators
/// built.
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, std::vector<std::string> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<std::string>& columns() const { return columns_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  int num_tuples() const { return static_cast<int>(tuples_.size()); }

  const Tuple& tuple(int i) const { return tuples_[i]; }
  const ProvExprPtr& annotation(int i) const { return annotations_[i]; }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Index of a column by name, or -1.
  int ColumnIndex(const std::string& column) const;

  /// Reserves capacity for `n` tuples (operators reserve their output
  /// bound up front instead of growing per tuple).
  void Reserve(int64_t n) {
    tuples_.reserve(n);
    annotations_.reserve(n);
  }

  /// Appends a tuple with an explicit annotation.
  xai::Status Append(Tuple tuple, ProvExprPtr annotation);
  /// Appends a base tuple annotated Base(base_id).
  xai::Status AppendBase(Tuple tuple, int base_id);

  /// Pretty table (for examples and debugging); shows provenance when
  /// `with_provenance`.
  std::string ToString(bool with_provenance = false) const;

 private:
  std::string name_;
  std::vector<std::string> columns_;
  std::vector<Tuple> tuples_;
  std::vector<ProvExprPtr> annotations_;
};

/// \brief Assigns globally unique base-tuple ids across relations, so
/// lineage/Shapley ids are unambiguous within a "database".
class TupleIdAllocator {
 public:
  int Next() { return next_++; }
  int allocated() const { return next_; }

 private:
  int next_ = 0;
};

}  // namespace xai::rel

#endif  // XAI_RELATIONAL_RELATION_H_
