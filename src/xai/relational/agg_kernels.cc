#include "xai/relational/agg_kernels.h"

#include <algorithm>

#include "xai/core/simd.h"
#include "xai/relational/columnar.h"

namespace xai::rel {
namespace {

const double* Ones() {
  static const double* kOnes = [] {
    auto* ones = new double[kBatchRows];
    std::fill(ones, ones + kBatchRows, 1.0);
    return ones;
  }();
  return kOnes;
}

}  // namespace

double CanonicalSum(const double* v, int64_t n) {
  const double* ones = Ones();
  double acc = 0.0;
  for (int64_t b = 0; b < n; b += kBatchRows) {
    const int64_t len = std::min<int64_t>(kBatchRows, n - b);
    acc += simd::Dot(v + b, ones, static_cast<size_t>(len));
  }
  return acc;
}

double CanonicalMin(const double* v, int64_t n) {
  if (n == 0) return 0.0;
  double m = v[0];
  for (int64_t i = 1; i < n; ++i) m = std::min(m, v[i]);
  return m;
}

double CanonicalMax(const double* v, int64_t n) {
  if (n == 0) return 0.0;
  double m = v[0];
  for (int64_t i = 1; i < n; ++i) m = std::max(m, v[i]);
  return m;
}

}  // namespace xai::rel
