#include "xai/relational/column.h"

#include <cmath>
#include <cstdio>

#include "xai/core/check.h"

namespace xai::rel {
namespace {

// Largest magnitude at which every int64 is exactly representable as a
// double; INT->DOUBLE promotion refuses anything beyond it so ToRows()
// can reconstruct the original INT exactly.
constexpr int64_t kExactIntLimit = int64_t{1} << 53;

}  // namespace

int32_t Column::DictCode(const std::string& s) const {
  auto it = dict_index_.find(s);
  return it == dict_index_.end() ? -1 : it->second;
}

Value Column::ValueAt(int64_t row) const {
  if (!valid_[row]) return Value::Null();
  switch (kind_) {
    case Kind::kInt64:
      return Value::Int(ints_[row]);
    case Kind::kDouble:
      if (!int_origin_.empty() && int_origin_[row])
        return Value::Int(static_cast<int64_t>(doubles_[row]));
      return Value::Double(doubles_[row]);
    case Kind::kString:
      return Value::Str(dict_[codes_[row]]);
  }
  return Value::Null();
}

void Column::RenderTo(int64_t row, std::string* out) const {
  if (!valid_[row]) {
    out->append("NULL");
    return;
  }
  switch (kind_) {
    case Kind::kInt64:
      out->append(std::to_string(ints_[row]));
      return;
    case Kind::kDouble:
      if (!int_origin_.empty() && int_origin_[row]) {
        out->append(std::to_string(static_cast<int64_t>(doubles_[row])));
        return;
      }
      {
        // Must match Value::ToString's "%.6g" byte-for-byte: the row path
        // merges group/distinct keys on these renderings.
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.6g", doubles_[row]);
        out->append(buf);
      }
      return;
    case Kind::kString:
      out->append(dict_[codes_[row]]);
      return;
  }
}

void Column::Reserve(int64_t n) {
  valid_.reserve(n);
  switch (kind_) {
    case Kind::kInt64:
      ints_.reserve(n);
      break;
    case Kind::kDouble:
      doubles_.reserve(n);
      break;
    case Kind::kString:
      codes_.reserve(n);
      break;
  }
}

void Column::AppendNull() {
  valid_.push_back(0);
  ++null_count_;
  switch (kind_) {
    case Kind::kInt64:
      ints_.push_back(0);
      break;
    case Kind::kDouble:
      doubles_.push_back(0.0);
      if (!int_origin_.empty()) int_origin_.push_back(0);
      break;
    case Kind::kString:
      codes_.push_back(0);
      break;
  }
}

Status Column::PromoteToDouble() {
  XAI_DCHECK(kind_ == Kind::kInt64);
  doubles_.resize(ints_.size());
  int_origin_.assign(ints_.size(), 0);
  for (size_t i = 0; i < ints_.size(); ++i) {
    if (valid_[i]) {
      if (ints_[i] >= kExactIntLimit || ints_[i] <= -kExactIntLimit)
        return Status::Unimplemented(
            "INT->DOUBLE column promotion would lose precision");
      int_origin_[i] = 1;
    }
    doubles_[i] = static_cast<double>(ints_[i]);
  }
  ints_.clear();
  ints_.shrink_to_fit();
  kind_ = Kind::kDouble;
  return Status::OK();
}

Status Column::FixKind(Kind kind) {
  if (!kind_fixed_) {
    // The NULL-only prefix lives in ints_; move it to the right payload.
    if (kind != Kind::kInt64) {
      if (kind == Kind::kDouble) {
        doubles_.assign(valid_.size(), 0.0);
      } else {
        codes_.assign(valid_.size(), 0);
      }
      ints_.clear();
      ints_.shrink_to_fit();
    }
    kind_ = kind;
    kind_fixed_ = true;
    return Status::OK();
  }
  if (kind_ == kind) return Status::OK();
  const bool both_numeric =
      kind_ != Kind::kString && kind != Kind::kString;
  if (!both_numeric)
    return Status::InvalidArgument(
        "column mixes strings and numbers; use the row-oriented Relation");
  if (kind_ == Kind::kInt64) return PromoteToDouble();
  return Status::OK();  // kDouble accepts INT cells via int_origin_.
}

int32_t Column::InternString(const std::string& s) {
  auto [it, inserted] =
      dict_index_.emplace(s, static_cast<int32_t>(dict_.size()));
  if (inserted) dict_.push_back(s);
  return it->second;
}

Status Column::AppendValue(const Value& v) {
  switch (v.type()) {
    case Value::Type::kNull:
      AppendNull();
      return Status::OK();
    case Value::Type::kInt: {
      XAI_RETURN_NOT_OK(FixKind(Kind::kInt64));
      valid_.push_back(1);
      if (kind_ == Kind::kInt64) {
        ints_.push_back(v.AsInt());
      } else {
        const int64_t i = v.AsInt();
        if (i >= kExactIntLimit || i <= -kExactIntLimit)
          return Status::Unimplemented(
              "INT cell in a DOUBLE column would lose precision");
        doubles_.push_back(static_cast<double>(i));
        if (int_origin_.empty()) int_origin_.assign(valid_.size() - 1, 0);
        int_origin_.push_back(1);
      }
      return Status::OK();
    }
    case Value::Type::kDouble:
      XAI_RETURN_NOT_OK(FixKind(Kind::kDouble));
      valid_.push_back(1);
      doubles_.push_back(v.AsDouble());
      if (!int_origin_.empty()) int_origin_.push_back(0);
      return Status::OK();
    case Value::Type::kString:
      XAI_RETURN_NOT_OK(FixKind(Kind::kString));
      valid_.push_back(1);
      codes_.push_back(InternString(v.AsString()));
      return Status::OK();
  }
  return Status::InvalidArgument("unknown value type");
}

Column Column::OfKind(Kind kind) {
  Column c;
  c.kind_ = kind;
  c.kind_fixed_ = true;
  return c;
}

Column Column::Gather(const std::vector<int32_t>& rows) const {
  Column out;
  out.kind_ = kind_;
  out.kind_fixed_ = kind_fixed_;
  out.valid_.resize(rows.size());
  int64_t nulls = 0;
  for (size_t k = 0; k < rows.size(); ++k) {
    const uint8_t v = valid_[rows[k]];
    out.valid_[k] = v;
    nulls += !v;  // Branch-free; the gather loop stays vectorizable.
  }
  out.null_count_ = nulls;
  switch (kind_) {
    case Kind::kInt64:
      out.ints_.resize(rows.size());
      for (size_t k = 0; k < rows.size(); ++k) out.ints_[k] = ints_[rows[k]];
      break;
    case Kind::kDouble:
      out.doubles_.resize(rows.size());
      for (size_t k = 0; k < rows.size(); ++k)
        out.doubles_[k] = doubles_[rows[k]];
      if (!int_origin_.empty()) {
        out.int_origin_.resize(rows.size());
        for (size_t k = 0; k < rows.size(); ++k)
          out.int_origin_[k] = int_origin_[rows[k]];
      }
      break;
    case Kind::kString:
      out.codes_.resize(rows.size());
      for (size_t k = 0; k < rows.size(); ++k)
        out.codes_[k] = codes_[rows[k]];
      out.dict_ = dict_;
      out.dict_index_ = dict_index_;
      break;
  }
  return out;
}

Status Column::AppendColumn(const Column& other) {
  if (other.kind_fixed_) {
    XAI_RETURN_NOT_OK(FixKind(other.kind_));
  }
  Reserve(size() + other.size());
  // All-NULL peer (kind not fixed): its payload convention matches any of
  // ours, so only validity and NULL slots transfer.
  if (!other.kind_fixed_) {
    for (int64_t i = 0; i < other.size(); ++i) AppendNull();
    return Status::OK();
  }
  switch (other.kind_) {
    case Kind::kInt64:
      if (kind_ == Kind::kInt64) {
        ints_.insert(ints_.end(), other.ints_.begin(), other.ints_.end());
        valid_.insert(valid_.end(), other.valid_.begin(),
                      other.valid_.end());
        null_count_ += other.null_count_;
      } else {
        // This side already promoted to DOUBLE: re-append cell-wise so the
        // int-origin mask and the precision guard apply.
        for (int64_t i = 0; i < other.size(); ++i)
          XAI_RETURN_NOT_OK(AppendValue(other.ValueAt(i)));
      }
      return Status::OK();
    case Kind::kDouble:
      for (int64_t i = 0; i < other.size(); ++i)
        XAI_RETURN_NOT_OK(AppendValue(other.ValueAt(i)));
      return Status::OK();
    case Kind::kString:
      for (int64_t i = 0; i < other.size(); ++i) {
        if (!other.valid_[i]) {
          AppendNull();
        } else {
          valid_.push_back(1);
          codes_.push_back(InternString(other.dict_[other.codes_[i]]));
        }
      }
      return Status::OK();
  }
  return Status::InvalidArgument("unknown column kind");
}

}  // namespace xai::rel
