#ifndef XAI_RELATIONAL_EXPRESSION_H_
#define XAI_RELATIONAL_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "xai/relational/value.h"

namespace xai::rel {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// \brief Scalar expression over a tuple: column references, constants,
/// comparisons, boolean connectives, arithmetic. Used as selection
/// predicates and projection expressions.
class Expr {
 public:
  enum class Op {
    kColumn,
    kConst,
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
    kAnd,
    kOr,
    kNot,
    kAdd,
    kSub,
    kMul,
  };

  static ExprPtr Column(int index);
  static ExprPtr Const(Value value);
  static ExprPtr Eq(ExprPtr a, ExprPtr b);
  static ExprPtr Ne(ExprPtr a, ExprPtr b);
  static ExprPtr Lt(ExprPtr a, ExprPtr b);
  static ExprPtr Le(ExprPtr a, ExprPtr b);
  static ExprPtr Gt(ExprPtr a, ExprPtr b);
  static ExprPtr Ge(ExprPtr a, ExprPtr b);
  static ExprPtr And(ExprPtr a, ExprPtr b);
  static ExprPtr Or(ExprPtr a, ExprPtr b);
  static ExprPtr Not(ExprPtr a);
  static ExprPtr Add(ExprPtr a, ExprPtr b);
  static ExprPtr Sub(ExprPtr a, ExprPtr b);
  static ExprPtr Mul(ExprPtr a, ExprPtr b);

  /// Evaluates against a tuple. Boolean results are INT 0/1.
  Value Eval(const Tuple& tuple) const;
  /// Convenience: Eval() interpreted as a boolean.
  bool EvalBool(const Tuple& tuple) const;

  /// \name Tree introspection (the columnar compiler walks the tree once to
  /// resolve column indices and value classes per node).
  /// @{
  Op op() const { return op_; }
  int column_index() const { return column_; }
  const Value& constant() const { return constant_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  /// @}

 private:
  Expr(Op op, int column, Value constant, std::vector<ExprPtr> children)
      : op_(op),
        column_(column),
        constant_(std::move(constant)),
        children_(std::move(children)) {}

  static ExprPtr Make(Op op, std::vector<ExprPtr> children);

  Op op_;
  int column_;
  Value constant_;
  std::vector<ExprPtr> children_;
};

}  // namespace xai::rel

#endif  // XAI_RELATIONAL_EXPRESSION_H_
