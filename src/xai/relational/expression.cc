#include "xai/relational/expression.h"

#include "xai/core/check.h"

namespace xai::rel {

ExprPtr Expr::Column(int index) {
  return ExprPtr(new Expr(Op::kColumn, index, Value::Null(), {}));
}

ExprPtr Expr::Const(Value value) {
  return ExprPtr(new Expr(Op::kConst, -1, std::move(value), {}));
}

ExprPtr Expr::Make(Op op, std::vector<ExprPtr> children) {
  return ExprPtr(new Expr(op, -1, Value::Null(), std::move(children)));
}

ExprPtr Expr::Eq(ExprPtr a, ExprPtr b) { return Make(Op::kEq, {a, b}); }
ExprPtr Expr::Ne(ExprPtr a, ExprPtr b) { return Make(Op::kNe, {a, b}); }
ExprPtr Expr::Lt(ExprPtr a, ExprPtr b) { return Make(Op::kLt, {a, b}); }
ExprPtr Expr::Le(ExprPtr a, ExprPtr b) { return Make(Op::kLe, {a, b}); }
ExprPtr Expr::Gt(ExprPtr a, ExprPtr b) { return Make(Op::kGt, {a, b}); }
ExprPtr Expr::Ge(ExprPtr a, ExprPtr b) { return Make(Op::kGe, {a, b}); }
ExprPtr Expr::And(ExprPtr a, ExprPtr b) { return Make(Op::kAnd, {a, b}); }
ExprPtr Expr::Or(ExprPtr a, ExprPtr b) { return Make(Op::kOr, {a, b}); }
ExprPtr Expr::Not(ExprPtr a) { return Make(Op::kNot, {a}); }
ExprPtr Expr::Add(ExprPtr a, ExprPtr b) { return Make(Op::kAdd, {a, b}); }
ExprPtr Expr::Sub(ExprPtr a, ExprPtr b) { return Make(Op::kSub, {a, b}); }
ExprPtr Expr::Mul(ExprPtr a, ExprPtr b) { return Make(Op::kMul, {a, b}); }

Value Expr::Eval(const Tuple& tuple) const {
  auto boolean = [](bool b) { return Value::Int(b ? 1 : 0); };
  switch (op_) {
    case Op::kColumn:
      XAI_CHECK(column_ >= 0 && column_ < static_cast<int>(tuple.size()));
      return tuple[column_];
    case Op::kConst:
      return constant_;
    case Op::kEq:
      return boolean(children_[0]->Eval(tuple) == children_[1]->Eval(tuple));
    case Op::kNe:
      return boolean(children_[0]->Eval(tuple) != children_[1]->Eval(tuple));
    case Op::kLt:
      return boolean(children_[0]->Eval(tuple) < children_[1]->Eval(tuple));
    case Op::kLe: {
      Value a = children_[0]->Eval(tuple), b = children_[1]->Eval(tuple);
      return boolean(a < b || a == b);
    }
    case Op::kGt: {
      Value a = children_[0]->Eval(tuple), b = children_[1]->Eval(tuple);
      return boolean(!(a < b) && !(a == b));
    }
    case Op::kGe: {
      Value a = children_[0]->Eval(tuple), b = children_[1]->Eval(tuple);
      return boolean(!(a < b));
    }
    case Op::kAnd:
      return boolean(children_[0]->EvalBool(tuple) &&
                     children_[1]->EvalBool(tuple));
    case Op::kOr:
      return boolean(children_[0]->EvalBool(tuple) ||
                     children_[1]->EvalBool(tuple));
    case Op::kNot:
      return boolean(!children_[0]->EvalBool(tuple));
    case Op::kAdd:
      return Value::Double(children_[0]->Eval(tuple).AsDouble() +
                           children_[1]->Eval(tuple).AsDouble());
    case Op::kSub:
      return Value::Double(children_[0]->Eval(tuple).AsDouble() -
                           children_[1]->Eval(tuple).AsDouble());
    case Op::kMul:
      return Value::Double(children_[0]->Eval(tuple).AsDouble() *
                           children_[1]->Eval(tuple).AsDouble());
  }
  return Value::Null();
}

bool Expr::EvalBool(const Tuple& tuple) const {
  Value v = Eval(tuple);
  return !v.is_null() && v.AsDouble() != 0.0;
}

}  // namespace xai::rel
