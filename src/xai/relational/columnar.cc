#include "xai/relational/columnar.h"

#include <utility>

#include "xai/core/check.h"

namespace xai::rel {

ColumnarRelation::ColumnarRelation(std::string name,
                                   std::vector<std::string> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  cols_.resize(columns_.size());
}

Result<ColumnarRelation> ColumnarRelation::FromRows(const Relation& rows) {
  ColumnarRelation out(rows.name(), rows.columns());
  out.Reserve(rows.num_tuples());
  for (int i = 0; i < rows.num_tuples(); ++i) {
    XAI_RETURN_NOT_OK(out.AppendRow(rows.tuple(i), rows.annotation(i)));
  }
  return out;
}

Relation ColumnarRelation::ToRows() const {
  Relation out(name_, columns_);
  out.Reserve(num_rows_);
  for (int64_t i = 0; i < num_rows_; ++i) {
    Tuple t;
    t.reserve(cols_.size());
    for (const Column& c : cols_) t.push_back(c.ValueAt(i));
    Status s = out.Append(std::move(t), annotations_[i]);
    XAI_CHECK_MSG(s.ok(), "columnar->row materialization cannot fail");
  }
  return out;
}

int ColumnarRelation::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < columns_.size(); ++i)
    if (columns_[i] == column) return static_cast<int>(i);
  return -1;
}

void ColumnarRelation::Reserve(int64_t n) {
  for (Column& c : cols_) c.Reserve(n);
  annotations_.reserve(n);
}

Status ColumnarRelation::AppendRow(const Tuple& tuple,
                                   ProvExprPtr annotation) {
  if (static_cast<int>(tuple.size()) != num_columns())
    return Status::InvalidArgument("tuple arity mismatch in " + name_);
  // A failed cell append leaves the relation half-mutated; callers
  // (FromRows included) must discard it on error.
  for (int c = 0; c < num_columns(); ++c) {
    XAI_RETURN_NOT_OK(cols_[c].AppendValue(tuple[c]));
  }
  annotations_.push_back(std::move(annotation));
  ++num_rows_;
  return Status::OK();
}

Status ColumnarRelation::AppendBaseRow(const Tuple& tuple, int base_id) {
  return AppendRow(tuple, ProvExpr::Base(base_id));
}

ColumnarRelation ColumnarRelation::GatherRows(
    const std::vector<int32_t>& rows, std::string name) const {
  ColumnarRelation out(std::move(name), columns_);
  for (size_t c = 0; c < cols_.size(); ++c)
    out.cols_[c] = cols_[c].Gather(rows);
  out.annotations_.reserve(rows.size());
  for (int32_t r : rows) out.annotations_.push_back(annotations_[r]);
  out.num_rows_ = static_cast<int64_t>(rows.size());
  return out;
}

}  // namespace xai::rel
