#ifndef XAI_RELATIONAL_OPERATORS_H_
#define XAI_RELATIONAL_OPERATORS_H_

#include <string>
#include <vector>

#include "xai/core/status.h"
#include "xai/relational/expression.h"
#include "xai/relational/relation.h"

namespace xai::rel {

/// \brief Relational-algebra operators over annotated relations
/// (K-relations). Provenance combines by the standard rules: selection
/// keeps annotations, projection-with-dedup adds them, join multiplies
/// them, union adds them.

/// sigma_predicate(input).
xai::Result<Relation> Select(const Relation& input, const ExprPtr& predicate);

/// pi_columns(input). With `distinct`, equal output tuples merge and their
/// annotations combine with +.
xai::Result<Relation> Project(const Relation& input,
                              const std::vector<int>& columns, bool distinct);

/// Equi-join on input_a.col_a == input_b.col_b; output columns are a's
/// columns followed by b's (join column kept on both sides).
xai::Result<Relation> EquiJoin(const Relation& a, const Relation& b,
                               int col_a, int col_b);

/// Bag union (arities must match); annotations pass through.
xai::Result<Relation> Union(const Relation& a, const Relation& b);

/// Aggregation function.
enum class AggFn { kCount, kSum, kAvg, kMin, kMax };

/// Group-by aggregate. Output columns: the group columns followed by one
/// aggregate column. Provenance of each group row = sum (+) over the
/// annotations of contributing rows — lineage-accurate, which is what the
/// tuple-Shapley and responsibility analyses of §3 consume. (Aggregate
/// *values* over K-relations need semimodules; out of scope.)
xai::Result<Relation> GroupByAggregate(const Relation& input,
                                       const std::vector<int>& group_columns,
                                       AggFn fn, int agg_column,
                                       const std::string& agg_name);

}  // namespace xai::rel

#endif  // XAI_RELATIONAL_OPERATORS_H_
