#ifndef XAI_RELATIONAL_PROVENANCE_H_
#define XAI_RELATIONAL_PROVENANCE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace xai::rel {

/// \brief Provenance expression in the free semiring N[X] over base-tuple
/// variables (Green, Karvounarakis & Tannen's K-relations).
///
/// Because N[X] is the universal provenance semiring, one expression tree
/// per result tuple suffices to answer *every* semiring question by
/// evaluation with different carriers:
///  - Boolean semiring   -> possible-worlds membership (the value function
///    of tuple Shapley values and causal responsibility, §3),
///  - counting semiring  -> bag multiplicity,
///  - lineage semiring   -> which base tuples contributed at all,
///  - why-provenance     -> the witness basis (sets of joint witnesses).
class ProvExpr;
using ProvExprPtr = std::shared_ptr<const ProvExpr>;

class ProvExpr {
 public:
  enum class Kind { kZero, kOne, kBase, kPlus, kTimes };

  static ProvExprPtr Zero();
  static ProvExprPtr One();
  /// Variable standing for base tuple `id`.
  static ProvExprPtr Base(int id);
  /// a + b (alternative derivations). Simplifies 0 + x = x.
  static ProvExprPtr Plus(ProvExprPtr a, ProvExprPtr b);
  /// Sum of many terms as a single n-ary Plus node: one allocation and
  /// constant depth however many tuples a group aggregates, so the
  /// recursive evaluators cannot overflow the stack and group-by spends
  /// no time building node chains. Zero terms drop out; empty input
  /// yields Zero(), a single term is returned unchanged.
  static ProvExprPtr PlusAll(std::vector<ProvExprPtr> terms);
  /// a * b (joint derivations). Simplifies 1 * x = x, 0 * x = 0.
  static ProvExprPtr Times(ProvExprPtr a, ProvExprPtr b);

  Kind kind() const { return kind_; }
  int base_id() const { return base_id_; }
  const std::vector<ProvExprPtr>& children() const { return children_; }

  /// \name Semiring evaluations
  /// @{

  /// Boolean semiring: true iff the expression is "derivable" when exactly
  /// the base tuples with present(id) == true exist.
  bool EvalBool(const std::function<bool(int)>& present) const;

  /// Counting semiring: multiplicity when base tuple id has multiplicity
  /// mult(id).
  int64_t EvalCount(const std::function<int64_t(int)>& mult) const;

  /// Generic numeric semiring evaluation (e.g. probabilities on a
  /// tropical/Viterbi semiring can be emulated by the caller).
  double EvalNumeric(const std::function<double(int)>& value,
                     const std::function<double(double, double)>& plus,
                     const std::function<double(double, double)>& times,
                     double zero, double one) const;

  /// Lineage: the set of base tuples appearing in the expression.
  std::set<int> Lineage() const;

  /// Why-provenance: the witness basis — minimal sets of base tuples whose
  /// joint presence yields the tuple. (Exponential in pathological
  /// expressions; fine for the query sizes in this library.)
  std::set<std::set<int>> WhyProvenance() const;

  /// Probability that the expression is derivable when every base tuple id
  /// exists independently with probability prob(id) — evaluation over a
  /// tuple-independent probabilistic database. Exact by enumerating the
  /// possible worlds of the lineage variables; refuses > 20 variables
  /// (use the Monte-Carlo variant there; exact evaluation is #P-hard).
  double ProbabilityExact(const std::function<double(int)>& prob) const;

  /// Monte-Carlo estimate of the same probability: samples `samples`
  /// possible worlds with the given uint64 seed.
  double ProbabilityMonteCarlo(const std::function<double(int)>& prob,
                               int samples, uint64_t seed) const;

  /// Polynomial rendering, e.g. "t1*t3 + t2*t3".
  std::string ToString(
      const std::function<std::string(int)>& name = nullptr) const;
  /// @}

 private:
  ProvExpr(Kind kind, int base_id, std::vector<ProvExprPtr> children)
      : kind_(kind), base_id_(base_id), children_(std::move(children)) {}

  // Binary node without the initializer-list detour: a braced children
  // list copies both shared pointers (four atomic refcount ops per node),
  // which dominates PlusAll over large groups.
  static ProvExprPtr MakeBinary(Kind kind, ProvExprPtr a, ProvExprPtr b);

  Kind kind_;
  int base_id_;
  std::vector<ProvExprPtr> children_;
};

}  // namespace xai::rel

#endif  // XAI_RELATIONAL_PROVENANCE_H_
