#include "xai/relational/relation.h"

#include <sstream>

namespace xai::rel {

int Relation::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < columns_.size(); ++i)
    if (columns_[i] == column) return static_cast<int>(i);
  return -1;
}

xai::Status Relation::Append(Tuple tuple, ProvExprPtr annotation) {
  if (static_cast<int>(tuple.size()) != num_columns())
    return xai::Status::InvalidArgument("tuple arity mismatch in " + name_);
  tuples_.push_back(std::move(tuple));
  annotations_.push_back(std::move(annotation));
  return xai::Status::OK();
}

xai::Status Relation::AppendBase(Tuple tuple, int base_id) {
  return Append(std::move(tuple), ProvExpr::Base(base_id));
}

std::string Relation::ToString(bool with_provenance) const {
  std::ostringstream os;
  os << name_ << "(";
  for (size_t i = 0; i < columns_.size(); ++i)
    os << (i ? ", " : "") << columns_[i];
  os << ")\n";
  for (int i = 0; i < num_tuples(); ++i) {
    os << "  ";
    for (int c = 0; c < num_columns(); ++c)
      os << (c ? " | " : "") << tuples_[i][c].ToString();
    if (with_provenance) os << "   @ " << annotations_[i]->ToString();
    os << "\n";
  }
  return os.str();
}

}  // namespace xai::rel
