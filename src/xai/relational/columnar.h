#ifndef XAI_RELATIONAL_COLUMNAR_H_
#define XAI_RELATIONAL_COLUMNAR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xai/core/status.h"
#include "xai/relational/column.h"
#include "xai/relational/provenance.h"
#include "xai/relational/relation.h"

namespace xai::rel {

/// Rows per operator batch: predicates evaluate, selections materialize,
/// and aggregates accumulate in blocks of this many rows. Also the
/// ParallelFor grain of the block-parallel scans, so the block layout —
/// and therefore every floating-point combine order — is a pure function
/// of the row count, never of the thread count.
inline constexpr int64_t kBatchRows = 1024;

/// \brief Columnar twin of Relation: typed column vectors (int64 / double /
/// dictionary-encoded string) with per-column validity plus the same
/// per-tuple N[X] provenance annotation side array.
///
/// The row-oriented Relation stays the API of record; this is the storage
/// the vectorized operators (columnar_ops.h) and the shared-scan
/// tuple-Shapley fast path run on. FromRows/ToRows convert losslessly both
/// ways (see Column for the class rules; heterogeneous string/number
/// columns are rejected and stay row-oriented).
class ColumnarRelation {
 public:
  ColumnarRelation() = default;
  ColumnarRelation(std::string name, std::vector<std::string> columns);

  /// Imports a row relation. Fails (without aborting) on columns the typed
  /// storage cannot represent exactly — the caller keeps the row path.
  static Result<ColumnarRelation> FromRows(const Relation& rows);

  /// Materializes back to the row representation: exact same Values
  /// (including INT-vs-DOUBLE typing) and the same shared annotation
  /// pointers, so round-tripping is observationally identical.
  Relation ToRows() const;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const std::vector<std::string>& column_names() const { return columns_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  int64_t num_rows() const { return num_rows_; }

  const Column& column(int c) const { return cols_[c]; }
  Column* mutable_column(int c) { return &cols_[c]; }
  const ProvExprPtr& annotation(int64_t i) const { return annotations_[i]; }
  const std::vector<ProvExprPtr>& annotations() const { return annotations_; }

  /// Index of a column by name, or -1 (same contract as Relation).
  int ColumnIndex(const std::string& column) const;

  void Reserve(int64_t n);
  /// Appends one row (tests and builders; bulk paths use FromRows/Gather).
  Status AppendRow(const Tuple& tuple, ProvExprPtr annotation);
  /// Appends a base row annotated Base(base_id).
  Status AppendBaseRow(const Tuple& tuple, int base_id);

  /// Gathers the given row indices (in order) into a new relation with the
  /// same schema; annotations come along by shared pointer.
  ColumnarRelation GatherRows(const std::vector<int32_t>& rows,
                              std::string name) const;

  /// \name Operator plumbing (columnar_ops.cc)
  /// @{
  void SetColumn(int c, Column column) { cols_[c] = std::move(column); }
  void SetAnnotations(std::vector<ProvExprPtr> annotations) {
    annotations_ = std::move(annotations);
    num_rows_ = static_cast<int64_t>(annotations_.size());
  }
  /// @}

 private:
  std::string name_;
  std::vector<std::string> columns_;
  std::vector<Column> cols_;
  std::vector<ProvExprPtr> annotations_;
  int64_t num_rows_ = 0;
};

}  // namespace xai::rel

#endif  // XAI_RELATIONAL_COLUMNAR_H_
