#ifndef XAI_RELATIONAL_COLUMN_H_
#define XAI_RELATIONAL_COLUMN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "xai/core/status.h"
#include "xai/relational/value.h"

namespace xai::rel {

/// \brief One typed column of a ColumnarRelation.
///
/// Storage classes:
///  - kInt64 : contiguous int64 payloads (NULL slots hold 0),
///  - kDouble: contiguous double payloads (NULL slots hold 0.0) plus an
///             int-origin mask so cells that arrived as Value::Int round-trip
///             back to INT through ToRows(),
///  - kString: dictionary-encoded — int32 codes into a deduplicated string
///             dictionary (NULL slots hold code 0 with the validity bit off).
///
/// Validity is one byte per row (1 = present). The class is decided by the
/// first non-NULL value appended; appending a DOUBLE into an INT column
/// promotes the whole column (recording int origins), while mixing strings
/// and numbers in one column is rejected with a Status — callers with such
/// data stay on the row-oriented Relation.
///
/// The payload conventions are chosen so the vectorized kernels reproduce
/// the row interpreter bit-for-bit: Value::AsDouble() maps NULL and STRING
/// to 0.0, which is exactly what the NULL slots store, so aggregate and
/// arithmetic kernels can stream the payload array without consulting the
/// validity mask.
class Column {
 public:
  enum class Kind { kInt64, kDouble, kString };

  Kind kind() const { return kind_; }
  int64_t size() const { return static_cast<int64_t>(valid_.size()); }
  /// True while no non-NULL value has fixed the storage class.
  bool all_null() const { return !kind_fixed_; }

  bool IsNull(int64_t row) const { return valid_[row] == 0; }
  const std::vector<uint8_t>& validity() const { return valid_; }
  /// True if any row is NULL (the compiler uses this to pick the
  /// branch-free kernels for all-valid columns).
  bool has_nulls() const { return null_count_ > 0; }

  /// \name Typed payload views (meaningful for the matching kind only).
  /// @{
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<int32_t>& codes() const { return codes_; }
  const std::vector<std::string>& dict() const { return dict_; }
  /// Dictionary code for `s`, or -1 when the string never occurs in this
  /// column (predicate compilation resolves string constants once here).
  int32_t DictCode(const std::string& s) const;
  /// @}

  /// Value::AsDouble() semantics: numeric payload, 0.0 for NULL/STRING.
  double AsDoubleAt(int64_t row) const {
    switch (kind_) {
      case Kind::kInt64:
        return static_cast<double>(ints_[row]);
      case Kind::kDouble:
        return doubles_[row];
      case Kind::kString:
        return 0.0;
    }
    return 0.0;
  }

  /// Reconstructs the exact Value (NULL / INT / DOUBLE / STRING) the row
  /// adapter imported, including INT-origin doubles.
  Value ValueAt(int64_t row) const;

  /// Appends Value::ToString(row)'s rendering to `out` without constructing
  /// a Value (group-by and distinct keys re-use the row path's rendered-key
  /// merge semantics, so the renderings must match byte-for-byte).
  void RenderTo(int64_t row, std::string* out) const;

  void Reserve(int64_t n);
  void AppendNull();
  /// Appends a value, inferring/promoting the storage class. Fails on
  /// string/number mixes and on INT->DOUBLE promotions that cannot
  /// round-trip (|v| >= 2^53).
  Status AppendValue(const Value& v);

  /// New column with the given storage class and zero rows (the operators
  /// build outputs with known classes directly).
  static Column OfKind(Kind kind);

  /// Gathers `rows` (indices into this column) into a new column of the
  /// same class; the dictionary is shared by copy, codes are remapped 1:1.
  Column Gather(const std::vector<int32_t>& rows) const;

  /// Appends every row of `other` to this column, reconciling storage
  /// classes (INT + DOUBLE promotes, all-NULL adopts the peer's class,
  /// string dictionaries are merged by re-coding). Fails on string/number
  /// mixes, like AppendValue.
  Status AppendColumn(const Column& other);

 private:
  Status PromoteToDouble();
  Status FixKind(Kind kind);
  int32_t InternString(const std::string& s);

  Kind kind_ = Kind::kInt64;
  bool kind_fixed_ = false;
  int64_t null_count_ = 0;
  std::vector<uint8_t> valid_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint8_t> int_origin_;  // kDouble: cell arrived as Value::Int.
  std::vector<int32_t> codes_;
  std::vector<std::string> dict_;
  std::unordered_map<std::string, int32_t> dict_index_;
};

}  // namespace xai::rel

#endif  // XAI_RELATIONAL_COLUMN_H_
